package hcd

import (
	"io"

	"hcd/internal/attributed"
	"hcd/internal/dynamic"
	"hcd/internal/ecc"
	"hcd/internal/engagement"
	"hcd/internal/influence"
	"hcd/internal/query"
	"hcd/internal/truss"
	"hcd/internal/viz"
)

// This file exposes the §VI/§VII extension subsystems: dynamic
// maintenance, local k-core queries, influential community search, and the
// k-truss hierarchy built with the PHCD paradigm.

type (
	// Maintainer is a mutable graph whose core decomposition is maintained
	// incrementally under edge insertions and deletions (subcore
	// traversal: simple, work proportional to the affected subcore).
	Maintainer = dynamic.Maintainer
	// OrderMaintainer maintains coreness with the order-based algorithm:
	// O(1) fast-path insertions even on graphs with giant k-shells, at the
	// cost of maintaining a peeling order.
	OrderMaintainer = dynamic.OrderMaintainer
	// LocalQuery answers "the k-core containing v" in output-linear time
	// over a built HCD.
	LocalQuery = query.Index
	// InfluentialCommunity is one result of influential community search.
	InfluentialCommunity = influence.Community
	// TrussIndex maps undirected edges to dense ids for the k-truss
	// decomposition.
	TrussIndex = truss.EdgeIndex
	// VertexKeywords maps each vertex to its attribute keywords for
	// attributed community search.
	VertexKeywords = attributed.Keywords
	// EngagementReport is the output of user-engagement analysis.
	EngagementReport = engagement.Report
	// AttributedCommunity is one attributed-community-search answer.
	AttributedCommunity = attributed.Community
)

// NewMaintainer wraps g in a dynamic Maintainer: InsertEdge and RemoveEdge
// update coreness incrementally with subcore traversal; Hierarchy rebuilds
// the HCD lazily on demand.
func NewMaintainer(g *Graph) *Maintainer { return dynamic.New(g) }

// NewOrderMaintainer wraps g in an order-based dynamic maintainer (Zhang
// et al., ICDE 2017): it additionally maintains a valid peeling order, so
// most insertions are O(1) regardless of shell sizes. Prefer it for
// insertion-heavy streams on graphs whose k-shells form giant components.
func NewOrderMaintainer(g *Graph) *OrderMaintainer { return dynamic.NewOrder(g) }

// NewLocalQuery preprocesses an HCD for local k-core queries (binary
// lifting over the forest; O(|T| log |T|) space).
func NewLocalQuery(h *HCD) *LocalQuery { return query.NewIndex(h) }

// TopInfluentialCommunities returns the r highest-influence non-contained
// k-influential communities of g under the given vertex weights, highest
// influence first (Li et al., PVLDB 2015 — the §VII application).
func TopInfluentialCommunities(g *Graph, weights []float64, k int32, r int) ([]InfluentialCommunity, error) {
	return influence.TopR(g, weights, k, r)
}

// TrussDecomposition computes the trussness of every edge by support
// peeling, returning the edge index and per-edge trussness (>= 2).
func TrussDecomposition(g *Graph) (*TrussIndex, []int32) { return truss.Decompose(g) }

// TrussHierarchy builds the k-truss hierarchy with the PHCD union-find
// paradigm (§VI: the framework generalised to another cohesive model).
// The returned forest stores edge ids where the HCD stores vertex ids.
func TrussHierarchy(g *Graph, ix *TrussIndex, trussness []int32) *HCD {
	return truss.BuildHierarchy(g, ix, trussness)
}

// ECCDecompose partitions the graph into maximal k-edge-connected
// components (k-ECCs): label[v] is v's component id, or -1 when v belongs
// to no k-ECC of at least two vertices.
func ECCDecompose(g *Graph, k int32) (label []int32, count int32) {
	return ecc.Decompose(g, k)
}

// ECCHierarchy builds the k-ECC hierarchy — the second §VI generalisation
// alongside the truss hierarchy — returning the forest (in the shared HCD
// container) and each vertex's connectivity number.
func ECCHierarchy(g *Graph) (*HCD, []int32) { return ecc.BuildHierarchy(g) }

// AttributedSearch answers an attributed community query (ACQ, Fang et
// al., PVLDB 2016 — the CL-Tree application of §VII): the connected k-core
// containing q whose members share a maximum-size subset of q's keywords
// (or of queryKeywords when non-nil). All maximal-size winners are
// returned; nil means no k-core contains q at all.
func AttributedSearch(g *Graph, attrs VertexKeywords, q int32, k int32, queryKeywords []int32) ([]AttributedCommunity, error) {
	return attributed.Search(g, attrs, q, k, queryKeywords)
}

// WriteSVG renders the hierarchy as a self-contained SVG icicle diagram —
// the §I graph-visualisation application. Zero-valued options pick
// sensible defaults.
func WriteSVG(w io.Writer, h *HCD, opt SVGOptions) error { return viz.WriteSVG(w, h, opt) }

// SVGOptions tunes WriteSVG (width, row height, label threshold).
type SVGOptions = viz.Options

// AnalyzeEngagement runs the §I user-engagement analysis: per-shell
// activity profiles, the coreness-activity correlation, and the variance
// decomposition showing how much the HCD position refines the
// coreness-only engagement estimate.
func AnalyzeEngagement(h *HCD, core []int32, activity []float64) (EngagementReport, error) {
	return engagement.Analyze(h, core, activity)
}
