package hcd

import "hcd/internal/gen"

// Deterministic synthetic graph generators, re-exported so examples,
// benchmarks and downstream experiments can build workloads without
// external datasets. See internal/gen for the structural rationale of each
// family.

// GenerateErdosRenyi samples a G(n, m)-style uniform random graph.
func GenerateErdosRenyi(n, m int, seed int64) *Graph { return gen.ErdosRenyi(n, m, seed) }

// GenerateBarabasiAlbert grows a preferential-attachment graph where each
// new vertex attaches to k degree-weighted targets.
func GenerateBarabasiAlbert(n, k int, seed int64) *Graph { return gen.BarabasiAlbert(n, k, seed) }

// GenerateRMAT samples m edges from a 2^scale-vertex recursive-matrix
// (Kronecker-style) distribution, producing skewed web-like graphs.
func GenerateRMAT(scale, m int, seed int64) *Graph { return gen.RMAT(scale, m, seed) }

// GenerateOnion plants an explicit nested-core hierarchy: `layers` shells
// of `width` vertices per branch, wiring layer i with degree base+i*step
// into layers at least as deep, across `branches` sub-onions.
func GenerateOnion(layers, width, base, step, branches int, seed int64) *Graph {
	return gen.Onion(layers, width, base, step, branches, seed)
}

// GeneratePlantedPartition builds `comms` communities of `size` vertices
// with intra-community edge probability pin and inter-community pout.
func GeneratePlantedPartition(comms, size int, pin, pout float64, seed int64) *Graph {
	return gen.PlantedPartition(comms, size, pin, pout, seed)
}
