package hcd_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"hcd"
	"hcd/internal/faultinject"
	"hcd/internal/gen"
	"hcd/internal/hierarchy"
)

func TestBuildCtxFastPath(t *testing.T) {
	g := gen.ErdosRenyi(500, 2000, 3)
	h, core, rep, err := hcd.BuildCtx(context.Background(), g, hcd.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fallback || rep.Cause != nil {
		t.Errorf("fast path reported fallback: %+v", rep)
	}
	if rep.Threads != 4 || rep.Elapsed <= 0 {
		t.Errorf("report = %+v, want Threads=4 and a positive Elapsed", rep)
	}
	if err := hierarchy.Validate(h, g, core); err != nil {
		t.Errorf("fast-path hierarchy invalid: %v", err)
	}
	// Nil ctx is allowed and means background.
	if _, _, _, err := hcd.BuildCtx(nil, g, hcd.Options{Threads: 2}); err != nil {
		t.Errorf("nil ctx: %v", err)
	}
}

// TestBuildCtxFallsBackOnInjectedPanic is the tentpole acceptance check:
// with a panic injected into any PHCD step or the peeling phases, BuildCtx
// must still succeed — via the serial baseline — report the recovered
// cause, produce a Validate-clean hierarchy, and leak no goroutines.
func TestBuildCtxFallsBackOnInjectedPanic(t *testing.T) {
	defer faultinject.Disable()
	g := gen.ErdosRenyi(500, 2000, 4)
	want, wantCore := hcd.BuildHCDSerial(g, hcd.CoreDecompositionSerial(g)), hcd.CoreDecompositionSerial(g)
	// The peeling sites belong to the default kernel (the buffered one,
	// hcd.DefaultPeelKernel) — the build pipeline only runs that kernel.
	sites := []string{
		"coredecomp.buffered.collect", "coredecomp.buffered.peel",
		"phcd.step1", "phcd.step2", "phcd.step3", "phcd.step4",
	}
	for _, site := range sites {
		if err := faultinject.Enable(site + ":panic:1"); err != nil {
			t.Fatal(err)
		}
		before := runtime.NumGoroutine()
		h, core, rep, err := hcd.BuildCtx(context.Background(), g, hcd.Options{Threads: 4})
		if err != nil {
			t.Fatalf("%s: BuildCtx failed outright: %v", site, err)
		}
		if !rep.Fallback || rep.Cause == nil {
			t.Fatalf("%s: fallback not reported: %+v", site, rep)
		}
		var f *faultinject.Fault
		if !errors.As(rep.Cause, &f) || f.Site != site {
			t.Errorf("%s: cause %v does not unwrap to the injected fault", site, rep.Cause)
		}
		if err := hierarchy.Validate(h, g, core); err != nil {
			t.Errorf("%s: fallback hierarchy invalid: %v", site, err)
		}
		if !reflect.DeepEqual(core, wantCore) {
			t.Errorf("%s: fallback coreness differs from serial baseline", site)
		}
		if h.NumNodes() != want.NumNodes() {
			t.Errorf("%s: fallback hierarchy has %d nodes, serial baseline %d",
				site, h.NumNodes(), want.NumNodes())
		}
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > before {
			t.Errorf("%s: goroutine leak: %d before, %d after", site, before, got)
		}
		faultinject.Disable()
	}
}

// TestBuildCtxCancellationIsNotRescued checks that caller-initiated
// cancellation propagates as an error instead of triggering the serial
// fallback (which would override the caller's decision to stop).
func TestBuildCtxCancellationIsNotRescued(t *testing.T) {
	defer faultinject.Disable()
	g := gen.ErdosRenyi(500, 2000, 5)
	// A delay rule pins step 1 so the cancel lands mid-build
	// deterministically, without depending on graph size or machine speed.
	if err := faultinject.Enable("phcd.step1:delay:1:300ms"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	h, _, rep, err := hcd.BuildCtx(ctx, g, hcd.Options{Threads: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildCtx = (%v, %+v, %v), want context.Canceled", h, rep, err)
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Errorf("cancelled build still took %v", el)
	}
}

func TestBuildCtxDeadline(t *testing.T) {
	defer faultinject.Disable()
	g := gen.ErdosRenyi(500, 2000, 6)
	// Without a delay the build finishes in well under a millisecond, so
	// pin the first PHCD step long enough to trip a short deadline.
	if err := faultinject.Enable("phcd.step1:delay:1:300ms"); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := hcd.BuildCtx(context.Background(), g,
		hcd.Options{Threads: 4, Deadline: 20 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	faultinject.Disable()
	// A deadline that is not hit leaves the build untouched.
	h, core, rep, err := hcd.BuildCtx(context.Background(), g,
		hcd.Options{Threads: 4, Deadline: time.Minute})
	if err != nil || rep.Fallback {
		t.Fatalf("generous deadline: err=%v rep=%+v", err, rep)
	}
	if err := hierarchy.Validate(h, g, core); err != nil {
		t.Error(err)
	}
}

func TestBuildCtxSelfVerify(t *testing.T) {
	g := gen.Onion(6, 12, 2, 2, 3, 7)
	h, core, rep, err := hcd.BuildCtx(context.Background(), g,
		hcd.Options{Threads: 4, SelfVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Errorf("SelfVerify set but report.Verified = false: %+v", rep)
	}
	if err := hierarchy.Validate(h, g, core); err != nil {
		t.Error(err)
	}
	// SelfVerify composes with the fallback path: inject a fault, and the
	// serial replacement must itself be verified.
	defer faultinject.Disable()
	if err := faultinject.Enable("phcd.step3:panic:1"); err != nil {
		t.Fatal(err)
	}
	_, _, rep2, err := hcd.BuildCtx(context.Background(), g,
		hcd.Options{Threads: 4, SelfVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Fallback || !rep2.Verified {
		t.Errorf("fallback+verify report = %+v, want Fallback and Verified", rep2)
	}
}

func TestBuildAndIndexCtx(t *testing.T) {
	defer faultinject.Disable()
	g := gen.BarabasiAlbert(400, 4, 8)
	ctx := context.Background()
	h, core, s, rep, err := hcd.BuildAndIndexCtx(ctx, g, hcd.Options{Threads: 4, SelfVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fallback || !rep.Verified {
		t.Errorf("report = %+v", rep)
	}
	if err := hierarchy.Validate(h, g, core); err != nil {
		t.Fatal(err)
	}
	r, srep, err := s.BestCtx(ctx, hcd.AverageDegree(), hcd.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if srep == nil || len(srep.Phases) == 0 {
		t.Errorf("BestCtx report = %+v, want phases", srep)
	}
	// The searcher from the fallback path answers the same query.
	if err := faultinject.Enable("phcd.step2:panic:1"); err != nil {
		t.Fatal(err)
	}
	_, _, s2, rep2, err := hcd.BuildAndIndexCtx(ctx, g, hcd.Options{Threads: 4})
	faultinject.Disable()
	if err != nil || !rep2.Fallback {
		t.Fatalf("fallback BuildAndIndexCtx: err=%v rep=%+v", err, rep2)
	}
	r2, _, err := s2.BestCtx(ctx, hcd.AverageDegree(), hcd.Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.K != r2.K || r.Score != r2.Score {
		t.Errorf("fallback searcher answer (k=%d, %v) != parallel answer (k=%d, %v)",
			r2.K, r2.Score, r.K, r.Score)
	}
}

// TestBestCtxContainsKernelPanic checks the public search entry point
// surfaces injected kernel panics as errors.
func TestBestCtxContainsKernelPanic(t *testing.T) {
	defer faultinject.Disable()
	g := gen.BarabasiAlbert(400, 4, 9)
	_, _, s, _, err := hcd.BuildAndIndexCtx(context.Background(), g, hcd.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Enable("search.typea:panic:1"); err != nil {
		t.Fatal(err)
	}
	_, _, err = s.BestCtx(context.Background(), hcd.AverageDegree(), hcd.Options{Threads: 4})
	var f *faultinject.Fault
	if err == nil || !errors.As(err, &f) {
		t.Errorf("BestCtx err = %v, want the injected fault", err)
	}
}

// TestBuildCtxCancelsLargeBuildEarly is the acceptance criterion's timing
// check without fault injection: cancelling a build of a non-trivial graph
// aborts well before the build would have completed at that thread count.
func TestBuildCtxCancelsLargeBuildEarly(t *testing.T) {
	g := gen.RMAT(16, 1<<19, 10)
	// Time one full build for scale.
	full := time.Now()
	if _, _, _, err := hcd.BuildCtx(context.Background(), g, hcd.Options{Threads: 2}); err != nil {
		t.Fatal(err)
	}
	fullDur := time.Since(full)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(fullDur / 20)
		cancel()
	}()
	start := time.Now()
	_, _, _, err := hcd.BuildCtx(ctx, g, hcd.Options{Threads: 2})
	el := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if el > fullDur/2+50*time.Millisecond {
		t.Errorf("cancelled build took %v of a %v full build — not an early abort", el, fullDur)
	}
}

// phaseNames extracts the Name of every reported phase in order.
func phaseNames(phases []hcd.PhaseStat) []string {
	out := make([]string, len(phases))
	for i, p := range phases {
		out[i] = p.Name
	}
	return out
}

// TestBuildReportPhases checks the instrumented BuildCtx breakdown: the
// expected phases appear in order and their durations account for
// (almost) all of Elapsed. The 70% floor is deliberately loose for noisy
// CI machines; the trace-level ≥95% criterion is carried by the "build"
// root span, which wraps the whole call by construction.
func TestBuildReportPhases(t *testing.T) {
	g := gen.RMAT(14, 1<<17, 11)
	_, _, rep, err := hcd.BuildCtx(context.Background(), g,
		hcd.Options{Threads: 4, SelfVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"peel", "phcd", "verify"}
	if got := phaseNames(rep.Phases); !reflect.DeepEqual(got, want) {
		t.Fatalf("phases = %v, want %v", got, want)
	}
	var sum time.Duration
	for _, p := range rep.Phases {
		if p.Duration <= 0 {
			t.Errorf("phase %s has non-positive duration %v", p.Name, p.Duration)
		}
		sum += p.Duration
	}
	if sum > rep.Elapsed {
		t.Errorf("phase sum %v exceeds Elapsed %v", sum, rep.Elapsed)
	}
	if float64(sum) < 0.7*float64(rep.Elapsed) {
		t.Errorf("phase sum %v covers under 70%% of Elapsed %v", sum, rep.Elapsed)
	}
}

// TestBuildAndIndexReportPhases checks the shared-layout pipeline's
// breakdown, including the worker statistics the par hooks feed in (the
// peel and phcd phases always run parallel primitives at Threads=4).
func TestBuildAndIndexReportPhases(t *testing.T) {
	g := gen.RMAT(14, 1<<17, 12)
	_, _, _, rep, err := hcd.BuildAndIndexCtx(context.Background(), g, hcd.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"peel", "rank+layout", "phcd", "index"}
	if got := phaseNames(rep.Phases); !reflect.DeepEqual(got, want) {
		t.Fatalf("phases = %v, want %v", got, want)
	}
	var sum time.Duration
	for _, p := range rep.Phases {
		sum += p.Duration
	}
	if float64(sum) < 0.7*float64(rep.Elapsed) || sum > rep.Elapsed {
		t.Errorf("phase sum %v vs Elapsed %v out of bounds", sum, rep.Elapsed)
	}
	for _, p := range rep.Phases {
		if p.Name != "peel" && p.Name != "phcd" {
			continue
		}
		if p.Stints <= 0 || p.Busy <= 0 {
			t.Skipf("no worker stats for %s (noobs build?): %+v", p.Name, p)
		}
		if p.MaxWorkers < 1 || p.MaxWorkers > p.Stints {
			t.Errorf("%s max workers = %d, want in [1, %d]", p.Name, p.MaxWorkers, p.Stints)
		}
		if p.Skew < 1 {
			t.Errorf("%s skew = %f, want >= 1", p.Name, p.Skew)
		}
	}
}

// TestSearchReportPhases checks BestCtx's report: both phases present,
// positive, and summing to ≈ Elapsed.
func TestSearchReportPhases(t *testing.T) {
	g := gen.RMAT(13, 1<<16, 13)
	_, _, s, _, err := hcd.BuildAndIndexCtx(context.Background(), g, hcd.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []hcd.Metric{hcd.AverageDegree(), hcd.ClusteringCoefficient()} {
		_, rep, err := s.BestCtx(context.Background(), m, hcd.Options{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"search.primary", "search.score"}
		if got := phaseNames(rep.Phases); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: phases = %v, want %v", m.Name(), got, want)
		}
		var sum time.Duration
		for _, p := range rep.Phases {
			if p.Duration <= 0 {
				t.Errorf("%s: phase %s duration %v", m.Name(), p.Name, p.Duration)
			}
			sum += p.Duration
		}
		if sum > rep.Elapsed {
			t.Errorf("%s: phase sum %v exceeds Elapsed %v", m.Name(), sum, rep.Elapsed)
		}
	}
}
