// Quickstart: the full HCD pipeline on the paper's Figure 1 pattern —
// build a graph, compute coreness in parallel, construct the hierarchy
// with PHCD, and search it with PBKS.
package main

import (
	"fmt"
	"log"

	"hcd"
)

func main() {
	// Figure-1-style graph: a 4-core (octahedron 0-5), a 3-core around it
	// (6-8), a disjoint 3-core (K4 on 9-12), and a 2-shell {13, 14}
	// gluing everything into one 2-core.
	edges := []hcd.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 4}, {U: 0, V: 5},
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 1, V: 5},
		{U: 2, V: 3}, {U: 2, V: 4},
		{U: 3, V: 4}, {U: 3, V: 5},
		{U: 4, V: 5},
		{U: 6, V: 0}, {U: 6, V: 1}, {U: 6, V: 7},
		{U: 7, V: 2}, {U: 7, V: 8},
		{U: 8, V: 3}, {U: 8, V: 4},
		{U: 9, V: 10}, {U: 9, V: 11}, {U: 9, V: 12},
		{U: 10, V: 11}, {U: 10, V: 12}, {U: 11, V: 12},
		{U: 13, V: 0}, {U: 13, V: 9},
		{U: 14, V: 5}, {U: 14, V: 10},
	}
	g, err := hcd.NewGraph(15, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Pipeline: parallel core decomposition (PKC-style) + PHCD.
	h, core := hcd.Build(g, hcd.Options{})
	fmt.Printf("coreness: %v\n", core)
	fmt.Printf("hierarchy: %d tree nodes, %d root(s)\n", h.NumNodes(), len(h.Roots()))
	for _, id := range h.TopDown() {
		fmt.Printf("  %s  vertices=%v\n", h.Node(id), h.Vertices[id])
	}

	// PBKS subgraph search across all built-in metrics.
	s := hcd.NewSearcher(g, core, h, hcd.Options{})
	for _, m := range hcd.Metrics() {
		r := s.Best(m, hcd.Options{})
		fmt.Printf("best k-core by %-22s: k=%d score=%.4f (n=%d, m=%d)\n",
			m.Name(), r.K, r.Score, r.Values.N, r.Values.M)
	}

	// Example 2 of the paper: the 3-core around the octahedron has the
	// highest average degree (38/9 ≈ 4.22, vs the 4-core's 4.0).
	r := s.Best(hcd.AverageDegree(), hcd.Options{})
	fmt.Printf("densest k-core vertices: %v\n", s.CoreVertices(r.Node))
}
