// User-engagement analysis (an application from the paper's introduction):
// coreness estimates a user's engagement level, and the HCD refines the
// estimate — users with the same coreness but in different tree nodes can
// behave differently.
//
// We simulate a social network with per-user activity that combines a
// coreness trend with a per-community effect, then run the library's
// engagement analysis: (i) average activity rises with coreness (the
// classical observation), and (ii) grouping users by HCD tree node removes
// additional residual variance — the refinement reported in [15].
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hcd"
)

func main() {
	// Several independent sub-communities with nested engagement tiers:
	// the onion generator plants parallel branches, so the same coreness
	// value occurs in several different k-cores — exactly the situation
	// where coreness alone cannot separate user populations.
	g := hcd.GenerateOnion(6, 80, 2, 3, 4, 7)
	fmt.Printf("social network: n=%d m=%d\n", g.NumVertices(), g.NumEdges())

	h, core := hcd.Build(g, hcd.Options{})
	fmt.Printf("hierarchy: %s\n", h.ComputeStats())

	// Simulated activity: a coreness trend, plus a per-community effect
	// (each k-core community has its own engagement culture), plus noise.
	// The community effect is what coreness alone cannot see.
	rng := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	communityEffect := make([]float64, h.NumNodes())
	for i := range communityEffect {
		communityEffect[i] = rng.Float64() * 12
	}
	activity := make([]float64, n)
	for v := 0; v < n; v++ {
		activity[v] = 5 + 3*float64(core[v]) + communityEffect[h.TID[v]] + rng.NormFloat64()*2
	}

	rep, err := hcd.AnalyzeEngagement(h, core, activity)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\navg activity by coreness (classical engagement estimate):")
	for _, s := range rep.Shells {
		fmt.Printf("  coreness %2d: %6.2f ± %5.2f  (%d users)\n", s.K, s.Mean, s.Std, s.Count)
	}
	fmt.Printf("\ncoreness-activity correlation: %.3f\n", rep.Correlation)
	fmt.Printf("pooled within-group variance:\n")
	fmt.Printf("  grouped by coreness only : %.3f\n", rep.VarCoreness)
	fmt.Printf("  grouped by HCD tree node : %.3f\n", rep.VarNode)
	fmt.Printf("  -> HCD position removes %.0f%% of the residual variance\n",
		100*rep.Refinement())
}
