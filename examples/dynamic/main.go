// Dynamic maintenance (the §VII companion problem): a stream of edge
// insertions and deletions with incrementally maintained coreness, orders
// of magnitude cheaper than recomputation — plus on-demand HCD rebuilds
// and influential community queries on the evolving graph.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"hcd"
)

func main() {
	// A layered community graph: its k-shells stay small, the regime where
	// traversal-based maintenance shines (per-op work is proportional to
	// the affected subcore, not the graph).
	g := hcd.GenerateOnion(8, 300, 2, 3, 4, 5)
	fmt.Printf("initial graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())

	m := hcd.NewMaintainer(g)
	rng := rand.New(rand.NewSource(8))
	n := int32(g.NumVertices())

	// Apply a mixed stream of mutations.
	const stream = 10000
	start := time.Now()
	inserts, removals := 0, 0
	for i := 0; i < stream; i++ {
		u, v := rng.Int31n(n), rng.Int31n(n)
		if u == v {
			continue
		}
		if m.HasEdge(u, v) {
			if err := m.RemoveEdge(u, v); err != nil {
				log.Fatal(err)
			}
			removals++
		} else {
			if err := m.InsertEdge(u, v); err != nil {
				log.Fatal(err)
			}
			inserts++
		}
	}
	incremental := time.Since(start)
	fmt.Printf("applied %d inserts + %d removals incrementally in %v (%.1f µs/op)\n",
		inserts, removals, incremental, float64(incremental.Microseconds())/float64(inserts+removals))

	// The order-based maintainer replays the same stream; on graphs with
	// giant shells its O(1) fast path is dramatically faster, and both
	// must agree everywhere.
	om := hcd.NewOrderMaintainer(g)
	rng = rand.New(rand.NewSource(8))
	start = time.Now()
	for i := 0; i < stream; i++ {
		u, v := rng.Int31n(n), rng.Int31n(n)
		if u == v {
			continue
		}
		if om.HasEdge(u, v) {
			if err := om.RemoveEdge(u, v); err != nil {
				log.Fatal(err)
			}
		} else {
			if err := om.InsertEdge(u, v); err != nil {
				log.Fatal(err)
			}
		}
	}
	orderT := time.Since(start)
	fmt.Printf("order-based maintainer replayed the stream in %v (%.1f µs/op)\n",
		orderT, float64(orderT.Microseconds())/float64(inserts+removals))

	// Compare against recomputation from scratch.
	snap := m.Snapshot()
	start = time.Now()
	recomputed := hcd.CoreDecompositionSerial(snap)
	full := time.Since(start)
	fmt.Printf("one full recomputation takes %v — the stream would have cost %v\n",
		full, full*time.Duration(inserts+removals))

	for v := int32(0); v < n; v++ {
		if m.Coreness(v) != recomputed[v] || om.Coreness(v) != recomputed[v] {
			log.Fatalf("maintained coreness diverged at vertex %d", v)
		}
	}
	fmt.Println("both maintainers match recomputation for every vertex")

	// The hierarchy rebuilds lazily; downstream queries keep working.
	h := m.Hierarchy(0)
	fmt.Printf("rebuilt HCD: %d tree nodes\n", h.NumNodes())
	q := hcd.NewLocalQuery(h)
	kmax := int32(0)
	for v := int32(0); v < n; v++ {
		if c := m.Coreness(v); c > kmax {
			kmax = c
		}
	}
	core := q.KCore(0, m.Coreness(0))
	fmt.Printf("the %d-core containing vertex 0 has %d vertices (kmax=%d)\n",
		m.Coreness(0), len(core), kmax)
}
