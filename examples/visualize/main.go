// Graph visualisation via the HCD (an application from the paper's
// introduction): the hierarchy is a compact fingerprint of a network's
// core structure. This example builds the HCD of a deeply nested graph,
// prints it as an ASCII tree, and writes Graphviz DOT for rendering.
package main

import (
	"fmt"
	"log"
	"os"

	"hcd"
)

func main() {
	g := hcd.GenerateOnion(7, 40, 2, 3, 3, 11)
	fmt.Printf("graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())

	h, core := hcd.Build(g, hcd.Options{})
	kmax := int32(0)
	for _, c := range core {
		if c > kmax {
			kmax = c
		}
	}
	fmt.Printf("kmax=%d, %d tree nodes\n\n", kmax, h.NumNodes())

	// ASCII rendering of the forest.
	depth := h.Depth()
	for _, id := range h.TopDown() {
		for i := int32(0); i < depth[id]; i++ {
			fmt.Print("  ")
		}
		fmt.Printf("k=%-3d |shell|=%-4d |core|=%d\n",
			h.K[id], len(h.Vertices[id]), h.CoreSize(id))
	}

	// DOT export for dot/graphviz rendering.
	out := "hcd.dot"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := h.WriteDOT(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("\nwrote %s (render with: dot -Tsvg %s -o hcd-dot.svg)\n", out, out)

	// Direct SVG icicle diagram, no external tools needed.
	sf, err := os.Create("hcd.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer sf.Close()
	if err := hcd.WriteSVG(sf, h, hcd.SVGOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote hcd.svg (icicle diagram; open in any browser)")
}
