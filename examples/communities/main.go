// Community search on one graph, three ways (the §VII application
// landscape): local k-core queries (ShellStruct-style), influential
// community search (ICP-Index-style) and attributed community search
// (CL-Tree-style), all running on the same decomposition.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hcd"
)

func main() {
	// A planted-partition "social network": 8 communities of 150 users.
	g := hcd.GeneratePlantedPartition(8, 150, 0.08, 0.0005, 3)
	n := g.NumVertices()
	fmt.Printf("network: n=%d m=%d\n", n, g.NumEdges())

	h, core := hcd.Build(g, hcd.Options{})
	kmax := int32(0)
	for _, c := range core {
		if c > kmax {
			kmax = c
		}
	}
	fmt.Printf("kmax=%d, %d tree nodes\n\n", kmax, h.NumNodes())

	// 1. Local queries: the k-core around a given user, in output time.
	q := hcd.NewLocalQuery(h)
	user := int32(10)
	for k := core[user]; k >= core[user]-2 && k >= 0; k-- {
		fmt.Printf("local query: the %d-core around user %d has %d members\n",
			k, user, len(q.KCore(user, k)))
	}

	// 2. Influential communities: weight = simulated follower count.
	rng := rand.New(rand.NewSource(4))
	weights := make([]float64, n)
	for v := range weights {
		weights[v] = rng.Float64() * 1000
	}
	top, err := hcd.TopInfluentialCommunities(g, weights, 4, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-3 4-influential communities (by follower count):\n")
	for i, c := range top {
		fmt.Printf("  #%d influence=%.0f followers, %d members\n",
			i+1, c.Influence, len(c.Vertices))
	}

	// 3. Attributed search: users carry interest keywords; find the
	// community around a user sharing as many interests as possible.
	attrs := make(hcd.VertexKeywords, n)
	for v := 0; v < n; v++ {
		comm := v / 150
		// Community-flavoured interests plus noise.
		attrs[v] = []int32{int32(comm)}
		if rng.Float64() < 0.5 {
			attrs[v] = append(attrs[v], int32(8+rng.Intn(4)))
		}
	}
	acq, err := hcd.AttributedSearch(g, attrs, user, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nattributed search around user %d (interests %v):\n", user, attrs[user])
	for _, c := range acq {
		fmt.Printf("  shared interests %v: community of %d users\n", c.Shared, len(c.Vertices))
	}
}
