// Densest-subgraph search (the paper's Table IV scenario): compare PBKS-D
// against the CoreApp-style baseline on a social-network-like graph, and
// check that the maximum clique lives inside PBKS-D's output — the
// clique-pruning property §V-C highlights.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"hcd"
)

func main() {
	// A preferential-attachment graph with a planted dense community
	// (vertices 0-59 pairwise connected with probability 0.8) — the kind
	// of input where the densest k-core is far smaller than the graph.
	base := hcd.GenerateBarabasiAlbert(30000, 8, 42)
	var edges []hcd.Edge
	base.Edges(func(u, v int32) { edges = append(edges, hcd.Edge{U: u, V: v}) })
	rng := rand.New(rand.NewSource(9))
	for i := int32(0); i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			if rng.Float64() < 0.8 {
				edges = append(edges, hcd.Edge{U: i, V: j})
			}
		}
	}
	g, err := hcd.NewGraph(base.NumVertices(), edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())

	start := time.Now()
	h, core := hcd.Build(g, hcd.Options{})
	fmt.Printf("decomposition + PHCD: %v (%d tree nodes)\n", time.Since(start), h.NumNodes())

	start = time.Now()
	sol := hcd.DensestSubgraph(g, core, h, hcd.Options{})
	fmt.Printf("PBKS-D: %v\n", time.Since(start))
	fmt.Printf("  best k-core: k=%d, avg degree %.3f, |S*|=%d (%.3f%% of n)\n",
		sol.K, sol.AvgDegree, len(sol.Vertices),
		100*float64(len(sol.Vertices))/float64(g.NumVertices()))

	// The kmax-core is the classical 0.5-approximation; PBKS-D can only
	// improve on it.
	kmax := int32(0)
	for _, c := range core {
		if c > kmax {
			kmax = c
		}
	}
	fmt.Printf("  kmax=%d (so the optimum is at most avg degree %d and at least %.3f)\n",
		kmax, 2*(kmax+1), sol.AvgDegree)

	start = time.Now()
	mc := hcd.MaximumClique(g)
	fmt.Printf("maximum clique: %v, size %d\n", time.Since(start), len(mc))
	in := make(map[int32]bool, len(sol.Vertices))
	for _, v := range sol.Vertices {
		in[v] = true
	}
	contained := true
	for _, v := range mc {
		if !in[v] {
			contained = false
			break
		}
	}
	fmt.Printf("maximum clique contained in S*: %v\n", contained)

	// The exact solver is exponential, so it refuses anything but toy
	// graphs — handle the error instead of assuming it can run.
	if _, err := hcd.DensestExact(g); err != nil {
		fmt.Printf("exact solver on the full graph: %v (expected)\n", err)
	}
	tiny, err := hcd.NewGraph(6, []hcd.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2},
		{U: 1, V: 3}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := hcd.DensestExact(tiny)
	if err != nil {
		log.Fatal(err)
	}
	tcore := hcd.CoreDecompositionSerial(tiny)
	th := hcd.BuildHCDSerial(tiny, tcore)
	approx := hcd.DensestSubgraph(tiny, tcore, th, hcd.Options{Threads: 1})
	fmt.Printf("toy graph: exact avg degree %.3f, PBKS-D %.3f (>= half of exact: %v)\n",
		exact.AvgDegree, approx.AvgDegree, approx.AvgDegree >= exact.AvgDegree/2)
}
