package hcd_test

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hcd"
)

// twoK4Bridge: two K4s (3-cores) joined through a coreness-2 vertex.
func twoK4Bridge(t *testing.T) *hcd.Graph {
	t.Helper()
	g, err := hcd.NewGraph(9, []hcd.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		{U: 4, V: 5}, {U: 4, V: 6}, {U: 4, V: 7}, {U: 5, V: 6}, {U: 5, V: 7}, {U: 6, V: 7},
		{U: 3, V: 8}, {U: 8, V: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicPipeline(t *testing.T) {
	g := twoK4Bridge(t)
	h, core := hcd.Build(g, hcd.Options{Threads: 2})
	if h.NumNodes() != 3 {
		t.Fatalf("|T| = %d, want 3", h.NumNodes())
	}
	if core[8] != 2 || core[0] != 3 {
		t.Fatalf("coreness wrong: %v", core)
	}
	s := hcd.NewSearcher(g, core, h, hcd.Options{})
	// The whole graph (2-core) has average degree 28/9 ≈ 3.11, beating
	// each K4's 3, so the root wins the average-degree search; internal
	// density, in contrast, is maximised by a K4.
	r := s.Best(hcd.AverageDegree(), hcd.Options{})
	if r.K != 2 || math.Abs(r.Score-28.0/9) > 1e-9 {
		t.Errorf("best k-core by avg degree should be the 2-core, got k=%d score %v", r.K, r.Score)
	}
	if got := len(s.CoreVertices(r.Node)); got != 9 {
		t.Errorf("winner core has %d vertices, want 9", got)
	}
	rd := s.Best(hcd.InternalDensity(), hcd.Options{})
	if rd.K != 3 || math.Abs(rd.Score-1) > 1e-9 {
		t.Errorf("best k-core by internal density should be a K4, got k=%d score %v", rd.K, rd.Score)
	}
}

func TestBuildAndIndexMatchesSeparateCalls(t *testing.T) {
	g := twoK4Bridge(t)
	for _, threads := range []int{1, 3} {
		opt := hcd.Options{Threads: threads}
		h, core, s := hcd.BuildAndIndex(g, opt)
		hRef, coreRef := hcd.Build(g, opt)
		for v := range coreRef {
			if core[v] != coreRef[v] {
				t.Fatalf("threads=%d: coreness differs at %d", threads, v)
			}
		}
		if h.NumNodes() != hRef.NumNodes() {
			t.Fatalf("threads=%d: |T| = %d, want %d", threads, h.NumNodes(), hRef.NumNodes())
		}
		sRef := hcd.NewSearcher(g, coreRef, hRef, opt)
		for _, m := range hcd.Metrics() {
			got := s.Best(m, opt)
			want := sRef.Best(m, opt)
			if got.K != want.K || math.Abs(got.Score-want.Score) > 1e-9 {
				t.Errorf("threads=%d metric %v: shared-layout search (k=%d, %v) differs from plain (k=%d, %v)",
					threads, m.Name(), got.K, got.Score, want.K, want.Score)
			}
		}
	}
}

func TestSerialBaselinesAgree(t *testing.T) {
	g := twoK4Bridge(t)
	coreS := hcd.CoreDecompositionSerial(g)
	coreP := hcd.CoreDecomposition(g, hcd.Options{Threads: 3})
	for v := range coreS {
		if coreS[v] != coreP[v] {
			t.Fatalf("serial/parallel coreness differ at %d", v)
		}
	}
	hs := hcd.BuildHCDSerial(g, coreS)
	hp := hcd.BuildHCD(g, coreS, hcd.Options{Threads: 3})
	if hs.NumNodes() != hp.NumNodes() {
		t.Errorf("LCPS and PHCD node counts differ: %d vs %d", hs.NumNodes(), hp.NumNodes())
	}
}

func TestMetricsRegistry(t *testing.T) {
	if len(hcd.Metrics()) != 8 {
		t.Errorf("Metrics() = %d entries, want 8", len(hcd.Metrics()))
	}
	m, err := hcd.MetricByName("conductance")
	if err != nil || m.Name() != "conductance" {
		t.Errorf("MetricByName failed: %v", err)
	}
	if _, err := hcd.MetricByName("nope"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestDensestAndClique(t *testing.T) {
	g := twoK4Bridge(t)
	h, core := hcd.Build(g, hcd.Options{})
	// The whole graph is the 2-core with average degree 28/9 ≈ 3.11, which
	// beats each K4's 3 — the best k-core is the root's core.
	d := hcd.DensestSubgraph(g, core, h, hcd.Options{})
	if math.Abs(d.AvgDegree-28.0/9) > 1e-9 || len(d.Vertices) != 9 {
		t.Errorf("densest = %v (%d verts), want 28/9 over the whole graph", d.AvgDegree, len(d.Vertices))
	}
	mc := hcd.MaximumClique(g)
	if len(mc) != 4 {
		t.Errorf("max clique size %d, want 4", len(mc))
	}
}

func TestBestK(t *testing.T) {
	g := twoK4Bridge(t)
	h, core := hcd.Build(g, hcd.Options{})
	s := hcd.NewSearcher(g, core, h, hcd.Options{})
	k, score, all := s.BestK(hcd.AverageDegree(), hcd.Options{})
	// K3 set = both K4s (8 vertices, 12 edges): avg degree 3; K2 set =
	// whole graph (9 vertices, 14 edges): 28/9 ≈ 3.11 — the best k is 2.
	if k != 2 || math.Abs(score-28.0/9) > 1e-9 {
		t.Errorf("BestK = (%d, %v), want (2, 3.111)", k, score)
	}
	if len(all) != 4 { // k = 0..3
		t.Errorf("per-level scores = %d entries, want 4", len(all))
	}
}

func TestReadEdgeListFacade(t *testing.T) {
	g, err := hcd.ReadEdgeList(strings.NewReader("0 1\n1 2\n2 0\n"))
	if err != nil || g.NumEdges() != 3 {
		t.Fatalf("ReadEdgeList: %v %v", g, err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	if err := g.WriteBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := hcd.ReadBinaryFile(path)
	if err != nil || g2.NumEdges() != 3 {
		t.Fatalf("ReadBinaryFile: %v %v", g2, err)
	}
	textPath := filepath.Join(dir, "g.txt")
	f, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g3, err := hcd.ReadEdgeListFile(textPath)
	if err != nil || g3.NumEdges() != 3 {
		t.Fatalf("ReadEdgeListFile: %v %v", g3, err)
	}
}

func TestGeneratorsAndVizFacade(t *testing.T) {
	gens := map[string]*hcd.Graph{
		"er":      hcd.GenerateErdosRenyi(100, 300, 1),
		"ba":      hcd.GenerateBarabasiAlbert(100, 3, 2),
		"rmat":    hcd.GenerateRMAT(7, 300, 3),
		"onion":   hcd.GenerateOnion(3, 10, 2, 2, 2, 4),
		"planted": hcd.GeneratePlantedPartition(3, 20, 0.3, 0.01, 5),
	}
	for name, g := range gens {
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: degenerate graph", name)
		}
	}
	g := gens["onion"]
	h, core := hcd.Build(g, hcd.Options{})
	var buf strings.Builder
	if err := hcd.WriteSVG(&buf, h, hcd.SVGOptions{Width: 300}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") || !strings.Contains(buf.String(), `width="300"`) {
		t.Error("SVG output wrong")
	}
	activity := make([]float64, g.NumVertices())
	for v := range activity {
		activity[v] = float64(core[v])
	}
	rep, err := hcd.AnalyzeEngagement(h, core, activity)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Correlation-1) > 1e-9 {
		t.Errorf("correlation = %v, want 1", rep.Correlation)
	}
	// Touch the remaining metric constructors.
	for _, m := range []hcd.Metric{hcd.CutRatio(), hcd.Conductance(), hcd.Modularity(), hcd.ClusteringCoefficient()} {
		if m.Name() == "" {
			t.Error("empty metric name")
		}
	}
}

func TestWeightedAndConstrainedFacade(t *testing.T) {
	g := twoK4Bridge(t)
	h, core := hcd.Build(g, hcd.Options{})
	s := hcd.NewSearcher(g, core, h, hcd.Options{})
	// Constrained to <= 4 vertices: the whole-graph 2-core is excluded and
	// a K4 wins.
	r := s.BestConstrained(hcd.AverageDegree(), 0, 4, hcd.Options{})
	if r.Node == hcd.NilNode || r.Values.N != 4 || math.Abs(r.Score-3) > 1e-9 {
		t.Errorf("constrained search = %+v, want a K4", r)
	}
	if r2 := s.BestConstrained(hcd.AverageDegree(), 50, 60, hcd.Options{}); r2.Node != hcd.NilNode {
		t.Error("impossible constraint should return NilNode")
	}
	// Assembled metric through the facade.
	w := hcd.WeightedMetric("density+cc",
		hcd.MetricTerm{Metric: hcd.InternalDensity(), Coeff: 1},
		hcd.MetricTerm{Metric: hcd.ClusteringCoefficient(), Coeff: 1},
	)
	if w.Name() != "density+cc" {
		t.Errorf("Name = %q", w.Name())
	}
	rw := s.Best(w, hcd.Options{})
	if math.Abs(rw.Score-2) > 1e-9 {
		t.Errorf("weighted best = %v, want 2 (K4: density 1 + clustering 1)", rw.Score)
	}
}
