package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"hcd/internal/graph"
)

func runGen(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestList(t *testing.T) {
	out, _, code := runGen(t, "-list", "-scale", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, abbrev := range []string{"AS", "LJ", "UK"} {
		if !strings.Contains(out, abbrev) {
			t.Errorf("list output missing %s:\n%s", abbrev, out)
		}
	}
}

func TestWriteSuiteDatasetBinary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.bin")
	out, _, code := runGen(t, "-dataset", "H", "-scale", "1", "-o", path)
	if code != 0 || !strings.Contains(out, "wrote "+path) {
		t.Fatalf("exit %d output %q", code, out)
	}
	g, err := graph.ReadBinaryFile(path)
	if err != nil || g.NumVertices() == 0 {
		t.Fatalf("written file unreadable: %v", err)
	}
}

func TestWriteCustomModelText(t *testing.T) {
	path := filepath.Join(t.TempDir(), "er.txt")
	_, _, code := runGen(t, "-model", "er", "-n", "50", "-m", "100", "-o", path, "-format", "text")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	g, err := graph.ReadEdgeListFile(path)
	if err != nil || g.NumEdges() == 0 {
		t.Fatalf("text file unreadable: %v", err)
	}
	// All five models must be accepted.
	for _, model := range []string{"ba", "rmat", "onion", "planted"} {
		p := filepath.Join(t.TempDir(), model+".bin")
		args := []string{"-model", model, "-o", p, "-n", "50", "-m", "200",
			"-logn", "6", "-layers", "3", "-width", "10", "-comms", "3", "-size", "10"}
		if _, errOut, code := runGen(t, args...); code != 0 {
			t.Errorf("model %s failed (exit %d): %s", model, code, errOut)
		}
	}
}

func TestGenErrors(t *testing.T) {
	if _, _, code := runGen(t); code != 2 {
		t.Error("missing -o and -model not rejected")
	}
	if _, _, code := runGen(t, "-o", "/tmp/x.bin"); code != 2 {
		t.Error("missing -model/-dataset not rejected")
	}
	if _, _, code := runGen(t, "-dataset", "ZZ", "-o", "/tmp/x.bin"); code != 2 {
		t.Error("unknown dataset not rejected")
	}
	if _, _, code := runGen(t, "-model", "er", "-o", "/tmp/x.bin", "-format", "xml"); code != 2 {
		t.Error("unknown format not rejected")
	}
	if _, _, code := runGen(t, "-model", "er", "-o", filepath.Join(t.TempDir(), "no", "dir", "x.bin")); code != 1 {
		t.Error("unwritable path not reported")
	}
	if _, _, code := runGen(t, "-definitely-not-a-flag"); code != 2 {
		t.Error("bad flag not rejected")
	}
}
