// Command gengraph writes synthetic benchmark graphs to disk, either one
// of the named suite datasets or a custom generator invocation.
//
// Usage:
//
//	gengraph -dataset LJ -scale 4 -o lj.bin
//	gengraph -model ba -n 100000 -k 8 -seed 7 -o ba.txt -format text
//	gengraph -model onion -layers 8 -width 200 -o onion.bin
//	gengraph -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hcd/internal/gen"
	"hcd/internal/graph"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the generator with explicit streams and returns an exit
// code; main is a thin wrapper so tests can drive it in-process.
func run(args []string, stdout, stderr io.Writer) int {
	flag := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	flag.SetOutput(stderr)
	dataset := flag.String("dataset", "", "suite dataset abbreviation (AS, LJ, H, O, HJ, A, IT, FS, SK, UK)")
	scale := flag.Int("scale", 4, "suite scale multiplier")
	model := flag.String("model", "", "custom generator: er, ba, rmat, onion, planted")
	n := flag.Int("n", 10000, "vertices (er, ba)")
	m := flag.Int("m", 50000, "edges (er, rmat)")
	k := flag.Int("k", 8, "attachment degree (ba)")
	logn := flag.Int("logn", 14, "log2 vertices (rmat)")
	layers := flag.Int("layers", 8, "onion layers")
	width := flag.Int("width", 200, "onion layer width")
	base := flag.Int("base", 2, "onion base degree")
	step := flag.Int("step", 4, "onion per-layer degree step")
	branches := flag.Int("branches", 2, "onion branches")
	comms := flag.Int("comms", 16, "planted-partition communities")
	size := flag.Int("size", 500, "planted-partition community size")
	pin := flag.Float64("pin", 0.1, "planted-partition intra probability")
	pout := flag.Float64("pout", 0.0005, "planted-partition inter probability")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output path (required unless -list)")
	format := flag.String("format", "bin", "output format: bin or text")
	list := flag.Bool("list", false, "list suite datasets and exit")
	if err := flag.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, d := range gen.Suite(*scale) {
			g := d.Build()
			fmt.Fprintf(stdout, "%-3s %-12s %-8s n=%d m=%d\n", d.Abbrev, d.Name, d.Kind, g.NumVertices(), g.NumEdges())
		}
		return 0
	}
	if *out == "" {
		fmt.Fprintln(stderr, "gengraph: -o is required")
		return 2
	}

	var g *graph.Graph
	switch {
	case *dataset != "":
		for _, d := range gen.Suite(*scale) {
			if d.Abbrev == *dataset {
				g = d.Build()
				break
			}
		}
		if g == nil {
			fmt.Fprintf(stderr, "gengraph: unknown dataset %q\n", *dataset)
			return 2
		}
	case *model == "er":
		g = gen.ErdosRenyi(*n, *m, *seed)
	case *model == "ba":
		g = gen.BarabasiAlbert(*n, *k, *seed)
	case *model == "rmat":
		g = gen.RMAT(*logn, *m, *seed)
	case *model == "onion":
		g = gen.Onion(*layers, *width, *base, *step, *branches, *seed)
	case *model == "planted":
		g = gen.PlantedPartition(*comms, *size, *pin, *pout, *seed)
	default:
		fmt.Fprintln(stderr, "gengraph: give -dataset or -model (er|ba|rmat|onion|planted)")
		return 2
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(stderr, "gengraph: %v\n", err)
		return 1
	}
	defer f.Close()
	switch *format {
	case "bin":
		err = g.WriteBinary(f)
	case "text":
		err = g.WriteEdgeList(f)
	default:
		fmt.Fprintf(stderr, "gengraph: unknown format %q\n", *format)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "gengraph: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s: n=%d m=%d\n", *out, g.NumVertices(), g.NumEdges())
	return 0
}
