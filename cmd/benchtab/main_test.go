package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "table2", "-scale", "1", "-reps", "1", "-datasets", "AS"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "== table2 ==") || !strings.Contains(out.String(), "AS") {
		t.Errorf("output wrong:\n%s", out.String())
	}
}

func TestRunSweepFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "fig4", "-scale", "1", "-reps", "1", "-sweep", "1,2", "-datasets", "AS"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "p=2") {
		t.Errorf("sweep column missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "table99"}, &out, &errb); code != 1 {
		t.Error("unknown experiment not rejected")
	}
	if code := run([]string{"-sweep", "0,x"}, &out, &errb); code != 2 {
		t.Error("bad sweep not rejected")
	}
	if code := run([]string{"-not-a-flag"}, &out, &errb); code != 2 {
		t.Error("bad flag not rejected")
	}
}
