package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hcd/internal/bench"
)

func TestRunSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "table2", "-scale", "1", "-reps", "1", "-datasets", "AS"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "== table2 ==") || !strings.Contains(out.String(), "AS") {
		t.Errorf("output wrong:\n%s", out.String())
	}
}

func TestRunSweepFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "fig4", "-scale", "1", "-reps", "1", "-sweep", "1,2", "-datasets", "AS"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "p=2") {
		t.Errorf("sweep column missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "table99"}, &out, &errb); code != 1 {
		t.Error("unknown experiment not rejected")
	}
	if code := run([]string{"-sweep", "0,x"}, &out, &errb); code != 2 {
		t.Error("bad sweep not rejected")
	}
	if code := run([]string{"-threads", "1,zero"}, &out, &errb); code != 2 {
		t.Error("bad thread list not rejected")
	}
	if code := run([]string{"-not-a-flag"}, &out, &errb); code != 2 {
		t.Error("bad flag not rejected")
	}
	if code := run([]string{"-compare", "a.json"}, &out, &errb); code != 2 {
		t.Error("-compare without a candidate journal not rejected")
	}
	if code := run([]string{"-compare", "missing-old.json", "missing-new.json"}, &out, &errb); code != 1 {
		t.Error("-compare with unreadable journals not rejected")
	}
}

// TestRunThreadSweep drives the phcd journal experiment through the CLI
// with a multi-entry -threads list — the paper-style sweep invocation.
func TestRunThreadSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is slow")
	}
	path := filepath.Join(t.TempDir(), "phcd.json")
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "phcd", "-scale", "1", "-reps", "1",
		"-threads", "1,2", "-json", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	rep, err := bench.ReadReport(path)
	if err != nil {
		t.Fatalf("journal unreadable: %v", err)
	}
	if len(rep.Threads) != 2 || rep.Threads[0] != 1 || rep.Threads[1] != 2 {
		t.Errorf("journal sweep = %v, want [1 2]", rep.Threads)
	}
	if !strings.Contains(out.String(), "serial frac") {
		t.Errorf("scaling table missing:\n%s", out.String())
	}
}

// writeJournal writes a minimal single-cell journal for compare tests.
func writeJournal(t *testing.T, path string, minNS int64) {
	t.Helper()
	rep := bench.Report{
		Experiment: "phcd",
		Manifest: bench.Manifest{Schema: bench.SchemaVersion, GoVersion: "go1.24",
			OS: "linux", Arch: "amd64", NumCPU: 8, GoMaxProcs: 8,
			Obs: true, FaultInject: true, Scale: 4, Suite: "phcd-full-v1"},
		Threads: []int{1},
		Reps:    3,
		Cells: []bench.Cell{{Dataset: "d", Kernel: "phcd", Threads: 1,
			SamplesNS: []int64{minNS}, MinNS: minNS, MedianNS: minNS}},
	}
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompareAndGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	samePath := filepath.Join(dir, "same.json")
	slowPath := filepath.Join(dir, "slow.json")
	writeJournal(t, oldPath, 1_000_000)
	writeJournal(t, samePath, 1_000_000)
	writeJournal(t, slowPath, 1_500_000)

	// Self-compare: everything within noise, gate stays green.
	var out, errb bytes.Buffer
	if code := run([]string{"-compare", oldPath, samePath, "-gate"}, &out, &errb); code != 0 {
		t.Fatalf("self-compare exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "0 regressed") {
		t.Errorf("self-compare report wrong:\n%s", out.String())
	}

	// Confirmed regression: gate exits 3 and the markdown lands in -report.
	reportPath := filepath.Join(dir, "report.md")
	out.Reset()
	errb.Reset()
	code := run([]string{"-compare", oldPath, slowPath, "-report", reportPath, "-gate"}, &out, &errb)
	if code != 3 {
		t.Fatalf("gated regression exit %d, want 3: %s", code, errb.String())
	}
	md, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	if !strings.Contains(string(md), "**regressed**") {
		t.Errorf("report missing regression row:\n%s", md)
	}

	// Without -gate the same regression only reports, exit 0.
	out.Reset()
	if code := run([]string{"-compare", oldPath, slowPath}, &out, &errb); code != 0 {
		t.Errorf("ungated compare exit %d, want 0", code)
	}
}
