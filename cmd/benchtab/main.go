// Command benchtab regenerates the paper's evaluation tables and figures
// (§V) on the synthetic dataset suite.
//
// Usage:
//
//	benchtab -exp table3                 # one experiment
//	benchtab -exp all -scale 4 -reps 3   # the full evaluation
//	benchtab -exp fig4 -sweep 1,2,4,8 -datasets AS,LJ,H
//	benchtab -exp phcd -scale 4 -json BENCH_phcd.json
//
// Experiments: table2 table3 table4 table5 fig4 fig5 fig6 fig7 fig8 fig9
// fig10 ablation maintenance phcd. See DESIGN.md for what each reproduces
// and EXPERIMENTS.md for recorded results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hcd/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the harness with explicit streams and returns an exit code;
// main is a thin wrapper so tests can drive it in-process.
func run(args []string, stdout, stderr io.Writer) int {
	flag := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	flag.SetOutput(stderr)
	exp := flag.String("exp", "all", "experiment name or 'all'")
	scale := flag.Int("scale", 4, "dataset scale multiplier")
	threads := flag.Int("threads", 0, "parallel thread count (0 = GOMAXPROCS)")
	reps := flag.Int("reps", 3, "timing repetitions (minimum reported)")
	sweep := flag.String("sweep", "", "comma-separated thread sweep for figures (default 1,2,4,..,GOMAXPROCS)")
	datasets := flag.String("datasets", "", "comma-separated dataset abbreviations (default all ten)")
	jsonPath := flag.String("json", "", "write a machine-readable report here (experiments that support it: phcd)")
	if err := flag.Parse(args); err != nil {
		return 2
	}

	cfg := bench.Config{
		Scale:    *scale,
		Threads:  *threads,
		Reps:     *reps,
		Out:      stdout,
		JSONPath: *jsonPath,
	}
	if *sweep != "" {
		for _, part := range strings.Split(*sweep, ",") {
			t, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || t < 1 {
				fmt.Fprintf(stderr, "benchtab: bad sweep entry %q\n", part)
				return 2
			}
			cfg.Sweep = append(cfg.Sweep, t)
		}
	}
	if *datasets != "" {
		for _, part := range strings.Split(*datasets, ",") {
			cfg.Datasets = append(cfg.Datasets, strings.TrimSpace(part))
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = bench.Names()
	}
	for i, name := range names {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		fmt.Fprintf(stdout, "== %s ==\n", name)
		if err := bench.Run(name, cfg); err != nil {
			fmt.Fprintf(stderr, "benchtab: %v\n", err)
			return 1
		}
	}
	return 0
}
