// Command benchtab regenerates the paper's evaluation tables and figures
// (§V) on the synthetic dataset suite, runs the scaling-sweep journal
// experiments, and compares recorded journals.
//
// Usage:
//
//	benchtab -exp table3                 # one experiment
//	benchtab -exp all -scale 4 -reps 3   # the full evaluation
//	benchtab -exp fig4 -sweep 1,2,4,8 -datasets AS,LJ,H
//	benchtab -exp phcd -threads 1,2,4,8 -json BENCH_phcd.json
//	benchtab -exp phcd -kernels buffered,hindex -threads 1,2,4,8
//	benchtab -exp search -threads 1,2,4 -json BENCH_search.json
//	benchtab -exp serve -threads 1,2,4 -json BENCH_serve.json
//	benchtab -compare old.json new.json -report report.md -gate
//
// Experiments: table2 table3 table4 table5 fig4 fig5 fig6 fig7 fig8 fig9
// fig10 ablation maintenance phcd search serve. See DESIGN.md for what each
// reproduces and EXPERIMENTS.md for recorded results and the per-figure
// command table.
//
// Compare mode loads two experiment journals, classifies every cell
// improved / regressed / within-noise against a MAD-derived noise band,
// and prints a markdown report. With -gate the process exits 3 when the
// journals' manifests are comparable and at least one regression is
// confirmed beyond the band; incomparable journals (different hardware,
// toolchain, or build flavour) never gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hcd/internal/bench"
	"hcd/internal/coredecomp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the harness with explicit streams and returns an exit code;
// main is a thin wrapper so tests can drive it in-process. Exit codes:
// 0 success, 1 experiment failure, 2 usage, 3 gated perf regression.
func run(args []string, stdout, stderr io.Writer) int {
	flag := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	flag.SetOutput(stderr)
	exp := flag.String("exp", "all", "experiment name or 'all'")
	scale := flag.Int("scale", 4, "dataset scale multiplier")
	threads := flag.String("threads", "", "thread count, or a comma-separated sweep (threads, or clients for serve) for the journal experiments (default GOMAXPROCS)")
	reps := flag.Int("reps", 3, "timing repetitions (minimum reported)")
	sweep := flag.String("sweep", "", "comma-separated thread sweep for figures (default 1,2,4,..,GOMAXPROCS)")
	datasets := flag.String("datasets", "", "comma-separated dataset abbreviations (default all ten)")
	kernels := flag.String("kernels", "", "comma-separated peeling kernels for the phcd sweep: levelsync,buffered,hindex (default all)")
	jsonPath := flag.String("json", "", "write a machine-readable journal here (experiments that support it: phcd, search, serve)")
	compare := flag.String("compare", "", "baseline journal: compare the candidate journal (positional argument) against it")
	reportPath := flag.String("report", "", "with -compare: also write the markdown report to this file")
	gate := flag.Bool("gate", false, "with -compare: exit 3 on a confirmed regression between comparable runs")
	if err := flag.Parse(args); err != nil {
		return 2
	}

	if *compare != "" {
		// The candidate journal is positional (benchtab -compare old new
		// [-report x -gate]); stdlib flag stops at the first positional, so
		// re-parse anything after it to keep trailing flags working.
		rest := flag.Args()
		if len(rest) == 0 {
			fmt.Fprintln(stderr, "benchtab: -compare needs a candidate journal: benchtab -compare old.json new.json")
			return 2
		}
		candidate := rest[0]
		if err := flag.Parse(rest[1:]); err != nil {
			return 2
		}
		if flag.NArg() != 0 {
			fmt.Fprintf(stderr, "benchtab: unexpected arguments after the candidate journal: %v\n", flag.Args())
			return 2
		}
		return runCompare(*compare, candidate, *reportPath, *gate, stdout, stderr)
	}

	cfg := bench.Config{
		Scale:    *scale,
		Reps:     *reps,
		Out:      stdout,
		JSONPath: *jsonPath,
	}
	list, err := parseThreadList(*threads)
	if err != nil {
		fmt.Fprintf(stderr, "benchtab: %v\n", err)
		return 2
	}
	switch len(list) {
	case 0:
	case 1:
		cfg.Threads = list[0]
	default:
		cfg.Sweep = list
		for _, t := range list {
			if t > cfg.Threads {
				cfg.Threads = t
			}
		}
	}
	if *sweep != "" {
		cfg.Sweep, err = parseThreadList(*sweep)
		if err != nil || len(cfg.Sweep) == 0 {
			fmt.Fprintf(stderr, "benchtab: bad -sweep %q\n", *sweep)
			return 2
		}
	}
	if *datasets != "" {
		for _, part := range strings.Split(*datasets, ",") {
			cfg.Datasets = append(cfg.Datasets, strings.TrimSpace(part))
		}
	}
	if *kernels != "" {
		for _, part := range strings.Split(*kernels, ",") {
			name := strings.TrimSpace(part)
			if _, err := coredecomp.ParseKernel(name); err != nil || name == "" {
				fmt.Fprintf(stderr, "benchtab: bad -kernels entry %q (have levelsync, buffered, hindex)\n", name)
				return 2
			}
			cfg.Kernels = append(cfg.Kernels, name)
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = bench.Names()
	}
	for i, name := range names {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		fmt.Fprintf(stdout, "== %s ==\n", name)
		if err := bench.Run(name, cfg); err != nil {
			fmt.Fprintf(stderr, "benchtab: %v\n", err)
			return 1
		}
	}
	return 0
}

// parseThreadList parses a comma-separated list of positive thread
// counts; empty input yields nil.
func parseThreadList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || t < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, t)
	}
	return out, nil
}

// runCompare implements -compare: old journal from the flag, candidate
// journal as the sole positional argument.
func runCompare(oldPath, candidate, reportPath string, gate bool, stdout, stderr io.Writer) int {
	oldRep, err := bench.ReadReport(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchtab: %v\n", err)
		return 1
	}
	newRep, err := bench.ReadReport(candidate)
	if err != nil {
		fmt.Fprintf(stderr, "benchtab: %v\n", err)
		return 1
	}
	c := bench.Compare(oldRep, newRep)
	md := c.Markdown()
	fmt.Fprint(stdout, md)
	if reportPath != "" {
		if err := os.WriteFile(reportPath, []byte(md), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchtab: writing %s: %v\n", reportPath, err)
			return 1
		}
	}
	if gate && c.HasRegressions() {
		fmt.Fprintf(stderr, "benchtab: %d confirmed regression(s) beyond the noise band\n", c.Count(bench.DeltaRegressed))
		return 3
	}
	return 0
}
