package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hcd"
)

// writeTestGraph writes the two-K4-plus-bridge graph to a temp binary file.
func writeTestGraph(t *testing.T) string {
	t.Helper()
	g, err := hcd.NewGraph(9, []hcd.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		{U: 4, V: 5}, {U: 4, V: 6}, {U: 4, V: 7}, {U: 5, V: 6}, {U: 5, V: 7}, {U: 6, V: 7},
		{U: 3, V: 8}, {U: 8, V: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := g.WriteBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func runTool(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(context.Background(), args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestRunStats(t *testing.T) {
	path := writeTestGraph(t)
	out, _, code := runTool(t, "-cmd", "stats", "-in", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "n=9 m=14") || !strings.Contains(out, "components=1") {
		t.Errorf("stats output wrong:\n%s", out)
	}
}

func TestRunDecompose(t *testing.T) {
	path := writeTestGraph(t)
	out, _, code := runTool(t, "-cmd", "decompose", "-in", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "kmax=3") || !strings.Contains(out, "shell    2: 1 vertices") {
		t.Errorf("decompose output wrong:\n%s", out)
	}
}

func TestRunBuildWithExports(t *testing.T) {
	path := writeTestGraph(t)
	dir := t.TempDir()
	dot := filepath.Join(dir, "h.dot")
	idx := filepath.Join(dir, "h.idx")
	out, _, code := runTool(t, "-cmd", "build", "-in", path, "-dot", dot, "-index", idx)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "nodes=3") {
		t.Errorf("build output wrong:\n%s", out)
	}
	for _, p := range []string{dot, idx} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("export %s missing or empty", p)
		}
	}
}

func TestRunSearchAndBestK(t *testing.T) {
	path := writeTestGraph(t)
	out, _, code := runTool(t, "-cmd", "search", "-in", path, "-metric", "internal-density", "-top", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "best k-core: k=3 score=1.000000") {
		t.Errorf("search output wrong:\n%s", out)
	}
	out, _, code = runTool(t, "-cmd", "bestk", "-in", path)
	if code != 0 || !strings.Contains(out, "best k for average-degree: k=2") {
		t.Errorf("bestk output wrong (exit %d):\n%s", code, out)
	}
}

func TestRunDensestCliqueKcoreTrussInfluence(t *testing.T) {
	path := writeTestGraph(t)
	out, _, code := runTool(t, "-cmd", "densest", "-in", path)
	if code != 0 || !strings.Contains(out, "avg-degree=3.1111") {
		t.Errorf("densest wrong (exit %d):\n%s", code, out)
	}
	out, _, code = runTool(t, "-cmd", "clique", "-in", path)
	if code != 0 || !strings.Contains(out, "size 4") {
		t.Errorf("clique wrong (exit %d):\n%s", code, out)
	}
	out, _, code = runTool(t, "-cmd", "kcore", "-in", path, "-v", "0", "-k", "3")
	if code != 0 || !strings.Contains(out, "has 4 vertices") {
		t.Errorf("kcore wrong (exit %d):\n%s", code, out)
	}
	out, _, code = runTool(t, "-cmd", "kcore", "-in", path, "-v", "8", "-k", "3")
	if code != 0 || !strings.Contains(out, "no 3-core") {
		t.Errorf("kcore-miss wrong (exit %d):\n%s", code, out)
	}
	out, _, code = runTool(t, "-cmd", "truss", "-in", path)
	if code != 0 || !strings.Contains(out, "max trussness=4") {
		t.Errorf("truss wrong (exit %d):\n%s", code, out)
	}
	out, _, code = runTool(t, "-cmd", "influence", "-in", path, "-k", "3", "-top", "2")
	if code != 0 || !strings.Contains(out, "#1 influence=") {
		t.Errorf("influence wrong (exit %d):\n%s", code, out)
	}
}

func TestRunTextFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, code := runTool(t, "-cmd", "stats", "-in", path, "-format", "text")
	if code != 0 || !strings.Contains(out, "n=3 m=3") {
		t.Errorf("text format wrong (exit %d):\n%s", code, out)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	if _, _, code := runTool(t); code != 2 {
		t.Error("missing -in not rejected")
	}
	if _, errOut, code := runTool(t, "-cmd", "nonsense", "-in", path); code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Error("unknown command not rejected")
	}
	if _, _, code := runTool(t, "-cmd", "stats", "-in", filepath.Join(t.TempDir(), "absent.bin")); code != 1 {
		t.Error("missing file not reported")
	}
	if _, _, code := runTool(t, "-cmd", "search", "-in", path, "-metric", "bogus"); code != 1 {
		t.Error("unknown metric not rejected")
	}
	if _, _, code := runTool(t, "-cmd", "kcore", "-in", path, "-v", "99"); code != 2 {
		t.Error("out-of-range vertex not rejected")
	}
	if _, _, code := runTool(t, "-bad-flag"); code != 2 {
		t.Error("bad flag not rejected")
	}
}

// TestRunFaultsFallsBackAndVerifies drives the containment path end to
// end through the CLI: an injected PHCD panic degrades to the serial
// baseline (reported on stderr), the build still succeeds, and -verify
// validates the replacement.
func TestRunFaultsFallsBackAndVerifies(t *testing.T) {
	path := writeTestGraph(t)
	// -threads 4 forces the parallel path (where the fault sites live)
	// even on single-CPU machines.
	out, errOut, code := runTool(t, "-cmd", "build", "-in", path,
		"-threads", "4", "-faults", "phcd.step1:panic:1", "-verify")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "serial fallback") {
		t.Errorf("fallback not reported on stderr:\n%s", errOut)
	}
	if !strings.Contains(out, "built HCD") {
		t.Errorf("build output missing:\n%s", out)
	}
	// A bad spec is rejected up front.
	if _, _, code := runTool(t, "-cmd", "build", "-in", path, "-faults", "nonsense"); code != 1 {
		t.Error("bad -faults spec not rejected")
	}
}

// TestRunInterrupted checks a cancelled context maps to the conventional
// 128+SIGINT exit code.
func TestRunInterrupted(t *testing.T) {
	path := writeTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	code := run(ctx, []string{"-cmd", "build", "-in", path}, &out, &errb)
	if code != 130 {
		t.Errorf("exit %d, want 130; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "interrupted") {
		t.Errorf("stderr = %q, want an interrupted notice", errb.String())
	}
}

func TestRunDeadlineFlagParses(t *testing.T) {
	path := writeTestGraph(t)
	// A generous deadline must not perturb a normal build.
	out, errOut, code := runTool(t, "-cmd", "build", "-in", path, "-deadline", "1m")
	if code != 0 || !strings.Contains(out, "built HCD") {
		t.Errorf("exit %d:\n%s%s", code, out, errOut)
	}
}

func TestRunMaintain(t *testing.T) {
	path := writeTestGraph(t)
	dir := t.TempDir()
	streamPath := filepath.Join(dir, "ops.txt")
	ops := "# connect the two K4s, then undo\ni 0 4\ni 1 5\nd 0 4\nd 1 5\n"
	if err := os.WriteFile(streamPath, []byte(ops), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"traversal", "order"} {
		out, errOut, code := runTool(t, "-cmd", "maintain", "-in", path,
			"-stream", streamPath, "-engine", engine)
		if code != 0 {
			t.Fatalf("engine %s: exit %d: %s", engine, code, errOut)
		}
		if !strings.Contains(out, "applied 4 operations") || !strings.Contains(out, "kmax=3") {
			t.Errorf("engine %s output wrong:\n%s", engine, out)
		}
	}
	// Errors.
	if _, _, code := runTool(t, "-cmd", "maintain", "-in", path); code != 2 {
		t.Error("missing -stream not rejected")
	}
	if _, _, code := runTool(t, "-cmd", "maintain", "-in", path,
		"-stream", streamPath, "-engine", "warp"); code != 2 {
		t.Error("unknown engine not rejected")
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("x 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, code := runTool(t, "-cmd", "maintain", "-in", path, "-stream", bad); code != 1 {
		t.Error("malformed stream not rejected")
	}
	dup := filepath.Join(dir, "dup.txt")
	if err := os.WriteFile(dup, []byte("i 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, code := runTool(t, "-cmd", "maintain", "-in", path, "-stream", dup); code != 1 {
		t.Error("duplicate edge insert not reported")
	}
}

// TestRunBuildPrintsPhases checks the human summary carries the
// per-phase breakdown for build and search.
func TestRunBuildPrintsPhases(t *testing.T) {
	path := writeTestGraph(t)
	out, _, code := runTool(t, "-cmd", "build", "-in", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"build phases:", "peel", "phcd"} {
		if !strings.Contains(out, want) {
			t.Errorf("build output missing %q:\n%s", want, out)
		}
	}
	out, _, code = runTool(t, "-cmd", "search", "-in", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"search phases:", "search.primary", "search.score"} {
		if !strings.Contains(out, want) {
			t.Errorf("search output missing %q:\n%s", want, out)
		}
	}
}

// TestRunTraceExport checks -trace writes valid Chrome trace JSON whose
// root "build" span contains the pipeline phases — the span covers the
// whole BuildCtx call by construction, which is how the trace accounts
// for (≥95% of) BuildReport.Elapsed.
func TestRunTraceExport(t *testing.T) {
	path := writeTestGraph(t)
	tracePath := filepath.Join(t.TempDir(), "out.json")
	_, errOut, code := runTool(t, "-cmd", "build", "-in", path, "-trace", tracePath)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, "wrote trace to") {
		t.Errorf("trace write not reported:\n%s", errOut)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
	}
	if len(tr.TraceEvents) == 0 {
		t.Skip("empty trace (noobs build)")
	}
	var build *struct{ ts, dur float64 }
	seen := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		seen[ev.Name] = true
		if ev.Name == "build" {
			build = &struct{ ts, dur float64 }{ev.Ts, ev.Dur}
		}
	}
	if build == nil {
		t.Fatalf("no root build span in trace: %v", seen)
	}
	// coredecomp.buffered is the journal-selected default peeling
	// kernel's root span (hcd.DefaultPeelKernel).
	for _, want := range []string{"peel", "phcd", "coredecomp.buffered"} {
		if !seen[want] {
			t.Errorf("trace missing span %q (have %v)", want, seen)
		}
	}
	// Every span the command recorded fits inside the root build span
	// (1µs slack for timestamp rounding) — the ≥95% coverage argument.
	for _, ev := range tr.TraceEvents {
		if ev.Ts+1 < build.ts || ev.Ts+ev.Dur > build.ts+build.dur+1 {
			t.Errorf("span %s [%f,+%f] outside build [%f,+%f]",
				ev.Name, ev.Ts, ev.Dur, build.ts, build.dur)
		}
	}
}

// TestRunDebugAddr checks the -debug-addr server starts (and a bad
// address is rejected).
func TestRunDebugAddr(t *testing.T) {
	path := writeTestGraph(t)
	_, errOut, code := runTool(t, "-cmd", "stats", "-in", path, "-debug-addr", "127.0.0.1:0")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, "debug server on http://127.0.0.1:") {
		t.Errorf("debug server address not reported:\n%s", errOut)
	}
	if _, _, code := runTool(t, "-cmd", "stats", "-in", path, "-debug-addr", "256.0.0.1:bogus"); code != 1 {
		t.Error("bad -debug-addr not rejected")
	}
}
