// Command hcdtool runs the HCD pipeline on a graph file: statistics, core
// decomposition, hierarchy construction, subgraph search, densest-subgraph
// and maximum-clique queries, plus DOT export for visualisation.
//
// Usage:
//
//	hcdtool -cmd stats     -in g.bin
//	hcdtool -cmd decompose -in g.txt -format text
//	hcdtool -cmd build     -in g.bin -dot hcd.dot -index hcd.idx
//	hcdtool -cmd search    -in g.bin -metric conductance
//	hcdtool -cmd densest   -in g.bin
//	hcdtool -cmd clique    -in g.bin
//	hcdtool -cmd bestk     -in g.bin -metric average-degree
//	hcdtool -cmd kcore     -in g.bin -v 17 -k 5
//	hcdtool -cmd truss     -in g.bin
//	hcdtool -cmd influence -in g.bin -k 3 -top 5
//	hcdtool -cmd maintain  -in g.bin -stream ops.txt -engine order
//
// Input formats: "bin" (gengraph/WriteBinary) or "text" (SNAP edge list).
//
// -kernel selects the core-decomposition peeling kernel (levelsync,
// buffered, or hindex); unset, the journal-selected default is used.
// All kernels produce identical coreness arrays — the switch exists for
// performance comparison (benchtab -exp phcd records the journal that
// picks the default).
//
// Builds are interruptible: Ctrl-C (or SIGTERM) cancels the pipeline and
// the tool exits 130. -deadline bounds a build, -verify validates the
// hierarchy before use (a validation failure exits 3), and -faults arms
// the fault injector (testing).
//
// Observability: -trace writes a Chrome trace-event JSON of the run
// (load it in chrome://tracing or Perfetto), and -debug-addr serves
// /metrics (Prometheus text), /trace, /debug/vars (expvar) and
// /debug/pprof/ while the command runs. Both are no-ops under the noobs
// build tag apart from valid empty output.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hcd"
	"hcd/internal/faultinject"
	"hcd/internal/obs"
)

func main() {
	// SIGINT/SIGTERM cancel the build context: parallel phases notice at
	// the next level/chunk boundary, workers drain, and the tool exits
	// cleanly with the conventional 128+SIGINT code instead of dying
	// mid-allocation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool with explicit streams and returns a process exit
// code; main is a thin wrapper so tests can drive every command in-process.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	flag := flag.NewFlagSet("hcdtool", flag.ContinueOnError)
	flag.SetOutput(stderr)
	cmd := flag.String("cmd", "stats", "stats | decompose | build | search | densest | clique | bestk | kcore | truss | influence")
	in := flag.String("in", "", "input graph path (required)")
	format := flag.String("format", "bin", "input format: bin or text")
	metric := flag.String("metric", "average-degree", "metric for search/bestk")
	threads := flag.Int("threads", 0, "threads (0 = GOMAXPROCS)")
	kernel := flag.String("kernel", "", "peeling kernel: levelsync | buffered | hindex (default: journal-selected)")
	dot := flag.String("dot", "", "write the hierarchy in DOT format to this path (build)")
	svg := flag.String("svg", "", "write the hierarchy as an SVG icicle diagram to this path (build)")
	index := flag.String("index", "", "write the binary HCD index to this path (build)")
	top := flag.Int("top", 5, "number of results to print (search, influence)")
	vFlag := flag.Int("v", 0, "query vertex (kcore)")
	kFlag := flag.Int("k", 2, "core level (kcore, influence)")
	stream := flag.String("stream", "", "edge stream file for maintain: one 'i u v' or 'd u v' per line")
	engine := flag.String("engine", "order", "maintenance engine: traversal or order")
	deadline := flag.Duration("deadline", 0, "abort the build after this long (0 = no limit)")
	verify := flag.Bool("verify", false, "self-verify the built hierarchy before using it (exit 3 on failure)")
	faults := flag.String("faults", "", "fault-injection spec, e.g. 'phcd.step2:panic:1' (testing)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this path")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /trace, /debug/vars and /debug/pprof/ on this address while the command runs (e.g. localhost:6060)")
	if err := flag.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(stderr, "hcdtool: interrupted")
			return 130
		}
		fmt.Fprintf(stderr, "hcdtool: %v\n", err)
		if errors.Is(err, hcd.ErrVerification) {
			return 3
		}
		return 1
	}
	if *faults != "" {
		if err := faultinject.Enable(*faults); err != nil {
			return fail(err)
		}
		defer faultinject.Disable()
	}
	if *tracePath != "" {
		// Scope the ring buffer to this command, and write it out deferred
		// so the trace covers the whole run, whichever path it exits
		// through.
		obs.ResetTrace()
		defer func() {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintf(stderr, "hcdtool: trace: %v\n", err)
				return
			}
			werr := obs.WriteTrace(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintf(stderr, "hcdtool: trace: %v\n", werr)
				return
			}
			fmt.Fprintf(stderr, "hcdtool: wrote trace to %s\n", *tracePath)
		}()
	}
	// The memory sampler runs for the whole command: the deferred final
	// sample records the run's heap/goroutine peaks, so even a short
	// build leaves its hcd_mem_* watermarks in the expvar/metrics
	// exposition (and in the -debug-addr scrape). No-op under noobs.
	stopMemSampler := obs.StartMemSampler(0)
	defer stopMemSampler()
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fail(err)
		}
		obs.PublishExpvar()
		srv := &http.Server{Handler: obs.Handler()}
		go srv.Serve(ln)
		// Drain rather than abort on the way out: an in-flight /metrics
		// scrape gets a short grace period to complete instead of being
		// torn mid-response by an abrupt Close.
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				_ = srv.Close() // scrape overran the grace period
			}
		}()
		fmt.Fprintf(stderr, "hcdtool: debug server on http://%s/\n", ln.Addr())
	}

	if *in == "" {
		fmt.Fprintln(stderr, "hcdtool: -in is required")
		return 2
	}
	var g *hcd.Graph
	var err error
	if *format == "text" {
		g, err = hcd.ReadEdgeListFile(*in)
	} else {
		g, err = hcd.ReadBinaryFile(*in)
	}
	if err != nil {
		return fail(err)
	}
	peelKernel, err := hcd.ParsePeelKernel(*kernel)
	if err != nil {
		fmt.Fprintf(stderr, "hcdtool: %v\n", err)
		return 2
	}
	opt := hcd.Options{Threads: *threads, Deadline: *deadline, SelfVerify: *verify, Kernel: peelKernel}
	// build runs the containment-aware pipeline: Ctrl-C cancels it, -deadline
	// bounds it, a parallel-path failure degrades to the serial baseline
	// (reported on stderr), and -verify validates the result before use.
	build := func() (*hcd.HCD, []int32, error) {
		h, core, rep, err := hcd.BuildCtx(ctx, g, opt)
		if rep != nil && rep.Fallback {
			fmt.Fprintf(stderr, "hcdtool: parallel build failed (%v); serial fallback used\n", rep.Cause)
		}
		if err != nil {
			return nil, nil, err
		}
		printPhases(stdout, "build", rep.Phases, rep.Elapsed)
		return h, core, nil
	}

	switch *cmd {
	case "stats":
		fmt.Fprintf(stdout, "n=%d m=%d avg-degree=%.2f max-degree=%d\n",
			g.NumVertices(), g.NumEdges(), g.AvgDegree(), g.MaxDegree())
		_, cc := g.ConnectedComponents()
		fmt.Fprintf(stdout, "components=%d\n", cc)

	case "decompose":
		start := time.Now()
		core := hcd.CoreDecomposition(g, opt)
		fmt.Fprintf(stdout, "core decomposition in %v\n", time.Since(start))
		hist := map[int32]int{}
		kmax := int32(0)
		for _, c := range core {
			hist[c]++
			if c > kmax {
				kmax = c
			}
		}
		fmt.Fprintf(stdout, "kmax=%d\n", kmax)
		var ks []int32
		for k := range hist {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		for _, k := range ks {
			fmt.Fprintf(stdout, "  shell %4d: %d vertices\n", k, hist[k])
		}

	case "build":
		start := time.Now()
		h, core, err := build()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "built HCD in %v: %s\n", time.Since(start), h.ComputeStats())
		_ = core
		if *dot != "" {
			f, err := os.Create(*dot)
			if err != nil {
				return fail(err)
			}
			if err := h.WriteDOT(f); err != nil {
				f.Close()
				return fail(err)
			}
			f.Close()
			fmt.Fprintf(stdout, "wrote DOT to %s\n", *dot)
		}
		if *svg != "" {
			f, err := os.Create(*svg)
			if err != nil {
				return fail(err)
			}
			if err := hcd.WriteSVG(f, h, hcd.SVGOptions{}); err != nil {
				f.Close()
				return fail(err)
			}
			f.Close()
			fmt.Fprintf(stdout, "wrote SVG to %s\n", *svg)
		}
		if *index != "" {
			f, err := os.Create(*index)
			if err != nil {
				return fail(err)
			}
			if err := h.WriteBinary(f); err != nil {
				f.Close()
				return fail(err)
			}
			f.Close()
			fmt.Fprintf(stdout, "wrote index to %s\n", *index)
		}

	case "search":
		m, err := hcd.MetricByName(*metric)
		if err != nil {
			return fail(err)
		}
		h, core, err := build()
		if err != nil {
			return fail(err)
		}
		s := hcd.NewSearcher(g, core, h, opt)
		start := time.Now()
		r, srep, err := s.BestCtx(ctx, m, opt)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "search (%s) in %v\n", m.Name(), time.Since(start))
		printPhases(stdout, "search", srep.Phases, srep.Elapsed)
		if r.Node == hcd.NilNode {
			fmt.Fprintln(stdout, "empty hierarchy")
			return 0
		}
		fmt.Fprintf(stdout, "best k-core: k=%d score=%.6f n=%d m=%d b=%d\n",
			r.K, r.Score, r.Values.N, r.Values.M, r.Values.B)
		// Top-scoring nodes.
		type cand struct {
			id    int
			score float64
		}
		cands := make([]cand, len(r.Scores))
		for i, sc := range r.Scores {
			cands[i] = cand{i, sc}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })
		limit := min(*top, len(cands))
		for i := 0; i < limit; i++ {
			c := cands[i]
			fmt.Fprintf(stdout, "  #%d node %d (k=%d): %.6f\n", i+1, c.id, h.K[c.id], c.score)
		}

	case "densest":
		h, core, err := build()
		if err != nil {
			return fail(err)
		}
		start := time.Now()
		d := hcd.DensestSubgraph(g, core, h, opt)
		fmt.Fprintf(stdout, "PBKS-D in %v: k=%d avg-degree=%.4f |S*|=%d (%.4f%% of n)\n",
			time.Since(start), d.K, d.AvgDegree, len(d.Vertices),
			100*float64(len(d.Vertices))/float64(g.NumVertices()))

	case "clique":
		start := time.Now()
		mc := hcd.MaximumClique(g)
		fmt.Fprintf(stdout, "maximum clique in %v: size %d: %v\n", time.Since(start), len(mc), mc)

	case "bestk":
		m, err := hcd.MetricByName(*metric)
		if err != nil {
			return fail(err)
		}
		h, core, err := build()
		if err != nil {
			return fail(err)
		}
		s := hcd.NewSearcher(g, core, h, opt)
		k, score, _ := s.BestK(m, opt)
		fmt.Fprintf(stdout, "best k for %s: k=%d score=%.6f\n", m.Name(), k, score)

	case "kcore":
		h, _, err := build()
		if err != nil {
			return fail(err)
		}
		q := hcd.NewLocalQuery(h)
		v, k := int32(*vFlag), int32(*kFlag)
		if v < 0 || int(v) >= g.NumVertices() {
			fmt.Fprintf(stderr, "hcdtool: vertex %d out of range\n", v)
			return 2
		}
		start := time.Now()
		kc := q.KCore(v, k)
		if kc == nil {
			fmt.Fprintf(stdout, "vertex %d has no %d-core (coreness %d)\n", v, k, q.CorenessOf(v))
			return 0
		}
		fmt.Fprintf(stdout, "the %d-core containing vertex %d has %d vertices (query %v)\n",
			k, v, len(kc), time.Since(start))

	case "truss":
		start := time.Now()
		ix, tr := hcd.TrussDecomposition(g)
		fmt.Fprintf(stdout, "truss decomposition in %v\n", time.Since(start))
		hist := map[int32]int{}
		kmax := int32(2)
		for _, k := range tr {
			hist[k]++
			if k > kmax {
				kmax = k
			}
		}
		fmt.Fprintf(stdout, "max trussness=%d\n", kmax)
		var ks []int32
		for k := range hist {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		for _, k := range ks {
			fmt.Fprintf(stdout, "  trussness %4d: %d edges\n", k, hist[k])
		}
		th := hcd.TrussHierarchy(g, ix, tr)
		fmt.Fprintf(stdout, "truss hierarchy: %d tree nodes\n", th.NumNodes())

	case "influence":
		// Default weights: vertex degree (a common engagement proxy).
		w := make([]float64, g.NumVertices())
		for v := range w {
			w[v] = float64(g.Degree(int32(v)))
		}
		start := time.Now()
		topr, err := hcd.TopInfluentialCommunities(g, w, int32(*kFlag), *top)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "top-%d %d-influential communities (degree weights) in %v\n",
			*top, *kFlag, time.Since(start))
		for i, c := range topr {
			fmt.Fprintf(stdout, "  #%d influence=%.1f |H|=%d\n", i+1, c.Influence, len(c.Vertices))
		}

	case "maintain":
		if *stream == "" {
			fmt.Fprintln(stderr, "hcdtool: -stream is required for maintain")
			return 2
		}
		ops, err := readStream(*stream)
		if err != nil {
			return fail(err)
		}
		var eng maintEngine
		switch *engine {
		case "traversal":
			eng = hcd.NewMaintainer(g)
		case "order":
			eng = hcd.NewOrderMaintainer(g)
		default:
			fmt.Fprintf(stderr, "hcdtool: unknown engine %q\n", *engine)
			return 2
		}
		start := time.Now()
		applied := 0
		for _, o := range ops {
			var err error
			if o.insert {
				err = eng.InsertEdge(o.u, o.v)
			} else {
				err = eng.RemoveEdge(o.u, o.v)
			}
			if err != nil {
				return fail(err)
			}
			applied++
		}
		el := time.Since(start)
		fmt.Fprintf(stdout, "applied %d operations with the %s engine in %v (%.1f µs/op)\n",
			applied, *engine, el, float64(el.Microseconds())/float64(max(applied, 1)))
		kmax := int32(0)
		for v := int32(0); v < int32(eng.NumVertices()); v++ {
			if c := eng.Coreness(v); c > kmax {
				kmax = c
			}
		}
		fmt.Fprintf(stdout, "final graph: m=%d kmax=%d\n", eng.NumEdges(), kmax)

	default:
		fmt.Fprintf(stderr, "hcdtool: unknown command %q\n", *cmd)
		return 2
	}
	return 0
}

// printPhases prints one line per pipeline phase: duration, share of the
// total, and worker balance when the obs layer recorded any stints.
func printPhases(w io.Writer, what string, phases []hcd.PhaseStat, total time.Duration) {
	if len(phases) == 0 {
		return
	}
	fmt.Fprintf(w, "%s phases:\n", what)
	for _, p := range phases {
		fmt.Fprintf(w, "  %-14s %12v", p.Name, p.Duration.Round(time.Microsecond))
		if total > 0 {
			fmt.Fprintf(w, " (%5.1f%%)", 100*float64(p.Duration)/float64(total))
		}
		if p.Stints > 0 {
			fmt.Fprintf(w, "  stints=%d workers<=%d chunks=%d skew=%.2f",
				p.Stints, p.MaxWorkers, p.Chunks, p.Skew)
		}
		fmt.Fprintln(w)
	}
}

// maintEngine is the shared surface of the two dynamic maintainers.
type maintEngine interface {
	InsertEdge(u, v int32) error
	RemoveEdge(u, v int32) error
	Coreness(v int32) int32
	NumVertices() int
	NumEdges() int64
}

type streamOp struct {
	insert bool
	u, v   int32
}

// readStream parses a mutation stream: one "i u v" (insert) or "d u v"
// (delete) per line; '#' lines are comments.
func readStream(path string) ([]streamOp, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ops []streamOp
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || (fields[0] != "i" && fields[0] != "d") {
			return nil, fmt.Errorf("stream line %d: want 'i u v' or 'd u v', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("stream line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("stream line %d: %v", lineNo, err)
		}
		ops = append(ops, streamOp{insert: fields[0] == "i", u: int32(u), v: int32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}
