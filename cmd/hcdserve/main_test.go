package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"hcd/internal/faultinject"
	"hcd/internal/gen"
)

// syncBuffer is a mutex-guarded bytes.Buffer: run writes to it from the
// server goroutine while the test polls it for the listen address.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func writeTestGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := gen.ErdosRenyi(200, 800, 3).WriteBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

var addrRe = regexp.MustCompile(`http://(127\.0\.0\.1:\d+)/`)

// TestRunServesAndDrainsCleanly drives the command end to end in
// process: serve a real graph on an ephemeral port, query it over HTTP,
// then cancel the context (the SIGTERM path) and require exit code 0.
func TestRunServesAndDrainsCleanly(t *testing.T) {
	path := writeTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, []string{"-in", path, "-addr", "127.0.0.1:0", "-threads", "2"}, &stdout, &stderr)
	}()

	var base string
	for i := 0; i < 1000 && base == ""; i++ {
		if m := addrRe.FindStringSubmatch(stdout.String()); m != nil {
			base = "http://" + m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if base == "" {
		t.Fatalf("no listen address announced; stderr: %s", stderr.String())
	}

	// Wait for readiness, then check one real query round-trips.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ok {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became ready; stderr: %s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get(base + "/search?metric=average-degree&min_size=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !json.Valid(body) {
		t.Fatalf("search: status %d body %q", resp.StatusCode, body)
	}
	var sr struct {
		Found bool   `json:"found"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(body, &sr); err != nil || !sr.Found || sr.Epoch != 1 {
		t.Fatalf("search body %s (err %v)", body, err)
	}

	cancel()
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code %d after graceful drain, want 0; stderr: %s", c, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
	if !strings.Contains(stderr.String(), "drain: complete") {
		t.Errorf("drain completion not logged; stderr: %s", stderr.String())
	}
}

// TestRunUsageErrors pins the usage exit code for operator mistakes.
func TestRunUsageErrors(t *testing.T) {
	path := writeTestGraph(t)
	cases := [][]string{
		{}, // -in missing
		{"-in", path, "-format", "xml"},
		{"-in", path, "-kernel", "warp-drive"},
		{"-in", path, "positional"},
	}
	if faultinject.Compiled() {
		// Under nofaults a bad spec only warns (the injector is compiled
		// out), so the server would start instead of exiting.
		cases = append(cases, []string{"-in", path, "-faults", "not-a-spec"})
	}
	for _, args := range cases {
		var out, errb syncBuffer
		if code := run(context.Background(), args, &out, &errb); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}
