// Command hcdserve runs the resident HCD query service: it loads (or
// watches) a graph, builds the hierarchy + search index as an atomic
// snapshot, and serves search/reconstruct/stats queries over HTTP+JSON
// with admission control, load shedding and graceful drain (see
// internal/serve and DESIGN.md "Service robustness").
//
//	hcdserve -in g.bin -addr 127.0.0.1:8080
//	hcdserve -in g.txt -format text -watch -threads 4
//	curl 'http://127.0.0.1:8080/search?metric=average-degree&min_size=10'
//	curl 'http://127.0.0.1:8080/reconstruct?v=17&k=5'
//	curl -X POST http://127.0.0.1:8080/reload
//
// SIGINT/SIGTERM starts a graceful drain: admission stops, in-flight
// queries finish against -drain-timeout, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hcd"
	"hcd/internal/faultinject"
	"hcd/internal/obs"
	"hcd/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the server with explicit streams and returns an exit
// code; main is a thin wrapper so tests can drive it in-process. Exit
// codes: 0 clean drain, 1 runtime failure, 2 usage.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hcdserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	in := fs.String("in", "", "input graph path (required)")
	format := fs.String("format", "bin", "input format: bin (WriteBinaryFile) or text (edge list)")
	threads := fs.Int("threads", 0, "build/query worker count (0 = GOMAXPROCS)")
	kernel := fs.String("kernel", "", "peeling kernel: levelsync, buffered, hindex (default journal-selected)")
	verify := fs.Bool("verify", false, "self-verify every rebuilt hierarchy before publishing it")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently executing queries (0 = 2×GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", 0, "admission wait-queue bound (0 = 4×max-inflight)")
	queueWait := fs.Duration("queue-wait", 0, "max time a query waits for an execution slot (0 = 250ms)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-query deadline cap (0 = 30s)")
	drainTimeout := fs.Duration("drain-timeout", 0, "graceful-drain bound on SIGTERM/SIGINT (0 = 10s)")
	watch := fs.Bool("watch", false, "poll -in and rebuild the snapshot when it changes")
	watchInterval := fs.Duration("watch-interval", 0, "poll interval for -watch (0 = 2s)")
	faults := fs.String("faults", "", "fault-injection spec, e.g. serve.query:panic:3 (HCD_FAULTS env also honoured)")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	slowQuery := fs.Duration("slow-query", 0, "served-query latency logged at warn and counted against the SLO (0 = 500ms)")
	sloWindow := fs.Duration("slo-window", 0, "sliding window for the /stats SLO section (0 = 60s)")
	requestLog := fs.Int("request-log", 0, "completed requests kept for /debug/requests (0 = 128)")
	memSample := fs.Duration("mem-sample", 0, "memory sampler cadence for the hcd_mem_* gauges (0 = 100ms, negative disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "hcdserve: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *in == "" {
		fmt.Fprintln(stderr, "hcdserve: -in is required")
		return 2
	}
	if *format != "bin" && *format != "text" {
		fmt.Fprintf(stderr, "hcdserve: bad -format %q (bin or text)\n", *format)
		return 2
	}
	k, err := hcd.ParsePeelKernel(*kernel)
	if err != nil {
		fmt.Fprintf(stderr, "hcdserve: %v\n", err)
		return 2
	}
	logger, err := buildLogger(stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(stderr, "hcdserve: %v\n", err)
		return 2
	}
	if *faults != "" {
		if err := faultinject.Enable(*faults); err != nil {
			if faultinject.Compiled() {
				fmt.Fprintf(stderr, "hcdserve: %v\n", err)
				return 2
			}
			fmt.Fprintf(stderr, "hcdserve: warning: %v\n", err)
		}
		defer faultinject.Disable()
	} else if err := faultinject.EnableFromEnv(); err != nil {
		if faultinject.Compiled() {
			fmt.Fprintf(stderr, "hcdserve: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "hcdserve: warning: %v\n", err)
	}

	cfg := serve.Config{
		Load: func() (*hcd.Graph, error) {
			if *format == "text" {
				return hcd.ReadEdgeListFile(*in)
			}
			return hcd.ReadBinaryFile(*in)
		},
		Build:          hcd.Options{Threads: *threads, Kernel: k, SelfVerify: *verify},
		MaxInflight:    *maxInflight,
		QueueDepth:     *queueDepth,
		QueueWait:      *queueWait,
		RequestTimeout: *reqTimeout,
		DrainTimeout:   *drainTimeout,
		WatchInterval:  *watchInterval,
		Logger:         logger,
		Log:            stderr,
		SlowQuery:      *slowQuery,
		SLOWindow:      *sloWindow,
		RequestLogSize: *requestLog,
	}
	if *watch {
		cfg.WatchPath = *in
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "hcdserve: %v\n", err)
		return 1
	}
	if *memSample >= 0 {
		// Heap-live watermarks, goroutine peaks, and GC pause quantiles
		// for the /metrics hcd_mem_* family; a no-op under noobs.
		stopSampler := obs.StartMemSampler(*memSample)
		defer stopSampler()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "hcdserve: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "hcdserve: listening on http://%s/ (readiness at /readyz)\n", ln.Addr())
	if err := srv.Run(ctx, ln); err != nil {
		fmt.Fprintf(stderr, "hcdserve: %v\n", err)
		return 1
	}
	return 0
}

// buildLogger assembles the structured logger behind -log-format and
// -log-level. Timestamps are dropped in favour of slog's defaults only
// when the format is unknown — that's a usage error.
func buildLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (text or json)", format)
	}
}
