// hcdlint runs the repository's static-analysis suite (internal/lint):
// tag-parity, determinism, panic-safety, site-hygiene, errcheck, and
// the call-graph-backed ctx-propagation, atomic-discipline,
// goroutine-lifetime and hot-loop-alloc checks.
//
// Usage:
//
//	go run ./cmd/hcdlint ./...             lint the whole module
//	go run ./cmd/hcdlint ./internal/core   lint one directory
//	go run ./cmd/hcdlint -tags noobs ./... lint the noobs file set
//	go run ./cmd/hcdlint -tagsets default,noobs,nofaults ./...
//	                                       lint every flavour in one
//	                                       process (shared package cache)
//	go run ./cmd/hcdlint -json ./...       machine-readable findings
//	go run ./cmd/hcdlint -list             print the check catalogue
//
// Exit status: 0 clean, 1 findings, 2 usage or load error. Waive a
// finding with a `//hcdlint:allow <check> <reason>` comment on the
// offending line or the line above (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hcd/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("hcdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tags := fs.String("tags", "", "comma-separated build tags to lint under")
	tagsets := fs.String("tagsets", "", `comma-separated tag sets to lint in one process ("default" = no tags); findings are deduplicated across sets`)
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	list := fs.Bool("list", false, "print the check catalogue and exit")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range lint.AllChecks() {
			fmt.Fprintf(stdout, "%-18s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	if *tags != "" && *tagsets != "" {
		fmt.Fprintln(stderr, "hcdlint: -tags and -tagsets are mutually exclusive")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// Validate the check selection before the (expensive) module load, and
	// report every unknown name at once.
	checks := lint.AllChecks()
	if *checksFlag != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*checksFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Check
		for _, c := range checks {
			if want[c.Name] {
				sel = append(sel, c)
				delete(want, c.Name)
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for name := range want {
				unknown = append(unknown, fmt.Sprintf("%q", name))
			}
			sort.Strings(unknown)
			fmt.Fprintf(stderr, "hcdlint: unknown check(s) %s (see -list)\n", strings.Join(unknown, ", "))
			return 2
		}
		checks = sel
	}

	// Resolve the flavours to lint: one (-tags, possibly empty) or
	// several (-tagsets), all sharing one loader family so unchanged
	// packages type-check once.
	type flavour struct {
		name string
		tags []string
	}
	var flavours []flavour
	switch {
	case *tagsets != "":
		seen := map[string]bool{}
		for _, name := range strings.Split(*tagsets, ",") {
			name = strings.TrimSpace(name)
			if name == "" || seen[name] {
				continue
			}
			seen[name] = true
			fl := flavour{name: name}
			if name != "default" {
				fl.tags = strings.Split(name, " ")
			}
			flavours = append(flavours, fl)
		}
		if len(flavours) == 0 {
			fmt.Fprintln(stderr, "hcdlint: -tagsets lists no tag sets")
			return 2
		}
	case *tags != "":
		flavours = []flavour{{name: *tags, tags: strings.Split(*tags, ",")}}
	default:
		flavours = []flavour{{name: "default"}}
	}

	base, err := lint.NewLoader(".", flavours[0].tags)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	// Findings deduplicate across flavours; each remembers which tag sets
	// produced it so flavour-specific findings are labelled.
	var diags []lint.Diagnostic
	diagSets := map[lint.Diagnostic][]string{}
	for i, fl := range flavours {
		loader := base
		if i > 0 {
			loader = base.Variant(fl.tags)
		}
		pkgs, err := loadPatterns(loader, patterns)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		ctx := &lint.Context{Loader: loader, Pkgs: pkgs}
		ds, err := lint.Run(ctx, checks)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		// Report module-root-relative paths: stable across machines, and
		// clickable from the repo root where CI and developers run this.
		for _, d := range ds {
			if rel, err := filepath.Rel(loader.Dir, d.File); err == nil && !strings.HasPrefix(rel, "..") {
				d.File = filepath.ToSlash(rel)
			}
			if _, dup := diagSets[d]; !dup {
				diags = append(diags, d)
			}
			diagSets[d] = append(diagSets[d], fl.name)
		}
	}
	if len(flavours) > 1 {
		for i := range diags {
			if sets := diagSets[diags[i]]; len(sets) < len(flavours) {
				diags[i].Message += " (tag sets: " + strings.Join(sets, ", ") + ")"
			}
		}
		sort.Slice(diags, func(i, j int) bool {
			a, b := diags[i], diags[j]
			if a.File != b.File {
				return a.File < b.File
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			if a.Col != b.Col {
				return a.Col < b.Col
			}
			return a.Check < b.Check
		})
	}

	if *jsonOut {
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "hcdlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// loadPatterns materialises the requested packages under one loader.
func loadPatterns(loader *lint.Loader, patterns []string) ([]*lint.Package, error) {
	var pkgs []*lint.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		var batch []*lint.Package
		var err error
		switch {
		case pat == "./..." || pat == "...":
			batch, err = loader.ModulePackages()
		default:
			var p *lint.Package
			p, err = loader.LoadDir(filepath.Clean(pat))
			if p != nil {
				batch = []*lint.Package{p}
			}
		}
		if err != nil {
			return nil, err
		}
		for _, p := range batch {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	return pkgs, nil
}
