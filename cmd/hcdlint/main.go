// hcdlint runs the repository's static-analysis suite (internal/lint):
// tag-parity, determinism, panic-safety, site-hygiene and errcheck.
//
// Usage:
//
//	go run ./cmd/hcdlint ./...             lint the whole module
//	go run ./cmd/hcdlint ./internal/core   lint one directory
//	go run ./cmd/hcdlint -tags noobs ./... lint the noobs file set
//	go run ./cmd/hcdlint -json ./...       machine-readable findings
//	go run ./cmd/hcdlint -list             print the check catalogue
//
// Exit status: 0 clean, 1 findings, 2 usage or load error. Waive a
// finding with a `//hcdlint:allow <check> <reason>` comment on the
// offending line or the line above (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hcd/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("hcdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tags := fs.String("tags", "", "comma-separated build tags to lint under")
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	list := fs.Bool("list", false, "print the check catalogue and exit")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range lint.AllChecks() {
			fmt.Fprintf(stdout, "%-14s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	loader, err := lint.NewLoader(".", tagList)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var pkgs []*lint.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		var batch []*lint.Package
		switch {
		case pat == "./..." || pat == "...":
			batch, err = loader.ModulePackages()
		default:
			var p *lint.Package
			p, err = loader.LoadDir(filepath.Clean(pat))
			if p != nil {
				batch = []*lint.Package{p}
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		for _, p := range batch {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	checks := lint.AllChecks()
	if *checksFlag != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*checksFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Check
		for _, c := range checks {
			if want[c.Name] {
				sel = append(sel, c)
				delete(want, c.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(stderr, "hcdlint: unknown check %q (see -list)\n", name)
			return 2
		}
		checks = sel
	}

	ctx := &lint.Context{Loader: loader, Pkgs: pkgs}
	diags, err := lint.Run(ctx, checks)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// Report module-root-relative paths: stable across machines, and
	// clickable from the repo root where CI and developers run this.
	for i := range diags {
		if rel, err := filepath.Rel(loader.Dir, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
	if *jsonOut {
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "hcdlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
