package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runLint invokes run() with captured stdout/stderr.
func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	capture := func(name string) (*os.File, func() string) {
		f, err := os.CreateTemp(t.TempDir(), name)
		if err != nil {
			t.Fatal(err)
		}
		return f, func() string {
			data, err := os.ReadFile(f.Name())
			if err != nil {
				t.Fatal(err)
			}
			f.Close()
			return string(data)
		}
	}
	outF, outRead := capture("stdout")
	errF, errRead := capture("stderr")
	code = run(args, outF, errF)
	return code, outRead(), errRead()
}

const fixtureRoot = "../../internal/lint/testdata/src"

func TestListPrintsCatalogue(t *testing.T) {
	code, out, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, check := range []string{"tag-parity", "determinism", "panic-safety", "site-hygiene", "errcheck",
		"ctx-propagation", "atomic-discipline", "goroutine-lifetime", "hot-loop-alloc"} {
		if !strings.Contains(out, check) {
			t.Errorf("-list output missing %q:\n%s", check, out)
		}
	}
}

// TestFixturesExitNonZero is the CLI half of the fixture acceptance:
// pointing hcdlint at each testdata package must exit 1 and report a
// finding positioned inside that package's file.
func TestFixturesExitNonZero(t *testing.T) {
	for fixture, check := range map[string]string{
		"core":        "determinism",
		"panicsafety": "panic-safety",
		"sitehygiene": "site-hygiene",
		"errcheck":    "errcheck",
		"allowdir":    "allow",
		"ctxprop":     "ctx-propagation",
		"atomics":     "atomic-discipline",
		"goroutines":  "goroutine-lifetime",
		"treeaccum":   "hot-loop-alloc",
	} {
		t.Run(fixture, func(t *testing.T) {
			code, out, errOut := runLint(t, filepath.Join(fixtureRoot, fixture))
			if code != 1 {
				t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
			}
			wantFile := "internal/lint/testdata/src/" + fixture + "/" + fixture + ".go:"
			if !strings.Contains(out, wantFile) {
				t.Errorf("findings not positioned in %s:\n%s", wantFile, out)
			}
			if !strings.Contains(out, "["+check+"]") {
				t.Errorf("no [%s] finding reported:\n%s", check, out)
			}
		})
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runLint(t, "-json", filepath.Join(fixtureRoot, "errcheck"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var doc struct {
		Version     int `json:"version"`
		Count       int `json:"count"`
		Diagnostics []struct {
			Check string `json:"check"`
			File  string `json:"file"`
			Line  int    `json:"line"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if doc.Count != len(doc.Diagnostics) || doc.Count == 0 {
		t.Fatalf("inconsistent count %d vs %d diagnostics", doc.Count, len(doc.Diagnostics))
	}
	for _, d := range doc.Diagnostics {
		if d.Check != "errcheck" || d.Line == 0 || !strings.HasSuffix(d.File, "errcheck.go") {
			t.Errorf("unexpected diagnostic %+v", d)
		}
	}
}

func TestChecksSubset(t *testing.T) {
	// The sitehygiene fixture has no errcheck findings, so restricting to
	// errcheck must come back clean.
	code, out, errOut := runLint(t, "-checks", "errcheck", filepath.Join(fixtureRoot, "sitehygiene"))
	if code != 0 {
		t.Errorf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if code, _, errOut := runLint(t, "-checks", "nosuchcheck", "."); code != 2 || !strings.Contains(errOut, "unknown check") {
		t.Errorf("unknown check: exit %d, stderr %q; want exit 2 naming the check", code, errOut)
	}
	// Every unknown name is reported at once, before the module load.
	if code, _, errOut := runLint(t, "-checks", "bogus,errcheck,alsobogus", "."); code != 2 ||
		!strings.Contains(errOut, `"bogus"`) || !strings.Contains(errOut, `"alsobogus"`) {
		t.Errorf("multiple unknown checks: exit %d, stderr %q; want exit 2 naming both", code, errOut)
	}
}

// TestTagsetsFlag pins the multi-flavour mode: one process, findings
// deduplicated across tag sets, -tags rejected alongside it.
func TestTagsetsFlag(t *testing.T) {
	code, out, errOut := runLint(t, "-tagsets", "default,noobs", filepath.Join(fixtureRoot, "errcheck"))
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	// The fixture is tag-free: identical findings under both sets must
	// appear once, with no tag-set annotation.
	if n := strings.Count(out, "[errcheck]"); n != strings.Count(out, "\n") {
		t.Errorf("duplicate or missing findings across tag sets:\n%s", out)
	}
	if strings.Contains(out, "tag sets:") {
		t.Errorf("findings common to every tag set must not be annotated:\n%s", out)
	}
	if code, _, errOut := runLint(t, "-tags", "noobs", "-tagsets", "default", "."); code != 2 ||
		!strings.Contains(errOut, "mutually exclusive") {
		t.Errorf("-tags with -tagsets: exit %d, stderr %q; want exit 2", code, errOut)
	}
}

// TestWholeModuleClean mirrors the CI gate from the CLI side.
func TestWholeModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped under -short")
	}
	code, out, errOut := runLint(t, "./...")
	if code != 0 {
		t.Errorf("tree has findings (exit %d):\n%s%s", code, out, errOut)
	}
}
