package hcd_test

import (
	"fmt"
	"sort"

	"hcd"
)

// fig1Graph builds the paper's Figure 1 pattern: an octahedral 4-core, a
// surrounding 3-core, a disjoint K4 3-core, and a 2-shell gluing all of it
// into one 2-core.
func fig1Graph() *hcd.Graph {
	edges := []hcd.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 4}, {U: 0, V: 5},
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 1, V: 5},
		{U: 2, V: 3}, {U: 2, V: 4},
		{U: 3, V: 4}, {U: 3, V: 5},
		{U: 4, V: 5},
		{U: 6, V: 0}, {U: 6, V: 1}, {U: 6, V: 7},
		{U: 7, V: 2}, {U: 7, V: 8},
		{U: 8, V: 3}, {U: 8, V: 4},
		{U: 9, V: 10}, {U: 9, V: 11}, {U: 9, V: 12},
		{U: 10, V: 11}, {U: 10, V: 12}, {U: 11, V: 12},
		{U: 13, V: 0}, {U: 13, V: 9},
		{U: 14, V: 5}, {U: 14, V: 10},
	}
	g, err := hcd.NewGraph(15, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// The full pipeline: core decomposition, PHCD construction, PBKS search.
func Example() {
	g := fig1Graph()
	h, core := hcd.Build(g, hcd.Options{})
	fmt.Println("tree nodes:", h.NumNodes(), "kmax:", core[0])

	s := hcd.NewSearcher(g, core, h, hcd.Options{})
	r := s.Best(hcd.AverageDegree(), hcd.Options{})
	fmt.Printf("best k-core: k=%d avg-degree=%.2f\n", r.K, r.Score)
	// Output:
	// tree nodes: 4 kmax: 4
	// best k-core: k=3 avg-degree=4.22
}

func ExampleSearcher_Best() {
	g := fig1Graph()
	h, core := hcd.Build(g, hcd.Options{})
	s := hcd.NewSearcher(g, core, h, hcd.Options{})
	for _, name := range []string{"internal-density", "conductance"} {
		m, _ := hcd.MetricByName(name)
		r := s.Best(m, hcd.Options{})
		fmt.Printf("%s: k=%d score=%.3f\n", m.Name(), r.K, r.Score)
	}
	// Output:
	// internal-density: k=3 score=1.000
	// conductance: k=2 score=1.000
}

func ExampleSearcher_BestK() {
	g := fig1Graph()
	h, core := hcd.Build(g, hcd.Options{})
	s := hcd.NewSearcher(g, core, h, hcd.Options{})
	k, score, _ := s.BestK(hcd.AverageDegree(), hcd.Options{})
	fmt.Printf("best k-core set: k=%d avg-degree=%.2f\n", k, score)
	// Output:
	// best k-core set: k=4 avg-degree=4.00
}

func ExampleDensestSubgraph() {
	g := fig1Graph()
	h, core := hcd.Build(g, hcd.Options{})
	d := hcd.DensestSubgraph(g, core, h, hcd.Options{})
	fmt.Printf("0.5-approx densest: k=%d avg-degree=%.2f over %d vertices\n",
		d.K, d.AvgDegree, len(d.Vertices))
	// Output:
	// 0.5-approx densest: k=3 avg-degree=4.22 over 9 vertices
}

func ExampleMaximumClique() {
	g := fig1Graph()
	fmt.Println("maximum clique:", hcd.MaximumClique(g))
	// Output:
	// maximum clique: [9 10 11 12]
}

func ExampleNewLocalQuery() {
	g := fig1Graph()
	h, _ := hcd.Build(g, hcd.Options{})
	q := hcd.NewLocalQuery(h)
	kc := q.KCore(0, 3)
	sort.Slice(kc, func(i, j int) bool { return kc[i] < kc[j] })
	fmt.Println("3-core around vertex 0:", kc)
	fmt.Println("0 and 9 share the 2-core:", q.SameKCore(0, 9, 2))
	fmt.Println("0 and 9 share a 3-core:", q.SameKCore(0, 9, 3))
	// Output:
	// 3-core around vertex 0: [0 1 2 3 4 5 6 7 8]
	// 0 and 9 share the 2-core: true
	// 0 and 9 share a 3-core: false
}

func ExampleNewMaintainer() {
	g := fig1Graph()
	m := hcd.NewMaintainer(g)
	fmt.Println("coreness of 13:", m.Coreness(13))
	// A third strong connection pulls the 2-shell vertex into a 3-core
	// (it now joins the two 3-cores through itself).
	if err := m.InsertEdge(13, 1); err != nil {
		panic(err)
	}
	fmt.Println("after insert:", m.Coreness(13))
	// Output:
	// coreness of 13: 2
	// after insert: 3
}

func ExampleTopInfluentialCommunities() {
	g := fig1Graph()
	weights := make([]float64, g.NumVertices())
	for v := range weights {
		weights[v] = float64(v) // vertex id as its influence weight
	}
	top, err := hcd.TopInfluentialCommunities(g, weights, 3, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("top community: influence=%.0f size=%d\n",
		top[0].Influence, len(top[0].Vertices))
	// Output:
	// top community: influence=9 size=4
}

func ExampleTrussDecomposition() {
	g := fig1Graph()
	_, trussness := hcd.TrussDecomposition(g)
	maxT := int32(0)
	for _, k := range trussness {
		if k > maxT {
			maxT = k
		}
	}
	fmt.Println("max trussness:", maxT)
	// Output:
	// max trussness: 4
}
