package hcd

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	core2 "hcd/internal/core"
	"hcd/internal/coredecomp"
	"hcd/internal/hierarchy"
	"hcd/internal/lcps"
	"hcd/internal/obs"
	"hcd/internal/par"
	"hcd/internal/search"
	"hcd/internal/shellidx"
)

// ErrVerification is the sentinel wrapped by every self-verification
// failure BuildCtx / BuildAndIndexCtx cannot recover from (the serial
// fallback itself produced an invalid hierarchy, or the rebuild after a
// failed validation failed validation again). Test with errors.Is.
var ErrVerification = errors.New("hcd: self-verification failed")

// validate is hierarchy.Validate, indirected so tests can force the
// otherwise-unreachable double-failure error paths.
var validate = hierarchy.Validate

// BuildReport describes how a BuildCtx call actually ran: whether the
// parallel path succeeded, whether the serial fallback had to take over
// (and why), whether the result was verified, and how long each pipeline
// phase took.
type BuildReport struct {
	// Threads is the resolved worker count the parallel path used.
	Threads int
	// Fallback is true when the parallel pipeline failed and the result
	// was produced by the serial baseline instead.
	Fallback bool
	// Cause is the error recovered from the parallel pipeline when
	// Fallback is true (typically a *par.PanicError), or the validation
	// error that triggered a SelfVerify rebuild. Nil on the fast path.
	Cause error
	// Verified is true when Options.SelfVerify was set and the returned
	// hierarchy passed hierarchy validation.
	Verified bool
	// Elapsed is the wall-clock duration of the whole build.
	Elapsed time.Duration
	// Phases is the per-phase breakdown, in execution order. Durations
	// come from a local clock (so they are populated even under the noobs
	// build tag) and sum to ≈ Elapsed; the worker-balance statistics come
	// from the obs layer and are zero under noobs. A phase that failed
	// (triggering the fallback) still appears, with the time it consumed.
	Phases []PhaseStat
}

// runPhase runs f as one named pipeline phase: an obs phase span is
// opened around it (arming the par worker hooks) and the measured
// PhaseStat is appended to the report. Returns f's error.
func (rep *BuildReport) runPhase(name string, f func() error) error {
	m0 := obs.ReadMem()
	//hcdlint:allow site-hygiene phase names flow in from the fixed caller set below (peel, phcd, rank+layout, index, fallback, verify), each a literal at its call site
	sp := obs.StartPhase(name)
	start := time.Now()
	err := f()
	d := time.Since(start)
	sp.End()
	//hcdlint:allow site-hygiene phase name flows in from the fixed caller set below, each a literal at its call site
	rep.Phases = append(rep.Phases, obs.NewPhaseStat(name, d, sp.WorkerStats()).WithMem(obs.ReadMem().Sub(m0)))
	return err
}

// BuildCtx is Build with failure containment, cooperative cancellation
// and optional self-verification — the graceful-degradation entry point:
//
//   - A worker panic anywhere in the parallel pipeline (core
//     decomposition, PHCD) is recovered, reported in BuildReport.Cause,
//     and the build falls back to the serial baseline
//     (Batagelj-Zaversnik peeling + LCPS), which shares no code with the
//     parallel path. The call still succeeds.
//   - A cancelled ctx — or an exceeded Options.Deadline, which wraps ctx
//     with a timeout — aborts the build at the next level/chunk boundary
//     and returns the context's error. Cancellation is a caller
//     decision, so it is never "rescued" by the fallback.
//   - Options.SelfVerify runs hierarchy validation on the result before
//     returning. If the parallel result fails validation, the serial
//     baseline rebuilds it (Fallback=true, Cause=the validation error)
//     and the replacement is validated in turn.
//
// The returned report is non-nil whenever err is nil. On the two
// unrecoverable verification paths — the serial fallback's own output
// fails validation, or the post-validation rebuild fails validation
// again — the error wraps ErrVerification and the report is returned
// partially populated alongside it, so callers can still see which
// phases ran and what the original failure cause was.
func BuildCtx(ctx context.Context, g *Graph, opt Options) (*HCD, []int32, *BuildReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
	}
	defer obs.StartSpan("build").End()
	start := time.Now()
	rep := &BuildReport{Threads: par.Threads(opt.Threads)}

	h, core, err := buildParallel(ctx, g, opt, rep)
	if err != nil {
		// Cancellation and deadline expiry propagate: the caller asked the
		// build to stop, so a serial fallback would be wrong twice over
		// (slower, and against the caller's wishes).
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, nil, nil, ctxErr
		}
		rep.Fallback = true
		rep.Cause = err
		_ = rep.runPhase("fallback", func() error {
			core = coredecomp.Serial(g)
			h = lcps.Build(g, core)
			return nil
		})
	}
	if opt.SelfVerify {
		if verr := rep.runPhase("verify", func() error { return validate(h, g, core) }); verr != nil {
			if rep.Fallback {
				// The serial baseline itself produced an invalid hierarchy:
				// nothing further to fall back to.
				rep.Elapsed = time.Since(start)
				return nil, nil, rep, fmt.Errorf("%w: serial fallback output invalid: %v", ErrVerification, verr)
			}
			rep.Fallback = true
			rep.Cause = verr
			_ = rep.runPhase("fallback", func() error {
				core = coredecomp.Serial(g)
				h = lcps.Build(g, core)
				return nil
			})
			if verr := rep.runPhase("verify", func() error { return validate(h, g, core) }); verr != nil {
				rep.Elapsed = time.Since(start)
				return nil, nil, rep, fmt.Errorf("%w: rebuilt hierarchy invalid: %v", ErrVerification, verr)
			}
		}
		rep.Verified = true
	}
	rep.Elapsed = time.Since(start)
	return h, core, rep, nil
}

// buildParallel runs the parallel pipeline (PeelCtx with the selected
// kernel, PHCDCtx) under ctx as instrumented phases on rep, returning
// the first contained failure.
func buildParallel(ctx context.Context, g *Graph, opt Options, rep *BuildReport) (*HCD, []int32, error) {
	var core []int32
	err := rep.runPhase("peel", func() error {
		var err error
		core, err = coredecomp.PeelCtx(ctx, g, opt.Threads, opt.Kernel)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	var h *HCD
	err = rep.runPhase("phcd", func() error {
		var err error
		h, err = core2.PHCDCtx(ctx, g, core, nil, opt.Threads)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return h, core, nil
}

// BuildAndIndexCtx is BuildAndIndex with the same containment contract as
// BuildCtx: on parallel failure the hierarchy comes from the serial
// baseline and the searcher is built serially (threads=1) on top of it.
// The error-path report contract matches BuildCtx's.
func BuildAndIndexCtx(ctx context.Context, g *Graph, opt Options) (*HCD, []int32, *Searcher, *BuildReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
	}
	defer obs.StartSpan("build.index").End()
	start := time.Now()
	rep := &BuildReport{Threads: par.Threads(opt.Threads)}

	h, core, s, err := buildAndIndexParallel(ctx, g, opt, rep)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, nil, nil, nil, ctxErr
		}
		rep.Fallback = true
		rep.Cause = err
		_ = rep.runPhase("fallback", func() error {
			core = coredecomp.Serial(g)
			h = lcps.Build(g, core)
			s = &Searcher{ix: search.NewIndex(g, core, h, 1), h: h}
			return nil
		})
	}
	if opt.SelfVerify {
		if verr := rep.runPhase("verify", func() error { return validate(h, g, core) }); verr != nil {
			if rep.Fallback {
				rep.Elapsed = time.Since(start)
				return nil, nil, nil, rep, fmt.Errorf("%w: serial fallback output invalid: %v", ErrVerification, verr)
			}
			rep.Fallback = true
			rep.Cause = verr
			_ = rep.runPhase("fallback", func() error {
				core = coredecomp.Serial(g)
				h = lcps.Build(g, core)
				s = &Searcher{ix: search.NewIndex(g, core, h, 1), h: h}
				return nil
			})
			if verr := rep.runPhase("verify", func() error { return validate(h, g, core) }); verr != nil {
				rep.Elapsed = time.Since(start)
				return nil, nil, nil, rep, fmt.Errorf("%w: rebuilt hierarchy invalid: %v", ErrVerification, verr)
			}
		}
		rep.Verified = true
	}
	rep.Elapsed = time.Since(start)
	return h, core, s, rep, nil
}

// buildAndIndexParallel runs the shared-layout pipeline under ctx as
// instrumented phases on rep, returning the first contained failure.
func buildAndIndexParallel(ctx context.Context, g *Graph, opt Options, rep *BuildReport) (*HCD, []int32, *Searcher, error) {
	var core []int32
	err := rep.runPhase("peel", func() error {
		var err error
		core, err = coredecomp.PeelCtx(ctx, g, opt.Threads, opt.Kernel)
		return err
	})
	if err != nil {
		return nil, nil, nil, err
	}
	var lay *shellidx.Layout
	err = rep.runPhase("rank+layout", func() error {
		r := coredecomp.RankVertices(core, opt.Threads)
		var err error
		lay, err = shellidx.BuildCtx(ctx, g, core, r, opt.Threads)
		return err
	})
	if err != nil {
		return nil, nil, nil, err
	}
	var h *HCD
	err = rep.runPhase("phcd", func() error {
		var err error
		h, err = core2.PHCDCtx(ctx, g, core, lay, opt.Threads)
		return err
	})
	if err != nil {
		return nil, nil, nil, err
	}
	var s *Searcher
	err = rep.runPhase("index", func() error {
		ix, err := search.NewIndexCtx(ctx, g, core, h, lay, opt.Threads)
		if err != nil {
			return err
		}
		s = &Searcher{ix: ix, h: h}
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return h, core, s, nil
}

// BestCtx is Searcher.Best with failure containment, cooperative
// cancellation, and a per-phase report: a worker panic inside the search
// kernels surfaces as an error (typically a *par.PanicError) instead of
// crashing, a cancelled ctx aborts the kernels at their internal chunk
// boundaries, and the returned SearchReport (non-nil whenever err is
// nil) breaks the query down into its primary-value and scoring phases.
func (s *Searcher) BestCtx(ctx context.Context, m Metric, opt Options) (SearchResult, *SearchReport, error) {
	return s.ix.SearchReportCtx(ctx, m, opt.Threads)
}

// BestConstrainedCtx is BestConstrained with the same containment and
// cancellation contract as BestCtx — the entry point a resident query
// server plumbs per-request deadlines into.
func (s *Searcher) BestConstrainedCtx(ctx context.Context, m Metric, minSize, maxSize int64, opt Options) (SearchResult, error) {
	return s.ix.SearchConstrainedCtx(ctx, m, minSize, maxSize, opt.Threads)
}

// Summary renders the report as one compact human-readable line —
// how the build ran (parallel or fallback), whether it verified, and
// where the time went — for operator logs (hcdserve rebuild reports,
// hcdtool stderr).
func (rep *BuildReport) Summary() string {
	if rep == nil {
		return "no report"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "threads=%d elapsed=%v", rep.Threads, rep.Elapsed.Round(time.Millisecond))
	if rep.Fallback {
		fmt.Fprintf(&sb, " fallback(cause: %v)", rep.Cause)
	}
	if rep.Verified {
		sb.WriteString(" verified")
	}
	for _, p := range rep.Phases {
		fmt.Fprintf(&sb, " %s=%v", p.Name, p.Duration.Round(time.Millisecond))
	}
	return sb.String()
}
