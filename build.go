package hcd

import (
	"context"
	"time"

	core2 "hcd/internal/core"
	"hcd/internal/coredecomp"
	"hcd/internal/hierarchy"
	"hcd/internal/lcps"
	"hcd/internal/par"
	"hcd/internal/search"
	"hcd/internal/shellidx"
)

// BuildReport describes how a BuildCtx call actually ran: whether the
// parallel path succeeded, whether the serial fallback had to take over
// (and why), and whether the result was verified.
type BuildReport struct {
	// Threads is the resolved worker count the parallel path used.
	Threads int
	// Fallback is true when the parallel pipeline failed and the result
	// was produced by the serial baseline instead.
	Fallback bool
	// Cause is the error recovered from the parallel pipeline when
	// Fallback is true (typically a *par.PanicError), or the validation
	// error that triggered a SelfVerify rebuild. Nil on the fast path.
	Cause error
	// Verified is true when Options.SelfVerify was set and the returned
	// hierarchy passed hierarchy validation.
	Verified bool
	// Elapsed is the wall-clock duration of the whole build.
	Elapsed time.Duration
}

// BuildCtx is Build with failure containment, cooperative cancellation
// and optional self-verification — the graceful-degradation entry point:
//
//   - A worker panic anywhere in the parallel pipeline (core
//     decomposition, PHCD) is recovered, reported in BuildReport.Cause,
//     and the build falls back to the serial baseline
//     (Batagelj-Zaversnik peeling + LCPS), which shares no code with the
//     parallel path. The call still succeeds.
//   - A cancelled ctx — or an exceeded Options.Deadline, which wraps ctx
//     with a timeout — aborts the build at the next level/chunk boundary
//     and returns the context's error. Cancellation is a caller
//     decision, so it is never "rescued" by the fallback.
//   - Options.SelfVerify runs hierarchy validation on the result before
//     returning. If the parallel result fails validation, the serial
//     baseline rebuilds it (Fallback=true, Cause=the validation error)
//     and the replacement is validated in turn.
//
// The returned report is non-nil whenever err is nil.
func BuildCtx(ctx context.Context, g *Graph, opt Options) (*HCD, []int32, *BuildReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
	}
	start := time.Now()
	rep := &BuildReport{Threads: par.Threads(opt.Threads)}

	h, core, err := buildParallel(ctx, g, opt)
	if err != nil {
		// Cancellation and deadline expiry propagate: the caller asked the
		// build to stop, so a serial fallback would be wrong twice over
		// (slower, and against the caller's wishes).
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, nil, nil, ctxErr
		}
		rep.Fallback = true
		rep.Cause = err
		core = coredecomp.Serial(g)
		h = lcps.Build(g, core)
	}
	if opt.SelfVerify {
		if verr := hierarchy.Validate(h, g, core); verr != nil {
			if rep.Fallback {
				// The serial baseline itself produced an invalid hierarchy:
				// nothing further to fall back to.
				return nil, nil, nil, verr
			}
			rep.Fallback = true
			rep.Cause = verr
			core = coredecomp.Serial(g)
			h = lcps.Build(g, core)
			if verr := hierarchy.Validate(h, g, core); verr != nil {
				return nil, nil, nil, verr
			}
		}
		rep.Verified = true
	}
	rep.Elapsed = time.Since(start)
	return h, core, rep, nil
}

// buildParallel runs the parallel pipeline (ParallelCtx peeling, shared
// layout, PHCDCtx) under ctx, returning the first contained failure.
func buildParallel(ctx context.Context, g *Graph, opt Options) (*HCD, []int32, error) {
	core, err := coredecomp.ParallelCtx(ctx, g, opt.Threads)
	if err != nil {
		return nil, nil, err
	}
	h, err := core2.PHCDCtx(ctx, g, core, nil, opt.Threads)
	if err != nil {
		return nil, nil, err
	}
	return h, core, nil
}

// BuildAndIndexCtx is BuildAndIndex with the same containment contract as
// BuildCtx: on parallel failure the hierarchy comes from the serial
// baseline and the searcher is built serially (threads=1) on top of it.
func BuildAndIndexCtx(ctx context.Context, g *Graph, opt Options) (*HCD, []int32, *Searcher, *BuildReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
	}
	start := time.Now()
	rep := &BuildReport{Threads: par.Threads(opt.Threads)}

	h, core, s, err := buildAndIndexParallel(ctx, g, opt)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, nil, nil, nil, ctxErr
		}
		rep.Fallback = true
		rep.Cause = err
		core = coredecomp.Serial(g)
		h = lcps.Build(g, core)
		s = &Searcher{ix: search.NewIndex(g, core, h, 1), h: h}
	}
	if opt.SelfVerify {
		if verr := hierarchy.Validate(h, g, core); verr != nil {
			if rep.Fallback {
				return nil, nil, nil, nil, verr
			}
			rep.Fallback = true
			rep.Cause = verr
			core = coredecomp.Serial(g)
			h = lcps.Build(g, core)
			s = &Searcher{ix: search.NewIndex(g, core, h, 1), h: h}
			if verr := hierarchy.Validate(h, g, core); verr != nil {
				return nil, nil, nil, nil, verr
			}
		}
		rep.Verified = true
	}
	rep.Elapsed = time.Since(start)
	return h, core, s, rep, nil
}

func buildAndIndexParallel(ctx context.Context, g *Graph, opt Options) (*HCD, []int32, *Searcher, error) {
	core, err := coredecomp.ParallelCtx(ctx, g, opt.Threads)
	if err != nil {
		return nil, nil, nil, err
	}
	r := coredecomp.RankVertices(core, opt.Threads)
	lay := shellidx.Build(g, core, r, opt.Threads)
	h, err := core2.PHCDCtx(ctx, g, core, lay, opt.Threads)
	if err != nil {
		return nil, nil, nil, err
	}
	s := &Searcher{ix: search.NewIndexWithLayout(g, core, h, lay, opt.Threads), h: h}
	return h, core, s, nil
}

// BestCtx is Searcher.Best with failure containment and cooperative
// cancellation: a worker panic inside the search kernels surfaces as an
// error (typically a *par.PanicError) instead of crashing, and a
// cancelled ctx aborts the kernels at their internal chunk boundaries.
func (s *Searcher) BestCtx(ctx context.Context, m Metric, opt Options) (SearchResult, error) {
	return s.ix.SearchCtx(ctx, m, opt.Threads)
}
