package hcd_test

import (
	"testing"

	"hcd"
)

func TestMaintainerFacade(t *testing.T) {
	g := twoK4Bridge(t)
	m := hcd.NewMaintainer(g)
	if m.NumEdges() != g.NumEdges() {
		t.Fatalf("maintainer edges %d != %d", m.NumEdges(), g.NumEdges())
	}
	// Connect the two K4s directly: vertex 8 still coreness 2, but 3 and 4
	// gain an edge.
	if err := m.InsertEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	want := hcd.CoreDecompositionSerial(m.Snapshot())
	for v := int32(0); v < int32(m.NumVertices()); v++ {
		if m.Coreness(v) != want[v] {
			t.Fatalf("coreness[%d] = %d, want %d", v, m.Coreness(v), want[v])
		}
	}
	h := m.Hierarchy(2)
	if h.NumNodes() == 0 {
		t.Fatal("hierarchy empty after rebuild")
	}
	if err := m.RemoveEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	if m.Hierarchy(2) == h {
		t.Error("hierarchy not invalidated by mutation")
	}
}

func TestLocalQueryFacade(t *testing.T) {
	g := twoK4Bridge(t)
	h, _ := hcd.Build(g, hcd.Options{})
	q := hcd.NewLocalQuery(h)
	kc := q.KCore(0, 3)
	if len(kc) != 4 {
		t.Errorf("3-core of vertex 0 has %d vertices, want 4", len(kc))
	}
	if !q.SameKCore(0, 8, 2) {
		t.Error("everything shares the 2-core")
	}
	if q.SameKCore(0, 4, 3) {
		t.Error("the two K4s are distinct 3-cores")
	}
}

func TestInfluentialCommunitiesFacade(t *testing.T) {
	g := twoK4Bridge(t)
	w := make([]float64, g.NumVertices())
	for i := range w {
		w[i] = float64(i + 1)
	}
	top, err := hcd.TopInfluentialCommunities(g, w, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 {
		t.Fatal("no influential communities found")
	}
	// The highest-influence 3-influential community is the second K4
	// (vertices 4-7, min weight 5).
	if top[0].Influence != 5 || len(top[0].Vertices) != 4 {
		t.Errorf("top community = %+v, want the second K4 (influence 5)", top[0])
	}
}

func TestTrussFacade(t *testing.T) {
	g := twoK4Bridge(t)
	ix, tr := hcd.TrussDecomposition(g)
	// K4 edges have trussness 4; the two bridge edges 2.
	fours, twos := 0, 0
	for _, k := range tr {
		switch k {
		case 4:
			fours++
		case 2:
			twos++
		default:
			t.Errorf("unexpected trussness %d", k)
		}
	}
	if fours != 12 || twos != 2 {
		t.Errorf("trussness histogram: %d fours, %d twos", fours, twos)
	}
	th := hcd.TrussHierarchy(g, ix, tr)
	if th.NumNodes() != 3 {
		t.Errorf("truss hierarchy has %d nodes, want 3 (two K4 trusses + bridge)", th.NumNodes())
	}
}

func TestAttributedSearchFacade(t *testing.T) {
	g := twoK4Bridge(t)
	attrs := make(hcd.VertexKeywords, g.NumVertices())
	for v := 0; v < 4; v++ {
		attrs[v] = []int32{1}
	}
	for v := 4; v < 8; v++ {
		attrs[v] = []int32{2}
	}
	attrs[8] = []int32{1, 2}
	got, err := hcd.AttributedSearch(g, attrs, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Vertices) != 4 || len(got[0].Shared) != 1 {
		t.Fatalf("attributed search = %+v, want the keyword-1 K4", got)
	}
}

func TestOrderMaintainerFacade(t *testing.T) {
	g := twoK4Bridge(t)
	m := hcd.NewOrderMaintainer(g)
	if err := m.InsertEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	want := hcd.CoreDecompositionSerial(m.Snapshot())
	for v := int32(0); v < int32(m.NumVertices()); v++ {
		if m.Coreness(v) != want[v] {
			t.Fatalf("order maintainer coreness[%d] = %d, want %d", v, m.Coreness(v), want[v])
		}
	}
}

func TestECCFacade(t *testing.T) {
	g := twoK4Bridge(t)
	// Each K4 is 3-edge-connected; the bridge vertex 8 has connectivity 1.
	label, count := hcd.ECCDecompose(g, 3)
	if count != 2 {
		t.Fatalf("3-ECC count = %d, want 2", count)
	}
	if label[8] != -1 {
		t.Errorf("bridge vertex should be in no 3-ECC")
	}
	h, lambda := hcd.ECCHierarchy(g)
	if lambda[0] != 3 || lambda[8] != 1 {
		t.Errorf("lambda = %v", lambda)
	}
	if h.NumNodes() != 3 {
		t.Errorf("ECC hierarchy |T| = %d, want 3", h.NumNodes())
	}
}
