// Top-level benchmarks: one per table and figure of the paper's evaluation
// (§V), plus per-algorithm sub-benchmarks over the dataset suite that
// produce the raw series behind those tables. cmd/benchtab prints the same
// experiments as formatted rows; EXPERIMENTS.md records the results.
package hcd_test

import (
	"io"
	"testing"

	"hcd"
	"hcd/internal/bench"
	core2 "hcd/internal/core"
	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/lcps"
	"hcd/internal/metrics"
	"hcd/internal/rc"
	"hcd/internal/search"
)

// benchScale sizes the synthetic datasets for the per-algorithm series
// (scale 2 ≈ 10-100k edges per graph).
const benchScale = 2

// benchDatasets is the representative subset used for per-dataset series
// (the full ten-dataset sweep lives in cmd/benchtab).
var benchDatasets = []string{"AS", "LJ", "H", "O", "SK"}

func datasets(b *testing.B) []gen.Dataset {
	b.Helper()
	want := map[string]bool{}
	for _, a := range benchDatasets {
		want[a] = true
	}
	var out []gen.Dataset
	for _, d := range gen.Suite(benchScale) {
		if want[d.Abbrev] {
			out = append(out, d)
		}
	}
	return out
}

type prepared struct {
	g    *graph.Graph
	core []int32
	h    *hierarchy.HCD
	ix   *search.Index
	bks  *search.BKS
}

func prepare(d gen.Dataset) prepared {
	g := gen.BuildCached(d, benchScale)
	core := coredecomp.Serial(g)
	h := core2.PHCD(g, core, 0)
	return prepared{
		g:    g,
		core: core,
		h:    h,
		ix:   search.NewIndex(g, core, h, 0),
		bks:  search.NewBKS(g, core, h),
	}
}

// --- Table II: dataset statistics --------------------------------------

func BenchmarkTable2DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table2(bench.Config{Scale: 1, Reps: 1, Out: io.Discard})
	}
}

// --- Table III / Figures 4-5: HCD construction --------------------------

func BenchmarkTable3Construction(b *testing.B) {
	for _, d := range datasets(b) {
		p := prepare(d)
		b.Run("PHCD1/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core2.PHCD(p.g, p.core, 1)
			}
		})
		b.Run("PHCDP/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core2.PHCD(p.g, p.core, 0)
			}
		})
		b.Run("LCPS/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lcps.Build(p.g, p.core)
			}
		})
		b.Run("LB/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core2.LB(p.g, p.core, 0)
			}
		})
		b.Run("RC/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rc.RebuildParents(p.g, p.core, p.h)
			}
		})
	}
}

func BenchmarkFig4PHCDSpeedup(b *testing.B) {
	// The figure is a thread sweep; each sub-benchmark is one (dataset,
	// threads) point of the PHCD series (LCPS's flat line is the
	// Table3Construction LCPS series).
	for _, d := range datasets(b) {
		p := prepare(d)
		for _, threads := range []int{1, 2, 4} {
			b.Run(d.Abbrev+"/p="+itoa(threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core2.PHCD(p.g, p.core, threads)
				}
			})
		}
	}
}

func BenchmarkFig5EndToEndConstruction(b *testing.B) {
	for _, d := range datasets(b) {
		g := gen.BuildCached(d, benchScale)
		b.Run("PKC+PHCD/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := coredecomp.Parallel(g, 0)
				core2.PHCD(g, c, 0)
			}
		})
		b.Run("CD+LCPS/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := coredecomp.Serial(g)
				lcps.Build(g, c)
			}
		})
	}
}

// --- Table IV: densest subgraph & maximum clique ------------------------

func BenchmarkTable4Densest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table4(bench.Config{Scale: 1, Reps: 1, Out: io.Discard,
			Datasets: []string{"AS", "LJ", "H"}})
	}
}

// --- Table V / Figures 6-9: subgraph search ------------------------------

func BenchmarkTable5Search(b *testing.B) {
	mA := metrics.AverageDegree{}
	mB := metrics.ClusteringCoefficient{}
	for _, d := range datasets(b) {
		p := prepare(d)
		b.Run("PBKS-A/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.ix.Search(mA, 0)
			}
		})
		b.Run("BKS-A/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.bks.Search(mA)
			}
		})
		b.Run("PBKS-B/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.ix.Search(mB, 0)
			}
		})
		b.Run("BKS-B/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.bks.Search(mB)
			}
		})
	}
}

func BenchmarkFig6TypeASpeedup(b *testing.B) {
	m := metrics.AverageDegree{}
	for _, d := range datasets(b) {
		p := prepare(d)
		for _, threads := range []int{1, 2, 4} {
			b.Run(d.Abbrev+"/p="+itoa(threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p.ix.Search(m, threads)
				}
			})
		}
	}
}

func BenchmarkFig7TypeAEndToEnd(b *testing.B) {
	m := metrics.AverageDegree{}
	for _, d := range datasets(b) {
		g := gen.BuildCached(d, benchScale)
		b.Run("parallel/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := coredecomp.Parallel(g, 0)
				h := core2.PHCD(g, c, 0)
				search.NewIndex(g, c, h, 0).Search(m, 0)
			}
		})
		b.Run("serial/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := coredecomp.Serial(g)
				h := lcps.Build(g, c)
				search.NewBKS(g, c, h).Search(m)
			}
		})
	}
}

func BenchmarkFig8TypeBSpeedup(b *testing.B) {
	m := metrics.ClusteringCoefficient{}
	for _, d := range datasets(b) {
		p := prepare(d)
		for _, threads := range []int{1, 2, 4} {
			b.Run(d.Abbrev+"/p="+itoa(threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p.ix.Search(m, threads)
				}
			})
		}
	}
}

func BenchmarkFig9TypeBEndToEnd(b *testing.B) {
	m := metrics.ClusteringCoefficient{}
	for _, d := range datasets(b) {
		g := gen.BuildCached(d, benchScale)
		b.Run("parallel/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := coredecomp.Parallel(g, 0)
				h := core2.PHCD(g, c, 0)
				search.NewIndex(g, c, h, 0).Search(m, 0)
			}
		})
		b.Run("serial/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := coredecomp.Serial(g)
				h := lcps.Build(g, c)
				search.NewBKS(g, c, h).Search(m)
			}
		})
	}
}

// --- Figure 10: per-component speedup ------------------------------------

func BenchmarkFig10Components(b *testing.B) {
	for _, d := range datasets(b)[:2] {
		p := prepare(d)
		b.Run("CD-serial/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				coredecomp.Serial(p.g)
			}
		})
		b.Run("CD-parallel/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				coredecomp.Parallel(p.g, 0)
			}
		})
		b.Run("HCD-serial/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lcps.Build(p.g, p.core)
			}
		})
		b.Run("HCD-parallel/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core2.PHCD(p.g, p.core, 0)
			}
		})
	}
}

// --- Ablations and extensions -------------------------------------------

func BenchmarkAblationDivideConquer(b *testing.B) {
	for _, d := range datasets(b)[:2] {
		p := prepare(d)
		b.Run("PHCD/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core2.PHCD(p.g, p.core, 0)
			}
		})
		b.Run("DivideConquer/"+d.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core2.DivideConquer(p.g, p.core, 0)
			}
		})
	}
}

func BenchmarkExtBestK(b *testing.B) {
	d := datasets(b)[0]
	g := gen.BuildCached(d, benchScale)
	h, core := hcd.Build(g, hcd.Options{})
	s := hcd.NewSearcher(g, core, h, hcd.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BestK(hcd.AverageDegree(), hcd.Options{})
	}
}

func itoa(v int) string {
	if v < 10 {
		return string(rune('0' + v))
	}
	return string(rune('0'+v/10)) + string(rune('0'+v%10))
}

func BenchmarkAblationMaintenance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Maintenance(bench.Config{Scale: 1, Reps: 1, Out: io.Discard,
			Datasets: []string{"AS", "FS"}})
	}
}
