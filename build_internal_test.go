package hcd

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"hcd/internal/faultinject"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

// failValidate replaces validate for one test, failing the first n calls.
func failValidate(t *testing.T, n int) {
	t.Helper()
	calls := 0
	validate = func(h *hierarchy.HCD, g *graph.Graph, core []int32) error {
		calls++
		if calls <= n {
			return fmt.Errorf("forced validation failure %d", calls)
		}
		return hierarchy.Validate(h, g, core)
	}
	t.Cleanup(func() { validate = hierarchy.Validate })
}

// TestBuildCtxDoubleVerifyFailureReturnsPartialReport forces validation
// to fail on both the parallel result and the serial rebuild: the error
// must wrap ErrVerification and the partially populated report must come
// back with it, recording the phases that ran and the first cause.
func TestBuildCtxDoubleVerifyFailureReturnsPartialReport(t *testing.T) {
	g := gen.ErdosRenyi(200, 800, 21)
	failValidate(t, 2)
	h, core, rep, err := BuildCtx(context.Background(), g, Options{Threads: 2, SelfVerify: true})
	if !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
	if h != nil || core != nil {
		t.Error("failed build returned a hierarchy anyway")
	}
	if rep == nil {
		t.Fatal("error path returned a nil report")
	}
	if !rep.Fallback || rep.Cause == nil || rep.Verified {
		t.Errorf("report = %+v, want Fallback with a Cause and not Verified", rep)
	}
	if rep.Elapsed <= 0 {
		t.Errorf("partial report Elapsed = %v, want > 0", rep.Elapsed)
	}
	names := map[string]bool{}
	for _, p := range rep.Phases {
		names[p.Name] = true
	}
	for _, want := range []string{"peel", "phcd", "verify", "fallback"} {
		if !names[want] {
			t.Errorf("partial report phases %v missing %q", rep.Phases, want)
		}
	}
}

// TestBuildCtxFallbackThenInvalidReturnsPartialReport arms a panic so the
// serial fallback produces the result, then forces its validation to
// fail — the "nothing further to fall back to" path.
func TestBuildCtxFallbackThenInvalidReturnsPartialReport(t *testing.T) {
	defer faultinject.Disable()
	g := gen.ErdosRenyi(200, 800, 22)
	if err := faultinject.Enable("phcd.step2:panic:1"); err != nil {
		t.Fatal(err)
	}
	failValidate(t, 1)
	_, _, rep, err := BuildCtx(context.Background(), g, Options{Threads: 2, SelfVerify: true})
	if !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
	if rep == nil || !rep.Fallback {
		t.Fatalf("report = %+v, want the fallback recorded", rep)
	}
	var f *faultinject.Fault
	if !errors.As(rep.Cause, &f) {
		t.Errorf("cause = %v, want the injected fault preserved", rep.Cause)
	}
}

// TestBuildAndIndexCtxDoubleVerifyFailure mirrors the double-failure
// check for the indexing pipeline.
func TestBuildAndIndexCtxDoubleVerifyFailure(t *testing.T) {
	g := gen.ErdosRenyi(200, 800, 23)
	failValidate(t, 2)
	_, _, s, rep, err := BuildAndIndexCtx(context.Background(), g, Options{Threads: 2, SelfVerify: true})
	if !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
	if s != nil {
		t.Error("failed build returned a searcher anyway")
	}
	if rep == nil || !rep.Fallback || rep.Verified {
		t.Errorf("report = %+v, want partial (Fallback, not Verified)", rep)
	}
}

// TestBuildCtxSingleVerifyFailureRecovers checks one forced failure still
// recovers through the rebuild (the happy rebuild path), with both
// verify phases and the fallback recorded.
func TestBuildCtxSingleVerifyFailureRecovers(t *testing.T) {
	g := gen.ErdosRenyi(200, 800, 24)
	failValidate(t, 1)
	h, core, rep, err := BuildCtx(context.Background(), g, Options{Threads: 2, SelfVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fallback || !rep.Verified {
		t.Errorf("report = %+v, want Fallback and Verified", rep)
	}
	if err := hierarchy.Validate(h, g, core); err != nil {
		t.Error(err)
	}
	verifies := 0
	for _, p := range rep.Phases {
		if p.Name == "verify" {
			verifies++
		}
	}
	if verifies != 2 {
		t.Errorf("recorded %d verify phases, want 2 (failed + passed)", verifies)
	}
}
