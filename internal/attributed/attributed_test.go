package attributed

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"hcd/internal/gen"
	"hcd/internal/graph"
)

func TestSearchHandExample(t *testing.T) {
	// Two triangles sharing vertex 2. Left triangle all carry keyword 1;
	// right triangle carries keyword 2; vertex 2 carries both.
	g := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 2},
	})
	attrs := Keywords{{1}, {1}, {1, 2}, {2}, {2}}
	// Query at vertex 2 with k=2: both keywords admit a triangle, but no
	// single community carries {1,2}; maximal shared size is 1, and both
	// subsets {1} and {2} win.
	got, err := Search(g, attrs, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d winners, want 2: %+v", len(got), got)
	}
	byKw := map[int32][]int32{}
	for _, c := range got {
		if len(c.Shared) != 1 {
			t.Fatalf("shared set %v, want singletons", c.Shared)
		}
		byKw[c.Shared[0]] = c.Vertices
	}
	if !reflect.DeepEqual(byKw[1], []int32{0, 1, 2}) {
		t.Errorf("keyword-1 community = %v", byKw[1])
	}
	if !reflect.DeepEqual(byKw[2], []int32{2, 3, 4}) {
		t.Errorf("keyword-2 community = %v", byKw[2])
	}
}

func TestSearchFullSharedSet(t *testing.T) {
	// A K4 where everyone shares both keywords.
	var edges []graph.Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	g := graph.MustFromEdges(4, edges)
	attrs := Keywords{{7, 9}, {9, 7}, {7, 9, 11}, {9, 7}}
	got, err := Search(g, attrs, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0].Shared, []int32{7, 9}) {
		t.Fatalf("want the full shared set {7,9}, got %+v", got)
	}
	if len(got[0].Vertices) != 4 {
		t.Errorf("community should be the whole K4")
	}
}

func TestSearchFallsBackToStructureOnly(t *testing.T) {
	// Query vertex whose keywords nobody else shares: the maximal winning
	// subset is empty and the answer is the plain k-core community.
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	attrs := Keywords{{42}, {}, {}}
	got, err := Search(g, attrs, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Shared) != 0 {
		t.Fatalf("want structure-only community, got %+v", got)
	}
	if len(got[0].Vertices) != 3 {
		t.Errorf("community = %v, want the triangle", got[0].Vertices)
	}
}

func TestSearchNoCommunity(t *testing.T) {
	// q has degree 1; no 2-core contains it under any keyword subset.
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	attrs := Keywords{{1}, {1}, {1}, {1}}
	got, err := Search(g, attrs, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Errorf("want no community, got %+v", got)
	}
}

func TestSearchErrors(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})
	if _, err := Search(g, Keywords{{1}}, 0, 1, nil); err == nil {
		t.Error("keyword/vertex count mismatch accepted")
	}
	if _, err := Search(g, Keywords{{1}, {1}}, 5, 1, nil); err == nil {
		t.Error("out-of-range query accepted")
	}
	big := make([]int32, 25)
	for i := range big {
		big[i] = int32(i)
	}
	if _, err := Search(g, Keywords{{1}, {1}}, 0, 1, big); err == nil {
		t.Error("oversized keyword set accepted")
	}
}

// bruteACQ: enumerate every keyword subset of q's keywords by decreasing
// size; for each, compute q's peeled component over carriers directly.
func bruteACQ(g *graph.Graph, attrs Keywords, q int32, k int32) []Community {
	kw := dedupSorted(attrs[q])
	for size := len(kw); size >= 0; size-- {
		var winners []Community
		forEachSubset(kw, size, func(W []int32) {
			in := make([]bool, g.NumVertices())
			for v := 0; v < g.NumVertices(); v++ {
				ok := true
				for _, w := range W {
					found := false
					for _, a := range attrs[v] {
						if a == w {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				in[v] = ok
			}
			// Peel to min degree k globally (q's component extracted last).
			changed := true
			for changed {
				changed = false
				for v := int32(0); v < int32(g.NumVertices()); v++ {
					if !in[v] {
						continue
					}
					d := 0
					for _, u := range g.Neighbors(v) {
						if in[u] {
							d++
						}
					}
					if int32(d) < k {
						in[v] = false
						changed = true
					}
				}
			}
			if !in[q] {
				return
			}
			seen := map[int32]bool{q: true}
			queue := []int32{q}
			var comp []int32
			for len(queue) > 0 {
				v := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				comp = append(comp, v)
				for _, u := range g.Neighbors(v) {
					if in[u] && !seen[u] {
						seen[u] = true
						queue = append(queue, u)
					}
				}
			}
			sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
			winners = append(winners, Community{Vertices: comp, Shared: append([]int32(nil), W...)})
		})
		if len(winners) > 0 {
			return winners
		}
	}
	return nil
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(20)
		g := gen.ErdosRenyi(n, 3*n, int64(trial))
		attrs := make(Keywords, n)
		for v := range attrs {
			nk := rng.Intn(4)
			for i := 0; i < nk; i++ {
				attrs[v] = append(attrs[v], int32(rng.Intn(5)))
			}
		}
		q := int32(rng.Intn(n))
		k := int32(1 + rng.Intn(3))
		got, err := Search(g, attrs, q, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteACQ(g, attrs, q, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d winners, brute force %d\n got %+v\nwant %+v",
				trial, len(got), len(want), got, want)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("trial %d winner %d: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestForEachSubset(t *testing.T) {
	var got [][]int32
	forEachSubset([]int32{1, 2, 3}, 2, func(w []int32) {
		got = append(got, append([]int32(nil), w...))
	})
	want := [][]int32{{1, 2}, {1, 3}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("subsets = %v, want %v", got, want)
	}
	count := 0
	forEachSubset([]int32{1, 2, 3}, 0, func(w []int32) {
		if len(w) != 0 {
			t.Error("empty subset expected")
		}
		count++
	})
	if count != 1 {
		t.Errorf("empty subset visited %d times", count)
	}
	forEachSubset([]int32{1}, 5, func([]int32) { t.Error("oversized subset visited") })
}
