// Package attributed implements attributed community search (ACQ — Fang,
// Cheng, Luo, Hu, PVLDB 2016), the application §VII cites as using a
// CL-Tree index "equivalent to HCD": on a graph whose vertices carry
// keyword sets, find the community of a query vertex that is both
// structurally cohesive (a connected k-core containing the query) and
// attribute-homogeneous (its members share as many of the query's
// keywords as possible).
//
// Search enumerates candidate keyword subsets from largest to smallest
// (the paper's "Dec" strategy): for a candidate W, the subgraph induced by
// {v : W ⊆ attr(v)} is peeled to min degree k and the component of the
// query vertex, if it survives, is a valid community whose shared keyword
// set includes W. All maximal-size winning subsets are reported. The
// enumeration is exponential in the number of query keywords, which ACQ
// keeps small by design (callers pass the query vertex's own keywords,
// typically < 10).
package attributed

import (
	"fmt"
	"sort"

	"hcd/internal/graph"
)

// Keywords maps each vertex to its attribute keywords (dense ids; order
// and duplicates are irrelevant).
type Keywords [][]int32

// Community is one ACQ answer.
type Community struct {
	// Vertices of the community, ascending, including the query vertex.
	Vertices []int32
	// Shared is the keyword subset every member carries, ascending.
	Shared []int32
}

// Search answers an attributed community query: the connected k-core
// containing q within the subgraph of vertices sharing a maximum-size
// subset of q's keywords (or of queryKeywords if non-nil). It returns
// every maximal-size winning keyword subset with its community; if even
// the empty keyword set admits no k-core around q, it returns nil.
func Search(g *graph.Graph, attrs Keywords, q int32, k int32, queryKeywords []int32) ([]Community, error) {
	n := g.NumVertices()
	if len(attrs) != n {
		return nil, fmt.Errorf("attributed: %d keyword sets for %d vertices", len(attrs), n)
	}
	if q < 0 || int(q) >= n {
		return nil, fmt.Errorf("attributed: query vertex %d out of range", q)
	}
	base := queryKeywords
	if base == nil {
		base = attrs[q]
	}
	kw := dedupSorted(base)
	if len(kw) > 20 {
		return nil, fmt.Errorf("attributed: %d query keywords (limit 20; ACQ keyword sets are small by design)", len(kw))
	}

	// Precompute per-vertex keyword sets as maps for O(1) containment.
	has := make([]map[int32]bool, n)
	for v := 0; v < n; v++ {
		mset := make(map[int32]bool, len(attrs[v]))
		for _, w := range attrs[v] {
			mset[w] = true
		}
		has[v] = mset
	}

	// Candidate subsets by decreasing size; within a size, enumerate in
	// deterministic order.
	for size := len(kw); size >= 0; size-- {
		var winners []Community
		forEachSubset(kw, size, func(W []int32) {
			comm := communityFor(g, has, q, k, W)
			if comm != nil {
				winners = append(winners, Community{
					Vertices: comm,
					Shared:   append([]int32(nil), W...),
				})
			}
		})
		if len(winners) > 0 {
			return winners, nil
		}
	}
	return nil, nil
}

// communityFor peels the W-induced subgraph to min degree k and returns
// q's surviving component (nil if q does not survive).
func communityFor(g *graph.Graph, has []map[int32]bool, q int32, k int32, W []int32) []int32 {
	carries := func(v int32) bool {
		for _, w := range W {
			if !has[v][w] {
				return false
			}
		}
		return true
	}
	if !carries(q) {
		return nil
	}
	// Collect the induced vertex set lazily from q's side of the graph:
	// only q's component matters, so BFS within carriers first.
	inComp := map[int32]bool{q: true}
	queue := []int32{q}
	var verts []int32
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		verts = append(verts, v)
		for _, u := range g.Neighbors(v) {
			if !inComp[u] && carries(u) {
				inComp[u] = true
				queue = append(queue, u)
			}
		}
	}
	// Peel to min degree k within the component.
	deg := make(map[int32]int32, len(verts))
	for _, v := range verts {
		var d int32
		for _, u := range g.Neighbors(v) {
			if inComp[u] {
				d++
			}
		}
		deg[v] = d
	}
	var peel []int32
	for _, v := range verts {
		if deg[v] < k {
			peel = append(peel, v)
			inComp[v] = false
		}
	}
	for len(peel) > 0 {
		v := peel[len(peel)-1]
		peel = peel[:len(peel)-1]
		for _, u := range g.Neighbors(v) {
			if inComp[u] {
				deg[u]--
				if deg[u] < k {
					inComp[u] = false
					peel = append(peel, u)
				}
			}
		}
	}
	if !inComp[q] {
		return nil
	}
	// q's component of the peeled subgraph.
	comp := map[int32]bool{q: true}
	queue = append(queue[:0], q)
	var out []int32
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		out = append(out, v)
		for _, u := range g.Neighbors(v) {
			if inComp[u] && !comp[u] {
				comp[u] = true
				queue = append(queue, u)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// forEachSubset calls fn with every size-`size` subset of kw (which must
// be sorted), in lexicographic order. fn must not retain its argument.
func forEachSubset(kw []int32, size int, fn func([]int32)) {
	if size > len(kw) {
		return
	}
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	buf := make([]int32, size)
	for {
		for i, j := range idx {
			buf[i] = kw[j]
		}
		fn(buf)
		// Advance the combination.
		i := size - 1
		for i >= 0 && idx[i] == len(kw)-size+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < size; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

func dedupSorted(s []int32) []int32 {
	out := append([]int32(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i := range out {
		if i == 0 || out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}
