//go:build nofaults

// Stub implementation selected by the `nofaults` build tag: every trigger
// point compiles to an empty function the toolchain can inline away, so
// production builds carry zero injection overhead (not even the atomic
// load of the armed gate).
package faultinject

import (
	"fmt"
	"os"
)

// Fault mirrors the armed build's panic value; it is never raised here.
type Fault struct {
	Site string
	Hit  uint64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s (hit %d)", f.Site, f.Hit)
}

// Enable always fails: a nofaults binary cannot arm the injector, and a
// caller passing a spec should learn it is being ignored.
func Enable(spec string) error {
	return fmt.Errorf("faultinject: built with the nofaults tag; spec %q ignored", spec)
}

// Disable is a no-op.
func Disable() {}

// Enabled always reports false.
func Enabled() bool { return false }

// Compiled reports that fault injection is compiled out.
func Compiled() bool { return false }

// EnableFromEnv fails like Enable when HCD_FAULTS is set, and is a no-op
// otherwise.
func EnableFromEnv() error {
	if spec := os.Getenv("HCD_FAULTS"); spec != "" {
		return Enable(spec)
	}
	return nil
}

// Maybe is an empty, inlinable no-op.
func Maybe(string) {}

// Hits always reports zero.
func Hits(string) uint64 { return 0 }
