//go:build !nofaults

// Package faultinject provides deterministic, site-keyed fault injection
// for exercising the failure-containment paths of the parallel runtime.
//
// Algorithms mark interesting points with Maybe("site.name"); a test (or
// an operator, via the HCD_FAULTS environment variable and EnableFromEnv)
// arms the injector with a rule spec such as
//
//	phcd.step2:panic:3            panic on the 3rd hit of phcd.step2
//	search.typeb:delay:1:50ms     sleep 50ms on the 1st hit of search.typeb
//	treeaccum:panic:2,phcd.step1:panic:1   multiple rules, comma-separated
//
// The hcdserve query service exposes its own site family for chaos
// testing the admission / query / rebuild / swap paths (the CI
// chaos-smoke job arms all four against the drain-under-load test):
//
//	serve.admit:panic:11          panic inside admission control
//	serve.query:panic:5           panic inside an admitted request
//	serve.rebuild:panic:2         panic mid-rebuild (last-good keeps serving)
//	serve.swap:panic:2            panic just before the snapshot swap
//
// Triggering is deterministic with respect to hit counts: every evaluation
// of an armed site atomically claims the next hit number, and the rule
// fires on exactly the configured hit — no randomness, so a failing run
// replays with the same spec. (Which goroutine claims the firing hit is
// scheduling-dependent, but that a fault fires, and after how much work,
// is not.)
//
// When the injector is disarmed — the default — Maybe costs one atomic
// load. Building with the `nofaults` tag (see off.go) replaces the whole
// package with empty stubs, compiling injection out entirely.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hcd/internal/obs"
)

// Fault is the value an armed panic rule panics with. It implements error
// so a par.PanicError wrapping it unwraps to a recognisable cause
// (errors.As(&Fault{})).
type Fault struct {
	// Site is the trigger point that fired.
	Site string
	// Hit is the 1-based evaluation count at which the rule fired.
	Hit uint64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s (hit %d)", f.Site, f.Hit)
}

// mode is what a rule does when it fires.
type mode int

const (
	modePanic mode = iota
	modeDelay
)

// site is one armed trigger point.
type site struct {
	mode  mode
	n     uint64 // fire on exactly this hit (1-based)
	delay time.Duration
	hits  atomic.Uint64
	evals *obs.Counter // hcd_fault_evals_total{site=...}
	fired *obs.Counter // hcd_fault_fired_total{site=...}
}

var (
	armed atomic.Bool // fast-path gate read by Maybe
	mu    sync.Mutex  // guards sites swaps (reads go through the atomic)
	sites atomic.Pointer[map[string]*site]
)

// Enable arms the injector from a comma-separated rule spec (see the
// package comment for the grammar). It replaces any previous rules and
// resets all hit counters. An empty spec is an error; use Disable to
// disarm.
//
// Every armed site also gets a pair of obs counters,
// hcd_fault_evals_total{site="..."} and hcd_fault_fired_total{site="..."},
// so a rule whose site name is mis-spelled — which otherwise fails
// silently, its trigger point never being evaluated — shows up on
// /metrics as an armed site with zero evaluations.
func Enable(spec string) error {
	parsed, err := parse(spec)
	if err != nil {
		return err
	}
	for name, s := range parsed {
		s.evals = obs.NewCounter(obs.Name("hcd_fault_evals_total", "site", name),
			"Evaluations of an armed fault-injection site.")
		s.fired = obs.NewCounter(obs.Name("hcd_fault_fired_total", "site", name),
			"Fault-injection rules fired, by site.")
	}
	mu.Lock()
	defer mu.Unlock()
	sites.Store(&parsed)
	armed.Store(true)
	return nil
}

// Disable disarms the injector and drops all rules and counters.
func Disable() {
	mu.Lock()
	defer mu.Unlock()
	armed.Store(false)
	sites.Store(nil)
}

// Enabled reports whether any rules are armed.
func Enabled() bool { return armed.Load() }

// Compiled reports whether fault injection is compiled in (false under
// the nofaults build tag) — the build-flavour bit run manifests record.
func Compiled() bool { return true }

// EnableFromEnv arms the injector from the HCD_FAULTS environment
// variable, if set. Intended for command-line tools; returns the parse
// error, if any, so callers can surface a bad spec.
func EnableFromEnv() error {
	spec := os.Getenv("HCD_FAULTS")
	if spec == "" {
		return nil
	}
	return Enable(spec)
}

// Maybe evaluates the trigger point: when a rule for this site is armed it
// claims the next hit number and, on the configured hit, panics with a
// *Fault or sleeps the configured delay. Disarmed, it is one atomic load.
func Maybe(name string) {
	if !armed.Load() {
		return
	}
	m := sites.Load()
	if m == nil {
		return
	}
	s, ok := (*m)[name]
	if !ok {
		return
	}
	hit := s.hits.Add(1)
	s.evals.Inc()
	if hit != s.n {
		return
	}
	s.fired.Inc()
	switch s.mode {
	case modePanic:
		panic(&Fault{Site: name, Hit: hit})
	case modeDelay:
		time.Sleep(s.delay)
	}
}

// Hits returns how many times the armed rule for site has been evaluated
// since Enable (0 for unknown or disarmed sites). For tests.
func Hits(name string) uint64 {
	m := sites.Load()
	if m == nil {
		return 0
	}
	s, ok := (*m)[name]
	if !ok {
		return 0
	}
	return s.hits.Load()
}

// parse turns "site:mode:n[:dur][,...]" into the site table.
func parse(spec string) (map[string]*site, error) {
	out := make(map[string]*site)
	for _, rule := range strings.Split(spec, ",") {
		rule = strings.TrimSpace(rule)
		if rule == "" {
			continue
		}
		parts := strings.Split(rule, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("faultinject: rule %q: want site:mode:n[:dur]", rule)
		}
		name := parts[0]
		if name == "" {
			return nil, fmt.Errorf("faultinject: rule %q: empty site", rule)
		}
		n, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("faultinject: rule %q: bad hit count %q (want >= 1)", rule, parts[2])
		}
		s := &site{n: n}
		switch parts[1] {
		case "panic":
			if len(parts) != 3 {
				return nil, fmt.Errorf("faultinject: rule %q: panic takes no duration", rule)
			}
			s.mode = modePanic
		case "delay":
			if len(parts) != 4 {
				return nil, fmt.Errorf("faultinject: rule %q: delay needs a duration", rule)
			}
			d, err := time.ParseDuration(parts[3])
			if err != nil {
				return nil, fmt.Errorf("faultinject: rule %q: %v", rule, err)
			}
			s.mode, s.delay = modeDelay, d
		default:
			return nil, fmt.Errorf("faultinject: rule %q: unknown mode %q", rule, parts[1])
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("faultinject: duplicate rule for site %q", name)
		}
		out[name] = s
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faultinject: empty spec")
	}
	return out, nil
}
