//go:build !nofaults && !noobs

package faultinject

import (
	"strings"
	"testing"

	"hcd/internal/obs"
)

// TestEnableRegistersSiteCounters checks every armed site gets eval and
// fired counters, so a mis-spelled site — whose trigger point is never
// evaluated — is visible on /metrics as armed-but-zero instead of
// failing silently.
func TestEnableRegistersSiteCounters(t *testing.T) {
	defer Disable()
	if err := Enable("obs.test.good:delay:1:1ns,obs.test.misspelled:panic:1"); err != nil {
		t.Fatal(err)
	}
	evals := obs.NewCounter(obs.Name("hcd_fault_evals_total", "site", "obs.test.good"), "")
	fired := obs.NewCounter(obs.Name("hcd_fault_fired_total", "site", "obs.test.good"), "")
	missed := obs.NewCounter(obs.Name("hcd_fault_evals_total", "site", "obs.test.misspelled"), "")
	e0, f0, m0 := evals.Value(), fired.Value(), missed.Value()

	Maybe("obs.test.good") // hit 1: fires the delay rule
	Maybe("obs.test.good") // hit 2: evaluated, does not fire

	if got := evals.Value() - e0; got != 2 {
		t.Errorf("eval counter delta = %d, want 2", got)
	}
	if got := fired.Value() - f0; got != 1 {
		t.Errorf("fired counter delta = %d, want 1", got)
	}
	if got := missed.Value() - m0; got != 0 {
		t.Errorf("mis-spelled site evals delta = %d, want 0", got)
	}

	// Both sites appear in the exposition, zero or not.
	var sb strings.Builder
	if err := obs.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`hcd_fault_evals_total{site="obs.test.good"}`,
		`hcd_fault_evals_total{site="obs.test.misspelled"}`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
