//go:build !nofaults

package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestParseRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"phcd.step1",                // no mode/count
		"phcd.step1:panic",          // no count
		"phcd.step1:panic:0",        // hit counts are 1-based
		"phcd.step1:panic:x",        // non-numeric count
		"phcd.step1:panic:1:10ms",   // panic takes no duration
		"phcd.step1:delay:1",        // delay needs a duration
		"phcd.step1:delay:1:tomato", // unparsable duration
		"phcd.step1:explode:1",      // unknown mode
		":panic:1",                  // empty site
		"a:panic:1,a:panic:2",       // duplicate site
	}
	for _, spec := range bad {
		if err := Enable(spec); err == nil {
			Disable()
			t.Errorf("Enable(%q) accepted, want error", spec)
		}
	}
	if Enabled() {
		t.Error("injector armed after rejected specs")
	}
}

func TestPanicFiresOnExactlyTheNthHit(t *testing.T) {
	defer Disable()
	if err := Enable("site.x:panic:3"); err != nil {
		t.Fatal(err)
	}
	Maybe("site.x") // hit 1
	Maybe("site.x") // hit 2
	Maybe("other")  // unknown site: no counting, no fault
	func() {
		defer func() {
			r := recover()
			f, ok := r.(*Fault)
			if !ok {
				t.Fatalf("hit 3: recover() = %v, want *Fault", r)
			}
			if f.Site != "site.x" || f.Hit != 3 {
				t.Errorf("fault = %+v, want site.x hit 3", f)
			}
			if !strings.Contains(f.Error(), "site.x") {
				t.Errorf("Error() = %q, want the site name", f.Error())
			}
		}()
		Maybe("site.x") // hit 3: fires
	}()
	Maybe("site.x") // hit 4: past the trigger, must not fire again
	if got := Hits("site.x"); got != 4 {
		t.Errorf("Hits = %d, want 4", got)
	}
}

func TestDelayRule(t *testing.T) {
	defer Disable()
	if err := Enable("slow:delay:2:30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	Maybe("slow") // hit 1: no delay
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("hit 1 took %v, want no delay", d)
	}
	start = time.Now()
	Maybe("slow") // hit 2: sleeps
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("hit 2 took %v, want >= 30ms", d)
	}
}

func TestDisableDropsRulesAndCounters(t *testing.T) {
	if err := Enable("site.y:panic:1"); err != nil {
		t.Fatal(err)
	}
	Disable()
	if Enabled() {
		t.Error("Enabled() after Disable")
	}
	Maybe("site.y") // must be a no-op, not a panic
	if got := Hits("site.y"); got != 0 {
		t.Errorf("Hits after Disable = %d, want 0", got)
	}
}

func TestEnableResetsCounters(t *testing.T) {
	defer Disable()
	if err := Enable("site.z:panic:100"); err != nil {
		t.Fatal(err)
	}
	Maybe("site.z")
	Maybe("site.z")
	if err := Enable("site.z:panic:100"); err != nil {
		t.Fatal(err)
	}
	if got := Hits("site.z"); got != 0 {
		t.Errorf("Hits after re-Enable = %d, want 0", got)
	}
}

func TestEnableFromEnv(t *testing.T) {
	defer Disable()
	t.Setenv("HCD_FAULTS", "")
	if err := EnableFromEnv(); err != nil {
		t.Errorf("empty env: %v", err)
	}
	if Enabled() {
		t.Error("armed with empty HCD_FAULTS")
	}
	t.Setenv("HCD_FAULTS", "env.site:panic:1")
	if err := EnableFromEnv(); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Error("not armed from HCD_FAULTS")
	}
	t.Setenv("HCD_FAULTS", "not a spec")
	if err := EnableFromEnv(); err == nil {
		t.Error("bad HCD_FAULTS accepted")
	}
}

// TestDisarmedMaybeIsConcurrencySafe drives Maybe from many goroutines
// while arming and disarming — exercised under -race in CI.
func TestDisarmedMaybeIsConcurrencySafe(t *testing.T) {
	defer Disable()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			Enable("race.site:delay:1000000:1ms")
			Disable()
		}
	}()
	for i := 0; i < 10000; i++ {
		Maybe("race.site")
	}
	<-done
}
