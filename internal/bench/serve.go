package bench

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hcd"
	"hcd/internal/obs"
	"hcd/internal/serve"
)

// serveSuiteFingerprint names the generator-parameter set of the serve
// experiment (the first phcd sweep graph, served rather than rebuilt).
func serveSuiteFingerprint(small bool) string {
	if small {
		return "serve-smoke-v1"
	}
	return "serve-full-v1"
}

// serveEndpoints is the request mix the latency journal tracks: the
// full-index metric search (the expensive query) and a root-core
// reconstruction (the cheap one, dominated by serving overhead).
var serveEndpoints = []struct {
	kernel string
	path   string
}{
	{"serve.search", "/search?metric=average-degree"},
	{"serve.reconstruct", "/reconstruct?node=0"},
}

// quantileNS reads the q-quantile from an ascending sample slice
// (nearest-rank with rounding; 0 for an empty slice).
func quantileNS(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[i]
}

// quantCell folds one latency distribution per rep into a journal cell:
// SamplesNS holds the chosen quantile of each rep's distribution, so
// MedianNS/MADNS give the compare gate a noise band over reps exactly
// as they do for wall-clock cells.
func quantCell(dataset, kernel string, clients int, perRep [][]int64, q float64) Cell {
	benchCells.Inc()
	samples := make([]int64, 0, len(perRep))
	for _, lats := range perRep {
		samples = append(samples, quantileNS(lats, q))
	}
	c := Cell{Dataset: dataset, Kernel: kernel, Threads: clients, SamplesNS: samples}
	c.MinNS = minInt64(samples)
	c.MedianNS, c.MADNS = medianMAD(samples)
	return c
}

// ServeBench measures hcdserve's request latency under concurrent load
// and writes the experiment journal. The server is driven in process
// (handler tree, admission path and JSON encoding included; no TCP) so
// the numbers isolate the service stack from the network. Per dataset
// it publishes one snapshot, then for every client count p of cfg.Sweep
// runs p concurrent closed-loop clients against each endpoint of the
// request mix and records the p50 and p99 per-request latency:
//
//   - serve.search.p50 / serve.search.p99 — full-index metric search;
//   - serve.reconstruct.p50 / serve.reconstruct.p99 — core
//     reconstruction, dominated by admission + encoding overhead;
//   - serve.search.wait.p50 / serve.search.wait.p99 — admission
//     queue-wait under deliberate slot pressure (half the slots, sized
//     queue), measured from the X-Queue-Wait-Ns response header.
//
// Cell.Threads carries the client count; each rep contributes one
// quantile sample, so the compare gate's MAD band works unchanged. The
// derived scaling rows are latency-degradation curves: Speedup[i] =
// p50(1 client)/p50(p clients), expected at or below 1 as contention
// grows. Admission is sized to the sweep (no shedding), so every
// response must be a 200 — anything else fails the run.
//
// Scale 1 substitutes the tiny smoke-test input; any larger scale runs
// the full-size graph.
func ServeBench(cfg Config) error {
	cfg = cfg.withDefaults()
	small := cfg.Scale <= 1
	rep := Report{
		Experiment: "serve",
		Manifest:   NewManifest(cfg.Scale, serveSuiteFingerprint(small)),
		Threads:    cfg.Sweep,
		Reps:       cfg.Reps,
	}
	maxClients := 1
	for _, p := range rep.Threads {
		if p > maxClients {
			maxClients = p
		}
	}
	perClient := 40
	if !small {
		perClient = 20
	}
	// One dataset: the first phcd sweep graph (rmat12 smoke / rmat17 full).
	for _, d := range phcdSuite(small)[:1] {
		g := d.build()
		srv, err := serve.New(serve.Config{
			Load:           func() (*hcd.Graph, error) { return g, nil },
			Build:          hcd.Options{Threads: cfg.Threads},
			MaxInflight:    maxClients,
			QueueDepth:     maxClients,
			RequestTimeout: time.Minute,
		})
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if err := srv.Rebuild(context.Background()); err != nil {
			return fmt.Errorf("serve: publishing snapshot: %w", err)
		}
		h := srv.Handler()

		// storm runs clients closed-loop workers against path and merges
		// their per-request latencies, ascending.
		storm := func(path string, clients int) ([]int64, error) {
			perWorker := make([][]int64, clients)
			var badStatus atomic.Int64
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					lats := make([]int64, 0, perClient)
					for i := 0; i < perClient; i++ {
						r := httptest.NewRequest(http.MethodGet, path, nil)
						w := httptest.NewRecorder()
						start := time.Now()
						h.ServeHTTP(w, r)
						lats = append(lats, time.Since(start).Nanoseconds())
						if w.Code != http.StatusOK {
							badStatus.Store(int64(w.Code))
						}
					}
					perWorker[c] = lats
				}(c)
			}
			wg.Wait()
			if code := badStatus.Load(); code != 0 {
				return nil, fmt.Errorf("serve: %s returned %d under sized admission (shedding must not happen in the latency run)", path, code)
			}
			var all []int64
			for _, lats := range perWorker {
				all = append(all, lats...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			return all, nil
		}

		for _, ep := range serveEndpoints {
			for _, p := range rep.Threads {
				sp := obs.StartSpanArg("bench.serve", int64(p))
				perRep := make([][]int64, 0, rep.Reps)
				for i := 0; i < rep.Reps; i++ {
					all, err := storm(ep.path, p)
					if err != nil {
						sp.End()
						return err
					}
					perRep = append(perRep, all)
				}
				sp.End()
				rep.Cells = append(rep.Cells,
					quantCell(d.name, ep.kernel+".p50", p, perRep, 0.50),
					quantCell(d.name, ep.kernel+".p99", p, perRep, 0.99))
			}
			rep.Scaling = append(rep.Scaling, rep.buildScaling(d.name, ep.kernel+".p50", ""))

			// Memory cells: one storm at the max client count per rep, in a
			// pass separate from the latency storms. Peak heap is dominated
			// by the resident snapshot (the deterministic footprint baseline
			// /stats reports); allocs-per-op is per served request, the
			// number that catches an encoding or admission path starting to
			// allocate.
			perStorm := maxClients * perClient
			var memErr error
			rep.Cells = append(rep.Cells,
				measureMemCells(d.name, ep.kernel, maxClients, rep.Reps, perStorm, func() {
					if _, err := storm(ep.path, maxClients); err != nil {
						memErr = err
					}
				})...)
			if memErr != nil {
				return fmt.Errorf("serve: memory pass %s: %w", ep.kernel, memErr)
			}
		}

		// Queue-wait pressure stage: a second server with half the
		// execution slots but a sweep-sized queue and an effectively
		// unbounded queue wait, so every request is eventually served and
		// the admission queue actually fills. Each served response reports
		// how long it waited via X-Queue-Wait-Ns; the per-cell quantiles
		// journal as serve.search.wait.* — new cells are DeltaAdded in the
		// compare gate, so they inform without gating.
		pressure, err := serve.New(serve.Config{
			Load:           func() (*hcd.Graph, error) { return g, nil },
			Build:          hcd.Options{Threads: cfg.Threads},
			MaxInflight:    max(1, maxClients/2),
			QueueDepth:     maxClients,
			QueueWait:      time.Minute,
			RequestTimeout: time.Minute,
		})
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if err := pressure.Rebuild(context.Background()); err != nil {
			return fmt.Errorf("serve: publishing pressure snapshot: %w", err)
		}
		ph := pressure.Handler()
		waitStorm := func(path string, clients int) ([]int64, error) {
			perWorker := make([][]int64, clients)
			var stormErr atomic.Value
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					waits := make([]int64, 0, perClient)
					for i := 0; i < perClient; i++ {
						r := httptest.NewRequest(http.MethodGet, path, nil)
						w := httptest.NewRecorder()
						ph.ServeHTTP(w, r)
						if w.Code != http.StatusOK {
							stormErr.Store(fmt.Errorf("serve: pressure %s returned %d (the unbounded queue wait must serve everything)", path, w.Code))
							return
						}
						ns, err := strconv.ParseInt(w.Header().Get("X-Queue-Wait-Ns"), 10, 64)
						if err != nil {
							stormErr.Store(fmt.Errorf("serve: pressure %s: bad X-Queue-Wait-Ns header: %w", path, err))
							return
						}
						waits = append(waits, ns)
					}
					perWorker[c] = waits
				}(c)
			}
			wg.Wait()
			if err, ok := stormErr.Load().(error); ok {
				return nil, err
			}
			var all []int64
			for _, waits := range perWorker {
				all = append(all, waits...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			return all, nil
		}
		for _, p := range rep.Threads {
			sp := obs.StartSpanArg("bench.servewait", int64(p))
			perRep := make([][]int64, 0, rep.Reps)
			for i := 0; i < rep.Reps; i++ {
				all, err := waitStorm("/search?metric=average-degree", p)
				if err != nil {
					sp.End()
					return err
				}
				perRep = append(perRep, all)
			}
			sp.End()
			rep.Cells = append(rep.Cells,
				quantCell(d.name, "serve.search.wait.p50", p, perRep, 0.50),
				quantCell(d.name, "serve.search.wait.p99", p, perRep, 0.99))
		}
	}
	printReport(cfg, rep)
	return writeJournal(cfg, rep)
}
