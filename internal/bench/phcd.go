package bench

import (
	"context"
	"fmt"
	"text/tabwriter"

	"hcd"
	core2 "hcd/internal/core"
	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/lcps"
	"hcd/internal/obs"
	"hcd/internal/shellidx"
)

// benchCells counts every measured (dataset, kernel, threads) cell
// across all journal experiments.
var benchCells = obs.NewCounter("hcd_bench_cells_total", "experiment-journal cells measured")

// phcdDataset is one input of the PHCD scaling experiment: larger than
// the Table/Fig suite (the issue floor is 2^17 vertices for the RMAT rows)
// so the layout's edge-scan savings dominate noise.
type phcdDataset struct {
	name  string
	build func() *graph.Graph
}

func phcdSuite(small bool) []phcdDataset {
	if small {
		// Smoke-test sizes: same shapes, tiny inputs.
		return []phcdDataset{
			{"rmat12", func() *graph.Graph { return gen.RMAT(12, 1<<15, 41) }},
			{"onion12", func() *graph.Graph { return gen.Onion(8, 512, 2, 1, 1, 43) }},
		}
	}
	return []phcdDataset{
		{"rmat17", func() *graph.Graph { return gen.RMAT(17, 1<<20, 41) }},
		{"rmat18", func() *graph.Graph { return gen.RMAT(18, 1<<21, 42) }},
		{"onion17", func() *graph.Graph { return gen.Onion(16, 2048, 2, 1, 4, 43) }},
	}
}

// phcdSuiteFingerprint names the generator-parameter set so a baseline
// recorded against different graphs is provably incomparable.
func phcdSuiteFingerprint(small bool) string {
	if small {
		return "phcd-smoke-v1"
	}
	return "phcd-full-v1"
}

// measureSweep runs one kernel across the thread sweep, producing one
// cell per thread count.
func measureSweep(rep *Report, dataset, kernel string, f func(p int)) {
	for _, p := range rep.Threads {
		p := p
		rep.Cells = append(rep.Cells, measureCellSpan(dataset, kernel, p, rep.Reps, func() { f(p) }))
	}
}

// measureBaseline records one serial (p=1) reference cell.
func measureBaseline(rep *Report, dataset, kernel string, f func()) {
	rep.Cells = append(rep.Cells, measureCellSpan(dataset, kernel, 1, rep.Reps, f))
}

// PHCDBench runs the paper-style PHCD construction sweep and writes the
// experiment journal. For every dataset it measures, at each thread
// count of cfg.Sweep:
//
//   - peel.levelsync / peel.buffered / peel.hindex — every selectable
//     core-decomposition peeling kernel (filterable with cfg.Kernels),
//     against a serial Batagelj–Zaversnik anchor cell (peel.serial):
//     the kernel-selection experiment that picks
//     coredecomp.DefaultKernel;
//   - phcd.seed — the frozen pre-layout constructor (core.PHCDBaseline);
//   - phcd — the one-shot layout path (vertex ranking, then shellidx
//     layout, then core.PHCDWithLayout), the production constructor;
//   - phcd.layout — core.PHCDWithLayout over a prebuilt layout, and
//     layout — the layout build alone: together they keep the
//     layout-amortisation trade-off (DESIGN.md "When to pay for the
//     layout") tracked release over release;
//   - build.index — the instrumented end-to-end pipeline
//     (hcd.BuildAndIndexCtx), whose per-phase worker statistics feed the
//     phase-level scaling analysis;
//
// plus a serial lcps reference cell as the vs-baseline anchor. The
// derived scaling rows carry self-relative speedup, parallel
// efficiency, an Amdahl serial-fraction fit, and — for the instrumented
// pipeline — the per-phase breakdown naming the phase that bounds
// scalability. When cfg.JSONPath is set the journal is also written
// there as machine-readable JSON.
//
// Scale 1 substitutes a tiny smoke-test suite so the experiment stays
// usable in tests; any larger scale runs the full-size inputs.
func PHCDBench(cfg Config) error {
	cfg = cfg.withDefaults()
	small := cfg.Scale <= 1
	rep := Report{
		Experiment: "phcd",
		Manifest:   NewManifest(cfg.Scale, phcdSuiteFingerprint(small)),
		Threads:    cfg.Sweep,
		Reps:       cfg.Reps,
	}
	pmax := 1
	for _, p := range rep.Threads {
		if p > pmax {
			pmax = p
		}
	}
	for _, d := range phcdSuite(small) {
		g := d.build()
		core := coredecomp.Serial(g)
		rank := coredecomp.RankVertices(core, 1)
		lay := shellidx.Build(g, core, rank, 1)

		// Peeling-kernel selection sweep: one cell row per kernel per
		// thread count against the Batagelj–Zaversnik serial anchor. The
		// kernel whose p=max cell wins beyond the noise band is promoted
		// to coredecomp.DefaultKernel (see EXPERIMENTS.md); the losers
		// stay recorded so regressions in *any* kernel are caught.
		measureBaseline(&rep, d.name, "peel.serial", func() { coredecomp.Serial(g) })
		for _, k := range coredecomp.Kernels() {
			if !cfg.wantKernel(string(k)) {
				continue
			}
			k := k
			measureSweep(&rep, d.name, "peel."+string(k), func(p int) { coredecomp.Peel(g, p, k) })
			// Memory cells ride a separate measurement pass at the sweep's
			// max thread count (the production configuration): peak heap
			// and allocations per run, DeltaAdded against pre-memory
			// journals, gated against refreshed ones.
			rep.Cells = append(rep.Cells,
				measureMemCells(d.name, "peel."+string(k), pmax, rep.Reps, 1, func() { coredecomp.Peel(g, pmax, k) })...)
			rep.Scaling = append(rep.Scaling,
				rep.buildScaling(d.name, "peel."+string(k), "peel.serial"))
		}

		measureBaseline(&rep, d.name, "lcps", func() { lcps.Build(g, core) })
		measureSweep(&rep, d.name, "phcd.seed", func(p int) { core2.PHCDBaseline(g, core, p) })
		measureSweep(&rep, d.name, "phcd", func(p int) {
			r := coredecomp.RankVertices(core, p)
			l := shellidx.Build(g, core, r, p)
			core2.PHCDWithLayout(g, core, l, p)
		})
		rep.Cells = append(rep.Cells,
			measureMemCells(d.name, "phcd", pmax, rep.Reps, 1, func() {
				r := coredecomp.RankVertices(core, pmax)
				l := shellidx.Build(g, core, r, pmax)
				core2.PHCDWithLayout(g, core, l, pmax)
			})...)
		measureSweep(&rep, d.name, "phcd.layout", func(p int) { core2.PHCDWithLayout(g, core, lay, p) })
		measureSweep(&rep, d.name, "layout", func(p int) {
			r := coredecomp.RankVertices(core, p)
			shellidx.Build(g, core, r, p)
		})

		// The instrumented pipeline cell keeps per-phase stats: one
		// BuildAndIndexCtx per rep, folded to the per-phase minimum so the
		// phase curve is as noise-resistant as the wall-clock one.
		var buildErr error
		for _, p := range rep.Threads {
			p := p
			var runs [][]obs.PhaseStat
			cell := measureCellSpan(d.name, "build.index", p, rep.Reps, func() {
				_, _, _, brep, err := hcd.BuildAndIndexCtx(context.Background(), g, hcd.Options{Threads: p})
				if err != nil {
					buildErr = err
					return
				}
				runs = append(runs, brep.Phases)
			})
			if buildErr != nil {
				return fmt.Errorf("phcd: instrumented pipeline run: %w", buildErr)
			}
			cell.Phases = obs.MinPhases(runs)
			rep.Cells = append(rep.Cells, cell)
		}
		rep.Cells = append(rep.Cells,
			measureMemCells(d.name, "build.index", pmax, rep.Reps, 1, func() {
				_, _, _, _, err := hcd.BuildAndIndexCtx(context.Background(), g, hcd.Options{Threads: pmax})
				if err != nil {
					buildErr = err
				}
			})...)
		if buildErr != nil {
			return fmt.Errorf("phcd: memory pass: %w", buildErr)
		}

		rep.Scaling = append(rep.Scaling,
			rep.buildScaling(d.name, "phcd", "lcps"),
			rep.buildScaling(d.name, "phcd.seed", "lcps"),
			rep.buildScaling(d.name, "phcd.layout", "phcd.seed"),
			rep.buildScaling(d.name, "build.index", ""))
	}
	printReport(cfg, rep)
	return writeJournal(cfg, rep)
}

// printReport renders the journal for humans: the manifest header, the
// raw cell table, and the derived scaling analysis.
func printReport(cfg Config, rep Report) {
	fmt.Fprintf(cfg.Out, "%s sweep, threads %v, min/median of %d reps\n", rep.Experiment, rep.Threads, rep.Reps)
	fmt.Fprintf(cfg.Out, "%s\n", rep.Manifest.Describe())
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tKernel\tp\tmin\tmedian\tmad")
	for _, c := range rep.Cells {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\n",
			c.Dataset, c.Kernel, c.Threads,
			fmtSample(c.MinNS, c.Unit), fmtSample(c.MedianNS, c.Unit), fmtSample(c.MADNS, c.Unit))
	}
	tw.Flush()
	if len(rep.Scaling) == 0 {
		return
	}
	fmt.Fprintln(cfg.Out)
	tw = tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Dataset\tKernel")
	for _, p := range rep.Threads {
		fmt.Fprintf(tw, "\tS(p=%d)", p)
	}
	fmt.Fprintln(tw, "\tvs-base\tserial frac\tbottleneck\thungriest")
	for _, row := range rep.Scaling {
		fmt.Fprintf(tw, "%s\t%s", row.Dataset, row.Kernel)
		for _, s := range row.Speedup {
			fmt.Fprintf(tw, "\t%.2fx", s)
		}
		vsBase := "-"
		if n := len(row.SpeedupVsBaseline); n > 0 {
			vsBase = fmt.Sprintf("%.2fx %s", row.SpeedupVsBaseline[n-1], row.Baseline)
		}
		sf := "-"
		if row.SerialFraction >= 0 {
			sf = fmt.Sprintf("%.3f", row.SerialFraction)
		}
		bn := row.Bottleneck
		if bn == "" {
			bn = "-"
		}
		hg := row.Hungriest
		if hg == "" {
			hg = "-"
		}
		fmt.Fprintf(tw, "\t%s\t%s\t%s\t%s\n", vsBase, sf, bn, hg)
		for _, ph := range row.Phases {
			fmt.Fprintf(tw, "\t· %s", ph.Name)
			for _, s := range ph.Speedup {
				fmt.Fprintf(tw, "\t%.2fx", s)
			}
			psf := "-"
			if ph.SerialFraction >= 0 {
				psf = fmt.Sprintf("%.3f", ph.SerialFraction)
			}
			alloc := "-"
			if ph.AllocBytes > 0 {
				alloc = fmt.Sprintf("%s (%.0f%%)", humanBytes(ph.AllocBytes), 100*ph.AllocShare)
			}
			fmt.Fprintf(tw, "\t%.0f%% share\t%s\t\t%s\n", 100*ph.Share, psf, alloc)
		}
	}
	tw.Flush()
}

// writeJournal persists the report when the run asked for JSON output.
func writeJournal(cfg Config, rep Report) error {
	if cfg.JSONPath == "" {
		return nil
	}
	if err := rep.WriteFile(cfg.JSONPath); err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "wrote %s\n", cfg.JSONPath)
	return nil
}
