package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"

	"hcd"
	core2 "hcd/internal/core"
	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/obs"
	"hcd/internal/search"
	"hcd/internal/shellidx"
)

// phcdDataset is one input of the PHCD regression experiment: larger than
// the Table/Fig suite (the issue floor is 2^17 vertices for the RMAT rows)
// so the layout's edge-scan savings dominate noise.
type phcdDataset struct {
	name  string
	build func() *graph.Graph
}

func phcdSuite(small bool) []phcdDataset {
	if small {
		// Smoke-test sizes: same shapes, tiny inputs.
		return []phcdDataset{
			{"rmat12", func() *graph.Graph { return gen.RMAT(12, 1<<15, 41) }},
			{"onion12", func() *graph.Graph { return gen.Onion(8, 512, 2, 1, 1, 43) }},
		}
	}
	return []phcdDataset{
		{"rmat17", func() *graph.Graph { return gen.RMAT(17, 1<<20, 41) }},
		{"rmat18", func() *graph.Graph { return gen.RMAT(18, 1<<21, 42) }},
		{"onion17", func() *graph.Graph { return gen.Onion(16, 2048, 2, 1, 4, 43) }},
	}
}

// phcdRow is one dataset's measurements, serialised to BENCH_phcd.json.
// All times are minimum-of-reps nanoseconds at the configured thread count.
type phcdRow struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	M    int64  `json:"m"`
	KMax int32  `json:"kmax"`
	// SeedNS is the frozen pre-layout implementation (core.PHCDBaseline).
	SeedNS int64 `json:"seed_ns"`
	// NewNS is core.PHCDWithLayout over a prebuilt layout.
	NewNS int64 `json:"new_ns"`
	// LayoutNS is the one-shot preprocessing (ranking + shellidx.Build).
	LayoutNS int64 `json:"layout_ns"`
	// OneshotNS is layout build + PHCDWithLayout, for callers with no
	// layout to amortise.
	OneshotNS int64 `json:"oneshot_ns"`
	// PipelineSeedNS / PipelineNewNS are PHCD + search-index construction
	// without and with a shared layout — the amortisation case.
	PipelineSeedNS int64 `json:"pipeline_seed_ns"`
	PipelineNewNS  int64 `json:"pipeline_new_ns"`
	// SpeedupPrebuilt = seed_ns / new_ns; SpeedupPipeline =
	// pipeline_seed_ns / pipeline_new_ns.
	SpeedupPrebuilt float64 `json:"speedup_prebuilt"`
	SpeedupPipeline float64 `json:"speedup_pipeline"`
	// Phases is the per-phase breakdown of one instrumented
	// BuildAndIndexCtx run (peel, rank+layout, phcd, index) — a single
	// run, not min-of-reps, so phase shares are representative rather
	// than best-case.
	Phases []obs.PhaseStat `json:"phases"`
}

type phcdReport struct {
	Experiment string    `json:"experiment"`
	Threads    int       `json:"threads"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Reps       int       `json:"reps"`
	Rows       []phcdRow `json:"rows"`
}

// PHCDBench runs the seed-vs-rewrite PHCD regression experiment: for each
// dataset it times the frozen baseline (PHCDBaseline), the rewrite over a
// prebuilt coreness-ordered layout (PHCDWithLayout), the layout build
// itself, the one-shot combination, and the construction+search pipeline
// with and without layout sharing. Results are printed as a table and,
// when cfg.JSONPath is set, written there as machine-readable JSON.
// A failure to write the JSON report is returned as an error.
//
// Scale 1 substitutes a tiny smoke-test suite so the experiment stays
// usable in tests; any larger scale runs the full-size inputs.
func PHCDBench(cfg Config) error {
	cfg = cfg.withDefaults()
	p := cfg.Threads
	report := phcdReport{
		Experiment: "phcd",
		Threads:    p,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       cfg.Reps,
	}
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "PHCD seed vs layout rewrite at p=%d (min of %d reps)\n", p, cfg.Reps)
	fmt.Fprintln(tw, "Dataset\tn\tm\tseed s\tnew s\tlayout s\toneshot s\tpipe-seed s\tpipe-new s\tnew x\tpipe x")
	for _, d := range phcdSuite(cfg.Scale <= 1) {
		g := d.build()
		core := coredecomp.Serial(g)
		rank := coredecomp.RankVertices(core, p)
		lay := shellidx.Build(g, core, rank, p)

		tSeed := timeIt(cfg.Reps, func() { core2.PHCDBaseline(g, core, p) })
		tNew := timeIt(cfg.Reps, func() { core2.PHCDWithLayout(g, core, lay, p) })
		tLayout := timeIt(cfg.Reps, func() {
			r := coredecomp.RankVertices(core, p)
			shellidx.Build(g, core, r, p)
		})
		tOneshot := timeIt(cfg.Reps, func() {
			r := coredecomp.RankVertices(core, p)
			l := shellidx.Build(g, core, r, p)
			core2.PHCDWithLayout(g, core, l, p)
		})
		tPipeSeed := timeIt(cfg.Reps, func() {
			h := core2.PHCDBaseline(g, core, p)
			search.NewIndex(g, core, h, p)
		})
		tPipeNew := timeIt(cfg.Reps, func() {
			r := coredecomp.RankVertices(core, p)
			l := shellidx.Build(g, core, r, p)
			h := core2.PHCDWithLayout(g, core, l, p)
			search.NewIndexWithLayout(g, core, h, l, p)
		})

		row := phcdRow{
			Name: d.name, N: g.NumVertices(), M: g.NumEdges(),
			KMax:   coredecomp.KMax(core),
			SeedNS: tSeed.Nanoseconds(), NewNS: tNew.Nanoseconds(),
			LayoutNS: tLayout.Nanoseconds(), OneshotNS: tOneshot.Nanoseconds(),
			PipelineSeedNS:  tPipeSeed.Nanoseconds(),
			PipelineNewNS:   tPipeNew.Nanoseconds(),
			SpeedupPrebuilt: ratio(tSeed, tNew),
			SpeedupPipeline: ratio(tPipeSeed, tPipeNew),
		}
		_, _, _, brep, err := hcd.BuildAndIndexCtx(context.Background(), g, hcd.Options{Threads: p})
		if err != nil {
			return fmt.Errorf("phcd: instrumented pipeline run: %w", err)
		}
		row.Phases = brep.Phases
		report.Rows = append(report.Rows, row)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%s\t%s\t%s\t%s\t%.2fx\t%.2fx\n",
			d.name, row.N, row.M,
			secs(tSeed), secs(tNew), secs(tLayout), secs(tOneshot),
			secs(tPipeSeed), secs(tPipeNew),
			row.SpeedupPrebuilt, row.SpeedupPipeline)
	}
	tw.Flush()
	if cfg.JSONPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(cfg.JSONPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			return fmt.Errorf("phcd: writing %s: %w", cfg.JSONPath, err)
		}
		fmt.Fprintf(cfg.Out, "wrote %s\n", cfg.JSONPath)
	}
	return nil
}
