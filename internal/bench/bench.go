// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§V) on the synthetic dataset suite.
// It is shared by cmd/benchtab (human-readable tables) and the repository's
// top-level testing.B benchmarks.
//
// Absolute numbers differ from the paper's (different hardware, synthetic
// stand-in datasets); the quantities reproduced are the comparative shapes:
// who wins, by what factor, and how the factors move with thread count.
// See EXPERIMENTS.md for paper-vs-measured notes per experiment.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"hcd/internal/clique"
	core2 "hcd/internal/core"
	"hcd/internal/coredecomp"
	"hcd/internal/densest"
	"hcd/internal/dynamic"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/lcps"
	"hcd/internal/metrics"
	"hcd/internal/rc"
	"hcd/internal/search"
)

// Config controls one harness run.
type Config struct {
	// Scale multiplies the synthetic dataset sizes (1 = tiny/test,
	// 4 = benchmark default).
	Scale int
	// Threads is the thread count for the "(P)" parallel columns.
	// 0 = GOMAXPROCS.
	Threads int
	// Sweep is the thread-count sweep used by the figures and the journal
	// experiments (phcd, search); defaults to {1, 2, 4, ..., GOMAXPROCS}
	// when nil.
	Sweep []int
	// Reps is the number of timing repetitions; the minimum is reported.
	Reps int
	// Datasets filters the suite by abbreviation; nil = all ten.
	Datasets []string
	// Kernels filters the phcd experiment's peeling-kernel sweep by
	// kernel name (levelsync, buffered, hindex); nil = all kernels.
	Kernels []string
	// Out receives the formatted rows (required).
	Out io.Writer
	// JSONPath, when non-empty, makes experiments that support it (phcd,
	// search, serve) also write a machine-readable experiment journal to
	// this file.
	JSONPath string
}

func (c Config) withDefaults() Config {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Reps < 1 {
		c.Reps = 3
	}
	if c.Sweep == nil {
		for t := 1; t <= runtime.GOMAXPROCS(0); t *= 2 {
			c.Sweep = append(c.Sweep, t)
		}
		if last := c.Sweep[len(c.Sweep)-1]; last != runtime.GOMAXPROCS(0) {
			c.Sweep = append(c.Sweep, runtime.GOMAXPROCS(0))
		}
	}
	return c
}

// wantKernel reports whether the kernel filter admits name (an empty
// filter admits everything).
func (c Config) wantKernel(name string) bool {
	if len(c.Kernels) == 0 {
		return true
	}
	for _, k := range c.Kernels {
		if k == name {
			return true
		}
	}
	return false
}

func (c Config) suite() []gen.Dataset {
	all := gen.Suite(c.Scale)
	if len(c.Datasets) == 0 {
		return all
	}
	want := map[string]bool{}
	for _, d := range c.Datasets {
		want[d] = true
	}
	var out []gen.Dataset
	for _, d := range all {
		if want[d.Abbrev] {
			out = append(out, d)
		}
	}
	return out
}

// timeIt reports the minimum wall time of reps runs of f.
func timeIt(reps int, f func()) time.Duration {
	best := time.Duration(-1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		d := time.Since(start)
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}

func ratio(base, x time.Duration) float64 {
	if x <= 0 {
		return 0
	}
	return float64(base) / float64(x)
}

func secs(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

// humanBytes renders a byte count with a binary-prefix unit, matching
// how an operator reads heap sizes.
func humanBytes(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}

// fmtSample renders one cell sample in its unit: seconds for timing
// cells (the historical default), sizes for UnitBytes, plain counts for
// UnitAllocs.
func fmtSample(v int64, unit string) string {
	switch unit {
	case UnitBytes:
		return humanBytes(v)
	case UnitAllocs:
		return fmt.Sprintf("%d", v)
	default:
		return secs(time.Duration(v)) + "s"
	}
}

// Table2 prints the dataset statistics table (paper Table II): n, m,
// average degree, kmax, and the number of HCD tree nodes.
func Table2(cfg Config) {
	cfg = cfg.withDefaults()
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tn\tm\tdavg\tkmax\t|T|")
	for _, d := range cfg.suite() {
		g := gen.BuildCached(d, cfg.Scale)
		core := coredecomp.Parallel(g, cfg.Threads)
		h := core2.PHCD(g, core, cfg.Threads)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%d\t%d\n",
			d.Abbrev, g.NumVertices(), g.NumEdges(), g.AvgDegree(),
			coredecomp.KMax(core), h.NumNodes())
	}
	tw.Flush()
}

// Table3 prints the HCD construction comparison (paper Table III):
// serial PHCD time with its speedup relative to the LB lower bound and to
// LCPS, then P-thread PHCD time with its speedup relative to LB and to the
// RC local-core-search cost.
func Table3(cfg Config) {
	cfg = cfg.withDefaults()
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Dataset\tPHCD(1) s\tLB(1)x\tLCPSx\tPHCD(%d) s\tLB(%d)x\tRCx\n",
		cfg.Threads, cfg.Threads)
	for _, d := range cfg.suite() {
		g := gen.BuildCached(d, cfg.Scale)
		core := coredecomp.Serial(g)
		tPHCD1 := timeIt(cfg.Reps, func() { core2.PHCD(g, core, 1) })
		tLB1 := timeIt(cfg.Reps, func() { core2.LB(g, core, 1) })
		tLCPS := timeIt(cfg.Reps, func() { lcps.Build(g, core) })
		tPHCDp := timeIt(cfg.Reps, func() { core2.PHCD(g, core, cfg.Threads) })
		tLBp := timeIt(cfg.Reps, func() { core2.LB(g, core, cfg.Threads) })
		h := core2.PHCD(g, core, cfg.Threads)
		tRC := timeIt(cfg.Reps, func() { rc.RebuildParents(g, core, h) })
		fmt.Fprintf(tw, "%s\t%s\t%.2fx\t%.2fx\t%s\t%.2fx\t%.2fx\n",
			d.Abbrev,
			secs(tPHCD1), ratio(tLB1, tPHCD1), ratio(tLCPS, tPHCD1),
			secs(tPHCDp), ratio(tLBp, tPHCDp), ratio(tRC, tPHCDp))
	}
	tw.Flush()
}

// Table4 prints the densest subgraph / maximum clique study (paper
// Table IV): CoreApp's and PBKS-D's output average degree and runtimes
// (Opt-D included for time), whether the maximum clique is contained in
// PBKS-D's output S*, and |S*|/n.
func Table4(cfg Config) {
	cfg = cfg.withDefaults()
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tCoreApp davg\tCoreApp s\tOpt-D s\tPBKS-D davg\tPBKS-D s\tMC⊆S*\t|S*|/n")
	for _, d := range cfg.suite() {
		g := gen.BuildCached(d, cfg.Scale)
		core := coredecomp.Parallel(g, cfg.Threads)
		h := core2.PHCD(g, core, cfg.Threads)
		ix := search.NewIndex(g, core, h, cfg.Threads)
		bks := search.NewBKS(g, core, h)

		var ca, pd densest.Solution
		tCA := timeIt(cfg.Reps, func() { ca = densest.CoreApp(g, core) })
		tOptD := timeIt(cfg.Reps, func() { densest.OptD(bks, h) })
		tPD := timeIt(cfg.Reps, func() { pd = densest.PBKSD(ix, cfg.Threads) })
		mc := clique.Max(g)
		contained := "-"
		if clique.Contains(pd.Vertices, mc) {
			contained = "yes"
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%s\t%s\t%.2f\t%s\t%s\t%.3f%%\n",
			d.Abbrev, ca.AvgDegree, secs(tCA), secs(tOptD),
			pd.AvgDegree, secs(tPD), contained,
			100*float64(len(pd.Vertices))/float64(g.NumVertices()))
	}
	tw.Flush()
}

// Table5 prints the subgraph-search runtimes (paper Table V): P-thread
// PBKS score-computation time and its speedup over serial BKS, for the
// representative Type A metric (average degree) and Type B metric
// (clustering coefficient). Preprocessing/index construction is excluded,
// as in the paper.
func Table5(cfg Config) {
	cfg = cfg.withDefaults()
	mA := metrics.AverageDegree{}
	mB := metrics.ClusteringCoefficient{}
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Dataset\tTypeA(%d) s\tTypeA(1)x\tTypeB(%d) s\tTypeB(1)x\n", cfg.Threads, cfg.Threads)
	for _, d := range cfg.suite() {
		g := gen.BuildCached(d, cfg.Scale)
		core := coredecomp.Parallel(g, cfg.Threads)
		h := core2.PHCD(g, core, cfg.Threads)
		ix := search.NewIndex(g, core, h, cfg.Threads)
		bks := search.NewBKS(g, core, h)
		tAp := timeIt(cfg.Reps, func() { ix.Search(mA, cfg.Threads) })
		tAs := timeIt(cfg.Reps, func() { bks.Search(mA) })
		tBp := timeIt(cfg.Reps, func() { ix.Search(mB, cfg.Threads) })
		tBs := timeIt(cfg.Reps, func() { bks.Search(mB) })
		fmt.Fprintf(tw, "%s\t%s\t%.2fx\t%s\t%.2fx\n",
			d.Abbrev, secs(tAp), ratio(tAs, tAp), secs(tBp), ratio(tBs, tBp))
	}
	tw.Flush()
}

// pipeline holds per-dataset state shared by the figure sweeps.
type pipeline struct {
	d    gen.Dataset
	g    *graph.Graph
	core []int32
	h    *hierarchy.HCD
}

func (c Config) pipelines() []pipeline {
	var out []pipeline
	for _, d := range c.suite() {
		g := gen.BuildCached(d, c.Scale)
		core := coredecomp.Serial(g)
		h := core2.PHCD(g, core, c.Threads)
		out = append(out, pipeline{d: d, g: g, core: core, h: h})
	}
	return out
}

// sweepFig prints one speedup figure: for every dataset a row of
// baseline/parallel ratios across the thread sweep.
func sweepFig(cfg Config, title string, baseline func(pipeline) time.Duration,
	parallel func(pipeline, int) time.Duration) {
	cfg = cfg.withDefaults()
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", title)
	fmt.Fprint(tw, "Dataset")
	for _, t := range cfg.Sweep {
		fmt.Fprintf(tw, "\tp=%d", t)
	}
	fmt.Fprintln(tw)
	for _, pl := range cfg.pipelines() {
		base := baseline(pl)
		fmt.Fprint(tw, pl.d.Abbrev)
		for _, t := range cfg.Sweep {
			fmt.Fprintf(tw, "\t%.2fx", ratio(base, parallel(pl, t)))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Fig4 prints PHCD's speedup over LCPS across the thread sweep
// (paper Figure 4).
func Fig4(cfg Config) {
	cfg = cfg.withDefaults()
	sweepFig(cfg, "Fig 4: PHCD speedup over LCPS",
		func(pl pipeline) time.Duration {
			return timeIt(cfg.Reps, func() { lcps.Build(pl.g, pl.core) })
		},
		func(pl pipeline, t int) time.Duration {
			return timeIt(cfg.Reps, func() { core2.PHCD(pl.g, pl.core, t) })
		})
}

// Fig5 prints the end-to-end construction speedup including core
// decomposition: (PKC + PHCD at p threads) vs (PKC at one thread + LCPS)
// — the baseline pipeline the paper uses in Figure 5.
func Fig5(cfg Config) {
	cfg = cfg.withDefaults()
	sweepFig(cfg, "Fig 5: (PKC+PHCD) speedup over (PKC+LCPS)",
		func(pl pipeline) time.Duration {
			return timeIt(cfg.Reps, func() {
				c := coredecomp.Parallel(pl.g, 1)
				lcps.Build(pl.g, c)
			})
		},
		func(pl pipeline, t int) time.Duration {
			return timeIt(cfg.Reps, func() {
				c := coredecomp.Parallel(pl.g, t)
				core2.PHCD(pl.g, c, t)
			})
		})
}

// figSearch prints Figures 6-9: PBKS-vs-BKS score computation speedups
// (optionally end-to-end including PKC + PHCD + preprocessing).
func figSearch(cfg Config, title string, m metrics.Metric, endToEnd bool) {
	cfg = cfg.withDefaults()
	sweepFig(cfg, title,
		func(pl pipeline) time.Duration {
			return timeIt(cfg.Reps, func() {
				if endToEnd {
					// The paper's serial pipeline: PKC + LCPS + BKS.
					c := coredecomp.Parallel(pl.g, 1)
					h := lcps.Build(pl.g, c)
					search.NewBKS(pl.g, c, h).Search(m)
					return
				}
				bks := search.NewBKS(pl.g, pl.core, pl.h)
				bks.Search(m)
			})
		},
		func(pl pipeline, t int) time.Duration {
			return timeIt(cfg.Reps, func() {
				if endToEnd {
					c := coredecomp.Parallel(pl.g, t)
					h := core2.PHCD(pl.g, c, t)
					search.NewIndex(pl.g, c, h, t).Search(m, t)
					return
				}
				ix := search.NewIndex(pl.g, pl.core, pl.h, t)
				ix.Search(m, t)
			})
		})
}

// Fig6 prints PBKS's Type A score-computation speedup over BKS
// (paper Figure 6).
func Fig6(cfg Config) {
	figSearch(cfg, "Fig 6: PBKS speedup over BKS (Type A)", metrics.AverageDegree{}, false)
}

// Fig7 prints the end-to-end Type A pipeline speedup
// (PKC+PHCD+PBKS over CD+LCPS+BKS, paper Figure 7).
func Fig7(cfg Config) {
	figSearch(cfg, "Fig 7: end-to-end Type A speedup", metrics.AverageDegree{}, true)
}

// Fig8 prints PBKS's Type B score-computation speedup over BKS
// (paper Figure 8).
func Fig8(cfg Config) {
	figSearch(cfg, "Fig 8: PBKS speedup over BKS (Type B)", metrics.ClusteringCoefficient{}, false)
}

// Fig9 prints the end-to-end Type B pipeline speedup (paper Figure 9).
func Fig9(cfg Config) {
	figSearch(cfg, "Fig 9: end-to-end Type B speedup", metrics.ClusteringCoefficient{}, true)
}

// Fig10 prints the per-component speedup at the maximum thread count
// (paper Figure 10): core decomposition (CD), HCD construction (HCD),
// Type A score computation (SC-A) and Type B score computation (SC-B),
// each parallel-vs-serial.
func Fig10(cfg Config) {
	cfg = cfg.withDefaults()
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Fig 10: per-component speedup at p=%d\n", cfg.Threads)
	fmt.Fprintln(tw, "Dataset\tCD\tHCD\tSC-A\tSC-B")
	mA, mB := metrics.AverageDegree{}, metrics.ClusteringCoefficient{}
	for _, pl := range cfg.pipelines() {
		tCDs := timeIt(cfg.Reps, func() { coredecomp.Serial(pl.g) })
		tCDp := timeIt(cfg.Reps, func() { coredecomp.Parallel(pl.g, cfg.Threads) })
		tHs := timeIt(cfg.Reps, func() { lcps.Build(pl.g, pl.core) })
		tHp := timeIt(cfg.Reps, func() { core2.PHCD(pl.g, pl.core, cfg.Threads) })
		ix := search.NewIndex(pl.g, pl.core, pl.h, cfg.Threads)
		bks := search.NewBKS(pl.g, pl.core, pl.h)
		tAs := timeIt(cfg.Reps, func() { bks.Search(mA) })
		tAp := timeIt(cfg.Reps, func() { ix.Search(mA, cfg.Threads) })
		tBs := timeIt(cfg.Reps, func() { bks.Search(mB) })
		tBp := timeIt(cfg.Reps, func() { ix.Search(mB, cfg.Threads) })
		fmt.Fprintf(tw, "%s\t%.2fx\t%.2fx\t%.2fx\t%.2fx\n",
			pl.d.Abbrev, ratio(tCDs, tCDp), ratio(tHs, tHp),
			ratio(tAs, tAp), ratio(tBs, tBp))
	}
	tw.Flush()
}

// Ablation prints the §III-E divide-and-conquer comparison: PHCD vs the
// partition+RC-merge constructor, both at the configured thread count.
func Ablation(cfg Config) {
	cfg = cfg.withDefaults()
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Ablation: divide-and-conquer (§III-E) vs PHCD at p=%d\n", cfg.Threads)
	fmt.Fprintln(tw, "Dataset\tPHCD s\tD&C s\tD&C/PHCD")
	for _, pl := range cfg.pipelines() {
		tP := timeIt(cfg.Reps, func() { core2.PHCD(pl.g, pl.core, cfg.Threads) })
		tD := timeIt(cfg.Reps, func() { core2.DivideConquer(pl.g, pl.core, cfg.Threads) })
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2fx\n", pl.d.Abbrev, secs(tP), secs(tD), ratio(tD, tP))
	}
	tw.Flush()
}

// Run dispatches an experiment by name: "table2".."table5", "fig4".."fig10",
// "ablation", "maintenance", or the journal experiments "phcd", "search"
// and "serve".
func Run(name string, cfg Config) error {
	switch name {
	case "phcd":
		return PHCDBench(cfg)
	case "search":
		return SearchBench(cfg)
	case "serve":
		return ServeBench(cfg)
	}
	fns := map[string]func(Config){
		"table2": Table2, "table3": Table3, "table4": Table4, "table5": Table5,
		"fig4": Fig4, "fig5": Fig5, "fig6": Fig6, "fig7": Fig7, "fig8": Fig8,
		"fig9": Fig9, "fig10": Fig10, "ablation": Ablation,
		"maintenance": Maintenance,
	}
	fn, ok := fns[name]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q", name)
	}
	fn(cfg)
	return nil
}

// Names lists the experiments Run accepts, in presentation order.
func Names() []string {
	return []string{"table2", "table3", "table4", "table5",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "ablation",
		"maintenance", "phcd", "search", "serve"}
}

// Maintenance prints the dynamic-maintenance ablation: per dataset, the
// per-operation cost of a mixed insert/delete stream under the
// subcore-traversal maintainer, the order-based maintainer, and full
// recomputation, all applying the same mutation sequence.
func Maintenance(cfg Config) {
	cfg = cfg.withDefaults()
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Maintenance ablation (µs per operation, mixed stream)")
	fmt.Fprintln(tw, "Dataset\tops\ttraversal\torder-based\trecompute")
	const streamLen = 300
	for _, d := range cfg.suite() {
		g := gen.BuildCached(d, cfg.Scale)
		n := int32(g.NumVertices())
		type op struct {
			u, v int32
		}
		// Deterministic mutation schedule derived from vertex ids.
		ops := make([]op, 0, streamLen)
		seed := int64(1)
		for len(ops) < streamLen {
			u := int32(seed * 2654435761 % int64(n))
			v := int32((seed*40503 + 7) % int64(n))
			seed++
			if u != v {
				ops = append(ops, op{u, v})
			}
		}
		apply := func(has func(u, v int32) bool, ins, rem func(u, v int32) error) {
			for _, o := range ops {
				if has(o.u, o.v) {
					_ = rem(o.u, o.v)
				} else {
					_ = ins(o.u, o.v)
				}
			}
		}
		tTrav := timeIt(1, func() {
			m := dynamic.New(g)
			apply(m.HasEdge, m.InsertEdge, m.RemoveEdge)
		})
		tOrder := timeIt(1, func() {
			m := dynamic.NewOrder(g)
			apply(m.HasEdge, m.InsertEdge, m.RemoveEdge)
		})
		tRecomp := timeIt(1, func() {
			m := dynamic.New(g)
			apply(m.HasEdge,
				func(u, v int32) error {
					err := m.InsertEdge(u, v)
					coredecomp.Serial(m.Snapshot())
					return err
				},
				func(u, v int32) error {
					err := m.RemoveEdge(u, v)
					coredecomp.Serial(m.Snapshot())
					return err
				})
		})
		perOp := func(d time.Duration) float64 {
			return float64(d.Microseconds()) / float64(len(ops))
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.1f\n",
			d.Abbrev, len(ops), perOp(tTrav), perOp(tOrder), perOp(tRecomp))
	}
	tw.Flush()
}
