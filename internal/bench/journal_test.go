package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hcd/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the journal schema golden file")

func TestMedianMAD(t *testing.T) {
	cases := []struct {
		in       []int64
		med, mad int64
	}{
		{nil, 0, 0},
		{[]int64{7}, 7, 0},
		{[]int64{1, 2, 3}, 2, 1},
		{[]int64{1, 2, 3, 4}, 2, 1},
		{[]int64{10, 10, 10, 100}, 10, 0},
		{[]int64{5, 1, 9, 3, 7}, 5, 2},
	}
	for _, c := range cases {
		med, mad := medianMAD(c.in)
		if med != c.med || mad != c.mad {
			t.Errorf("medianMAD(%v) = %d/%d, want %d/%d", c.in, med, mad, c.med, c.mad)
		}
	}
}

// syntheticReport builds a hand-crafted journal: a kernel that halves
// perfectly with threads over a serial baseline twice as slow, with one
// scalable and one stubbornly serial phase.
func syntheticReport() Report {
	ms := func(n int64) int64 { return n * int64(time.Millisecond) }
	phases := func(scalable, serial int64) []obs.PhaseStat {
		return []obs.PhaseStat{
			{Name: "peel", Duration: time.Duration(ms(scalable)), AllocBytes: 3 << 20},
			{Name: "index", Duration: time.Duration(ms(serial)), AllocBytes: 1 << 20},
		}
	}
	return Report{
		Experiment: "synthetic",
		Manifest:   Manifest{Schema: SchemaVersion},
		Threads:    []int{1, 2, 4},
		Reps:       1,
		Cells: []Cell{
			{Dataset: "d", Kernel: "base", Threads: 1, MinNS: ms(800), MedianNS: ms(800)},
			{Dataset: "d", Kernel: "k", Threads: 1, MinNS: ms(400), MedianNS: ms(400), Phases: phases(300, 100)},
			{Dataset: "d", Kernel: "k", Threads: 2, MinNS: ms(200), MedianNS: ms(200), Phases: phases(150, 100)},
			{Dataset: "d", Kernel: "k", Threads: 4, MinNS: ms(100), MedianNS: ms(100), Phases: phases(75, 100)},
		},
	}
}

func TestBuildScalingDerivesCurves(t *testing.T) {
	rep := syntheticReport()
	row := rep.buildScaling("d", "k", "base")
	near := func(got, want float64) bool { d := got - want; return d < 1e-9 && d > -1e-9 }
	if !near(row.Speedup[0], 1) || !near(row.Speedup[1], 2) || !near(row.Speedup[2], 4) {
		t.Errorf("self speedup = %v, want [1 2 4]", row.Speedup)
	}
	if !near(row.Efficiency[2], 1) {
		t.Errorf("efficiency at p=4 = %f, want 1", row.Efficiency[2])
	}
	if !near(row.SpeedupVsBaseline[0], 2) || !near(row.SpeedupVsBaseline[2], 8) {
		t.Errorf("vs-baseline speedup = %v, want [2 4 8]", row.SpeedupVsBaseline)
	}
	if !near(row.SerialFraction, 0) {
		t.Errorf("serial fraction of a perfect scaler = %f, want 0", row.SerialFraction)
	}
	if len(row.Phases) != 2 {
		t.Fatalf("phase rows = %d, want 2", len(row.Phases))
	}
	// peel scales perfectly; index does not move at all.
	if !near(row.Phases[0].SerialFraction, 0) {
		t.Errorf("peel serial fraction = %f, want 0", row.Phases[0].SerialFraction)
	}
	if !near(row.Phases[1].SerialFraction, 1) {
		t.Errorf("index serial fraction = %f, want 1", row.Phases[1].SerialFraction)
	}
	if !near(row.Phases[0].Share, 0.75) || !near(row.Phases[1].Share, 0.25) {
		t.Errorf("shares = %f/%f, want 0.75/0.25", row.Phases[0].Share, row.Phases[1].Share)
	}
	if row.Bottleneck != "index" {
		t.Errorf("bottleneck = %q, want index (the serial 25%% phase)", row.Bottleneck)
	}
	// Memory accounting: peel allocates 3 MiB of the 4 MiB total at p=1,
	// so it is the hungriest phase with a 75% allocation share.
	if row.Hungriest != "peel" {
		t.Errorf("hungriest = %q, want peel", row.Hungriest)
	}
	if !near(row.Phases[0].AllocShare, 0.75) || !near(row.Phases[1].AllocShare, 0.25) {
		t.Errorf("alloc shares = %f/%f, want 0.75/0.25", row.Phases[0].AllocShare, row.Phases[1].AllocShare)
	}
}

// TestMeasureMemCells pins the memory-pass cell shape: two cells per
// kernel (peak bytes, allocs per op), units attached, allocations
// divided by the per-op count.
func TestMeasureMemCells(t *testing.T) {
	if !obs.Enabled() {
		t.Skip("memory cells are compiled out under noobs")
	}
	var sink [][]byte
	cells := measureMemCells("d", "k", 2, 3, 4, func() {
		sink = append(sink, make([]byte, 1<<20))
	})
	_ = sink
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2 (peak + allocs)", len(cells))
	}
	peak, allocs := cells[0], cells[1]
	if peak.Kernel != "k.mem.peak" || peak.Unit != UnitBytes {
		t.Errorf("peak cell = %q unit %q, want k.mem.peak / bytes", peak.Kernel, peak.Unit)
	}
	if allocs.Kernel != "k.mem.allocs" || allocs.Unit != UnitAllocs {
		t.Errorf("allocs cell = %q unit %q, want k.mem.allocs / allocs", allocs.Kernel, allocs.Unit)
	}
	if peak.Threads != 2 || allocs.Threads != 2 {
		t.Errorf("threads = %d/%d, want 2", peak.Threads, allocs.Threads)
	}
	if len(peak.SamplesNS) != 3 || len(allocs.SamplesNS) != 3 {
		t.Errorf("samples = %d/%d, want 3 reps each", len(peak.SamplesNS), len(allocs.SamplesNS))
	}
	// Each rep allocates one 1 MiB slice (plus noise); the peak must see
	// at least that much live, and the per-op alloc count (divided by 4)
	// must stay small but positive.
	if peak.MinNS < 1<<20 {
		t.Errorf("peak heap = %d bytes, want >= 1 MiB (the live slice)", peak.MinNS)
	}
	if allocs.MinNS < 0 {
		t.Errorf("allocs per op = %d, want >= 0", allocs.MinNS)
	}
}

func TestBuildScalingWithoutBaselineOrPhases(t *testing.T) {
	rep := syntheticReport()
	row := rep.buildScaling("d", "base", "")
	if row.SpeedupVsBaseline != nil {
		t.Errorf("no-baseline row grew a vs-baseline curve: %v", row.SpeedupVsBaseline)
	}
	if row.SerialFraction != -1 {
		t.Errorf("single-point sweep serial fraction = %f, want -1", row.SerialFraction)
	}
	if row.Phases != nil || row.Bottleneck != "" {
		t.Errorf("uninstrumented row grew phases: %+v", row)
	}
	// Speedup slots for missing cells stay zeroed, slices stay aligned.
	if len(row.Speedup) != 3 || row.Speedup[1] != 0 || row.Speedup[2] != 0 {
		t.Errorf("missing-cell speedups = %v, want [1 0 0]", row.Speedup)
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(path, []byte(`{"experiment":"phcd","manifest":{"schema":1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Error("schema-1 journal accepted; want a loud rejection")
	}
	if _, err := ReadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestJournalSchemaGolden pins the journal's JSON field names and
// nesting: any drift in the serialised shape fails this test until the
// golden file is regenerated (go test ./internal/bench -run Golden
// -update) and SchemaVersion is bumped for breaking changes.
func TestJournalSchemaGolden(t *testing.T) {
	rep := Report{
		Experiment: "phcd",
		Manifest: Manifest{
			Schema: SchemaVersion, GitSHA: "0123456789abcdef", GoVersion: "go1.24",
			OS: "linux", Arch: "amd64", CPUModel: "Example CPU", NumCPU: 8, GoMaxProcs: 8,
			Obs: true, FaultInject: true, Scale: 4, Suite: "phcd-full-v1",
			CreatedAt: "2026-01-02T03:04:05Z",
		},
		Threads: []int{1, 2},
		Reps:    3,
		Cells: []Cell{{
			Dataset: "rmat17", Kernel: "build.index", Threads: 2,
			SamplesNS: []int64{1100, 1000, 1050}, MinNS: 1000, MedianNS: 1050, MADNS: 50,
			Phases: []obs.PhaseStat{{
				Name: "peel", Duration: 400, Stints: 4, MaxWorkers: 2,
				Chunks: 8, Busy: 700, MaxBusy: 390, Skew: 1.1,
				AllocBytes: 4096, AllocObjects: 12, GCCycles: 1, GCPause: 200,
			}},
		}, {
			Dataset: "rmat17", Kernel: "build.index.mem.peak", Threads: 2, Unit: UnitBytes,
			SamplesNS: []int64{2048, 2048, 2048}, MinNS: 2048, MedianNS: 2048, MADNS: 0,
		}},
		Scaling: []ScalingRow{{
			Dataset: "rmat17", Kernel: "build.index", Baseline: "lcps",
			Threads: []int{1, 2}, SpeedupVsBaseline: []float64{2, 4},
			Speedup: []float64{1, 2}, Efficiency: []float64{1, 1}, SerialFraction: 0,
			Phases: []PhaseScaling{{
				Name: "peel", Speedup: []float64{1, 2}, Efficiency: []float64{1, 1},
				SerialFraction: 0, Share: 1, AllocBytes: 4096, AllocShare: 1,
			}},
			Bottleneck: "peel",
			Hungriest:  "peel",
		}},
	}
	golden := filepath.Join("testdata", "journal_schema.golden")
	path := filepath.Join(t.TempDir(), "rep.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file unreadable (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("journal JSON schema drifted from the golden file.\nIf intentional: bump bench.SchemaVersion for breaking changes and regenerate with\n  go test ./internal/bench -run Golden -update\ngot:\n%s\nwant:\n%s", got, want)
	}
}
