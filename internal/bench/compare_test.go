package bench

import (
	"strings"
	"testing"
)

// cmpReports builds an old/new journal pair with identical manifests
// and the given cells.
func cmpReports(oldCells, newCells []Cell) (Report, Report) {
	m := Manifest{Schema: SchemaVersion, GoVersion: "go1.24", OS: "linux", Arch: "amd64",
		NumCPU: 8, GoMaxProcs: 8, Obs: true, FaultInject: true, Scale: 4, Suite: "phcd-full-v1"}
	return Report{Experiment: "phcd", Manifest: m, Cells: oldCells},
		Report{Experiment: "phcd", Manifest: m, Cells: newCells}
}

// tightCell has negligible MAD, so classification is governed by the 2%
// band floor.
func tightCell(kernel string, threads int, minNS int64) Cell {
	return Cell{Dataset: "d", Kernel: kernel, Threads: threads,
		MinNS: minNS, MedianNS: minNS, MADNS: 0}
}

func TestCompareClassifiesEveryCell(t *testing.T) {
	old, new := cmpReports(
		[]Cell{
			tightCell("steady", 1, 1_000_000),
			tightCell("faster", 1, 1_000_000),
			tightCell("slower", 1, 1_000_000),
			tightCell("gone", 1, 1_000_000),
		},
		[]Cell{
			tightCell("steady", 1, 1_010_000), // +1%: inside the 2% floor
			tightCell("faster", 1, 800_000),   // -20%
			tightCell("slower", 1, 1_300_000), // +30%
			tightCell("fresh", 1, 500_000),
		},
	)
	c := Compare(old, new)
	if !c.Comparable || len(c.Reasons) != 0 {
		t.Fatalf("identical manifests judged incomparable: %v", c.Reasons)
	}
	want := map[string]DeltaClass{
		"steady": DeltaNoise, "faster": DeltaImproved, "slower": DeltaRegressed,
		"gone": DeltaRemoved, "fresh": DeltaAdded,
	}
	if len(c.Deltas) != len(want) {
		t.Fatalf("deltas = %d, want %d (every cell classified)", len(c.Deltas), len(want))
	}
	for _, d := range c.Deltas {
		if d.Class != want[d.Kernel] {
			t.Errorf("%s classified %s, want %s (ratio %.3f band %.3f)",
				d.Kernel, d.Class, want[d.Kernel], d.Ratio, d.Band)
		}
	}
	if !c.HasRegressions() {
		t.Error("confirmed regression not reported")
	}
}

func TestCompareNoiseBandWidensWithMAD(t *testing.T) {
	// 10% movement with 0 MAD is a confirmed regression; the same
	// movement with a jittery baseline (rel MAD ~5% → band ~22%) is noise.
	noisy := tightCell("k", 1, 1_000_000)
	noisy.MADNS = 50_000
	old1, new1 := cmpReports([]Cell{tightCell("k", 1, 1_000_000)}, []Cell{tightCell("k", 1, 1_100_000)})
	if c := Compare(old1, new1); c.Deltas[0].Class != DeltaRegressed {
		t.Errorf("tight +10%% = %s, want regressed", c.Deltas[0].Class)
	}
	old2, new2 := cmpReports([]Cell{noisy}, []Cell{tightCell("k", 1, 1_100_000)})
	if c := Compare(old2, new2); c.Deltas[0].Class != DeltaNoise {
		t.Errorf("jittery +10%% = %s (band %.3f), want noise", c.Deltas[0].Class, c.Deltas[0].Band)
	}
}

func TestCompareIncomparableManifestsNeverGate(t *testing.T) {
	old, new := cmpReports([]Cell{tightCell("k", 1, 1_000_000)}, []Cell{tightCell("k", 1, 2_000_000)})
	new.Manifest.CPUModel = "Different CPU"
	c := Compare(old, new)
	if c.Comparable {
		t.Fatal("different cpu models judged comparable")
	}
	if c.Deltas[0].Class != DeltaRegressed {
		t.Errorf("delta still classified for information: got %s", c.Deltas[0].Class)
	}
	if c.HasRegressions() {
		t.Error("incomparable runs must never gate")
	}
	md := c.Markdown()
	if !strings.Contains(md, "Gate: informational only") || !strings.Contains(md, "cpu model differs") {
		t.Errorf("markdown missing incomparability notice:\n%s", md)
	}
	// The manifest-diff lead must flag the mismatched dimension and show
	// both sides, so the report says up front why it does not gate.
	if !strings.Contains(md, "Different CPU") || !strings.Contains(md, "⚠") {
		t.Errorf("markdown missing flagged manifest diff:\n%s", md)
	}
}

func TestCompareMarkdownManifestDiffLeads(t *testing.T) {
	old, new := cmpReports([]Cell{tightCell("k", 1, 1_000_000)}, []Cell{tightCell("k", 1, 1_000_000)})
	md := Compare(old, new).Markdown()
	for _, want := range []string{"| | old | new |", "| flavour |", "| toolchain |", "Gate: active"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing manifest-diff element %q:\n%s", want, md)
		}
	}
	// Comparable runs carry no warning marks.
	if strings.Contains(md, "⚠") {
		t.Errorf("comparable manifests must not flag any row:\n%s", md)
	}
	// The diff summary must appear before the delta table.
	if strings.Index(md, "| | old | new |") > strings.Index(md, "| dataset |") {
		t.Errorf("manifest diff must lead the report:\n%s", md)
	}
}

func TestCompareMemoryCellUnits(t *testing.T) {
	mem := tightCell("phcd.mem.peak", 8, 1<<30)
	mem.Unit = UnitBytes
	grown := tightCell("phcd.mem.peak", 8, 1<<30+1<<29)
	grown.Unit = UnitBytes
	old, new := cmpReports([]Cell{mem}, []Cell{grown})
	c := Compare(old, new)
	if c.Deltas[0].Class != DeltaRegressed {
		t.Fatalf("memory growth beyond the band = %s, want regressed", c.Deltas[0].Class)
	}
	if c.Deltas[0].Unit != UnitBytes {
		t.Fatalf("delta lost the cell unit: %q", c.Deltas[0].Unit)
	}
	md := c.Markdown()
	if !strings.Contains(md, "1.00GiB") || !strings.Contains(md, "1.50GiB") {
		t.Errorf("markdown must render byte cells as sizes, not seconds:\n%s", md)
	}
}

func TestCompareMarkdownTable(t *testing.T) {
	old, new := cmpReports(
		[]Cell{tightCell("phcd", 2, 1_000_000)},
		[]Cell{tightCell("phcd", 2, 700_000)},
	)
	md := Compare(old, new).Markdown()
	for _, want := range []string{
		"# Benchmark comparison",
		"1 improved, 0 regressed, 0 within noise",
		"| d | phcd | 2 |",
		"-30.0%",
		"*improved*",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
