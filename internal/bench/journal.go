// The experiment journal: the machine-readable schema every sweep
// experiment (phcd, search) emits, the cell-measurement engine that
// fills it, and the derived scaling analysis (speedup, parallel
// efficiency, Amdahl serial-fraction fit, bottleneck phase). The
// journal is the unit of performance tracking: one Report per run,
// committed as BENCH_*.json, diffed PR-over-PR by Compare.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"hcd/internal/obs"
)

// Cell is one measured (dataset, kernel, thread-count) combination. The
// harness repeats the measurement Reps times and keeps every sample:
// MinNS is the headline number (min-of-k, the classic low-noise
// estimator), MedianNS/MADNS are the robust location/spread pair the
// differential compare uses for its noise band.
type Cell struct {
	Dataset string `json:"dataset"`
	// Kernel names what ran, e.g. "phcd", "lcps", "pbks.typea". Memory
	// cells suffix the kernel they profile: "phcd.mem.peak",
	// "phcd.mem.allocs".
	Kernel string `json:"kernel"`
	// Threads is the worker count (1 for serial baselines).
	Threads int `json:"threads"`
	// Unit names what the samples measure when they are not wall-clock
	// nanoseconds: UnitBytes for peak-heap cells, UnitAllocs for
	// allocations-per-op cells. Empty means nanoseconds (the historical
	// default, which is why the sample fields keep their NS names).
	Unit string `json:"unit,omitempty"`
	// SamplesNS holds every repetition's measurement, in run order —
	// wall-clock nanoseconds unless Unit says otherwise.
	SamplesNS []int64 `json:"samples_ns"`
	// MinNS, MedianNS and MADNS summarise SamplesNS (MAD = median
	// absolute deviation from the median, a robust spread estimate).
	MinNS    int64 `json:"min_ns"`
	MedianNS int64 `json:"median_ns"`
	MADNS    int64 `json:"mad_ns"`
	// Phases is the per-phase breakdown for instrumented kernels
	// (min-of-reps per phase via obs.MinPhases); empty for plain cells.
	Phases []obs.PhaseStat `json:"phases,omitempty"`
}

// PhaseScaling is the thread-scaling analysis of one pipeline phase,
// derived from the instrumented cells of a sweep.
type PhaseScaling struct {
	Name string `json:"name"`
	// Speedup[i] is duration(p=1)/duration(threads[i]) for this phase;
	// Efficiency[i] is Speedup[i]/threads[i].
	Speedup    []float64 `json:"speedup"`
	Efficiency []float64 `json:"efficiency"`
	// SerialFraction is the Amdahl fit over this phase's sweep points
	// (obs.FitSerialFraction); -1 when the sweep cannot support a fit.
	SerialFraction float64 `json:"serial_fraction"`
	// Share is this phase's fraction of the p=1 total across phases.
	Share float64 `json:"share"`
	// AllocBytes is the phase's heap allocation at p=1 (from the
	// instrumented cells' memory accounting); AllocShare is its fraction
	// of the p=1 total across phases. Both zero under the noobs build.
	AllocBytes int64   `json:"alloc_bytes,omitempty"`
	AllocShare float64 `json:"alloc_share,omitempty"`
}

// ScalingRow is the derived thread-scaling analysis for one (dataset,
// kernel): the paper-style speedup curve plus the quantities that say
// where scaling stops and why.
type ScalingRow struct {
	Dataset string `json:"dataset"`
	Kernel  string `json:"kernel"`
	// Baseline names the serial reference kernel (e.g. "lcps" for phcd,
	// "bks.typea" for pbks.typea); empty when the row is self-relative
	// only.
	Baseline string `json:"baseline,omitempty"`
	// Threads is the sweep, ascending; the per-p slices below align.
	Threads []int `json:"threads"`
	// SpeedupVsBaseline[i] = baseline(1 thread) / kernel(threads[i]) —
	// the paper's headline curves (PHCD over LCPS, PBKS over BKS).
	SpeedupVsBaseline []float64 `json:"speedup_vs_baseline,omitempty"`
	// Speedup[i] = kernel(1 thread) / kernel(threads[i]) — the
	// self-relative speedup; Efficiency[i] = Speedup[i]/threads[i].
	Speedup    []float64 `json:"speedup"`
	Efficiency []float64 `json:"efficiency"`
	// SerialFraction is the Amdahl fit over the self-relative sweep
	// (-1 when the sweep cannot support a fit, e.g. a single point).
	SerialFraction float64 `json:"serial_fraction"`
	// Phases is the per-phase scaling analysis, for instrumented rows.
	Phases []PhaseScaling `json:"phases,omitempty"`
	// Bottleneck names the phase that bounds scalability: the
	// largest-serial-fraction phase among those with ≥5% share at p=1.
	Bottleneck string `json:"bottleneck,omitempty"`
	// Hungriest names the most allocation-hungry phase — the largest
	// AllocBytes at p=1 — the way Bottleneck names the phase that bounds
	// scaling. Empty when the cells carry no memory accounting (noobs).
	Hungriest string `json:"hungriest,omitempty"`
}

// Report is one experiment run: provenance manifest, raw cells, and the
// derived scaling rows. This is the shape of every committed
// BENCH_*.json and the input of Compare.
type Report struct {
	Experiment string   `json:"experiment"`
	Manifest   Manifest `json:"manifest"`
	// Threads is the thread sweep the run used, ascending.
	Threads []int `json:"threads"`
	// Reps is the repetition count per cell.
	Reps    int          `json:"reps"`
	Cells   []Cell       `json:"cells"`
	Scaling []ScalingRow `json:"scaling,omitempty"`
}

// WriteFile writes the report as indented JSON.
func (r Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshalling report: %w", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}

// ReadReport loads a journal file, rejecting schema generations this
// harness does not speak.
func ReadReport(path string) (Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("bench: %w", err)
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return Report{}, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if r.Manifest.Schema != SchemaVersion {
		return Report{}, fmt.Errorf("bench: %s has journal schema %d, this harness speaks %d — regenerate it with benchtab",
			path, r.Manifest.Schema, SchemaVersion)
	}
	return r, nil
}

// Cell lookups are by (dataset, kernel, threads).
func (r Report) cell(dataset, kernel string, threads int) *Cell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Dataset == dataset && c.Kernel == kernel && c.Threads == threads {
			return c
		}
	}
	return nil
}

// measureCellSpan is measureCell wrapped in the journal's bench.cell
// trace span (arg = thread count, so traces show sweep progress) and
// counted in hcd_bench_cells_total. Every experiment's cells go through
// here — the single span literal keeps trace attribution unambiguous.
func measureCellSpan(dataset, kernel string, threads, reps int, f func()) Cell {
	sp := obs.StartSpanArg("bench.cell", int64(threads))
	defer sp.End()
	benchCells.Inc()
	return measureCell(dataset, kernel, threads, reps, f)
}

// Units a Cell's samples can carry besides the default nanoseconds.
const (
	// UnitBytes marks a peak-heap cell: each sample is the heap-objects
	// high-water mark (bytes) observed during one repetition.
	UnitBytes = "bytes"
	// UnitAllocs marks an allocation-volume cell: each sample is the
	// heap objects allocated per operation.
	UnitAllocs = "allocs"
)

// measureMemCells profiles f's memory behaviour: reps repetitions in a
// pass separate from the timing cells — the forced GC per rep and the
// heap-polling watcher must never sit inside a wall-clock sample — and
// two cells out: <kernel>.mem.peak (UnitBytes, the heap-objects
// high-water mark while f ran) and <kernel>.mem.allocs (UnitAllocs,
// heap objects allocated per operation; per is the operation count one
// f call performs, 1 for whole-pipeline cells). MinNS/MedianNS/MADNS
// summarise the samples exactly as for timing cells, so the compare
// gate's MAD noise band applies unchanged. Nil under the noobs build:
// the flavour bit already makes such journals incomparable, and the
// readers are stubs there.
func measureMemCells(dataset, kernel string, threads, reps, per int, f func()) []Cell {
	if !obs.Enabled() {
		return nil
	}
	sp := obs.StartSpanArg("bench.memcell", int64(threads))
	defer sp.End()
	if reps < 1 {
		reps = 1
	}
	if per < 1 {
		per = 1
	}
	peaks := make([]int64, 0, reps)
	allocs := make([]int64, 0, reps)
	for i := 0; i < reps; i++ {
		// Start each rep from a collected heap so the peak measures this
		// repetition's working set, not the previous rep's garbage.
		runtime.GC()
		stopWatch := startPeakWatch()
		m0 := obs.ReadMem()
		f()
		d := obs.ReadMem().Sub(m0)
		peaks = append(peaks, stopWatch())
		allocs = append(allocs, d.AllocObjects/int64(per))
	}
	// Leave a freshly collected heap behind: the pass's extra operations
	// grow the GC pacing target, and without this collection the *next*
	// timing sweep inherits that state and absorbs a GC it would not
	// otherwise have run — visible as a spurious regression on
	// sub-millisecond cells.
	runtime.GC()
	mk := func(suffix, unit string, samples []int64) Cell {
		benchCells.Inc()
		c := Cell{Dataset: dataset, Kernel: kernel + suffix, Threads: threads, Unit: unit, SamplesNS: samples}
		c.MinNS = minInt64(samples)
		c.MedianNS, c.MADNS = medianMAD(samples)
		return c
	}
	return []Cell{
		mk(".mem.peak", UnitBytes, peaks),
		mk(".mem.allocs", UnitAllocs, allocs),
	}
}

// startPeakWatch starts a goroutine polling the instantaneous
// heap-objects reading every millisecond; the returned stop function
// halts it and reports the high-water mark, folding in one final
// reading so operations shorter than a poll tick still register their
// end-state heap.
func startPeakWatch() (stop func() int64) {
	var peak atomic.Int64
	peak.Store(obs.HeapObjectsBytes())
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if v := obs.HeapObjectsBytes(); v > peak.Load() {
					peak.Store(v)
				}
			}
		}
	}()
	return func() int64 {
		close(done)
		<-exited
		if v := obs.HeapObjectsBytes(); v > peak.Load() {
			peak.Store(v)
		}
		return peak.Load()
	}
}

// measureCell times f Reps times and assembles the cell.
func measureCell(dataset, kernel string, threads, reps int, f func()) Cell {
	if reps < 1 {
		reps = 1
	}
	samples := make([]int64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		samples = append(samples, time.Since(start).Nanoseconds())
	}
	c := Cell{Dataset: dataset, Kernel: kernel, Threads: threads, SamplesNS: samples}
	c.MinNS = minInt64(samples)
	c.MedianNS, c.MADNS = medianMAD(samples)
	return c
}

func minInt64(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// medianMAD returns the median and the median absolute deviation of xs
// (both 0 for an empty slice). MAD is the robust spread estimate the
// compare's noise band builds on: unlike stddev it does not blow up on
// the occasional GC-hit outlier rep.
func medianMAD(xs []int64) (med, mad int64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	med = sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		med = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	dev := make([]int64, len(sorted))
	for i, x := range sorted {
		d := x - med
		if d < 0 {
			d = -d
		}
		dev[i] = d
	}
	sort.Slice(dev, func(i, j int) bool { return dev[i] < dev[j] })
	mad = dev[len(dev)/2]
	if len(dev)%2 == 0 {
		mad = (dev[len(dev)/2-1] + dev[len(dev)/2]) / 2
	}
	return med, mad
}

// buildScaling derives one kernel's scaling row from the report's
// cells: self-relative speedup/efficiency per sweep point, the Amdahl
// serial-fraction fit, the optional vs-baseline curve, and — when the
// kernel's cells carry phase breakdowns — the per-phase analysis with
// the bottleneck call.
func (r Report) buildScaling(dataset, kernel, baseline string) ScalingRow {
	row := ScalingRow{Dataset: dataset, Kernel: kernel, Baseline: baseline, Threads: r.Threads, SerialFraction: -1}
	self1 := r.cell(dataset, kernel, 1)
	var base *Cell
	if baseline != "" {
		base = r.cell(dataset, baseline, 1)
	}
	var points []obs.ScalingPoint
	for _, p := range r.Threads {
		c := r.cell(dataset, kernel, p)
		if c == nil {
			row.Speedup = append(row.Speedup, 0)
			row.Efficiency = append(row.Efficiency, 0)
			if base != nil {
				row.SpeedupVsBaseline = append(row.SpeedupVsBaseline, 0)
			}
			continue
		}
		points = append(points, obs.ScalingPoint{Threads: p, Duration: time.Duration(c.MinNS)})
		var sp float64
		if self1 != nil {
			sp = obs.Speedup(time.Duration(self1.MinNS), time.Duration(c.MinNS))
		}
		row.Speedup = append(row.Speedup, sp)
		row.Efficiency = append(row.Efficiency, obs.Efficiency(sp, p))
		if base != nil {
			row.SpeedupVsBaseline = append(row.SpeedupVsBaseline,
				obs.Speedup(time.Duration(base.MinNS), time.Duration(c.MinNS)))
		}
	}
	row.SerialFraction = obs.FitSerialFraction(points)
	row.Phases, row.Bottleneck, row.Hungriest = r.buildPhaseScaling(dataset, kernel)
	return row
}

// buildPhaseScaling computes per-phase speedup/efficiency/serial
// fraction from the instrumented cells of one kernel sweep, and names
// two phases: the bottleneck — the phase whose Amdahl serial fraction
// is largest among phases carrying at least 5% of the p=1 time (tiny
// phases can be perfectly serial without ever bounding anything) — and
// the hungriest, the phase allocating the most heap bytes at p=1
// (empty when the cells carry no memory accounting, i.e. under noobs).
func (r Report) buildPhaseScaling(dataset, kernel string) ([]PhaseScaling, string, string) {
	c1 := r.cell(dataset, kernel, 1)
	if c1 == nil || len(c1.Phases) == 0 {
		return nil, "", ""
	}
	var total1 time.Duration
	var totalAlloc1 int64
	for _, ph := range c1.Phases {
		total1 += ph.Duration
		totalAlloc1 += ph.AllocBytes
	}
	phaseAt := func(threads int, name string) (obs.PhaseStat, bool) {
		c := r.cell(dataset, kernel, threads)
		if c == nil {
			return obs.PhaseStat{}, false
		}
		for _, ph := range c.Phases {
			if ph.Name == name {
				return ph, true
			}
		}
		return obs.PhaseStat{}, false
	}
	var out []PhaseScaling
	bottleneck, worst := "", -1.0
	hungriest, most := "", int64(0)
	for _, ph1 := range c1.Phases {
		ps := PhaseScaling{Name: ph1.Name, SerialFraction: -1, AllocBytes: ph1.AllocBytes}
		if total1 > 0 {
			ps.Share = float64(ph1.Duration) / float64(total1)
		}
		if totalAlloc1 > 0 {
			ps.AllocShare = float64(ph1.AllocBytes) / float64(totalAlloc1)
		}
		if ph1.AllocBytes > most {
			most = ph1.AllocBytes
			hungriest = ph1.Name
		}
		var points []obs.ScalingPoint
		for _, p := range r.Threads {
			ph, ok := phaseAt(p, ph1.Name)
			if !ok {
				ps.Speedup = append(ps.Speedup, 0)
				ps.Efficiency = append(ps.Efficiency, 0)
				continue
			}
			points = append(points, obs.ScalingPoint{Threads: p, Duration: ph.Duration})
			sp := obs.Speedup(ph1.Duration, ph.Duration)
			ps.Speedup = append(ps.Speedup, sp)
			ps.Efficiency = append(ps.Efficiency, obs.Efficiency(sp, p))
		}
		ps.SerialFraction = obs.FitSerialFraction(points)
		out = append(out, ps)
		if ps.Share >= 0.05 && ps.SerialFraction > worst {
			worst = ps.SerialFraction
			bottleneck = ps.Name
		}
	}
	if worst < 0 {
		bottleneck = ""
	}
	return out, bottleneck, hungriest
}
