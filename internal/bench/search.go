package bench

import (
	"context"
	"fmt"

	core2 "hcd/internal/core"
	"hcd/internal/coredecomp"
	"hcd/internal/metrics"
	"hcd/internal/obs"
	"hcd/internal/search"
)

// searchSuiteFingerprint names the generator-parameter set of the
// search experiment (same graphs as the phcd sweep, searched rather
// than rebuilt).
func searchSuiteFingerprint(small bool) string {
	if small {
		return "search-smoke-v1"
	}
	return "search-full-v1"
}

// SearchBench runs the paper-style subgraph-search sweep (PBKS vs BKS,
// Figures 6 and 8) and writes the experiment journal. Per dataset it
// prebuilds the hierarchy and search index once (preprocessing is
// excluded, as in the paper), then measures:
//
//   - bks.typea / bks.typeb — serial BKS score computation at p=1, the
//     vs-baseline anchors;
//   - pbks.typea / pbks.typeb — PBKS score computation across the
//     thread sweep, instrumented via SearchReportCtx so every cell
//     carries the search.primary / search.score phase breakdown.
//
// The derived scaling rows carry PBKS-over-BKS speedup, self-relative
// speedup, parallel efficiency, the Amdahl serial-fraction fit, and the
// per-phase analysis naming the phase that bounds scalability. When
// cfg.JSONPath is set the journal is also written there.
//
// Scale 1 substitutes the tiny smoke-test inputs; any larger scale runs
// the full-size graphs.
func SearchBench(cfg Config) error {
	cfg = cfg.withDefaults()
	small := cfg.Scale <= 1
	rep := Report{
		Experiment: "search",
		Manifest:   NewManifest(cfg.Scale, searchSuiteFingerprint(small)),
		Threads:    cfg.Sweep,
		Reps:       cfg.Reps,
	}
	maxP := 1
	for _, p := range rep.Threads {
		if p > maxP {
			maxP = p
		}
	}
	kinds := []struct {
		suffix string
		m      metrics.Metric
	}{
		{"typea", metrics.AverageDegree{}},
		{"typeb", metrics.ClusteringCoefficient{}},
	}
	for _, d := range phcdSuite(small) {
		g := d.build()
		core := coredecomp.Serial(g)
		h := core2.PHCD(g, core, maxP)
		bks := search.NewBKS(g, core, h)
		ix := search.NewIndex(g, core, h, maxP)

		for _, kind := range kinds {
			kind := kind
			measureBaseline(&rep, d.name, "bks."+kind.suffix, func() { bks.Search(kind.m) })

			kernel := "pbks." + kind.suffix
			var searchErr error
			for _, p := range rep.Threads {
				p := p
				var runs [][]obs.PhaseStat
				cell := measureCellSpan(d.name, kernel, p, rep.Reps, func() {
					_, srep, err := ix.SearchReportCtx(context.Background(), kind.m, p)
					if err != nil {
						searchErr = err
						return
					}
					runs = append(runs, srep.Phases)
				})
				if searchErr != nil {
					return fmt.Errorf("search: instrumented %s run: %w", kernel, searchErr)
				}
				cell.Phases = obs.MinPhases(runs)
				rep.Cells = append(rep.Cells, cell)
			}
			// Memory cells at the sweep's max thread count: the search
			// kernels' peak heap and allocations per query, in a pass
			// separate from the timing reps.
			rep.Cells = append(rep.Cells,
				measureMemCells(d.name, kernel, maxP, rep.Reps, 1, func() {
					if _, _, err := ix.SearchReportCtx(context.Background(), kind.m, maxP); err != nil {
						searchErr = err
					}
				})...)
			if searchErr != nil {
				return fmt.Errorf("search: memory pass %s: %w", kernel, searchErr)
			}
			rep.Scaling = append(rep.Scaling, rep.buildScaling(d.name, kernel, "bks."+kind.suffix))
		}
	}
	printReport(cfg, rep)
	return writeJournal(cfg, rep)
}
