package bench

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestPHCDBenchWritesJournal smoke-runs the phcd sweep at smoke scale
// and checks the journal shape: manifest, one cell per
// (dataset, kernel, threads), phase breakdowns on the instrumented
// pipeline cells, and derived scaling rows.
func TestPHCDBenchWritesJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is slow")
	}
	path := filepath.Join(t.TempDir(), "phcd.json")
	var buf bytes.Buffer
	cfg := Config{Scale: 1, Reps: 2, Sweep: []int{1, 2}, Out: &buf, JSONPath: path}
	if err := PHCDBench(cfg); err != nil {
		t.Fatalf("PHCDBench: %v", err)
	}
	rep, err := ReadReport(path)
	if err != nil {
		t.Fatalf("journal not readable: %v", err)
	}
	if rep.Experiment != "phcd" || rep.Reps != 2 {
		t.Errorf("report header wrong: exp=%q reps=%d", rep.Experiment, rep.Reps)
	}
	if rep.Manifest.Schema != SchemaVersion || rep.Manifest.GoVersion == "" || rep.Manifest.NumCPU < 1 {
		t.Errorf("manifest incomplete: %+v", rep.Manifest)
	}
	if rep.Manifest.Suite != "phcd-smoke-v1" {
		t.Errorf("suite fingerprint = %q, want phcd-smoke-v1", rep.Manifest.Suite)
	}
	for _, dataset := range []string{"rmat12", "onion12"} {
		if c := rep.cell(dataset, "lcps", 1); c == nil || c.MinNS <= 0 {
			t.Errorf("%s: missing lcps baseline cell", dataset)
		}
		for _, kernel := range []string{"phcd", "phcd.seed", "phcd.layout", "layout", "build.index"} {
			for _, p := range []int{1, 2} {
				c := rep.cell(dataset, kernel, p)
				if c == nil {
					t.Errorf("%s/%s p=%d: cell missing", dataset, kernel, p)
					continue
				}
				if c.MinNS <= 0 || c.MedianNS <= 0 || len(c.SamplesNS) != 2 {
					t.Errorf("%s/%s p=%d: bad stats %+v", dataset, kernel, p, c)
				}
			}
		}
		c := rep.cell(dataset, "build.index", 1)
		seen := map[string]bool{}
		for _, ph := range c.Phases {
			seen[ph.Name] = true
			if ph.Duration <= 0 {
				t.Errorf("%s: phase %s has non-positive duration", dataset, ph.Name)
			}
		}
		for _, want := range []string{"peel", "rank+layout", "phcd", "index"} {
			if !seen[want] {
				t.Errorf("%s: build.index phases missing %q (have %v)", dataset, want, seen)
			}
		}
	}
	// 7 scaling rows per dataset: one peel.<kernel> row per peeling
	// kernel, then phcd, phcd.seed, phcd.layout, build.index.
	if len(rep.Scaling) != 14 {
		t.Fatalf("scaling rows = %d, want 14", len(rep.Scaling))
	}
	for _, row := range rep.Scaling {
		if len(row.Speedup) != 2 || len(row.Efficiency) != 2 {
			t.Errorf("%s/%s: sweep slices misaligned: %+v", row.Dataset, row.Kernel, row)
		}
		if row.Speedup[0] <= 0 {
			t.Errorf("%s/%s: p=1 self-speedup = %f, want > 0", row.Dataset, row.Kernel, row.Speedup[0])
		}
		if row.SerialFraction < 0 || row.SerialFraction > 1 {
			t.Errorf("%s/%s: serial fraction %f outside [0,1]", row.Dataset, row.Kernel, row.SerialFraction)
		}
		switch row.Kernel {
		case "peel.levelsync", "peel.buffered", "peel.hindex":
			if row.Baseline != "peel.serial" || len(row.SpeedupVsBaseline) != 2 {
				t.Errorf("%s/%s: baseline wiring wrong: %+v", row.Dataset, row.Kernel, row)
			}
		case "phcd", "phcd.seed":
			if row.Baseline != "lcps" || len(row.SpeedupVsBaseline) != 2 {
				t.Errorf("%s/%s: baseline wiring wrong: %+v", row.Dataset, row.Kernel, row)
			}
		case "phcd.layout":
			if row.Baseline != "phcd.seed" || len(row.SpeedupVsBaseline) != 2 {
				t.Errorf("%s/%s: baseline wiring wrong: %+v", row.Dataset, row.Kernel, row)
			}
		case "build.index":
			if len(row.Phases) == 0 {
				t.Errorf("%s: build.index row has no phase scaling", row.Dataset)
			}
			if row.Bottleneck == "" {
				t.Errorf("%s: build.index row names no bottleneck", row.Dataset)
			}
		}
	}
}

// TestSearchBenchWritesJournal smoke-runs the search sweep and checks
// the PBKS cells carry the search phase breakdown plus a BKS baseline.
func TestSearchBenchWritesJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is slow")
	}
	path := filepath.Join(t.TempDir(), "search.json")
	var buf bytes.Buffer
	cfg := Config{Scale: 1, Reps: 1, Sweep: []int{1, 2}, Out: &buf, JSONPath: path}
	if err := SearchBench(cfg); err != nil {
		t.Fatalf("SearchBench: %v", err)
	}
	rep, err := ReadReport(path)
	if err != nil {
		t.Fatalf("journal not readable: %v", err)
	}
	if rep.Experiment != "search" || rep.Manifest.Suite != "search-smoke-v1" {
		t.Errorf("report header wrong: exp=%q suite=%q", rep.Experiment, rep.Manifest.Suite)
	}
	for _, dataset := range []string{"rmat12", "onion12"} {
		for _, suffix := range []string{"typea", "typeb"} {
			if c := rep.cell(dataset, "bks."+suffix, 1); c == nil || c.MinNS <= 0 {
				t.Errorf("%s: missing bks.%s baseline", dataset, suffix)
			}
			c := rep.cell(dataset, "pbks."+suffix, 2)
			if c == nil {
				t.Errorf("%s: missing pbks.%s p=2 cell", dataset, suffix)
				continue
			}
			seen := map[string]bool{}
			for _, ph := range c.Phases {
				seen[ph.Name] = true
			}
			if !seen["search.primary"] || !seen["search.score"] {
				t.Errorf("%s/pbks.%s: phases = %v, want search.primary+search.score", dataset, suffix, seen)
			}
		}
	}
	// 2 scaling rows per dataset (pbks.typea, pbks.typeb).
	if len(rep.Scaling) != 4 {
		t.Fatalf("scaling rows = %d, want 4", len(rep.Scaling))
	}
	for _, row := range rep.Scaling {
		if row.Baseline == "" || len(row.SpeedupVsBaseline) != 2 {
			t.Errorf("%s/%s: missing BKS baseline curve: %+v", row.Dataset, row.Kernel, row)
		}
	}
}
