package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestPHCDBenchWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is slow")
	}
	path := filepath.Join(t.TempDir(), "phcd.json")
	var buf bytes.Buffer
	if err := PHCDBench(Config{Scale: 1, Reps: 1, Out: &buf, JSONPath: path}); err != nil {
		t.Fatalf("PHCDBench: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep phcdReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Experiment != "phcd" || rep.Threads < 1 || rep.Reps != 1 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("smoke suite should have 2 rows, got %d", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.N == 0 || r.M == 0 {
			t.Errorf("%s: empty graph measured", r.Name)
		}
		if r.SeedNS <= 0 || r.NewNS <= 0 || r.LayoutNS <= 0 ||
			r.OneshotNS <= 0 || r.PipelineSeedNS <= 0 || r.PipelineNewNS <= 0 {
			t.Errorf("%s: non-positive timing: %+v", r.Name, r)
		}
		if r.SpeedupPrebuilt <= 0 || r.SpeedupPipeline <= 0 {
			t.Errorf("%s: non-positive speedup: %+v", r.Name, r)
		}
		if len(r.Phases) == 0 {
			t.Errorf("%s: no phase breakdown in the JSON row", r.Name)
		}
		seen := map[string]bool{}
		for _, p := range r.Phases {
			seen[p.Name] = true
			if p.Duration <= 0 {
				t.Errorf("%s: phase %s has non-positive duration", r.Name, p.Name)
			}
		}
		for _, want := range []string{"peel", "rank+layout", "phcd", "index"} {
			if !seen[want] {
				t.Errorf("%s: phases missing %q (have %v)", r.Name, want, seen)
			}
		}
	}
}
