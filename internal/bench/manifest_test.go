package bench

import (
	"strings"
	"testing"
)

func TestNewManifestPopulatesEnvironment(t *testing.T) {
	m := NewManifest(4, "phcd-full-v1")
	if m.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", m.Schema, SchemaVersion)
	}
	if m.GoVersion == "" || m.OS == "" || m.Arch == "" {
		t.Errorf("toolchain fields empty: %+v", m)
	}
	if m.NumCPU < 1 || m.GoMaxProcs < 1 {
		t.Errorf("cpu fields unset: %+v", m)
	}
	if m.Scale != 4 || m.Suite != "phcd-full-v1" {
		t.Errorf("input fields wrong: %+v", m)
	}
	if m.CreatedAt == "" {
		t.Error("created_at unset")
	}
}

func TestManifestComparability(t *testing.T) {
	a := NewManifest(4, "phcd-full-v1")
	b := a
	// Commit and timestamp are allowed to differ — comparing across
	// commits is the point of the journal.
	b.GitSHA = "different"
	b.CreatedAt = "2020-01-01T00:00:00Z"
	if reasons := a.ComparableTo(b); reasons != nil {
		t.Errorf("sha/timestamp drift should stay comparable, got %v", reasons)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"schema", func(m *Manifest) { m.Schema++ }},
		{"suite", func(m *Manifest) { m.Suite = "other" }},
		{"scale", func(m *Manifest) { m.Scale++ }},
		{"go version", func(m *Manifest) { m.GoVersion = "go0.0" }},
		{"os/arch", func(m *Manifest) { m.Arch = "wasm" }},
		{"cpu model", func(m *Manifest) { m.CPUModel = m.CPUModel + "x" }},
		{"cpu count", func(m *Manifest) { m.NumCPU++ }},
		{"GOMAXPROCS", func(m *Manifest) { m.GoMaxProcs++ }},
		{"obs build flavour", func(m *Manifest) { m.Obs = !m.Obs }},
		{"faultinject build flavour", func(m *Manifest) { m.FaultInject = !m.FaultInject }},
	} {
		c := a
		tc.mutate(&c)
		reasons := a.ComparableTo(c)
		if len(reasons) != 1 || !strings.Contains(reasons[0], tc.name) {
			t.Errorf("%s mismatch: reasons = %v, want one mentioning %q", tc.name, reasons, tc.name)
		}
	}
}

func TestManifestDescribe(t *testing.T) {
	m := NewManifest(1, "phcd-smoke-v1")
	d := m.Describe()
	for _, want := range []string{m.GoVersion, "phcd-smoke-v1", "scale 1"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe() = %q, missing %q", d, want)
		}
	}
	// Empty best-effort fields degrade to placeholders, not garbage.
	var zero Manifest
	d = zero.Describe()
	if !strings.Contains(d, "unknown") {
		t.Errorf("zero Describe() = %q, want unknown placeholders", d)
	}
}
