package bench

import (
	"bytes"
	"strings"
	"testing"
)

func tiny() Config {
	return Config{Scale: 1, Reps: 1, Sweep: []int{1, 2}, Datasets: []string{"AS", "H"}}
}

func TestRunAllExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is slow")
	}
	for _, name := range Names() {
		var buf bytes.Buffer
		cfg := tiny()
		cfg.Out = &buf
		if err := Run(name, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := buf.String()
		if name == "phcd" || name == "search" {
			// The journal experiments run their own (larger) suite,
			// substituted by rmat12/onion12 at scale 1.
			if !strings.Contains(out, "rmat12") || !strings.Contains(out, "onion12") {
				t.Errorf("%s: output missing dataset rows:\n%s", name, out)
			}
		} else if name == "serve" {
			// The serve latency journal serves the first sweep graph only.
			if !strings.Contains(out, "rmat12") || !strings.Contains(out, "serve.search.p99") {
				t.Errorf("%s: output missing latency rows:\n%s", name, out)
			}
		} else if !strings.Contains(out, "AS") || !strings.Contains(out, "H") {
			t.Errorf("%s: output missing dataset rows:\n%s", name, out)
		}
		if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
			t.Errorf("%s: output contains NaN/Inf:\n%s", name, out)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := Run("table99", tiny()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 || c.Reps != 3 || c.Threads < 1 || len(c.Sweep) == 0 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if c.Sweep[0] != 1 {
		t.Errorf("sweep should start at 1: %v", c.Sweep)
	}
}

func TestDatasetFilter(t *testing.T) {
	c := Config{Datasets: []string{"LJ"}}.withDefaults()
	s := c.suite()
	if len(s) != 1 || s[0].Abbrev != "LJ" {
		t.Errorf("filter broken: %v", s)
	}
	c2 := Config{}.withDefaults()
	if len(c2.suite()) != 10 {
		t.Errorf("unfiltered suite should have 10 datasets")
	}
}
