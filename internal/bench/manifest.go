package bench

import (
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"hcd/internal/faultinject"
	"hcd/internal/obs"
)

// SchemaVersion is the experiment-journal JSON schema generation. It is
// embedded in every manifest and checked on load: a report written by an
// older harness fails loudly instead of mis-parsing. Bump it on any
// breaking change to the Report/Cell/ScalingRow shapes (the golden-file
// schema test pins the current shape).
const SchemaVersion = 2

// Manifest records the provenance of one benchmark run: everything two
// BENCH_*.json files must agree on for their numbers to be comparable —
// or that proves they are not. It answers "what exactly produced these
// nanoseconds" without needing the shell history of the machine that ran
// them.
type Manifest struct {
	// Schema is the journal schema generation (SchemaVersion).
	Schema int `json:"schema"`
	// GitSHA is the commit the binary was built from (best-effort: empty
	// when the harness runs outside a git checkout).
	GitSHA string `json:"git_sha,omitempty"`
	// GoVersion is runtime.Version() — toolchain changes move codegen.
	GoVersion string `json:"go_version"`
	// OS and Arch are runtime.GOOS / runtime.GOARCH.
	OS   string `json:"os"`
	Arch string `json:"arch"`
	// CPUModel is the hardware's self-reported model string
	// (best-effort: empty where /proc/cpuinfo is unavailable).
	CPUModel string `json:"cpu_model,omitempty"`
	// NumCPU and GoMaxProcs pin the parallel envelope the run had.
	NumCPU     int `json:"num_cpu"`
	GoMaxProcs int `json:"gomaxprocs"`
	// Obs and FaultInject record the build flavour: whether the
	// observability layer and the fault injector were compiled in (the
	// noobs / nofaults tags compile them out, which moves hot-path cost).
	Obs         bool `json:"obs"`
	FaultInject bool `json:"faultinject"`
	// Scale and Suite identify the synthetic inputs: the dataset scale
	// multiplier and a fingerprint of the generator-parameter set (bumped
	// whenever an experiment's generators change, so stale baselines
	// cannot silently compare against different graphs).
	Scale int    `json:"scale"`
	Suite string `json:"suite"`
	// CreatedAt is the RFC3339 wall-clock time of the run. Informational
	// only: it never participates in comparability.
	CreatedAt string `json:"created_at,omitempty"`
}

// NewManifest assembles the manifest for a run over the given dataset
// scale and generator-suite fingerprint.
func NewManifest(scale int, suite string) Manifest {
	return Manifest{
		Schema:      SchemaVersion,
		GitSHA:      gitSHA(),
		GoVersion:   runtime.Version(),
		OS:          runtime.GOOS,
		Arch:        runtime.GOARCH,
		CPUModel:    cpuModel(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Obs:         obs.Enabled(),
		FaultInject: faultinject.Compiled(),
		Scale:       scale,
		Suite:       suite,
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
	}
}

// ComparableTo reports why two manifests' measurements cannot be
// compared as performance signal: a nil return means every dimension
// that moves nanoseconds agrees (git SHA and timestamp are allowed to
// differ — comparing across commits is the point). Each returned reason
// is one human-readable sentence fragment.
func (m Manifest) ComparableTo(o Manifest) []string {
	var reasons []string
	mismatch := func(what, a, b string) {
		if a != b {
			reasons = append(reasons, fmt.Sprintf("%s differs (%q vs %q)", what, a, b))
		}
	}
	if m.Schema != o.Schema {
		reasons = append(reasons, fmt.Sprintf("schema differs (%d vs %d)", m.Schema, o.Schema))
	}
	mismatch("suite", m.Suite, o.Suite)
	if m.Scale != o.Scale {
		reasons = append(reasons, fmt.Sprintf("scale differs (%d vs %d)", m.Scale, o.Scale))
	}
	mismatch("go version", m.GoVersion, o.GoVersion)
	mismatch("os/arch", m.OS+"/"+m.Arch, o.OS+"/"+o.Arch)
	mismatch("cpu model", m.CPUModel, o.CPUModel)
	if m.NumCPU != o.NumCPU {
		reasons = append(reasons, fmt.Sprintf("cpu count differs (%d vs %d)", m.NumCPU, o.NumCPU))
	}
	if m.GoMaxProcs != o.GoMaxProcs {
		reasons = append(reasons, fmt.Sprintf("GOMAXPROCS differs (%d vs %d)", m.GoMaxProcs, o.GoMaxProcs))
	}
	if m.Obs != o.Obs {
		reasons = append(reasons, fmt.Sprintf("obs build flavour differs (%v vs %v)", m.Obs, o.Obs))
	}
	if m.FaultInject != o.FaultInject {
		reasons = append(reasons, fmt.Sprintf("faultinject build flavour differs (%v vs %v)", m.FaultInject, o.FaultInject))
	}
	return reasons
}

// Flavour names the build flavour the run was recorded under: "default
// build", or the compiled-out tags ("noobs", "nofaults", or both).
func (m Manifest) Flavour() string {
	flavour := []string{}
	if !m.Obs {
		flavour = append(flavour, "noobs")
	}
	if !m.FaultInject {
		flavour = append(flavour, "nofaults")
	}
	if len(flavour) == 0 {
		return "default build"
	}
	return strings.Join(flavour, ",")
}

// Describe renders the manifest as one compact human-readable line for
// report headers.
func (m Manifest) Describe() string {
	sha := m.GitSHA
	if len(sha) > 12 {
		sha = sha[:12]
	}
	if sha == "" {
		sha = "unknown"
	}
	fl := m.Flavour()
	cpu := m.CPUModel
	if cpu == "" {
		cpu = "unknown cpu"
	}
	return fmt.Sprintf("git %s · %s %s/%s · %dx %s (GOMAXPROCS %d) · %s · suite %s scale %d",
		sha, m.GoVersion, m.OS, m.Arch, m.NumCPU, cpu, m.GoMaxProcs, fl, m.Suite, m.Scale)
}

// gitSHA resolves the checked-out commit, best-effort.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// cpuModel extracts the CPU model string, best-effort (Linux only).
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		if strings.TrimSpace(key) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}
