// Noise-aware differential comparison of two experiment journals: the
// engine behind `benchtab -compare old.json new.json` and the CI
// perf-smoke gate. Every cell pair is classified improved / regressed /
// noise against a MAD-derived noise band, and the verdict is suppressed
// entirely when the manifests prove the runs are not comparable.
package bench

import (
	"fmt"
	"math"
	"strings"
)

// DeltaClass classifies one cell's old→new movement.
type DeltaClass string

const (
	// DeltaImproved / DeltaRegressed: the min-of-k moved beyond the noise
	// band in the respective direction.
	DeltaImproved  DeltaClass = "improved"
	DeltaRegressed DeltaClass = "regressed"
	// DeltaNoise: the movement stayed inside the band.
	DeltaNoise DeltaClass = "noise"
	// DeltaAdded / DeltaRemoved: the cell exists on only one side.
	DeltaAdded   DeltaClass = "added"
	DeltaRemoved DeltaClass = "removed"
)

// madToSigma converts a median absolute deviation to a stddev-equivalent
// spread (the 1.4826 factor is exact for normal noise).
const madToSigma = 1.4826

// bandFloor is the minimum relative noise band: below 2% we refuse to
// call anything a confirmed movement no matter how tight the MAD says
// the samples were — with min-of-k on small rep counts the spread
// estimate itself is noisy.
const bandFloor = 0.02

// CellDelta is the classified comparison of one (dataset, kernel,
// threads) cell across two journals.
type CellDelta struct {
	Dataset string `json:"dataset"`
	Kernel  string `json:"kernel"`
	Threads int    `json:"threads"`
	// Unit is the cells' measurement unit (empty = nanoseconds; see
	// Cell.Unit). Memory cells classify with the same MAD noise band as
	// timing cells — only the rendering differs.
	Unit string `json:"unit,omitempty"`
	// OldMinNS / NewMinNS are the min-of-k measurements being compared
	// (zero on the side where the cell is absent), in Unit.
	OldMinNS int64 `json:"old_min_ns"`
	NewMinNS int64 `json:"new_min_ns"`
	// Ratio is new/old of the min times (0 when either side is absent).
	Ratio float64 `json:"ratio"`
	// Band is the relative noise half-width the classification used:
	// max(floor, 3σ of the combined relative MAD spread of both sides).
	Band  float64    `json:"band"`
	Class DeltaClass `json:"class"`
}

// Comparison is the full old-vs-new verdict.
type Comparison struct {
	// OldManifest / NewManifest are the two runs' provenance records.
	OldManifest Manifest `json:"old_manifest"`
	NewManifest Manifest `json:"new_manifest"`
	// Comparable is false when the manifests differ on a dimension that
	// moves nanoseconds; Reasons lists each mismatch. An incomparable
	// pair still gets its deltas computed — they are rendered as
	// informational, and HasRegressions never fires on them.
	Comparable bool     `json:"comparable"`
	Reasons    []string `json:"reasons,omitempty"`
	// Deltas classifies every cell appearing in either journal.
	Deltas []CellDelta `json:"deltas"`
}

// Compare classifies every cell of two journals. Cells are matched by
// (dataset, kernel, threads); each delta's noise band combines both
// sides' MAD-derived relative spread, so a run with jittery samples
// needs a proportionally larger movement to confirm anything.
func Compare(old, new Report) Comparison {
	c := Comparison{
		OldManifest: old.Manifest,
		NewManifest: new.Manifest,
		Reasons:     old.Manifest.ComparableTo(new.Manifest),
	}
	c.Comparable = len(c.Reasons) == 0
	seen := map[string]bool{}
	key := func(cell Cell) string {
		return fmt.Sprintf("%s\x00%s\x00%d", cell.Dataset, cell.Kernel, cell.Threads)
	}
	for _, oc := range old.Cells {
		seen[key(oc)] = true
		nc := new.cell(oc.Dataset, oc.Kernel, oc.Threads)
		d := CellDelta{Dataset: oc.Dataset, Kernel: oc.Kernel, Threads: oc.Threads, Unit: oc.Unit, OldMinNS: oc.MinNS}
		if nc == nil {
			d.Class = DeltaRemoved
			c.Deltas = append(c.Deltas, d)
			continue
		}
		d.NewMinNS = nc.MinNS
		d.Band = noiseBand(oc, *nc)
		if oc.MinNS > 0 {
			d.Ratio = float64(nc.MinNS) / float64(oc.MinNS)
		}
		switch {
		case d.Ratio == 0:
			d.Class = DeltaNoise
		case d.Ratio > 1+d.Band:
			d.Class = DeltaRegressed
		case d.Ratio < 1-d.Band:
			d.Class = DeltaImproved
		default:
			d.Class = DeltaNoise
		}
		c.Deltas = append(c.Deltas, d)
	}
	for _, nc := range new.Cells {
		if seen[key(nc)] {
			continue
		}
		c.Deltas = append(c.Deltas, CellDelta{
			Dataset: nc.Dataset, Kernel: nc.Kernel, Threads: nc.Threads,
			Unit: nc.Unit, NewMinNS: nc.MinNS, Class: DeltaAdded,
		})
	}
	return c
}

// noiseBand derives the relative half-width for one cell pair: three
// combined sigmas of the two sides' MAD-based relative spread, floored
// at bandFloor.
func noiseBand(old, new Cell) float64 {
	rel := func(c Cell) float64 {
		if c.MedianNS <= 0 {
			return 0
		}
		return madToSigma * float64(c.MADNS) / float64(c.MedianNS)
	}
	ro, rn := rel(old), rel(new)
	band := 3 * math.Sqrt(ro*ro+rn*rn)
	if band < bandFloor {
		band = bandFloor
	}
	return band
}

// Count returns how many deltas carry the given class.
func (c Comparison) Count(class DeltaClass) int {
	n := 0
	for _, d := range c.Deltas {
		if d.Class == class {
			n++
		}
	}
	return n
}

// HasRegressions reports whether the comparison confirms at least one
// regression. Always false for incomparable manifests: a mismatch in
// hardware or build flavour explains any movement, so no delta can be
// blamed on the code.
func (c Comparison) HasRegressions() bool {
	return c.Comparable && c.Count(DeltaRegressed) > 0
}

// Markdown renders the comparison as a report. It leads with the
// manifest-diff summary — git SHA, build flavour, CPU, toolchain and
// suite, side by side with mismatches flagged — and the gate status, so
// a report that does not gate says up front *why* (which runner
// dimension broke comparability) before any delta numbers appear.
func (c Comparison) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Benchmark comparison\n\n")

	// Manifest diff: every dimension the gate decision hangs on.
	row := func(name, oldV, newV string, gates bool) {
		mark := ""
		if gates && oldV != newV {
			mark = " ⚠"
		}
		fmt.Fprintf(&b, "| %s | %s | %s |%s\n", name, oldV, newV, mark)
	}
	o, n := c.OldManifest, c.NewManifest
	fmt.Fprintf(&b, "| | old | new |\n|---|---|---|\n")
	row("git", short(o.GitSHA), short(n.GitSHA), false)
	row("flavour", o.Flavour(), n.Flavour(), true)
	row("cpu", fmt.Sprintf("%dx %s (GOMAXPROCS %d)", o.NumCPU, orUnknown(o.CPUModel), o.GoMaxProcs),
		fmt.Sprintf("%dx %s (GOMAXPROCS %d)", n.NumCPU, orUnknown(n.CPUModel), n.GoMaxProcs), true)
	row("toolchain", o.GoVersion+" "+o.OS+"/"+o.Arch, n.GoVersion+" "+n.OS+"/"+n.Arch, true)
	row("suite", fmt.Sprintf("%s scale %d (schema %d)", o.Suite, o.Scale, o.Schema),
		fmt.Sprintf("%s scale %d (schema %d)", n.Suite, n.Scale, n.Schema), true)
	fmt.Fprintln(&b)
	if c.Comparable {
		fmt.Fprintf(&b, "**Gate: active** — the manifests agree on every dimension that moves measurements.\n\n")
	} else {
		fmt.Fprintf(&b, "**Gate: informational only** — the runs are not comparable, so no delta below can block:\n\n")
		for _, r := range c.Reasons {
			fmt.Fprintf(&b, "- %s\n", r)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "**%d improved, %d regressed, %d within noise**",
		c.Count(DeltaImproved), c.Count(DeltaRegressed), c.Count(DeltaNoise))
	if a, r := c.Count(DeltaAdded), c.Count(DeltaRemoved); a > 0 || r > 0 {
		fmt.Fprintf(&b, " (%d added, %d removed)", a, r)
	}
	fmt.Fprintf(&b, "\n\n")
	fmt.Fprintf(&b, "| dataset | kernel | p | old | new | Δ | band | class |\n")
	fmt.Fprintf(&b, "|---|---|---:|---:|---:|---:|---:|---|\n")
	for _, d := range c.Deltas {
		oldS, newS, delta := "-", "-", "-"
		if d.OldMinNS > 0 {
			oldS = fmtSample(d.OldMinNS, d.Unit)
		}
		if d.NewMinNS > 0 {
			newS = fmtSample(d.NewMinNS, d.Unit)
		}
		if d.Ratio > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(d.Ratio-1))
		}
		class := string(d.Class)
		switch d.Class {
		case DeltaRegressed:
			class = "**regressed**"
		case DeltaImproved:
			class = "*improved*"
		}
		fmt.Fprintf(&b, "| %s | %s | %d | %s | %s | %s | ±%.1f%% | %s |\n",
			d.Dataset, d.Kernel, d.Threads, oldS, newS, delta, 100*d.Band, class)
	}
	return b.String()
}

// short truncates a git SHA for the manifest-diff table.
func short(sha string) string {
	if sha == "" {
		return "unknown"
	}
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

// orUnknown substitutes a placeholder for an empty best-effort field.
func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}
