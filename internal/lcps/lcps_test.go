package lcps

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

func buildAndCheck(t *testing.T, g *graph.Graph, label string) *hierarchy.HCD {
	t.Helper()
	core := coredecomp.Serial(g)
	h := Build(g, core)
	if err := hierarchy.Validate(h, g, core); err != nil {
		t.Fatalf("%s: Validate: %v", label, err)
	}
	want := hierarchy.BruteForce(g, core)
	if !hierarchy.Equal(h, want) {
		t.Fatalf("%s: LCPS output differs from brute force (|T| got %d want %d)",
			label, h.NumNodes(), want.NumNodes())
	}
	return h
}

func TestBuildEmptyAndTiny(t *testing.T) {
	h := Build(graph.MustFromEdges(0, nil), nil)
	if h.NumNodes() != 0 {
		t.Errorf("empty graph should have no nodes")
	}
	buildAndCheck(t, graph.MustFromEdges(1, nil), "single vertex")
	buildAndCheck(t, graph.MustFromEdges(5, nil), "isolated vertices")
	buildAndCheck(t, graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}}), "one edge")
}

func TestBuildKnownShapes(t *testing.T) {
	// Two K4s (3-cores) joined through a coreness-2 bridge vertex: the
	// bridge survives 2-peeling but not 3-peeling, so G[c>=3] splits into
	// two 3-cores under a 2-core root — the Figure 1 pattern one level down.
	g := graph.MustFromEdges(9, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		{U: 4, V: 5}, {U: 4, V: 6}, {U: 4, V: 7}, {U: 5, V: 6}, {U: 5, V: 7}, {U: 6, V: 7},
		{U: 3, V: 8}, {U: 8, V: 4},
	})
	h := buildAndCheck(t, g, "k4s+bridge")
	if h.NumNodes() != 3 {
		t.Errorf("|T| = %d, want 3", h.NumNodes())
	}
	root := h.TID[8]
	if h.K[root] != 2 || h.Parent[root] != hierarchy.Nil {
		t.Errorf("bridge vertex should form the 2-core root node")
	}
	if len(h.Children[root]) != 2 {
		t.Errorf("root should have 2 children, has %d", len(h.Children[root]))
	}
}

func TestBuildDeepOnion(t *testing.T) {
	g := gen.Onion(6, 15, 2, 2, 3, 42)
	buildAndCheck(t, g, "onion")
}

func TestBuildGeneratedFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"er", gen.ErdosRenyi(150, 600, 1)},
		{"er-sparse", gen.ErdosRenyi(200, 150, 2)},
		{"ba", gen.BarabasiAlbert(120, 4, 3)},
		{"rmat", gen.RMAT(8, 900, 4)},
		{"planted", gen.PlantedPartition(4, 30, 0.3, 0.01, 5)},
	}
	for _, c := range cases {
		buildAndCheck(t, c.g, c.name)
	}
}

func TestBuildMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint16) bool {
		n := int(nRaw%120) + 1
		m := int(mRaw % 700)
		rng := rand.New(rand.NewSource(seed))
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		core := coredecomp.Serial(g)
		h := Build(g, core)
		if hierarchy.Validate(h, g, core) != nil {
			return false
		}
		return hierarchy.Equal(h, hierarchy.BruteForce(g, core))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBuildSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite validation is slow")
	}
	for _, d := range gen.Suite(1) {
		g := d.Build()
		core := coredecomp.Serial(g)
		h := Build(g, core)
		if err := hierarchy.Validate(h, g, core); err != nil {
			t.Errorf("%s: %v", d.Abbrev, err)
		}
	}
}

func BenchmarkLCPS(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 8, 1)
	core := coredecomp.Serial(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, core)
	}
}
