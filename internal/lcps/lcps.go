// Package lcps implements the serial state-of-the-art HCD construction the
// paper benchmarks against: the level-component priority search of Matula
// and Beck [7], running in O(m) time given the core decomposition.
//
// LCPS visits vertices one at a time. Among the unvisited neighbors R of
// the visited region it always picks a vertex with the highest priority
//
//	pri(w) = max over visited neighbors u of min(c(w), c(u)),
//
// which guarantees that every k-core's vertices are visited contiguously:
// the traversal descends into a core, exhausts it, and only then falls back
// to shallower vertices. The hierarchy is materialised with a stack of open
// tree nodes whose levels strictly increase from bottom to top:
//
//   - visiting a vertex with priority p closes every open node deeper than
//     p (each popped node's parent is the node below it, or the node at
//     level p);
//   - a vertex with coreness c > p starts a new open node at level c (a new
//     sub-core is being entered);
//   - a vertex with coreness c == p joins the open node at level p.
//
// Priorities only ever increase, so the frontier is a bucket queue with
// lazy deletion — the "multiple dynamic arrays" whose constant-factor cost
// the paper identifies as LCPS's practical weakness (§V-B).
package lcps

import (
	"fmt"

	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

// Build constructs the HCD of g serially with LCPS. core must be the core
// decomposition of g (e.g. from coredecomp.Serial).
func Build(g *graph.Graph, core []int32) *hierarchy.HCD {
	n := g.NumVertices()
	h := &hierarchy.HCD{TID: make([]hierarchy.NodeID, n)}
	if n == 0 {
		return h
	}
	kmax := int32(0)
	for _, c := range core {
		if c > kmax {
			kmax = c
		}
	}

	newNode := func(k int32) hierarchy.NodeID {
		id := hierarchy.NodeID(len(h.K))
		h.K = append(h.K, k)
		h.Parent = append(h.Parent, hierarchy.Nil)
		h.Children = append(h.Children, nil)
		h.Vertices = append(h.Vertices, nil)
		return id
	}
	setParent := func(child, parent hierarchy.NodeID) {
		h.Parent[child] = parent
		h.Children[parent] = append(h.Children[parent], child)
	}

	// Bucket priority queue with lazy deletion.
	pri := make([]int32, n)
	for i := range pri {
		pri[i] = -1
	}
	visited := make([]bool, n)
	buckets := make([][]int32, kmax+1)
	maxP := int32(-1)
	raise := func(w int32, p int32) {
		if p > pri[w] {
			pri[w] = p
			buckets[p] = append(buckets[p], w)
			if p > maxP {
				maxP = p
			}
		}
	}
	// popMax returns the unvisited frontier vertex with the highest
	// priority, or -1 if the frontier is empty.
	popMax := func() int32 {
		for maxP >= 0 {
			b := buckets[maxP]
			for len(b) > 0 {
				w := b[len(b)-1]
				b = b[:len(b)-1]
				if !visited[w] && pri[w] == maxP {
					buckets[maxP] = b
					return w
				}
			}
			buckets[maxP] = b
			maxP--
		}
		return -1
	}

	// Stack of open tree nodes; levels strictly increase bottom to top.
	var stack []hierarchy.NodeID
	// closeAll closes the remaining open chain at a component boundary:
	// each node's parent is the one below it; the bottom node is a root.
	closeAll := func() {
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				setParent(x, stack[len(stack)-1])
			}
		}
	}

	cursor := int32(0)
	for visitedCount := 0; visitedCount < n; visitedCount++ {
		v := popMax()
		var p int32
		if v < 0 {
			// Frontier exhausted: close the finished component and restart
			// from the next unvisited vertex.
			closeAll()
			for visited[cursor] {
				cursor++
			}
			v = cursor
			p = core[v] // fresh component: open directly at v's level
		} else {
			p = pri[v]
		}
		c := core[v]

		// Close open nodes deeper than p; each popped node's parent is the
		// node below it on the stack, or the node at level p reached last.
		var lastPopped hierarchy.NodeID = hierarchy.Nil
		for len(stack) > 0 && h.K[stack[len(stack)-1]] > p {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if len(stack) > 0 && h.K[stack[len(stack)-1]] >= p {
				setParent(x, stack[len(stack)-1])
				lastPopped = hierarchy.Nil
			} else {
				lastPopped = x // parent is the level-p node, created below
			}
		}
		var nodeP hierarchy.NodeID
		if len(stack) > 0 && h.K[stack[len(stack)-1]] == p {
			nodeP = stack[len(stack)-1]
		} else {
			// No open node at level p: by the priority invariant this only
			// happens when p == c (the vertex opens the level itself).
			if p != c {
				panic(fmt.Sprintf("lcps: internal invariant violated: p=%d c=%d for vertex %d", p, c, v))
			}
			nodeP = newNode(p)
			stack = append(stack, nodeP)
		}
		if lastPopped != hierarchy.Nil {
			setParent(lastPopped, nodeP)
		}

		// Place v: join the level-p node, or open a deeper node at level c.
		target := nodeP
		if c > p {
			target = newNode(c)
			stack = append(stack, target)
		}
		h.Vertices[target] = append(h.Vertices[target], v)
		h.TID[v] = target

		// Mark visited and relax neighbor priorities.
		visited[v] = true
		for _, w := range g.Neighbors(v) {
			if !visited[w] {
				raise(w, min(core[w], c))
			}
		}
	}
	closeAll()
	return h
}
