// Package treeaccum implements parallel bottom-up tree accumulation on the
// HCD forest — the primitive behind Algorithm 3's lines 6-9, which sum each
// tree node's primary-value contributions into its ancestors so that every
// node ends up holding the primary values of its whole original k-core.
//
// The implementation is level-synchronous over node depth (a simple,
// barrier-per-level form of the parallel tree accumulation of Sevilgen,
// Aluru and Futamura [36]): all nodes at the deepest level add their rows
// into their parents concurrently with atomic adds, then the next level up,
// and so on. Work is O(|T|·width); the number of barriers is the forest
// height.
package treeaccum

import (
	"context"
	"sync/atomic"

	"hcd/internal/faultinject"
	"hcd/internal/hierarchy"
	"hcd/internal/obs"
	"hcd/internal/par"
)

// Accumulate folds vals bottom-up over the forest: vals is a row-major
// matrix with one row of `width` int64 values per tree node; on return,
// row i holds the sum of the original rows over node i's entire subtree.
// threads <= 0 means GOMAXPROCS. Thin wrapper over AccumulateCtx; a
// contained worker panic re-raises on the calling goroutine.
func Accumulate(h *hierarchy.HCD, vals []int64, width, threads int) {
	if err := AccumulateCtx(context.Background(), h, vals, width, threads); err != nil {
		panic(err)
	}
}

// AccumulateCtx is Accumulate with failure containment: a panic inside a
// worker surfaces as a *par.PanicError, and a cancelled ctx aborts the
// fold between depth levels (the partially-folded vals must then be
// discarded by the caller).
func AccumulateCtx(ctx context.Context, h *hierarchy.HCD, vals []int64, width, threads int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	defer obs.StartSpanCtx(ctx, "treeaccum").End()
	nn := h.NumNodes()
	if nn == 0 || width == 0 {
		return ctx.Err()
	}
	if len(vals) != nn*width {
		panic("treeaccum: vals size does not match node count and width")
	}
	depth := h.Depth()
	maxDepth := int32(0)
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	byDepth := make([][]hierarchy.NodeID, maxDepth+1)
	for i := 0; i < nn; i++ {
		byDepth[depth[i]] = append(byDepth[depth[i]], hierarchy.NodeID(i))
	}
	for d := maxDepth; d >= 1; d-- {
		if err := ctx.Err(); err != nil {
			return err
		}
		nodes := byDepth[d]
		err := par.ForErr(ctx, len(nodes), threads, func(lo, hi int) error {
			faultinject.Maybe("treeaccum")
			for i := lo; i < hi; i++ {
				id := nodes[i]
				pa := h.Parent[id]
				for f := 0; f < width; f++ {
					//hcdlint:allow atomic-discipline the plain read is the child's row, finalised at the previous depth; levels are separated by the ForErr join barrier, so the atomic adds (parent row) and plain reads (child row) never overlap
					atomic.AddInt64(&vals[int(pa)*width+f], vals[int(id)*width+f])
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// AccumulateSerial is the serial reference used by the BKS baseline and by
// tests: a single bottom-up pass in child-before-parent order.
func AccumulateSerial(h *hierarchy.HCD, vals []int64, width int) {
	if h.NumNodes() == 0 || width == 0 {
		return
	}
	if len(vals) != h.NumNodes()*width {
		panic("treeaccum: vals size does not match node count and width")
	}
	for _, id := range h.BottomUp() {
		pa := h.Parent[id]
		if pa == hierarchy.Nil {
			continue
		}
		for f := 0; f < width; f++ {
			vals[int(pa)*width+f] += vals[int(id)*width+f]
		}
	}
}
