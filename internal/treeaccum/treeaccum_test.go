package treeaccum

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"hcd/internal/coredecomp"
	"hcd/internal/faultinject"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

func buildHCD(t *testing.T, g *graph.Graph) *hierarchy.HCD {
	t.Helper()
	return hierarchy.BruteForce(g, coredecomp.Serial(g))
}

func TestAccumulateMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	graphs := []*graph.Graph{
		gen.Onion(6, 10, 2, 2, 3, 1),
		gen.ErdosRenyi(200, 800, 2),
		gen.BarabasiAlbert(150, 4, 3),
	}
	for gi, g := range graphs {
		h := buildHCD(t, g)
		nn := h.NumNodes()
		for _, width := range []int{1, 3} {
			vals := make([]int64, nn*width)
			for i := range vals {
				vals[i] = int64(rng.Intn(1000) - 500)
			}
			want := append([]int64(nil), vals...)
			AccumulateSerial(h, want, width)
			for _, threads := range []int{1, 2, 8} {
				got := append([]int64(nil), vals...)
				Accumulate(h, got, width, threads)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("graph %d width %d threads %d: parallel accumulation differs", gi, width, threads)
				}
			}
		}
	}
}

func TestAccumulateSubtreeSums(t *testing.T) {
	g := gen.Onion(5, 8, 2, 2, 2, 9)
	h := buildHCD(t, g)
	nn := h.NumNodes()
	// Row = vertex count of the node; after accumulation row i must equal
	// the node's core size.
	vals := make([]int64, nn)
	for i := 0; i < nn; i++ {
		vals[i] = int64(len(h.Vertices[i]))
	}
	Accumulate(h, vals, 1, 4)
	for i := 0; i < nn; i++ {
		if want := int64(h.CoreSize(hierarchy.NodeID(i))); vals[i] != want {
			t.Errorf("node %d: accumulated %d, want core size %d", i, vals[i], want)
		}
	}
}

func TestAccumulateEmptyAndPanics(t *testing.T) {
	h := &hierarchy.HCD{}
	Accumulate(h, nil, 3, 2) // no-op, must not panic
	AccumulateSerial(h, nil, 3)

	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})
	h2 := buildHCD(t, g)
	defer func() {
		if recover() == nil {
			t.Error("size mismatch must panic")
		}
	}()
	Accumulate(h2, make([]int64, 1), 2, 1)
}

func BenchmarkAccumulateParallel(b *testing.B) {
	g := gen.Onion(8, 200, 2, 3, 4, 1)
	h := hierarchy.BruteForce(g, coredecomp.Serial(g))
	vals := make([]int64, h.NumNodes()*3)
	for i := range vals {
		vals[i] = int64(i)
	}
	work := make([]int64, len(vals))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, vals)
		Accumulate(h, work, 3, 0)
	}
}

func BenchmarkAccumulateSerialRef(b *testing.B) {
	g := gen.Onion(8, 200, 2, 3, 4, 1)
	h := hierarchy.BruteForce(g, coredecomp.Serial(g))
	vals := make([]int64, h.NumNodes()*3)
	for i := range vals {
		vals[i] = int64(i)
	}
	work := make([]int64, len(vals))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, vals)
		AccumulateSerial(h, work, 3)
	}
}

func TestAccumulateCtxContainment(t *testing.T) {
	defer faultinject.Disable()
	g := gen.Onion(6, 10, 2, 2, 3, 11)
	h := buildHCD(t, g)
	nn := h.NumNodes()
	vals := make([]int64, nn)

	// Injected panic surfaces as an identifiable error.
	if err := faultinject.Enable("treeaccum:panic:1"); err != nil {
		t.Fatal(err)
	}
	err := AccumulateCtx(context.Background(), h, vals, 1, 4)
	var f *faultinject.Fault
	if err == nil || !errors.As(err, &f) || f.Site != "treeaccum" {
		t.Errorf("err = %v, want the injected treeaccum fault", err)
	}
	faultinject.Disable()

	// Pre-cancelled context aborts before touching the values.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := AccumulateCtx(ctx, h, vals, 1, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}

	// Nil ctx means background: same result as Accumulate.
	a := make([]int64, nn)
	b := make([]int64, nn)
	for i := range a {
		a[i] = int64(i)
		b[i] = int64(i)
	}
	if err := AccumulateCtx(nil, h, a, 1, 4); err != nil {
		t.Fatal(err)
	}
	Accumulate(h, b, 1, 4)
	if !reflect.DeepEqual(a, b) {
		t.Error("AccumulateCtx(nil ctx) differs from Accumulate")
	}
}
