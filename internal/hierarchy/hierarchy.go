// Package hierarchy defines the hierarchical core decomposition (HCD)
// index of §II-B: a forest in which each tree node corresponds to one
// k-core S and stores S ∩ Hk, the vertices of coreness exactly k in S.
// Tree edges record k-core containment (Definition 2).
//
// The index layout mirrors Figure 2 of the paper: per node the vertex set
// V(Ti), parent P(Ti) and children C(Ti); per vertex the owning node id
// tid(v). The package also provides k-core reconstruction, traversal
// orders, structural validation against the k-core definition, canonical
// equality (used to cross-check LCPS, PHCD and the brute-force reference),
// DOT export and binary serialisation.
package hierarchy

import (
	"fmt"
	"sort"
)

// NodeID identifies a tree node within one HCD. Nil means "no node".
type NodeID int32

// Nil is the absent NodeID (e.g. the parent of a root).
const Nil NodeID = -1

// HCD is the hierarchical core decomposition of a graph: a forest of
// k-core tree nodes. Construct with lcps.Build, core.PHCD, or BruteForce.
type HCD struct {
	// K[i] is the coreness level of tree node i.
	K []int32
	// Parent[i] is the parent tree node of i, or Nil for roots.
	Parent []NodeID
	// Children[i] lists i's children (order unspecified).
	Children [][]NodeID
	// Vertices[i] is V(Ti): the vertices of coreness K[i] in node i's
	// original k-core (order unspecified).
	Vertices [][]int32
	// TID[v] is tid(v): the node owning vertex v.
	TID []NodeID
}

// NumNodes returns |T|, the number of tree nodes.
func (h *HCD) NumNodes() int { return len(h.K) }

// NumVertices returns the number of graph vertices the index covers.
func (h *HCD) NumVertices() int { return len(h.TID) }

// Bytes returns the forest's storage footprint in bytes, computed from
// the array lengths (deterministic, no sampling): the flat per-node
// arrays (K, Parent), the ragged Children and Vertices slices (24-byte
// slice headers plus 4 bytes per element), and the per-vertex TID map.
func (h *HCD) Bytes() int64 {
	const sliceHeader = 24 // ptr + len + cap on 64-bit
	b := int64(len(h.K))*4 + int64(len(h.Parent))*4 + int64(len(h.TID))*4
	b += int64(len(h.Children)) * sliceHeader
	for _, c := range h.Children {
		b += int64(len(c)) * 4
	}
	b += int64(len(h.Vertices)) * sliceHeader
	for _, vs := range h.Vertices {
		b += int64(len(vs)) * 4
	}
	return b
}

// Roots returns the ids of all root nodes (one per connected component of
// the graph).
func (h *HCD) Roots() []NodeID {
	var roots []NodeID
	for i := range h.Parent {
		if h.Parent[i] == Nil {
			roots = append(roots, NodeID(i))
		}
	}
	return roots
}

// CoreVertices reconstructs the original k-core of node i: the vertices of
// i and all of its descendants. This realises V(Kk) = ∪_{c≥k} Hc restricted
// to the subtree, per §II-B.
func (h *HCD) CoreVertices(i NodeID) []int32 {
	var out []int32
	stack := []NodeID{i}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, h.Vertices[t]...)
		stack = append(stack, h.Children[t]...)
	}
	return out
}

// CoreSize returns the number of vertices in node i's original k-core.
func (h *HCD) CoreSize(i NodeID) int {
	total := 0
	stack := []NodeID{i}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		total += len(h.Vertices[t])
		stack = append(stack, h.Children[t]...)
	}
	return total
}

// TopDown returns all node ids ordered so every parent precedes its
// children (a forest topological order).
func (h *HCD) TopDown() []NodeID {
	order := make([]NodeID, 0, h.NumNodes())
	stack := h.Roots()
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, t)
		stack = append(stack, h.Children[t]...)
	}
	return order
}

// BottomUp returns all node ids ordered so every child precedes its
// parent — the order Algorithm 3's serial accumulation loop uses.
func (h *HCD) BottomUp() []NodeID {
	td := h.TopDown()
	for i, j := 0, len(td)-1; i < j; i, j = i+1, j-1 {
		td[i], td[j] = td[j], td[i]
	}
	return td
}

// Depth returns each node's depth (roots have depth 0).
func (h *HCD) Depth() []int32 {
	depth := make([]int32, h.NumNodes())
	for _, t := range h.TopDown() {
		if p := h.Parent[t]; p != Nil {
			depth[t] = depth[p] + 1
		}
	}
	return depth
}

// Node formats one tree node for diagnostics.
func (h *HCD) Node(i NodeID) string {
	return fmt.Sprintf("T%d{k=%d |V|=%d parent=%d}", i, h.K[i], len(h.Vertices[i]), h.Parent[i])
}

// Pivots returns, for each node, its pivot under vertex ranking by
// (coreness, id): since all vertices in a node share the node's coreness,
// this is simply the minimum vertex id in V(Ti). Pivots uniquely identify
// nodes (Definition 5) and are the node identity used by Equal.
func (h *HCD) Pivots() []int32 {
	pivots := make([]int32, h.NumNodes())
	for i, vs := range h.Vertices {
		p := vs[0]
		for _, v := range vs[1:] {
			if v < p {
				p = v
			}
		}
		pivots[i] = p
	}
	return pivots
}

// Equal reports whether two HCDs describe the same decomposition: the same
// set of tree nodes (same coreness, same vertex set) wired with the same
// parent relation. Node ids and child order are representation details and
// ignored.
func Equal(a, b *HCD) bool {
	if a.NumNodes() != b.NumNodes() || a.NumVertices() != b.NumVertices() {
		return false
	}
	pa, pb := a.Pivots(), b.Pivots()
	// Map pivot -> node for b.
	bByPivot := make(map[int32]NodeID, len(pb))
	for i, p := range pb {
		bByPivot[p] = NodeID(i)
	}
	for i := 0; i < a.NumNodes(); i++ {
		j, ok := bByPivot[pa[i]]
		if !ok || a.K[i] != b.K[j] {
			return false
		}
		va := append([]int32(nil), a.Vertices[i]...)
		vb := append([]int32(nil), b.Vertices[j]...)
		sort.Slice(va, func(x, y int) bool { return va[x] < va[y] })
		sort.Slice(vb, func(x, y int) bool { return vb[x] < vb[y] })
		if len(va) != len(vb) {
			return false
		}
		for x := range va {
			if va[x] != vb[x] {
				return false
			}
		}
		// Parent must map to the same pivot.
		ap, bp := a.Parent[i], b.Parent[j]
		switch {
		case ap == Nil && bp == Nil:
		case ap == Nil || bp == Nil:
			return false
		case pa[ap] != pb[bp]:
			return false
		}
	}
	return true
}
