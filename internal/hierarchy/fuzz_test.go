package hierarchy

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"hcd/internal/graph"
)

// tinyHCD builds a small valid hierarchy (two K4s joined by a bridge
// vertex) through the brute-force constructor.
func tinyHCD(t testing.TB) (*graph.Graph, []int32, *HCD) {
	g := graph.MustFromEdges(9, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		{U: 4, V: 5}, {U: 4, V: 6}, {U: 4, V: 7}, {U: 5, V: 6}, {U: 5, V: 7}, {U: 6, V: 7},
		{U: 3, V: 8}, {U: 8, V: 4},
	})
	core := []int32{3, 3, 3, 3, 3, 3, 3, 3, 2}
	return g, core, BruteForce(g, core)
}

// encodeRaw serialises an arbitrary (possibly invalid) header + payload in
// the WriteBinary wire format, for crafting hostile seeds.
func encodeRaw(nodes, verts int64, ks, parents []int32, vertexSets [][]int32, tids []int32) []byte {
	var buf bytes.Buffer
	buf.WriteString(hcdMagic)
	w := func(v any) { binary.Write(&buf, binary.LittleEndian, v) }
	w(nodes)
	w(verts)
	w(ks)
	w(parents)
	for _, vs := range vertexSets {
		w(int64(len(vs)))
		w(vs)
	}
	w(tids)
	return buf.Bytes()
}

// FuzzHierarchyRead checks the index loader rejects or safely parses
// arbitrary bytes: no panic, and any hierarchy it accepts must be safe to
// traverse — acyclic parents, non-empty vertex sets, and a lossless
// Write/Read round trip.
func FuzzHierarchyRead(f *testing.F) {
	_, _, h := tinyHCD(f)
	var buf bytes.Buffer
	if err := h.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte("HCDT0001garbage"))
	f.Add([]byte{})
	// Parent cycle between nodes 0 and 1: must be rejected, not looped on.
	f.Add(encodeRaw(2, 2, []int32{0, 1}, []int32{1, 0},
		[][]int32{{0}, {1}}, []int32{0, 1}))
	// Empty vertex set on node 1: must be rejected (Pivots indexes vs[0]).
	f.Add(encodeRaw(2, 2, []int32{0, 1}, []int32{-1, 0},
		[][]int32{{0, 1}, {}}, []int32{0, 0}))
	f.Fuzz(func(t *testing.T, data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadBinary panicked: %v", r)
			}
		}()
		h, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Traversal safety: the forest order must visit every node exactly
		// once (acyclic, fully reachable from roots)...
		if got := len(h.TopDown()); got != h.NumNodes() {
			t.Fatalf("accepted hierarchy: TopDown visits %d of %d nodes", got, h.NumNodes())
		}
		// ...every node must own vertices (Pivots reads vs[0])...
		for i := 0; i < h.NumNodes(); i++ {
			if len(h.Vertices[i]) == 0 {
				t.Fatalf("accepted hierarchy: node %d has no vertices", i)
			}
			h.CoreVertices(NodeID(i)) // must terminate
		}
		if h.NumNodes() > 0 {
			h.Pivots()
		}
		// ...and the accepted value must survive a round trip unchanged.
		var out bytes.Buffer
		if err := h.WriteBinary(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		h2, err := ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(h.K, h2.K) || !reflect.DeepEqual(h.Parent, h2.Parent) ||
			!reflect.DeepEqual(h.Vertices, h2.Vertices) || !reflect.DeepEqual(h.TID, h2.TID) {
			t.Fatal("round trip changed the hierarchy")
		}
	})
}

// TestReadBinaryRejectsHostileIndexes pins the two decoder classes the
// fuzz seeds above encode: parent cycles (CoreVertices would never
// terminate) and empty vertex sets (Pivots would panic).
func TestReadBinaryRejectsHostileIndexes(t *testing.T) {
	cases := map[string][]byte{
		"two-node parent cycle": encodeRaw(2, 2, []int32{0, 1}, []int32{1, 0},
			[][]int32{{0}, {1}}, []int32{0, 1}),
		"self-parent": encodeRaw(1, 1, []int32{0}, []int32{0},
			[][]int32{{0}}, []int32{0}),
		"empty vertex set": encodeRaw(2, 2, []int32{0, 1}, []int32{-1, 0},
			[][]int32{{0, 1}, {}}, []int32{0, 0}),
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}
