package hierarchy

import (
	"fmt"
	"strings"
)

// Stats summarises the shape of a hierarchy: the quantities Table II
// reports (|T|) plus the structural profile used when analysing datasets
// and tuning benchmarks.
type Stats struct {
	// Nodes is |T|, the number of tree nodes.
	Nodes int
	// Roots is the number of trees in the forest (= graph components).
	Roots int
	// Height is the number of levels on the deepest root-to-leaf path.
	Height int32
	// KMax is the deepest coreness level with a node.
	KMax int32
	// MaxShell is the largest per-node vertex count (|V(Ti)|).
	MaxShell int
	// MaxCore is the largest original-core size.
	MaxCore int
	// AvgChildren is the mean child count over internal nodes (0 when the
	// forest has no internal nodes).
	AvgChildren float64
	// NodesAtLevel[k] counts tree nodes of coreness k (length KMax+1).
	NodesAtLevel []int
}

// ComputeStats walks the forest once and returns its Stats.
func (h *HCD) ComputeStats() Stats {
	s := Stats{}
	s.Nodes = h.NumNodes()
	if s.Nodes == 0 {
		return s
	}
	s.Roots = len(h.Roots())
	depth := h.Depth()
	internal := 0
	children := 0
	for i := 0; i < s.Nodes; i++ {
		if d := depth[i] + 1; d > s.Height {
			s.Height = d
		}
		if h.K[i] > s.KMax {
			s.KMax = h.K[i]
		}
		if len(h.Vertices[i]) > s.MaxShell {
			s.MaxShell = len(h.Vertices[i])
		}
		if len(h.Children[i]) > 0 {
			internal++
			children += len(h.Children[i])
		}
	}
	for _, r := range h.Roots() {
		if c := h.CoreSize(r); c > s.MaxCore {
			s.MaxCore = c
		}
	}
	if internal > 0 {
		s.AvgChildren = float64(children) / float64(internal)
	}
	s.NodesAtLevel = make([]int, s.KMax+1)
	for i := 0; i < s.Nodes; i++ {
		s.NodesAtLevel[h.K[i]]++
	}
	return s
}

// String renders the stats as a short human-readable block.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d roots=%d height=%d kmax=%d max-shell=%d max-core=%d avg-children=%.2f",
		s.Nodes, s.Roots, s.Height, s.KMax, s.MaxShell, s.MaxCore, s.AvgChildren)
	return b.String()
}
