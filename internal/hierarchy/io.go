package hierarchy

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"hcd/internal/graph"
)

// WriteDOT renders the forest in Graphviz DOT format, one box per tree
// node labelled with its level and vertex count — the paper's
// graph-visualisation application (§I).
func (h *HCD) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph hcd {")
	fmt.Fprintln(bw, "  rankdir=BT;")
	fmt.Fprintln(bw, "  node [shape=box];")
	for i := 0; i < h.NumNodes(); i++ {
		fmt.Fprintf(bw, "  t%d [label=\"k=%d\\n|V|=%d\"];\n", i, h.K[i], len(h.Vertices[i]))
	}
	for i := 0; i < h.NumNodes(); i++ {
		if p := h.Parent[i]; p != Nil {
			fmt.Fprintf(bw, "  t%d -> t%d;\n", i, p)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

const hcdMagic = "HCDT0001"

// WriteBinary serialises the index in a compact little-endian format.
func (h *HCD) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(hcdMagic); err != nil {
		return err
	}
	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := write(int64(h.NumNodes())); err != nil {
		return err
	}
	if err := write(int64(h.NumVertices())); err != nil {
		return err
	}
	if err := write(h.K); err != nil {
		return err
	}
	parents := make([]int32, h.NumNodes())
	for i, p := range h.Parent {
		parents[i] = int32(p)
	}
	if err := write(parents); err != nil {
		return err
	}
	for _, vs := range h.Vertices {
		if err := write(int64(len(vs))); err != nil {
			return err
		}
		if err := write(vs); err != nil {
			return err
		}
	}
	tids := make([]int32, h.NumVertices())
	for v, t := range h.TID {
		tids[v] = int32(t)
	}
	if err := write(tids); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reloads an index written by WriteBinary, rebuilding the
// children lists from the parent pointers.
func ReadBinary(r io.Reader) (*HCD, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(hcdMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != hcdMagic {
		return nil, fmt.Errorf("hierarchy: bad magic %q", magic)
	}
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var nodes, verts int64
	if err := read(&nodes); err != nil {
		return nil, err
	}
	if err := read(&verts); err != nil {
		return nil, err
	}
	if nodes < 0 || verts < 0 || nodes > verts {
		return nil, fmt.Errorf("hierarchy: corrupt header nodes=%d verts=%d", nodes, verts)
	}
	// Chunked reads: a header lying about sizes fails with EOF instead of
	// forcing a giant allocation.
	ks, err := graph.ReadInt32s(br, nodes)
	if err != nil {
		return nil, err
	}
	h := &HCD{
		K:        ks,
		Parent:   make([]NodeID, nodes),
		Children: make([][]NodeID, nodes),
		Vertices: make([][]int32, nodes),
	}
	parents, err := graph.ReadInt32s(br, nodes)
	if err != nil {
		return nil, err
	}
	for i, p := range parents {
		if p < -1 || int64(p) >= nodes || int64(p) == int64(i) {
			return nil, fmt.Errorf("hierarchy: parent %d out of range", p)
		}
		h.Parent[i] = NodeID(p)
		if p >= 0 {
			h.Children[p] = append(h.Children[p], NodeID(i))
		}
	}
	// Reject parent cycles: TopDown only reaches nodes connected to a root,
	// so any cycle (unreachable from every root) shows up as a count
	// mismatch. Without this check CoreVertices would loop forever on a
	// crafted index.
	if len(h.TopDown()) != int(nodes) {
		return nil, fmt.Errorf("hierarchy: parent pointers contain a cycle")
	}
	for i := int64(0); i < nodes; i++ {
		var sz int64
		if err := read(&sz); err != nil {
			return nil, err
		}
		// Every tree node owns at least one vertex (its k-shell portion is
		// what distinguishes it); sz == 0 would make Pivots panic downstream.
		if sz < 1 || sz > verts {
			return nil, fmt.Errorf("hierarchy: node %d size %d out of range", i, sz)
		}
		vs, err := graph.ReadInt32s(br, sz)
		if err != nil {
			return nil, err
		}
		for _, v := range vs {
			if int64(v) < 0 || int64(v) >= verts {
				return nil, fmt.Errorf("hierarchy: node %d vertex %d out of range", i, v)
			}
		}
		h.Vertices[i] = vs
	}
	tids, err := graph.ReadInt32s(br, verts)
	if err != nil {
		return nil, err
	}
	h.TID = make([]NodeID, verts)
	for v, t := range tids {
		if t < -1 || int64(t) >= nodes {
			return nil, fmt.Errorf("hierarchy: tid %d out of range", t)
		}
		h.TID[v] = NodeID(t)
	}
	return h, nil
}
