package hierarchy

import (
	"math/rand"
	"sort"
	"testing"

	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
)

// Fig1 builds an analogue of the paper's Figure 1: a 4-core S4
// (octahedron, vertices 0-5), a 3-core S3.1 = S4 + {6,7,8}, a disjoint
// 3-core S3.2 (K4 on 9-12), and a 2-shell {13,14} gluing everything into
// one 2-core. Expected HCD: T2 -> {T3.1 -> T4, T3.2}.
func Fig1() *graph.Graph {
	edges := []graph.Edge{
		// octahedron K2,2,2 (antipodal pairs (0,3),(1,4),(2,5))
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 4}, {U: 0, V: 5},
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 1, V: 5},
		{U: 2, V: 3}, {U: 2, V: 4},
		{U: 3, V: 4}, {U: 3, V: 5},
		{U: 4, V: 5},
		// T3.1 vertices 6,7,8
		{U: 6, V: 0}, {U: 6, V: 1}, {U: 6, V: 7},
		{U: 7, V: 2}, {U: 7, V: 8},
		{U: 8, V: 3}, {U: 8, V: 4},
		// S3.2: K4 on 9,10,11,12
		{U: 9, V: 10}, {U: 9, V: 11}, {U: 9, V: 12},
		{U: 10, V: 11}, {U: 10, V: 12}, {U: 11, V: 12},
		// 2-shell
		{U: 13, V: 0}, {U: 13, V: 9},
		{U: 14, V: 5}, {U: 14, V: 10},
	}
	return graph.MustFromEdges(15, edges)
}

func fig1Core(t *testing.T) (*graph.Graph, []int32) {
	t.Helper()
	g := Fig1()
	core := coredecomp.Serial(g)
	want := []int32{4, 4, 4, 4, 4, 4, 3, 3, 3, 3, 3, 3, 3, 2, 2}
	for v, k := range want {
		if core[v] != k {
			t.Fatalf("fig1 coreness(%d) = %d, want %d (full: %v)", v, core[v], k, core)
		}
	}
	return g, core
}

func TestBruteForceFig1(t *testing.T) {
	g, core := fig1Core(t)
	h := BruteForce(g, core)
	if h.NumNodes() != 4 {
		t.Fatalf("|T| = %d, want 4", h.NumNodes())
	}
	if err := Validate(h, g, core); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Check the exact shape via tids.
	t2 := h.TID[13]
	t31 := h.TID[6]
	t32 := h.TID[9]
	t4 := h.TID[0]
	if h.K[t2] != 2 || h.K[t31] != 3 || h.K[t32] != 3 || h.K[t4] != 4 {
		t.Fatalf("node levels wrong")
	}
	if h.Parent[t4] != t31 {
		t.Errorf("P(T4) = %d, want T3.1 (%d)", h.Parent[t4], t31)
	}
	if h.Parent[t31] != t2 || h.Parent[t32] != t2 {
		t.Errorf("3-core nodes must hang under T2")
	}
	if h.Parent[t2] != Nil {
		t.Errorf("T2 must be the root")
	}
	if got := sortedCopy(h.Vertices[t31]); !equalInt32(got, []int32{6, 7, 8}) {
		t.Errorf("V(T3.1) = %v", got)
	}
	if got := sortedCopy(h.CoreVertices(t31)); !equalInt32(got, []int32{0, 1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Errorf("core of T3.1 = %v", got)
	}
	if h.CoreSize(t2) != 15 {
		t.Errorf("CoreSize(T2) = %d, want 15", h.CoreSize(t2))
	}
}

func TestTraversalOrders(t *testing.T) {
	g, core := fig1Core(t)
	h := BruteForce(g, core)
	pos := make(map[NodeID]int)
	for i, id := range h.TopDown() {
		pos[id] = i
	}
	if len(pos) != h.NumNodes() {
		t.Fatalf("TopDown misses nodes")
	}
	for i := 0; i < h.NumNodes(); i++ {
		if p := h.Parent[i]; p != Nil && pos[p] > pos[NodeID(i)] {
			t.Errorf("TopDown: parent %d after child %d", p, i)
		}
	}
	bu := h.BottomUp()
	posUp := make(map[NodeID]int)
	for i, id := range bu {
		posUp[id] = i
	}
	for i := 0; i < h.NumNodes(); i++ {
		if p := h.Parent[i]; p != Nil && posUp[p] < posUp[NodeID(i)] {
			t.Errorf("BottomUp: parent %d before child %d", p, i)
		}
	}
	depth := h.Depth()
	if depth[h.TID[13]] != 0 || depth[h.TID[6]] != 1 || depth[h.TID[0]] != 2 {
		t.Errorf("depths wrong: %v", depth)
	}
}

func TestRootsMultipleComponents(t *testing.T) {
	// Two disjoint triangles.
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
	})
	core := coredecomp.Serial(g)
	h := BruteForce(g, core)
	if len(h.Roots()) != 2 {
		t.Errorf("roots = %v, want 2", h.Roots())
	}
	if err := Validate(h, g, core); err != nil {
		t.Error(err)
	}
}

func TestIsolatedVerticesFormZeroShellNodes(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}})
	core := coredecomp.Serial(g)
	h := BruteForce(g, core)
	// Components: {0,1} (1-core), {2}, {3} (0-cores). Each isolated vertex
	// is its own 0-core node; {0,1} is a 1-core node.
	if h.NumNodes() != 3 {
		t.Fatalf("|T| = %d, want 3", h.NumNodes())
	}
	if err := Validate(h, g, core); err != nil {
		t.Error(err)
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	g, core := fig1Core(t)
	h1 := BruteForce(g, core)
	h2 := BruteForce(g, core)
	if !Equal(h1, h2) {
		t.Fatal("identical decompositions must compare equal")
	}
	// Tamper: move a vertex between the two 3-core nodes.
	h2.Vertices[h2.TID[6]] = append(h2.Vertices[h2.TID[6]], 99)
	if Equal(h1, h2) {
		t.Error("vertex-set difference not detected")
	}
	h3 := BruteForce(g, core)
	// Tamper with a parent pointer.
	t4 := h3.TID[0]
	h3.Parent[t4] = h3.TID[9]
	if Equal(h1, h3) {
		t.Error("parent difference not detected")
	}
	h4 := BruteForce(g, core)
	h4.K[h4.TID[13]] = 1
	if Equal(h1, h4) {
		t.Error("level difference not detected")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g, core := fig1Core(t)
	h := BruteForce(g, core)
	if err := Validate(h, g, core); err != nil {
		t.Fatal(err)
	}
	// Wrong tid.
	h.TID[6], h.TID[9] = h.TID[9], h.TID[6]
	if err := Validate(h, g, core); err == nil {
		t.Error("swapped tids not caught")
	}
}

func TestBruteForceOnGeneratedGraphs(t *testing.T) {
	graphs := []*graph.Graph{
		gen.ErdosRenyi(80, 200, 5),
		gen.BarabasiAlbert(60, 3, 6),
		gen.Onion(4, 10, 2, 2, 2, 7),
		gen.PlantedPartition(3, 20, 0.3, 0.01, 8),
	}
	for i, g := range graphs {
		core := coredecomp.Serial(g)
		h := BruteForce(g, core)
		if err := Validate(h, g, core); err != nil {
			t.Errorf("graph %d: %v", i, err)
		}
	}
}

func TestPivotsUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(50)
		edges := make([]graph.Edge, 3*n)
		for i := range edges {
			edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		core := coredecomp.Serial(g)
		h := BruteForce(g, core)
		piv := h.Pivots()
		seen := map[int32]bool{}
		for _, p := range piv {
			if seen[p] {
				t.Fatalf("duplicate pivot %d", p)
			}
			seen[p] = true
		}
	}
}

func sortedCopy(s []int32) []int32 {
	out := append([]int32(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestComputeStats(t *testing.T) {
	g, core := fig1Core(t)
	h := BruteForce(g, core)
	s := h.ComputeStats()
	if s.Nodes != 4 || s.Roots != 1 || s.Height != 3 || s.KMax != 4 {
		t.Errorf("stats = %+v", s)
	}
	if s.MaxShell != 6 { // the octahedron's shell
		t.Errorf("MaxShell = %d, want 6", s.MaxShell)
	}
	if s.MaxCore != 15 {
		t.Errorf("MaxCore = %d, want 15", s.MaxCore)
	}
	// Root T2 has 2 children; T3.1 has 1: avg = 1.5.
	if s.AvgChildren != 1.5 {
		t.Errorf("AvgChildren = %v, want 1.5", s.AvgChildren)
	}
	if len(s.NodesAtLevel) != 5 || s.NodesAtLevel[3] != 2 || s.NodesAtLevel[2] != 1 {
		t.Errorf("NodesAtLevel = %v", s.NodesAtLevel)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	empty := (&HCD{}).ComputeStats()
	if empty.Nodes != 0 || empty.Height != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestNodeString(t *testing.T) {
	g, core := fig1Core(t)
	h := BruteForce(g, core)
	s := h.Node(h.TID[0])
	if s == "" || s[0] != 'T' {
		t.Errorf("Node() = %q", s)
	}
}

func TestValidateMoreCorruptions(t *testing.T) {
	g, core := fig1Core(t)
	fresh := func() *HCD { return BruteForce(g, core) }
	cases := map[string]func(h *HCD){
		"empty node":     func(h *HCD) { h.Vertices[0] = nil },
		"wrong level":    func(h *HCD) { h.K[h.TID[13]] = 3 },
		"child level":    func(h *HCD) { h.K[h.TID[0]] = 2 },
		"orphan child":   func(h *HCD) { h.Children[h.TID[13]] = h.Children[h.TID[13]][:1] },
		"cycle":          func(h *HCD) { h.Parent[h.TID[13]] = h.TID[0] },
		"missing vertex": func(h *HCD) { h.Vertices[h.TID[13]] = h.Vertices[h.TID[13]][:1] },
	}
	for name, corrupt := range cases {
		h := fresh()
		corrupt(h)
		if err := Validate(h, g, core); err == nil {
			t.Errorf("%s: corruption not caught", name)
		}
	}
}
