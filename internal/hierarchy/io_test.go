package hierarchy

import (
	"bytes"
	"strings"
	"testing"

	"hcd/internal/coredecomp"
)

func TestBinaryRoundTrip(t *testing.T) {
	g, core := fig1Core(t)
	h := BruteForce(g, core)
	var buf bytes.Buffer
	if err := h.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(h, h2) {
		t.Error("round trip changed the hierarchy")
	}
	if err := Validate(h2, g, core); err != nil {
		t.Errorf("round-tripped index invalid: %v", err)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not an index")); err == nil {
		t.Error("garbage accepted")
	}
	g, core := fig1Core(t)
	h := BruteForce(g, core)
	var buf bytes.Buffer
	if err := h.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Error("truncation accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	g := Fig1()
	core := coredecomp.Serial(g)
	h := BruteForce(g, core)
	var buf bytes.Buffer
	if err := h.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "digraph hcd") {
		t.Error("missing digraph header")
	}
	// 4 nodes, 3 edges.
	if got := strings.Count(out, "->"); got != 3 {
		t.Errorf("DOT has %d edges, want 3", got)
	}
	if !strings.Contains(out, "k=4") {
		t.Error("missing k=4 node label")
	}
}

// FuzzReadBinary ensures the index loader never panics and never returns
// a structurally broken forest for arbitrary input bytes.
func FuzzReadBinary(f *testing.F) {
	g := Fig1()
	core := coredecomp.Serial(g)
	h := BruteForce(g, core)
	var buf bytes.Buffer
	if err := h.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("HCDT0001"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadBinary panicked: %v", r)
			}
		}()
		h, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be traversable without panics.
		if got := len(h.TopDown()); got > h.NumNodes() {
			t.Fatalf("traversal yields %d nodes of %d", got, h.NumNodes())
		}
		for v := 0; v < h.NumVertices(); v++ {
			if tid := h.TID[v]; tid != Nil && int(tid) >= h.NumNodes() {
				t.Fatalf("tid out of range")
			}
		}
	})
}
