package hierarchy

import (
	"fmt"

	"hcd/internal/graph"
)

// Validate checks the structural invariants of the HCD against the graph
// and its core decomposition (Definitions 1-3):
//
//  1. every vertex belongs to exactly one node, consistently with TID;
//  2. every vertex in node i has coreness K[i];
//  3. Parent/Children are mutually consistent and acyclic, with
//     K[parent] < K[child];
//  4. each node's reconstructed original k-core is exactly one connected
//     component of the subgraph induced by {v : c(v) >= k} (connectivity
//     and maximality of the k-core);
//  5. the parent is the *closest* enclosing core with a tree node
//     (condition (iii) of Definition 2).
//
// Validate is O(Σ core sizes) and intended for tests and debugging, not
// hot paths. It returns the first violation found.
func Validate(h *HCD, g *graph.Graph, core []int32) error {
	n := g.NumVertices()
	if h.NumVertices() != n {
		return fmt.Errorf("hcd covers %d vertices, graph has %d", h.NumVertices(), n)
	}
	// (1) + (2): vertex ownership.
	seen := make([]bool, n)
	for i := 0; i < h.NumNodes(); i++ {
		if len(h.Vertices[i]) == 0 {
			return fmt.Errorf("%s: empty vertex set", h.Node(NodeID(i)))
		}
		for _, v := range h.Vertices[i] {
			if seen[v] {
				return fmt.Errorf("vertex %d appears in two nodes", v)
			}
			seen[v] = true
			if h.TID[v] != NodeID(i) {
				return fmt.Errorf("tid(%d) = %d, but vertex listed in node %d", v, h.TID[v], i)
			}
			if core[v] != h.K[i] {
				return fmt.Errorf("vertex %d has coreness %d but lives in %s", v, core[v], h.Node(NodeID(i)))
			}
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			return fmt.Errorf("vertex %d missing from the hierarchy", v)
		}
	}
	// (3): tree wiring.
	childCount := 0
	for i := 0; i < h.NumNodes(); i++ {
		for _, c := range h.Children[i] {
			childCount++
			if h.Parent[c] != NodeID(i) {
				return fmt.Errorf("node %d lists child %d whose parent is %d", i, c, h.Parent[c])
			}
			if h.K[c] <= h.K[i] {
				return fmt.Errorf("child %s does not have higher coreness than parent %s",
					h.Node(c), h.Node(NodeID(i)))
			}
		}
	}
	nonRoots := 0
	for i := range h.Parent {
		if h.Parent[i] != Nil {
			nonRoots++
		}
	}
	if childCount != nonRoots {
		return fmt.Errorf("children lists cover %d nodes, but %d nodes have parents", childCount, nonRoots)
	}
	if len(h.TopDown()) != h.NumNodes() {
		return fmt.Errorf("forest traversal reaches %d of %d nodes (cycle or orphan)", len(h.TopDown()), h.NumNodes())
	}

	// (4): each reconstructed core is one full component of G[c >= k].
	for i := 0; i < h.NumNodes(); i++ {
		k := h.K[i]
		want := componentAtLevel(g, core, h.Vertices[i][0], k)
		got := h.CoreVertices(NodeID(i))
		if len(got) != len(want) {
			return fmt.Errorf("%s: reconstructed core has %d vertices, component of G[c>=%d] has %d",
				h.Node(NodeID(i)), len(got), k, len(want))
		}
		inWant := make(map[int32]bool, len(want))
		for _, v := range want {
			inWant[v] = true
		}
		for _, v := range got {
			if !inWant[v] {
				return fmt.Errorf("%s: vertex %d in reconstruction but not in the k-core component",
					h.Node(NodeID(i)), v)
			}
		}
	}

	// (5): parent is the closest enclosing core with a node. Because of
	// (4), it suffices to check that no other node's level lies strictly
	// between parent and child while containing the child's pivot.
	for i := 0; i < h.NumNodes(); i++ {
		p := h.Parent[i]
		if p == Nil {
			continue
		}
		pivot := h.Vertices[i][0]
		for k := h.K[i] - 1; k > h.K[p]; k-- {
			comp := componentAtLevel(g, core, pivot, k)
			for _, v := range comp {
				if core[v] == k {
					return fmt.Errorf("%s: parent is %s but a %d-core tree node lies between",
						h.Node(NodeID(i)), h.Node(p), k)
				}
			}
		}
		// And the parent's core must contain the child's pivot.
		comp := componentAtLevel(g, core, pivot, h.K[p])
		found := false
		for _, v := range comp {
			if h.TID[v] == p && core[v] == h.K[p] {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%s: parent %s does not share the enclosing %d-core",
				h.Node(NodeID(i)), h.Node(p), h.K[p])
		}
	}
	return nil
}

// componentAtLevel returns the connected component of `start` in the
// subgraph induced by vertices of coreness >= k.
func componentAtLevel(g *graph.Graph, core []int32, start int32, k int32) []int32 {
	visited := map[int32]bool{start: true}
	queue := []int32{start}
	var out []int32
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		out = append(out, v)
		for _, u := range g.Neighbors(v) {
			if core[u] >= k && !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
	}
	return out
}

// BruteForce constructs the HCD straight from the definitions, with no
// attention to efficiency: for each k from kmax down to 0 it finds the
// connected components of G[c >= k] and materialises a tree node for every
// component that contains coreness-k vertices. It is the reference
// implementation the fast constructors are tested against.
func BruteForce(g *graph.Graph, core []int32) *HCD {
	n := g.NumVertices()
	h := &HCD{TID: make([]NodeID, n)}
	for i := range h.TID {
		h.TID[i] = Nil
	}
	if n == 0 {
		return h
	}
	kmax := int32(0)
	for _, c := range core {
		if c > kmax {
			kmax = c
		}
	}
	// For parent detection: nodeOf[v] after processing level k holds the
	// deepest node whose original core contains v so far (i.e. the node of
	// the component of G[c>=k'] containing v for the largest processed k'
	// that had a node there).
	deepest := make([]NodeID, n)
	for i := range deepest {
		deepest[i] = Nil
	}
	for k := kmax; k >= 0; k-- {
		// Components of G[c >= k].
		comp := make(map[int32]int32, n) // vertex -> component id
		var compVerts [][]int32
		for v := int32(0); v < int32(n); v++ {
			if core[v] < k {
				continue
			}
			if _, ok := comp[v]; ok {
				continue
			}
			id := int32(len(compVerts))
			queue := []int32{v}
			comp[v] = id
			var verts []int32
			for len(queue) > 0 {
				x := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				verts = append(verts, x)
				for _, u := range g.Neighbors(x) {
					if core[u] >= k {
						if _, ok := comp[u]; !ok {
							comp[u] = id
							queue = append(queue, u)
						}
					}
				}
			}
			compVerts = append(compVerts, verts)
		}
		for _, verts := range compVerts {
			var shell []int32
			for _, v := range verts {
				if core[v] == k {
					shell = append(shell, v)
				}
			}
			if len(shell) == 0 {
				continue
			}
			id := NodeID(len(h.K))
			h.K = append(h.K, k)
			h.Parent = append(h.Parent, Nil)
			h.Children = append(h.Children, nil)
			h.Vertices = append(h.Vertices, shell)
			for _, v := range shell {
				h.TID[v] = id
			}
			// The children of this node are the previously-deepest nodes
			// inside this component (each distinct one exactly once).
			seen := map[NodeID]bool{}
			for _, v := range verts {
				d := deepest[v]
				if d != Nil && !seen[d] && h.Parent[d] == Nil && d != id {
					seen[d] = true
					h.Parent[d] = id
					h.Children[id] = append(h.Children[id], d)
				}
			}
			for _, v := range verts {
				deepest[v] = id
			}
		}
	}
	return h
}
