package viz

import (
	"bytes"
	"strings"
	"testing"

	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

func build(t *testing.T, g *graph.Graph) *hierarchy.HCD {
	t.Helper()
	return hierarchy.BruteForce(g, coredecomp.Serial(g))
}

func TestWriteSVGStructure(t *testing.T) {
	g := gen.Onion(4, 10, 2, 2, 2, 1)
	h := build(t, g)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, h, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a well-formed SVG envelope")
	}
	// One rect per node plus the background.
	if got := strings.Count(out, "<rect"); got != h.NumNodes()+1 {
		t.Errorf("rect count = %d, want %d", got, h.NumNodes()+1)
	}
	if !strings.Contains(out, "<title>k=") {
		t.Error("tooltips missing")
	}
}

func TestWriteSVGEmptyAndSingle(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSVG(&buf, &hierarchy.HCD{}, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("empty hierarchy must still produce an SVG envelope")
	}
	g := graph.MustFromEdges(1, nil)
	h := build(t, g)
	buf.Reset()
	if err := WriteSVG(&buf, h, Options{Width: 100, RowHeight: 10}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `width="100"`) {
		t.Error("options not honoured")
	}
}

func TestChildrenNestWithinParents(t *testing.T) {
	g := gen.Onion(5, 8, 2, 2, 3, 2)
	h := build(t, g)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, h, Options{Width: 800}); err != nil {
		t.Fatal(err)
	}
	// Structural sanity via the color gradient: deeper level colors appear.
	out := buf.String()
	if strings.Count(out, "fill=\"#") < h.NumNodes() {
		t.Error("missing node fills")
	}
}

func TestLevelColorEndpoints(t *testing.T) {
	low := levelColor(0, 10)
	high := levelColor(10, 10)
	if low == high {
		t.Error("gradient endpoints identical")
	}
	if levelColor(0, 0) == "" {
		t.Error("kmax=0 must not divide by zero")
	}
}
