// Package viz renders a hierarchical core decomposition as a
// self-contained SVG icicle diagram — the graph-visualisation application
// from the paper's introduction (§I cites k-core decomposition as "an
// elegant visualization of a network" for the internet, biology and brain
// networks).
//
// Each tree node becomes a rectangle whose width is proportional to its
// original k-core's vertex count and whose row is its depth; children are
// nested under their parents, so containment of k-cores reads directly off
// the picture. Colour encodes the coreness level from cool (shallow) to
// warm (deep).
package viz

import (
	"bufio"
	"fmt"
	"io"

	"hcd/internal/hierarchy"
)

// Options tunes the rendering.
type Options struct {
	// Width is the total SVG width in pixels (default 960).
	Width int
	// RowHeight is the height of one depth level (default 28).
	RowHeight int
	// MinLabelWidth suppresses text on boxes narrower than this (default 40).
	MinLabelWidth int
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 960
	}
	if o.RowHeight <= 0 {
		o.RowHeight = 28
	}
	if o.MinLabelWidth <= 0 {
		o.MinLabelWidth = 40
	}
	return o
}

// WriteSVG renders the forest as an SVG icicle diagram.
func WriteSVG(w io.Writer, h *hierarchy.HCD, opt Options) error {
	opt = opt.withDefaults()
	bw := bufio.NewWriter(w)

	nn := h.NumNodes()
	depth := h.Depth()
	maxDepth := int32(0)
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	kmax := int32(0)
	for _, k := range h.K {
		if k > kmax {
			kmax = k
		}
	}
	// Core sizes drive the widths.
	size := make([]int, nn)
	for i := 0; i < nn; i++ {
		size[i] = h.CoreSize(hierarchy.NodeID(i))
	}
	total := 0
	for _, r := range h.Roots() {
		total += size[r]
	}
	height := (int(maxDepth) + 1) * opt.RowHeight
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n",
		opt.Width, height)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="white"/>`+"\n", opt.Width, height)

	if nn > 0 && total > 0 {
		// Assign horizontal extents top-down: each node splits its span
		// among its children proportionally to core size.
		x0 := make([]float64, nn)
		x1 := make([]float64, nn)
		cursor := 0.0
		scale := float64(opt.Width) / float64(total)
		for _, r := range h.Roots() {
			x0[r] = cursor
			cursor += float64(size[r]) * scale
			x1[r] = cursor
		}
		for _, id := range h.TopDown() {
			cur := x0[id]
			for _, c := range h.Children[id] {
				x0[c] = cur
				cur += float64(size[c]) * float64(x1[id]-x0[id]) / float64(size[id])
				x1[c] = cur
			}
		}
		for _, id := range h.TopDown() {
			y := int(depth[id]) * opt.RowHeight
			wpx := x1[id] - x0[id]
			fmt.Fprintf(bw,
				`<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="white" stroke-width="1"><title>k=%d, |shell|=%d, |core|=%d</title></rect>`+"\n",
				x0[id], y, wpx, opt.RowHeight, levelColor(h.K[id], kmax),
				h.K[id], len(h.Vertices[id]), size[id])
			if wpx >= float64(opt.MinLabelWidth) {
				fmt.Fprintf(bw,
					`<text x="%.1f" y="%d" fill="white">k=%d (%d)</text>`+"\n",
					x0[id]+4, y+opt.RowHeight/2+4, h.K[id], size[id])
			}
		}
	}
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}

// levelColor maps a coreness level to a blue-to-red gradient.
func levelColor(k, kmax int32) string {
	if kmax == 0 {
		kmax = 1
	}
	t := float64(k) / float64(kmax)
	r := int(40 + 200*t)
	g := int(80 + 40*(1-t))
	b := int(200 - 160*t)
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}
