package coredecomp

import (
	"sync/atomic"
	"testing"
)

// TestFlushFrontierAllocFree pins the buffered publication path at zero
// allocations: flushFrontier is the only cross-worker synchronisation
// the buffered and h-index kernels execute per staging buffer, and a
// single allocation here multiplies by frontier-size/peelBufCap × rounds
// × workers. The staging buffer itself is a stack array at every call
// site (var stage [peelBufCap]int32), so the whole adopt→stage→publish
// hot path stays heap-silent.
func TestFlushFrontierAllocFree(t *testing.T) {
	dst := make([]int32, 8*peelBufCap)
	var tail atomic.Int64
	var stage [peelBufCap]int32
	for i := range stage {
		stage[i] = int32(i)
	}
	allocs := testing.AllocsPerRun(200, func() {
		tail.Store(0)
		flushFrontier(dst, &tail, stage[:])
	})
	if allocs != 0 {
		t.Fatalf("flushFrontier allocates %.1f objects per call, want 0", allocs)
	}
}

// BenchmarkFlushFrontierAllocs reports the publication path's per-op
// cost with allocation accounting, for the perf-smoke and race-matrix
// CI legs.
func BenchmarkFlushFrontierAllocs(b *testing.B) {
	dst := make([]int32, 8*peelBufCap)
	var tail atomic.Int64
	var stage [peelBufCap]int32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tail.Store(0)
		flushFrontier(dst, &tail, stage[:])
	}
}
