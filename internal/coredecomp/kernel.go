package coredecomp

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"hcd/internal/graph"
	"hcd/internal/obs"
	"hcd/internal/par"
)

// Kernel names one of the pluggable peeling kernels. The zero value
// selects DefaultKernel, so callers that never set a kernel keep the
// journal-chosen production path.
type Kernel string

const (
	// KernelLevelSync is the PKC/ParK level-synchronous kernel
	// (ParallelCtx): per-element CAS-clamped decrements, one barrier per
	// coreness level.
	KernelLevelSync Kernel = "levelsync"
	// KernelBuffered is the buffered-frontier kernel (BufferedCtx):
	// workers stage cascaded vertices in fixed per-worker buffers and
	// publish each buffer with a single fetch-and-add reservation into a
	// shared next-frontier array.
	KernelBuffered Kernel = "buffered"
	// KernelHIndex is the asynchronous local h-index kernel (HIndexCtx):
	// worklist-driven h-index iteration to fixpoint, no level barriers.
	KernelHIndex Kernel = "hindex"
)

// DefaultKernel is the kernel used when callers leave the choice empty.
// It is selected by the experiment journal (BENCH_phcd.json, see
// EXPERIMENTS.md "Peeling-kernel selection"): the buffered kernel
// replaces the level-synchronous CAS loop with one fetch-and-add per
// decrement, scales its worker fan-out to the frontier and the
// hardware, and runs single-worker sub-rounds lock-free — faster than
// levelsync in every recorded cell, beyond the noise band on two of
// the three scale-4 datasets at p=8. The losers stay selectable for
// re-measurement on new hardware.
const DefaultKernel = KernelBuffered

// Kernels lists every selectable peeling kernel, in presentation order.
func Kernels() []Kernel {
	return []Kernel{KernelLevelSync, KernelBuffered, KernelHIndex}
}

// ParseKernel resolves a kernel name from flag/config input. The empty
// string resolves to DefaultKernel.
func ParseKernel(s string) (Kernel, error) {
	k := Kernel(s)
	switch k {
	case "":
		return DefaultKernel, nil
	case KernelLevelSync, KernelBuffered, KernelHIndex:
		return k, nil
	}
	return "", fmt.Errorf("coredecomp: unknown peeling kernel %q (have %v)", s, Kernels())
}

// PeelCtx computes the core decomposition with the selected kernel
// (empty = DefaultKernel), with the shared containment contract: worker
// panics surface as a *par.PanicError and a cancelled ctx aborts
// between rounds. All kernels return byte-identical core arrays for
// every thread count (coreness is unique, and each kernel's final pass
// is deterministic), so selection is purely a performance decision.
func PeelCtx(ctx context.Context, g *graph.Graph, threads int, kernel Kernel) ([]int32, error) {
	if kernel == "" {
		kernel = DefaultKernel
	}
	switch kernel {
	case KernelLevelSync:
		return ParallelCtx(ctx, g, threads)
	case KernelBuffered:
		return BufferedCtx(ctx, g, threads)
	case KernelHIndex:
		return HIndexCtx(ctx, g, threads)
	}
	return nil, fmt.Errorf("coredecomp: unknown peeling kernel %q (have %v)", kernel, Kernels())
}

// Peel is PeelCtx without a context, re-panicking on failure. The panic
// value is always a *par.PanicError (pass-through when the kernel
// already produced one), so a recover + errors.As still reaches the
// original cause — e.g. an injected *faultinject.Fault.
func Peel(g *graph.Graph, threads int, kernel Kernel) []int32 {
	core, err := PeelCtx(context.Background(), g, threads, kernel)
	if err != nil {
		panic(par.AsPanicError(err))
	}
	return core
}

// peelBufCap is the per-worker staging-buffer capacity (in vertices) of
// the buffered publication path: large enough to amortise the
// fetch-and-add reservation to a fraction of an atomic op per vertex,
// small enough to live on the worker's stack.
const peelBufCap = 256

// flushFrontier publishes buf into dst with a single fetch-and-add
// reservation on tail: the only cross-worker synchronisation of the
// buffered publication path. Callers guarantee dst has capacity for
// every published vertex (each vertex is adopted at most once), so the
// reserved window never overruns.
func flushFrontier(dst []int32, tail *atomic.Int64, buf []int32) {
	base := tail.Add(int64(len(buf))) - int64(len(buf))
	copy(dst[base:], buf)
}

// peelWorkers bounds a round's worker fan-out by the work available —
// one worker per peelFanoutGrain work items — and by the hardware
// parallelism actually on offer (GOMAXPROCS), both capped at the
// configured thread count. Peeling frontiers shrink toward the
// high-coreness tail, and spawning p goroutines (plus their barrier) to
// process a few hundred vertices costs more than the processing; par
// runs single-worker rounds inline on the calling goroutine. The
// GOMAXPROCS cap matters for the same reason at the other end: the
// kernels are CPU-bound and never block, so workers beyond the
// scheduler's processor count only time-slice against each other and
// pay spawn + barrier overhead per round for it.
func peelWorkers(p int, work int64) int {
	w := int(work/peelFanoutGrain) + 1
	if w > p {
		w = p
	}
	if maxp := runtime.GOMAXPROCS(0); w > maxp {
		w = maxp
	}
	return w
}

// peelFanoutGrain is the work-per-worker floor of peelWorkers. A
// variable only so tests can lower it to force the multi-worker peel
// paths onto small graphs (e.g. under -race).
var peelFanoutGrain = int64(4096)

// peelStats is the per-kernel frontier telemetry of satellite interest
// to the journal: how many rounds a kernel ran and how large its
// frontiers were explains *why* it wins or loses on a dataset shape
// (many tiny levels favour buffered's adaptive fan-out; heavy worklist
// churn penalises hindex). Compiled out under the noobs tag.
type peelStats struct {
	rounds   *obs.Counter
	frontier *obs.Histogram
}

// newPeelStats registers one kernel's telemetry pair. Single call site
// per metric base name; the kernel label distinguishes the series.
func newPeelStats(kernel Kernel) peelStats {
	return peelStats{
		rounds: obs.NewCounter(obs.Name("hcd_peel_rounds_total", "kernel", string(kernel)),
			"peeling rounds executed, by kernel"),
		frontier: obs.NewHistogram(obs.Name("hcd_peel_frontier_vertices", "kernel", string(kernel)),
			"frontier size per peeling round (vertices), by kernel"),
	}
}

var (
	levelsyncStats = newPeelStats(KernelLevelSync)
	bufferedStats  = newPeelStats(KernelBuffered)
	hindexStats    = newPeelStats(KernelHIndex)
)
