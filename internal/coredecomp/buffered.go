package coredecomp

import (
	"context"
	"sync/atomic"

	"hcd/internal/faultinject"
	"hcd/internal/graph"
	"hcd/internal/obs"
	"hcd/internal/par"
)

// bufferedGrain is the dynamic-scheduling chunk size (frontier
// vertices) of the buffered kernel's peel rounds. Work per vertex is
// its degree, so chunks are degree-skewed; the shared-counter chunk
// grab rebalances them.
const bufferedGrain = 256

// BufferedCtx computes coreness with buffered-frontier peeling: the
// level structure of ParallelCtx, but cascaded adoptions are staged in
// fixed-size per-worker buffers and published into a shared
// next-frontier array with one fetch-and-add reservation per flush
// (the MaxTruss Scan/SubLevel scheme), replacing the per-element
// CAS-retry adoption path with a single unconditional fetch-and-add
// per decrement.
//
// Why this is cheaper than ParallelCtx:
//
//   - Decrementing deg[u] is one atomic Add instead of a Load+CAS loop
//     that retries under contention: exactly one worker observes the
//     decrement land on `level` (atomic adds pass each value exactly
//     once), so adoption needs no compare-and-swap. A racing stale
//     decrement can overshoot below level, but only after the adoption
//     already happened, and later levels drop d < level vertices from
//     the active lists, so no repair pass is needed.
//   - Frontier publication costs one fetch-and-add per peelBufCap
//     vertices instead of per-vertex synchronisation.
//   - Worker fan-out follows the frontier (peelWorkers): the many tiny
//     sub-rounds of the high-coreness tail run inline instead of
//     paying goroutine spawn + barrier for a handful of vertices, and
//     fan-out never exceeds GOMAXPROCS — oversubscribed workers on a
//     CPU-bound kernel only time-slice against each other.
//   - A sub-round that peelWorkers sizes to one worker takes a scalar
//     path with no lock-prefixed instructions at all: atomic Load/Store
//     on a single goroutine compile to plain moves, so the per-edge
//     decrement costs a couple of cycles instead of a locked RMW.
//
// Containment contract of ParallelCtx: worker panics surface as a
// *par.PanicError, a cancelled ctx aborts between rounds.
func BufferedCtx(ctx context.Context, g *graph.Graph, threads int) ([]int32, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := obs.StartSpan("coredecomp.buffered")
	defer sp.End()
	n := g.NumVertices()
	core := make([]int32, n)
	if n == 0 {
		return core, ctx.Err()
	}
	p := par.Threads(threads)
	deg := make([]atomic.Int32, n)
	// Active-list compaction as in ParallelCtx: each slot keeps the
	// shrinking list of vertices still above the current level.
	actives := make([][]int32, p)
	err := par.ForErr(ctx, p, p, func(tlo, thi int) error {
		for t := tlo; t < thi; t++ {
			lo, hi := t*n/p, (t+1)*n/p
			buf := make([]int32, 0, hi-lo)
			for v := lo; v < hi; v++ {
				deg[v].Store(int32(g.Degree(int32(v))))
				buf = append(buf, int32(v))
			}
			actives[t] = buf
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// curr/next are the shared frontier arrays the buffers flush into.
	// Every vertex enters a frontier exactly once across the whole run
	// (collected once in phase 1, or adopted by the unique worker whose
	// decrement lands on the level), so capacity n never overruns.
	curr := make([]int32, n)
	next := make([]int32, n)
	var currTail, nextTail atomic.Int64
	visited := int64(0)
	for level := int32(0); visited < int64(n); level++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rsp := obs.StartSpanArg("buffered.round", int64(level))
		// Phase 1 (barrier): collect this level's seed frontier from the
		// active lists, compacting them. No decrements run here, so each
		// seed vertex is collected exactly once by its owning slot.
		currTail.Store(0)
		err := par.ForErr(ctx, p, peelWorkers(p, int64(n)-visited), func(tlo, thi int) error {
			faultinject.Maybe("coredecomp.buffered.collect")
			var stage [peelBufCap]int32
			sn := 0
			for t := tlo; t < thi; t++ {
				act := actives[t]
				w := 0
				for _, v := range act {
					d := deg[v].Load()
					if d == level {
						stage[sn] = v
						sn++
						if sn == len(stage) {
							flushFrontier(curr, &currTail, stage[:sn])
							sn = 0
						}
					} else if d > level {
						act[w] = v
						w++
					}
					// d < level: adopted by a cascade at an earlier level;
					// drop it from the active list.
				}
				actives[t] = act[:w]
			}
			if sn > 0 {
				flushFrontier(curr, &currTail, stage[:sn])
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Sub-rounds: peel the frontier, staging cascaded adoptions into
		// next. A vertex reaches `level` only through a decrement, and
		// only the worker whose Add lands exactly on `level` adopts it.
		for tail := currTail.Load(); tail > 0; {
			visited += tail
			bufferedStats.rounds.Inc()
			bufferedStats.frontier.ObserveN(tail)
			nextTail.Store(0)
			cl, nx := curr, next
			workers := peelWorkers(p, tail)
			var err error
			if workers == 1 {
				// Single-worker sub-round: the body runs alone (inline on
				// the calling goroutine), so the lock-prefixed RMWs of the
				// concurrent path are unnecessary — atomic Load/Store
				// compile to plain moves, and the next frontier grows under
				// a local cursor. The adoption rule is unchanged: decrement
				// on d > level, adopt when the decrement lands on level.
				// Still routed through par so an injected panic at the site
				// is contained identically to the concurrent path.
				nt := int64(0)
				err = par.ForChunkedErr(ctx, int(tail), 1, bufferedGrain, func(lo, hi int) error {
					faultinject.Maybe("coredecomp.buffered.peel")
					for i := lo; i < hi; i++ {
						v := cl[i]
						core[v] = level
						for _, u := range g.Neighbors(v) {
							if d := deg[u].Load(); d > level {
								d--
								deg[u].Store(d)
								if d == level {
									nx[nt] = u
									nt++
								}
							}
						}
					}
					return nil
				})
				nextTail.Store(nt)
			} else {
				err = par.ForChunkedErr(ctx, int(tail), workers, bufferedGrain, func(lo, hi int) error {
					//hcdlint:allow site-hygiene the scalar and concurrent bodies are one logical peel phase; a fault rule must cover whichever one the fan-out picks, so they share a site and its hit counter on purpose
					faultinject.Maybe("coredecomp.buffered.peel")
					var stage [peelBufCap]int32
					sn := 0
					for i := lo; i < hi; i++ {
						v := cl[i]
						core[v] = level
						for _, u := range g.Neighbors(v) {
							if deg[u].Load() > level {
								if d := deg[u].Add(-1); d == level {
									stage[sn] = u
									sn++
									if sn == len(stage) {
										flushFrontier(nx, &nextTail, stage[:sn])
										sn = 0
									}
								}
							}
						}
					}
					if sn > 0 {
						flushFrontier(nx, &nextTail, stage[:sn])
					}
					return nil
				})
			}
			if err != nil {
				return nil, err
			}
			curr, next = next, curr
			tail = nextTail.Load()
		}
		rsp.End()
	}
	return core, nil
}
