package coredecomp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hcd/internal/gen"
	"hcd/internal/graph"
)

// bruteCore computes coreness by repeated minimum-degree removal over an
// adjacency-map copy — the definition, with no cleverness.
func bruteCore(g *graph.Graph) []int32 {
	n := g.NumVertices()
	alive := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		deg[v] = g.Degree(int32(v))
	}
	core := make([]int32, n)
	removed := 0
	k := 0
	for removed < n {
		// Remove any alive vertex with degree <= k until none remain.
		progress := true
		for progress {
			progress = false
			for v := 0; v < n; v++ {
				if alive[v] && deg[v] <= k {
					alive[v] = false
					core[v] = int32(k)
					removed++
					for _, u := range g.Neighbors(int32(v)) {
						if alive[u] {
							deg[u]--
						}
					}
					progress = true
				}
			}
		}
		k++
	}
	return core
}

func pathGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	return graph.MustFromEdges(n, edges)
}

func clique(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	return graph.MustFromEdges(n, edges)
}

func TestSerialKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want []int32
	}{
		{"empty", graph.MustFromEdges(0, nil), []int32{}},
		{"isolated", graph.MustFromEdges(3, nil), []int32{0, 0, 0}},
		{"path4", pathGraph(4), []int32{1, 1, 1, 1}},
		{"triangle", clique(3), []int32{2, 2, 2}},
		{"k5", clique(5), []int32{4, 4, 4, 4, 4}},
		{"triangle+tail", graph.MustFromEdges(5, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}, {U: 3, V: 4},
		}), []int32{2, 2, 2, 1, 1}},
	}
	for _, c := range cases {
		got := Serial(c.g)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: Serial = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSerialMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(60)
		m := rng.Intn(4 * n)
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		want := bruteCore(g)
		if got := Serial(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Serial = %v, want %v", trial, got, want)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	graphs := []*graph.Graph{
		gen.ErdosRenyi(500, 2500, 1),
		gen.BarabasiAlbert(400, 4, 2),
		gen.RMAT(9, 3000, 3),
		gen.Onion(5, 20, 2, 3, 2, 4),
		pathGraph(10),
		clique(8),
		graph.MustFromEdges(4, nil),
	}
	for i, g := range graphs {
		want := Serial(g)
		for _, threads := range []int{1, 2, 4, 8} {
			got := Parallel(g, threads)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("graph %d threads %d: parallel coreness differs", i, threads)
			}
		}
	}
}

func TestParallelMatchesSerialProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint16) bool {
		n := int(nRaw%150) + 1
		m := int(mRaw % 800)
		rng := rand.New(rand.NewSource(seed))
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		return reflect.DeepEqual(Serial(g), Parallel(g, 4))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKMax(t *testing.T) {
	if KMax(nil) != 0 {
		t.Error("KMax(nil) != 0")
	}
	if KMax([]int32{0, 3, 2, 3, 1}) != 3 {
		t.Error("KMax wrong")
	}
}

func TestRankVerticesBasic(t *testing.T) {
	// Coreness: v0..v5 = {2, 0, 1, 1, 2, 0}
	core := []int32{2, 0, 1, 1, 2, 0}
	for _, threads := range []int{1, 2, 3, 8} {
		r := RankVertices(core, threads)
		wantOrder := []int32{1, 5, 2, 3, 0, 4}
		if !reflect.DeepEqual(r.Order, wantOrder) {
			t.Fatalf("threads=%d: Order = %v, want %v", threads, r.Order, wantOrder)
		}
		for i, v := range r.Order {
			if r.Rank[v] != int32(i) {
				t.Errorf("Rank[%d] = %d, want %d", v, r.Rank[v], i)
			}
		}
		if r.KMax != 2 {
			t.Errorf("KMax = %d", r.KMax)
		}
		if !reflect.DeepEqual(r.Shell(0), []int32{1, 5}) ||
			!reflect.DeepEqual(r.Shell(1), []int32{2, 3}) ||
			!reflect.DeepEqual(r.Shell(2), []int32{0, 4}) {
			t.Errorf("shells wrong: %v %v %v", r.Shell(0), r.Shell(1), r.Shell(2))
		}
	}
}

func TestRankVerticesEmpty(t *testing.T) {
	r := RankVertices(nil, 4)
	if len(r.Order) != 0 || r.KMax != 0 {
		t.Error("empty ranking not empty")
	}
}

// Property: Order is exactly sorted by (coreness, id) and Rank inverts it,
// for any thread count.
func TestRankVerticesProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, p uint8) bool {
		n := int(nRaw % 500)
		rng := rand.New(rand.NewSource(seed))
		core := make([]int32, n)
		for i := range core {
			core[i] = int32(rng.Intn(8))
		}
		r := RankVertices(core, int(p%7)+1)
		if len(r.Order) != n {
			return false
		}
		for i := 1; i < n; i++ {
			a, b := r.Order[i-1], r.Order[i]
			if core[a] > core[b] || (core[a] == core[b] && a >= b) {
				return false
			}
		}
		for i, v := range r.Order {
			if r.Rank[v] != int32(i) {
				return false
			}
		}
		// Shells partition the order array.
		var total int64
		for k := int32(0); k <= r.KMax; k++ {
			for _, v := range r.Shell(k) {
				if core[v] != k {
					return false
				}
				total++
			}
		}
		return total == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSerialCoreDecomp(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Serial(g)
	}
}

func BenchmarkParallelCoreDecomp(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parallel(g, 0)
	}
}
