package coredecomp

import (
	"context"
	"sync/atomic"

	"hcd/internal/faultinject"
	"hcd/internal/graph"
	"hcd/internal/obs"
	"hcd/internal/par"
)

// hindexGrain is the dynamic-scheduling chunk size (worklist vertices)
// of the h-index rounds; recomputing a vertex costs two passes over its
// neighbours, so chunks are degree-skewed like the buffered kernel's.
const hindexGrain = 256

// HIndexCtx computes coreness by asynchronous local h-index iteration
// (Sariyüce–Seshadhri–Pinar, "Local Algorithms for Hierarchical Dense
// Subgraph Discovery"): start every estimate at the degree, repeatedly
// replace h(v) with the H-index of its neighbours' current estimates
// (the largest j such that at least j neighbours have estimate >= j),
// and stop at the fixpoint — which is exactly the coreness. There is
// no level barrier at all: a worklist carries only the vertices whose
// estimate may still drop, and workers chew through it in
// degree-balanced chunks.
//
// Why the asynchronous interleaving stays correct:
//
//   - Estimates only decrease (a recomputation is stored only when
//     strictly smaller) and never drop below the coreness: if every
//     neighbour estimate is >= its coreness, the recomputed H-index is
//     >= the H-index of the neighbours' corenesses >= c(v), inductively
//     from h0 = deg >= c.
//   - Whatever mix of old and new neighbour values a recomputation
//     reads, all of them are >= the corenesses, so the result is a
//     valid (over-)estimate; a drop the recomputation missed re-adds
//     the vertex to the worklist (see the ordering argument at the
//     membership clear below), so quiescence implies h(v) equals the
//     H-index of the *current* neighbour values for every v.
//   - Any such fixpoint f >= c with f = H(f) is c itself: take the
//     largest value k attained by a vertex with f(v) > c(v); every
//     vertex of the set S = {v : f(v) >= k} has >= k neighbours with
//     estimate >= k, i.e. >= k neighbours in S, so S is a k-core and
//     c >= k on S — contradiction.
//
// The final pass copying the fixpoint into core[] is a deterministic
// parallel copy, so core[] is byte-identical to Serial's output for
// every thread count and schedule (the fixpoint is unique).
//
// Containment contract of ParallelCtx: worker panics surface as a
// *par.PanicError, a cancelled ctx aborts between rounds.
func HIndexCtx(ctx context.Context, g *graph.Graph, threads int) ([]int32, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := obs.StartSpan("coredecomp.hindex")
	defer sp.End()
	n := g.NumVertices()
	core := make([]int32, n)
	if n == 0 {
		return core, ctx.Err()
	}
	p := par.Threads(threads)
	h := make([]atomic.Int32, n)
	// inNext[v] dedupes worklist membership: a vertex is appended to the
	// next worklist only by the worker whose CAS flips it false->true,
	// so each worklist holds every vertex at most once and the shared
	// arrays of capacity n never overrun. The invariant "v is on an
	// unprocessed worklist slot => inNext[v] is true" starts true (all
	// vertices seed the first worklist) and is preserved: processing v
	// clears the bit, and every append sets it.
	inNext := make([]atomic.Bool, n)
	curr := make([]int32, n)
	next := make([]int32, n)
	err := par.ForErr(ctx, p, p, func(tlo, thi int) error {
		faultinject.Maybe("coredecomp.hindex.init")
		for t := tlo; t < thi; t++ {
			lo, hi := t*n/p, (t+1)*n/p
			for v := lo; v < hi; v++ {
				h[v].Store(int32(g.Degree(int32(v))))
				inNext[v].Store(true)
				curr[v] = int32(v)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tail := int64(n)
	var nextTail atomic.Int64
	for round := int64(0); tail > 0; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rsp := obs.StartSpanArg("hindex.round", round)
		hindexStats.rounds.Inc()
		hindexStats.frontier.ObserveN(tail)
		nextTail.Store(0)
		cl, nx := curr, next
		err := par.ForChunkedErr(ctx, int(tail), peelWorkers(p, tail), hindexGrain, func(lo, hi int) error {
			faultinject.Maybe("coredecomp.hindex.step")
			var stage [peelBufCap]int32
			sn := 0
			// cnt is the counting scratch of the O(d) H-index: cnt[j]
			// counts neighbours with estimate (clamped to the current
			// value) exactly j. Grown lazily to the largest estimate seen
			// in this chunk; local to the chunk invocation, so concurrent
			// chunk calls never share it.
			var cnt []int32
			for i := lo; i < hi; i++ {
				v := cl[i]
				// Clear membership BEFORE reading neighbour estimates:
				// atomics are sequentially consistent, so a neighbour's
				// "store new estimate, then CAS v onto the worklist"
				// either lands its CAS before this clear (we erase the
				// re-add, but then our reads below are ordered after its
				// store and see the new estimate) or after it (the re-add
				// sticks and v is recomputed next round). Either way no
				// drop is ever missed.
				inNext[v].Store(false)
				old := h[v].Load()
				if old == 0 {
					continue // cannot decrease further
				}
				b := int(old)
				if b >= len(cnt) {
					cnt = make([]int32, b+1)
				} else {
					for j := 0; j <= b; j++ {
						cnt[j] = 0
					}
				}
				for _, u := range g.Neighbors(v) {
					x := h[u].Load()
					if x > old {
						x = old
					}
					cnt[x]++
				}
				nh := int32(0)
				sum := int32(0)
				for j := b; j >= 1; j-- {
					sum += cnt[j]
					if sum >= int32(j) {
						nh = int32(j)
						break
					}
				}
				if nh >= old {
					continue
				}
				h[v].Store(nh)
				// Only neighbours whose estimate exceeds the new value can
				// be affected by this drop: u's H-index counts neighbours
				// with estimate >= h(u), and v still counts there when
				// h(u) <= nh.
				for _, u := range g.Neighbors(v) {
					if h[u].Load() > nh && inNext[u].CompareAndSwap(false, true) {
						stage[sn] = u
						sn++
						if sn == len(stage) {
							flushFrontier(nx, &nextTail, stage[:sn])
							sn = 0
						}
					}
				}
			}
			if sn > 0 {
				flushFrontier(nx, &nextTail, stage[:sn])
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		curr, next = next, curr
		tail = nextTail.Load()
		rsp.End()
	}
	// Deterministic final pass: copy the (unique) fixpoint into core.
	err = par.ForErr(ctx, n, p, func(lo, hi int) error {
		for v := lo; v < hi; v++ {
			core[v] = h[v].Load()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return core, nil
}
