package coredecomp

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"hcd/internal/faultinject"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/par"
)

// kernelThreads is the thread sweep every equivalence test runs: the
// acceptance sweep of the kernel-selection experiment.
var kernelThreads = []int{1, 2, 4, 8}

func TestParseKernel(t *testing.T) {
	if k, err := ParseKernel(""); err != nil || k != DefaultKernel {
		t.Errorf(`ParseKernel("") = (%q, %v), want the default`, k, err)
	}
	for _, k := range Kernels() {
		got, err := ParseKernel(string(k))
		if err != nil || got != k {
			t.Errorf("ParseKernel(%q) = (%q, %v)", k, got, err)
		}
	}
	if _, err := ParseKernel("bogus"); err == nil {
		t.Error("ParseKernel accepted an unknown kernel")
	}
	if _, err := PeelCtx(context.Background(), pathGraph(3), 1, Kernel("bogus")); err == nil {
		t.Error("PeelCtx accepted an unknown kernel")
	}
}

// TestKernelsMatchSerialOrder checks the selection contract on a fixed
// graph zoo: every kernel × every thread count produces a core array
// byte-identical to SerialOrder's. One subtest per kernel so the CI
// kernel matrix can select a single kernel with -run.
func TestKernelsMatchSerialOrder(t *testing.T) {
	graphs := []*graph.Graph{
		gen.ErdosRenyi(500, 2500, 1),
		gen.BarabasiAlbert(400, 4, 2),
		gen.RMAT(9, 3000, 3),
		gen.Onion(5, 20, 2, 3, 2, 4),
		pathGraph(10),
		clique(8),
		graph.MustFromEdges(4, nil),
		graph.MustFromEdges(0, nil),
	}
	for _, k := range Kernels() {
		k := k
		t.Run(string(k), func(t *testing.T) {
			for i, g := range graphs {
				want, _ := SerialOrder(g)
				for _, threads := range kernelThreads {
					got, err := PeelCtx(context.Background(), g, threads, k)
					if err != nil {
						t.Fatalf("graph %d threads %d: %v", i, threads, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("graph %d threads %d: %s coreness differs from SerialOrder", i, threads, k)
					}
				}
			}
		})
	}
}

// TestKernelsMatchSerialOrderMultiWorker re-checks byte-identity with
// the adaptive fan-out forced wide: peelFanoutGrain drops to 8 so the
// concurrent peel paths (locked decrements, buffer flushes) run even on
// the small graph zoo, and GOMAXPROCS is raised so peelWorkers'
// hardware cap doesn't route the sub-rounds scalar on single-CPU
// machines. This is what gives the -race CI leg coverage of the
// multi-worker code paths.
func TestKernelsMatchSerialOrderMultiWorker(t *testing.T) {
	oldGrain := peelFanoutGrain
	peelFanoutGrain = 8
	oldProcs := runtime.GOMAXPROCS(4)
	defer func() {
		peelFanoutGrain = oldGrain
		runtime.GOMAXPROCS(oldProcs)
	}()
	graphs := []*graph.Graph{
		gen.ErdosRenyi(500, 2500, 11),
		gen.BarabasiAlbert(400, 4, 12),
		gen.RMAT(9, 3000, 13),
	}
	for i, g := range graphs {
		want, _ := SerialOrder(g)
		for _, k := range Kernels() {
			for _, threads := range kernelThreads {
				got, err := PeelCtx(context.Background(), g, threads, k)
				if err != nil {
					t.Fatalf("graph %d %s threads %d: %v", i, k, threads, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("graph %d %s threads %d: coreness differs from SerialOrder", i, k, threads)
				}
			}
		}
	}
}

// TestKernelsMatchSerialOrderProperty fuzzes the same contract over
// randomized multigraph edge lists (collapsed by MustFromEdges), all
// kernels × the full thread sweep per trial.
func TestKernelsMatchSerialOrderProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint16) bool {
		n := int(nRaw%150) + 1
		m := int(mRaw % 800)
		rng := rand.New(rand.NewSource(seed))
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		want, _ := SerialOrder(g)
		for _, k := range Kernels() {
			for _, threads := range kernelThreads {
				got, err := PeelCtx(context.Background(), g, threads, k)
				if err != nil || !reflect.DeepEqual(got, want) {
					t.Logf("kernel %s threads %d: err=%v", k, threads, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestKernelsMatchSerialOrderScale4 runs the equivalence contract on
// the scale-4 journal generators — the same graphs the kernel-selection
// experiment times — so the promoted default is proven correct on the
// inputs it was promoted on. Skipped under -short (the race CI leg runs
// the small-graph tests above instead).
func TestKernelsMatchSerialOrderScale4(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-4 generators are seconds-sized; skipped under -short")
	}
	graphs := map[string]*graph.Graph{
		"rmat17":  gen.RMAT(17, 1<<20, 41),
		"rmat18":  gen.RMAT(18, 1<<21, 42),
		"onion17": gen.Onion(16, 2048, 2, 1, 4, 43),
	}
	for name, g := range graphs {
		want, _ := SerialOrder(g)
		for _, k := range Kernels() {
			for _, threads := range kernelThreads {
				got, err := PeelCtx(context.Background(), g, threads, k)
				if err != nil {
					t.Fatalf("%s %s threads %d: %v", name, k, threads, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s %s threads %d: coreness differs from SerialOrder", name, k, threads)
				}
			}
		}
	}
}

// kernelSites maps each kernel to its fault-injection sites, pinning
// the site names the docs and HCD_FAULTS rules reference.
var kernelSites = map[Kernel][]string{
	KernelLevelSync: {"coredecomp.collect", "coredecomp.peel"},
	KernelBuffered:  {"coredecomp.buffered.collect", "coredecomp.buffered.peel"},
	KernelHIndex:    {"coredecomp.hindex.init", "coredecomp.hindex.step"},
}

// TestPeelCtxContainsInjectedPanics injects a panic into every site of
// every kernel and checks the shared containment contract: the fault
// surfaces as an error identifiable through errors.As, and no worker
// goroutine outlives the call.
func TestPeelCtxContainsInjectedPanics(t *testing.T) {
	defer faultinject.Disable()
	g := gen.ErdosRenyi(400, 1600, 7)
	for k, sites := range kernelSites {
		for _, site := range sites {
			if err := faultinject.Enable(site + ":panic:1"); err != nil {
				t.Fatal(err)
			}
			before := runtime.NumGoroutine()
			core, err := PeelCtx(context.Background(), g, 4, k)
			if core != nil || err == nil {
				t.Fatalf("%s/%s: PeelCtx = (%v, %v), want (nil, error)", k, site, core, err)
			}
			var f *faultinject.Fault
			if !errors.As(err, &f) || f.Site != site {
				t.Errorf("%s/%s: error %v does not unwrap to the injected fault", k, site, err)
			}
			var pe *par.PanicError
			if !errors.As(err, &pe) {
				t.Errorf("%s/%s: error %v is not a contained worker panic", k, site, err)
			}
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if got := runtime.NumGoroutine(); got > before {
				t.Errorf("%s/%s: goroutine leak: %d before, %d after", k, site, before, got)
			}
			faultinject.Disable()
		}
		// Disarmed, the same kernel must succeed again.
		core, err := PeelCtx(context.Background(), g, 4, k)
		if err != nil || core == nil {
			t.Fatalf("%s: disarmed rerun failed: %v", k, err)
		}
	}
}

// TestPeelCtxCancellation cancels each kernel mid-run (a delay rule
// holds a round open deterministically) and checks the context error
// propagates instead of the run completing.
func TestPeelCtxCancellation(t *testing.T) {
	defer faultinject.Disable()
	g := gen.ErdosRenyi(400, 1600, 8)
	for k, sites := range kernelSites {
		if err := faultinject.Enable(sites[0] + ":delay:1:300ms"); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		core, err := PeelCtx(ctx, g, 4, k)
		if core != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: PeelCtx = (%v, %v), want (nil, context.Canceled)", k, core, err)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Errorf("%s: cancelled peel still took %v", k, el)
		}
		cancel()
		faultinject.Disable()
	}
}

// TestRepanicPreservesCauseChain pins the PR 2 containment contract on
// the panicking wrappers (Parallel, Peel): the re-panicked value must
// stay a *par.PanicError whose cause chain still reaches the injected
// *faultinject.Fault through errors.Is/As.
func TestRepanicPreservesCauseChain(t *testing.T) {
	defer faultinject.Disable()
	g := gen.ErdosRenyi(200, 800, 9)
	cases := []struct {
		site string
		call func()
	}{
		{"coredecomp.peel", func() { Parallel(g, 4) }},
		{"coredecomp.buffered.peel", func() { Peel(g, 4, KernelBuffered) }},
		{"coredecomp.hindex.step", func() { Peel(g, 4, KernelHIndex) }},
	}
	for _, tc := range cases {
		if err := faultinject.Enable(tc.site + ":panic:1"); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: wrapper did not re-panic", tc.site)
				}
				pe, ok := r.(*par.PanicError)
				if !ok {
					t.Fatalf("%s: recovered %T, want *par.PanicError", tc.site, r)
				}
				var f *faultinject.Fault
				if !errors.As(pe, &f) || f.Site != tc.site {
					t.Errorf("%s: recovered panic does not unwrap to the injected fault: %v", tc.site, pe)
				}
			}()
			tc.call()
		}()
		faultinject.Disable()
	}
}

func BenchmarkBufferedCoreDecomp(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Peel(g, 0, KernelBuffered)
	}
}

func BenchmarkHIndexCoreDecomp(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Peel(g, 0, KernelHIndex)
	}
}
