// Package coredecomp computes k-core decompositions: the coreness c(v) of
// every vertex (the largest k such that v belongs to a k-core).
//
// A serial baseline and three parallel kernels are provided:
//
//   - Serial: the Batagelj–Zaversnik bin-sort peeling algorithm [19],
//     O(m) time, used as the input stage of the serial LCPS pipeline.
//   - KernelLevelSync (ParallelCtx): a PKC/ParK-style level-synchronous
//     peeling [20, 24]: level k processes (in parallel) every remaining
//     vertex whose degree has fallen to k, cascading atomic degree
//     decrements. O(n·kmax + m) work, the same bound as PKC.
//   - KernelBuffered (BufferedCtx): the level structure above, with
//     cascaded adoptions staged in per-worker buffers and published by
//     one fetch-and-add reservation per flush (MaxTruss Scan/SubLevel).
//   - KernelHIndex (HIndexCtx): barrier-free asynchronous local h-index
//     iteration to fixpoint (Sariyüce–Seshadhri–Pinar).
//
// Kernel selection goes through PeelCtx / Peel; every kernel returns
// core arrays byte-identical to Serial's for every thread count. See
// DESIGN.md "Peeling kernels" for the protocols and proofs.
//
// The package also implements the paper's Algorithm 1: the parallel
// computation of the vertex-rank permutation (Definition 4: order by
// coreness, ties by id) and the k-shell index Hk used throughout PHCD and
// PBKS.
package coredecomp

import (
	"context"
	"sync/atomic"

	"hcd/internal/faultinject"
	"hcd/internal/graph"
	"hcd/internal/obs"
	"hcd/internal/par"
)

// Serial computes the coreness of every vertex with the Batagelj–Zaversnik
// O(m) bin-sort peeling algorithm.
func Serial(g *graph.Graph) []int32 {
	core, _ := SerialOrder(g)
	return core
}

// SerialOrder is Serial but additionally returns the peeling order: the
// sequence in which Batagelj–Zaversnik removes the vertices. The order is
// a valid k-order (cores are non-decreasing along it, and every vertex's
// remaining degree at removal equals its coreness) — the starting state
// for order-based core maintenance.
func SerialOrder(g *graph.Graph) (core []int32, order []int32) {
	n := g.NumVertices()
	core = make([]int32, n)
	if n == 0 {
		return core, nil
	}
	deg := make([]int32, n)
	md := 0
	for v := 0; v < n; v++ {
		d := g.Degree(int32(v))
		deg[v] = int32(d)
		if d > md {
			md = d
		}
	}
	// bin[d] = start index in vert of vertices with current degree d.
	bin := make([]int32, md+2)
	for v := 0; v < n; v++ {
		bin[deg[v]+1]++
	}
	for d := 1; d <= md+1; d++ {
		bin[d] += bin[d-1]
	}
	vert := make([]int32, n) // vertices sorted by current degree
	pos := make([]int32, n)  // position of each vertex in vert
	cursor := make([]int32, md+1)
	copy(cursor, bin[:md+1])
	for v := 0; v < n; v++ {
		p := cursor[deg[v]]
		cursor[deg[v]]++
		vert[p] = int32(v)
		pos[v] = p
	}
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		for _, u := range g.Neighbors(v) {
			if deg[u] > deg[v] {
				// Move u to the front of its bin, then shrink its degree.
				du := deg[u]
				pu := pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					vert[pu], vert[pw] = w, u
					pos[u], pos[w] = pw, pu
				}
				bin[du]++
				deg[u]--
			}
		}
	}
	return core, vert
}

// Parallel computes coreness with PKC-style level-synchronous peeling
// using the given number of threads (0 = GOMAXPROCS). Thin wrapper over
// ParallelCtx; a contained worker panic re-raises on the calling
// goroutine as a *par.PanicError (pass-through when the kernel already
// produced one, so the worker's stack and cause chain survive the
// re-panic and errors.Is/As on a recovered value still reach e.g. an
// injected *faultinject.Fault).
func Parallel(g *graph.Graph, threads int) []int32 {
	core, err := ParallelCtx(context.Background(), g, threads)
	if err != nil {
		panic(par.AsPanicError(err))
	}
	return core
}

// ParallelCtx is Parallel with failure containment: worker panics surface
// as a *par.PanicError and a cancelled ctx aborts the peeling between
// levels (kmax levels, so cancellation latency is one level's work).
func ParallelCtx(ctx context.Context, g *graph.Graph, threads int) ([]int32, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := obs.StartSpan("coredecomp.parallel")
	defer sp.End()
	n := g.NumVertices()
	core := make([]int32, n)
	if n == 0 {
		return core, ctx.Err()
	}
	p := par.Threads(threads)
	deg := make([]atomic.Int32, n)
	for v := 0; v < n; v++ {
		deg[v].Store(int32(g.Degree(int32(v))))
	}
	var visited atomic.Int64
	frontiers := make([][]int32, p)
	// Active-list compaction (PKC's key optimisation): instead of
	// rescanning all n vertices at every level, each thread keeps the
	// shrinking list of vertices still above the current level, so the
	// total scan work is O(n + Σ_v c(v)) rather than O(n · kmax).
	actives := make([][]int32, p)
	err := par.ForErr(ctx, p, p, func(tlo, thi int) error {
		for t := tlo; t < thi; t++ {
			lo, hi := t*n/p, (t+1)*n/p
			buf := make([]int32, 0, hi-lo)
			for v := lo; v < hi; v++ {
				buf = append(buf, int32(v))
			}
			actives[t] = buf
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for level := int32(0); visited.Load() < int64(n); level++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// One trace span per level-synchronous round (a failed round's
		// span is simply dropped, never recorded).
		rsp := obs.StartSpanArg("peel.round", int64(level))
		// Phase 1 (with a trailing barrier): collect the frontier of
		// vertices whose degree equals `level` and compact the active
		// list. No decrements run during this phase, so each frontier
		// vertex is collected exactly once by the thread owning it.
		err := par.ForErr(ctx, p, p, func(tlo, thi int) error {
			faultinject.Maybe("coredecomp.collect")
			for t := tlo; t < thi; t++ {
				buf := frontiers[t][:0]
				act := actives[t]
				w := 0
				for _, v := range act {
					d := deg[v].Load()
					if d == level {
						buf = append(buf, v)
					} else if d > level {
						act[w] = v
						w++
					}
					// d < level: already processed at an earlier level via
					// a cascade; drop it from the active list.
				}
				actives[t] = act[:w]
				frontiers[t] = buf
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		size := int64(0)
		for t := range frontiers {
			size += int64(len(frontiers[t]))
		}
		levelsyncStats.rounds.Inc()
		levelsyncStats.frontier.ObserveN(size)
		// Phase 2: process the frontier, cascading atomic decrements. A
		// vertex can now reach `level` only through a decrement, and only
		// the thread whose decrement lands exactly on `level` adopts it.
		err = par.ForErr(ctx, p, p, func(tlo, thi int) error {
			faultinject.Maybe("coredecomp.peel")
			for t := tlo; t < thi; t++ {
				buf := frontiers[t]
				processed := int64(len(buf))
				for len(buf) > 0 {
					v := buf[len(buf)-1]
					buf = buf[:len(buf)-1]
					core[v] = level
					for _, u := range g.Neighbors(v) {
						// Decrement deg[u], clamped at level.
						for {
							d := deg[u].Load()
							if d <= level {
								break
							}
							if deg[u].CompareAndSwap(d, d-1) {
								if d-1 == level {
									buf = append(buf, u)
									processed++
								}
								break
							}
						}
					}
				}
				frontiers[t] = buf
				visited.Add(processed)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rsp.End()
	}
	return core, nil
}

// KMax returns the graph degeneracy: the largest coreness value (0 for an
// empty slice).
func KMax(core []int32) int32 {
	var km int32
	for _, c := range core {
		if c > km {
			km = c
		}
	}
	return km
}

// Ranking is the output of Algorithm 1: the vertex-rank permutation and
// the k-shell index.
type Ranking struct {
	// Order lists all vertices sorted by ascending vertex rank
	// (coreness, then id): Order[r] is the vertex with rank r.
	Order []int32
	// Rank is the inverse permutation: Rank[v] = vertex rank of v.
	Rank []int32
	// ShellStart[k] is the index in Order where the k-shell begins;
	// the k-shell Hk is Order[ShellStart[k]:ShellStart[k+1]], sorted by id.
	// len(ShellStart) = kmax + 2.
	ShellStart []int64
	// KMax is the graph degeneracy.
	KMax int32
}

// Shell returns Hk, the vertices of coreness k, sorted by ascending id.
func (r *Ranking) Shell(k int32) []int32 {
	return r.Order[r.ShellStart[k]:r.ShellStart[k+1]]
}

// RankVertices implements Algorithm 1 as one par.GroupBy counting-sort
// scatter: grouping vertex ids by coreness (stably, so each shell stays
// sorted by id) and concatenating the groups in ascending k is exactly the
// vertex-rank order. O(n + kmax·p) work; the output is identical for every
// thread count.
func RankVertices(core []int32, threads int) *Ranking {
	n := len(core)
	kmax := KMax(core)
	r := &Ranking{
		Rank: make([]int32, n),
		KMax: kmax,
	}
	if n == 0 {
		r.Order = make([]int32, 0)
		r.ShellStart = make([]int64, kmax+2)
		return r
	}
	r.ShellStart, r.Order = par.GroupBy(n, int(kmax)+1, threads,
		func(i int) int32 { return core[i] })
	//hcdlint:allow panic-safety pure index scatter inverting a permutation just built above; no ctx in the infallible Ranking API and nothing here can panic short of memory corruption
	par.ForEach(n, threads, func(i int) {
		r.Rank[r.Order[i]] = int32(i)
	})
	return r
}
