package influence

import (
	"math/rand"
	"reflect"
	"testing"

	"hcd/internal/gen"
	"hcd/internal/graph"
)

func TestPathExample(t *testing.T) {
	// Path a-b-c with weights 1, 2, 3 and k = 1 (the PVLDB'15 intuition):
	// communities {a,b,c} (influence 1) and {b,c} (influence 2, leaf).
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	all, err := All(g, []float64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("got %d communities, want 2: %+v", len(all), all)
	}
	if !reflect.DeepEqual(all[0].Vertices, []int32{0, 1, 2}) || all[0].Influence != 1 || all[0].NonContained {
		t.Errorf("first community wrong: %+v", all[0])
	}
	if !reflect.DeepEqual(all[1].Vertices, []int32{1, 2}) || all[1].Influence != 2 || !all[1].NonContained {
		t.Errorf("second community wrong: %+v", all[1])
	}
}

func TestTwoCliquesTopR(t *testing.T) {
	// Two triangles with different weight ranges, k=2.
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
	})
	w := []float64{1, 2, 3, 10, 20, 30}
	top, err := TopR(g, w, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("want 2 leaves, got %d", len(top))
	}
	// Highest-influence leaf is the second triangle (influence 10).
	if !reflect.DeepEqual(top[0].Vertices, []int32{3, 4, 5}) || top[0].Influence != 10 {
		t.Errorf("top leaf wrong: %+v", top[0])
	}
	if !reflect.DeepEqual(top[1].Vertices, []int32{0, 1, 2}) || top[1].Influence != 1 {
		t.Errorf("second leaf wrong: %+v", top[1])
	}
}

func TestInfluencesNonDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.ErdosRenyi(100, 400, 4)
	w := make([]float64, g.NumVertices())
	for i := range w {
		w[i] = rng.Float64() * 100
	}
	for k := int32(1); k <= 4; k++ {
		all, err := All(g, w, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(all); i++ {
			if all[i].Influence < all[i-1].Influence {
				t.Fatalf("k=%d: influences decrease at %d", k, i)
			}
		}
		// Every community must satisfy the k-core constraint internally
		// and have the claimed influence.
		for _, c := range all {
			in := map[int32]bool{}
			for _, v := range c.Vertices {
				in[v] = true
			}
			minW := -1.0
			for _, v := range c.Vertices {
				d := 0
				for _, u := range g.Neighbors(v) {
					if in[u] {
						d++
					}
				}
				if int32(d) < k {
					t.Fatalf("k=%d: community member %d has internal degree %d", k, v, d)
				}
				if minW < 0 || w[v] < minW {
					minW = w[v]
				}
			}
			if minW != c.Influence {
				t.Fatalf("k=%d: influence %v but min weight %v", k, c.Influence, minW)
			}
		}
	}
}

// bruteCommunities enumerates maximal influential communities on tiny
// graphs directly from the definition: every connected subgraph with min
// degree >= k such that no strictly larger one has influence >= its own.
func bruteCommunities(g *graph.Graph, w []float64, k int32) []Community {
	n := g.NumVertices()
	type cand struct {
		mask int
		inf  float64
	}
	var cands []cand
	for mask := 1; mask < 1<<n; mask++ {
		if !validCommunity(g, mask, k) {
			continue
		}
		inf := 1e18
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 && w[v] < inf {
				inf = w[v]
			}
		}
		cands = append(cands, cand{mask, inf})
	}
	var out []Community
	for _, c := range cands {
		maximal := true
		for _, d := range cands {
			if d.mask != c.mask && d.mask&c.mask == c.mask && d.inf >= c.inf {
				maximal = false
				break
			}
		}
		if !maximal {
			continue
		}
		var verts []int32
		for v := 0; v < n; v++ {
			if c.mask&(1<<v) != 0 {
				verts = append(verts, int32(v))
			}
		}
		out = append(out, Community{Vertices: verts, Influence: c.inf})
	}
	return out
}

func validCommunity(g *graph.Graph, mask int, k int32) bool {
	n := g.NumVertices()
	var first int32 = -1
	count := 0
	for v := 0; v < n; v++ {
		if mask&(1<<v) == 0 {
			continue
		}
		count++
		if first < 0 {
			first = int32(v)
		}
		d := int32(0)
		for _, u := range g.Neighbors(int32(v)) {
			if mask&(1<<u) != 0 {
				d++
			}
		}
		if d < k {
			return false
		}
	}
	if count == 0 {
		return false
	}
	// Connectivity.
	seen := map[int32]bool{first: true}
	queue := []int32{first}
	reached := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		reached++
		for _, u := range g.Neighbors(v) {
			if mask&(1<<u) != 0 && !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return reached == count
}

func TestAllMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(6)
		m := rng.Intn(2 * n)
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		w := make([]float64, n)
		perm := rng.Perm(n) // distinct weights keep maximality unambiguous
		for i, p := range perm {
			w[i] = float64(p + 1)
		}
		k := int32(1 + rng.Intn(3))
		got, err := All(g, w, k)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteCommunities(g, w, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d (k=%d): %d communities, brute force %d\n got: %+v\nwant: %+v",
				trial, k, len(got), len(want), got, want)
		}
		// Match by influence (distinct weights make it a unique key).
		byInf := map[float64][]int32{}
		for _, c := range want {
			byInf[c.Influence] = c.Vertices
		}
		for _, c := range got {
			wv, ok := byInf[c.Influence]
			if !ok || !reflect.DeepEqual(wv, c.Vertices) {
				t.Fatalf("trial %d (k=%d): community %+v not in brute force set", trial, k, c)
			}
		}
	}
}

func TestWeightLengthError(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}})
	if _, err := All(g, []float64{1}, 1); err == nil {
		t.Error("short weight slice accepted")
	}
}
