// Package influence implements influential community search (Li, Qin, Yu,
// Mao — PVLDB 2015), the application §VII cites as using an HCD-like index
// (ICP-Index): given per-vertex weights, a k-influential community is a
// connected subgraph with minimum internal degree k that is maximal for
// its influence, where influence f(H) = min weight over H's members.
//
// The implementation is the classical peeling ("online") algorithm: start
// from the k-core set and repeatedly delete the globally minimum-weight
// vertex, cascading the min-degree-k constraint. The component containing
// the minimum-weight vertex just before its deletion is exactly one
// influential community; recorded influences are non-decreasing, so the
// top-r communities are the last r recorded. A community whose deletion
// dissolves its whole component contains no smaller community and is
// "non-contained" — the non-redundant answers [11] reports.
package influence

import (
	"container/heap"
	"fmt"
	"sort"

	"hcd/internal/graph"
)

// Community is one k-influential community.
type Community struct {
	// Vertices of the community, ascending.
	Vertices []int32
	// Influence is the minimum weight over Vertices.
	Influence float64
	// NonContained reports that no smaller k-influential community lies
	// inside this one.
	NonContained bool
}

// All enumerates every k-influential community of g under the given
// weights, in non-decreasing influence order. O(n·(n+m)) — the PVLDB'15
// online algorithm; fine for the scales this repository targets.
func All(g *graph.Graph, weights []float64, k int32) ([]Community, error) {
	n := g.NumVertices()
	if len(weights) != n {
		return nil, fmt.Errorf("influence: %d weights for %d vertices", len(weights), n)
	}
	alive := make([]bool, n)
	deg := make([]int32, n)
	// Initialise to the k-core set: peel everything below degree k.
	var peel []int32
	for v := 0; v < n; v++ {
		alive[v] = true
		deg[v] = int32(g.Degree(int32(v)))
	}
	for v := int32(0); v < int32(n); v++ {
		if deg[v] < k {
			alive[v] = false
			peel = append(peel, v)
		}
	}
	cascade := func(seed []int32) []int32 {
		var removed []int32
		for len(seed) > 0 {
			v := seed[len(seed)-1]
			seed = seed[:len(seed)-1]
			removed = append(removed, v)
			for _, u := range g.Neighbors(v) {
				if alive[u] {
					deg[u]--
					if deg[u] < k {
						alive[u] = false
						seed = append(seed, u)
					}
				}
			}
		}
		return removed
	}
	cascade(peel)

	// Min-weight heap over the surviving vertices (ties by id for
	// determinism).
	h := &weightHeap{weights: weights}
	for v := int32(0); v < int32(n); v++ {
		if alive[v] {
			h.items = append(h.items, v)
		}
	}
	heap.Init(h)

	mark := make([]int64, n)
	var epoch int64
	component := func(start int32) []int32 {
		epoch++
		queue := []int32{start}
		mark[start] = epoch
		var out []int32
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			out = append(out, v)
			for _, u := range g.Neighbors(v) {
				if alive[u] && mark[u] != epoch {
					mark[u] = epoch
					queue = append(queue, u)
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	var communities []Community
	for h.Len() > 0 {
		v := heap.Pop(h).(int32)
		if !alive[v] {
			continue
		}
		comp := component(v)
		alive[v] = false
		removed := cascade([]int32{v})
		// The community dissolved entirely iff the cascade took the whole
		// component with it.
		communities = append(communities, Community{
			Vertices:     comp,
			Influence:    weights[v],
			NonContained: len(removed) == len(comp),
		})
	}
	return communities, nil
}

// TopR returns the r highest-influence non-contained k-influential
// communities, highest influence first.
func TopR(g *graph.Graph, weights []float64, k int32, r int) ([]Community, error) {
	all, err := All(g, weights, k)
	if err != nil {
		return nil, err
	}
	var leaves []Community
	for _, c := range all {
		if c.NonContained {
			leaves = append(leaves, c)
		}
	}
	// Influences are produced in non-decreasing order; report the tail,
	// highest first.
	if len(leaves) > r {
		leaves = leaves[len(leaves)-r:]
	}
	for i, j := 0, len(leaves)-1; i < j; i, j = i+1, j-1 {
		leaves[i], leaves[j] = leaves[j], leaves[i]
	}
	return leaves, nil
}

type weightHeap struct {
	items   []int32
	weights []float64
}

func (h *weightHeap) Len() int { return len(h.items) }
func (h *weightHeap) Less(i, j int) bool {
	wi, wj := h.weights[h.items[i]], h.weights[h.items[j]]
	if wi != wj {
		return wi < wj
	}
	return h.items[i] < h.items[j]
}
func (h *weightHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *weightHeap) Push(x any)    { h.items = append(h.items, x.(int32)) }
func (h *weightHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
