//go:build !noobs

package obs

import (
	"context"
	"time"
)

// Request-scoped tracing: a correlation tag (typically a request ID)
// travels in the context, and the Ctx span constructors stamp it onto
// every span they open. The exported Chrome trace gives each tag its own
// track and attaches the tag as args.rid, so one request ID selects the
// full span tree of that request — admission, queue wait, and the search
// kernels it ran — across the shared ring buffer.
//
// The tag is carried by the obs package (not the caller) so kernel-level
// code deep below a request handler needs nothing but its context to
// participate; callers outside a request (hcdtool builds, benchmarks)
// pass untagged contexts and get exactly the old single-track behaviour.

// tagKey is the context key the correlation tag travels under.
type tagKey struct{}

// ContextWithTag returns a context carrying the correlation tag every
// span opened through the Ctx constructors will be stamped with. An
// empty tag returns ctx unchanged.
func ContextWithTag(ctx context.Context, tag string) context.Context {
	if tag == "" {
		return ctx
	}
	return context.WithValue(ctx, tagKey{}, tag)
}

// Tag returns the correlation tag carried by ctx, "" when none is set
// (or ctx is nil).
func Tag(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	if tag, ok := ctx.Value(tagKey{}).(string); ok {
		return tag
	}
	return ""
}

// StartSpanTag opens a span carrying an explicit correlation tag.
func StartSpanTag(name, tag string) *Span {
	return &Span{tr: defaultTracer, name: name, tag: tag, arg: argNone, start: time.Now()}
}

// StartSpanCtx is StartSpan stamped with the tag carried by ctx (plain
// StartSpan behaviour when ctx carries none).
func StartSpanCtx(ctx context.Context, name string) *Span {
	return &Span{tr: defaultTracer, name: name, tag: Tag(ctx), arg: argNone, start: time.Now()}
}

// StartSpanCtxArg is StartSpanArg stamped with the tag carried by ctx.
func StartSpanCtxArg(ctx context.Context, name string, arg int64) *Span {
	return &Span{tr: defaultTracer, name: name, tag: Tag(ctx), arg: arg, start: time.Now()}
}

// StartPhaseCtx is StartPhase stamped with the tag carried by ctx: the
// span arms the per-worker statistics exactly like StartPhase and is
// additionally attributed to the request in the exported trace.
func StartPhaseCtx(ctx context.Context, name string) *Span {
	s := &Span{tr: defaultTracer, name: name, tag: Tag(ctx), arg: argNone, agg: &workerAgg{}, start: time.Now()}
	s.prevAgg = curAgg.Swap(s.agg)
	return s
}
