//go:build !noobs

package obs

import (
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// The runtime-memory instruments: current readings, process-lifetime
// high-water marks, and the GC pause distribution. The gauges are
// updated by SampleMem (driven by the StartMemSampler goroutine in
// long-running processes); the high-water marks are monotone over the
// process lifetime, matching how an operator reads a "peak" gauge.
var (
	gMemHeapLive = NewGauge("hcd_mem_heap_live_bytes",
		"heap bytes live after the last completed GC")
	gMemHeapLivePeak = NewGauge("hcd_mem_heap_live_peak_bytes",
		"high-water mark of hcd_mem_heap_live_bytes")
	gMemHeapObjects = NewGauge("hcd_mem_heap_objects_bytes",
		"bytes currently occupied by heap objects, garbage included until sweep")
	gMemHeapObjectsPeak = NewGauge("hcd_mem_heap_objects_peak_bytes",
		"high-water mark of hcd_mem_heap_objects_bytes")
	gMemGoroutines = NewGauge("hcd_mem_goroutines",
		"goroutines at the last memory sample")
	gMemGoroutinesPeak = NewGauge("hcd_mem_goroutines_peak",
		"high-water mark of hcd_mem_goroutines")
	gMemGCCycles = NewGauge("hcd_mem_gc_cycles",
		"completed GC cycles at the last memory sample")
	hMemGCPause = NewHistogram("hcd_mem_gc_pause_ns",
		"individual GC stop-the-world pause durations")
)

// memPeaks holds the monotone high-water marks behind the *_peak gauges.
var memPeaks struct {
	heapLive    atomic.Int64
	heapObjects atomic.Int64
	goroutines  atomic.Int64
}

// memPauseWalk serialises the GC-pause bookkeeping of SampleMem: the
// last GC cycle whose pause was already observed into hMemGCPause.
var memPauseWalk struct {
	mu     sync.Mutex
	lastGC uint32
}

// memMetricNames are the runtime/metrics keys one SampleMem reads. The
// heap-live reading only moves at GC boundaries (it is the previous
// mark's live set); the objects reading moves with every allocation and
// is what the bench harness polls for peak-heap cells.
const (
	metricHeapLive    = "/gc/heap/live:bytes"
	metricHeapObjects = "/memory/classes/heap/objects:bytes"
	metricGoroutines  = "/sched/goroutines:goroutines"
)

// ReadMem captures the allocator's cumulative counters. One
// runtime.ReadMemStats call — microseconds, fine at phase boundaries,
// not for per-operation hot paths.
func ReadMem() MemPoint {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemPoint{
		AllocBytes:   ms.TotalAlloc,
		AllocObjects: ms.Mallocs,
		GCCycles:     ms.NumGC,
		GCPause:      time.Duration(ms.PauseTotalNs),
	}
}

// readUint64Metric reads one uint64 runtime/metrics value, 0 when the
// running runtime does not export it.
func readUint64Metric(name string) int64 {
	s := [1]metrics.Sample{{Name: name}}
	metrics.Read(s[:])
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(s[0].Value.Uint64())
}

// HeapLiveBytes reports the heap bytes live after the last completed GC
// — the stable "what does the resident data cost" number, updated at GC
// boundaries only.
func HeapLiveBytes() int64 { return readUint64Metric(metricHeapLive) }

// HeapObjectsBytes reports the bytes currently occupied by heap objects,
// garbage included until the next sweep — the instantaneous reading the
// bench harness polls to catch a measured operation's heap high-water
// mark.
func HeapObjectsBytes() int64 { return readUint64Metric(metricHeapObjects) }

// peakStore folds v into a monotone high-water mark and mirrors the
// result into its gauge.
func peakStore(peak *atomic.Int64, g *Gauge, v int64) {
	for {
		cur := peak.Load()
		if v <= cur {
			g.Set(cur)
			return
		}
		if peak.CompareAndSwap(cur, v) {
			g.Set(v)
			return
		}
	}
}

// SampleMem takes one memory sample: current heap-live / heap-objects /
// goroutine readings and their process-lifetime peaks into the
// hcd_mem_* gauges, plus every GC pause completed since the previous
// sample observed individually into the hcd_mem_gc_pause_ns histogram.
// Safe for concurrent use; the sampler goroutine calls it on a ticker
// and tests call it directly.
func SampleMem() {
	s := [3]metrics.Sample{
		{Name: metricHeapLive},
		{Name: metricHeapObjects},
		{Name: metricGoroutines},
	}
	metrics.Read(s[:])
	read := func(i int) int64 {
		if s[i].Value.Kind() != metrics.KindUint64 {
			return 0
		}
		return int64(s[i].Value.Uint64())
	}
	live, objects, goroutines := read(0), read(1), read(2)
	gMemHeapLive.Set(live)
	gMemHeapObjects.Set(objects)
	gMemGoroutines.Set(goroutines)
	peakStore(&memPeaks.heapLive, gMemHeapLivePeak, live)
	peakStore(&memPeaks.heapObjects, gMemHeapObjectsPeak, objects)
	peakStore(&memPeaks.goroutines, gMemGoroutinesPeak, goroutines)

	// GC pauses: walk the PauseNs circular buffer from the last observed
	// cycle to the current one, so each pause lands in the histogram
	// exactly once. A sampler outrun by more than 256 cycles observes the
	// newest 256 — the buffer holds no more.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gMemGCCycles.Set(int64(ms.NumGC))
	memPauseWalk.mu.Lock()
	from := memPauseWalk.lastGC + 1
	if ms.NumGC > 255 && from < ms.NumGC-255 {
		from = ms.NumGC - 255
	}
	for i := from; i <= ms.NumGC; i++ {
		hMemGCPause.Observe(time.Duration(ms.PauseNs[(i+255)%256]))
	}
	if ms.NumGC > memPauseWalk.lastGC {
		memPauseWalk.lastGC = ms.NumGC
	}
	memPauseWalk.mu.Unlock()
}

// StartMemSampler starts the background memory sampler: SampleMem on a
// ticker at the given interval (DefaultMemSampleInterval when
// non-positive). The returned stop function halts the sampler and is
// idempotent. One final sample is taken on stop, so short-lived
// processes record their peaks even when they never lived a full tick.
func StartMemSampler(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultMemSampleInterval
	}
	SampleMem() // seed the gauges so scrapes before the first tick see data
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				SampleMem()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-exited
			SampleMem()
		})
	}
}
