//go:build !noobs

package obs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hcd/internal/obs"
	"hcd/internal/par"
)

// TestCounterConcurrent hammers one counter from par.For workers; the
// total must be exact (the -race build also proves the hot path clean).
func TestCounterConcurrent(t *testing.T) {
	c := obs.NewCounter("test_counter_concurrent_total", "test")
	before := c.Value()
	const n, perItem = 10000, 3
	par.ForEach(n, 8, func(int) {
		c.Inc()
		c.Add(perItem - 1)
	})
	if got := c.Value() - before; got != n*perItem {
		t.Errorf("counter delta = %d, want %d", got, n*perItem)
	}
}

// TestGauge checks Set/Add and that registration is idempotent.
func TestGauge(t *testing.T) {
	g := obs.NewGauge("test_gauge", "test")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
	if g2 := obs.NewGauge("test_gauge", "other help"); g2 != g {
		t.Error("re-registration returned a different gauge")
	}
}

// TestHistogramConcurrent observes durations from par.For workers and
// checks count, sum, and the cumulative bucket invariant via Snapshot.
func TestHistogramConcurrent(t *testing.T) {
	h := obs.NewHistogram("test_histogram_seconds", "test")
	base := h.Count()
	const n = 4096
	par.ForEach(n, 8, func(i int) {
		h.Observe(time.Duration(i) * time.Microsecond)
	})
	if got := h.Count() - base; got != n {
		t.Errorf("histogram count delta = %d, want %d", got, n)
	}
	if h.Sum() <= 0 {
		t.Errorf("histogram sum = %v, want > 0", h.Sum())
	}
	snap := obs.Snapshot()
	hs, ok := snap.Histograms["test_histogram_seconds"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	for i := 1; i < len(hs.BucketCounts); i++ {
		if hs.BucketCounts[i] < hs.BucketCounts[i-1] {
			t.Fatalf("bucket counts not cumulative at %d: %v", i, hs.BucketCounts)
		}
	}
	if last := hs.BucketCounts[len(hs.BucketCounts)-1]; last != hs.Count {
		t.Errorf("last cumulative bucket = %d, want count %d", last, hs.Count)
	}
}

// TestSpansConcurrent opens and closes spans from many par workers at
// once: the recorder must stay race-clean and count every span.
func TestSpansConcurrent(t *testing.T) {
	tr := obs.DefaultTracer()
	before := tr.SpanCount()
	const n = 2000
	par.ForEach(n, 8, func(i int) {
		obs.StartSpanArg("test.span", int64(i)).End()
	})
	if got := tr.SpanCount() - before; got != n {
		t.Errorf("span count delta = %d, want %d", got, n)
	}
}

// chromeTrace is the subset of the Chrome trace-event format the tests
// decode.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string           `json:"name"`
		Cat  string           `json:"cat"`
		Ph   string           `json:"ph"`
		Ts   float64          `json:"ts"`
		Dur  float64          `json:"dur"`
		Args map[string]int64 `json:"args"`
	} `json:"traceEvents"`
}

// TestWriteTraceJSON checks the export is valid Chrome trace JSON with
// the recorded span present, ordered by start time, args attached.
func TestWriteTraceJSON(t *testing.T) {
	obs.ResetTrace()
	sp := obs.StartSpan("test.outer")
	obs.StartSpanArg("test.inner", 42).End()
	sp.End()

	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(tr.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(tr.TraceEvents))
	}
	for i, ev := range tr.TraceEvents {
		if ev.Ph != "X" || ev.Cat != "hcd" {
			t.Errorf("event %d = %+v, want ph=X cat=hcd", i, ev)
		}
		if i > 0 && ev.Ts < tr.TraceEvents[i-1].Ts {
			t.Errorf("events out of start order at %d", i)
		}
	}
	// Outer opened first: it sorts first and must contain the inner.
	outer, inner := tr.TraceEvents[0], tr.TraceEvents[1]
	if outer.Name != "test.outer" || inner.Name != "test.inner" {
		t.Fatalf("order = %s, %s", outer.Name, inner.Name)
	}
	if inner.Ts+inner.Dur > outer.Ts+outer.Dur+1 { // 1µs slack for rounding
		t.Errorf("inner [%f,+%f] not contained in outer [%f,+%f]",
			inner.Ts, inner.Dur, outer.Ts, outer.Dur)
	}
	if inner.Args["k"] != 42 {
		t.Errorf("inner args = %v, want k=42", inner.Args)
	}
}

// TestPhaseWorkerStats arms a phase around parallel work and checks the
// worker statistics the par hooks feed in.
func TestPhaseWorkerStats(t *testing.T) {
	sp := obs.StartPhase("test.phase")
	err := par.ForChunkedErr(context.Background(), 256, 4, 16, func(lo, hi int) error {
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	d := sp.End()
	if err != nil {
		t.Fatal(err)
	}
	w := sp.WorkerStats()
	if w.Workers <= 0 {
		t.Fatalf("workers = %d, want > 0", w.Workers)
	}
	if w.Chunks < w.Workers {
		t.Errorf("chunks = %d < workers = %d", w.Chunks, w.Workers)
	}
	if w.Busy <= 0 || w.MaxBusy <= 0 || w.MaxBusy > w.Busy {
		t.Errorf("busy = %v, maxBusy = %v", w.Busy, w.MaxBusy)
	}
	if s := w.Skew(); s < 1 {
		t.Errorf("skew = %f, want >= 1", s)
	}
	if d <= 0 {
		t.Errorf("duration = %v, want > 0", d)
	}
}

// TestPhaseStacking checks an inner phase captures the workers while
// armed and its End restores the outer phase's aggregation.
func TestPhaseStacking(t *testing.T) {
	outer := obs.StartPhase("test.outer-phase")
	inner := obs.StartPhase("test.inner-phase")
	par.ForEach(64, 4, func(int) {})
	inner.End()
	par.ForEach(64, 4, func(int) {})
	outer.End()
	iw, ow := inner.WorkerStats(), outer.WorkerStats()
	if iw.Workers <= 0 {
		t.Errorf("inner workers = %d, want > 0", iw.Workers)
	}
	if ow.Workers <= 0 {
		t.Errorf("outer workers = %d, want > 0 (post-inner work)", ow.Workers)
	}
}

// TestWorkerHooksDisarmed checks the hooks are inert with no phase armed.
func TestWorkerHooksDisarmed(t *testing.T) {
	if mark := obs.WorkerStart(); !mark.IsZero() {
		t.Errorf("WorkerStart with no armed phase = %v, want zero", mark)
	}
	obs.WorkerEnd(time.Time{}, 1) // must not panic or record
}

// TestName checks the labelled-name assembly.
func TestName(t *testing.T) {
	if got := obs.Name("hcd_x_total"); got != "hcd_x_total" {
		t.Errorf("Name no labels = %q", got)
	}
	got := obs.Name("hcd_x_total", "site", "phcd.step2", "mode", "panic")
	want := `hcd_x_total{site="phcd.step2",mode="panic"}`
	if got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
}

// TestWritePrometheus checks the text exposition contains the TYPE
// headers, the values, and spliced histogram buckets.
func TestWritePrometheus(t *testing.T) {
	c := obs.NewCounter(obs.Name("test_promexpo_total", "site", "a"), "test")
	c.Add(5)
	h := obs.NewHistogram("test_promexpo_seconds", "test")
	h.Observe(3 * time.Millisecond)
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_promexpo_total counter",
		`test_promexpo_total{site="a"} 5`,
		"# TYPE test_promexpo_seconds histogram",
		`test_promexpo_seconds_bucket{le="+Inf"}`,
		"test_promexpo_seconds_sum",
		"test_promexpo_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHandlerEndpoints drives the debug handler over httptest: the
// index, /metrics, /trace, /debug/vars and the pprof index must answer.
func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()
	for path, want := range map[string]string{
		"/":             "/metrics",
		"/metrics":      "# TYPE",
		"/trace":        "traceEvents",
		"/debug/vars":   "hcd.obs",
		"/debug/pprof/": "profile",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("%s: body missing %q", path, want)
		}
	}
}
