//go:build !noobs

package obs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hcd/internal/obs"
	"hcd/internal/par"
)

// TestCounterConcurrent hammers one counter from par.For workers; the
// total must be exact (the -race build also proves the hot path clean).
func TestCounterConcurrent(t *testing.T) {
	c := obs.NewCounter("test_counter_concurrent_total", "test")
	before := c.Value()
	const n, perItem = 10000, 3
	par.ForEach(n, 8, func(int) {
		c.Inc()
		c.Add(perItem - 1)
	})
	if got := c.Value() - before; got != n*perItem {
		t.Errorf("counter delta = %d, want %d", got, n*perItem)
	}
}

// TestGauge checks Set/Add and that registration is idempotent.
func TestGauge(t *testing.T) {
	g := obs.NewGauge("test_gauge", "test")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
	if g2 := obs.NewGauge("test_gauge", "other help"); g2 != g {
		t.Error("re-registration returned a different gauge")
	}
}

// TestHistogramConcurrent observes durations from par.For workers and
// checks count, sum, and the cumulative bucket invariant via Snapshot.
func TestHistogramConcurrent(t *testing.T) {
	h := obs.NewHistogram("test_histogram_seconds", "test")
	base := h.Count()
	const n = 4096
	par.ForEach(n, 8, func(i int) {
		h.Observe(time.Duration(i) * time.Microsecond)
	})
	if got := h.Count() - base; got != n {
		t.Errorf("histogram count delta = %d, want %d", got, n)
	}
	if h.Sum() <= 0 {
		t.Errorf("histogram sum = %v, want > 0", h.Sum())
	}
	snap := obs.Snapshot()
	hs, ok := snap.Histograms["test_histogram_seconds"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	for i := 1; i < len(hs.BucketCounts); i++ {
		if hs.BucketCounts[i] < hs.BucketCounts[i-1] {
			t.Fatalf("bucket counts not cumulative at %d: %v", i, hs.BucketCounts)
		}
	}
	if last := hs.BucketCounts[len(hs.BucketCounts)-1]; last != hs.Count {
		t.Errorf("last cumulative bucket = %d, want count %d", last, hs.Count)
	}
}

// TestHistogramQuantile checks the interpolated quantile estimator:
// ordering, bucket-resolution accuracy, and the edge cases (empty
// histogram, q clamping, +Inf overflow clamping).
func TestHistogramQuantile(t *testing.T) {
	h := obs.NewHistogram("test_quantile_seconds", "test")
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// 1000 observations spread uniformly over [1ms, 2ms): the median
	// must land inside a bucket containing 1.5ms, i.e. within the 2x
	// bucket-resolution bound of the truth.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond + time.Duration(i)*time.Microsecond)
	}
	p50 := h.Quantile(0.5)
	if p50 < 750*time.Microsecond || p50 > 3*time.Millisecond {
		t.Errorf("p50 = %v, want within bucket resolution of 1.5ms", p50)
	}
	for _, qs := range [][2]float64{{0.1, 0.5}, {0.5, 0.9}, {0.9, 1.0}} {
		if a, b := h.Quantile(qs[0]), h.Quantile(qs[1]); a > b {
			t.Errorf("quantiles not monotone: q%.1f=%v > q%.1f=%v", qs[0], a, qs[1], b)
		}
	}
	if lo, hi := h.Quantile(-1), h.Quantile(2); lo > hi {
		t.Errorf("clamped quantiles inverted: %v > %v", lo, hi)
	}
	// An observation beyond the largest finite bound (~17.2s) lands in
	// the +Inf bucket and must clamp, not explode.
	h2 := obs.NewHistogram("test_quantile_overflow_seconds", "test")
	h2.Observe(time.Hour)
	if got := h2.Quantile(0.99); got <= 0 || got > 20*time.Second {
		t.Errorf("overflow quantile = %v, want clamped to the largest finite bound", got)
	}
}

// TestHistogramMerge checks Merge is bucket-wise addition and that
// merged quantiles see both inputs.
func TestHistogramMerge(t *testing.T) {
	a := obs.NewHistogram("test_merge_a_seconds", "test")
	b := obs.NewHistogram("test_merge_b_seconds", "test")
	for i := 0; i < 100; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	a.Merge(nil) // must be a no-op
	a.Merge(a)   // self-merge must be a no-op, not a double-count
	if a.Count() != 100 {
		t.Fatalf("self-merge changed count: %d", a.Count())
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Errorf("merged count = %d, want 200", a.Count())
	}
	wantSum := 100*time.Millisecond + 100*time.Second
	if a.Sum() != wantSum {
		t.Errorf("merged sum = %v, want %v", a.Sum(), wantSum)
	}
	if b.Count() != 100 {
		t.Errorf("merge mutated its argument: count = %d", b.Count())
	}
	// Quantiles straddle the two populations: p25 near 1ms, p75 near 1s.
	if p := a.Quantile(0.25); p > 10*time.Millisecond {
		t.Errorf("merged p25 = %v, want near 1ms", p)
	}
	if p := a.Quantile(0.75); p < 100*time.Millisecond {
		t.Errorf("merged p75 = %v, want near 1s", p)
	}
}

// TestSpansConcurrent opens and closes spans from many par workers at
// once: the recorder must stay race-clean and count every span.
func TestSpansConcurrent(t *testing.T) {
	tr := obs.DefaultTracer()
	before := tr.SpanCount()
	const n = 2000
	par.ForEach(n, 8, func(i int) {
		obs.StartSpanArg("test.span", int64(i)).End()
	})
	if got := tr.SpanCount() - before; got != n {
		t.Errorf("span count delta = %d, want %d", got, n)
	}
}

// chromeTrace is the subset of the Chrome trace-event format the tests
// decode.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string           `json:"name"`
		Cat  string           `json:"cat"`
		Ph   string           `json:"ph"`
		Ts   float64          `json:"ts"`
		Dur  float64          `json:"dur"`
		Args map[string]int64 `json:"args"`
	} `json:"traceEvents"`
}

// TestWriteTraceJSON checks the export is valid Chrome trace JSON with
// the recorded span present, ordered by start time, args attached.
func TestWriteTraceJSON(t *testing.T) {
	obs.ResetTrace()
	sp := obs.StartSpan("test.outer")
	obs.StartSpanArg("test.inner", 42).End()
	sp.End()

	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(tr.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(tr.TraceEvents))
	}
	for i, ev := range tr.TraceEvents {
		if ev.Ph != "X" || ev.Cat != "hcd" {
			t.Errorf("event %d = %+v, want ph=X cat=hcd", i, ev)
		}
		if i > 0 && ev.Ts < tr.TraceEvents[i-1].Ts {
			t.Errorf("events out of start order at %d", i)
		}
	}
	// Outer opened first: it sorts first and must contain the inner.
	outer, inner := tr.TraceEvents[0], tr.TraceEvents[1]
	if outer.Name != "test.outer" || inner.Name != "test.inner" {
		t.Fatalf("order = %s, %s", outer.Name, inner.Name)
	}
	if inner.Ts+inner.Dur > outer.Ts+outer.Dur+1 { // 1µs slack for rounding
		t.Errorf("inner [%f,+%f] not contained in outer [%f,+%f]",
			inner.Ts, inner.Dur, outer.Ts, outer.Dur)
	}
	if inner.Args["k"] != 42 {
		t.Errorf("inner args = %v, want k=42", inner.Args)
	}
}

// TestPhaseWorkerStats arms a phase around parallel work and checks the
// worker statistics the par hooks feed in.
func TestPhaseWorkerStats(t *testing.T) {
	sp := obs.StartPhase("test.phase")
	err := par.ForChunkedErr(context.Background(), 256, 4, 16, func(lo, hi int) error {
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	d := sp.End()
	if err != nil {
		t.Fatal(err)
	}
	w := sp.WorkerStats()
	if w.Stints <= 0 {
		t.Fatalf("stints = %d, want > 0", w.Stints)
	}
	if w.Chunks < w.Stints {
		t.Errorf("chunks = %d < stints = %d", w.Chunks, w.Stints)
	}
	if w.MaxWorkers < 1 || w.MaxWorkers > w.Stints {
		t.Errorf("max workers = %d, want in [1, %d]", w.MaxWorkers, w.Stints)
	}
	if w.Busy <= 0 || w.MaxBusy <= 0 || w.MaxBusy > w.Busy {
		t.Errorf("busy = %v, maxBusy = %v", w.Busy, w.MaxBusy)
	}
	if s := w.Skew(); s < 1 {
		t.Errorf("skew = %f, want >= 1", s)
	}
	if d <= 0 {
		t.Errorf("duration = %v, want > 0", d)
	}
}

// TestPhaseStacking checks an inner phase captures the workers while
// armed and its End restores the outer phase's aggregation.
func TestPhaseStacking(t *testing.T) {
	outer := obs.StartPhase("test.outer-phase")
	inner := obs.StartPhase("test.inner-phase")
	par.ForEach(64, 4, func(int) {})
	inner.End()
	par.ForEach(64, 4, func(int) {})
	outer.End()
	iw, ow := inner.WorkerStats(), outer.WorkerStats()
	if iw.Stints <= 0 {
		t.Errorf("inner stints = %d, want > 0", iw.Stints)
	}
	if ow.Stints <= 0 {
		t.Errorf("outer stints = %d, want > 0 (post-inner work)", ow.Stints)
	}
}

// TestWorkerHooksDisarmed checks the hooks are inert with no phase armed.
func TestWorkerHooksDisarmed(t *testing.T) {
	if mark := obs.WorkerStart(); !mark.IsZero() {
		t.Errorf("WorkerStart with no armed phase = %v, want zero", mark)
	}
	obs.WorkerEnd(time.Time{}, 1) // must not panic or record
}

// TestName checks the labelled-name assembly.
func TestName(t *testing.T) {
	if got := obs.Name("hcd_x_total"); got != "hcd_x_total" {
		t.Errorf("Name no labels = %q", got)
	}
	got := obs.Name("hcd_x_total", "site", "phcd.step2", "mode", "panic")
	want := `hcd_x_total{site="phcd.step2",mode="panic"}`
	if got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
}

// TestWritePrometheus checks the text exposition contains the TYPE
// headers, the values, and spliced histogram buckets.
func TestWritePrometheus(t *testing.T) {
	c := obs.NewCounter(obs.Name("test_promexpo_total", "site", "a"), "test")
	c.Add(5)
	h := obs.NewHistogram("test_promexpo_seconds", "test")
	h.Observe(3 * time.Millisecond)
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_promexpo_total counter",
		`test_promexpo_total{site="a"} 5`,
		"# TYPE test_promexpo_seconds histogram",
		`test_promexpo_seconds_bucket{le="+Inf"}`,
		"test_promexpo_seconds_sum",
		"test_promexpo_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHandlerEndpoints drives the debug handler over httptest: the
// index, /metrics, /trace, /debug/vars and the pprof index must answer.
func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()
	for path, want := range map[string]string{
		"/":             "/metrics",
		"/metrics":      "# TYPE",
		"/trace":        "traceEvents",
		"/debug/vars":   "hcd.obs",
		"/debug/pprof/": "profile",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("%s: body missing %q", path, want)
		}
	}
}
