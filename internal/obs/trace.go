//go:build !noobs

package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// spanRecord is one completed span in the ring buffer. Times are
// nanoseconds relative to the tracer's epoch.
type spanRecord struct {
	name  string
	tag   string // optional correlation tag (e.g. a request ID); "" when absent
	arg   int64  // optional argument (e.g. the level k); argNone when absent
	start int64
	dur   int64
}

const argNone = int64(-1 << 62)

// Tracer records completed spans into a fixed-capacity ring buffer: the
// newest spans win, old ones are overwritten, and recording never
// allocates after construction. Safe for concurrent use.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	buf     []spanRecord
	next    int
	count   uint64 // total spans ever recorded (wrapped ones included)
	dropped uint64 // spans overwritten before they could be exported
}

// traceDropped makes ring-buffer truncation observable: every span
// overwritten before export increments it (across all tracers in the
// process), so a truncated -trace export is visible in /metrics instead
// of silently missing history.
var traceDropped = NewCounter("hcd_trace_dropped_total",
	"spans overwritten in a trace ring buffer before they could be exported")

// NewTracer returns a tracer holding up to capacity completed spans
// (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{epoch: time.Now(), buf: make([]spanRecord, 0, capacity)}
}

// defaultTracer receives every span opened through the package-level
// entry points. 32k spans ≈ a few thousand PHCD levels of history.
var defaultTracer = NewTracer(1 << 15)

// DefaultTracer returns the package-level tracer the pipeline records to.
func DefaultTracer() *Tracer { return defaultTracer }

// record appends one completed span, overwriting the oldest when full.
func (t *Tracer) record(r spanRecord) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, r)
	} else {
		t.buf[t.next] = r
		t.next++
		if t.next == len(t.buf) {
			t.next = 0
		}
		t.dropped++
		traceDropped.Inc()
	}
	t.count++
	t.mu.Unlock()
}

// Reset drops every recorded span (the capacity is kept). For tests and
// for tools that want a trace scoped to one command. The dropped count
// resets with the buffer; the hcd_trace_dropped_total counter does not.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.next = 0
	t.count = 0
	t.dropped = 0
	t.mu.Unlock()
}

// Dropped returns how many recorded spans have been overwritten in the
// ring before export — nonzero means WriteTrace's output is truncated
// history, not the whole run.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanCount returns the number of spans ever recorded, including any
// that have been overwritten in the ring.
func (t *Tracer) SpanCount() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// snapshot copies the recorded spans out in start-time order.
func (t *Tracer) snapshot() []spanRecord {
	t.mu.Lock()
	out := make([]spanRecord, len(t.buf))
	copy(out, t.buf)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out
}

// WriteTrace serialises the recorded spans as Chrome trace-event JSON
// ("X" complete events, microsecond timestamps), loadable directly in
// chrome://tracing or https://ui.perfetto.dev.
//
// Untagged spans (the build/search pipeline) share track 1. Tagged spans
// — request-scoped spans opened through StartSpanCtx/StartSpanTag — get
// one track per tag in first-appearance order, so every request renders
// as its own lane with the tag exported as args.rid; a single request ID
// therefore selects the complete span tree of that request.
func (t *Tracer) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	lanes := map[string]int{}
	for i, r := range t.snapshot() {
		if i > 0 {
			bw.WriteByte(',')
		}
		tid := 1
		if r.tag != "" {
			var ok bool
			if tid, ok = lanes[r.tag]; !ok {
				tid = 2 + len(lanes)
				lanes[r.tag] = tid
			}
		}
		fmt.Fprintf(bw, "\n{\"name\":%q,\"cat\":\"hcd\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f",
			r.name, tid, float64(r.start)/1e3, float64(r.dur)/1e3)
		switch {
		case r.tag != "" && r.arg != argNone:
			fmt.Fprintf(bw, ",\"args\":{\"k\":%d,\"rid\":%q}", r.arg, r.tag)
		case r.tag != "":
			fmt.Fprintf(bw, ",\"args\":{\"rid\":%q}", r.tag)
		case r.arg != argNone:
			fmt.Fprintf(bw, ",\"args\":{\"k\":%d}", r.arg)
		}
		bw.WriteByte('}')
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}

// WriteTrace exports the default tracer's spans (see Tracer.WriteTrace).
func WriteTrace(w io.Writer) error { return defaultTracer.WriteTrace(w) }

// ResetTrace clears the default tracer.
func ResetTrace() { defaultTracer.Reset() }

// workerAgg accumulates WorkerStats for the currently armed phase.
type workerAgg struct {
	busy      atomic.Int64
	maxBusy   atomic.Int64
	stints    atomic.Int64
	chunks    atomic.Int64
	active    atomic.Int64 // stints currently running
	maxActive atomic.Int64 // high-water mark of active
}

func (a *workerAgg) stats() WorkerStats {
	return WorkerStats{
		Stints:     a.stints.Load(),
		MaxWorkers: a.maxActive.Load(),
		Chunks:     a.chunks.Load(),
		Busy:       time.Duration(a.busy.Load()),
		MaxBusy:    time.Duration(a.maxBusy.Load()),
	}
}

// curAgg is the armed phase's aggregation; nil disarms the worker hooks.
var curAgg atomic.Pointer[workerAgg]

// Span is one open interval of work. Open it with StartSpan /
// StartSpanArg / StartPhase and close it with End; spans opened while
// another is running nest under it in the exported trace by time
// containment. The zero Span is invalid; End on an already-ended span is
// a no-op.
type Span struct {
	tr      *Tracer
	name    string
	tag     string
	arg     int64
	start   time.Time
	agg     *workerAgg // non-nil for phases
	prevAgg *workerAgg
}

// StartSpan opens a plain trace span on the default tracer.
func StartSpan(name string) *Span {
	return &Span{tr: defaultTracer, name: name, arg: argNone, start: time.Now()}
}

// StartSpanArg is StartSpan with one integer argument (e.g. the level k)
// attached to the exported trace event.
func StartSpanArg(name string, arg int64) *Span {
	return &Span{tr: defaultTracer, name: name, arg: arg, start: time.Now()}
}

// StartPhase opens a span that additionally arms per-worker statistics:
// until End, every par worker stint is folded into this span's
// WorkerStats. Phases stack — an inner StartPhase captures the workers
// until its End restores the outer phase.
func StartPhase(name string) *Span {
	s := &Span{tr: defaultTracer, name: name, arg: argNone, agg: &workerAgg{}, start: time.Now()}
	s.prevAgg = curAgg.Swap(s.agg)
	return s
}

// End closes the span, records it, and returns its duration. For phases
// it also disarms the worker hooks (restoring any outer phase).
func (s *Span) End() time.Duration {
	if s == nil || s.tr == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.agg != nil {
		curAgg.Store(s.prevAgg)
	}
	s.tr.record(spanRecord{
		name:  s.name,
		tag:   s.tag,
		arg:   s.arg,
		start: s.start.Sub(s.tr.epoch).Nanoseconds(),
		dur:   d.Nanoseconds(),
	})
	s.tr = nil
	return d
}

// WorkerStats returns the worker statistics gathered while the span was
// the armed phase (zero for plain spans). Valid during and after End.
func (s *Span) WorkerStats() WorkerStats {
	if s == nil || s.agg == nil {
		return WorkerStats{}
	}
	return s.agg.stats()
}

// WorkerStart opens one worker stint: par's primitives call it at worker
// entry and pass the returned mark to WorkerEnd. When no phase is armed
// it returns the zero time and costs one atomic load. An armed phase
// additionally tracks the stint in its concurrent-worker high-water
// mark.
func WorkerStart() time.Time {
	a := curAgg.Load()
	if a == nil {
		return time.Time{}
	}
	act := a.active.Add(1)
	raiseMax(&a.maxActive, act)
	return time.Now()
}

// WorkerEnd closes a worker stint opened by WorkerStart, folding its
// busy time and processed chunk count into the armed phase. A zero mark
// (no phase armed at stint start) is ignored. A phase swap between
// WorkerStart and WorkerEnd attributes the stint to the phase armed at
// its end — the same attribution blur the package comment documents for
// concurrent pipelines; counts never corrupt.
func WorkerEnd(mark time.Time, chunks int64) {
	if mark.IsZero() {
		return
	}
	a := curAgg.Load()
	if a == nil {
		return
	}
	a.active.Add(-1)
	busy := time.Since(mark).Nanoseconds()
	a.busy.Add(busy)
	a.stints.Add(1)
	a.chunks.Add(chunks)
	raiseMax(&a.maxBusy, busy)
}

// raiseMax lifts *m to at least v (CAS loop; monotone).
func raiseMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if cur >= v {
			return
		}
		if m.CompareAndSwap(cur, v) {
			return
		}
	}
}
