//go:build !noobs

package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestRingOverwrite fills a small tracer past capacity: the lifetime
// count keeps growing while the buffer holds only the newest spans.
func TestRingOverwrite(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		tr.record(spanRecord{name: "s", arg: argNone, start: int64(i), dur: 1})
	}
	if tr.SpanCount() != 40 {
		t.Errorf("SpanCount = %d, want 40", tr.SpanCount())
	}
	snap := tr.snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot len = %d, want capacity 16", len(snap))
	}
	// Newest 16 spans survive: starts 24..39.
	for i, r := range snap {
		if want := int64(24 + i); r.start != want {
			t.Errorf("snapshot[%d].start = %d, want %d", i, r.start, want)
		}
	}
}

// TestTracerDropped checks ring-buffer truncation is counted: a tracer
// over capacity reports every overwritten span, the package counter
// mirrors it, and Reset clears the per-tracer count but not the
// process-lifetime counter.
func TestTracerDropped(t *testing.T) {
	tr := NewTracer(16)
	before := traceDropped.Value()
	for i := 0; i < 20; i++ {
		tr.record(spanRecord{name: "s", arg: argNone, start: int64(i), dur: 1})
	}
	if got := tr.Dropped(); got != 4 {
		t.Errorf("Dropped = %d, want 4", got)
	}
	if delta := traceDropped.Value() - before; delta != 4 {
		t.Errorf("hcd_trace_dropped_total delta = %d, want 4", delta)
	}
	tr.Reset()
	if tr.Dropped() != 0 {
		t.Errorf("Dropped after Reset = %d, want 0", tr.Dropped())
	}
	if delta := traceDropped.Value() - before; delta != 4 {
		t.Errorf("counter must survive Reset: delta = %d, want 4", delta)
	}
}

// TestMinimumCapacity checks the 16-span floor.
func TestMinimumCapacity(t *testing.T) {
	tr := NewTracer(1)
	for i := 0; i < 16; i++ {
		tr.record(spanRecord{name: "s", arg: argNone})
	}
	if got := len(tr.snapshot()); got != 16 {
		t.Errorf("capacity-1 tracer holds %d spans, want 16", got)
	}
}

// TestWriteTraceOmitsAbsentArgs checks argNone spans carry no args block.
func TestWriteTraceOmitsAbsentArgs(t *testing.T) {
	tr := NewTracer(16)
	tr.record(spanRecord{name: "noarg", arg: argNone, start: 0, dur: 5})
	tr.record(spanRecord{name: "witharg", arg: 7, start: 1, dur: 3})
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, `"args"`) != 1 {
		t.Errorf("want exactly one args block:\n%s", out)
	}
	if !strings.Contains(out, `"args":{"k":7}`) {
		t.Errorf("missing k=7 args:\n%s", out)
	}
}

// TestWriteTraceTagLanes checks tagged spans get one track per tag (in
// first-appearance order, starting at tid 2) with the tag exported as
// args.rid, while untagged spans stay on track 1.
func TestWriteTraceTagLanes(t *testing.T) {
	tr := NewTracer(16)
	tr.record(spanRecord{name: "pipeline", arg: argNone, start: 0, dur: 5})
	tr.record(spanRecord{name: "serve.request", tag: "req-a", arg: argNone, start: 1, dur: 3})
	tr.record(spanRecord{name: "search", tag: "req-a", arg: 4, start: 2, dur: 1})
	tr.record(spanRecord{name: "serve.request", tag: "req-b", arg: argNone, start: 3, dur: 2})
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"tid":1`,                      // untagged pipeline span
		`"args":{"rid":"req-a"}`,       // tagged, no k
		`"args":{"k":4,"rid":"req-a"}`, // tagged with k
		`"args":{"rid":"req-b"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s:\n%s", want, out)
		}
	}
	if strings.Count(out, `"tid":2`) != 2 {
		t.Errorf("req-a spans must share track 2:\n%s", out)
	}
	if strings.Count(out, `"tid":3`) != 1 {
		t.Errorf("req-b must get track 3:\n%s", out)
	}
}

// TestReset drops the buffered spans and the lifetime count.
func TestReset(t *testing.T) {
	tr := NewTracer(16)
	tr.record(spanRecord{name: "s", arg: argNone})
	tr.Reset()
	if tr.SpanCount() != 0 || len(tr.snapshot()) != 0 {
		t.Errorf("after Reset: count=%d len=%d, want 0/0", tr.SpanCount(), len(tr.snapshot()))
	}
}

// TestSpanEndIdempotent checks nil and double End are safe no-ops.
func TestSpanEndIdempotent(t *testing.T) {
	var nilSpan *Span
	if d := nilSpan.End(); d != 0 {
		t.Errorf("nil End = %v, want 0", d)
	}
	sp := StartSpan("test.double-end")
	before := defaultTracer.SpanCount()
	sp.End()
	sp.End()
	if got := defaultTracer.SpanCount() - before; got != 1 {
		t.Errorf("double End recorded %d spans, want 1", got)
	}
}
