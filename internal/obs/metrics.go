//go:build !noobs

package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. Register once
// with NewCounter (package-level var), then Add/Inc on the hot path —
// one atomic add, no locks.
type Counter struct {
	v    atomic.Int64
	name string
	help string
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v    atomic.Int64
	name string
	help string
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets are the upper bounds (inclusive, nanoseconds) of the
// duration histogram: exponential from 1µs to ~17.2s, then +Inf.
var histBuckets = func() []int64 {
	b := make([]int64, 25)
	v := int64(1000) // 1µs
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is a fixed-bucket duration histogram (exponential bounds,
// 1µs..~17s, plus +Inf). Observing is a few atomic adds.
type Histogram struct {
	counts [26]atomic.Int64 // one per bound, plus the +Inf overflow
	sum    atomic.Int64     // nanoseconds
	n      atomic.Int64
	name   string
	help   string
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveN(d.Nanoseconds()) }

// ObserveN records one raw integer observation — e.g. a frontier size —
// binned against the same exponential bounds as durations (everything
// below the first bound shares one bucket, so Count and Sum are the
// precise statistics for small values; the buckets resolve the tail).
func (h *Histogram) ObserveN(v int64) {
	i := sort.Search(len(histBuckets), func(i int) bool { return histBuckets[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the summed observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts
// by linear interpolation inside the bucket the rank falls into —
// accurate to bucket resolution (bounds double, so the estimate is
// within 2x of the true value). Observations in the +Inf overflow
// bucket clamp to the largest finite bound. Returns 0 when nothing has
// been observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c > 0 && float64(cum+c) >= rank {
			if i >= len(histBuckets) {
				// +Inf overflow: clamp to the largest finite bound.
				return time.Duration(histBuckets[len(histBuckets)-1])
			}
			lo := int64(0)
			if i > 0 {
				lo = histBuckets[i-1]
			}
			hi := histBuckets[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += c
	}
	return time.Duration(histBuckets[len(histBuckets)-1])
}

// Merge folds other's observations into h (bucket-wise addition; both
// histograms share the package's fixed bucket bounds). other is read
// atomically bucket by bucket, so merging a live histogram is safe but
// yields a possibly-torn point-in-time view — merge quiesced histograms
// when exactness matters.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other == h {
		return
	}
	for i := range h.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.sum.Add(other.sum.Load())
	h.n.Add(other.n.Load())
}

// Enabled reports whether observability is compiled in (false under the
// noobs build tag) — the build-flavour bit run manifests record so two
// benchmark reports are comparable or provably not.
func Enabled() bool { return true }

// registry holds every registered metric by full name. Registration
// takes a lock; hot-path updates never touch it.
var registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Name assembles a metric name with label pairs in Prometheus form:
// Name("hcd_fault_fired_total", "site", "phcd.step2") returns
// `hcd_fault_fired_total{site="phcd.step2"}`. Pairs must come in
// (key, value) order.
func Name(base string, labelPairs ...string) string {
	if len(labelPairs) == 0 {
		return base
	}
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('{')
	for i := 0; i+1 < len(labelPairs); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", labelPairs[i], labelPairs[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// NewCounter registers (or retrieves — registration is idempotent, so
// package-level and per-site dynamic registration can share names) the
// counter with the given full name.
func NewCounter(name, help string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.counters == nil {
		registry.counters = map[string]*Counter{}
	}
	if c, ok := registry.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	registry.counters[name] = c
	return c
}

// NewGauge registers (or retrieves) the gauge with the given full name.
func NewGauge(name, help string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.gauges == nil {
		registry.gauges = map[string]*Gauge{}
	}
	if g, ok := registry.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	registry.gauges[name] = g
	return g
}

// NewHistogram registers (or retrieves) the duration histogram with the
// given full name.
func NewHistogram(name, help string) *Histogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.histograms == nil {
		registry.histograms = map[string]*Histogram{}
	}
	if h, ok := registry.histograms[name]; ok {
		return h
	}
	h := &Histogram{name: name, help: help}
	registry.histograms[name] = h
	return h
}
