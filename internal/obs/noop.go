//go:build noobs

// Stub implementation selected by the `noobs` build tag, mirroring
// internal/faultinject's `nofaults` pattern: every span, metric, and
// worker hook compiles to an empty function the toolchain can inline
// away, so a noobs binary carries zero telemetry overhead (not even the
// atomic load of the armed-phase gate). The exposition surface stays
// callable — it reports that observability is compiled out — so tools
// linking both paths need no build-tag conditionals of their own.
package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Tracer is the stub span recorder; it never stores anything.
type Tracer struct{}

// NewTracer returns the shared stub tracer.
func NewTracer(int) *Tracer { return sharedTracer }

// DefaultTracer returns the shared stub tracer.
func DefaultTracer() *Tracer { return sharedTracer }

var sharedTracer = &Tracer{}

// Reset is a no-op.
func (*Tracer) Reset() {}

// SpanCount always reports zero.
func (*Tracer) SpanCount() uint64 { return 0 }

// Dropped always reports zero.
func (*Tracer) Dropped() uint64 { return 0 }

// WriteTrace emits a valid, empty Chrome trace.
func (*Tracer) WriteTrace(w io.Writer) error {
	_, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n")
	return err
}

// WriteTrace emits a valid, empty Chrome trace.
func WriteTrace(w io.Writer) error { return sharedTracer.WriteTrace(w) }

// ResetTrace is a no-op.
func ResetTrace() {}

// Span is the stub span; all methods are no-ops.
type Span struct{}

var sharedSpan = &Span{}

// StartSpan returns the shared stub span.
func StartSpan(string) *Span { return sharedSpan }

// StartSpanArg returns the shared stub span.
func StartSpanArg(string, int64) *Span { return sharedSpan }

// StartPhase returns the shared stub span; no worker hooks are armed.
func StartPhase(string) *Span { return sharedSpan }

// ContextWithTag returns ctx unchanged: with tracing compiled out there
// is nothing for a correlation tag to stamp.
func ContextWithTag(ctx context.Context, _ string) context.Context { return ctx }

// Tag always reports the empty tag.
func Tag(context.Context) string { return "" }

// StartSpanTag returns the shared stub span.
func StartSpanTag(string, string) *Span { return sharedSpan }

// StartSpanCtx returns the shared stub span.
func StartSpanCtx(context.Context, string) *Span { return sharedSpan }

// StartSpanCtxArg returns the shared stub span.
func StartSpanCtxArg(context.Context, string, int64) *Span { return sharedSpan }

// StartPhaseCtx returns the shared stub span; no worker hooks are armed.
func StartPhaseCtx(context.Context, string) *Span { return sharedSpan }

// End reports a zero duration.
func (*Span) End() time.Duration { return 0 }

// WorkerStats reports zero statistics.
func (*Span) WorkerStats() WorkerStats { return WorkerStats{} }

// WorkerStart reports the zero mark, telling WorkerEnd to do nothing.
func WorkerStart() time.Time { return time.Time{} }

// WorkerEnd is an empty, inlinable no-op.
func WorkerEnd(time.Time, int64) {}

// Counter is the stub counter.
type Counter struct{}

// Gauge is the stub gauge.
type Gauge struct{}

// Histogram is the stub histogram.
type Histogram struct{}

var (
	sharedCounter   = &Counter{}
	sharedGauge     = &Gauge{}
	sharedHistogram = &Histogram{}
)

// Name assembles the same labelled-name string as the live build (kept
// functional so log messages stay identical across builds).
func Name(base string, labelPairs ...string) string {
	if len(labelPairs) == 0 {
		return base
	}
	out := base + "{"
	for i := 0; i+1 < len(labelPairs); i += 2 {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", labelPairs[i], labelPairs[i+1])
	}
	return out + "}"
}

// NewCounter returns the shared stub counter.
func NewCounter(string, string) *Counter { return sharedCounter }

// NewGauge returns the shared stub gauge.
func NewGauge(string, string) *Gauge { return sharedGauge }

// NewHistogram returns the shared stub histogram.
func NewHistogram(string, string) *Histogram { return sharedHistogram }

// Inc is a no-op.
func (*Counter) Inc() {}

// Add is a no-op.
func (*Counter) Add(int64) {}

// Value always reports zero.
func (*Counter) Value() int64 { return 0 }

// Set is a no-op.
func (*Gauge) Set(int64) {}

// Add is a no-op.
func (*Gauge) Add(int64) {}

// Value always reports zero.
func (*Gauge) Value() int64 { return 0 }

// Observe is a no-op.
func (*Histogram) Observe(time.Duration) {}

// ObserveN is a no-op.
func (*Histogram) ObserveN(int64) {}

// Count always reports zero.
func (*Histogram) Count() int64 { return 0 }

// Sum always reports zero.
func (*Histogram) Sum() time.Duration { return 0 }

// Quantile always reports zero.
func (*Histogram) Quantile(float64) time.Duration { return 0 }

// Merge is a no-op.
func (*Histogram) Merge(*Histogram) {}

// Enabled reports that observability is compiled out.
func Enabled() bool { return false }

// HistogramSnapshot mirrors the live build's type; always empty here.
type HistogramSnapshot struct {
	Count        int64   `json:"count"`
	SumNS        int64   `json:"sum_ns"`
	P50NS        int64   `json:"p50_ns"`
	P99NS        int64   `json:"p99_ns"`
	BucketNS     []int64 `json:"bucket_ns"`
	BucketCounts []int64 `json:"bucket_counts"`
}

// SnapshotData mirrors the live build's type; always empty here.
type SnapshotData struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      uint64                       `json:"spans"`
}

// Snapshot reports an empty snapshot.
func Snapshot() SnapshotData {
	return SnapshotData{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
}

// WritePrometheus emits a single comment noting telemetry is compiled
// out, which is a valid (empty) exposition document.
func WritePrometheus(w io.Writer) error {
	_, err := io.WriteString(w, "# observability compiled out (noobs build tag)\n")
	return err
}

// PublishExpvar is a no-op.
func PublishExpvar() {}

// Handler serves a stub that reports observability is compiled out.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		// A failed write to a departed HTTP client has no recovery.
		_, _ = fmt.Fprint(w, "observability compiled out (noobs build tag)\n")
	})
	return mux
}
