//go:build noobs

package obs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hcd/internal/obs"
)

// TestStubsAreInert checks the noobs build compiles the whole
// observability surface to no-ops that never record anything —
// mirroring internal/faultinject's nofaults stub test.
func TestStubsAreInert(t *testing.T) {
	sp := obs.StartPhase("test.phase")
	if mark := obs.WorkerStart(); !mark.IsZero() {
		t.Errorf("WorkerStart = %v, want zero", mark)
	}
	obs.WorkerEnd(time.Time{}, 3)
	if d := sp.End(); d != 0 {
		t.Errorf("Span.End = %v, want 0", d)
	}
	if w := sp.WorkerStats(); w != (obs.WorkerStats{}) {
		t.Errorf("WorkerStats = %+v, want zero", w)
	}
	if n := obs.DefaultTracer().SpanCount(); n != 0 {
		t.Errorf("SpanCount = %d, want 0", n)
	}

	ctx := context.Background()
	if got := obs.ContextWithTag(ctx, "rid-1"); got != ctx {
		t.Error("stub ContextWithTag must return ctx unchanged")
	}
	if got := obs.Tag(ctx); got != "" {
		t.Errorf("stub Tag = %q, want empty", got)
	}
	obs.StartSpanCtx(ctx, "test.ctxspan").End()
	obs.StartSpanCtxArg(ctx, "test.ctxspan.arg", 1).End()
	obs.StartPhaseCtx(ctx, "test.ctxphase").End()
	obs.StartSpanTag("test.tagspan", "rid-1").End()
	if n := obs.DefaultTracer().SpanCount(); n != 0 {
		t.Errorf("SpanCount after ctx spans = %d, want 0", n)
	}

	c := obs.NewCounter("test_total", "test")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Errorf("counter = %d, want 0", c.Value())
	}
	g := obs.NewGauge("test_gauge", "test")
	g.Set(9)
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	h := obs.NewHistogram("test_seconds", "test")
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("histogram = %d/%v, want 0/0", h.Count(), h.Sum())
	}
	h.Merge(obs.NewHistogram("test_other_seconds", "test"))
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("stub quantile = %v, want 0", q)
	}
	if d := obs.DefaultTracer().Dropped(); d != 0 {
		t.Errorf("stub Dropped = %d, want 0", d)
	}
	if obs.Enabled() {
		t.Error("Enabled must report false under noobs")
	}

	snap := obs.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 || snap.Spans != 0 {
		t.Errorf("snapshot = %+v, want empty", snap)
	}
}

// TestStubTraceIsValidJSON checks the stub still emits a loadable,
// empty Chrome trace.
func TestStubTraceIsValidJSON(t *testing.T) {
	obs.StartSpan("test.span").End()
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("stub trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(tr.TraceEvents) != 0 {
		t.Errorf("stub trace has %d events, want 0", len(tr.TraceEvents))
	}
}

// TestStubExposition checks Name stays functional and the exposition
// endpoints answer with their compiled-out notices.
func TestStubExposition(t *testing.T) {
	got := obs.Name("hcd_x_total", "site", "a")
	if want := `hcd_x_total{site="a"}`; got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "noobs") {
		t.Errorf("stub exposition = %q, want a noobs notice", buf.String())
	}
	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("stub handler status = %d", resp.StatusCode)
	}
	obs.PublishExpvar()
	obs.ResetTrace()
}
