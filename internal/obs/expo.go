//go:build !noobs

package obs

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
)

// HistogramSnapshot is one histogram's state at Snapshot time.
type HistogramSnapshot struct {
	// Count is the number of observations, SumNS their summed duration.
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	// P50NS and P99NS are bucket-interpolated latency quantiles
	// (Histogram.Quantile), precomputed so JSON consumers (/debug/vars,
	// hcdserve /stats) get tail latency without re-deriving it from the
	// cumulative buckets.
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`
	// BucketNS and BucketCounts are parallel: BucketCounts[i]
	// observations fell at or under BucketNS[i] nanoseconds (the last
	// entry is the +Inf overflow, BucketNS omits it). Cumulative.
	BucketNS     []int64 `json:"bucket_ns"`
	BucketCounts []int64 `json:"bucket_counts"`
}

// SnapshotData is a point-in-time copy of every registered metric, for
// programmatic access (and the expvar export).
type SnapshotData struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Spans is the default tracer's lifetime span count.
	Spans uint64 `json:"spans"`
}

// Snapshot copies every registered metric's current value.
func Snapshot() SnapshotData {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	s := SnapshotData{
		Counters:   make(map[string]int64, len(registry.counters)),
		Gauges:     make(map[string]int64, len(registry.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(registry.histograms)),
		Spans:      defaultTracer.SpanCount(),
	}
	for name, c := range registry.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range registry.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range registry.histograms {
		hs := HistogramSnapshot{
			Count:        h.Count(),
			SumNS:        h.Sum().Nanoseconds(),
			P50NS:        h.Quantile(0.50).Nanoseconds(),
			P99NS:        h.Quantile(0.99).Nanoseconds(),
			BucketNS:     histBuckets,
			BucketCounts: make([]int64, len(h.counts)),
		}
		var cum int64
		for i := range h.counts {
			cum += h.counts[i].Load()
			hs.BucketCounts[i] = cum
		}
		s.Histograms[name] = hs
	}
	return s
}

// family splits a full metric name into its family (the part before any
// label braces) and the label block (including braces, or "").
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// withLE splices an le label into a (possibly labelled) metric name.
func withLE(fam, labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("%s_bucket{le=%q}", fam, le)
	}
	return fmt.Sprintf("%s_bucket%s,le=%q}", fam, labels[:len(labels)-1], le)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (counters, gauges, and cumulative histograms with
// seconds-valued sums).
func WritePrometheus(w io.Writer) error {
	snap := Snapshot()
	bw := bufio.NewWriter(w)
	typed := map[string]bool{}
	emitType := func(fam, kind string) {
		if !typed[fam] {
			fmt.Fprintf(bw, "# TYPE %s %s\n", fam, kind)
			typed[fam] = true
		}
	}
	for _, name := range sortedKeys(snap.Counters) {
		fam, _ := family(name)
		emitType(fam, "counter")
		fmt.Fprintf(bw, "%s %d\n", name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		fam, _ := family(name)
		emitType(fam, "gauge")
		fmt.Fprintf(bw, "%s %d\n", name, snap.Gauges[name])
	}
	hnames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := snap.Histograms[name]
		fam, labels := family(name)
		emitType(fam, "histogram")
		for i, bound := range h.BucketNS {
			fmt.Fprintf(bw, "%s %d\n", withLE(fam, labels, fmt.Sprintf("%g", float64(bound)/1e9)), h.BucketCounts[i])
		}
		fmt.Fprintf(bw, "%s %d\n", withLE(fam, labels, "+Inf"), h.BucketCounts[len(h.BucketCounts)-1])
		fmt.Fprintf(bw, "%s_sum%s %g\n", fam, labels, float64(h.SumNS)/1e9)
		fmt.Fprintf(bw, "%s_count%s %d\n", fam, labels, h.Count)
	}
	fmt.Fprintf(bw, "# spans recorded: %d\n", snap.Spans)
	return bw.Flush()
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

var expvarOnce sync.Once

// PublishExpvar publishes the metric snapshot under the expvar key
// "hcd.obs" (alongside the stdlib's memstats/cmdline). Idempotent.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("hcd.obs", expvar.Func(func() any { return Snapshot() }))
	})
}

// Handler returns the debug HTTP handler hcdtool serves behind
// -debug-addr:
//
//	/metrics        Prometheus text exposition
//	/trace          Chrome trace-event JSON of the span ring buffer
//	/debug/vars     expvar JSON (includes the hcd.obs snapshot)
//	/debug/pprof/   net/http/pprof profiles
func Handler() http.Handler {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		// A failed write to a departed HTTP client has no recovery.
		_, _ = fmt.Fprint(w, "hcd debug endpoints:\n  /metrics\n  /trace\n  /debug/vars\n  /debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = WritePrometheus(w) // write errors mean the client went away
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteTrace(w) // write errors mean the client went away
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
