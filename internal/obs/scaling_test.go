package obs_test

import (
	"math"
	"testing"
	"time"

	"hcd/internal/obs"
)

func TestSpeedupAndEfficiency(t *testing.T) {
	if got := obs.Speedup(4*time.Second, time.Second); got != 4 {
		t.Errorf("Speedup(4s, 1s) = %f, want 4", got)
	}
	if got := obs.Speedup(0, time.Second); got != 0 {
		t.Errorf("Speedup with zero base = %f, want 0", got)
	}
	if got := obs.Speedup(time.Second, 0); got != 0 {
		t.Errorf("Speedup with zero denominator = %f, want 0", got)
	}
	if got := obs.Efficiency(4, 8); got != 0.5 {
		t.Errorf("Efficiency(4, 8) = %f, want 0.5", got)
	}
	if got := obs.Efficiency(4, 0); got != 0 {
		t.Errorf("Efficiency with 0 threads = %f, want 0", got)
	}
}

// amdahl produces a synthetic sweep from a known serial fraction.
func amdahl(t1 time.Duration, s float64, threads []int) []obs.ScalingPoint {
	pts := make([]obs.ScalingPoint, 0, len(threads))
	for _, p := range threads {
		d := time.Duration(float64(t1) * (s + (1-s)/float64(p)))
		pts = append(pts, obs.ScalingPoint{Threads: p, Duration: d})
	}
	return pts
}

func TestFitSerialFractionRecoversKnownCurve(t *testing.T) {
	threads := []int{1, 2, 4, 8, 16}
	for _, want := range []float64{0, 0.1, 0.5, 0.9, 1} {
		got := obs.FitSerialFraction(amdahl(time.Second, want, threads))
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("FitSerialFraction(s=%.2f curve) = %f", want, got)
		}
	}
}

func TestFitSerialFractionDegenerateSweeps(t *testing.T) {
	// No p=1 point.
	if got := obs.FitSerialFraction(amdahl(time.Second, 0.5, []int{2, 4})); got != -1 {
		t.Errorf("fit without p=1 = %f, want -1", got)
	}
	// Only the p=1 point.
	if got := obs.FitSerialFraction(amdahl(time.Second, 0.5, []int{1})); got != -1 {
		t.Errorf("fit without p>1 = %f, want -1", got)
	}
	// Empty sweep.
	if got := obs.FitSerialFraction(nil); got != -1 {
		t.Errorf("fit of nil = %f, want -1", got)
	}
	// Superlinear measurements clamp to 0, anti-scaling clamps to 1.
	super := []obs.ScalingPoint{{Threads: 1, Duration: time.Second}, {Threads: 4, Duration: 100 * time.Millisecond}}
	if got := obs.FitSerialFraction(super); got != 0 {
		t.Errorf("superlinear fit = %f, want clamped 0", got)
	}
	anti := []obs.ScalingPoint{{Threads: 1, Duration: time.Second}, {Threads: 4, Duration: 3 * time.Second}}
	if got := obs.FitSerialFraction(anti); got != 1 {
		t.Errorf("anti-scaling fit = %f, want clamped 1", got)
	}
}

func TestMinPhases(t *testing.T) {
	runs := [][]obs.PhaseStat{
		{
			{Name: "peel", Duration: 30, Stints: 3},
			{Name: "phcd", Duration: 50, Stints: 5},
		},
		{
			{Name: "peel", Duration: 20, Stints: 2},
			{Name: "phcd", Duration: 60, Stints: 6},
			{Name: "fallback", Duration: 10},
		},
	}
	got := obs.MinPhases(runs)
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3 (union of phases): %+v", len(got), got)
	}
	if got[0].Name != "peel" || got[1].Name != "phcd" || got[2].Name != "fallback" {
		t.Fatalf("order = %v, want first-run order then additions", got)
	}
	if got[0].Duration != 20 || got[0].Stints != 2 {
		t.Errorf("peel kept %+v, want the faster rep's stats", got[0])
	}
	if got[1].Duration != 50 || got[1].Stints != 5 {
		t.Errorf("phcd kept %+v, want the faster rep's stats", got[1])
	}
	if obs.MinPhases(nil) != nil {
		t.Error("MinPhases(nil) should be nil")
	}
}
