// Package obs is the repository's always-on observability layer: phase
// spans recorded into an in-memory ring buffer (exportable as Chrome
// trace-event JSON, loadable in chrome://tracing or Perfetto), an atomic
// metrics registry (counters, gauges, duration histograms), per-phase
// worker statistics fed by the par primitives, and exposition over
// expvar, Prometheus text format, and net/http/pprof.
//
// Everything is stdlib-only and built for hot paths: recording a metric
// is one atomic add, opening a span is two time.Now calls and one short
// mutex hold at End, and the par worker hooks cost a single atomic
// pointer load when no phase is armed. Building with the `noobs` tag
// (see noop.go) replaces the whole package with empty stubs, mirroring
// internal/faultinject's `nofaults` pattern, so a production binary can
// compile observability out entirely.
//
// Span taxonomy (all on one trace track; nesting is by time containment):
//
//	build                       whole BuildCtx / BuildAndIndexCtx call
//	  peel                      parallel core decomposition phase
//	    coredecomp.parallel     the kernel itself
//	      peel.round (k)        one level-synchronous peeling round
//	  rank+layout               Algorithm 1 ranking + shellidx build
//	    shellidx.build
//	  phcd                      PHCD construction phase
//	    phcd.parallel|serial    the kernel itself
//	      phcd.level (k)        one level of Algorithm 2
//	        phcd.step1..step4   the four barrier-separated steps
//	  index                     PBKS preprocessing (search.newindex)
//	  verify                    SelfVerify hierarchy validation
//	  fallback                  serial rebuild after a contained failure
//	search                      whole SearchReportCtx call
//	  search.primary            Type A/B kernel incl. tree accumulation
//	    search.typea|typeb
//	      treeaccum
//	  search.score              metric evaluation + argmax
//	serve.request               one hcdserve request (tagged with its ID)
//	  serve.request.wait        slow-path wait for an execution slot
//	                            (absent when admission was uncontended)
//	  serve.request.exec        handler execution (search/... nest here)
//
// Spans opened through the Ctx constructors carry the correlation tag of
// their context (see request.go): the exported trace gives each tag its
// own track, so request spans do not interleave with the build pipeline
// or with each other.
//
// The per-phase worker statistics are global (one armed phase at a time,
// innermost wins): concurrent pipelines in one process share the
// aggregation and the trace track, which blurs attribution but never
// corrupts it. The intended deployment — one build/search pipeline per
// process section — attributes exactly.
package obs

import "time"

// WorkerStats aggregates the execution of every par worker that ran
// while one phase was armed: how many worker stints there were, how many
// ran concurrently at the peak, how many dynamic chunks they processed,
// their summed busy time, and the longest single stint. A "stint" is one
// worker-goroutine activation of a par.For*/Run* call; a phase spanning
// several parallel calls counts each call's workers separately, so the
// stint count is a volume number, not a concurrency number — MaxWorkers
// is the concurrency number.
type WorkerStats struct {
	// Stints is the number of worker stints recorded.
	Stints int64
	// MaxWorkers is the high-water mark of concurrently active worker
	// stints — the true "how parallel did this phase actually run".
	MaxWorkers int64
	// Chunks is the total number of chunks the workers processed (one
	// per worker for the static primitives; the grabbed chunk count for
	// ForChunked).
	Chunks int64
	// Busy is the summed wall-clock busy time across all worker stints.
	Busy time.Duration
	// MaxBusy is the longest single worker stint.
	MaxBusy time.Duration
}

// Skew is the load-imbalance statistic max/mean: the longest worker
// stint divided by the mean stint. 1.0 is perfectly balanced; large
// values mean one worker carried the phase. 0 when nothing was recorded.
func (w WorkerStats) Skew() float64 {
	if w.Stints == 0 || w.Busy <= 0 {
		return 0
	}
	mean := float64(w.Busy) / float64(w.Stints)
	return float64(w.MaxBusy) / mean
}

// PhaseStat is one pipeline phase's contribution to a BuildReport or
// SearchReport: its wall-clock duration plus the worker statistics
// gathered while the phase was armed. Durations marshal as nanoseconds.
//
// The JSON field `stints` counts worker stints (earlier schema versions
// called this `workers`, which misread as a concurrency number);
// `max_workers` is the concurrent-worker high-water mark.
type PhaseStat struct {
	// Name identifies the phase (see the span taxonomy in the package
	// comment).
	Name string `json:"name"`
	// Duration is the phase's wall-clock time.
	Duration time.Duration `json:"duration_ns"`
	// Stints, MaxWorkers, Chunks, Busy and MaxBusy mirror WorkerStats;
	// zero when the phase ran no parallel primitives (or under the noobs
	// tag).
	Stints     int64         `json:"stints,omitempty"`
	MaxWorkers int64         `json:"max_workers,omitempty"`
	Chunks     int64         `json:"chunks,omitempty"`
	Busy       time.Duration `json:"busy_ns,omitempty"`
	MaxBusy    time.Duration `json:"max_busy_ns,omitempty"`
	// Skew is WorkerStats.Skew at phase end (max/mean worker busy time).
	Skew float64 `json:"skew,omitempty"`
	// AllocBytes, AllocObjects, GCCycles and GCPause are the allocator
	// movement across the phase (obs.MemDelta captured at the phase
	// boundaries); zero — and omitted from JSON — under the noobs build,
	// so journals stay byte-compatible across flavours.
	AllocBytes   int64         `json:"alloc_bytes,omitempty"`
	AllocObjects int64         `json:"alloc_objects,omitempty"`
	GCCycles     int64         `json:"gc_cycles,omitempty"`
	GCPause      time.Duration `json:"gc_pause_ns,omitempty"`
}

// WorkerStats reconstructs the embedded worker statistics.
func (p PhaseStat) WorkerStats() WorkerStats {
	return WorkerStats{Stints: p.Stints, MaxWorkers: p.MaxWorkers, Chunks: p.Chunks, Busy: p.Busy, MaxBusy: p.MaxBusy}
}

// WithMem returns p with the phase's allocator movement filled in. A
// zero delta (the noobs build, or a phase that allocated nothing)
// leaves every memory field zero, keeping the JSON unchanged.
func (p PhaseStat) WithMem(d MemDelta) PhaseStat {
	p.AllocBytes = d.AllocBytes
	p.AllocObjects = d.AllocObjects
	p.GCCycles = d.GCCycles
	p.GCPause = d.GCPause
	return p
}

// MemDelta reconstructs the embedded allocator movement.
func (p PhaseStat) MemDelta() MemDelta {
	return MemDelta{AllocBytes: p.AllocBytes, AllocObjects: p.AllocObjects, GCCycles: p.GCCycles, GCPause: p.GCPause}
}

// NewPhaseStat assembles a PhaseStat from a measured duration and the
// worker statistics of the phase.
func NewPhaseStat(name string, d time.Duration, w WorkerStats) PhaseStat {
	return PhaseStat{
		Name:       name,
		Duration:   d,
		Stints:     w.Stints,
		MaxWorkers: w.MaxWorkers,
		Chunks:     w.Chunks,
		Busy:       w.Busy,
		MaxBusy:    w.MaxBusy,
		Skew:       w.Skew(),
	}
}
