// Scaling analysis over phase statistics: the quantities the paper's
// evaluation (§V) reads off its thread sweeps — speedup, parallel
// efficiency, and an Amdahl serial-fraction fit — computed from the
// PhaseStat breakdowns the pipeline already reports. This file carries
// no build tag: the math is pure and must behave identically in live
// and noobs builds (a noobs report simply has zero worker statistics).
package obs

import "time"

// ScalingPoint is one cell of a thread sweep: the wall-clock duration a
// kernel (or one phase of it) took at a given thread count.
type ScalingPoint struct {
	// Threads is the worker count the cell ran with (>= 1).
	Threads int `json:"threads"`
	// Duration is the cell's measured wall-clock time.
	Duration time.Duration `json:"duration_ns"`
}

// Speedup is the ratio base/at: how many times faster `at` is than
// `base`. 0 when either duration is non-positive.
func Speedup(base, at time.Duration) float64 {
	if base <= 0 || at <= 0 {
		return 0
	}
	return float64(base) / float64(at)
}

// Efficiency is the parallel efficiency speedup/threads: 1.0 is perfect
// linear scaling, lower means wasted cores. 0 for threads < 1.
func Efficiency(speedup float64, threads int) float64 {
	if threads < 1 {
		return 0
	}
	return speedup / float64(threads)
}

// FitSerialFraction fits Amdahl's law T(p) = T(1)·(s + (1-s)/p) to a
// thread sweep by least squares and returns the serial fraction s,
// clamped to [0, 1]. s bounds the achievable speedup at 1/s: a phase
// with s = 0.5 can never run more than 2x faster however many threads
// are added, which is what makes the per-phase fit the scalability
// bottleneck detector. The fit needs a p=1 point and at least one p>1
// point; it returns -1 when the sweep cannot support a fit (no p=1
// point, no p>1 points, or non-positive durations).
func FitSerialFraction(points []ScalingPoint) float64 {
	var t1 time.Duration
	for _, pt := range points {
		if pt.Threads == 1 {
			t1 = pt.Duration
		}
	}
	if t1 <= 0 {
		return -1
	}
	// With x_p = 1 - 1/p, Amdahl rearranges to
	//   T(p) - T(1)/p = s · T(1) · x_p,
	// a one-parameter regression through the origin: s = Σ x·y / Σ x².
	var num, den float64
	for _, pt := range points {
		if pt.Threads <= 1 || pt.Duration <= 0 {
			continue
		}
		p := float64(pt.Threads)
		x := (1 - 1/p) * float64(t1)
		y := float64(pt.Duration) - float64(t1)/p
		num += x * y
		den += x * x
	}
	if den == 0 {
		return -1
	}
	s := num / den
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s
}

// MinPhases folds repeated runs' phase breakdowns into one min-of-k
// breakdown: phases are matched by name, each keeps the statistics of
// its fastest occurrence (minimum duration — the same estimator the
// harness's timing cells use), and the result preserves the phase order
// of the first run, appending phases later runs introduce (a fallback
// phase that only fired in one rep still shows up). Runs may differ in
// phase sets; nil input yields nil.
func MinPhases(runs [][]PhaseStat) []PhaseStat {
	var order []string
	best := map[string]PhaseStat{}
	for _, run := range runs {
		for _, p := range run {
			prev, seen := best[p.Name]
			if !seen {
				order = append(order, p.Name)
				best[p.Name] = p
				continue
			}
			if p.Duration < prev.Duration {
				best[p.Name] = p
			}
		}
	}
	if len(order) == 0 {
		return nil
	}
	out := make([]PhaseStat, 0, len(order))
	for _, name := range order {
		out = append(out, best[name])
	}
	return out
}
