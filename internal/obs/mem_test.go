//go:build !noobs

package obs_test

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"hcd/internal/obs"
)

// BenchmarkSampleMem prices one sampler tick — the number the
// DefaultMemSampleInterval duty-cycle argument in DESIGN.md and
// EXPERIMENTS.md rests on (cost/tick ÷ 100ms cadence = sampler
// overhead fraction).
func BenchmarkSampleMem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		obs.SampleMem()
	}
}

// BenchmarkReadMem prices one phase-boundary capture (two per phase).
func BenchmarkReadMem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		obs.ReadMem()
	}
}

// TestReadMemDeltaCapturesAllocation allocates a known volume between
// two ReadMem points and checks the delta sees at least that much, with
// every component non-negative.
func TestReadMemDeltaCapturesAllocation(t *testing.T) {
	m0 := obs.ReadMem()
	const n = 64
	sink := make([][]byte, n)
	for i := range sink {
		sink[i] = make([]byte, 16<<10)
	}
	d := obs.ReadMem().Sub(m0)
	if len(sink) != n {
		t.Fatal("sink lost")
	}
	if d.AllocBytes < n*16<<10 {
		t.Errorf("AllocBytes = %d, want >= %d", d.AllocBytes, n*16<<10)
	}
	if d.AllocObjects < n {
		t.Errorf("AllocObjects = %d, want >= %d", d.AllocObjects, n)
	}
	if d.GCCycles < 0 || d.GCPause < 0 {
		t.Errorf("negative GC components: cycles=%d pause=%v", d.GCCycles, d.GCPause)
	}
}

// TestMemPointSubClampsReversedOrder proves reversed points clamp to
// the zero delta instead of going negative.
func TestMemPointSubClampsReversedOrder(t *testing.T) {
	later := obs.MemPoint{AllocBytes: 100, AllocObjects: 10, GCCycles: 2, GCPause: time.Millisecond}
	if d := (obs.MemPoint{}).Sub(later); d != (obs.MemDelta{}) {
		t.Errorf("reversed Sub = %+v, want zero delta", d)
	}
}

// TestHeapReadingsArePositive sanity-checks the runtime/metrics reads a
// live process can never legitimately report as zero.
func TestHeapReadingsArePositive(t *testing.T) {
	if v := obs.HeapObjectsBytes(); v <= 0 {
		t.Errorf("HeapObjectsBytes = %d, want > 0", v)
	}
	// Heap-live only moves at GC boundaries; a fresh test process may not
	// have completed one, so only its sign is checked.
	if v := obs.HeapLiveBytes(); v < 0 {
		t.Errorf("HeapLiveBytes = %d, want >= 0", v)
	}
}

// TestSampleMemFillsGauges takes samples and checks the hcd_mem_*
// family is present in the registry snapshot with sane values: current
// <= peak for the paired gauges, and the GC-pause histogram grows when
// a forced GC happens between samples.
func TestSampleMemFillsGauges(t *testing.T) {
	obs.SampleMem()
	snap := obs.Snapshot()
	for _, name := range []string{
		"hcd_mem_heap_objects_bytes", "hcd_mem_heap_objects_peak_bytes",
		"hcd_mem_heap_live_bytes", "hcd_mem_heap_live_peak_bytes",
		"hcd_mem_goroutines", "hcd_mem_goroutines_peak",
		"hcd_mem_gc_cycles",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s missing from snapshot", name)
		}
	}
	if cur, peak := snap.Gauges["hcd_mem_heap_objects_bytes"], snap.Gauges["hcd_mem_heap_objects_peak_bytes"]; cur > peak {
		t.Errorf("heap objects current %d > peak %d", cur, peak)
	}
	if cur, peak := snap.Gauges["hcd_mem_goroutines"], snap.Gauges["hcd_mem_goroutines_peak"]; cur > peak {
		t.Errorf("goroutines current %d > peak %d", cur, peak)
	}
	if snap.Gauges["hcd_mem_goroutines"] <= 0 {
		t.Errorf("goroutines gauge = %d, want > 0", snap.Gauges["hcd_mem_goroutines"])
	}
	if _, ok := snap.Histograms["hcd_mem_gc_pause_ns"]; !ok {
		t.Error("hcd_mem_gc_pause_ns histogram missing from snapshot")
	}
}

// TestSamplerObservesGCPauses forces GC cycles between samples and
// checks each pause is observed into the histogram exactly once (the
// count advances by at least the forced cycles, and a further sample
// without GC activity does not re-observe them).
func TestSamplerObservesGCPauses(t *testing.T) {
	h := obs.NewHistogram("hcd_mem_gc_pause_ns", "")
	obs.SampleMem()
	before := h.Count()
	forceGC(3)
	obs.SampleMem()
	after := h.Count()
	if after < before+3 {
		t.Errorf("pause observations %d -> %d, want +>=3 after 3 forced GCs", before, after)
	}
	obs.SampleMem()
	if again := h.Count(); again != after {
		// Another process goroutine may have triggered a real GC between
		// the two samples; tolerate growth but never double-counting of
		// the cycles already walked.
		cycles := obs.ReadMem().GCCycles
		t.Logf("count moved %d -> %d with NumGC=%d (concurrent GC tolerated)", after, again, cycles)
	}
}

func forceGC(n int) {
	for i := 0; i < n; i++ {
		runtime.GC()
	}
}

// TestStartMemSamplerStopIdempotent runs the sampler briefly and stops
// it twice; the final on-stop sample must leave the peaks populated.
func TestStartMemSamplerStopIdempotent(t *testing.T) {
	stop := obs.StartMemSampler(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop()
	stop() // idempotent
	if snap := obs.Snapshot(); snap.Gauges["hcd_mem_heap_objects_peak_bytes"] <= 0 {
		t.Error("sampler left no heap-objects peak behind")
	}
}

// TestSampleMemConcurrent hammers SampleMem from many goroutines under
// the race detector: the peak CAS loops and the pause-walk mutex must
// hold up, and peaks must stay monotone throughout.
func TestSampleMemConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				obs.SampleMem()
			}
		}()
	}
	wg.Wait()
	snap := obs.Snapshot()
	if snap.Gauges["hcd_mem_heap_objects_peak_bytes"] < snap.Gauges["hcd_mem_heap_objects_bytes"] {
		t.Error("peak fell below current after concurrent sampling")
	}
}

// TestContextWithTagConcurrentRetag re-tags one base context from many
// goroutines while readers resolve tags through the derived contexts —
// the satellite coverage for correlation-tag propagation under
// concurrent re-tagging. Context values are immutable, so every derived
// context must keep exactly the tag it was created with, whatever the
// other goroutines do.
func TestContextWithTagConcurrentRetag(t *testing.T) {
	base := obs.ContextWithTag(context.Background(), "base")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := "worker-" + string(rune('a'+i))
			for j := 0; j < 200; j++ {
				ctx := obs.ContextWithTag(base, want)
				if got := obs.Tag(ctx); got != want {
					t.Errorf("derived tag = %q, want %q", got, want)
					return
				}
				// Spans opened through the Ctx constructors must stamp the
				// derived tag, not a concurrent re-tagger's.
				sp := obs.StartSpanCtx(ctx, "obs.retag")
				sp.End()
				if got := obs.Tag(base); got != "base" {
					t.Errorf("base tag mutated to %q", got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestHistogramMergeWithGCPauses merges a quiesced copy of the live
// GC-pause histogram into a scratch histogram alongside synthetic
// observations — the satellite coverage for histogram merge with the
// new pause histograms. Count and Sum must be exactly additive.
func TestHistogramMergeWithGCPauses(t *testing.T) {
	pause := obs.NewHistogram("hcd_mem_gc_pause_ns", "")
	obs.SampleMem()
	forceGC(2)
	obs.SampleMem()
	if pause.Count() == 0 {
		t.Fatal("no GC pauses observed; forceGC did not run?")
	}
	scratch := obs.NewHistogram("hcd_test_merge_scratch_ns", "")
	scratch.Observe(time.Microsecond)
	scratch.Observe(3 * time.Millisecond)
	wantCount := scratch.Count() + pause.Count()
	wantSum := scratch.Sum() + pause.Sum()
	scratch.Merge(pause)
	if scratch.Count() != wantCount {
		t.Errorf("merged count = %d, want %d", scratch.Count(), wantCount)
	}
	if scratch.Sum() != wantSum {
		t.Errorf("merged sum = %v, want %v", scratch.Sum(), wantSum)
	}
	if q := scratch.Quantile(0.99); q <= 0 {
		t.Errorf("merged p99 = %v, want > 0", q)
	}
}

// TestHistogramMergeConcurrentWithObserve merges a histogram while
// observations land in it concurrently (the documented torn-view case):
// under -race this proves the atomics are clean, and the merged result
// must land between the pre- and post-merge source counts.
func TestHistogramMergeConcurrentWithObserve(t *testing.T) {
	src := obs.NewHistogram("hcd_test_merge_live_src_ns", "")
	dst := obs.NewHistogram("hcd_test_merge_live_dst_ns", "")
	const writers, perWriter = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				src.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	dst.Merge(src) // racing merge: torn view allowed, corruption not
	wg.Wait()
	dst.Merge(src) // quiesced merge on top
	if got := src.Count(); got != writers*perWriter {
		t.Fatalf("source count = %d, want %d", got, writers*perWriter)
	}
	if dst.Count() < writers*perWriter {
		t.Errorf("dst count = %d, want >= one full quiesced merge (%d)", dst.Count(), writers*perWriter)
	}
}
