//go:build noobs

package obs

import "time"

// ReadMem reports the zero point: with the instruments compiled out, a
// phase's memory delta is zero and its JSON fields are omitted.
func ReadMem() MemPoint { return MemPoint{} }

// HeapLiveBytes always reports zero.
func HeapLiveBytes() int64 { return 0 }

// HeapObjectsBytes always reports zero.
func HeapObjectsBytes() int64 { return 0 }

// SampleMem is a no-op.
func SampleMem() {}

// StartMemSampler starts nothing and returns an idempotent no-op stop.
func StartMemSampler(time.Duration) (stop func()) { return func() {} }
