//go:build !noobs

package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestContextTagRoundTrip checks the tag travels in the context and the
// Ctx constructors stamp it onto the spans they open.
func TestContextTagRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := Tag(ctx); got != "" {
		t.Errorf("Tag(background) = %q, want empty", got)
	}
	if got := Tag(nil); got != "" { //nolint:staticcheck // nil-safety is part of the contract
		t.Errorf("Tag(nil) = %q, want empty", got)
	}
	tagged := ContextWithTag(ctx, "rid-1")
	if got := Tag(tagged); got != "rid-1" {
		t.Errorf("Tag = %q, want rid-1", got)
	}
	if got := ContextWithTag(ctx, ""); got != ctx {
		t.Error("empty tag must return ctx unchanged")
	}

	sp := StartSpanCtx(tagged, "test.ctxspan")
	if sp.tag != "rid-1" {
		t.Errorf("StartSpanCtx tag = %q, want rid-1", sp.tag)
	}
	sp.End()
	sp = StartSpanCtxArg(tagged, "test.ctxspan.arg", 9)
	if sp.tag != "rid-1" || sp.arg != 9 {
		t.Errorf("StartSpanCtxArg = (%q, %d), want (rid-1, 9)", sp.tag, sp.arg)
	}
	sp.End()
	sp = StartSpanTag("test.tagspan", "rid-2")
	if sp.tag != "rid-2" {
		t.Errorf("StartSpanTag tag = %q, want rid-2", sp.tag)
	}
	sp.End()
}

// TestStartPhaseCtxArmsWorkers checks the ctx phase constructor arms the
// worker hooks exactly like StartPhase and records the tag.
func TestStartPhaseCtxArmsWorkers(t *testing.T) {
	ctx := ContextWithTag(context.Background(), "rid-phase")
	sp := StartPhaseCtx(ctx, "test.ctxphase")
	mark := WorkerStart()
	if mark.IsZero() {
		t.Fatal("phase must arm the worker hooks")
	}
	WorkerEnd(mark, 3)
	sp.End()
	ws := sp.WorkerStats()
	if ws.Stints != 1 || ws.Chunks != 3 {
		t.Errorf("WorkerStats = %+v, want 1 stint / 3 chunks", ws)
	}
	if sp.tag != "rid-phase" {
		t.Errorf("phase tag = %q, want rid-phase", sp.tag)
	}
}

// TestTaggedSpanExportsOnOwnLane is the end-to-end slice of request
// correlation inside obs: a span opened under a tagged context lands in
// the exported trace on a per-tag track carrying args.rid.
func TestTaggedSpanExportsOnOwnLane(t *testing.T) {
	tr := NewTracer(16)
	ctx := ContextWithTag(context.Background(), "rid-e2e")
	sp := StartSpanCtx(ctx, "test.lane")
	sp.tr = tr // redirect to the private tracer to keep the test hermetic
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"args":{"rid":"rid-e2e"}`) {
		t.Errorf("exported trace missing rid args:\n%s", buf.String())
	}
}
