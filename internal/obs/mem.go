// Memory observability: the shared data types of the phase-scoped
// allocation accounting. The types live in this untagged file so the
// live and noobs builds agree on them exactly; the readers that fill
// them (ReadMem, HeapLiveBytes, the sampler) are tag-mirrored in
// memread.go / memread_noobs.go.
package obs

import "time"

// DefaultMemSampleInterval is the cadence StartMemSampler falls back to
// when given a non-positive interval: frequent enough to catch the heap
// high-water mark of any phase that runs longer than a blink, rare
// enough that the per-sample runtime/metrics read and ReadMemStats call
// stay far below measurement noise (see the obs-vs-noobs A/B in
// EXPERIMENTS.md).
const DefaultMemSampleInterval = 100 * time.Millisecond

// MemPoint is a point-in-time reading of the Go allocator's cumulative
// counters, cheap enough to take at every pipeline phase boundary. All
// fields are monotonically non-decreasing over a process lifetime, so
// two points subtract into a meaningful per-interval delta.
type MemPoint struct {
	// AllocBytes is the cumulative bytes allocated on the heap
	// (runtime.MemStats.TotalAlloc — freed memory does not subtract).
	AllocBytes uint64
	// AllocObjects is the cumulative count of heap objects allocated
	// (runtime.MemStats.Mallocs).
	AllocObjects uint64
	// GCCycles is the number of completed GC cycles
	// (runtime.MemStats.NumGC).
	GCCycles uint32
	// GCPause is the cumulative stop-the-world pause time
	// (runtime.MemStats.PauseTotalNs).
	GCPause time.Duration
}

// MemDelta is the allocator movement between two MemPoints: what one
// phase (or one measured operation) cost in allocation volume and GC
// activity. The zero delta means "nothing measured" — exactly what the
// noobs build reports — and marshals to nothing via the omitempty
// fields it feeds.
type MemDelta struct {
	// AllocBytes / AllocObjects are the heap bytes and objects allocated
	// in the interval.
	AllocBytes   int64
	AllocObjects int64
	// GCCycles is how many GC cycles completed in the interval.
	GCCycles int64
	// GCPause is the stop-the-world pause time the interval absorbed.
	GCPause time.Duration
}

// Sub returns the allocator movement from earlier to p. Negative
// components clamp to zero: the counters are monotone, so a negative
// difference only means the points were taken in the wrong order.
func (p MemPoint) Sub(earlier MemPoint) MemDelta {
	d := MemDelta{
		AllocBytes:   int64(p.AllocBytes) - int64(earlier.AllocBytes),
		AllocObjects: int64(p.AllocObjects) - int64(earlier.AllocObjects),
		GCCycles:     int64(p.GCCycles) - int64(earlier.GCCycles),
		GCPause:      p.GCPause - earlier.GCPause,
	}
	if d.AllocBytes < 0 {
		d.AllocBytes = 0
	}
	if d.AllocObjects < 0 {
		d.AllocObjects = 0
	}
	if d.GCCycles < 0 {
		d.GCCycles = 0
	}
	if d.GCPause < 0 {
		d.GCPause = 0
	}
	return d
}
