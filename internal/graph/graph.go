// Package graph provides the in-memory graph substrate used by every
// algorithm in this repository: an immutable undirected simple graph in
// compressed sparse row (CSR) form, a builder that cleans arbitrary edge
// lists (symmetrise, deduplicate, drop self-loops), and text/binary I/O.
//
// Vertices are dense int32 identifiers in [0, n). The representation
// matches what the paper's C++ implementations operate on: one offsets
// array and one flat adjacency array, with each undirected edge stored in
// both endpoints' lists and every adjacency list sorted ascending.
package graph

import (
	"fmt"
	"sort"

	"hcd/internal/par"
)

// Graph is an immutable undirected simple graph in CSR form.
// The zero value is an empty graph.
type Graph struct {
	offsets []int64 // len n+1; offsets[v]..offsets[v+1] delimit v's list
	adj     []int32 // len 2m; sorted within each vertex's list
}

// NumVertices returns n, the number of vertices.
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns m, the number of undirected edges.
func (g *Graph) NumEdges() int64 { return int64(len(g.adj)) / 2 }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns v's adjacency list, sorted ascending. The returned
// slice aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Offsets returns the CSR offset array (length n+1): Neighbors(v) spans
// positions Offsets()[v] to Offsets()[v+1] of the flat adjacency. The
// returned slice aliases the graph's storage and must not be modified.
// Alternative adjacency layouts (e.g. internal/shellidx) share it so their
// per-vertex lists line up with the graph's.
func (g *Graph) Offsets() []int64 { return g.offsets }

// Bytes returns the CSR storage footprint in bytes, computed from the
// array lengths: 8(n+1) for the offsets plus 4·2m for the adjacency.
// Deterministic (no sampling), so a resident-footprint report never
// jitters with GC timing.
func (g *Graph) Bytes() int64 {
	return int64(len(g.offsets))*8 + int64(len(g.adj))*4
}

// HasEdge reports whether the undirected edge (u, v) exists, by binary
// search over the shorter adjacency list. O(log min(d(u), d(v))).
func (g *Graph) HasEdge(u, v int32) bool {
	if u == v {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	list := g.Neighbors(u)
	i := sort.Search(len(list), func(i int) bool { return list[i] >= v })
	return i < len(list) && list[i] == v
}

// MaxDegree returns the largest vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	md := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(int32(v)); d > md {
			md = d
		}
	}
	return md
}

// AvgDegree returns 2m/n, the average degree (0 for an empty graph).
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(n)
}

// Edges calls fn(u, v) once per undirected edge with u < v.
func (g *Graph) Edges(fn func(u, v int32)) {
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// String summarises the graph for diagnostics.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumVertices(), g.NumEdges())
}

// Edge is one undirected edge; the builder accepts them in any orientation.
type Edge struct{ U, V int32 }

// FromEdges builds a simple undirected graph with n vertices from an
// arbitrary edge list: both orientations are inserted, self-loops dropped,
// and duplicate edges collapsed. Vertex ids must lie in [0, n).
func FromEdges(n int, edges []Edge) (*Graph, error) {
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
	}
	return fromCheckedEdges(n, edges), nil
}

// MustFromEdges is FromEdges but panics on invalid input. Intended for
// tests and generators whose edges are correct by construction.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func fromCheckedEdges(n int, edges []Edge) *Graph {
	// Counting pass (both directions, self-loops skipped).
	deg := make([]int64, n+1)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		deg[e.U+1]++
		deg[e.V+1]++
	}
	offsets := make([]int64, n+1)
	for v := 1; v <= n; v++ {
		offsets[v] = offsets[v-1] + deg[v]
	}
	adj := make([]int32, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	// Sort each list and deduplicate in place.
	newDeg := make([]int64, n)
	//hcdlint:allow panic-safety pure in-place sort/dedup of disjoint adjacency slices inside the infallible constructor; no ctx to thread and no panic source beyond the slices just allocated above
	par.ForEach(n, 0, func(v int) {
		lo, hi := offsets[v], offsets[v+1]
		list := adj[lo:hi]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		w := 0
		for i := range list {
			if i == 0 || list[i] != list[i-1] {
				list[w] = list[i]
				w++
			}
		}
		newDeg[v] = int64(w)
	})
	// Compact away the duplicate slack.
	finalOffsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		finalOffsets[v+1] = finalOffsets[v] + newDeg[v]
	}
	finalAdj := make([]int32, finalOffsets[n])
	for v := 0; v < n; v++ {
		copy(finalAdj[finalOffsets[v]:finalOffsets[v+1]], adj[offsets[v]:offsets[v]+newDeg[v]])
	}
	return &Graph{offsets: finalOffsets, adj: finalAdj}
}

// InducedSubgraph returns the subgraph induced by the given vertex set,
// together with the mapping from new ids to original ids. Vertices keep
// their relative order. Duplicate ids in vs are ignored.
func (g *Graph) InducedSubgraph(vs []int32) (*Graph, []int32) {
	n := g.NumVertices()
	newID := make([]int32, n)
	for i := range newID {
		newID[i] = -1
	}
	var orig []int32
	for _, v := range vs {
		if newID[v] < 0 {
			newID[v] = int32(len(orig))
			orig = append(orig, v)
		}
	}
	var edges []Edge
	for newU, u := range orig {
		for _, w := range g.Neighbors(u) {
			if nw := newID[w]; nw >= 0 && int32(newU) < nw {
				edges = append(edges, Edge{int32(newU), nw})
			}
		}
	}
	sub := MustFromEdges(len(orig), edges)
	return sub, orig
}

// ConnectedComponents labels each vertex with a component id in [0, #cc)
// and returns the labels plus the component count. BFS-based, O(n+m).
func (g *Graph) ConnectedComponents() (label []int32, count int) {
	n := g.NumVertices()
	label = make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	var queue []int32
	for s := int32(0); s < int32(n); s++ {
		if label[s] >= 0 {
			continue
		}
		id := int32(count)
		count++
		label[s] = id
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				if label[w] < 0 {
					label[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return label, count
}
