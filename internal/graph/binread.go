package graph

import (
	"encoding/binary"
	"io"
)

// readChunk is the allocation granularity for header-declared array sizes:
// a corrupt or hostile header cannot force a huge up-front allocation,
// because reading fails with EOF after the actual data runs out and only
// O(consumed) memory has been committed.
const readChunk = 1 << 16

// ReadInt64s reads count little-endian int64 values in bounded chunks.
func ReadInt64s(r io.Reader, count int64) ([]int64, error) {
	out := make([]int64, 0, min64(count, readChunk))
	buf := make([]int64, 0)
	for int64(len(out)) < count {
		n := min64(count-int64(len(out)), readChunk)
		if int64(cap(buf)) < n {
			buf = make([]int64, n)
		}
		chunk := buf[:n]
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// ReadInt32s reads count little-endian int32 values in bounded chunks.
func ReadInt32s(r io.Reader, count int64) ([]int32, error) {
	out := make([]int32, 0, min64(count, readChunk))
	buf := make([]int32, 0)
	for int64(len(out)) < count {
		n := min64(count-int64(len(out)), readChunk)
		if int64(cap(buf)) < n {
			buf = make([]int32, n)
		}
		chunk := buf[:n]
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
