package graph

import (
	"encoding/binary"
	"fmt"
	"io"
)

// readChunk is the allocation granularity for header-declared array sizes:
// a corrupt or hostile header cannot force a huge up-front allocation,
// because reading fails with EOF after the actual data runs out and only
// O(consumed) memory has been committed.
const readChunk = 1 << 16

// ReadInt64s reads count little-endian int64 values in bounded chunks.
// A negative count is rejected: counts derive from untrusted headers, and
// arithmetic on a hostile value (e.g. n+1 overflowing int64) must surface
// as an error here rather than as an empty slice the caller then indexes.
func ReadInt64s(r io.Reader, count int64) ([]int64, error) {
	if count < 0 {
		return nil, fmt.Errorf("graph: negative element count %d", count)
	}
	out := make([]int64, 0, min64(count, readChunk))
	buf := make([]int64, 0)
	for int64(len(out)) < count {
		n := min64(count-int64(len(out)), readChunk)
		if int64(cap(buf)) < n {
			buf = make([]int64, n)
		}
		chunk := buf[:n]
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// ReadInt32s reads count little-endian int32 values in bounded chunks.
// Negative counts are rejected, as in ReadInt64s.
func ReadInt32s(r io.Reader, count int64) ([]int32, error) {
	if count < 0 {
		return nil, fmt.Errorf("graph: negative element count %d", count)
	}
	out := make([]int32, 0, min64(count, readChunk))
	buf := make([]int32, 0)
	for int64(len(out)) < count {
		n := min64(count-int64(len(out)), readChunk)
		if int64(cap(buf)) < n {
			buf = make([]int32, n)
		}
		chunk := buf[:n]
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
