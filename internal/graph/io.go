package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge-list (the SNAP text
// format): one "u v" pair per line, lines starting with '#' or '%' are
// comments. Vertex ids may be sparse; they are remapped to a dense [0, n)
// range in first-appearance order. Directed inputs are symmetrised, as in
// the paper's experimental setup.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	remap := make(map[int64]int32)
	id := func(raw int64) int32 {
		if v, ok := remap[raw]; ok {
			return v
		}
		v := int32(len(remap))
		remap[raw] = v
		return v
	}
	var edges []Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least two fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		edges = append(edges, Edge{id(u), id(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromEdges(len(remap), edges)
}

// ReadEdgeListFile is ReadEdgeList over a file path.
func ReadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList writes the graph in SNAP text format, one undirected edge
// per line with u < v.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# undirected graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())
	var err error
	g.Edges(func(u, v int32) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

const binMagic = "HCDG0001"

// WriteBinary serialises the CSR arrays in a compact little-endian format,
// suitable for fast reload of large generated datasets.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	n := int64(g.NumVertices())
	if err := binary.Write(bw, binary.LittleEndian, n); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(g.adj))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reloads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var n, a int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &a); err != nil {
		return nil, err
	}
	if n < 0 || a < 0 || a%2 != 0 {
		return nil, fmt.Errorf("graph: corrupt header n=%d adj=%d", n, a)
	}
	// Chunked reads: a header lying about sizes fails with EOF instead of
	// forcing a giant allocation.
	offsets, err := ReadInt64s(br, n+1)
	if err != nil {
		return nil, err
	}
	adj, err := ReadInt32s(br, a)
	if err != nil {
		return nil, err
	}
	g := &Graph{offsets: offsets, adj: adj}
	if g.offsets[0] != 0 || g.offsets[n] != a {
		return nil, fmt.Errorf("graph: corrupt offsets")
	}
	for v := int64(0); v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return nil, fmt.Errorf("graph: non-monotone offsets at vertex %d", v)
		}
	}
	for _, u := range g.adj {
		if u < 0 || int64(u) >= n {
			return nil, fmt.Errorf("graph: neighbor %d out of range [0,%d)", u, n)
		}
	}
	return g, nil
}

// WriteBinaryFile writes the binary format to a file path.
func (g *Graph) WriteBinaryFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteBinary(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// ReadBinaryFile reloads a binary graph from a file path.
func ReadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
