package graph

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// TestReadBinaryRejectsOverflowingHeader pins a decoder hardening fix: a
// header declaring n = MaxInt64 used to overflow the n+1 offset count to
// a negative value, which ReadInt64s answered with an empty slice that
// ReadBinary then indexed — a panic on hostile input. Negative counts now
// fail cleanly.
func TestReadBinaryRejectsOverflowingHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("HCDG0001")
	binary.Write(&buf, binary.LittleEndian, int64(math.MaxInt64)) // n
	binary.Write(&buf, binary.LittleEndian, int64(0))             // adj len
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("header with n=MaxInt64 accepted, want error")
	}
}

// FuzzReadEdgeList checks the text loader never panics and that any graph
// it accepts satisfies the CSR invariants.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% other\n5 5\n")
	f.Add("")
	f.Add("999999999999999999999 1\n")
	f.Add("1 2 extra fields\n")
	f.Add("-4 7\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		n := g.NumVertices()
		var total int64
		for v := 0; v < n; v++ {
			list := g.Neighbors(int32(v))
			total += int64(len(list))
			for i, w := range list {
				if w < 0 || int(w) >= n {
					t.Fatalf("neighbor out of range: %d", w)
				}
				if w == int32(v) {
					t.Fatal("self-loop survived")
				}
				if i > 0 && list[i-1] >= w {
					t.Fatal("unsorted or duplicate adjacency")
				}
			}
		}
		if total != 2*g.NumEdges() {
			t.Fatalf("degree sum %d != 2m %d", total, 2*g.NumEdges())
		}
	})
}

// FuzzReadBinary checks the binary loader rejects or safely parses
// arbitrary bytes — it must never panic or return a structurally corrupt
// graph.
func FuzzReadBinary(f *testing.F) {
	g := MustFromEdges(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("HCDG0001garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadBinary panicked: %v", r)
			}
		}()
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must be self-consistent enough to traverse.
		n := g.NumVertices()
		for v := 0; v < n; v++ {
			for _, w := range g.Neighbors(int32(v)) {
				if w < 0 || int(w) >= n {
					t.Fatalf("accepted graph has out-of-range neighbor %d", w)
				}
			}
		}
	})
}
