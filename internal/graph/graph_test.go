package graph

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("zero Graph = %v, want empty", &g)
	}
	if g.AvgDegree() != 0 {
		t.Errorf("empty AvgDegree = %v", g.AvgDegree())
	}
	g2 := MustFromEdges(0, nil)
	if g2.NumVertices() != 0 || g2.MaxDegree() != 0 {
		t.Errorf("FromEdges(0) not empty: %v", g2)
	}
}

func TestFromEdgesBasic(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if g.NumVertices() != 4 || g.NumEdges() != 5 {
		t.Fatalf("got %v, want n=4 m=5", g)
	}
	wantDeg := []int{3, 2, 3, 2}
	for v, w := range wantDeg {
		if g.Degree(int32(v)) != w {
			t.Errorf("Degree(%d) = %d, want %d", v, g.Degree(int32(v)), w)
		}
	}
	if !reflect.DeepEqual(g.Neighbors(0), []int32{1, 2, 3}) {
		t.Errorf("Neighbors(0) = %v", g.Neighbors(0))
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	if g.AvgDegree() != 2.5 {
		t.Errorf("AvgDegree = %v", g.AvgDegree())
	}
}

func TestFromEdgesCleansInput(t *testing.T) {
	// Self-loops, duplicates, and both orientations must collapse.
	g := MustFromEdges(3, []Edge{{0, 0}, {0, 1}, {1, 0}, {0, 1}, {1, 2}, {1, 2}})
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2", g.NumEdges())
	}
	if !reflect.DeepEqual(g.Neighbors(1), []int32{0, 2}) {
		t.Errorf("Neighbors(1) = %v", g.Neighbors(1))
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 2}}); err == nil {
		t.Error("want error for out-of-range endpoint")
	}
	if _, err := FromEdges(2, []Edge{{-1, 0}}); err == nil {
		t.Error("want error for negative endpoint")
	}
}

func TestHasEdge(t *testing.T) {
	g := MustFromEdges(5, []Edge{{0, 1}, {1, 2}, {3, 4}})
	cases := []struct {
		u, v int32
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {1, 2, true}, {0, 2, false},
		{3, 4, true}, {2, 3, false}, {0, 0, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEdgesVisitsEachOnce(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	var got []Edge
	g.Edges(func(u, v int32) { got = append(got, Edge{u, v}) })
	want := []Edge{{0, 1}, {0, 3}, {1, 2}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Edges() = %v, want %v", got, want)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}})
	sub, orig := g.InducedSubgraph([]int32{0, 1, 2, 4, 2})
	if sub.NumVertices() != 4 {
		t.Fatalf("sub n = %d, want 4 (dup must be ignored)", sub.NumVertices())
	}
	if !reflect.DeepEqual(orig, []int32{0, 1, 2, 4}) {
		t.Errorf("orig = %v", orig)
	}
	// Triangle 0-1-2 survives; vertex 4 is isolated inside the set.
	if sub.NumEdges() != 3 {
		t.Errorf("sub m = %d, want 3", sub.NumEdges())
	}
	if sub.Degree(3) != 0 {
		t.Errorf("vertex 4 should be isolated in subgraph, degree %d", sub.Degree(3))
	}
}

func TestConnectedComponents(t *testing.T) {
	g := MustFromEdges(7, []Edge{{0, 1}, {1, 2}, {3, 4}, {5, 5}})
	label, count := g.ConnectedComponents()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Errorf("component of {0,1,2} split: %v", label)
	}
	if label[3] != label[4] {
		t.Errorf("component of {3,4} split: %v", label)
	}
	if label[5] == label[6] || label[5] == label[0] {
		t.Errorf("isolated vertices mislabelled: %v", label)
	}
}

func TestReadEdgeList(t *testing.T) {
	input := `# a comment
% another comment
10 20
20 30
30 10

10 10
`
	g, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Errorf("got %v, want triangle", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("1\n")); err == nil {
		t.Error("want error for one-field line")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Error("want error for non-numeric field")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(50, 200, 1)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Text format remaps ids by first appearance, so compare shape only.
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("round trip m: %d -> %d", g.NumEdges(), g2.NumEdges())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGraph(100, 400, 7)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, g2) {
		t.Error("binary round trip changed the graph")
	}
}

func TestReadBinaryRejectsCorruption(t *testing.T) {
	g := randomGraph(10, 20, 3)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:4])); err == nil {
		t.Error("want error for truncated magic")
	}
	bad := append([]byte("XXXXXXXX"), raw[8:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("want error for bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("want error for truncated body")
	}
}

// Property: for every graph, adjacency is symmetric, sorted, loop-free and
// duplicate-free.
func TestCSRInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint16) bool {
		n := int(nRaw%200) + 1
		m := int(mRaw % 1000)
		g := randomGraph(n, m, seed)
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			list := g.Neighbors(v)
			for i, w := range list {
				if w == v {
					return false // self-loop
				}
				if i > 0 && list[i-1] >= w {
					return false // unsorted or duplicate
				}
				if !g.HasEdge(w, v) {
					return false // asymmetric
				}
			}
		}
		var total int64
		for v := 0; v < g.NumVertices(); v++ {
			total += int64(g.Degree(int32(v)))
		}
		return total == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randomGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return MustFromEdges(n, edges)
}

func sameGraph(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := int32(0); v < int32(a.NumVertices()); v++ {
		if !reflect.DeepEqual(a.Neighbors(v), b.Neighbors(v)) {
			return false
		}
	}
	return true
}

func BenchmarkFromEdges(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	edges := make([]Edge, 100000)
	for i := range edges {
		edges[i] = Edge{int32(rng.Intn(10000)), int32(rng.Intn(10000))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustFromEdges(10000, edges)
	}
}

func TestStringAndFileHelpers(t *testing.T) {
	g := MustFromEdges(3, []Edge{{U: 0, V: 1}})
	if got := g.String(); got != "graph{n=3 m=1}" {
		t.Errorf("String = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustFromEdges must panic on invalid input")
		}
	}()
	MustFromEdges(1, []Edge{{U: 0, V: 5}})
}

func TestFileRoundTrips(t *testing.T) {
	g := randomGraph(30, 90, 2)
	dir := t.TempDir()
	binPath := filepath.Join(dir, "g.bin")
	if err := g.WriteBinaryFile(binPath); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinaryFile(binPath)
	if err != nil || !sameGraph(g, g2) {
		t.Fatalf("binary file round trip failed: %v", err)
	}
	textPath := filepath.Join(dir, "g.txt")
	f, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g3, err := ReadEdgeListFile(textPath)
	if err != nil || g3.NumEdges() != g.NumEdges() {
		t.Fatalf("text file round trip failed: %v", err)
	}
	// Error paths.
	if _, err := ReadBinaryFile(filepath.Join(dir, "absent.bin")); err == nil {
		t.Error("absent binary file accepted")
	}
	if _, err := ReadEdgeListFile(filepath.Join(dir, "absent.txt")); err == nil {
		t.Error("absent text file accepted")
	}
	if err := g.WriteBinaryFile(filepath.Join(dir, "no", "dir", "x.bin")); err == nil {
		t.Error("unwritable binary path accepted")
	}
}

func TestReadBinaryRejectsBadNeighborsAndOffsets(t *testing.T) {
	g := MustFromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the last adjacency entry to an out-of-range vertex.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-4] = 0x7f
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
}
