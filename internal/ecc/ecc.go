// Package ecc implements k-edge-connected-component (k-ECC) decomposition
// — the second "other cohesive subgraph model" §VI names alongside k-truss
// — and its hierarchy. A k-ECC is a maximal induced subgraph whose edge
// connectivity is at least k: removing any k-1 edges leaves it connected.
// Like k-cores, k-ECCs nest: every (k+1)-ECC lies inside exactly one
// k-ECC, so the decomposition forms a forest analogous to the HCD.
//
// The decomposition follows the classical cut-based recursion (in the
// spirit of Chang et al., SIGMOD 2013): peel the component to the k-core
// first (a k-ECC member needs internal degree >= k), compute a global
// minimum cut with Stoer-Wagner's maximum-adjacency search, and either
// certify the piece (cut >= k) or split along the cut and recurse. This is
// O(cuts · n · m)-ish — built for the repository's laptop-scale graphs,
// not for billion-edge inputs; it exists to demonstrate the hierarchy
// framework generalising, with exact semantics.
package ecc

import (
	"sort"

	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

// Decompose partitions the vertices into maximal k-edge-connected
// components: label[v] is the component id of v, or -1 when v belongs to
// no k-ECC of at least two vertices. Ids are dense in [0, count).
func Decompose(g *graph.Graph, k int32) (label []int32, count int32) {
	n := g.NumVertices()
	label = make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	if k < 1 {
		// Everything edge-connected at level 0: components.
		lbl, c := g.ConnectedComponents()
		return lbl, int32(c)
	}
	compLabel, comps := g.ConnectedComponents()
	groups := make([][]int32, comps)
	for v := int32(0); v < int32(n); v++ {
		groups[compLabel[v]] = append(groups[compLabel[v]], v)
	}
	for _, piece := range groups {
		decomposePiece(g, piece, k, &label, &count)
	}
	return label, count
}

// decomposePiece recursively certifies or splits one candidate vertex set.
func decomposePiece(g *graph.Graph, piece []int32, k int32, label *[]int32, count *int32) {
	// Work stack of pieces still to resolve.
	stack := [][]int32{piece}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cur = peelToKCore(g, cur, k)
		if len(cur) < 2 {
			continue
		}
		// Re-split into connected sub-pieces after the peel.
		for _, sub := range splitConnected(g, cur) {
			if len(sub) < 2 {
				continue
			}
			cutW, side := stoerWagner(g, sub)
			if cutW >= int64(k) {
				id := *count
				*count = id + 1
				for _, v := range sub {
					(*label)[v] = id
				}
				continue
			}
			// Split along the cut and recurse on both sides.
			inSide := make(map[int32]bool, len(side))
			for _, v := range side {
				inSide[v] = true
			}
			var a, b []int32
			for _, v := range sub {
				if inSide[v] {
					a = append(a, v)
				} else {
					b = append(b, v)
				}
			}
			stack = append(stack, a, b)
		}
	}
}

// peelToKCore restricts the piece to its members with internal degree >= k
// (iterated) — a cheap superset of the k-ECC.
func peelToKCore(g *graph.Graph, piece []int32, k int32) []int32 {
	in := make(map[int32]bool, len(piece))
	deg := make(map[int32]int32, len(piece))
	for _, v := range piece {
		in[v] = true
	}
	for _, v := range piece {
		var d int32
		for _, u := range g.Neighbors(v) {
			if in[u] {
				d++
			}
		}
		deg[v] = d
	}
	var queue []int32
	for _, v := range piece {
		if deg[v] < k {
			queue = append(queue, v)
			in[v] = false
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, u := range g.Neighbors(v) {
			if in[u] {
				deg[u]--
				if deg[u] < k {
					in[u] = false
					queue = append(queue, u)
				}
			}
		}
	}
	var out []int32
	for _, v := range piece {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}

// splitConnected splits the vertex set into connected pieces (within the
// induced subgraph).
func splitConnected(g *graph.Graph, piece []int32) [][]int32 {
	in := make(map[int32]bool, len(piece))
	for _, v := range piece {
		in[v] = true
	}
	seen := make(map[int32]bool, len(piece))
	var out [][]int32
	for _, s := range piece {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue := []int32{s}
		var comp []int32
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			comp = append(comp, v)
			for _, u := range g.Neighbors(v) {
				if in[u] && !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		out = append(out, comp)
	}
	return out
}

// stoerWagner computes a global minimum cut of the subgraph induced by
// `piece` (which must be connected, |piece| >= 2). It returns the cut
// weight and the original vertices on one side of the cut.
func stoerWagner(g *graph.Graph, piece []int32) (int64, []int32) {
	n := len(piece)
	idx := make(map[int32]int, n)
	for i, v := range piece {
		idx[v] = i
	}
	// Dense weight matrix of the contracted graph (unit edge weights).
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	for i, v := range piece {
		for _, u := range g.Neighbors(v) {
			if j, ok := idx[u]; ok && j != i {
				w[i][j]++
			}
		}
	}
	// merged[i] = original vertices currently contracted into supernode i.
	merged := make([][]int32, n)
	for i, v := range piece {
		merged[i] = []int32{v}
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	bestCut := int64(-1)
	var bestSide []int32

	weightTo := make([]int64, n)
	inA := make([]bool, n)
	for len(active) > 1 {
		// Maximum adjacency search over the active supernodes.
		for _, i := range active {
			weightTo[i] = 0
			inA[i] = false
		}
		prev, last := -1, -1
		for step := 0; step < len(active); step++ {
			sel := -1
			for _, i := range active {
				if !inA[i] && (sel < 0 || weightTo[i] > weightTo[sel]) {
					sel = i
				}
			}
			inA[sel] = true
			prev, last = last, sel
			for _, i := range active {
				if !inA[i] {
					weightTo[i] += w[sel][i]
				}
			}
		}
		// Cut of the phase: last supernode vs the rest.
		if bestCut < 0 || weightTo[last] < bestCut {
			bestCut = weightTo[last]
			bestSide = append([]int32(nil), merged[last]...)
		}
		// Contract last into prev.
		for _, i := range active {
			if i != prev && i != last {
				w[prev][i] += w[last][i]
				w[i][prev] = w[prev][i]
			}
		}
		merged[prev] = append(merged[prev], merged[last]...)
		for ai, i := range active {
			if i == last {
				active = append(active[:ai], active[ai+1:]...)
				break
			}
		}
	}
	return bestCut, bestSide
}

// Lambda returns each vertex's connectivity number: the largest k such
// that v belongs to a k-ECC with at least two vertices (0 if none).
// Computed by decomposing at successive k until everything dissolves.
func Lambda(g *graph.Graph) []int32 {
	n := g.NumVertices()
	lambda := make([]int32, n)
	// Edge connectivity of any subgraph is bounded by its minimum degree,
	// hence by the degeneracy; iterate k upward until no k-ECC remains.
	for k := int32(1); ; k++ {
		label, count := Decompose(g, k)
		if count == 0 {
			return lambda
		}
		for v := 0; v < n; v++ {
			if label[v] >= 0 {
				lambda[v] = k
			}
		}
	}
}

// BuildHierarchy assembles the ECC hierarchy into the shared forest
// container: one tree node per (k, k-ECC) pair whose component contains
// vertices of connectivity exactly k, with containment as tree edges —
// the ecc analogue of the HCD, per §VI. It also returns the per-vertex
// connectivity numbers. Isolated/never-connected vertices (lambda 0) form
// level-0 singleton roots like the HCD's 0-shell nodes.
func BuildHierarchy(g *graph.Graph) (*hierarchy.HCD, []int32) {
	n := g.NumVertices()
	lambda := Lambda(g)
	h := &hierarchy.HCD{TID: make([]hierarchy.NodeID, n)}
	for i := range h.TID {
		h.TID[i] = hierarchy.Nil
	}
	maxL := int32(0)
	for _, l := range lambda {
		if l > maxL {
			maxL = l
		}
	}
	deepest := make([]hierarchy.NodeID, n)
	for i := range deepest {
		deepest[i] = hierarchy.Nil
	}
	for k := maxL; k >= 0; k-- {
		label, count := Decompose(g, k)
		groups := make([][]int32, count)
		for v := int32(0); v < int32(n); v++ {
			if label[v] >= 0 {
				groups[label[v]] = append(groups[label[v]], v)
			} else if k == 0 {
				groups = append(groups, []int32{v})
			}
		}
		for _, verts := range groups {
			var shell []int32
			for _, v := range verts {
				if lambda[v] == k {
					shell = append(shell, v)
				}
			}
			if len(shell) == 0 {
				continue
			}
			id := hierarchy.NodeID(len(h.K))
			h.K = append(h.K, k)
			h.Parent = append(h.Parent, hierarchy.Nil)
			h.Children = append(h.Children, nil)
			h.Vertices = append(h.Vertices, shell)
			for _, v := range shell {
				h.TID[v] = id
			}
			seen := map[hierarchy.NodeID]bool{}
			for _, v := range verts {
				if d := deepest[v]; d != hierarchy.Nil && d != id && !seen[d] && h.Parent[d] == hierarchy.Nil {
					seen[d] = true
					h.Parent[d] = id
					h.Children[id] = append(h.Children[id], d)
				}
			}
			for _, v := range verts {
				deepest[v] = id
			}
		}
	}
	// Deterministic child order for reproducibility.
	for i := range h.Children {
		sort.Slice(h.Children[i], func(a, b int) bool { return h.Children[i][a] < h.Children[i][b] })
	}
	return h, lambda
}
