package ecc

import (
	"math/rand"
	"sort"
	"testing"

	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

func k4pair() *graph.Graph {
	// Two K4s joined by a single bridge edge.
	var edges []graph.Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
			edges = append(edges, graph.Edge{U: int32(i + 4), V: int32(j + 4)})
		}
	}
	edges = append(edges, graph.Edge{U: 3, V: 4})
	return graph.MustFromEdges(8, edges)
}

func groupsOf(label []int32, count int32) [][]int32 {
	groups := make([][]int32, count)
	for v, l := range label {
		if l >= 0 {
			groups[l] = append(groups[l], int32(v))
		}
	}
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

func TestDecomposeKnownGraphs(t *testing.T) {
	g := k4pair()
	// k=3: the two K4s, separately (bridge weight 1 < 3).
	label, count := Decompose(g, 3)
	if count != 2 {
		t.Fatalf("3-ECC count = %d, want 2", count)
	}
	gr := groupsOf(label, count)
	if len(gr[0]) != 4 || len(gr[1]) != 4 || gr[0][0] != 0 || gr[1][0] != 4 {
		t.Errorf("3-ECCs = %v", gr)
	}
	// k=1: the whole graph.
	label, count = Decompose(g, 1)
	if count != 1 || label[0] != label[7] {
		t.Errorf("1-ECC should be the whole graph: count=%d", count)
	}
	// k=2: the bridge still splits (cut weight 1 < 2).
	_, count = Decompose(g, 2)
	if count != 2 {
		t.Errorf("2-ECC count = %d, want 2", count)
	}
	// k=4: K4 has edge connectivity 3, so nothing survives.
	_, count = Decompose(g, 4)
	if count != 0 {
		t.Errorf("4-ECC count = %d, want 0", count)
	}

	// A cycle is exactly 2-edge-connected.
	cyc := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0},
	})
	if _, count := Decompose(cyc, 2); count != 1 {
		t.Error("cycle should be one 2-ECC")
	}
	if _, count := Decompose(cyc, 3); count != 0 {
		t.Error("cycle is not 3-edge-connected")
	}

	// A tree has no 2-ECC.
	tree := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 1, V: 3}})
	if _, count := Decompose(tree, 2); count != 0 {
		t.Error("tree should have no 2-ECC")
	}
	if lbl, count := Decompose(tree, 1); count != 1 || lbl[3] != lbl[0] {
		t.Error("tree is one 1-ECC")
	}
}

func TestOverlappingDenseBlocksMerge(t *testing.T) {
	// Two K4s sharing a vertex: the cut separating them has weight 3, so
	// for k=3 they merge into a single 3-ECC.
	var edges []graph.Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	// Second K4 on {3,4,5,6} (3 is shared).
	verts := []int32{3, 4, 5, 6}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, graph.Edge{U: verts[i], V: verts[j]})
		}
	}
	g := graph.MustFromEdges(7, edges)
	_, count := Decompose(g, 3)
	if count != 1 {
		t.Errorf("two K4s sharing a vertex form one 3-ECC, got %d", count)
	}
}

// --- brute-force validation ----------------------------------------------

// edgeConnectivityBrute computes the induced subgraph's edge connectivity
// by enumerating every 2-partition (|S| <= 16).
func edgeConnectivityBrute(g *graph.Graph, verts []int32) int {
	n := len(verts)
	if n < 2 {
		return 0
	}
	best := -1
	for mask := 1; mask < (1<<n)-1; mask++ {
		cut := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if (mask>>i)&1 != (mask>>j)&1 && g.HasEdge(verts[i], verts[j]) {
					cut++
				}
			}
		}
		if best < 0 || cut < best {
			best = cut
		}
	}
	return best
}

// bruteKECC computes the maximal k-edge-connected vertex sets by subset
// enumeration (n <= 10).
func bruteKECC(g *graph.Graph, k int32) [][]int32 {
	n := g.NumVertices()
	var ok []int
	for mask := 0; mask < 1<<n; mask++ {
		var verts []int32
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				verts = append(verts, int32(v))
			}
		}
		if len(verts) < 2 {
			continue
		}
		if edgeConnectivityBrute(g, verts) >= int(k) {
			ok = append(ok, mask)
		}
	}
	var maximal [][]int32
	for _, m := range ok {
		isMax := true
		for _, o := range ok {
			if o != m && o&m == m {
				isMax = false
				break
			}
		}
		if isMax {
			var verts []int32
			for v := 0; v < n; v++ {
				if m&(1<<v) != 0 {
					verts = append(verts, int32(v))
				}
			}
			maximal = append(maximal, verts)
		}
	}
	sort.Slice(maximal, func(i, j int) bool { return maximal[i][0] < maximal[j][0] })
	return maximal
}

func TestDecomposeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(5) // <= 9 vertices
		m := rng.Intn(2 * n * (n - 1) / 3)
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		for k := int32(1); k <= 3; k++ {
			label, count := Decompose(g, k)
			got := groupsOf(label, count)
			want := bruteKECC(g, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: %d groups, brute force %d\n got %v\nwant %v",
					trial, k, len(got), len(want), got, want)
			}
			for i := range got {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("trial %d k=%d group %d: %v vs %v", trial, k, i, got[i], want[i])
				}
				for j := range got[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("trial %d k=%d group %d: %v vs %v", trial, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestLambdaAndHierarchy(t *testing.T) {
	g := k4pair()
	h, lambda := BuildHierarchy(g)
	// K4 vertices have connectivity 3.
	for v := 0; v < 8; v++ {
		if lambda[v] != 3 {
			t.Errorf("lambda[%d] = %d, want 3", v, lambda[v])
		}
	}
	// Hierarchy: one 1-ECC root holding... the root's shell is empty of
	// connectivity-1 vertices, so the forest has the two 3-ECC nodes under
	// a level-1 node only if some vertex has lambda 1. Here all lambdas
	// are 3, so the forest is two roots.
	if h.NumNodes() != 2 {
		t.Fatalf("|T| = %d, want 2", h.NumNodes())
	}
	for i := 0; i < h.NumNodes(); i++ {
		if h.K[i] != 3 || h.Parent[i] != hierarchy.Nil {
			t.Errorf("node %d: k=%d parent=%d", i, h.K[i], h.Parent[i])
		}
	}

	// Attach a pendant to get a genuine two-level hierarchy.
	var edges []graph.Edge
	g.Edges(func(u, v int32) { edges = append(edges, graph.Edge{U: u, V: v}) })
	edges = append(edges, graph.Edge{U: 0, V: 8})
	g2 := graph.MustFromEdges(9, edges)
	h2, lambda2 := BuildHierarchy(g2)
	if lambda2[8] != 1 {
		t.Errorf("pendant lambda = %d, want 1", lambda2[8])
	}
	if h2.NumNodes() != 3 {
		t.Fatalf("|T| = %d, want 3", h2.NumNodes())
	}
	root := h2.TID[8]
	if h2.K[root] != 1 || len(h2.Children[root]) != 2 {
		t.Errorf("root node wrong: k=%d children=%d", h2.K[root], len(h2.Children[root]))
	}
}

func TestHierarchyStructureOnGenerated(t *testing.T) {
	g := gen.PlantedPartition(3, 12, 0.5, 0.02, 5)
	h, lambda := BuildHierarchy(g)
	// Every vertex in exactly one node, at its lambda level.
	seen := make([]bool, g.NumVertices())
	for i := 0; i < h.NumNodes(); i++ {
		for _, v := range h.Vertices[i] {
			if seen[v] {
				t.Fatalf("vertex %d in two nodes", v)
			}
			seen[v] = true
			if lambda[v] != h.K[i] {
				t.Errorf("vertex %d lambda %d in level-%d node", v, lambda[v], h.K[i])
			}
		}
		if p := h.Parent[i]; p != hierarchy.Nil && h.K[p] >= h.K[i] {
			t.Errorf("parent level not lower")
		}
	}
	for v, s := range seen {
		if !s {
			t.Errorf("vertex %d missing from hierarchy", v)
		}
	}
	if len(h.TopDown()) != h.NumNodes() {
		t.Error("forest traversal incomplete")
	}
}

func TestStoerWagnerKnownCuts(t *testing.T) {
	g := k4pair()
	verts := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	cut, side := stoerWagner(g, verts)
	if cut != 1 {
		t.Errorf("min cut = %d, want 1 (the bridge)", cut)
	}
	if len(side) == 0 || len(side) == len(verts) {
		t.Errorf("degenerate side: %v", side)
	}
	// Complete graph K5: min cut 4.
	var edges []graph.Edge
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	k5 := graph.MustFromEdges(5, edges)
	cut, _ = stoerWagner(k5, []int32{0, 1, 2, 3, 4})
	if cut != 4 {
		t.Errorf("K5 min cut = %d, want 4", cut)
	}
}

func TestStoerWagnerMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(6)
		var edges []graph.Edge
		for i := 0; i < 3*n; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		// Use the largest connected piece.
		label, _ := g.ConnectedComponents()
		byComp := map[int32][]int32{}
		for v := 0; v < n; v++ {
			byComp[label[v]] = append(byComp[label[v]], int32(v))
		}
		var piece []int32
		for _, p := range byComp {
			if len(p) > len(piece) {
				piece = p
			}
		}
		if len(piece) < 2 {
			continue
		}
		got, _ := stoerWagner(g, piece)
		want := edgeConnectivityBrute(g, piece)
		if got != int64(want) {
			t.Fatalf("trial %d: stoerWagner %d, brute %d (piece %v)", trial, got, want, piece)
		}
	}
}
