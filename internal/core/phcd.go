// Package core implements the paper's primary contribution: PHCD, the
// first parallel algorithm for hierarchical core decomposition (§III).
//
// PHCD abandons LCPS's inherently sequential priority search (the problem
// is P-complete, Theorem 1). Instead it adds the k-shells to an initially
// empty graph in descending coreness order and grows the HCD bottom-up,
// maintaining component connectivity — and each component's pivot, the
// vertex of minimum vertex rank — in a concurrent union-find. Per level k
// it runs the four barrier-separated steps of Algorithm 2:
//
//	Step 1: for every k-shell vertex, record the pivots of the adjacent
//	        deeper cores (kpc_pivot) — these will become children.
//	Step 2: union every k-shell vertex with its neighbors of coreness
//	        >= k, merging deeper cores into the new k-cores.
//	Step 3: every component now has a k-shell pivot; one tree node is
//	        created per pivot and the k-shell vertices are grouped into
//	        the nodes by their pivots.
//	Step 4: each recorded deeper-core pivot now lives in a component whose
//	        pivot owns a new k-core node: link parent and child.
//
// Total work is O(n√p + m·α(n) + F), near-linear in m (§III-D).
//
// The package also provides the two comparison baselines of Table III: LB,
// the lower-bound cost of any union-find-based construction (one union per
// edge, nothing else), and DivideConquer, the partition-merge alternative
// of §III-E whose RC-based merge the paper shows to be uncompetitive.
package core

import (
	"sync/atomic"

	"hcd/internal/coredecomp"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/par"
	"hcd/internal/unionfind"
)

// PHCD constructs the HCD of g in parallel using `threads` goroutines
// (0 = GOMAXPROCS). core must be g's core decomposition (e.g. from
// coredecomp.Parallel). Implements Algorithm 2.
func PHCD(g *graph.Graph, core []int32, threads int) *hierarchy.HCD {
	n := g.NumVertices()
	h := &hierarchy.HCD{TID: make([]hierarchy.NodeID, n)}
	for i := range h.TID {
		h.TID[i] = hierarchy.Nil
	}
	if n == 0 {
		return h
	}
	p := par.Threads(threads)

	// Algorithm 1: vertex ranks and the k-shell index.
	rank := coredecomp.RankVertices(core, p)

	if p == 1 {
		// The sequential version of PHCD (§V-B compares it against LCPS):
		// same four steps, but over the serial union-find with in-union
		// pivot maintenance — no atomics, no barriers.
		phcdSerial(g, core, rank, h)
		return h
	}

	// Union-find with pivot (§III-B). Linking by vertex rank makes every
	// set's root its pivot; see the unionfind package comment for the
	// equivalence argument.
	uf := unionfind.NewConcurrent(n, rank.Rank)

	// inKpc[v] guards the "add pvt to kpc_pivot if not exists" of Step 1,
	// reset after every level.
	inKpc := make([]atomic.Bool, n)

	newNode := func(k int32) hierarchy.NodeID {
		id := hierarchy.NodeID(len(h.K))
		h.K = append(h.K, k)
		h.Parent = append(h.Parent, hierarchy.Nil)
		h.Children = append(h.Children, nil)
		h.Vertices = append(h.Vertices, nil)
		return id
	}

	kpcLocal := make([][]int32, p)
	pivLocal := make([][]int32, p)
	type link struct{ child, pivot int32 }
	linkLocal := make([][]link, p)

	for k := rank.KMax; k >= 0; k-- {
		shell := rank.Shell(k)
		ns := len(shell)
		if ns == 0 {
			continue
		}

		// Step 1: find the deeper-core pivots that will merge with this
		// shell. Must complete before any Step 2 union (par.For barriers).
		par.For(p, p, func(tlo, thi int) {
			for t := tlo; t < thi; t++ {
				local := kpcLocal[t][:0]
				for i := t * ns / p; i < (t+1)*ns/p; i++ {
					v := shell[i]
					for _, u := range g.Neighbors(v) {
						if core[u] > k {
							pvt := uf.Find(u)
							// Cheap read before the CAS: most deeper
							// neighbors share a few pivots, so the flag is
							// usually already set.
							if !inKpc[pvt].Load() && inKpc[pvt].CompareAndSwap(false, true) {
								local = append(local, pvt)
							}
						}
					}
				}
				kpcLocal[t] = local
			}
		})

		// Step 2: connect the shell to everything of coreness >= k. For
		// same-shell edges one direction suffices (union is symmetric).
		par.For(p, p, func(tlo, thi int) {
			for t := tlo; t < thi; t++ {
				for i := t * ns / p; i < (t+1)*ns/p; i++ {
					v := shell[i]
					for _, u := range g.Neighbors(v) {
						if core[u] > k || (core[u] == k && u > v) {
							uf.Union(v, u)
						}
					}
				}
			}
		})

		// Step 3: one node per pivot; group shell vertices by pivot.
		// Every component touched this level has a k-shell pivot, and in
		// the rank-linked union-find the pivot is the root, so the pivots
		// are exactly the shell vertices that are their own root.
		par.For(p, p, func(tlo, thi int) {
			for t := tlo; t < thi; t++ {
				local := pivLocal[t][:0]
				for i := t * ns / p; i < (t+1)*ns/p; i++ {
					v := shell[i]
					if uf.Find(v) == v {
						local = append(local, v)
					}
				}
				pivLocal[t] = local
			}
		})
		firstNode := len(h.K)
		for t := 0; t < p; t++ {
			for _, pvt := range pivLocal[t] {
				h.TID[pvt] = newNode(k)
			}
		}
		numNew := len(h.K) - firstNode
		sizes := make([]atomic.Int64, numNew)
		par.ForEach(ns, p, func(i int) {
			v := shell[i]
			pvt := uf.Find(v)
			id := h.TID[pvt]
			if v != pvt { // the pivot's own tid was already set serially
				h.TID[v] = id
			}
			sizes[int(id)-firstNode].Add(1)
		})
		for j := 0; j < numNew; j++ {
			h.Vertices[firstNode+j] = make([]int32, sizes[j].Load())
		}
		cursors := make([]atomic.Int64, numNew)
		par.ForEach(ns, p, func(i int) {
			v := shell[i]
			j := int(h.TID[v]) - firstNode
			h.Vertices[firstNode+j][cursors[j].Add(1)-1] = v
		})

		// Step 4: the recorded deeper-core pivots hang under the new
		// nodes. The Find runs in parallel; the child-list appends are
		// applied serially (their total count is |T|-1 over the whole run).
		par.For(p, p, func(tlo, thi int) {
			for t := tlo; t < thi; t++ {
				links := linkLocal[t][:0]
				for _, v := range kpcLocal[t] {
					links = append(links, link{child: v, pivot: uf.Find(v)})
					inKpc[v].Store(false)
				}
				linkLocal[t] = links
			}
		})
		for t := 0; t < p; t++ {
			for _, l := range linkLocal[t] {
				ch := h.TID[l.child]
				pa := h.TID[l.pivot]
				h.Parent[ch] = pa
				h.Children[pa] = append(h.Children[pa], ch)
			}
		}
	}
	return h
}

// LB is Table III's lower-bound baseline: the cost of a union-find-based
// construction stripped to its minimum — one union per edge of the graph
// over the same rank-linked structure, with no hierarchy bookkeeping. It
// returns the number of connected components so the work cannot be
// optimised away.
func LB(g *graph.Graph, core []int32, threads int) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	p := par.Threads(threads)
	rank := coredecomp.RankVertices(core, p)
	if p == 1 {
		// Serial lower bound over the serial union-find, matching the
		// structure phcdSerial runs on.
		uf := unionfind.New(n, rank.Rank)
		for v := int32(0); v < int32(n); v++ {
			rv := uf.Find(v)
			for _, u := range g.Neighbors(v) {
				if u > v {
					rv = uf.UnionRoot(rv, u)
				}
			}
		}
		count := 0
		for v := int32(0); v < int32(n); v++ {
			if uf.Find(v) == v {
				count++
			}
		}
		return count
	}
	uf := unionfind.NewConcurrent(n, rank.Rank)
	par.ForEach(n, p, func(i int) {
		v := int32(i)
		for _, u := range g.Neighbors(v) {
			if u > v {
				uf.Union(v, u)
			}
		}
	})
	count := 0
	for v := int32(0); v < int32(n); v++ {
		if uf.Find(v) == v {
			count++
		}
	}
	return count
}
