// Package core implements the paper's primary contribution: PHCD, the
// first parallel algorithm for hierarchical core decomposition (§III).
//
// PHCD abandons LCPS's inherently sequential priority search (the problem
// is P-complete, Theorem 1). Instead it adds the k-shells to an initially
// empty graph in descending coreness order and grows the HCD bottom-up,
// maintaining component connectivity — and each component's pivot, the
// vertex of minimum vertex rank — in a concurrent union-find. Per level k
// it runs the four barrier-separated steps of Algorithm 2:
//
//	Step 1: for every k-shell vertex, record the pivots of the adjacent
//	        deeper cores (kpc_pivot) — these will become children.
//	Step 2: union every k-shell vertex with its neighbors of coreness
//	        >= k, merging deeper cores into the new k-cores.
//	Step 3: every component now has a k-shell pivot; one tree node is
//	        created per pivot and the k-shell vertices are grouped into
//	        the nodes by their pivots.
//	Step 4: each recorded deeper-core pivot now lives in a component whose
//	        pivot owns a new k-core node: link parent and child.
//
// Total work is O(n√p + m·α(n) + F), near-linear in m (§III-D).
//
// Steps 1-2 accept an optional shellidx.Layout: with the coreness-ordered
// adjacency, the per-edge filters "c(u) > k" / "c(u) >= k" become O(1)
// prefix subslices and the level loop never visits a shallower neighbor,
// cutting the total edge work from 2m visits (every edge from both sides)
// to m (each edge only from its lower-coreness side). Step 3 groups the
// shell with a par.GroupBy prefix-sum scatter instead of atomic cursors,
// which both removes the contended counters and makes the fill order of
// h.Vertices deterministic (see PHCDWithLayout).
//
// The package also provides the two comparison baselines of Table III: LB,
// the lower-bound cost of any union-find-based construction (one union per
// edge, nothing else), and DivideConquer, the partition-merge alternative
// of §III-E whose RC-based merge the paper shows to be uncompetitive.
// PHCDBaseline (baseline.go) freezes the pre-layout implementation for
// regression benchmarking.
package core

import (
	"context"
	"sort"
	"sync/atomic"

	"hcd/internal/coredecomp"
	"hcd/internal/faultinject"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/obs"
	"hcd/internal/par"
	"hcd/internal/shellidx"
	"hcd/internal/unionfind"
)

// PHCD constructs the HCD of g in parallel using `threads` goroutines
// (0 = GOMAXPROCS). core must be g's core decomposition (e.g. from
// coredecomp.Parallel). Implements Algorithm 2. Equivalent to
// PHCDWithLayout with a nil layout; callers that already hold a
// shellidx.Layout for (g, core) — e.g. to share with search.NewIndex —
// should pass it via PHCDWithLayout instead.
func PHCD(g *graph.Graph, core []int32, threads int) *hierarchy.HCD {
	return PHCDWithLayout(g, core, nil, threads)
}

// PHCDWithLayout is PHCD over a prebuilt coreness-ordered adjacency
// layout (shellidx.Build for the same g and core; nil falls back to
// filtered scans of the raw adjacency). The layout eliminates the
// shallower-neighbor half of every level's edge scan.
//
// The output is deterministic: node ids, h.Vertices contents and order,
// and h.Children order are identical for every thread count (including
// the serial path) and every run. Per node, h.Vertices lists the shell
// vertices in ascending id order.
//
// Thin wrapper over PHCDCtx; a contained worker panic re-raises on the
// calling goroutine.
func PHCDWithLayout(g *graph.Graph, core []int32, lay *shellidx.Layout, threads int) *hierarchy.HCD {
	h, err := PHCDCtx(context.Background(), g, core, lay, threads)
	if err != nil {
		panic(err)
	}
	return h
}

// PHCDCtx is PHCDWithLayout with failure containment and cooperative
// cancellation: a panic inside any of the four per-level steps — in a
// worker goroutine or on the coordinating path — surfaces as a
// *par.PanicError, and a cancelled ctx aborts the level loop at the next
// level boundary (there are kmax+1 levels, so cancellation latency is one
// level's work). On error the partially-built hierarchy is discarded;
// every worker has been joined before PHCDCtx returns.
func PHCDCtx(ctx context.Context, g *graph.Graph, core []int32, lay *shellidx.Layout, threads int) (h *hierarchy.HCD, err error) {
	defer func() {
		if r := recover(); r != nil {
			h, err = nil, par.AsPanicError(r)
		}
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumVertices()
	h = &hierarchy.HCD{TID: make([]hierarchy.NodeID, n)}
	for i := range h.TID {
		h.TID[i] = hierarchy.Nil
	}
	if n == 0 {
		return h, ctx.Err()
	}
	p := par.Threads(threads)

	// Algorithm 1: vertex ranks and the k-shell index.
	rank := coredecomp.RankVertices(core, p)

	if p == 1 {
		// The sequential version of PHCD (§V-B compares it against LCPS):
		// same four steps, but over the serial union-find with in-union
		// pivot maintenance — no atomics, no barriers.
		sp := obs.StartSpan("phcd.serial")
		defer sp.End()
		if err := phcdSerial(ctx, g, core, rank, lay, h); err != nil {
			return nil, err
		}
		return h, nil
	}
	sp := obs.StartSpan("phcd.parallel")
	defer sp.End()

	// Union-find with pivot (§III-B). Linking by vertex rank makes every
	// set's root its pivot; see the unionfind package comment for the
	// equivalence argument.
	uf := unionfind.NewConcurrent(n, rank.Rank)

	// inKpc[v] guards the "add pvt to kpc_pivot if not exists" of Step 1,
	// reset after every level.
	inKpc := make([]atomic.Bool, n)

	newNode := func(k int32) hierarchy.NodeID {
		id := hierarchy.NodeID(len(h.K))
		h.K = append(h.K, k)
		h.Parent = append(h.Parent, hierarchy.Nil)
		h.Children = append(h.Children, nil)
		h.Vertices = append(h.Vertices, nil)
		return id
	}

	kpcLocal := make([][]int32, p)
	pivLocal := make([][]int32, p)
	type link struct{ child, pivot int32 }
	linkLocal := make([][]link, p)
	links := make([]link, 0, 64)
	// nodeIdx[i] = level-local node index of shell[i], the GroupBy key.
	nodeIdx := make([]int32, n)

	for k := rank.KMax; k >= 0; k-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		shell := rank.Shell(k)
		ns := len(shell)
		if ns == 0 {
			continue
		}
		// Per-level and per-step trace spans (an errored level's open
		// spans are dropped, never recorded).
		lsp := obs.StartSpanArg("phcd.level", int64(k))

		// Step 1: find the deeper-core pivots that will merge with this
		// shell. Must complete before any Step 2 union (par.For barriers).
		ssp := obs.StartSpan("phcd.step1")
		err := par.ForErr(ctx, p, p, func(tlo, thi int) error {
			faultinject.Maybe("phcd.step1")
			for t := tlo; t < thi; t++ {
				local := kpcLocal[t][:0]
				for i := t * ns / p; i < (t+1)*ns/p; i++ {
					v := shell[i]
					deeper, filtered := g.Neighbors(v), true
					if lay != nil {
						deeper, filtered = lay.Deeper(v), false
					}
					for _, u := range deeper {
						if filtered && core[u] <= k {
							continue
						}
						pvt := uf.Find(u)
						// Cheap read before the CAS: most deeper
						// neighbors share a few pivots, so the flag is
						// usually already set.
						if !inKpc[pvt].Load() && inKpc[pvt].CompareAndSwap(false, true) {
							local = append(local, pvt)
						}
					}
				}
				kpcLocal[t] = local
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		ssp.End()

		// Step 2: connect the shell to everything of coreness >= k. For
		// same-shell edges one direction suffices (union is symmetric);
		// with the layout, the same-shell segment is id-sorted, so the
		// u > v half is the suffix past a binary search.
		ssp = obs.StartSpan("phcd.step2")
		err = par.ForErr(ctx, p, p, func(tlo, thi int) error {
			faultinject.Maybe("phcd.step2")
			for t := tlo; t < thi; t++ {
				for i := t * ns / p; i < (t+1)*ns/p; i++ {
					v := shell[i]
					if lay != nil {
						for _, u := range lay.Deeper(v) {
							uf.Union(v, u)
						}
						same := lay.Same(v)
						for _, u := range same[suffixAfter(same, v):] {
							uf.Union(v, u)
						}
						continue
					}
					for _, u := range g.Neighbors(v) {
						if core[u] > k || (core[u] == k && u > v) {
							uf.Union(v, u)
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		ssp.End()

		// Step 3: one node per pivot; group shell vertices by pivot.
		// Every component touched this level has a k-shell pivot, and in
		// the rank-linked union-find the pivot is the root, so the pivots
		// are exactly the shell vertices that are their own root.
		ssp = obs.StartSpan("phcd.step3")
		err = par.ForErr(ctx, p, p, func(tlo, thi int) error {
			faultinject.Maybe("phcd.step3")
			for t := tlo; t < thi; t++ {
				local := pivLocal[t][:0]
				for i := t * ns / p; i < (t+1)*ns/p; i++ {
					v := shell[i]
					if uf.Find(v) == v {
						local = append(local, v)
					}
				}
				pivLocal[t] = local
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Concatenating the per-thread pivot lists in thread order visits
		// the pivots in ascending shell position — the chunks are
		// contiguous — so node ids do not depend on the thread count. A
		// pivot is the minimum-rank (= minimum-id) member of its group,
		// i.e. its group's first vertex in shell order, which is exactly
		// the order the serial path first encounters (and numbers) the
		// groups in.
		firstNode := len(h.K)
		for t := 0; t < p; t++ {
			for _, pvt := range pivLocal[t] {
				h.TID[pvt] = newNode(k)
			}
		}
		numNew := len(h.K) - firstNode
		// Group the shell by node with a deterministic prefix-sum scatter
		// (no atomic sizes/cursors): GroupBy keeps each group in ascending
		// shell position = ascending id, so every node's vertex list is
		// filled exactly as the serial path appends it.
		err = par.ForEachErr(ctx, ns, p, func(i int) error {
			v := shell[i]
			pvt := uf.Find(v)
			id := h.TID[pvt]
			if v != pvt { // the pivot's own tid was already set serially
				h.TID[v] = id
			}
			nodeIdx[i] = int32(int(id) - firstNode)
			return nil
		})
		if err != nil {
			return nil, err
		}
		starts, order := par.GroupBy(ns, numNew, p, func(i int) int32 { return nodeIdx[i] })
		slab := make([]int32, ns)
		err = par.ForEachErr(ctx, ns, p, func(i int) error { slab[i] = shell[order[i]]; return nil })
		if err != nil {
			return nil, err
		}
		for j := 0; j < numNew; j++ {
			// Full slice expressions keep later appends to one node's list
			// from clobbering its slab neighbor.
			h.Vertices[firstNode+j] = slab[starts[j]:starts[j+1]:starts[j+1]]
		}
		ssp.End()

		// Step 4: the recorded deeper-core pivots hang under the new
		// nodes. The Finds run in parallel; the links are applied serially
		// in ascending child order (which thread discovered a pivot in
		// Step 1 is scheduling-dependent, so the per-thread lists are
		// merged and sorted to keep h.Children deterministic).
		ssp = obs.StartSpan("phcd.step4")
		err = par.ForErr(ctx, p, p, func(tlo, thi int) error {
			faultinject.Maybe("phcd.step4")
			for t := tlo; t < thi; t++ {
				local := linkLocal[t][:0]
				for _, v := range kpcLocal[t] {
					local = append(local, link{child: v, pivot: uf.Find(v)})
					inKpc[v].Store(false)
				}
				linkLocal[t] = local
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		links = links[:0]
		for t := 0; t < p; t++ {
			links = append(links, linkLocal[t]...)
		}
		sort.Slice(links, func(a, b int) bool { return links[a].child < links[b].child })
		for _, l := range links {
			ch := h.TID[l.child]
			pa := h.TID[l.pivot]
			h.Parent[ch] = pa
			h.Children[pa] = append(h.Children[pa], ch)
		}
		ssp.End()
		lsp.End()
	}
	return h, nil
}

// suffixAfter returns the first index i with list[i] > v, for an
// ascending-sorted list. Hand-rolled binary search so it inlines into the
// level loop (sort.Search takes a func value).
func suffixAfter(list []int32, v int32) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LB is Table III's lower-bound baseline: the cost of a union-find-based
// construction stripped to its minimum — one union per edge of the graph
// over the same rank-linked structure, with no hierarchy bookkeeping. It
// returns the number of connected components so the work cannot be
// optimised away.
func LB(g *graph.Graph, core []int32, threads int) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	p := par.Threads(threads)
	rank := coredecomp.RankVertices(core, p)
	if p == 1 {
		// Serial lower bound over the serial union-find, matching the
		// structure phcdSerial runs on.
		uf := unionfind.New(n, rank.Rank)
		for v := int32(0); v < int32(n); v++ {
			rv := uf.Find(v)
			for _, u := range g.Neighbors(v) {
				if u > v {
					rv = uf.UnionRoot(rv, u)
				}
			}
		}
		count := 0
		for v := int32(0); v < int32(n); v++ {
			if uf.Find(v) == v {
				count++
			}
		}
		return count
	}
	uf := unionfind.NewConcurrent(n, rank.Rank)
	//hcdlint:allow panic-safety LB is Table III's lower-bound baseline; wrapping it in the Err machinery would add the very bookkeeping the bound exists to exclude
	par.ForEach(n, p, func(i int) {
		v := int32(i)
		for _, u := range g.Neighbors(v) {
			if u > v {
				uf.Union(v, u)
			}
		}
	})
	count := 0
	for v := int32(0); v < int32(n); v++ {
		if uf.Find(v) == v {
			count++
		}
	}
	return count
}
