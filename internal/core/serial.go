package core

import (
	"context"
	"slices"

	"hcd/internal/coredecomp"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/shellidx"
	"hcd/internal/unionfind"
)

// phcdSerial is the single-thread specialisation of Algorithm 2: identical
// step structure, but running over the serial union-find (§III-B: parent
// pointer, size-based union, pivot stored at the cardinal element) with no
// atomic operations. This is the configuration Table III's "(1)" column
// measures against LCPS. With a layout, the fused scan touches only the
// coreness >= k prefix of each list — m edge visits total instead of 2m.
// A cancelled ctx aborts between levels; panics propagate to PHCDCtx's
// recovery.
func phcdSerial(ctx context.Context, g *graph.Graph, core []int32, rank *coredecomp.Ranking, lay *shellidx.Layout, h *hierarchy.HCD) error {
	n := g.NumVertices()
	uf := unionfind.New(n, rank.Rank)
	inKpc := make([]bool, n)
	kpc := make([]int32, 0, 64)

	newNode := func(k int32) hierarchy.NodeID {
		id := hierarchy.NodeID(len(h.K))
		h.K = append(h.K, k)
		h.Parent = append(h.Parent, hierarchy.Nil)
		h.Children = append(h.Children, nil)
		h.Vertices = append(h.Vertices, nil)
		return id
	}

	for k := rank.KMax; k >= 0; k-- {
		if err := ctx.Err(); err != nil {
			return err
		}
		shell := rank.Shell(k)
		if len(shell) == 0 {
			continue
		}
		// Steps 1+2, fused into one edge scan (serial-only optimisation).
		// In Algorithm 2 the kpc_pivot collection (Step 1) finishes before
		// any union (Step 2); sequentially the same pivots are observed by
		// reading each edge's far-side pivot immediately before the union
		// that uses it: a deeper core C only ever merges into the growing
		// k-core through a union issued by some shell vertex adjacent to
		// C, and that vertex reads C's pivot (still of coreness > k) first.
		// Once merged, C's component's pivot is a k-shell vertex, so later
		// edges into C see coreness k and skip the record. Each edge costs
		// exactly one Find this way. The argument is order-independent, so
		// it survives the layout's segment-reordered iteration (all deeper
		// edges of a vertex before its same-shell edges).
		kpc = kpc[:0]
		if lay != nil {
			for _, v := range shell {
				rv := uf.Find(v)
				for _, u := range lay.Deeper(v) {
					ru := uf.Find(u)
					if pvt := uf.PivotOfRoot(ru); core[pvt] > k && !inKpc[pvt] {
						inKpc[pvt] = true
						kpc = append(kpc, pvt)
					}
					rv = uf.LinkRoots(rv, ru)
				}
				same := lay.Same(v)
				for _, u := range same[suffixAfter(same, v):] {
					rv = uf.LinkRoots(rv, uf.Find(u))
				}
			}
		} else {
			for _, v := range shell {
				rv := uf.Find(v)
				for _, u := range g.Neighbors(v) {
					if core[u] > k {
						ru := uf.Find(u)
						if pvt := uf.PivotOfRoot(ru); core[pvt] > k && !inKpc[pvt] {
							inKpc[pvt] = true
							kpc = append(kpc, pvt)
						}
						rv = uf.LinkRoots(rv, ru)
					} else if core[u] == k && u > v {
						rv = uf.LinkRoots(rv, uf.Find(u))
					}
				}
			}
		}
		// Step 3: one node per pivot; group the shell by pivot.
		for _, v := range shell {
			pvt := uf.Pivot(v)
			id := h.TID[pvt]
			if id == hierarchy.Nil {
				id = newNode(k)
				h.TID[pvt] = id
			}
			h.TID[v] = id
			h.Vertices[id] = append(h.Vertices[id], v)
		}
		// Step 4: the recorded deeper pivots hang under the new nodes,
		// linked in ascending child order to match the parallel path's
		// deterministic h.Children (kpc discovery order depends on which
		// adjacency layout drove the scan).
		sortInt32(kpc)
		for _, v := range kpc {
			inKpc[v] = false
			ch := h.TID[v]
			pa := h.TID[uf.Pivot(v)]
			h.Parent[ch] = pa
			h.Children[pa] = append(h.Children[pa], ch)
		}
	}
	return nil
}

// sortInt32 insertion-sorts short slices in place (kpc lists are almost
// always tiny) and defers to slices.Sort otherwise.
func sortInt32(xs []int32) {
	if len(xs) >= 24 {
		slices.Sort(xs)
		return
	}
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > x {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}
