package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/shellidx"
)

// withLayout adapts PHCDWithLayout to checkConstructor's build signature,
// constructing the layout fresh for the requested thread count.
func withLayout(g *graph.Graph, core []int32, threads int) *hierarchy.HCD {
	r := coredecomp.RankVertices(core, threads)
	lay := shellidx.Build(g, core, r, threads)
	return PHCDWithLayout(g, core, lay, threads)
}

func TestPHCDWithLayoutMatchesBruteForce(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"single", graph.MustFromEdges(1, nil)},
		{"isolated", graph.MustFromEdges(6, nil)},
		{"edge", graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})},
		{"er", gen.ErdosRenyi(200, 800, 1)},
		{"ba", gen.BarabasiAlbert(150, 4, 3)},
		{"rmat", gen.RMAT(8, 1200, 4)},
		{"onion", gen.Onion(6, 12, 2, 2, 3, 5)},
		{"planted", gen.PlantedPartition(4, 40, 0.25, 0.01, 6)},
	}
	for _, c := range cases {
		checkConstructor(t, c.name, c.g, withLayout)
	}
}

func TestPHCDWithLayoutProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint16, p uint8) bool {
		n := int(nRaw%150) + 1
		m := int(mRaw % 900)
		g := randomGraph(n, m, seed)
		core := coredecomp.Serial(g)
		threads := int(p%8) + 1
		got := withLayout(g, core, threads)
		return hierarchy.Equal(got, PHCD(g, core, 1)) &&
			hierarchy.Validate(got, g, core) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The determinism contract of the rewrite: node ids, vertex-list contents
// and order, and child-list order are identical for every thread count and
// for the with/without-layout variants, all matching the serial builder's
// per-shell ascending-id order.
func TestPHCDDeterministicAcrossThreadsAndLayout(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"er", gen.ErdosRenyi(400, 1600, 7)},
		{"ba", gen.BarabasiAlbert(300, 5, 8)},
		{"rmat", gen.RMAT(9, 2500, 9)},
		{"onion", gen.Onion(6, 14, 2, 2, 3, 10)},
		{"random", randomGraph(250, 1000, 11)},
	}
	for _, c := range cases {
		core := coredecomp.Serial(c.g)
		ref := PHCD(c.g, core, 1) // serial reference

		// Per-node vertex lists must be in ascending id order (= the
		// shell's order, shells being id-sorted).
		for id, vs := range ref.Vertices {
			for i := 1; i < len(vs); i++ {
				if vs[i-1] >= vs[i] {
					t.Fatalf("%s: node %d vertices not ascending: %v", c.name, id, vs)
				}
			}
		}

		r := coredecomp.RankVertices(core, 0)
		lay := shellidx.Build(c.g, core, r, 0)
		builds := []struct {
			tag string
			h   *hierarchy.HCD
		}{
			{"serial+layout", PHCDWithLayout(c.g, core, lay, 1)},
			{"p2", PHCD(c.g, core, 2)},
			{"p4", PHCD(c.g, core, 4)},
			{"p7", PHCD(c.g, core, 7)},
			{"p2+layout", PHCDWithLayout(c.g, core, lay, 2)},
			{"p5+layout", PHCDWithLayout(c.g, core, lay, 5)},
			{"p4-rerun", PHCD(c.g, core, 4)},
		}
		for _, b := range builds {
			if !reflect.DeepEqual(b.h.K, ref.K) {
				t.Fatalf("%s/%s: node K values differ from serial", c.name, b.tag)
			}
			if !reflect.DeepEqual(b.h.Vertices, ref.Vertices) {
				t.Fatalf("%s/%s: h.Vertices differs from serial", c.name, b.tag)
			}
			if !reflect.DeepEqual(b.h.Parent, ref.Parent) {
				t.Fatalf("%s/%s: h.Parent differs from serial", c.name, b.tag)
			}
			if !reflect.DeepEqual(b.h.TID, ref.TID) {
				t.Fatalf("%s/%s: h.TID differs from serial", c.name, b.tag)
			}
			if !reflect.DeepEqual(b.h.Children, ref.Children) {
				t.Fatalf("%s/%s: h.Children differs from serial", c.name, b.tag)
			}
		}
	}
}

// PHCDBaseline is frozen for benchmarking, but it must keep producing the
// same hierarchy (up to node renaming) as the rewrite.
func TestPHCDBaselineIsomorphic(t *testing.T) {
	cases := []*graph.Graph{
		gen.ErdosRenyi(250, 1000, 15),
		gen.BarabasiAlbert(200, 4, 16),
		gen.Onion(5, 12, 2, 2, 3, 17),
	}
	for i, g := range cases {
		core := coredecomp.Serial(g)
		want := PHCD(g, core, 0)
		for _, threads := range []int{1, 3, 6} {
			got := PHCDBaseline(g, core, threads)
			if err := hierarchy.Validate(got, g, core); err != nil {
				t.Fatalf("case %d threads=%d: baseline Validate: %v", i, threads, err)
			}
			if !hierarchy.Equal(got, want) {
				t.Fatalf("case %d threads=%d: baseline and rewrite disagree", i, threads)
			}
		}
	}
}

func TestPHCDSuiteWithLayout(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, d := range gen.Suite(1) {
		g := d.Build()
		core := coredecomp.Parallel(g, 0)
		r := coredecomp.RankVertices(core, 0)
		lay := shellidx.Build(g, core, r, 0)
		h := PHCDWithLayout(g, core, lay, 0)
		if err := hierarchy.Validate(h, g, core); err != nil {
			t.Errorf("%s: %v", d.Abbrev, err)
			continue
		}
		if !hierarchy.Equal(h, PHCDBaseline(g, core, 0)) {
			t.Errorf("%s: layout PHCD and baseline disagree", d.Abbrev)
		}
	}
}

func BenchmarkPHCDWithLayout(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 8, 1)
	core := coredecomp.Serial(g)
	r := coredecomp.RankVertices(core, 0)
	lay := shellidx.Build(g, core, r, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PHCDWithLayout(g, core, lay, 0)
	}
}

func BenchmarkPHCDBaseline(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 8, 1)
	core := coredecomp.Serial(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PHCDBaseline(g, core, 0)
	}
}

func BenchmarkLayoutBuildForPHCD(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 8, 1)
	core := coredecomp.Serial(g)
	r := coredecomp.RankVertices(core, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shellidx.Build(g, core, r, 0)
	}
}
