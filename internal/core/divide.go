package core

import (
	"hcd/internal/coredecomp"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/par"
	"hcd/internal/rc"
	"hcd/internal/unionfind"
)

// DivideConquer is the partition-based alternative construction of §III-E,
// implemented so Table III's ablation can measure it:
//
//  1. coreness is computed globally (by the caller, like PHCD);
//  2. the vertex set is split into `threads` contiguous partitions;
//  3. each partition independently groups its own vertices into partial
//     tree nodes (a per-partition union-find over intra-partition edges,
//     level by level — the parallelisable part);
//  4. partial nodes are merged into true k-core tree nodes with local
//     k-core searches (RC) over the full graph; and
//  5. parent-child relations fall out of the same RC traversals.
//
// Steps 4-5 are serial and RC-bound: every tree node costs a traversal of
// its entire original core, Σ|core(T_i)| work in total, which is why the
// paper rejects this paradigm (PHCD is 4-125x faster, Table III).
func DivideConquer(g *graph.Graph, core []int32, threads int) *hierarchy.HCD {
	n := g.NumVertices()
	h := &hierarchy.HCD{TID: make([]hierarchy.NodeID, n)}
	for i := range h.TID {
		h.TID[i] = hierarchy.Nil
	}
	if n == 0 {
		return h
	}
	p := par.Threads(threads)
	if p > n {
		p = n
	}
	rank := coredecomp.RankVertices(core, p)
	kmax := rank.KMax

	// Steps 2-3: per-partition partial nodes. seedsByLevel[k] collects one
	// seed vertex per partial node at level k (its partition-local pivot).
	seedLocal := make([][][]int32, p) // [thread][level][]seed
	//hcdlint:allow panic-safety DivideConquer is the Table III divide-and-conquer ablation baseline, timed against PHCD as-is; containment plumbing would distort the comparison
	par.For(p, p, func(tlo, thi int) {
		for t := tlo; t < thi; t++ {
			lo, hi := t*n/p, (t+1)*n/p
			seeds := make([][]int32, kmax+1)
			uf := unionfind.New(n, rank.Rank) // sparse use: only [lo,hi) touched
			for k := kmax; k >= 0; k-- {
				shell := rank.Shell(k)
				for _, v := range shell {
					if int(v) < lo || int(v) >= hi {
						continue
					}
					for _, u := range g.Neighbors(v) {
						if int(u) < lo || int(u) >= hi {
							continue
						}
						if core[u] > k || (core[u] == k && u > v) {
							uf.Union(v, u)
						}
					}
				}
				for _, v := range shell {
					if int(v) >= lo && int(v) < hi && uf.Pivot(v) == v {
						seeds[k] = append(seeds[k], v)
					}
				}
			}
			seedLocal[t] = seeds
		}
	})

	// Steps 4-5: serial RC-based merge, innermost level first. Each seed
	// whose vertex is still unassigned triggers a local k-core search that
	// materialises the full tree node and absorbs every other partial node
	// in the same k-core.
	searcher := rc.NewSearcher(g, core)
	deepest := make([]hierarchy.NodeID, n)
	for i := range deepest {
		deepest[i] = hierarchy.Nil
	}
	for k := kmax; k >= 0; k-- {
		for t := 0; t < p; t++ {
			for _, seed := range seedLocal[t][k] {
				if h.TID[seed] != hierarchy.Nil {
					continue // absorbed by an earlier merge at this level
				}
				comp := searcher.Search(seed, k)
				id := hierarchy.NodeID(len(h.K))
				h.K = append(h.K, k)
				h.Parent = append(h.Parent, hierarchy.Nil)
				h.Children = append(h.Children, nil)
				var verts []int32
				seen := map[hierarchy.NodeID]bool{}
				for _, v := range comp {
					if core[v] == k {
						verts = append(verts, v)
						h.TID[v] = id
					}
					if d := deepest[v]; d != hierarchy.Nil && d != id && !seen[d] && h.Parent[d] == hierarchy.Nil {
						seen[d] = true
						h.Parent[d] = id
						h.Children[id] = append(h.Children[id], d)
					}
				}
				h.Vertices = append(h.Vertices, verts)
				for _, v := range comp {
					deepest[v] = id
				}
			}
		}
	}
	return h
}
