package core

import (
	"sync/atomic"

	"hcd/internal/coredecomp"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/par"
	"hcd/internal/unionfind"
)

// PHCDBaseline is the frozen pre-layout implementation of Algorithm 2: full
// adjacency scans with per-level coreness filters in Steps 1-2, and an
// atomic size/cursor scatter in Step 3. It is kept verbatim as the
// regression reference for the core-ordered-layout + prefix-sum-scatter
// rewrite (see DESIGN.md and the `phcd` benchtab experiment): benchmarks
// compare PHCD/PHCDWithLayout against it, and tests assert the rewrite
// still produces isomorphic hierarchies. Not for production use — its
// Step 3 fill order of h.Vertices is scheduling-dependent.
func PHCDBaseline(g *graph.Graph, core []int32, threads int) *hierarchy.HCD {
	n := g.NumVertices()
	h := &hierarchy.HCD{TID: make([]hierarchy.NodeID, n)}
	for i := range h.TID {
		h.TID[i] = hierarchy.Nil
	}
	if n == 0 {
		return h
	}
	p := par.Threads(threads)

	rank := coredecomp.RankVertices(core, p)

	if p == 1 {
		phcdSerialBaseline(g, core, rank, h)
		return h
	}

	uf := unionfind.NewConcurrent(n, rank.Rank)
	inKpc := make([]atomic.Bool, n)

	newNode := func(k int32) hierarchy.NodeID {
		id := hierarchy.NodeID(len(h.K))
		h.K = append(h.K, k)
		h.Parent = append(h.Parent, hierarchy.Nil)
		h.Children = append(h.Children, nil)
		h.Vertices = append(h.Vertices, nil)
		return id
	}

	kpcLocal := make([][]int32, p)
	pivLocal := make([][]int32, p)
	type link struct{ child, pivot int32 }
	linkLocal := make([][]link, p)

	for k := rank.KMax; k >= 0; k-- {
		shell := rank.Shell(k)
		ns := len(shell)
		if ns == 0 {
			continue
		}

		// Step 1: full-scan filter for deeper-core pivots.
		//hcdlint:allow panic-safety PHCDBaseline is the frozen seed implementation regression tests diff the rewrite against; it must stay byte-for-byte the seed's algorithm, pre-dating the Err variants
		par.For(p, p, func(tlo, thi int) {
			for t := tlo; t < thi; t++ {
				local := kpcLocal[t][:0]
				for i := t * ns / p; i < (t+1)*ns/p; i++ {
					v := shell[i]
					for _, u := range g.Neighbors(v) {
						if core[u] > k {
							pvt := uf.Find(u)
							if !inKpc[pvt].Load() && inKpc[pvt].CompareAndSwap(false, true) {
								local = append(local, pvt)
							}
						}
					}
				}
				kpcLocal[t] = local
			}
		})

		// Step 2: full-scan filter for the >= k unions.
		//hcdlint:allow panic-safety PHCDBaseline is the frozen seed implementation regression tests diff the rewrite against; it must stay byte-for-byte the seed's algorithm, pre-dating the Err variants
		par.For(p, p, func(tlo, thi int) {
			for t := tlo; t < thi; t++ {
				for i := t * ns / p; i < (t+1)*ns/p; i++ {
					v := shell[i]
					for _, u := range g.Neighbors(v) {
						if core[u] > k || (core[u] == k && u > v) {
							uf.Union(v, u)
						}
					}
				}
			}
		})

		// Step 3: atomic size count + atomic cursor scatter.
		//hcdlint:allow panic-safety PHCDBaseline is the frozen seed implementation regression tests diff the rewrite against; it must stay byte-for-byte the seed's algorithm, pre-dating the Err variants
		par.For(p, p, func(tlo, thi int) {
			for t := tlo; t < thi; t++ {
				local := pivLocal[t][:0]
				for i := t * ns / p; i < (t+1)*ns/p; i++ {
					v := shell[i]
					if uf.Find(v) == v {
						local = append(local, v)
					}
				}
				pivLocal[t] = local
			}
		})
		firstNode := len(h.K)
		for t := 0; t < p; t++ {
			for _, pvt := range pivLocal[t] {
				h.TID[pvt] = newNode(k)
			}
		}
		numNew := len(h.K) - firstNode
		sizes := make([]atomic.Int64, numNew)
		//hcdlint:allow panic-safety PHCDBaseline is the frozen seed implementation regression tests diff the rewrite against; it must stay byte-for-byte the seed's algorithm, pre-dating the Err variants
		par.ForEach(ns, p, func(i int) {
			v := shell[i]
			pvt := uf.Find(v)
			id := h.TID[pvt]
			if v != pvt {
				h.TID[v] = id
			}
			sizes[int(id)-firstNode].Add(1)
		})
		for j := 0; j < numNew; j++ {
			h.Vertices[firstNode+j] = make([]int32, sizes[j].Load())
		}
		cursors := make([]atomic.Int64, numNew)
		//hcdlint:allow panic-safety PHCDBaseline is the frozen seed implementation regression tests diff the rewrite against; it must stay byte-for-byte the seed's algorithm, pre-dating the Err variants
		par.ForEach(ns, p, func(i int) {
			v := shell[i]
			j := int(h.TID[v]) - firstNode
			h.Vertices[firstNode+j][cursors[j].Add(1)-1] = v
		})

		// Step 4: link deeper pivots under the new nodes.
		//hcdlint:allow panic-safety PHCDBaseline is the frozen seed implementation regression tests diff the rewrite against; it must stay byte-for-byte the seed's algorithm, pre-dating the Err variants
		par.For(p, p, func(tlo, thi int) {
			for t := tlo; t < thi; t++ {
				links := linkLocal[t][:0]
				for _, v := range kpcLocal[t] {
					links = append(links, link{child: v, pivot: uf.Find(v)})
					inKpc[v].Store(false)
				}
				linkLocal[t] = links
			}
		})
		for t := 0; t < p; t++ {
			for _, l := range linkLocal[t] {
				ch := h.TID[l.child]
				pa := h.TID[l.pivot]
				h.Parent[ch] = pa
				h.Children[pa] = append(h.Children[pa], ch)
			}
		}
	}
	return h
}

// phcdSerialBaseline is the frozen pre-layout serial specialisation: the
// fused Steps 1+2 scan every neighbor of every shell vertex with coreness
// filters.
func phcdSerialBaseline(g *graph.Graph, core []int32, rank *coredecomp.Ranking, h *hierarchy.HCD) {
	n := g.NumVertices()
	uf := unionfind.New(n, rank.Rank)
	inKpc := make([]bool, n)
	kpc := make([]int32, 0, 64)

	newNode := func(k int32) hierarchy.NodeID {
		id := hierarchy.NodeID(len(h.K))
		h.K = append(h.K, k)
		h.Parent = append(h.Parent, hierarchy.Nil)
		h.Children = append(h.Children, nil)
		h.Vertices = append(h.Vertices, nil)
		return id
	}

	for k := rank.KMax; k >= 0; k-- {
		shell := rank.Shell(k)
		if len(shell) == 0 {
			continue
		}
		kpc = kpc[:0]
		for _, v := range shell {
			rv := uf.Find(v)
			for _, u := range g.Neighbors(v) {
				if core[u] > k {
					ru := uf.Find(u)
					if pvt := uf.PivotOfRoot(ru); core[pvt] > k && !inKpc[pvt] {
						inKpc[pvt] = true
						kpc = append(kpc, pvt)
					}
					rv = uf.LinkRoots(rv, ru)
				} else if core[u] == k && u > v {
					rv = uf.LinkRoots(rv, uf.Find(u))
				}
			}
		}
		for _, v := range shell {
			pvt := uf.Pivot(v)
			id := h.TID[pvt]
			if id == hierarchy.Nil {
				id = newNode(k)
				h.TID[pvt] = id
			}
			h.TID[v] = id
			h.Vertices[id] = append(h.Vertices[id], v)
		}
		for _, v := range kpc {
			inKpc[v] = false
			ch := h.TID[v]
			pa := h.TID[uf.Pivot(v)]
			h.Parent[ch] = pa
			h.Children[pa] = append(h.Children[pa], ch)
		}
	}
}
