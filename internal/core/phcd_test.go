package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/lcps"
)

func randomGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
	}
	return graph.MustFromEdges(n, edges)
}

func checkConstructor(t *testing.T, name string, g *graph.Graph, build func(*graph.Graph, []int32, int) *hierarchy.HCD) {
	t.Helper()
	core := coredecomp.Serial(g)
	want := hierarchy.BruteForce(g, core)
	for _, threads := range []int{1, 2, 4, 7} {
		h := build(g, core, threads)
		if err := hierarchy.Validate(h, g, core); err != nil {
			t.Fatalf("%s threads=%d: Validate: %v", name, threads, err)
		}
		if !hierarchy.Equal(h, want) {
			t.Fatalf("%s threads=%d: differs from brute force (|T| got %d want %d)",
				name, threads, h.NumNodes(), want.NumNodes())
		}
	}
}

func TestPHCDEmptyAndTiny(t *testing.T) {
	h := PHCD(graph.MustFromEdges(0, nil), nil, 4)
	if h.NumNodes() != 0 {
		t.Error("empty graph must yield empty HCD")
	}
	checkConstructor(t, "single", graph.MustFromEdges(1, nil), PHCD)
	checkConstructor(t, "isolated", graph.MustFromEdges(6, nil), PHCD)
	checkConstructor(t, "edge", graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}}), PHCD)
}

func TestPHCDGeneratedFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"er", gen.ErdosRenyi(200, 800, 1)},
		{"er-sparse", gen.ErdosRenyi(300, 200, 2)},
		{"ba", gen.BarabasiAlbert(150, 4, 3)},
		{"rmat", gen.RMAT(8, 1200, 4)},
		{"onion", gen.Onion(6, 12, 2, 2, 3, 5)},
		{"planted", gen.PlantedPartition(4, 40, 0.25, 0.01, 6)},
	}
	for _, c := range cases {
		checkConstructor(t, c.name, c.g, PHCD)
	}
}

func TestPHCDMatchesLCPSProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint16, p uint8) bool {
		n := int(nRaw%150) + 1
		m := int(mRaw % 900)
		g := randomGraph(n, m, seed)
		core := coredecomp.Serial(g)
		want := lcps.Build(g, core)
		got := PHCD(g, core, int(p%8)+1)
		return hierarchy.Equal(got, want) && hierarchy.Validate(got, g, core) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDivideConquerMatchesBruteForce(t *testing.T) {
	cases := []*graph.Graph{
		gen.ErdosRenyi(150, 600, 11),
		gen.BarabasiAlbert(120, 3, 12),
		gen.Onion(5, 10, 2, 2, 2, 13),
		graph.MustFromEdges(4, nil),
	}
	for i, g := range cases {
		checkConstructor(t, "dc", g, DivideConquer)
		_ = i
	}
}

func TestDivideConquerProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint16, p uint8) bool {
		n := int(nRaw%100) + 1
		m := int(mRaw % 600)
		g := randomGraph(n, m, seed)
		core := coredecomp.Serial(g)
		got := DivideConquer(g, core, int(p%5)+1)
		return hierarchy.Equal(got, hierarchy.BruteForce(g, core))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLBCountsComponents(t *testing.T) {
	g := gen.ErdosRenyi(200, 300, 21)
	core := coredecomp.Serial(g)
	_, want := g.ConnectedComponents()
	for _, threads := range []int{1, 4} {
		if got := LB(g, core, threads); got != want {
			t.Errorf("threads=%d: LB components = %d, want %d", threads, got, want)
		}
	}
	if LB(graph.MustFromEdges(0, nil), nil, 2) != 0 {
		t.Error("LB on empty graph should be 0")
	}
}

func TestPHCDSuiteValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, d := range gen.Suite(1) {
		g := d.Build()
		core := coredecomp.Parallel(g, 0)
		h := PHCD(g, core, 0)
		if err := hierarchy.Validate(h, g, core); err != nil {
			t.Errorf("%s: %v", d.Abbrev, err)
		}
		// Cross-check against LCPS.
		if !hierarchy.Equal(h, lcps.Build(g, core)) {
			t.Errorf("%s: PHCD and LCPS disagree", d.Abbrev)
		}
	}
}

func BenchmarkPHCD(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 8, 1)
	core := coredecomp.Serial(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PHCD(g, core, 0)
	}
}

func BenchmarkLB(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 8, 1)
	core := coredecomp.Serial(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LB(g, core, 0)
	}
}
