package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"hcd/internal/coredecomp"
	"hcd/internal/faultinject"
	"hcd/internal/gen"
	"hcd/internal/par"
)

// TestPHCDCtxContainsInjectedPanics injects a panic into each of PHCD's
// four per-level steps in turn and checks the containment contract: the
// fault comes back as an error (never a process crash), it is identifiable
// through errors.As, and no worker goroutine outlives the call.
func TestPHCDCtxContainsInjectedPanics(t *testing.T) {
	defer faultinject.Disable()
	g := gen.ErdosRenyi(400, 1600, 7)
	core := coredecomp.Serial(g)
	for _, site := range []string{"phcd.step1", "phcd.step2", "phcd.step3", "phcd.step4"} {
		if err := faultinject.Enable(site + ":panic:1"); err != nil {
			t.Fatal(err)
		}
		before := runtime.NumGoroutine()
		h, err := PHCDCtx(context.Background(), g, core, nil, 4)
		if h != nil || err == nil {
			t.Fatalf("%s: PHCDCtx = (%v, %v), want (nil, error)", site, h, err)
		}
		var f *faultinject.Fault
		if !errors.As(err, &f) || f.Site != site {
			t.Errorf("%s: error %v does not unwrap to the injected fault", site, err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > before {
			t.Errorf("%s: goroutine leak: %d before, %d after", site, before, got)
		}
		if hits := faultinject.Hits(site); hits < 1 {
			t.Errorf("%s: fault site never evaluated", site)
		}
	}
	faultinject.Disable()
	// With the injector disarmed, the same build must succeed again.
	h, err := PHCDCtx(context.Background(), g, core, nil, 4)
	if err != nil || h == nil {
		t.Fatalf("disarmed rebuild failed: %v", err)
	}
}

// TestPHCDCtxCancellation cancels a build mid-flight (a delay rule makes
// the window deterministic) and checks the context error propagates.
func TestPHCDCtxCancellation(t *testing.T) {
	defer faultinject.Disable()
	g := gen.ErdosRenyi(400, 1600, 8)
	core := coredecomp.Serial(g)
	if err := faultinject.Enable("phcd.step1:delay:1:300ms"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	h, err := PHCDCtx(ctx, g, core, nil, 4)
	if h != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("PHCDCtx = (%v, %v), want (nil, context.Canceled)", h, err)
	}
	// Cancellation must not wait out every level's injected work.
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("cancelled build still took %v", el)
	}
}

// TestPHCDCtxErrorsArePanicErrors checks an injected fault surfaces as a
// *par.PanicError (the containment wrapper), not as a bare panic value.
func TestPHCDCtxErrorsArePanicErrors(t *testing.T) {
	defer faultinject.Disable()
	g := gen.ErdosRenyi(200, 700, 9)
	core := coredecomp.Serial(g)
	if err := faultinject.Enable("phcd.step2:panic:1"); err != nil {
		t.Fatal(err)
	}
	h, err := PHCDCtx(context.Background(), g, core, nil, 4)
	var pe *par.PanicError
	if h != nil || !errors.As(err, &pe) {
		t.Fatalf("PHCDCtx = (%v, %v), want a contained *par.PanicError", h, err)
	}
}

// TestPHCDCtxSerialPathCancellation checks the threads=1 inline path still
// honours cancellation (phcdSerial polls ctx between levels).
func TestPHCDCtxSerialPathCancellation(t *testing.T) {
	g := gen.ErdosRenyi(300, 1200, 10)
	core := coredecomp.Serial(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h, err := PHCDCtx(ctx, g, core, nil, 1)
	if h != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("PHCDCtx threads=1 = (%v, %v), want (nil, context.Canceled)", h, err)
	}
}
