package par

// Parallel prefix-sum (scan) kernels and the counting-sort scatter built on
// them. All three follow the classic work-efficient three-phase shape:
// chunk-local sums, a serial carry pass over the (few) chunk totals, then a
// parallel chunk fixup. Outputs are deterministic — independent of the
// thread count and of scheduling — because chunk boundaries are a pure
// function of (n, p) and the carry pass is serial.

// ExclusiveScan replaces xs[i] with xs[0]+...+xs[i-1] in place (xs[0]
// becomes 0) and returns the total sum of the original slice. The classic
// exclusive prefix sum, parallelised over contiguous chunks.
func ExclusiveScan(xs []int64, threads int) int64 {
	return scan(xs, threads, true)
}

// ScanInt64 replaces xs[i] with xs[0]+...+xs[i] in place (an inclusive
// prefix sum) and returns the total. Same kernel as ExclusiveScan.
func ScanInt64(xs []int64, threads int) int64 {
	return scan(xs, threads, false)
}

func scan(xs []int64, threads int, exclusive bool) int64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	p := Threads(threads)
	if p > n {
		p = n
	}
	if p == 1 {
		var run int64
		for i := range xs {
			v := xs[i]
			if exclusive {
				xs[i] = run
				run += v
			} else {
				run += v
				xs[i] = run
			}
		}
		return run
	}
	// Phase 1: chunk-local sums.
	sums := make([]int64, p)
	For(p, p, func(tlo, thi int) {
		for t := tlo; t < thi; t++ {
			var s int64
			for i := t * n / p; i < (t+1)*n/p; i++ {
				s += xs[i]
			}
			sums[t] = s
		}
	})
	// Phase 2: serial carry across chunk totals (p values).
	var total int64
	for t := 0; t < p; t++ {
		s := sums[t]
		sums[t] = total
		total += s
	}
	// Phase 3: chunk fixup — rescan each chunk seeded with its carry.
	For(p, p, func(tlo, thi int) {
		for t := tlo; t < thi; t++ {
			run := sums[t]
			for i := t * n / p; i < (t+1)*n/p; i++ {
				v := xs[i]
				if exclusive {
					xs[i] = run
					run += v
				} else {
					run += v
					xs[i] = run
				}
			}
		}
	})
	return total
}

// GroupBy stably groups the indices [0, n) by key using per-thread counting
// and a prefix-sum scatter — a counting sort with no atomics. key(i) must
// return a value in [0, keys) and be safe to call concurrently (it is
// invoked twice per index, from the counting and scatter passes).
//
// Group k occupies order[starts[k]:starts[k+1]], listing its indices in
// ascending order (stability). starts has length keys+1 with starts[keys]
// == n. The result is byte-identical for every thread count: grouping by
// ascending index is scheduling-independent, unlike an atomic-cursor
// scatter.
func GroupBy(n, keys, threads int, key func(i int) int32) (starts []int64, order []int32) {
	starts = make([]int64, keys+1)
	if n <= 0 {
		return starts, nil
	}
	p := Threads(threads)
	if p > n {
		p = n
	}
	// Each thread owns a full row of `keys` counters; cap the counting
	// matrix at O(n) extra space so fine-grained keys (keys ≈ n) do not
	// multiply memory by p.
	for p > 1 && keys*p > 4*n+1024 {
		p /= 2
	}
	// counts is column-major — counts[k*p+t] is thread t's count for key k —
	// so the exclusive scan over it yields, in one pass, every thread's
	// write cursor for every key, in (key, thread) order.
	counts := make([]int64, keys*p)
	For(p, p, func(tlo, thi int) {
		for t := tlo; t < thi; t++ {
			for i := t * n / p; i < (t+1)*n/p; i++ {
				counts[int(key(i))*p+t]++
			}
		}
	})
	ExclusiveScan(counts, p)
	for k := 0; k < keys; k++ {
		starts[k] = counts[k*p]
	}
	starts[keys] = int64(n)
	order = make([]int32, n)
	// Scatter: each thread advances its own column of cursors — no sharing.
	For(p, p, func(tlo, thi int) {
		for t := tlo; t < thi; t++ {
			for i := t * n / p; i < (t+1)*n/p; i++ {
				c := int(key(i))*p + t
				order[counts[c]] = int32(i)
				counts[c]++
			}
		}
	})
	return starts, order
}
