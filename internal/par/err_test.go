package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// leakCheck fails the test if the goroutine count has not returned to its
// starting level shortly after fn runs — the containment contract says a
// failed parallel call joins every worker before returning.
func leakCheck(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	// Workers are joined before the primitives return, but the runtime may
	// take a moment to retire exited goroutines from the count.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutine leak: %d before, %d after", before, got)
	}
}

func TestForErrRecoversWorkerPanic(t *testing.T) {
	for _, threads := range []int{1, 4} {
		leakCheck(t, func() {
			err := ForErr(context.Background(), 100, threads, func(lo, hi int) error {
				if lo <= 42 && 42 < hi {
					panic("boom at 42")
				}
				return nil
			})
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("threads=%d: err = %v, want *PanicError", threads, err)
			}
			if pe.Value != "boom at 42" {
				t.Errorf("threads=%d: panic value = %v", threads, pe.Value)
			}
			if threads > 1 && !strings.Contains(string(pe.Stack), "err_test") {
				t.Errorf("threads=%d: stack does not point at the panicking body", threads)
			}
		})
	}
}

func TestPanicErrorUnwrapExposesErrorValues(t *testing.T) {
	sentinel := errors.New("sentinel")
	err := ForErr(nil, 10, 4, func(lo, hi int) error {
		panic(sentinel)
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("errors.Is(err, sentinel) = false; err = %v", err)
	}
	// Non-error panic values unwrap to nil.
	pe := &PanicError{Value: 7}
	if pe.Unwrap() != nil {
		t.Errorf("Unwrap of non-error value = %v, want nil", pe.Unwrap())
	}
}

func TestForErrFirstBodyErrorWins(t *testing.T) {
	want := errors.New("first")
	err := ForEachErr(context.Background(), 1000, 8, func(i int) error {
		if i == 17 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Errorf("err = %v, want %v", err, want)
	}
}

func TestForErrNilContextAndEmptyRange(t *testing.T) {
	if err := ForErr(nil, 0, 4, func(lo, hi int) error { return errors.New("never") }); err != nil {
		t.Errorf("n=0: err = %v", err)
	}
	if err := ForErr(nil, 8, 4, func(lo, hi int) error { return nil }); err != nil {
		t.Errorf("nil ctx: err = %v", err)
	}
}

func TestForErrPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForErr(ctx, 100, 4, func(lo, hi int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("body ran %d times after pre-cancelled ctx", ran.Load())
	}
}

func TestForChunkedErrCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var chunks atomic.Int32
	const n, grain = 1 << 16, 16
	leakCheck(t, func() {
		err := ForChunkedErr(ctx, n, 4, grain, func(lo, hi int) error {
			if chunks.Add(1) == 3 {
				cancel() // cancel while most chunks are still ungrabbed
			}
			time.Sleep(100 * time.Microsecond)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})
	// Cancellation is checked before every chunk grab: at most the chunks
	// in flight when cancel fired (one per worker, plus the grabs that
	// raced the flag) may still run — nowhere near all n/grain chunks.
	if got := chunks.Load(); got > 64 {
		t.Errorf("%d chunks ran after cancellation, want an early abort (<< %d)", got, n/grain)
	}
}

func TestForChunkedErrPanicStopsRemainingChunks(t *testing.T) {
	var after atomic.Int32
	leakCheck(t, func() {
		err := ForChunkedErr(context.Background(), 1<<14, 4, 8, func(lo, hi int) error {
			if lo == 0 {
				return fmt.Errorf("chunk failure")
			}
			after.Add(1)
			time.Sleep(50 * time.Microsecond)
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "chunk failure") {
			t.Fatalf("err = %v, want chunk failure", err)
		}
	})
	if got := after.Load(); got > 256 {
		t.Errorf("%d chunks ran after the failure, want an early drain", got)
	}
}

func TestRunErr(t *testing.T) {
	// All succeed.
	var hits atomic.Int32
	if err := RunErr(nil,
		func() error { hits.Add(1); return nil },
		func() error { hits.Add(1); return nil },
	); err != nil || hits.Load() != 2 {
		t.Errorf("err = %v, hits = %d", err, hits.Load())
	}
	// One panics.
	leakCheck(t, func() {
		err := RunErr(context.Background(),
			func() error { return nil },
			func() error { panic("thunk") },
		)
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Value != "thunk" {
			t.Errorf("err = %v, want PanicError(thunk)", err)
		}
	})
	// Pre-cancelled context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := RunErr(ctx, func() error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// BenchmarkForOverhead compares the wrapper (For, routed through ForErr)
// against a direct ForErr call on a memory-light body — the error-variant
// plumbing must stay within noise of the primitive it replaced.
func BenchmarkForOverhead(b *testing.B) {
	const n = 1 << 16
	dst := make([]int64, n)
	b.Run("For", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			For(n, 0, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					dst[j]++
				}
			})
		}
	})
	b.Run("ForErr", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			_ = ForErr(ctx, n, 0, func(lo, hi int) error {
				for j := lo; j < hi; j++ {
					dst[j]++
				}
				return nil
			})
		}
	})
	b.Run("ForChunkedErr", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			_ = ForChunkedErr(ctx, n, 0, 1024, func(lo, hi int) error {
				for j := lo; j < hi; j++ {
					dst[j]++
				}
				return nil
			})
		}
	})
}

// TestWrapperRepanicsRecoverably pins the upgrade the wrappers provide:
// the old primitives crashed the process when a worker panicked (the panic
// escaped on a worker goroutine); now the panic re-raises on the calling
// goroutine, where a deferred recover works.
func TestWrapperRepanicsRecoverably(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("wrapper swallowed the worker panic")
		}
		pe, ok := r.(*PanicError)
		if !ok || pe.Value != "worker" {
			t.Fatalf("recover() = %v, want *PanicError(worker)", r)
		}
	}()
	For(64, 4, func(lo, hi int) {
		if lo == 0 {
			panic("worker")
		}
	})
}
