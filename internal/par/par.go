// Package par provides small parallel-execution primitives used by every
// parallel algorithm in this repository: chunked parallel-for over index
// ranges, a bounded worker pool, and atomic min/max folds.
//
// All entry points take an explicit thread count. A count of zero (or a
// negative value) means "use runtime.GOMAXPROCS(0)", mirroring the paper's
// convention of running with pmax OpenMP threads. Thread count 1 executes
// inline on the calling goroutine, which keeps serial baselines free of
// scheduling overhead and makes serial-vs-parallel benchmarks honest.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Threads normalises a requested thread count: values <= 0 become
// runtime.GOMAXPROCS(0).
func Threads(threads int) int {
	if threads <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return threads
}

// For splits the half-open range [0, n) into contiguous chunks, one per
// thread, and calls body(lo, hi) for each chunk concurrently. It returns
// after every chunk has finished, so a call to For is also a barrier.
//
// Chunks are contiguous (not interleaved) to match the paper's Algorithm 1,
// which distributes vertices "in ascending vertex id" to threads; this keeps
// per-thread bin concatenation order deterministic.
func For(n, threads int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Threads(threads)
	if p > n {
		p = n
	}
	if p == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for t := 0; t < p; t++ {
		lo := t * n / p
		hi := (t + 1) * n / p
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForEach calls body(i) for every i in [0, n), distributing iterations over
// threads in contiguous chunks. Convenience wrapper over For for loop bodies
// that do not want to manage chunk bounds themselves.
func ForEach(n, threads int, body func(i int)) {
	For(n, threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked is like For but with dynamic load balancing: the range is cut
// into chunks of size grain and threads grab chunks from a shared atomic
// counter. Use it when per-index work is highly skewed (e.g. per-vertex work
// proportional to degree on power-law graphs).
func ForChunked(n, threads, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1024
	}
	p := Threads(threads)
	if p == 1 || n <= grain {
		body(0, n)
		return
	}
	// Never spawn more goroutines than there are chunks to grab: a range of
	// ceil(n/grain) chunks keeps at most that many workers busy, and the
	// surplus would only be scheduled to immediately exit.
	if chunks := (n + grain - 1) / grain; p > chunks {
		p = chunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for t := 0; t < p; t++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Run executes the given thunks concurrently and waits for all of them.
func Run(fns ...func()) {
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}

// MinInt64 atomically folds v into *addr, keeping the minimum. Returns true
// if the stored value changed.
func MinInt64(addr *atomic.Int64, v int64) bool {
	for {
		cur := addr.Load()
		if cur <= v {
			return false
		}
		if addr.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// MaxInt64 atomically folds v into *addr, keeping the maximum. Returns true
// if the stored value changed.
func MaxInt64(addr *atomic.Int64, v int64) bool {
	for {
		cur := addr.Load()
		if cur >= v {
			return false
		}
		if addr.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// MinInt32 atomically folds v into the int32 at addr, keeping the minimum.
func MinInt32(addr *atomic.Int32, v int32) bool {
	for {
		cur := addr.Load()
		if cur <= v {
			return false
		}
		if addr.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// MaxInt32 atomically folds v into the int32 at addr, keeping the maximum.
func MaxInt32(addr *atomic.Int32, v int32) bool {
	for {
		cur := addr.Load()
		if cur >= v {
			return false
		}
		if addr.CompareAndSwap(cur, v) {
			return true
		}
	}
}
