// Package par provides small parallel-execution primitives used by every
// parallel algorithm in this repository: chunked parallel-for over index
// ranges, a bounded worker pool, and atomic min/max folds.
//
// All entry points take an explicit thread count. A count of zero (or a
// negative value) means "use runtime.GOMAXPROCS(0)", mirroring the paper's
// convention of running with pmax OpenMP threads. Thread count 1 executes
// inline on the calling goroutine, which keeps serial baselines free of
// scheduling overhead and makes serial-vs-parallel benchmarks honest.
package par

import (
	"runtime"
	"sync/atomic"
)

// Threads normalises a requested thread count: values <= 0 become
// runtime.GOMAXPROCS(0).
func Threads(threads int) int {
	if threads <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return threads
}

// For splits the half-open range [0, n) into contiguous chunks, one per
// thread, and calls body(lo, hi) for each chunk concurrently. It returns
// after every chunk has finished, so a call to For is also a barrier.
//
// Chunks are contiguous (not interleaved) to match the paper's Algorithm 1,
// which distributes vertices "in ascending vertex id" to threads; this keeps
// per-thread bin concatenation order deterministic.
//
// For is a thin wrapper over ForErr: a panic inside body is contained to
// its worker, every worker is joined, and the panic is then re-raised on
// the calling goroutine as a *PanicError — it no longer takes down the
// whole process, and callers that cannot return an error can still recover
// it.
func For(n, threads int, body func(lo, hi int)) {
	err := ForErr(nil, n, threads, func(lo, hi int) error {
		body(lo, hi)
		return nil
	})
	if err != nil {
		panic(err)
	}
}

// ForEach calls body(i) for every i in [0, n), distributing iterations over
// threads in contiguous chunks. Convenience wrapper over For for loop bodies
// that do not want to manage chunk bounds themselves.
func ForEach(n, threads int, body func(i int)) {
	For(n, threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked is like For but with dynamic load balancing: the range is cut
// into chunks of size grain and threads grab chunks from a shared atomic
// counter. Use it when per-index work is highly skewed (e.g. per-vertex work
// proportional to degree on power-law graphs). Thin wrapper over
// ForChunkedErr; worker panics re-raise on the calling goroutine as a
// *PanicError.
func ForChunked(n, threads, grain int, body func(lo, hi int)) {
	err := ForChunkedErr(nil, n, threads, grain, func(lo, hi int) error {
		body(lo, hi)
		return nil
	})
	if err != nil {
		panic(err)
	}
}

// Run executes the given thunks concurrently and waits for all of them.
// Thin wrapper over RunErr; worker panics re-raise on the calling
// goroutine as a *PanicError.
func Run(fns ...func()) {
	wrapped := make([]func() error, len(fns))
	for i, fn := range fns {
		fn := fn
		wrapped[i] = func() error {
			fn()
			return nil
		}
	}
	if err := RunErr(nil, wrapped...); err != nil {
		panic(err)
	}
}

// MinInt64 atomically folds v into *addr, keeping the minimum. Returns true
// if the stored value changed.
func MinInt64(addr *atomic.Int64, v int64) bool {
	for {
		cur := addr.Load()
		if cur <= v {
			return false
		}
		if addr.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// MaxInt64 atomically folds v into *addr, keeping the maximum. Returns true
// if the stored value changed.
func MaxInt64(addr *atomic.Int64, v int64) bool {
	for {
		cur := addr.Load()
		if cur >= v {
			return false
		}
		if addr.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// MinInt32 atomically folds v into the int32 at addr, keeping the minimum.
func MinInt32(addr *atomic.Int32, v int32) bool {
	for {
		cur := addr.Load()
		if cur <= v {
			return false
		}
		if addr.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// MaxInt32 atomically folds v into the int32 at addr, keeping the maximum.
func MaxInt32(addr *atomic.Int32, v int32) bool {
	for {
		cur := addr.Load()
		if cur >= v {
			return false
		}
		if addr.CompareAndSwap(cur, v) {
			return true
		}
	}
}
