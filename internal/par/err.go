package par

// Panic-safe, cancellable variants of the parallel-for primitives. The
// error-returning entry points recover panics raised inside worker
// goroutines into a *PanicError (carrying the panic value and the worker's
// stack), observe context cancellation at chunk boundaries, and always
// join every worker before returning — a failed call never leaks a
// goroutine and never takes the process down. The original non-error entry
// points in par.go are thin wrappers over these.
//
// Error semantics: the first failure (body error, recovered panic, or
// context cancellation) wins; workers that have not started a chunk yet
// observe the stop flag and drain. Work already in flight when the failure
// happens runs to completion — cancellation is cooperative, checked
// between chunks, so bodies with very long chunks should poll ctx
// themselves if they need finer-grained aborts.
//
// Every worker stint additionally reports its busy time and chunk count
// to the observability layer (internal/obs) when a phase is armed there;
// disarmed — the common case — the hook is one atomic load per worker.

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"hcd/internal/obs"
)

// PanicError wraps a panic recovered inside a parallel worker. Value is
// the original panic value and Stack the worker's stack at the point of
// the panic.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: worker panicked: %v", e.Value)
}

// Unwrap exposes a panic value that is itself an error (e.g. an injected
// faultinject.Fault) to errors.Is / errors.As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// AsPanicError converts an arbitrary recover() value into a *PanicError,
// passing through values that already are one (so stacks are captured at
// the innermost recovery point, not re-wrapped on each hop).
func AsPanicError(r any) *PanicError {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}

// failure coordinates early exit across the workers of one parallel call:
// the first error is kept, and the stop flag tells the remaining workers
// to drain at their next chunk boundary.
type failure struct {
	ctx  context.Context // may be nil
	stop atomic.Bool
	once sync.Once
	err  error
}

func (f *failure) set(err error) {
	f.once.Do(func() { f.err = err })
	f.stop.Store(true)
}

// stopped reports whether workers should drain, folding a context
// cancellation into the recorded error as a side effect.
func (f *failure) stopped() bool {
	if f.stop.Load() {
		return true
	}
	if f.ctx != nil {
		if err := f.ctx.Err(); err != nil {
			f.set(err)
			return true
		}
	}
	return false
}

// call invokes body(lo, hi) with panic recovery.
func call(body func(lo, hi int) error, lo, hi int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = AsPanicError(r)
		}
	}()
	return body(lo, hi)
}

// ctxErr returns ctx's error, tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ForErr is For with failure containment: body may return an error, panics
// inside body are recovered into a *PanicError, and a cancelled ctx (nil
// is allowed and means "never cancelled") stops workers at chunk
// boundaries. The first error wins; ForErr returns only after every worker
// has exited, so no goroutines are leaked on any path.
func ForErr(ctx context.Context, n, threads int, body func(lo, hi int) error) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	p := Threads(threads)
	if p > n {
		p = n
	}
	if p == 1 {
		mark := obs.WorkerStart()
		err := call(body, 0, n)
		obs.WorkerEnd(mark, 1)
		return err
	}
	f := &failure{ctx: ctx}
	var wg sync.WaitGroup
	wg.Add(p)
	for t := 0; t < p; t++ {
		lo := t * n / p
		hi := (t + 1) * n / p
		go func(lo, hi int) {
			defer wg.Done()
			if f.stopped() {
				return
			}
			// One chunk per worker: the stint, recorded into the armed
			// obs phase (one atomic load when none is), is the whole
			// busy time the load-imbalance skew stat is built from.
			mark := obs.WorkerStart()
			err := call(body, lo, hi)
			obs.WorkerEnd(mark, 1)
			if err != nil {
				f.set(err)
			}
		}(lo, hi)
	}
	wg.Wait()
	return f.err
}

// ForEachErr is ForEach with failure containment: the first non-nil error
// from body stops that worker's chunk immediately and the other workers at
// their next chunk boundary.
func ForEachErr(ctx context.Context, n, threads int, body func(i int) error) error {
	return ForErr(ctx, n, threads, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := body(i); err != nil {
				return err
			}
		}
		return nil
	})
}

// ForChunkedErr is ForChunked with failure containment. Cancellation and
// the stop flag are checked before every chunk grab, so a cancelled ctx
// aborts after at most one in-flight chunk per worker.
func ForChunkedErr(ctx context.Context, n, threads, grain int, body func(lo, hi int) error) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = 1024
	}
	p := Threads(threads)
	if p == 1 || n <= grain {
		mark := obs.WorkerStart()
		err := call(body, 0, n)
		obs.WorkerEnd(mark, 1)
		return err
	}
	if chunks := (n + grain - 1) / grain; p > chunks {
		p = chunks
	}
	f := &failure{ctx: ctx}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for t := 0; t < p; t++ {
		go func() {
			defer wg.Done()
			mark := obs.WorkerStart()
			var grabbed int64
			defer func() { obs.WorkerEnd(mark, grabbed) }()
			for {
				if f.stopped() {
					return
				}
				lo := int(next.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				grabbed++
				if err := call(body, lo, hi); err != nil {
					f.set(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return f.err
}

// RunErr executes the thunks concurrently with failure containment and
// waits for all of them; the first error (or recovered panic) is returned.
func RunErr(ctx context.Context, fns ...func() error) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	f := &failure{ctx: ctx}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(fn func() error) {
			defer wg.Done()
			if f.stopped() {
				return
			}
			mark := obs.WorkerStart()
			err := call(func(_, _ int) error { return fn() }, 0, 0)
			obs.WorkerEnd(mark, 1)
			if err != nil {
				f.set(err)
			}
		}(fn)
	}
	wg.Wait()
	return f.err
}
