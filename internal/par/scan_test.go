package par

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func serialExclusive(xs []int64) ([]int64, int64) {
	out := make([]int64, len(xs))
	var run int64
	for i, v := range xs {
		out[i] = run
		run += v
	}
	return out, run
}

func TestExclusiveScanMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 15, 64, 1000, 4097} {
		for _, p := range []int{1, 2, 3, 8, 31} {
			rng := rand.New(rand.NewSource(int64(n*100 + p)))
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = int64(rng.Intn(1000) - 500)
			}
			want, wantTotal := serialExclusive(xs)
			got := append([]int64(nil), xs...)
			total := ExclusiveScan(got, p)
			if total != wantTotal {
				t.Fatalf("n=%d p=%d: total = %d, want %d", n, p, total, wantTotal)
			}
			if n > 0 && !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d p=%d: exclusive scan mismatch", n, p)
			}
		}
	}
}

func TestScanInt64MatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 2048} {
		for _, p := range []int{1, 4, 13} {
			rng := rand.New(rand.NewSource(int64(n + p)))
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = int64(rng.Intn(100))
			}
			want := make([]int64, n)
			var run int64
			for i, v := range xs {
				run += v
				want[i] = run
			}
			got := append([]int64(nil), xs...)
			if total := ScanInt64(got, p); total != run {
				t.Fatalf("n=%d p=%d: total = %d, want %d", n, p, total, run)
			}
			if n > 0 && !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d p=%d: inclusive scan mismatch", n, p)
			}
		}
	}
}

// Property: scans are thread-count invariant.
func TestScanThreadInvariantProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, p uint8) bool {
		n := int(nRaw % 3000)
		rng := rand.New(rand.NewSource(seed))
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(2000) - 1000)
		}
		a := append([]int64(nil), xs...)
		b := append([]int64(nil), xs...)
		ta := ExclusiveScan(a, 1)
		tb := ExclusiveScan(b, int(p%16)+1)
		return ta == tb && reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func serialGroupBy(n, keys int, key func(i int) int32) ([]int64, []int32) {
	starts := make([]int64, keys+1)
	for i := 0; i < n; i++ {
		starts[key(i)+1]++
	}
	for k := 1; k <= keys; k++ {
		starts[k] += starts[k-1]
	}
	order := make([]int32, n)
	cur := append([]int64(nil), starts[:keys]...)
	for i := 0; i < n; i++ {
		k := key(i)
		order[cur[k]] = int32(i)
		cur[k]++
	}
	return starts, order
}

func TestGroupByMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 5000} {
		for _, keys := range []int{1, 2, 7, 256} {
			for _, p := range []int{1, 3, 8} {
				rng := rand.New(rand.NewSource(int64(n + keys + p)))
				ks := make([]int32, n)
				for i := range ks {
					ks[i] = int32(rng.Intn(keys))
				}
				key := func(i int) int32 { return ks[i] }
				wantStarts, wantOrder := serialGroupBy(n, keys, key)
				starts, order := GroupBy(n, keys, p, key)
				if !reflect.DeepEqual(starts, wantStarts) {
					t.Fatalf("n=%d keys=%d p=%d: starts mismatch", n, keys, p)
				}
				if len(order) != len(wantOrder) {
					t.Fatalf("n=%d keys=%d p=%d: order length %d, want %d", n, keys, p, len(order), len(wantOrder))
				}
				if n > 0 && !reflect.DeepEqual(order, wantOrder) {
					t.Fatalf("n=%d keys=%d p=%d: order mismatch (stability broken)", n, keys, p)
				}
			}
		}
	}
}

// GroupBy with keys ≈ n exercises the memory clamp path.
func TestGroupByFineGrainedKeys(t *testing.T) {
	n := 4096
	key := func(i int) int32 { return int32(n - 1 - i) } // reverse permutation
	starts, order := GroupBy(n, n, 8, key)
	for i := 0; i < n; i++ {
		if starts[i] != int64(i) {
			t.Fatalf("starts[%d] = %d, want %d", i, starts[i], i)
		}
		if order[i] != int32(n-1-i) {
			t.Fatalf("order[%d] = %d, want %d", i, order[i], n-1-i)
		}
	}
}

func BenchmarkExclusiveScan(b *testing.B) {
	xs := make([]int64, 1<<20)
	for i := range xs {
		xs[i] = int64(i % 17)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExclusiveScan(xs, 0)
	}
}

func BenchmarkGroupBy(b *testing.B) {
	n := 1 << 20
	keys := 512
	ks := make([]int32, n)
	rng := rand.New(rand.NewSource(1))
	for i := range ks {
		ks[i] = int32(rng.Intn(keys))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GroupBy(n, keys, 0, func(i int) int32 { return ks[i] })
	}
}
