package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestThreads(t *testing.T) {
	if got := Threads(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Threads(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Threads(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Threads(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Threads(7); got != 7 {
		t.Errorf("Threads(7) = %d, want 7", got)
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 100, 1000} {
		for _, p := range []int{1, 2, 3, 4, 17} {
			seen := make([]atomic.Int32, max(n, 1))
			For(n, p, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("n=%d p=%d: bad chunk [%d,%d)", n, p, lo, hi)
				}
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
			})
			for i := 0; i < n; i++ {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("n=%d p=%d: index %d visited %d times", n, p, i, got)
				}
			}
		}
	}
}

func TestForEachSum(t *testing.T) {
	var sum atomic.Int64
	ForEach(1000, 4, func(i int) { sum.Add(int64(i)) })
	if got := sum.Load(); got != 499500 {
		t.Errorf("sum = %d, want 499500", got)
	}
}

func TestForChunkedCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 4097} {
		for _, grain := range []int{0, 1, 7, 64, 5000} {
			seen := make([]atomic.Int32, max(n, 1))
			ForChunked(n, 4, grain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
			})
			for i := 0; i < n; i++ {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("n=%d grain=%d: index %d visited %d times", n, grain, i, got)
				}
			}
		}
	}
}

// TestForChunkedEdgeGeometry pins the degenerate shapes: a grain larger
// than the whole range (one inline chunk), grain 1 (every index its own
// chunk), and more threads than indexes (workers clamp; nothing double
// visits, nothing deadlocks).
func TestForChunkedEdgeGeometry(t *testing.T) {
	cases := []struct{ n, threads, grain int }{
		{10, 4, 100}, // grain > n
		{100, 4, 1},  // grain = 1
		{3, 64, 1},   // threads > n
		{1, 16, 1},   // single index, many threads
		{17, 100, 5}, // threads > chunk count
		{0, 8, 1},    // empty range
	}
	for _, c := range cases {
		seen := make([]atomic.Int32, max(c.n, 1))
		ForChunked(c.n, c.threads, c.grain, func(lo, hi int) {
			if lo < 0 || hi > c.n || lo >= hi {
				t.Errorf("n=%d threads=%d grain=%d: bad chunk [%d,%d)", c.n, c.threads, c.grain, lo, hi)
			}
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
		})
		for i := 0; i < c.n; i++ {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d threads=%d grain=%d: index %d visited %d times",
					c.n, c.threads, c.grain, i, got)
			}
		}
	}
}

func TestRun(t *testing.T) {
	var a, b atomic.Bool
	Run(func() { a.Store(true) }, func() { b.Store(true) })
	if !a.Load() || !b.Load() {
		t.Error("Run did not execute all thunks")
	}
}

func TestMinInt64(t *testing.T) {
	var v atomic.Int64
	v.Store(10)
	if !MinInt64(&v, 5) || v.Load() != 5 {
		t.Errorf("MinInt64 fold to 5 failed, got %d", v.Load())
	}
	if MinInt64(&v, 9) {
		t.Error("MinInt64 should not report change when candidate is larger")
	}
	if v.Load() != 5 {
		t.Errorf("value changed unexpectedly: %d", v.Load())
	}
}

func TestMaxInt64(t *testing.T) {
	var v atomic.Int64
	if !MaxInt64(&v, 42) || v.Load() != 42 {
		t.Errorf("MaxInt64 fold to 42 failed, got %d", v.Load())
	}
	if MaxInt64(&v, 41) {
		t.Error("MaxInt64 should not report change when candidate is smaller")
	}
}

func TestMaxInt32(t *testing.T) {
	cases := []struct {
		name        string
		start, v    int32
		wantChanged bool
		wantValue   int32
	}{
		{"raise", 0, 42, true, 42},
		{"equal", 42, 42, false, 42},
		{"lower", 42, 41, false, 42},
		{"negative-raise", -10, -5, true, -5},
		{"negative-keep", -5, -10, false, -5},
		{"extremes", -1 << 31, 1<<31 - 1, true, 1<<31 - 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var v atomic.Int32
			v.Store(c.start)
			if got := MaxInt32(&v, c.v); got != c.wantChanged {
				t.Errorf("MaxInt32(%d, %d) changed = %v, want %v", c.start, c.v, got, c.wantChanged)
			}
			if got := v.Load(); got != c.wantValue {
				t.Errorf("MaxInt32(%d, %d) value = %d, want %d", c.start, c.v, got, c.wantValue)
			}
		})
	}
}

func TestMaxInt32Concurrent(t *testing.T) {
	var v atomic.Int32
	v.Store(-1 << 30)
	ForEach(10000, 8, func(i int) { MaxInt32(&v, int32(i)) })
	if v.Load() != 9999 {
		t.Errorf("concurrent MaxInt32 = %d, want 9999", v.Load())
	}
}

// Regression: ForChunked must not spawn more goroutines than there are
// chunks. With n=8, grain=4 there are exactly 2 chunks, so requesting 64
// threads must not put ~64 goroutines on the scheduler.
func TestForChunkedClampsGoroutines(t *testing.T) {
	const n, grain, threads = 8, 4, 64
	chunks := (n + grain - 1) / grain
	before := runtime.NumGoroutine()
	var maxSeen atomic.Int32
	ForChunked(n, threads, grain, func(lo, hi int) {
		// Give any surplus goroutines time to start before sampling.
		time.Sleep(2 * time.Millisecond)
		g := int32(runtime.NumGoroutine())
		MaxInt32(&maxSeen, g)
	})
	// Allow generous slack for unrelated runtime goroutines; the failure
	// mode being guarded against is ~64 extra goroutines.
	limit := int32(before + chunks + 16)
	if got := maxSeen.Load(); got > limit {
		t.Errorf("ForChunked spawned too many goroutines: saw %d live (baseline %d, %d chunks)",
			got, before, chunks)
	}
}

func TestMinInt32Concurrent(t *testing.T) {
	var v atomic.Int32
	v.Store(1 << 30)
	ForEach(10000, 8, func(i int) { MinInt32(&v, int32(i)) })
	if v.Load() != 0 {
		t.Errorf("concurrent MinInt32 = %d, want 0", v.Load())
	}
}

// Property: For with any thread count computes the same fold as a serial loop.
func TestForMatchesSerialProperty(t *testing.T) {
	f := func(n uint16, p uint8) bool {
		nn := int(n % 2048)
		var sum atomic.Int64
		For(nn, int(p%16), func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i * i)
			}
			sum.Add(local)
		})
		var want int64
		for i := 0; i < nn; i++ {
			want += int64(i * i)
		}
		return sum.Load() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
