package search

import (
	"context"

	"hcd/internal/faultinject"
	"hcd/internal/metrics"
	"hcd/internal/obs"
	"hcd/internal/par"
	"hcd/internal/treeaccum"
)

// PrimaryA computes, for every tree node, the Type A primary values —
// n(S), m(S), b(S) — of the node's original k-core (Algorithm 4).
//
// Each vertex contributes to its own tree node:
//
//	vertices:       +1
//	edges (doubled): 2·gt_k + eq_k   (an edge to a deeper vertex counted
//	                 once here; a same-shell edge counted by both ends)
//	boundary:        lt_k − gt_k     (edges to shallower vertices appear,
//	                 edges to deeper vertices stop being boundary)
//
// The loop is node-centric: h.Vertices already groups the vertices by tree
// node, so each node's row is owned by exactly one loop iteration — plain
// writes, no atomic contention, and a deterministic (exact-sum) result.
// Bottom-up accumulation then turns per-node contributions into per-core
// totals. Work: O(n) plus the once-only preprocessing — work-efficient.
func (ix *Index) PrimaryA(threads int) []metrics.PrimaryValues {
	out, err := ix.PrimaryACtx(context.Background(), threads)
	if err != nil {
		panic(err)
	}
	return out
}

// PrimaryACtx is PrimaryA with failure containment: worker panics surface
// as a *par.PanicError and a cancelled ctx aborts between chunks.
func (ix *Index) PrimaryACtx(ctx context.Context, threads int) ([]metrics.PrimaryValues, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defer obs.StartSpanCtx(ctx, "search.typea").End()
	nn := ix.h.NumNodes()
	vals := make([]int64, nn*3) // rows: [n, 2m, b]
	err := par.ForChunkedErr(ctx, nn, threads, 64, func(lo, hi int) error {
		faultinject.Maybe("search.typea")
		for id := lo; id < hi; id++ {
			var cn, m2, b int64
			for _, v := range ix.h.Vertices[id] {
				gt := int64(ix.gtK[v])
				eq := int64(ix.eqK[v])
				lt := int64(ix.g.Degree(v)) - gt - eq
				cn++
				m2 += 2*gt + eq
				b += lt - gt
			}
			vals[id*3] = cn
			vals[id*3+1] = m2
			vals[id*3+2] = b
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := treeaccum.AccumulateCtx(ctx, ix.h, vals, 3, threads); err != nil {
		return nil, err
	}
	out := make([]metrics.PrimaryValues, nn)
	err = par.ForEachErr(ctx, nn, threads, func(i int) error {
		out[i] = metrics.PrimaryValues{
			N: vals[i*3],
			M: vals[i*3+1] / 2,
			B: vals[i*3+2],
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BestKSet evaluates the §VI "finding the best k" extension for a Type A
// metric: instead of individual k-cores, score every k-core *set*
// Kk = G[{v : c(v) >= k}] (possibly disconnected) and return the best k
// with its score. Contributions are charged to shells in per-thread
// buffers (levels is small, so the buffers are cheap and the shared rows
// stay contention-free) and suffix-summed, so the whole computation is
// O(n) after preprocessing.
func (ix *Index) BestKSet(m metrics.Metric, threads int) (bestK int32, bestScore float64, scores []float64) {
	bestK, bestScore, scores, err := ix.BestKSetCtx(context.Background(), m, threads)
	if err != nil {
		panic(err)
	}
	return bestK, bestScore, scores
}

// BestKSetCtx is BestKSet with failure containment and cooperative
// cancellation: a worker panic in either charging pass surfaces as a
// *par.PanicError instead of crashing, and a cancelled ctx (nil means
// background) aborts the passes at their chunk boundaries.
func (ix *Index) BestKSetCtx(ctx context.Context, m metrics.Metric, threads int) (bestK int32, bestScore float64, scores []float64, err error) {
	if m.Kind() != metrics.TypeA {
		panic("search: BestKSet supports Type A metrics only")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := ix.g.NumVertices()
	levels := int(ix.kmax) + 1
	p := par.Threads(threads)
	locals := make([][]int64, p)
	err = par.ForErr(ctx, p, p, func(tlo, thi int) error {
		for t := tlo; t < thi; t++ {
			buf := make([]int64, levels*3)
			for i := t * n / p; i < (t+1)*n/p; i++ {
				v := int32(i)
				gt := int64(ix.gtK[v])
				eq := int64(ix.eqK[v])
				lt := int64(ix.g.Degree(v)) - gt - eq
				row := int(ix.core[v]) * 3
				buf[row]++
				buf[row+1] += 2*gt + eq
				buf[row+2] += lt - gt
			}
			locals[t] = buf
		}
		return nil
	})
	if err != nil {
		return 0, 0, nil, err
	}
	vals := make([]int64, levels*3)
	err = par.ForEachErr(ctx, levels*3, p, func(j int) error {
		var s int64
		for t := 0; t < p; t++ {
			s += locals[t][j]
		}
		vals[j] = s
		return nil
	})
	if err != nil {
		return 0, 0, nil, err
	}
	// Suffix sums: Kk contains every shell with c >= k.
	for k := levels - 2; k >= 0; k-- {
		for f := 0; f < 3; f++ {
			vals[k*3+f] += vals[(k+1)*3+f]
		}
	}
	stats := ix.Stats()
	scores = make([]float64, levels)
	bestK = 0
	first := true
	for k := 0; k < levels; k++ {
		if vals[k*3] == 0 {
			scores[k] = 0
			continue // empty k-core set
		}
		pv := metrics.PrimaryValues{N: vals[k*3], M: vals[k*3+1] / 2, B: vals[k*3+2]}
		scores[k] = m.Score(pv, stats)
		// Ties prefer the larger k: when several levels induce the same
		// subgraph (e.g. no 0-shell), report the tightest constraint.
		if first || scores[k] >= bestScore {
			bestK, bestScore, first = int32(k), scores[k], false
		}
	}
	return bestK, bestScore, scores, nil
}
