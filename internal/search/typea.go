package search

import (
	"sync/atomic"

	"hcd/internal/metrics"
	"hcd/internal/par"
	"hcd/internal/treeaccum"
)

// PrimaryA computes, for every tree node, the Type A primary values —
// n(S), m(S), b(S) — of the node's original k-core (Algorithm 4).
//
// Each vertex contributes to its own tree node, in parallel:
//
//	vertices:       +1
//	edges (doubled): 2·gt_k + eq_k   (an edge to a deeper vertex counted
//	                 once here; a same-shell edge counted by both ends)
//	boundary:        lt_k − gt_k     (edges to shallower vertices appear,
//	                 edges to deeper vertices stop being boundary)
//
// Bottom-up accumulation then turns per-node contributions into per-core
// totals. Work: O(n) plus the once-only preprocessing — work-efficient.
func (ix *Index) PrimaryA(threads int) []metrics.PrimaryValues {
	nn := ix.h.NumNodes()
	vals := make([]int64, nn*3) // rows: [n, 2m, b]
	par.ForEach(ix.g.NumVertices(), threads, func(i int) {
		v := int32(i)
		gt := int64(ix.gtK[v])
		eq := int64(ix.eqK[v])
		lt := int64(ix.g.Degree(v)) - gt - eq
		row := int(ix.h.TID[v]) * 3
		atomic.AddInt64(&vals[row], 1)
		atomic.AddInt64(&vals[row+1], 2*gt+eq)
		atomic.AddInt64(&vals[row+2], lt-gt)
	})
	treeaccum.Accumulate(ix.h, vals, 3, threads)
	out := make([]metrics.PrimaryValues, nn)
	par.ForEach(nn, threads, func(i int) {
		out[i] = metrics.PrimaryValues{
			N: vals[i*3],
			M: vals[i*3+1] / 2,
			B: vals[i*3+2],
		}
	})
	return out
}

// BestKSet evaluates the §VI "finding the best k" extension for a Type A
// metric: instead of individual k-cores, score every k-core *set*
// Kk = G[{v : c(v) >= k}] (possibly disconnected) and return the best k
// with its score. Contributions are charged to shells and suffix-summed,
// so the whole computation is O(n) after preprocessing.
func (ix *Index) BestKSet(m metrics.Metric, threads int) (bestK int32, bestScore float64, scores []float64) {
	if m.Kind() != metrics.TypeA {
		panic("search: BestKSet supports Type A metrics only")
	}
	n := ix.g.NumVertices()
	levels := int(ix.kmax) + 1
	vals := make([]int64, levels*3)
	par.ForEach(n, threads, func(i int) {
		v := int32(i)
		gt := int64(ix.gtK[v])
		eq := int64(ix.eqK[v])
		lt := int64(ix.g.Degree(v)) - gt - eq
		row := int(ix.core[v]) * 3
		atomic.AddInt64(&vals[row], 1)
		atomic.AddInt64(&vals[row+1], 2*gt+eq)
		atomic.AddInt64(&vals[row+2], lt-gt)
	})
	// Suffix sums: Kk contains every shell with c >= k.
	for k := levels - 2; k >= 0; k-- {
		for f := 0; f < 3; f++ {
			vals[k*3+f] += vals[(k+1)*3+f]
		}
	}
	stats := ix.Stats()
	scores = make([]float64, levels)
	bestK = 0
	first := true
	for k := 0; k < levels; k++ {
		if vals[k*3] == 0 {
			scores[k] = 0
			continue // empty k-core set
		}
		pv := metrics.PrimaryValues{N: vals[k*3], M: vals[k*3+1] / 2, B: vals[k*3+2]}
		scores[k] = m.Score(pv, stats)
		// Ties prefer the larger k: when several levels induce the same
		// subgraph (e.g. no 0-shell), report the tightest constraint.
		if first || scores[k] >= bestScore {
			bestK, bestScore, first = int32(k), scores[k], false
		}
	}
	return bestK, bestScore, scores
}
