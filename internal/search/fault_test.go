package search

import (
	"context"
	"errors"
	"testing"
	"time"

	"hcd/internal/coredecomp"
	"hcd/internal/faultinject"
	"hcd/internal/gen"
	"hcd/internal/hierarchy"
	"hcd/internal/metrics"
)

func faultIndex(t *testing.T) *Index {
	t.Helper()
	g := gen.BarabasiAlbert(500, 4, 17)
	core := coredecomp.Serial(g)
	h := hierarchy.BruteForce(g, core)
	return NewIndex(g, core, h, 4)
}

// TestSearchCtxContainsKernelPanics injects a panic into the Type A and
// Type B kernels and checks SearchCtx reports it as an error.
func TestSearchCtxContainsKernelPanics(t *testing.T) {
	defer faultinject.Disable()
	ix := faultIndex(t)
	cases := []struct {
		site   string
		metric metrics.Metric
	}{
		{"search.typea", metrics.AverageDegree{}},         // Type A kernel
		{"search.typeb", metrics.ClusteringCoefficient{}}, // Type B kernel
		{"treeaccum", metrics.AverageDegree{}},            // shared accumulation
	}
	for _, c := range cases {
		if err := faultinject.Enable(c.site + ":panic:1"); err != nil {
			t.Fatal(err)
		}
		_, err := ix.SearchCtx(context.Background(), c.metric, 4)
		var f *faultinject.Fault
		if err == nil || !errors.As(err, &f) || f.Site != c.site {
			t.Errorf("%s: SearchCtx err = %v, want the injected fault", c.site, err)
		}
		faultinject.Disable()
	}
	// Disarmed, the same searches succeed.
	for _, m := range []metrics.Metric{metrics.AverageDegree{}, metrics.ClusteringCoefficient{}} {
		if _, err := ix.SearchCtx(context.Background(), m, 4); err != nil {
			t.Errorf("disarmed search (%s): %v", m.Name(), err)
		}
	}
}

// TestSearchCtxCancellation checks the long-running Type B kernel notices
// a cancellation that arrives mid-count (it polls every 1024 vertices).
func TestSearchCtxCancellation(t *testing.T) {
	ix := faultIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.SearchCtx(ctx, metrics.ClusteringCoefficient{}, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled SearchCtx err = %v, want context.Canceled", err)
	}

	// And a cancellation that lands while the kernel is running: a delay
	// rule pins the first chunk so the cancel deterministically arrives
	// mid-kernel.
	defer faultinject.Disable()
	if err := faultinject.Enable("search.typeb:delay:1:200ms"); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel2()
	}()
	if _, err := ix.SearchCtx(ctx2, metrics.ClusteringCoefficient{}, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("mid-kernel cancel err = %v, want context.Canceled", err)
	}
}
