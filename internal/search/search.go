// Package search implements subgraph search on the HCD (§IV): given a
// community scoring metric Q, find the k-core with the highest score among
// all k-cores for every k.
//
// Two engines are provided:
//
//   - PBKS (Index.Search), the paper's parallel vertex-centric framework
//     (Algorithms 3-5): every motif — vertex, edge, boundary edge,
//     triangle, triplet — is charged exactly once, to the tree node of the
//     motif's lowest-vertex-rank endpoint; contributions are then folded
//     bottom-up over the hierarchy by parallel tree accumulation, giving
//     every k-core's primary values, and the metric is evaluated per node.
//     Work: O(n) per Type A scoring, O(m^1.5) per Type B scoring, after a
//     once-only O(m) preprocessing — work-efficient in both cases.
//
//   - BKS (NewBKS / BKS.Search), the serial state of the art [10] the
//     paper compares against: it bin-sorts every adjacency list by
//     coreness ("vertex ordering"), then computes scores level by level in
//     strictly decreasing coreness, each level depending on the results of
//     the previous one — the structure that makes it hard to parallelise.
package search

import (
	"context"
	"math"
	"time"

	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/metrics"
	"hcd/internal/obs"
	"hcd/internal/par"
	"hcd/internal/shellidx"
)

// Index is the PBKS search state for one (graph, core, HCD) triple. The
// §IV-A preprocessing — per-vertex counts of neighbors with greater and
// equal coreness — runs once in NewIndex and is shared by every subsequent
// Search, whatever the metric.
type Index struct {
	g    *graph.Graph
	core []int32
	h    *hierarchy.HCD
	lay  *shellidx.Layout // optional coreness-ordered adjacency (may be nil)
	gtK  []int32          // gtK[v] = |{u in N(v) : c(u) > c(v)}|
	eqK  []int32          // eqK[v] = |{u in N(v) : c(u) = c(v)}|
	kmax int32
}

// NewIndex builds the search index, running the preprocessing with the
// given number of threads. core and h must belong to g. Callers that
// already hold a shellidx.Layout for (g, core) — e.g. one shared with
// core.PHCDWithLayout — should use NewIndexWithLayout, which skips the 2m
// preprocessing scan entirely.
func NewIndex(g *graph.Graph, core []int32, h *hierarchy.HCD, threads int) *Index {
	return NewIndexWithLayout(g, core, h, nil, threads)
}

// NewIndexWithLayout builds the search index on a prebuilt coreness-ordered
// adjacency layout (shellidx.Build for the same g and core; nil falls back
// to scanning the raw adjacency). The layout already carries the gt/eq
// neighbor counts, so the §IV-A preprocessing becomes two O(1) aliases, and
// PrimaryB's triplet binning walks the layout's shallower segment instead
// of re-bucketing neighbors by coreness.
func NewIndexWithLayout(g *graph.Graph, core []int32, h *hierarchy.HCD, lay *shellidx.Layout, threads int) *Index {
	ix, err := NewIndexCtx(context.Background(), g, core, h, lay, threads)
	if err != nil {
		panic(err)
	}
	return ix
}

// NewIndexCtx is NewIndexWithLayout with failure containment and
// cooperative cancellation: a worker panic in the preprocessing scan
// surfaces as a *par.PanicError instead of crashing the process, and a
// cancelled ctx (nil means background) aborts the scan at its internal
// chunk boundaries.
func NewIndexCtx(ctx context.Context, g *graph.Graph, core []int32, h *hierarchy.HCD, lay *shellidx.Layout, threads int) (*Index, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defer obs.StartSpanCtx(ctx, "search.newindex").End()
	n := g.NumVertices()
	ix := &Index{
		g:    g,
		core: core,
		h:    h,
		lay:  lay,
	}
	for _, c := range core {
		if c > ix.kmax {
			ix.kmax = c
		}
	}
	if lay != nil {
		ix.gtK = lay.GtCounts()
		ix.eqK = lay.EqCounts()
		return ix, ctx.Err()
	}
	ix.gtK = make([]int32, n)
	ix.eqK = make([]int32, n)
	err := par.ForEachErr(ctx, n, threads, func(i int) error {
		v := int32(i)
		var gt, eq int32
		for _, u := range g.Neighbors(v) {
			switch {
			case core[u] > core[v]:
				gt++
			case core[u] == core[v]:
				eq++
			}
		}
		ix.gtK[v] = gt
		ix.eqK[v] = eq
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// Hierarchy returns the HCD the index searches over.
func (ix *Index) Hierarchy() *hierarchy.HCD { return ix.h }

// Bytes returns the index's exclusive storage footprint in bytes: the
// layout's reordered adjacency and count arrays when the index owns one,
// plus the gt/eq preprocessing arrays when it had to build its own. With
// a layout present gtK/eqK alias the layout's arrays (NewIndexCtx), so
// only the layout side is counted — never both. The graph, coreness
// array and hierarchy are owned by the caller and excluded.
func (ix *Index) Bytes() int64 {
	if ix.lay != nil {
		return ix.lay.Bytes()
	}
	return int64(len(ix.gtK))*4 + int64(len(ix.eqK))*4
}

// Stats returns the whole-graph statistics metrics normalise by.
func (ix *Index) Stats() metrics.GraphStats {
	return metrics.GraphStats{N: int64(ix.g.NumVertices()), M: ix.g.NumEdges()}
}

// rankLess orders vertices by vertex rank (Definition 4): coreness first,
// id as the tie-break.
func (ix *Index) rankLess(a, b int32) bool {
	return ix.core[a] < ix.core[b] || (ix.core[a] == ix.core[b] && a < b)
}

// Result reports the outcome of one subgraph search.
type Result struct {
	// Node is the winning k-core's tree node (hierarchy.Nil on an empty
	// hierarchy).
	Node hierarchy.NodeID
	// K is the winning k-core's coreness level.
	K int32
	// Score is the winning k-core's community score.
	Score float64
	// Values are the winning k-core's primary values.
	Values metrics.PrimaryValues
	// Scores holds every tree node's score, indexed by NodeID.
	Scores []float64
}

// Search runs PBKS: it computes the primary values the metric needs
// (Algorithm 4 for Type A, Algorithm 5 for Type B), folds them bottom-up,
// scores every k-core and returns the best one. Ties break toward the
// smaller node id so results are deterministic.
func (ix *Index) Search(m metrics.Metric, threads int) Result {
	r, err := ix.SearchCtx(context.Background(), m, threads)
	if err != nil {
		panic(err)
	}
	return r
}

// SearchCtx is Search with failure containment and cooperative
// cancellation: a panic inside either primary-value kernel or the tree
// accumulation surfaces as a *par.PanicError instead of crashing the
// process, and a cancelled ctx (nil means background) aborts the kernels
// at their internal chunk boundaries. Thin wrapper over SearchReportCtx,
// discarding the report.
func (ix *Index) SearchCtx(ctx context.Context, m metrics.Metric, threads int) (Result, error) {
	r, _, err := ix.SearchReportCtx(ctx, m, threads)
	return r, err
}

// Report describes how one SearchReportCtx call ran: the resolved thread
// count, the wall-clock total, and the per-phase breakdown (primary-value
// kernel including tree accumulation, then metric scoring) with each
// phase's worker-balance statistics.
type Report struct {
	// Threads is the resolved worker count the kernels used.
	Threads int `json:"threads"`
	// Elapsed is the wall-clock duration of the whole search.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Phases is the per-phase breakdown; durations sum to ≈ Elapsed.
	Phases []obs.PhaseStat `json:"phases"`
}

// SearchReportCtx is SearchCtx with a per-phase report: the returned
// Report is non-nil whenever err is nil, and its phase durations are
// measured around the primary-value kernel (Algorithm 4 or 5, including
// the bottom-up tree accumulation) and the metric-evaluation pass.
func (ix *Index) SearchReportCtx(ctx context.Context, m metrics.Metric, threads int) (Result, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rep := &Report{Threads: par.Threads(threads)}
	//hcdlint:allow determinism wall-clock reads here feed only Report.Elapsed/Phases, never the Result; the winner and scores are clock-independent
	start := time.Now()
	defer obs.StartSpanCtx(ctx, "search").End()
	nn := ix.h.NumNodes()
	if nn == 0 {
		rep.Elapsed = time.Since(start)
		return Result{Node: hierarchy.Nil}, rep, ctx.Err()
	}
	// Phase durations use a local clock so they stay populated under the
	// noobs build tag; only the worker statistics come from obs.
	m0 := obs.ReadMem()
	sp := obs.StartPhaseCtx(ctx, "search.primary")
	//hcdlint:allow determinism phase timing for Report.Phases only; no influence on the Result
	ps := time.Now()
	var vals []metrics.PrimaryValues
	var err error
	if m.Kind() == metrics.TypeA {
		vals, err = ix.PrimaryACtx(ctx, threads)
	} else {
		vals, err = ix.PrimaryBCtx(ctx, threads)
	}
	pd := time.Since(ps)
	sp.End()
	rep.Phases = append(rep.Phases, obs.NewPhaseStat("search.primary", pd, sp.WorkerStats()).WithMem(obs.ReadMem().Sub(m0)))
	if err != nil {
		return Result{Node: hierarchy.Nil}, nil, err
	}
	m0 = obs.ReadMem()
	sp = obs.StartPhaseCtx(ctx, "search.score")
	//hcdlint:allow determinism phase timing for Report.Phases only; no influence on the Result
	ps = time.Now()
	r, err := ix.pickCtx(ctx, m, vals, threads)
	pd = time.Since(ps)
	sp.End()
	if err != nil {
		return Result{Node: hierarchy.Nil}, nil, err
	}
	rep.Phases = append(rep.Phases, obs.NewPhaseStat("search.score", pd, sp.WorkerStats()).WithMem(obs.ReadMem().Sub(m0)))
	rep.Elapsed = time.Since(start)
	return r, rep, nil
}

// pickCtx evaluates the metric on every node's primary values and returns
// the argmax (Algorithm 3 lines 9-11); a scoring panic surfaces as a
// *par.PanicError and a cancelled ctx aborts between per-thread chunks.
func (ix *Index) pickCtx(ctx context.Context, m metrics.Metric, vals []metrics.PrimaryValues, threads int) (Result, error) {
	nn := ix.h.NumNodes()
	stats := ix.Stats()
	scores := make([]float64, nn)
	p := par.Threads(threads)
	type best struct {
		node  hierarchy.NodeID
		score float64
	}
	bests := make([]best, p)
	err := par.ForErr(ctx, p, p, func(tlo, thi int) error {
		for t := tlo; t < thi; t++ {
			b := best{node: hierarchy.Nil}
			for i := t * nn / p; i < (t+1)*nn/p; i++ {
				s := m.Score(vals[i], stats)
				scores[i] = s
				if b.node == hierarchy.Nil || s > b.score {
					b = best{hierarchy.NodeID(i), s}
				}
			}
			bests[t] = b
		}
		return nil
	})
	if err != nil {
		return Result{Node: hierarchy.Nil}, err
	}
	win := best{node: hierarchy.Nil}
	for _, b := range bests {
		if b.node == hierarchy.Nil {
			continue
		}
		if win.node == hierarchy.Nil || b.score > win.score {
			win = b
		}
	}
	return Result{
		Node:   win.node,
		K:      ix.h.K[win.node],
		Score:  win.score,
		Values: vals[win.node],
		Scores: scores,
	}, nil
}

// SearchConstrained is Search restricted to k-cores whose vertex count
// lies in [minSize, maxSize] (maxSize <= 0 means unbounded) — the
// size-constrained variant §VI mentions among the k-core problems PBKS
// serves. It returns Node == hierarchy.Nil when no k-core satisfies the
// constraint.
func (ix *Index) SearchConstrained(m metrics.Metric, minSize, maxSize int64, threads int) Result {
	nn := ix.h.NumNodes()
	if nn == 0 {
		return Result{Node: hierarchy.Nil}
	}
	var vals []metrics.PrimaryValues
	if m.Kind() == metrics.TypeA {
		vals = ix.PrimaryA(threads)
	} else {
		vals = ix.PrimaryB(threads)
	}
	stats := ix.Stats()
	scores := make([]float64, nn)
	best := hierarchy.Nil
	for i := 0; i < nn; i++ {
		if vals[i].N < minSize || (maxSize > 0 && vals[i].N > maxSize) {
			scores[i] = math.Inf(-1)
			continue
		}
		scores[i] = m.Score(vals[i], stats)
		if best == hierarchy.Nil || scores[i] > scores[best] {
			best = hierarchy.NodeID(i)
		}
	}
	if best == hierarchy.Nil {
		return Result{Node: hierarchy.Nil, Scores: scores}
	}
	return Result{
		Node:   best,
		K:      ix.h.K[best],
		Score:  scores[best],
		Values: vals[best],
		Scores: scores,
	}
}

// SearchConstrainedCtx is SearchConstrained with failure containment and
// cooperative cancellation: a worker panic inside either primary-value
// kernel surfaces as a *par.PanicError instead of crashing, and a
// cancelled ctx (nil means background) aborts the kernels at their chunk
// boundaries and the scoring scan between strides. This is the variant a
// resident query server calls with a per-request deadline.
func (ix *Index) SearchConstrainedCtx(ctx context.Context, m metrics.Metric, minSize, maxSize int64, threads int) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	nn := ix.h.NumNodes()
	if nn == 0 {
		return Result{Node: hierarchy.Nil}, ctx.Err()
	}
	var vals []metrics.PrimaryValues
	var err error
	if m.Kind() == metrics.TypeA {
		vals, err = ix.PrimaryACtx(ctx, threads)
	} else {
		vals, err = ix.PrimaryBCtx(ctx, threads)
	}
	if err != nil {
		return Result{Node: hierarchy.Nil}, err
	}
	stats := ix.Stats()
	scores := make([]float64, nn)
	best := hierarchy.Nil
	const stride = 1 << 14 // ctx poll granularity of the scoring scan
	for i := 0; i < nn; i++ {
		if i%stride == 0 {
			if err := ctx.Err(); err != nil {
				return Result{Node: hierarchy.Nil}, err
			}
		}
		if vals[i].N < minSize || (maxSize > 0 && vals[i].N > maxSize) {
			scores[i] = math.Inf(-1)
			continue
		}
		scores[i] = m.Score(vals[i], stats)
		if best == hierarchy.Nil || scores[i] > scores[best] {
			best = hierarchy.NodeID(i)
		}
	}
	if best == hierarchy.Nil {
		return Result{Node: hierarchy.Nil, Scores: scores}, nil
	}
	return Result{
		Node:   best,
		K:      ix.h.K[best],
		Score:  scores[best],
		Values: vals[best],
		Scores: scores,
	}, nil
}

// BestPerLevel returns, for every coreness level k with at least one tree
// node, the best-scoring k-core at that level — the per-k view behind the
// §VI "finding the best k" analyses. The slice is indexed by k; levels
// with no k-core have Node == hierarchy.Nil.
func (ix *Index) BestPerLevel(m metrics.Metric, threads int) []Result {
	out := make([]Result, ix.kmax+1)
	for k := range out {
		out[k].Node = hierarchy.Nil
	}
	nn := ix.h.NumNodes()
	if nn == 0 {
		return out
	}
	var vals []metrics.PrimaryValues
	if m.Kind() == metrics.TypeA {
		vals = ix.PrimaryA(threads)
	} else {
		vals = ix.PrimaryB(threads)
	}
	stats := ix.Stats()
	for i := 0; i < nn; i++ {
		k := ix.h.K[i]
		s := m.Score(vals[i], stats)
		if out[k].Node == hierarchy.Nil || s > out[k].Score {
			out[k] = Result{Node: hierarchy.NodeID(i), K: k, Score: s, Values: vals[i]}
		}
	}
	return out
}
