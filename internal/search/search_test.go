package search

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/metrics"
)

// brutePrimary computes every tree node's primary values directly from
// the definition: materialise the core's vertex set and count.
func brutePrimary(g *graph.Graph, h *hierarchy.HCD) []metrics.PrimaryValues {
	out := make([]metrics.PrimaryValues, h.NumNodes())
	n := g.NumVertices()
	in := make([]bool, n)
	for i := 0; i < h.NumNodes(); i++ {
		vs := h.CoreVertices(hierarchy.NodeID(i))
		for _, v := range vs {
			in[v] = true
		}
		var pv metrics.PrimaryValues
		pv.N = int64(len(vs))
		degS := make(map[int32]int64, len(vs))
		for _, v := range vs {
			for _, u := range g.Neighbors(v) {
				if in[u] {
					if v < u {
						pv.M++
					}
					degS[v]++
				} else {
					pv.B++
				}
			}
		}
		// Triplets: sum of C(deg_S(v), 2).
		for _, d := range degS {
			pv.Triplets += d * (d - 1) / 2
		}
		// Triangles by enumeration.
		for _, v := range vs {
			for _, u := range g.Neighbors(v) {
				if !in[u] || u <= v {
					continue
				}
				for _, w := range g.Neighbors(u) {
					if in[w] && w > u && g.HasEdge(v, w) {
						pv.Triangles++
					}
				}
			}
		}
		out[i] = pv
		for _, v := range vs {
			in[v] = false
		}
	}
	return out
}

func setup(g *graph.Graph) ([]int32, *hierarchy.HCD) {
	core := coredecomp.Serial(g)
	return core, hierarchy.BruteForce(g, core)
}

func pvEqual(a, b metrics.PrimaryValues, typeB bool) bool {
	if a.N != b.N || a.M != b.M || a.B != b.B {
		return false
	}
	if typeB && (a.Triangles != b.Triangles || a.Triplets != b.Triplets) {
		return false
	}
	return true
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"fig1-like": graph.MustFromEdges(9, []graph.Edge{
			{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
			{U: 4, V: 5}, {U: 4, V: 6}, {U: 4, V: 7}, {U: 5, V: 6}, {U: 5, V: 7}, {U: 6, V: 7},
			{U: 3, V: 8}, {U: 8, V: 4},
		}),
		"er":      gen.ErdosRenyi(150, 700, 1),
		"ba":      gen.BarabasiAlbert(120, 4, 2),
		"onion":   gen.Onion(5, 12, 2, 2, 2, 3),
		"planted": gen.PlantedPartition(3, 30, 0.3, 0.02, 4),
		"empty":   graph.MustFromEdges(3, nil),
	}
}

func TestPrimaryAMatchesBruteForce(t *testing.T) {
	for name, g := range testGraphs() {
		core, h := setup(g)
		want := brutePrimary(g, h)
		for _, threads := range []int{1, 2, 5} {
			ix := NewIndex(g, core, h, threads)
			got := ix.PrimaryA(threads)
			for i := range want {
				if !pvEqual(got[i], want[i], false) {
					t.Errorf("%s threads=%d node %d: PrimaryA %+v, want %+v",
						name, threads, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPrimaryBMatchesBruteForce(t *testing.T) {
	for name, g := range testGraphs() {
		core, h := setup(g)
		want := brutePrimary(g, h)
		for _, threads := range []int{1, 3, 8} {
			ix := NewIndex(g, core, h, threads)
			got := ix.PrimaryB(threads)
			for i := range want {
				if !pvEqual(got[i], want[i], true) {
					t.Errorf("%s threads=%d node %d: PrimaryB %+v, want %+v",
						name, threads, i, got[i], want[i])
				}
			}
		}
	}
}

func TestBKSPrimariesMatchBruteForce(t *testing.T) {
	for name, g := range testGraphs() {
		core, h := setup(g)
		want := brutePrimary(g, h)
		b := NewBKS(g, core, h)
		gotA := b.primaryA()
		gotB := b.primaryB()
		for i := range want {
			if !pvEqual(gotA[i], want[i], false) {
				t.Errorf("%s node %d: BKS primaryA %+v, want %+v", name, i, gotA[i], want[i])
			}
			if !pvEqual(gotB[i], want[i], true) {
				t.Errorf("%s node %d: BKS primaryB %+v, want %+v", name, i, gotB[i], want[i])
			}
		}
	}
}

func TestPBKSAndBKSAgreeOnAllMetrics(t *testing.T) {
	for name, g := range testGraphs() {
		core, h := setup(g)
		if h.NumNodes() == 0 {
			continue
		}
		ix := NewIndex(g, core, h, 4)
		b := NewBKS(g, core, h)
		for _, m := range metrics.All() {
			rp := ix.Search(m, 4)
			rs := b.Search(m)
			if math.Abs(rp.Score-rs.Score) > 1e-9 {
				t.Errorf("%s %s: PBKS score %v, BKS score %v", name, m.Name(), rp.Score, rs.Score)
			}
			if rp.Scores[rs.Node] != rs.Scores[rs.Node] {
				t.Errorf("%s %s: per-node scores differ at BKS winner", name, m.Name())
			}
		}
	}
}

func TestSearchReturnsArgmax(t *testing.T) {
	g := testGraphs()["onion"]
	core, h := setup(g)
	ix := NewIndex(g, core, h, 2)
	for _, m := range metrics.All() {
		r := ix.Search(m, 2)
		if len(r.Scores) != h.NumNodes() {
			t.Fatalf("%s: Scores has %d entries", m.Name(), len(r.Scores))
		}
		for i, s := range r.Scores {
			if s > r.Score {
				t.Errorf("%s: node %d scores %v > reported best %v", m.Name(), i, s, r.Score)
			}
		}
		if r.Scores[r.Node] != r.Score {
			t.Errorf("%s: winner score inconsistent", m.Name())
		}
		if r.K != h.K[r.Node] {
			t.Errorf("%s: reported K %d != node level %d", m.Name(), r.K, h.K[r.Node])
		}
	}
}

func TestSearchEmptyHierarchy(t *testing.T) {
	g := graph.MustFromEdges(0, nil)
	core, h := setup(g)
	ix := NewIndex(g, core, h, 2)
	if r := ix.Search(metrics.AverageDegree{}, 2); r.Node != hierarchy.Nil {
		t.Error("empty hierarchy should return Nil node")
	}
	b := NewBKS(g, core, h)
	if r := b.Search(metrics.AverageDegree{}); r.Node != hierarchy.Nil {
		t.Error("empty hierarchy should return Nil node (BKS)")
	}
}

func TestPrimariesProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint16, p uint8) bool {
		n := int(nRaw%80) + 1
		m := int(mRaw % 500)
		rng := rand.New(rand.NewSource(seed))
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		core, h := setup(g)
		want := brutePrimary(g, h)
		ix := NewIndex(g, core, h, int(p%6)+1)
		got := ix.PrimaryB(int(p % 6))
		for i := range want {
			if !pvEqual(got[i], want[i], true) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBestKSet(t *testing.T) {
	g := gen.Onion(4, 15, 2, 3, 2, 9)
	core, h := setup(g)
	ix := NewIndex(g, core, h, 2)
	m := metrics.AverageDegree{}
	bestK, bestScore, scores := ix.BestKSet(m, 2)
	// Brute-force every k-core set.
	kmax := coredecomp.KMax(core)
	in := make([]bool, g.NumVertices())
	wantBest := -1.0
	wantK := int32(0)
	for k := int32(0); k <= kmax; k++ {
		var nS, mS int64
		for v := 0; v < g.NumVertices(); v++ {
			in[v] = core[v] >= k
			if in[v] {
				nS++
			}
		}
		if nS == 0 {
			continue
		}
		g.Edges(func(u, v int32) {
			if in[u] && in[v] {
				mS++
			}
		})
		s := m.Score(metrics.PrimaryValues{N: nS, M: mS}, metrics.GraphStats{})
		if math.Abs(scores[k]-s) > 1e-9 {
			t.Errorf("k=%d: BestKSet score %v, brute force %v", k, scores[k], s)
		}
		if s >= wantBest {
			wantBest, wantK = s, k
		}
	}
	if bestK != wantK || math.Abs(bestScore-wantBest) > 1e-9 {
		t.Errorf("BestKSet = (%d, %v), want (%d, %v)", bestK, bestScore, wantK, wantBest)
	}
}

func TestBestKSetRejectsTypeB(t *testing.T) {
	g := gen.ErdosRenyi(30, 60, 1)
	core, h := setup(g)
	ix := NewIndex(g, core, h, 1)
	defer func() {
		if recover() == nil {
			t.Error("BestKSet must reject Type B metrics")
		}
	}()
	ix.BestKSet(metrics.ClusteringCoefficient{}, 1)
}

func BenchmarkPBKSTypeA(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 8, 1)
	core := coredecomp.Serial(g)
	h := hierarchy.BruteForce(g, core)
	ix := NewIndex(g, core, h, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(metrics.AverageDegree{}, 0)
	}
}

func BenchmarkPBKSTypeB(b *testing.B) {
	g := gen.BarabasiAlbert(5000, 8, 1)
	core := coredecomp.Serial(g)
	h := hierarchy.BruteForce(g, core)
	ix := NewIndex(g, core, h, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(metrics.ClusteringCoefficient{}, 0)
	}
}

func BenchmarkBKSTypeB(b *testing.B) {
	g := gen.BarabasiAlbert(5000, 8, 1)
	core := coredecomp.Serial(g)
	h := hierarchy.BruteForce(g, core)
	bks := NewBKS(g, core, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bks.Search(metrics.ClusteringCoefficient{})
	}
}

func TestSearchConstrained(t *testing.T) {
	g := testGraphs()["fig1-like"]
	core, h := setup(g)
	ix := NewIndex(g, core, h, 2)
	m := metrics.AverageDegree{}
	// Unconstrained equals Search.
	all := ix.Search(m, 2)
	same := ix.SearchConstrained(m, 0, 0, 2)
	if all.Node != same.Node || all.Score != same.Score {
		t.Errorf("unconstrained SearchConstrained differs from Search")
	}
	// Restrict to at most 4 vertices: only the K4s qualify.
	small := ix.SearchConstrained(m, 0, 4, 2)
	if small.Node == hierarchy.Nil || small.Values.N != 4 || math.Abs(small.Score-3) > 1e-9 {
		t.Errorf("size-capped search = %+v, want a K4", small)
	}
	// Impossible window.
	none := ix.SearchConstrained(m, 100, 200, 2)
	if none.Node != hierarchy.Nil {
		t.Errorf("impossible constraint returned node %d", none.Node)
	}
	// Assembled metric runs through the same engine.
	w := metrics.Weighted{Terms: []metrics.WeightedTerm{
		{Metric: metrics.InternalDensity{}, Coeff: 1},
		{Metric: metrics.ClusteringCoefficient{}, Coeff: 1},
	}}
	r := ix.Search(w, 2)
	if r.Node == hierarchy.Nil || math.Abs(r.Score-2) > 1e-9 {
		t.Errorf("weighted search = %+v, want a K4 scoring 2 (density 1 + CC 1)", r)
	}
	// Empty hierarchy.
	eg := graph.MustFromEdges(0, nil)
	ecore, eh := setup(eg)
	eix := NewIndex(eg, ecore, eh, 1)
	if eix.SearchConstrained(m, 0, 0, 1).Node != hierarchy.Nil {
		t.Error("empty hierarchy must return Nil")
	}
}

func TestBestPerLevel(t *testing.T) {
	g := testGraphs()["fig1-like"]
	core, h := setup(g)
	ix := NewIndex(g, core, h, 2)
	m := metrics.AverageDegree{}
	per := ix.BestPerLevel(m, 2)
	if len(per) != 4 { // k = 0..3
		t.Fatalf("per-level results = %d entries, want 4", len(per))
	}
	if per[0].Node != hierarchy.Nil || per[1].Node != hierarchy.Nil {
		t.Error("levels without nodes must be Nil")
	}
	// Level 3: the better of the two K4s is any K4 (score 3).
	if per[3].Node == hierarchy.Nil || math.Abs(per[3].Score-3) > 1e-9 {
		t.Errorf("level-3 best = %+v", per[3])
	}
	// Level 2: the whole graph.
	if per[2].Node == hierarchy.Nil || math.Abs(per[2].Score-28.0/9) > 1e-9 {
		t.Errorf("level-2 best = %+v", per[2])
	}
	// The global Search winner must be the max over levels.
	best := ix.Search(m, 2)
	maxPer := -1.0
	for _, r := range per {
		if r.Node != hierarchy.Nil && r.Score > maxPer {
			maxPer = r.Score
		}
	}
	if math.Abs(best.Score-maxPer) > 1e-9 {
		t.Errorf("Search %v != max per-level %v", best.Score, maxPer)
	}
	// Empty hierarchy.
	eg := graph.MustFromEdges(0, nil)
	ecore, eh := setup(eg)
	eix := NewIndex(eg, ecore, eh, 1)
	if got := eix.BestPerLevel(m, 1); len(got) != 1 || got[0].Node != hierarchy.Nil {
		t.Errorf("empty per-level = %+v", got)
	}
}
