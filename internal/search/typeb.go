package search

import (
	"context"

	"hcd/internal/faultinject"
	"hcd/internal/metrics"
	"hcd/internal/obs"
	"hcd/internal/par"
	"hcd/internal/treeaccum"
)

// PrimaryB computes, for every tree node, the Type B primary values —
// Δ(S) triangles and t(S) triplets — of the node's original k-core
// (Algorithm 5), alongside the Type A values (so any metric mixing the two
// still works).
//
// Counting is vertex-centric and rank-unique: a motif joins exactly the
// k-cores containing its lowest-vertex-rank endpoint (any other endpoint
// is adjacent to it with coreness at least as high, so membership is
// equivalent), and is therefore charged once, to that endpoint's tree
// node.
//
//   - Triangles: edges are oriented from lower to higher degree (ties by
//     id); for each oriented edge (u→v) the common neighbors w of u and v
//     are enumerated from N(u), and (u,v,w) is counted iff w has the lowest
//     rank of the three — Σ min(d(u),d(v)) = O(m^1.5) work.
//   - Triplets centered at v: C(gt,2) of them have both endpoints at
//     coreness >= c(v) and are charged to v's node; for each lower level k
//     with cnt_k neighbors in Hk, C(cnt_k,2) + gt_k·cnt_k triplets join at
//     level k and are charged to any Hk-neighbor's node (they all share
//     it, being connected through v in G[c >= k]) — O(m) work. With a
//     layout, the per-level counts are read off the shallower segment's
//     coreness runs directly; without one they are bucketed into scratch
//     arrays.
//
// Each thread accumulates into a private copy of the node table and the
// copies are folded afterwards — no atomic traffic on hot nodes, and the
// totals are exact sums, so the result is deterministic. Bottom-up
// accumulation then yields per-core totals. Total work O(m^1.5), matching
// the best sequential bound for triangle counting: work-efficient.
func (ix *Index) PrimaryB(threads int) []metrics.PrimaryValues {
	out, err := ix.PrimaryBCtx(context.Background(), threads)
	if err != nil {
		panic(err)
	}
	return out
}

// PrimaryBCtx is PrimaryB with failure containment: worker panics surface
// as a *par.PanicError, and a cancelled ctx aborts the counting loop
// within a thread's vertex range (polled every 1024 vertices — Type B is
// the longest-running kernel, so it cannot wait for a chunk boundary).
func (ix *Index) PrimaryBCtx(ctx context.Context, threads int) ([]metrics.PrimaryValues, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defer obs.StartSpanCtx(ctx, "search.typeb").End()
	g, h := ix.g, ix.h
	n := g.NumVertices()
	nn := h.NumNodes()
	p := par.Threads(threads)

	// Split vertices into p contiguous ranges of roughly equal adjacency
	// volume, so degree skew does not starve threads.
	bounds := ix.edgeBalancedBounds(p)

	locals := make([][]int64, p)
	err := par.ForErr(ctx, p, p, func(tlo, thi int) error {
		faultinject.Maybe("search.typeb")
		for t := tlo; t < thi; t++ {
			lo, hi := bounds[t], bounds[t+1]
			// Per-thread scratch and output table.
			local := make([]int64, nn*2) // rows: [triangles, triplets]
			mark := make([]int32, n)     // mark[w] == v+1  <=>  w in N(v)
			var cnt, rep []int32
			if ix.lay == nil {
				cnt = make([]int32, ix.kmax+1)
				rep = make([]int32, ix.kmax+1)
			}
			for v := lo; v < hi; v++ {
				if (v-lo)&1023 == 1023 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				ix.countVertex(int32(v), mark, cnt, rep, local)
			}
			locals[t] = local
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	vals := make([]int64, nn*2)
	err = par.ForEachErr(ctx, nn*2, p, func(j int) error {
		var s int64
		for t := 0; t < p; t++ {
			s += locals[t][j]
		}
		vals[j] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := treeaccum.AccumulateCtx(ctx, h, vals, 2, threads); err != nil {
		return nil, err
	}

	a, err := ix.PrimaryACtx(ctx, threads)
	if err != nil {
		return nil, err
	}
	out := make([]metrics.PrimaryValues, nn)
	err = par.ForEachErr(ctx, nn, threads, func(i int) error {
		out[i] = a[i]
		out[i].Triangles = vals[i*2]
		out[i].Triplets = vals[i*2+1]
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// countVertex adds vertex v's triangle and triplet contributions to vals,
// a table private to the calling thread (plain writes).
func (ix *Index) countVertex(v int32, mark, cnt, rep []int32, vals []int64) {
	g, core, h := ix.g, ix.core, ix.h
	dv := int32(g.Degree(v))

	// --- Triangles (Algorithm 5 lines 2-7) ---
	for _, u := range g.Neighbors(v) {
		mark[u] = v + 1
	}
	for _, u := range g.Neighbors(v) {
		du := int32(g.Degree(u))
		if du < dv || (du == dv && u < v) {
			for _, w := range g.Neighbors(u) {
				if mark[w] == v+1 && ix.rankLess(w, u) && ix.rankLess(w, v) {
					vals[int(h.TID[w])*2]++
				}
			}
		}
	}

	// --- Triplets centered at v (Algorithm 5 lines 8-15) ---
	// gt = |{u in N(v) : c(u) >= c(v)}| via the preprocessing.
	gt := int64(ix.gtK[v]) + int64(ix.eqK[v])
	vals[int(h.TID[v])*2+1] += gt * (gt - 1) / 2

	if ix.lay != nil {
		// The layout's shallower segment is already grouped by coreness in
		// descending order — exactly the level order the charging loop
		// needs — so each level is one contiguous run: no scratch arrays,
		// no O(kmax) sweep, just a walk over the d_lt(v) entries.
		sh := ix.lay.Shallower(v)
		for i := 0; i < len(sh); {
			c := core[sh[i]]
			j := i + 1
			for j < len(sh) && core[sh[j]] == c {
				j++
			}
			cc := int64(j - i)
			vals[int(h.TID[sh[i]])*2+1] += cc*(cc-1)/2 + gt*cc
			gt += cc
			i = j
		}
		return
	}

	cv := core[v]
	touched := false
	for _, u := range g.Neighbors(v) {
		if core[u] < cv {
			cnt[core[u]]++
			rep[core[u]] = u
			touched = true
		}
	}
	if touched {
		for k := cv - 1; k >= 0; k-- {
			if c := int64(cnt[k]); c > 0 {
				w := rep[k]
				vals[int(h.TID[w])*2+1] += c*(c-1)/2 + gt*c
				gt += c
				cnt[k] = 0
			}
		}
	}
}

// edgeBalancedBounds splits [0, n) into p contiguous vertex ranges with
// approximately equal total degree.
func (ix *Index) edgeBalancedBounds(p int) []int {
	n := ix.g.NumVertices()
	bounds := make([]int, p+1)
	total := 2 * ix.g.NumEdges()
	if n == 0 || total == 0 {
		for t := 0; t <= p; t++ {
			bounds[t] = t * n / p
		}
		return bounds
	}
	target := total / int64(p)
	var acc int64
	t := 1
	for v := 0; v < n && t < p; v++ {
		acc += int64(ix.g.Degree(int32(v)))
		if acc >= int64(t)*target {
			bounds[t] = v + 1
			t++
		}
	}
	for ; t < p; t++ {
		bounds[t] = n
	}
	bounds[p] = n
	return bounds
}
