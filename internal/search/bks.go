package search

import (
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/metrics"
	"hcd/internal/treeaccum"
)

// BKS is the serial subgraph-search baseline [10] the paper measures PBKS
// against. Its two defining traits, reproduced here, are exactly the ones
// §IV-A identifies as obstacles to parallelism:
//
//  1. a "vertex ordering" preprocessing that bin-sorts every adjacency
//     list by descending coreness, so the neighbors with coreness >= k
//     always form a prefix; and
//  2. score computation that walks coreness levels strictly downward,
//     each level's state building on the levels above it (a built-in
//     barrier per level).
type BKS struct {
	g    *graph.Graph
	core []int32
	h    *hierarchy.HCD
	kmax int32
	// Coreness-sorted adjacency in CSR form: for every v the neighbors
	// appear in descending coreness (ties ascending id).
	offsets []int64
	adj     []int32
}

// NewBKS builds the baseline's search state, including the bin-sort
// vertex-ordering preprocessing (O(n + m), serial).
func NewBKS(g *graph.Graph, core []int32, h *hierarchy.HCD) *BKS {
	n := g.NumVertices()
	b := &BKS{
		g:       g,
		core:    core,
		h:       h,
		offsets: make([]int64, n+1),
		adj:     make([]int32, 2*g.NumEdges()),
	}
	for _, c := range core {
		if c > b.kmax {
			b.kmax = c
		}
	}
	for v := 0; v < n; v++ {
		b.offsets[v+1] = b.offsets[v] + int64(g.Degree(int32(v)))
	}
	// Global bin sort: shells are appended in descending coreness, ids
	// ascending within a shell, each vertex pushed onto all its neighbors'
	// lists — one O(n + m) distribution pass.
	shells := make([][]int32, b.kmax+1)
	for v := int32(0); v < int32(n); v++ {
		shells[core[v]] = append(shells[core[v]], v)
	}
	cursor := make([]int64, n)
	copy(cursor, b.offsets[:n])
	for k := b.kmax; k >= 0; k-- {
		for _, u := range shells[k] {
			for _, v := range g.Neighbors(u) {
				b.adj[cursor[v]] = u
				cursor[v]++
			}
		}
	}
	return b
}

// sorted returns v's adjacency list ordered by descending coreness.
func (b *BKS) sorted(v int32) []int32 {
	return b.adj[b.offsets[v]:b.offsets[v+1]]
}

// Search runs the serial baseline for the given metric and returns the
// best k-core. Results are identical to PBKS (both compute exact primary
// values); only the execution strategy differs.
func (b *BKS) Search(m metrics.Metric) Result {
	nn := b.h.NumNodes()
	if nn == 0 {
		return Result{Node: hierarchy.Nil}
	}
	var vals []metrics.PrimaryValues
	if m.Kind() == metrics.TypeA {
		vals = b.primaryA()
	} else {
		vals = b.primaryB()
	}
	stats := metrics.GraphStats{N: int64(b.g.NumVertices()), M: b.g.NumEdges()}
	scores := make([]float64, nn)
	bestNode := hierarchy.NodeID(0)
	for i := 0; i < nn; i++ {
		scores[i] = m.Score(vals[i], stats)
		if scores[i] > scores[bestNode] {
			bestNode = hierarchy.NodeID(i)
		}
	}
	return Result{
		Node:   bestNode,
		K:      b.h.K[bestNode],
		Score:  scores[bestNode],
		Values: vals[bestNode],
		Scores: scores,
	}
}

// shellsDescending yields the k-shells from kmax down to 0 — the level
// loop every BKS computation is built around.
func (b *BKS) shellsDescending() [][]int32 {
	shells := make([][]int32, b.kmax+1)
	for v := int32(0); v < int32(b.g.NumVertices()); v++ {
		shells[b.core[v]] = append(shells[b.core[v]], v)
	}
	return shells
}

// primaryA computes the Type A primary values serially: levels descend
// from kmax, and within each level the sorted adjacency lists provide
// gt/eq as prefix scans.
func (b *BKS) primaryA() []metrics.PrimaryValues {
	nn := b.h.NumNodes()
	vals := make([]int64, nn*3)
	shells := b.shellsDescending()
	for k := b.kmax; k >= 0; k-- {
		for _, v := range shells[k] {
			var gt, eq int64
			list := b.sorted(v)
			i := 0
			for ; i < len(list) && b.core[list[i]] > k; i++ {
				gt++
			}
			for ; i < len(list) && b.core[list[i]] == k; i++ {
				eq++
			}
			lt := int64(len(list)) - gt - eq
			row := int(b.h.TID[v]) * 3
			vals[row]++
			vals[row+1] += 2*gt + eq
			vals[row+2] += lt - gt
		}
	}
	treeaccum.AccumulateSerial(b.h, vals, 3)
	out := make([]metrics.PrimaryValues, nn)
	for i := range out {
		out[i] = metrics.PrimaryValues{N: vals[i*3], M: vals[i*3+1] / 2, B: vals[i*3+2]}
	}
	return out
}

// primaryB computes triangles and triplets serially with the same
// rank-unique charging as PBKS, but walking shells in descending coreness
// and exploiting the coreness-sorted lists for the triplet level runs.
func (b *BKS) primaryB() []metrics.PrimaryValues {
	n := b.g.NumVertices()
	nn := b.h.NumNodes()
	vals := make([]int64, nn*2)
	mark := make([]int32, n)
	shells := b.shellsDescending()
	rankLess := func(a, c int32) bool {
		return b.core[a] < b.core[c] || (b.core[a] == b.core[c] && a < c)
	}
	for k := b.kmax; k >= 0; k-- {
		for _, v := range shells[k] {
			dv := int32(b.g.Degree(v))
			// Triangles charged to their lowest-rank endpoint.
			for _, u := range b.g.Neighbors(v) {
				mark[u] = v + 1
			}
			for _, u := range b.g.Neighbors(v) {
				du := int32(b.g.Degree(u))
				if du < dv || (du == dv && u < v) {
					for _, w := range b.g.Neighbors(u) {
						if mark[w] == v+1 && rankLess(w, u) && rankLess(w, v) {
							vals[int(b.h.TID[w])*2]++
						}
					}
				}
			}
			// Triplets centered at v: the sorted list's coreness runs give
			// the per-level neighbor counts directly.
			list := b.sorted(v)
			i := 0
			var gt int64
			for ; i < len(list) && b.core[list[i]] >= k; i++ {
				gt++
			}
			vals[int(b.h.TID[v])*2+1] += gt * (gt - 1) / 2
			for i < len(list) {
				lvl := b.core[list[i]]
				w := list[i]
				var cnt int64
				for ; i < len(list) && b.core[list[i]] == lvl; i++ {
					cnt++
				}
				vals[int(b.h.TID[w])*2+1] += cnt*(cnt-1)/2 + gt*cnt
				gt += cnt
			}
		}
	}
	treeaccum.AccumulateSerial(b.h, vals, 2)
	a := b.primaryA()
	out := make([]metrics.PrimaryValues, nn)
	for i := range out {
		out[i] = a[i]
		out[i].Triangles = vals[i*2]
		out[i].Triplets = vals[i*2+1]
	}
	return out
}
