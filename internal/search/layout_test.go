package search

import (
	"math/rand"
	"reflect"
	"testing"

	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/metrics"
	"hcd/internal/shellidx"
)

func layoutFor(g *graph.Graph, core []int32) *shellidx.Layout {
	r := coredecomp.RankVertices(core, 0)
	return shellidx.Build(g, core, r, 0)
}

// A layout-backed index must produce exactly the primaries of the plain
// index — the layout only changes how the counts are reached.
func TestPrimariesWithLayoutMatchPlain(t *testing.T) {
	for name, g := range testGraphs() {
		core, h := setup(g)
		lay := layoutFor(g, core)
		plain := NewIndex(g, core, h, 3)
		wantA := plain.PrimaryA(3)
		wantB := plain.PrimaryB(3)
		for _, threads := range []int{1, 2, 6} {
			ix := NewIndexWithLayout(g, core, h, lay, threads)
			if got := ix.PrimaryA(threads); !reflect.DeepEqual(got, wantA) {
				t.Errorf("%s threads=%d: PrimaryA with layout differs", name, threads)
			}
			if got := ix.PrimaryB(threads); !reflect.DeepEqual(got, wantB) {
				t.Errorf("%s threads=%d: PrimaryB with layout differs", name, threads)
			}
		}
	}
}

func TestSearchWithLayoutMatchesPlain(t *testing.T) {
	for name, g := range testGraphs() {
		core, h := setup(g)
		if h.NumNodes() == 0 {
			continue
		}
		lay := layoutFor(g, core)
		plain := NewIndex(g, core, h, 2)
		ix := NewIndexWithLayout(g, core, h, lay, 2)
		for _, m := range metrics.All() {
			rp := plain.Search(m, 2)
			rl := ix.Search(m, 2)
			if rp.Node != rl.Node || rp.Score != rl.Score || !reflect.DeepEqual(rp.Scores, rl.Scores) {
				t.Errorf("%s %s: layout search differs (node %d/%d score %v/%v)",
					name, m.Name(), rp.Node, rl.Node, rp.Score, rl.Score)
			}
		}
		ma := metrics.AverageDegree{}
		pk, ps, pss := plain.BestKSet(ma, 2)
		lk, ls, lss := ix.BestKSet(ma, 2)
		if pk != lk || ps != ls || !reflect.DeepEqual(pss, lss) {
			t.Errorf("%s: BestKSet with layout differs", name)
		}
	}
}

// The per-thread-buffer accumulation must make the primaries exact sums:
// identical across thread counts and repeated runs (the atomic version was
// value-deterministic too, but this pins the contract for the rewrite).
func TestPrimariesDeterministicAcrossThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 300
	edges := make([]graph.Edge, 4*n)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
	}
	g := graph.MustFromEdges(n, edges)
	core, h := setup(g)
	lay := layoutFor(g, core)
	for _, lays := range []*shellidx.Layout{nil, lay} {
		ix := NewIndexWithLayout(g, core, h, lays, 0)
		refA := ix.PrimaryA(1)
		refB := ix.PrimaryB(1)
		for _, threads := range []int{2, 5, 8, 2} {
			if got := ix.PrimaryA(threads); !reflect.DeepEqual(got, refA) {
				t.Fatalf("layout=%v threads=%d: PrimaryA not deterministic", lays != nil, threads)
			}
			if got := ix.PrimaryB(threads); !reflect.DeepEqual(got, refB) {
				t.Fatalf("layout=%v threads=%d: PrimaryB not deterministic", lays != nil, threads)
			}
		}
	}
}

func TestPrimaryBWithLayoutMatchesBruteForce(t *testing.T) {
	for name, g := range testGraphs() {
		core, h := setup(g)
		lay := layoutFor(g, core)
		want := brutePrimary(g, h)
		ix := NewIndexWithLayout(g, core, h, lay, 4)
		got := ix.PrimaryB(4)
		for i := range want {
			if !pvEqual(got[i], want[i], true) {
				t.Errorf("%s node %d: PrimaryB %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}
}

func BenchmarkPBKSTypeBWithLayout(b *testing.B) {
	g := gen.BarabasiAlbert(5000, 8, 1)
	core := coredecomp.Serial(g)
	h := hierarchy.BruteForce(g, core)
	lay := layoutFor(g, core)
	ix := NewIndexWithLayout(g, core, h, lay, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(metrics.ClusteringCoefficient{}, 0)
	}
}
