// Package metrics defines the community scoring metrics of §II-D and the
// primary values they are computed from. Any metric expressible over the
// five primary values — n(S), m(S), b(S), Δ(S), t(S) — plugs into both the
// serial BKS and the parallel PBKS search by implementing Metric; the six
// metrics studied in the paper are provided.
//
// Metrics are split by computational class exactly as in the paper:
// Type A metrics need only n, m and b (computable in O(n) work on the
// hierarchy after preprocessing); Type B metrics need the higher-order
// motif counts Δ (triangles) and t (triplets), costing O(m^1.5) work.
package metrics

import (
	"fmt"
	"strings"
)

// PrimaryValues are the §II-D primary values of one subgraph S.
// For Type A metrics only N, M, B are populated; for Type B metrics only
// Triangles and Triplets are guaranteed (the search fills in what the
// metric's kind requires).
type PrimaryValues struct {
	N         int64 // n(S): number of vertices
	M         int64 // m(S): number of edges
	B         int64 // b(S): number of boundary edges
	Triangles int64 // Δ(S): number of triangles
	Triplets  int64 // t(S): number of connected triples (paths of length 2)
}

// GraphStats carries the whole-graph quantities some metrics normalise by.
type GraphStats struct {
	N int64 // number of vertices in G
	M int64 // number of edges in G
}

// Kind is the metric's computational class.
type Kind int

const (
	// TypeA metrics depend on n(S), m(S), b(S) only.
	TypeA Kind = iota
	// TypeB metrics additionally depend on Δ(S) and/or t(S).
	TypeB
)

func (k Kind) String() string {
	if k == TypeB {
		return "type-B"
	}
	return "type-A"
}

// Metric scores a subgraph from its primary values; higher is better
// (every §II-D metric is normalised that way in the paper).
type Metric interface {
	// Name is the metric's identifier (lower-case, hyphenated).
	Name() string
	// Kind reports which primary values the metric needs.
	Kind() Kind
	// Score computes the community score of a subgraph with primary
	// values pv inside a graph with stats g.
	Score(pv PrimaryValues, g GraphStats) float64
}

// AverageDegree is f(S) = 2·m(S)/n(S), the metric behind approximate
// densest-subgraph search (PBKS-D).
type AverageDegree struct{}

func (AverageDegree) Name() string { return "average-degree" }
func (AverageDegree) Kind() Kind   { return TypeA }
func (AverageDegree) Score(pv PrimaryValues, _ GraphStats) float64 {
	if pv.N == 0 {
		return 0
	}
	return 2 * float64(pv.M) / float64(pv.N)
}

// InternalDensity is f(S) = 2·m(S)/(n(S)·(n(S)−1)).
type InternalDensity struct{}

func (InternalDensity) Name() string { return "internal-density" }
func (InternalDensity) Kind() Kind   { return TypeA }
func (InternalDensity) Score(pv PrimaryValues, _ GraphStats) float64 {
	if pv.N < 2 {
		return 0
	}
	return 2 * float64(pv.M) / (float64(pv.N) * float64(pv.N-1))
}

// CutRatio is f(S) = 1 − b(S)/(n(S)·(n−n(S))).
type CutRatio struct{}

func (CutRatio) Name() string { return "cut-ratio" }
func (CutRatio) Kind() Kind   { return TypeA }
func (CutRatio) Score(pv PrimaryValues, g GraphStats) float64 {
	den := float64(pv.N) * float64(g.N-pv.N)
	if den == 0 {
		return 1 // no possible boundary edge
	}
	return 1 - float64(pv.B)/den
}

// Conductance is f(S) = 1 − b(S)/(2·m(S)+b(S)).
type Conductance struct{}

func (Conductance) Name() string { return "conductance" }
func (Conductance) Kind() Kind   { return TypeA }
func (Conductance) Score(pv PrimaryValues, _ GraphStats) float64 {
	den := 2*float64(pv.M) + float64(pv.B)
	if den == 0 {
		return 0
	}
	return 1 - float64(pv.B)/den
}

// Modularity scores S by its contribution to Newman-Girvan modularity when
// S is taken as one community: m(S)/m − ((2·m(S)+b(S))/(2·m))².
type Modularity struct{}

func (Modularity) Name() string { return "modularity" }
func (Modularity) Kind() Kind   { return TypeA }
func (Modularity) Score(pv PrimaryValues, g GraphStats) float64 {
	if g.M == 0 {
		return 0
	}
	frac := (2*float64(pv.M) + float64(pv.B)) / (2 * float64(g.M))
	return float64(pv.M)/float64(g.M) - frac*frac
}

// ClusteringCoefficient is f(S) = 3·Δ(S)/t(S), the global clustering
// coefficient (transitivity) of S — the paper's representative Type B
// metric.
type ClusteringCoefficient struct{}

func (ClusteringCoefficient) Name() string { return "clustering-coefficient" }
func (ClusteringCoefficient) Kind() Kind   { return TypeB }
func (ClusteringCoefficient) Score(pv PrimaryValues, _ GraphStats) float64 {
	if pv.Triplets == 0 {
		return 0
	}
	return 3 * float64(pv.Triangles) / float64(pv.Triplets)
}

// NormalizedCut scores S by 1 − ncut(S)/2, where ncut is the two-sided
// normalized cut b/(2m(S)+b) + b/(2(m−m(S)−b)+b) of Shi-Malik; the /2
// scaling keeps the result in [0, 1] with higher better, matching the
// paper's normalisation convention.
type NormalizedCut struct{}

func (NormalizedCut) Name() string { return "normalized-cut" }
func (NormalizedCut) Kind() Kind   { return TypeA }
func (NormalizedCut) Score(pv PrimaryValues, g GraphStats) float64 {
	inside := 2*float64(pv.M) + float64(pv.B)
	outside := 2*float64(g.M-pv.M-pv.B) + float64(pv.B)
	var ncut float64
	if inside > 0 {
		ncut += float64(pv.B) / inside
	}
	if outside > 0 {
		ncut += float64(pv.B) / outside
	}
	return 1 - ncut/2
}

// TriangleDensity is f(S) = Δ(S)/C(n(S), 3): the fraction of vertex
// triples that close into triangles — a Type B density analogue of
// internal density.
type TriangleDensity struct{}

func (TriangleDensity) Name() string { return "triangle-density" }
func (TriangleDensity) Kind() Kind   { return TypeB }
func (TriangleDensity) Score(pv PrimaryValues, _ GraphStats) float64 {
	if pv.N < 3 {
		return 0
	}
	triples := float64(pv.N) * float64(pv.N-1) * float64(pv.N-2) / 6
	return float64(pv.Triangles) / triples
}

// All returns one instance of every built-in metric, Type A first.
func All() []Metric {
	return []Metric{
		AverageDegree{},
		InternalDensity{},
		CutRatio{},
		Conductance{},
		Modularity{},
		NormalizedCut{},
		ClusteringCoefficient{},
		TriangleDensity{},
	}
}

// ByName resolves a metric by its Name. It returns an error listing the
// known names when the metric does not exist.
func ByName(name string) (Metric, error) {
	var known []string
	for _, m := range All() {
		if m.Name() == name {
			return m, nil
		}
		known = append(known, m.Name())
	}
	return nil, fmt.Errorf("metrics: unknown metric %q (known: %s)", name, strings.Join(known, ", "))
}

// Weighted assembles a new metric as a non-negative linear combination of
// existing ones — §VI's "new or assembled community scoring metrics"
// extension point. Its Kind is the strongest requirement among its terms
// (TypeB if any term needs motif counts).
type Weighted struct {
	// Terms are the combined metrics with their coefficients.
	Terms []WeightedTerm
	// Label is the assembled metric's Name (defaults to "weighted").
	Label string
}

// WeightedTerm is one component of a Weighted metric.
type WeightedTerm struct {
	Metric Metric
	Coeff  float64
}

func (w Weighted) Name() string {
	if w.Label != "" {
		return w.Label
	}
	return "weighted"
}

func (w Weighted) Kind() Kind {
	for _, t := range w.Terms {
		if t.Metric.Kind() == TypeB {
			return TypeB
		}
	}
	return TypeA
}

func (w Weighted) Score(pv PrimaryValues, g GraphStats) float64 {
	s := 0.0
	for _, t := range w.Terms {
		s += t.Coeff * t.Metric.Score(pv, g)
	}
	return s
}
