package metrics

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestAverageDegree(t *testing.T) {
	m := AverageDegree{}
	if got := m.Score(PrimaryValues{N: 6, M: 12}, GraphStats{}); !almost(got, 4) {
		t.Errorf("octahedron avg degree = %v, want 4", got)
	}
	if got := m.Score(PrimaryValues{N: 9, M: 20}, GraphStats{}); !almost(got, 40.0/9) {
		t.Errorf("got %v, want 40/9", got)
	}
	if m.Score(PrimaryValues{}, GraphStats{}) != 0 {
		t.Error("empty subgraph should score 0")
	}
	if m.Kind() != TypeA || m.Name() != "average-degree" {
		t.Error("metadata wrong")
	}
}

func TestInternalDensity(t *testing.T) {
	m := InternalDensity{}
	// A clique has density 1.
	if got := m.Score(PrimaryValues{N: 5, M: 10}, GraphStats{}); !almost(got, 1) {
		t.Errorf("K5 density = %v", got)
	}
	if m.Score(PrimaryValues{N: 1}, GraphStats{}) != 0 {
		t.Error("singleton density must be 0, not NaN")
	}
}

func TestCutRatio(t *testing.T) {
	m := CutRatio{}
	// 3 boundary edges, |S|=4, n=10: 1 - 3/(4*6) = 0.875.
	if got := m.Score(PrimaryValues{N: 4, B: 3}, GraphStats{N: 10}); !almost(got, 0.875) {
		t.Errorf("cut ratio = %v", got)
	}
	// S == V: no possible boundary edge.
	if got := m.Score(PrimaryValues{N: 10, B: 0}, GraphStats{N: 10}); !almost(got, 1) {
		t.Errorf("whole-graph cut ratio = %v, want 1", got)
	}
}

func TestConductance(t *testing.T) {
	m := Conductance{}
	if got := m.Score(PrimaryValues{M: 10, B: 5}, GraphStats{}); !almost(got, 1-5.0/25) {
		t.Errorf("conductance = %v", got)
	}
	if m.Score(PrimaryValues{}, GraphStats{}) != 0 {
		t.Error("degenerate conductance must be 0")
	}
}

func TestModularity(t *testing.T) {
	m := Modularity{}
	// One community holding all edges: 1 - 1 = 0.
	if got := m.Score(PrimaryValues{M: 20, B: 0}, GraphStats{M: 20}); !almost(got, 0) {
		t.Errorf("full-graph modularity = %v, want 0", got)
	}
	// Half the edges, no boundary: 0.5 - 0.25 = 0.25.
	if got := m.Score(PrimaryValues{M: 10, B: 0}, GraphStats{M: 20}); !almost(got, 0.25) {
		t.Errorf("modularity = %v, want 0.25", got)
	}
	if m.Score(PrimaryValues{M: 1}, GraphStats{M: 0}) != 0 {
		t.Error("empty graph modularity must be 0")
	}
}

func TestClusteringCoefficient(t *testing.T) {
	m := ClusteringCoefficient{}
	// Triangle: 1 triangle, 3 triplets -> 1.
	if got := m.Score(PrimaryValues{Triangles: 1, Triplets: 3}, GraphStats{}); !almost(got, 1) {
		t.Errorf("triangle CC = %v", got)
	}
	// Path of 3: 0 triangles, 1 triplet -> 0.
	if got := m.Score(PrimaryValues{Triplets: 1}, GraphStats{}); !almost(got, 0) {
		t.Errorf("path CC = %v", got)
	}
	if m.Score(PrimaryValues{Triangles: 5}, GraphStats{}) != 0 {
		t.Error("zero triplets must score 0, not Inf")
	}
	if m.Kind() != TypeB {
		t.Error("clustering coefficient is Type B")
	}
}

func TestAllAndByName(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("All() has %d metrics, want 8", len(all))
	}
	for _, m := range all {
		got, err := ByName(m.Name())
		if err != nil {
			t.Errorf("ByName(%q): %v", m.Name(), err)
		}
		if got.Name() != m.Name() {
			t.Errorf("ByName(%q) returned %q", m.Name(), got.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown metric accepted")
	}
	if TypeA.String() == TypeB.String() {
		t.Error("kind strings must differ")
	}
}

func TestNormalizedCut(t *testing.T) {
	m := NormalizedCut{}
	// Isolated community (no boundary): perfect score 1.
	if got := m.Score(PrimaryValues{M: 10, B: 0}, GraphStats{M: 30}); !almost(got, 1) {
		t.Errorf("no-boundary normalized cut = %v, want 1", got)
	}
	// Symmetric split: m(S)=5, b=4, M=14 -> inside=14, outside=14:
	// ncut = 4/14 + 4/14; score = 1 - 4/14.
	if got := m.Score(PrimaryValues{M: 5, B: 4}, GraphStats{M: 14}); !almost(got, 1-4.0/14) {
		t.Errorf("normalized cut = %v, want %v", got, 1-4.0/14)
	}
	// Degenerate denominators must not produce NaN.
	if got := m.Score(PrimaryValues{}, GraphStats{}); math.IsNaN(got) {
		t.Error("degenerate normalized cut is NaN")
	}
	if m.Kind() != TypeA {
		t.Error("normalized cut is Type A")
	}
}

func TestTriangleDensity(t *testing.T) {
	m := TriangleDensity{}
	// K4: 4 triangles over C(4,3)=4 triples -> 1.
	if got := m.Score(PrimaryValues{N: 4, Triangles: 4}, GraphStats{}); !almost(got, 1) {
		t.Errorf("K4 triangle density = %v, want 1", got)
	}
	if m.Score(PrimaryValues{N: 2, Triangles: 0}, GraphStats{}) != 0 {
		t.Error("n<3 must score 0")
	}
	if m.Kind() != TypeB {
		t.Error("triangle density is Type B")
	}
}

func TestWeightedMetric(t *testing.T) {
	w := Weighted{
		Terms: []WeightedTerm{
			{Metric: AverageDegree{}, Coeff: 0.5},
			{Metric: Conductance{}, Coeff: 2},
		},
		Label: "degree-and-cohesion",
	}
	if w.Name() != "degree-and-cohesion" {
		t.Errorf("Name = %q", w.Name())
	}
	if w.Kind() != TypeA {
		t.Error("all-TypeA combination must be TypeA")
	}
	pv := PrimaryValues{N: 4, M: 6, B: 2}
	want := 0.5*AverageDegree{}.Score(pv, GraphStats{}) + 2*Conductance{}.Score(pv, GraphStats{})
	if got := w.Score(pv, GraphStats{}); !almost(got, want) {
		t.Errorf("Score = %v, want %v", got, want)
	}
	// A TypeB term upgrades the kind.
	wb := Weighted{Terms: []WeightedTerm{
		{Metric: AverageDegree{}, Coeff: 1},
		{Metric: ClusteringCoefficient{}, Coeff: 1},
	}}
	if wb.Kind() != TypeB || wb.Name() != "weighted" {
		t.Errorf("TypeB upgrade or default name wrong: %v %q", wb.Kind(), wb.Name())
	}
}
