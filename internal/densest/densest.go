// Package densest implements the approximate densest-subgraph application
// of §V-C (Table IV). The densest subgraph maximises the average degree
// 2·m(S)/n(S); finding it exactly needs parametric flow, but the kmax-core
// is a classical 0.5-approximation, and any k-core with a higher average
// degree is therefore also a 0.5-approximation.
//
// Three solvers are provided, mirroring Table IV's columns:
//
//   - PBKSD: the paper's approach — PBKS with the average-degree metric,
//     returning the best k-core over all k (identical output to the serial
//     Opt-D, which is BKS with the same metric).
//   - CoreApp: the k-core-set baseline in the style of Fang et al. [37]:
//     the best average-degree k-core *set* G[{v : c(v) >= k}] over all k.
//     A k-core set is a union of k-cores, so its average degree never
//     exceeds the best single k-core's — CoreApp is also a
//     0.5-approximation, but PBKSD dominates it, as in Table IV.
//   - Peel: Charikar's greedy peeling — remove the minimum-degree vertex
//     repeatedly and keep the densest prefix. The textbook
//     0.5-approximation, included as an extra cross-check baseline.
package densest

import (
	"errors"

	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/metrics"
	"hcd/internal/search"
)

// Solution is one approximate densest subgraph.
type Solution struct {
	// Vertices of the subgraph.
	Vertices []int32
	// AvgDegree is 2·m(S)/n(S) for the subgraph.
	AvgDegree float64
	// K is the coreness level the subgraph came from (-1 for Peel, whose
	// output is not a k-core in general).
	K int32
}

// PBKSD runs PBKS with the average-degree metric and materialises the
// winning k-core. It is the paper's PBKS-D; its output subgraph equals
// Opt-D's (both pick the exact best k-core).
func PBKSD(ix *search.Index, threads int) Solution {
	r := ix.Search(metrics.AverageDegree{}, threads)
	if r.Node == hierarchy.Nil {
		return Solution{K: -1}
	}
	return Solution{
		Vertices:  ix.Hierarchy().CoreVertices(r.Node),
		AvgDegree: r.Score,
		K:         r.K,
	}
}

// OptD runs the serial baseline (BKS with average degree) and materialises
// the winning k-core. Output quality is identical to PBKSD by construction.
func OptD(b *search.BKS, h *hierarchy.HCD) Solution {
	r := b.Search(metrics.AverageDegree{})
	if r.Node == hierarchy.Nil {
		return Solution{K: -1}
	}
	return Solution{
		Vertices:  h.CoreVertices(r.Node),
		AvgDegree: r.Score,
		K:         r.K,
	}
}

// CoreApp returns the best average-degree k-core set: for each k it scores
// G[{v : c(v) >= k}] and returns the winner. O(n + m).
func CoreApp(g *graph.Graph, core []int32) Solution {
	n := g.NumVertices()
	if n == 0 {
		return Solution{K: -1}
	}
	kmax := int32(0)
	for _, c := range core {
		if c > kmax {
			kmax = c
		}
	}
	// nAt[k] = #vertices with coreness k; m2At[k] = twice the number of
	// edges whose lower-coreness endpoint has coreness k.
	nAt := make([]int64, kmax+1)
	m2At := make([]int64, kmax+1)
	for v := int32(0); v < int32(n); v++ {
		nAt[core[v]]++
		for _, u := range g.Neighbors(v) {
			if core[u] > core[v] || (core[u] == core[v] && u > v) {
				m2At[core[v]] += 2
			}
		}
	}
	bestK, bestScore := int32(0), -1.0
	var nS, m2S int64
	for k := kmax; k >= 0; k-- {
		nS += nAt[k]
		m2S += m2At[k]
		if nS == 0 {
			continue
		}
		if s := float64(m2S) / float64(nS); s > bestScore {
			bestK, bestScore = k, s
		}
	}
	var verts []int32
	for v := int32(0); v < int32(n); v++ {
		if core[v] >= bestK {
			verts = append(verts, v)
		}
	}
	return Solution{Vertices: verts, AvgDegree: bestScore, K: bestK}
}

// Peel is Charikar's greedy 0.5-approximation: repeatedly remove a
// minimum-degree vertex and return the intermediate subgraph with the
// highest average degree. O(n + m) with a bucket queue.
func Peel(g *graph.Graph) Solution {
	n := g.NumVertices()
	if n == 0 {
		return Solution{K: -1}
	}
	deg := make([]int32, n)
	md := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(int32(v)))
		if deg[v] > md {
			md = deg[v]
		}
	}
	// Bucket queue over current degrees (same machinery as
	// Batagelj-Zaversnik).
	buckets := make([][]int32, md+1)
	for v := int32(0); v < int32(n); v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	removed := make([]bool, n)
	order := make([]int32, 0, n)
	var edgesLeft = g.NumEdges()
	vertsLeft := int64(n)
	bestScore := 2 * float64(edgesLeft) / float64(vertsLeft)
	bestPrefix := 0 // number of removals giving the best remaining graph
	cur := int32(0)
	for len(order) < n {
		for cur <= md && len(buckets[cur]) == 0 {
			cur++
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] || deg[v] != cur {
			continue // stale entry
		}
		removed[v] = true
		order = append(order, v)
		edgesLeft -= int64(deg[v])
		vertsLeft--
		for _, u := range g.Neighbors(v) {
			if !removed[u] {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
				if deg[u] < cur {
					cur = deg[u]
				}
			}
		}
		if vertsLeft > 0 {
			if s := 2 * float64(edgesLeft) / float64(vertsLeft); s > bestScore {
				bestScore = s
				bestPrefix = len(order)
			}
		}
	}
	inBest := make([]bool, n)
	for v := 0; v < n; v++ {
		inBest[v] = true
	}
	for _, v := range order[:bestPrefix] {
		inBest[v] = false
	}
	var verts []int32
	for v := int32(0); v < int32(n); v++ {
		if inBest[v] {
			verts = append(verts, v)
		}
	}
	return Solution{Vertices: verts, AvgDegree: bestScore, K: -1}
}

// ErrTooLarge is returned by ExactTiny for graphs beyond its enumeration
// limit.
var ErrTooLarge = errors.New("densest: ExactTiny is exponential; graph exceeds 20 vertices")

// ExactTiny computes the exact densest subgraph by subset enumeration.
// It is exponential and returns ErrTooLarge for graphs with more than 20
// vertices; it exists so tests and examples can verify the
// 0.5-approximation bound.
func ExactTiny(g *graph.Graph) (Solution, error) {
	n := g.NumVertices()
	if n == 0 {
		return Solution{K: -1}, nil
	}
	if n > 20 {
		return Solution{K: -1}, ErrTooLarge
	}
	best := Solution{AvgDegree: -1, K: -1}
	for mask := 1; mask < 1<<n; mask++ {
		var nS, mS int64
		for v := 0; v < n; v++ {
			if mask&(1<<v) == 0 {
				continue
			}
			nS++
			for _, u := range g.Neighbors(int32(v)) {
				if int32(v) < u && mask&(1<<u) != 0 {
					mS++
				}
			}
		}
		if s := 2 * float64(mS) / float64(nS); s > best.AvgDegree {
			var verts []int32
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					verts = append(verts, int32(v))
				}
			}
			best = Solution{Vertices: verts, AvgDegree: s, K: -1}
		}
	}
	return best, nil
}
