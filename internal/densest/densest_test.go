package densest

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/search"
)

func avgDegreeOf(g *graph.Graph, verts []int32) float64 {
	in := make(map[int32]bool, len(verts))
	for _, v := range verts {
		in[v] = true
	}
	var m int64
	for _, v := range verts {
		for _, u := range g.Neighbors(v) {
			if v < u && in[u] {
				m++
			}
		}
	}
	return 2 * float64(m) / float64(len(verts))
}

func solveAll(t *testing.T, g *graph.Graph) (Solution, Solution, Solution, Solution) {
	t.Helper()
	core := coredecomp.Serial(g)
	h := hierarchy.BruteForce(g, core)
	ix := search.NewIndex(g, core, h, 2)
	bks := search.NewBKS(g, core, h)
	return PBKSD(ix, 2), OptD(bks, h), CoreApp(g, core), Peel(g)
}

func TestSolversOnPlantedDenseCore(t *testing.T) {
	// ER background with a planted K12: the clique (avg degree 11) should
	// dominate whatever the sparse background offers.
	rng := rand.New(rand.NewSource(5))
	var edges []graph.Edge
	n := 200
	for i := 0; i < 400; i++ {
		edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
	}
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	g := graph.MustFromEdges(n, edges)
	pbksd, optd, coreapp, peel := solveAll(t, g)

	if pbksd.AvgDegree < 10 {
		t.Errorf("PBKSD missed the planted clique: avg degree %v", pbksd.AvgDegree)
	}
	// PBKS-D and Opt-D must agree exactly (same search space).
	if math.Abs(pbksd.AvgDegree-optd.AvgDegree) > 1e-9 || pbksd.K != optd.K {
		t.Errorf("PBKSD (%v, k=%d) != OptD (%v, k=%d)",
			pbksd.AvgDegree, pbksd.K, optd.AvgDegree, optd.K)
	}
	// PBKS-D dominates CoreApp (Table IV shape).
	if coreapp.AvgDegree > pbksd.AvgDegree+1e-9 {
		t.Errorf("CoreApp %v beat PBKSD %v", coreapp.AvgDegree, pbksd.AvgDegree)
	}
	// Reported average degrees must match the actual subgraphs.
	for name, s := range map[string]Solution{"pbksd": pbksd, "coreapp": coreapp, "peel": peel} {
		if got := avgDegreeOf(g, s.Vertices); math.Abs(got-s.AvgDegree) > 1e-9 {
			t.Errorf("%s: reported %v, recomputed %v", name, s.AvgDegree, got)
		}
	}
}

func TestHalfApproximationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(9) // <= 14 vertices: exact enumeration feasible
		m := rng.Intn(3 * n)
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		if g.NumEdges() == 0 {
			continue
		}
		exact, err := ExactTiny(g)
		if err != nil {
			t.Fatalf("ExactTiny on %d vertices: %v", n, err)
		}
		pbksd, _, coreapp, peel := solveAll(t, g)
		for name, s := range map[string]Solution{"pbksd": pbksd, "coreapp": coreapp, "peel": peel} {
			if s.AvgDegree < exact.AvgDegree/2-1e-9 {
				t.Errorf("trial %d %s: %v violates 0.5-approx of exact %v",
					trial, name, s.AvgDegree, exact.AvgDegree)
			}
		}
		// PBKSD >= CoreApp always.
		if coreapp.AvgDegree > pbksd.AvgDegree+1e-9 {
			t.Errorf("trial %d: CoreApp %v beat PBKSD %v", trial, coreapp.AvgDegree, pbksd.AvgDegree)
		}
	}
}

func TestPeelExactOnClique(t *testing.T) {
	var edges []graph.Edge
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	g := graph.MustFromEdges(8, edges)
	p := Peel(g)
	if math.Abs(p.AvgDegree-7) > 1e-9 || len(p.Vertices) != 8 {
		t.Errorf("Peel on K8 = %v (%d verts), want 7 (8 verts)", p.AvgDegree, len(p.Vertices))
	}
}

func TestEmptyGraphs(t *testing.T) {
	g := graph.MustFromEdges(0, nil)
	if s := CoreApp(g, nil); s.K != -1 {
		t.Error("CoreApp on empty graph should signal no solution")
	}
	if s := Peel(g); s.K != -1 {
		t.Error("Peel on empty graph should signal no solution")
	}
	core := coredecomp.Serial(g)
	h := hierarchy.BruteForce(g, core)
	ix := search.NewIndex(g, core, h, 1)
	if s := PBKSD(ix, 1); s.Vertices != nil {
		t.Error("PBKSD on empty graph should return no vertices")
	}
}

func TestExactTinyRefusesLarge(t *testing.T) {
	if _, err := ExactTiny(gen.ErdosRenyi(30, 60, 1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("ExactTiny on 30 vertices: err = %v, want ErrTooLarge", err)
	}
}

func BenchmarkPBKSD(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 8, 1)
	core := coredecomp.Serial(g)
	h := hierarchy.BruteForce(g, core)
	ix := search.NewIndex(g, core, h, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PBKSD(ix, 0)
	}
}

func BenchmarkCoreApp(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 8, 1)
	core := coredecomp.Serial(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CoreApp(g, core)
	}
}
