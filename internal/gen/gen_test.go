package gen

import (
	"testing"
)

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(100, 500, 42)
	b := ErdosRenyi(100, 500, 42)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Error("same seed must give the same graph")
	}
	c := ErdosRenyi(100, 500, 43)
	if a.NumEdges() == c.NumEdges() && sameAdj(a, c) {
		t.Error("different seeds should give different graphs")
	}
	if a.NumVertices() != 100 {
		t.Errorf("n = %d, want 100", a.NumVertices())
	}
	if a.NumEdges() > 500 || a.NumEdges() < 400 {
		t.Errorf("m = %d, want close to but at most 500", a.NumEdges())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 4, 7)
	if g.NumVertices() != 500 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Every vertex past the seed clique attaches with k draws, so min
	// degree is >= 1 and the graph is connected.
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Errorf("BA graph should be connected, got %d components", count)
	}
	// Power-law-ish: max degree must far exceed average.
	if float64(g.MaxDegree()) < 3*g.AvgDegree() {
		t.Errorf("max degree %d vs avg %.1f: not skewed", g.MaxDegree(), g.AvgDegree())
	}
}

func TestBarabasiAlbertSmallN(t *testing.T) {
	g := BarabasiAlbert(2, 4, 1) // n < k+1 gets bumped to the seed clique
	if g.NumVertices() != 5 {
		t.Errorf("n = %d, want 5 (clique on k+1)", g.NumVertices())
	}
	if g.NumEdges() != 10 {
		t.Errorf("m = %d, want C(5,2)=10", g.NumEdges())
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 5000, 3)
	if g.NumVertices() != 1024 {
		t.Fatalf("n = %d, want 1024", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 5000 {
		t.Errorf("m = %d", g.NumEdges())
	}
	if float64(g.MaxDegree()) < 2*g.AvgDegree() {
		t.Errorf("RMAT should be skewed: max %d avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestOnionConnectedAndLayered(t *testing.T) {
	g := Onion(5, 30, 2, 3, 2, 11)
	if g.NumVertices() != 5*30*2 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Errorf("onion should be connected, got %d components", count)
	}
}

func TestPlantedPartition(t *testing.T) {
	g := PlantedPartition(4, 50, 0.3, 0.001, 9)
	if g.NumVertices() != 200 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Intra-community density must dominate: count edges within community 0.
	intra, inter := 0, 0
	g.Edges(func(u, v int32) {
		if int(u)/50 == int(v)/50 {
			intra++
		} else {
			inter++
		}
	})
	if intra <= 5*inter {
		t.Errorf("intra=%d inter=%d: communities not dense enough", intra, inter)
	}
}

func TestSuiteShapes(t *testing.T) {
	suite := Suite(1)
	if len(suite) != 10 {
		t.Fatalf("suite has %d datasets, want 10", len(suite))
	}
	seen := map[string]bool{}
	for _, d := range suite {
		if seen[d.Abbrev] {
			t.Errorf("duplicate abbreviation %s", d.Abbrev)
		}
		seen[d.Abbrev] = true
		g := d.Build()
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", d.Abbrev)
		}
		if g.NumEdges() < int64(g.NumVertices())/4 {
			t.Errorf("%s: too sparse (n=%d m=%d)", d.Abbrev, g.NumVertices(), g.NumEdges())
		}
	}
}

func TestBuildCachedReturnsSameInstance(t *testing.T) {
	d := Suite(1)[0]
	a := BuildCached(d, 1)
	b := BuildCached(d, 1)
	if a != b {
		t.Error("BuildCached must memoise")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for in, want := range cases {
		if got := log2ceil(in); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", in, got, want)
		}
	}
}

func sameAdj(a, b interface {
	NumVertices() int
	Neighbors(int32) []int32
}) bool {
	if a.NumVertices() != b.NumVertices() {
		return false
	}
	for v := int32(0); v < int32(a.NumVertices()); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func TestBarabasiAlbertVarying(t *testing.T) {
	g := BarabasiAlbertVarying(800, 3, 20, 9)
	if g.NumVertices() != 800 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Errorf("varying-BA should be connected, got %d components", count)
	}
	// Degenerate parameters get clamped.
	g2 := BarabasiAlbertVarying(2, 0, 0, 1)
	if g2.NumVertices() != 2 {
		t.Errorf("clamped n = %d, want 2", g2.NumVertices())
	}
	if BarabasiAlbertVarying(10, 5, 3, 1).NumVertices() != 10 {
		t.Error("kmax < kmin must be tolerated")
	}
}
