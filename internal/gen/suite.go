package gen

import (
	"sync"

	"hcd/internal/graph"
)

// Dataset is one entry of the benchmark suite: a named synthetic graph
// standing in for one of the paper's ten real networks.
type Dataset struct {
	// Abbrev is the paper's dataset abbreviation (Table II).
	Abbrev string
	// Name is the full dataset name this graph substitutes for.
	Name string
	// Kind describes the generator family used.
	Kind string
	// Build generates the graph (deterministic).
	Build func() *graph.Graph
}

// Suite returns the ten benchmark datasets, in the paper's Table II order
// (ascending edge count). Each is a deterministic synthetic stand-in whose
// generator family was chosen to mimic the structural regime of the
// original network; see package comment and DESIGN.md.
//
// The scale parameter multiplies the base sizes: scale 1 targets roughly
// 2k-40k edges per graph (unit tests), scale 4 is the benchmark default.
func Suite(scale int) []Dataset {
	if scale < 1 {
		scale = 1
	}
	s := scale
	return []Dataset{
		{"AS", "As-Skitter", "rmat", func() *graph.Graph {
			return RMAT(log2ceil(1500*s), 6000*s, 101)
		}},
		{"LJ", "LiveJournal", "ba-varying", func() *graph.Graph {
			return BarabasiAlbertVarying(2500*s, 3, 24, 102)
		}},
		{"H", "Hollywood", "onion", func() *graph.Graph {
			return Onion(8, 60*s, 3, 4, 2, 103)
		}},
		{"O", "Orkut", "ba-varying", func() *graph.Graph {
			return BarabasiAlbertVarying(2000*s, 5, 40, 104)
		}},
		{"HJ", "Human-Jung", "er-dense", func() *graph.Graph {
			return ErdosRenyi(800*s, 24000*s, 105)
		}},
		{"A", "Arabic-2005", "rmat", func() *graph.Graph {
			return RMAT(log2ceil(3000*s), 18000*s, 106)
		}},
		{"IT", "IT-2004", "rmat", func() *graph.Graph {
			return RMAT(log2ceil(4000*s), 26000*s, 107)
		}},
		{"FS", "FriendSter", "er", func() *graph.Graph {
			return ErdosRenyi(6000*s, 30000*s, 108)
		}},
		{"SK", "SK-2005", "onion", func() *graph.Graph {
			return Onion(10, 50*s, 2, 5, 3, 109)
		}},
		{"UK", "UK-2007-05", "planted", func() *graph.Graph {
			return PlantedPartition(24, 160*s, 0.12, 0.00025, 110)
		}},
	}
}

// cache for BuildCached, keyed by abbreviation+scale.
var (
	cacheMu sync.Mutex
	cache   = map[[2]int]map[string]*graph.Graph{}
)

// BuildCached generates (once) and returns the graph for a dataset at the
// given scale. Benchmarks call this repeatedly; generation cost must not
// pollute measured times.
func BuildCached(d Dataset, scale int) *graph.Graph {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	key := [2]int{scale, 0}
	byName, ok := cache[key]
	if !ok {
		byName = map[string]*graph.Graph{}
		cache[key] = byName
	}
	if g, ok := byName[d.Abbrev]; ok {
		return g
	}
	g := d.Build()
	byName[d.Abbrev] = g
	return g
}

func log2ceil(n int) int {
	s := 0
	for (1 << s) < n {
		s++
	}
	return s
}
