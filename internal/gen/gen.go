// Package gen produces deterministic synthetic graphs that stand in for
// the paper's ten real-world datasets (Table II). The paper evaluates on
// SNAP/LAW/NetworkRepository graphs of up to 3.7 billion edges; those are
// neither redistributable nor laptop-scale, so this package generates
// structurally varied substitutes:
//
//   - Erdős–Rényi G(n, m): flat degree distribution, small kmax, giant
//     component — exercises the "few tree nodes, giant CC" regime the paper
//     observes on FriendSter.
//   - Barabási–Albert preferential attachment: power-law degrees, dense
//     core — the social-network regime (LiveJournal, Orkut).
//   - RMAT/Kronecker: skewed, community-ish — the web-graph regime
//     (Arabic-2005, IT-2004, SK-2005, UK-2007-05).
//   - Onion (planted nested cores): an explicit hierarchy of k-cores with a
//     known deep HCD — stress-tests construction and gives large |T|.
//   - Planted partition: many medium communities — the regime where
//     community metrics (conductance, modularity) differentiate subgraphs.
//
// All generators take an explicit seed and are reproducible run-to-run.
package gen

import (
	"math/rand"

	"hcd/internal/graph"
)

// ErdosRenyi returns a G(n, m)-style random graph: m edge slots sampled
// uniformly (collisions and loops removed by the builder, so the realised
// edge count can be slightly below m).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.MustFromEdges(n, edges)
}

// BarabasiAlbert grows a preferential-attachment graph: starts from a
// (k+1)-clique and attaches each new vertex to k targets chosen with
// probability proportional to current degree (by sampling endpoints of
// already-placed edges).
func BarabasiAlbert(n, k int, seed int64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	if n < k+1 {
		n = k + 1
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, n*k)
	// Seed clique on vertices [0, k].
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
		}
	}
	// endpoints holds every placed edge endpoint; sampling one uniformly
	// is the classic degree-proportional draw.
	endpoints := make([]int32, 0, 2*n*k)
	for _, e := range edges {
		endpoints = append(endpoints, e.U, e.V)
	}
	for v := int32(k + 1); v < int32(n); v++ {
		for j := 0; j < k; j++ {
			t := endpoints[rng.Intn(len(endpoints))]
			if t == v {
				t = int32(rng.Intn(int(v))) // fall back to uniform among existing
			}
			edges = append(edges, graph.Edge{U: v, V: t})
			endpoints = append(endpoints, v, t)
		}
	}
	return graph.MustFromEdges(n, edges)
}

// BarabasiAlbertVarying is BarabasiAlbert with per-vertex attachment
// counts cycling through [kmin, kmax], yielding a broad coreness spectrum
// (plain BA with constant k collapses to a single k-shell) — the
// social-network regime with a deep hierarchy.
func BarabasiAlbertVarying(n, kmin, kmax int, seed int64) *graph.Graph {
	if kmin < 1 {
		kmin = 1
	}
	if kmax < kmin {
		kmax = kmin
	}
	if n < kmax+1 {
		n = kmax + 1
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, n*(kmin+kmax)/2)
	for u := 0; u <= kmax; u++ {
		for v := u + 1; v <= kmax; v++ {
			edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
		}
	}
	endpoints := make([]int32, 0, n*(kmin+kmax))
	for _, e := range edges {
		endpoints = append(endpoints, e.U, e.V)
	}
	span := kmax - kmin + 1
	for v := int32(kmax + 1); v < int32(n); v++ {
		k := kmin + rng.Intn(span)
		for j := 0; j < k; j++ {
			t := endpoints[rng.Intn(len(endpoints))]
			if t == v {
				t = int32(rng.Intn(int(v)))
			}
			edges = append(edges, graph.Edge{U: v, V: t})
			endpoints = append(endpoints, v, t)
		}
	}
	return graph.MustFromEdges(n, edges)
}

// RMAT samples m edges from a 2^scale x 2^scale recursive matrix with the
// canonical (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) quadrant probabilities,
// producing skewed web-graph-like structure.
func RMAT(scale, m int, seed int64) *graph.Graph {
	n := 1 << scale
	rng := rand.New(rand.NewSource(seed))
	const a, b, c = 0.57, 0.19, 0.19
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := n >> 1; bit > 0; bit >>= 1 {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: nothing to add
			case r < a+b:
				v += bit
			case r < a+b+c:
				u += bit
			default:
				u += bit
				v += bit
			}
		}
		edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
	}
	return graph.MustFromEdges(n, edges)
}

// Onion plants an explicit core hierarchy: `layers` nested shells, where
// layer i (outermost = 0) contains width vertices wired as a random
// (base+i*step)-regular-ish subgraph among layer >= i vertices. The result
// has a deep, known-shape HCD with many tree nodes, plus `branches`
// independent sub-onions to make the hierarchy a genuine tree rather than
// a path.
func Onion(layers, width, base, step, branches int, seed int64) *graph.Graph {
	if branches < 1 {
		branches = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	total := 0
	branchVerts := make([][]int32, branches)
	for b := 0; b < branches; b++ {
		// Vertices of branch b, innermost layer last so that higher layers
		// can wire into everything at least as deep.
		verts := make([]int32, 0, layers*width)
		for l := 0; l < layers; l++ {
			for i := 0; i < width; i++ {
				verts = append(verts, int32(total))
				total++
			}
		}
		branchVerts[b] = verts
		for l := 0; l < layers; l++ {
			deg := base + l*step
			// Candidate targets: vertices in layer >= l of this branch.
			pool := verts[l*width:]
			layerVerts := verts[l*width : (l+1)*width]
			for _, v := range layerVerts {
				for j := 0; j < deg; j++ {
					t := pool[rng.Intn(len(pool))]
					if t != v {
						edges = append(edges, graph.Edge{U: v, V: t})
					}
				}
			}
		}
	}
	// Join the branches at their outermost layers with a sparse ring so the
	// graph is connected but the deep cores stay disjoint.
	for b := 0; b < branches; b++ {
		u := branchVerts[b][0]
		v := branchVerts[(b+1)%branches][0]
		if u != v {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	return graph.MustFromEdges(total, edges)
}

// PlantedPartition generates `comms` communities of `size` vertices each;
// within-community edges appear with probability pin, between-community
// edges with pout (sampled as counts to stay O(m)).
func PlantedPartition(comms, size int, pin, pout float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := comms * size
	var edges []graph.Edge
	// Intra-community edges: expected pin * size*(size-1)/2 per community.
	intraPer := int(pin * float64(size*(size-1)) / 2)
	for c := 0; c < comms; c++ {
		lo := c * size
		for i := 0; i < intraPer; i++ {
			u := int32(lo + rng.Intn(size))
			v := int32(lo + rng.Intn(size))
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	// Inter-community edges: expected pout * (total cross pairs).
	crossPairs := float64(n)*float64(n-size)/2 + 0.5
	inter := int(pout * crossPairs)
	for i := 0; i < inter; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if int(u)/size != int(v)/size {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	return graph.MustFromEdges(n, edges)
}
