package shellidx

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
)

// naive builds the reference layout per the documented contract: each list
// sorted by (descending coreness, ascending id), with counted splits.
func naive(g *graph.Graph, core []int32) (adj [][]int32, gt, eq []int32) {
	n := g.NumVertices()
	adj = make([][]int32, n)
	gt = make([]int32, n)
	eq = make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		nb := append([]int32(nil), g.Neighbors(v)...)
		sort.SliceStable(nb, func(i, j int) bool {
			if core[nb[i]] != core[nb[j]] {
				return core[nb[i]] > core[nb[j]]
			}
			return nb[i] < nb[j]
		})
		adj[v] = nb
		for _, u := range nb {
			switch {
			case core[u] > core[v]:
				gt[v]++
			case core[u] == core[v]:
				eq[v]++
			}
		}
	}
	return adj, gt, eq
}

func checkLayout(t *testing.T, name string, g *graph.Graph, threads int) {
	t.Helper()
	core := coredecomp.Serial(g)
	r := coredecomp.RankVertices(core, threads)
	l := Build(g, core, r, threads)
	wantAdj, wantGt, wantEq := naive(g, core)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if got := l.Reordered(v); !reflect.DeepEqual(got, wantAdj[v]) && len(wantAdj[v]) > 0 {
			t.Fatalf("%s threads=%d: vertex %d reordered list %v, want %v", name, threads, v, got, wantAdj[v])
		}
		if l.DeeperCount(v) != wantGt[v] || l.SameCount(v) != wantEq[v] {
			t.Fatalf("%s threads=%d: vertex %d splits gt=%d eq=%d, want gt=%d eq=%d",
				name, threads, v, l.DeeperCount(v), l.SameCount(v), wantGt[v], wantEq[v])
		}
		// Segment accessors must tile the list exactly.
		total := len(l.Deeper(v)) + len(l.Same(v)) + len(l.Shallower(v))
		if total != g.Degree(v) {
			t.Fatalf("%s threads=%d: vertex %d segments cover %d of %d neighbors",
				name, threads, v, total, g.Degree(v))
		}
		for _, u := range l.Deeper(v) {
			if core[u] <= core[v] {
				t.Fatalf("%s: vertex %d Deeper contains %d (core %d <= %d)", name, v, u, core[u], core[v])
			}
		}
		for _, u := range l.Same(v) {
			if core[u] != core[v] {
				t.Fatalf("%s: vertex %d Same contains %d (core %d != %d)", name, v, u, core[u], core[v])
			}
		}
		for _, u := range l.Shallower(v) {
			if core[u] >= core[v] {
				t.Fatalf("%s: vertex %d Shallower contains %d (core %d >= %d)", name, v, u, core[u], core[v])
			}
		}
	}
}

func TestBuildMatchesNaive(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.MustFromEdges(0, nil)},
		{"isolated", graph.MustFromEdges(5, nil)},
		{"edge", graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})},
		{"er", gen.ErdosRenyi(300, 1200, 1)},
		{"ba", gen.BarabasiAlbert(200, 5, 2)},
		{"rmat", gen.RMAT(9, 2000, 3)},
		{"onion", gen.Onion(6, 12, 2, 2, 3, 4)},
	}
	for _, c := range cases {
		for _, threads := range []int{1, 2, 4, 7} {
			checkLayout(t, c.name, c.g, threads)
		}
	}
}

// The layout must be byte-identical across thread counts — in particular
// the serial shell-scatter path and the parallel per-vertex counting sort
// must agree exactly.
func TestBuildDeterministicAcrossThreads(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(200)
		edges := make([]graph.Edge, 4*n)
		for i := range edges {
			edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		core := coredecomp.Serial(g)
		r := coredecomp.RankVertices(core, 0)
		ref := Build(g, core, r, 1)
		for _, threads := range []int{2, 3, 8} {
			l := Build(g, core, r, threads)
			if !reflect.DeepEqual(l.adj, ref.adj) {
				t.Fatalf("seed=%d threads=%d: adjacency differs from serial build", seed, threads)
			}
			if !reflect.DeepEqual(l.gt, ref.gt) || !reflect.DeepEqual(l.eq, ref.eq) {
				t.Fatalf("seed=%d threads=%d: splits differ from serial build", seed, threads)
			}
		}
	}
}

func TestSuiteLayouts(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, d := range gen.Suite(1) {
		g := d.Build()
		core := coredecomp.Parallel(g, 0)
		r := coredecomp.RankVertices(core, 0)
		l := Build(g, core, r, 0)
		// Spot-check structural invariants over every vertex.
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			last := int32(1 << 30)
			for _, u := range l.Reordered(v) {
				if core[u] > last {
					t.Fatalf("%s: vertex %d list not descending by coreness", d.Abbrev, v)
				}
				last = core[u]
			}
		}
	}
}

func BenchmarkBuildLayout(b *testing.B) {
	g := gen.RMAT(15, 1<<18, 7)
	core := coredecomp.Serial(g)
	r := coredecomp.RankVertices(core, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, core, r, 0)
	}
}
