// Package shellidx provides the coreness-ordered adjacency layout: a
// one-shot preprocessing pass over a graph and its core decomposition that
// re-orders every vertex's adjacency list by descending neighbor coreness
// (ties broken by ascending vertex id) and records per-vertex split
// offsets. After the pass, the three neighbor classes PHCD and PBKS
// repeatedly filter for —
//
//	deeper:    {u ∈ N(v) : c(u) > c(v)}   (the k-core prefix at v's level)
//	same:      {u ∈ N(v) : c(u) = c(v)}   (same-shell neighbors, id-sorted)
//	shallower: {u ∈ N(v) : c(u) < c(v)}   (grouped by coreness, descending)
//
// — are O(1) subslice lookups instead of per-call scans, and algorithms
// that walk "neighbors of coreness >= k" (PHCD Steps 1-2 at k = c(v),
// Algorithm 5's per-level triplet binning) early-exit on a contiguous
// prefix. The layout is the semisorted-adjacency tool of the parallel
// nucleus/k-core decomposition literature (Shi-Dhulipala-Shun; Liu-Dong
// et al.), applied to the paper's HCD pipeline.
//
// The layout is deterministic: byte-identical for every thread count,
// because each vertex's re-ordered list is a pure function of (graph,
// core). Build it once per (graph, core) pair and share it across PHCD and
// every search Index; see DESIGN.md ("When to pay for the layout") for the
// amortisation argument.
package shellidx

import (
	"context"

	"hcd/internal/coredecomp"
	"hcd/internal/graph"
	"hcd/internal/obs"
	"hcd/internal/par"
)

// Layout is the coreness-ordered adjacency of one (graph, core) pair. The
// zero value is an empty layout; construct with Build.
type Layout struct {
	offsets []int64 // aliases the graph's CSR offsets (len n+1)
	adj     []int32 // len 2m; per vertex: descending coreness, ties asc id
	gt      []int32 // gt[v] = |{u ∈ N(v) : c(u) > c(v)}|
	eq      []int32 // eq[v] = |{u ∈ N(v) : c(u) = c(v)}|
}

// NumVertices returns the number of vertices the layout covers.
func (l *Layout) NumVertices() int {
	if len(l.offsets) == 0 {
		return 0
	}
	return len(l.offsets) - 1
}

// Deeper returns v's neighbors of strictly greater coreness. The slice
// aliases the layout and must not be modified.
func (l *Layout) Deeper(v int32) []int32 {
	off := l.offsets[v]
	return l.adj[off : off+int64(l.gt[v])]
}

// Same returns v's neighbors of equal coreness, sorted by ascending id.
func (l *Layout) Same(v int32) []int32 {
	off := l.offsets[v] + int64(l.gt[v])
	return l.adj[off : off+int64(l.eq[v])]
}

// AtLeast returns v's neighbors of coreness >= c(v) — the prefix PHCD's
// Step 2 unions at level k = c(v).
func (l *Layout) AtLeast(v int32) []int32 {
	off := l.offsets[v]
	return l.adj[off : off+int64(l.gt[v])+int64(l.eq[v])]
}

// Shallower returns v's neighbors of strictly lower coreness, grouped by
// coreness in descending order (each group sorted by ascending id).
func (l *Layout) Shallower(v int32) []int32 {
	off := l.offsets[v] + int64(l.gt[v]) + int64(l.eq[v])
	return l.adj[off:l.offsets[v+1]]
}

// Reordered returns v's full re-ordered adjacency list.
func (l *Layout) Reordered(v int32) []int32 {
	return l.adj[l.offsets[v]:l.offsets[v+1]]
}

// DeeperCount returns |Deeper(v)| without materialising the slice.
func (l *Layout) DeeperCount(v int32) int32 { return l.gt[v] }

// SameCount returns |Same(v)| without materialising the slice.
func (l *Layout) SameCount(v int32) int32 { return l.eq[v] }

// GtCounts returns the per-vertex deeper-neighbor counts — the gt_k array
// of the PBKS preprocessing (§IV-A). Aliases the layout; read-only.
func (l *Layout) GtCounts() []int32 { return l.gt }

// EqCounts returns the per-vertex equal-coreness counts (eq_k of §IV-A).
// Aliases the layout; read-only.
func (l *Layout) EqCounts() []int32 { return l.eq }

// Bytes returns the layout's exclusive storage footprint in bytes: the
// reordered adjacency (4·2m) plus the gt/eq count arrays (4n each). The
// offsets array is excluded — it aliases the graph's CSR offsets and is
// already counted by graph.Bytes; summing the two never double-counts.
func (l *Layout) Bytes() int64 {
	return int64(len(l.adj))*4 + int64(len(l.gt))*4 + int64(len(l.eq))*4
}

// Build constructs the layout with the given number of threads
// (0 = GOMAXPROCS). core must be g's core decomposition and r its vertex
// ranking (coredecomp.RankVertices(core, ...)); the ranking is reused for
// the degeneracy bound and for the serial fast path. O(n + m) work.
func Build(g *graph.Graph, core []int32, r *coredecomp.Ranking, threads int) *Layout {
	l, err := BuildCtx(context.Background(), g, core, r, threads)
	if err != nil {
		panic(err)
	}
	return l
}

// BuildCtx is Build with failure containment and cooperative cancellation:
// a worker panic in the parallel scatter surfaces as a *par.PanicError
// instead of crashing the process, and a cancelled ctx (nil means
// background) aborts the scatter at its internal chunk boundaries.
func BuildCtx(ctx context.Context, g *graph.Graph, core []int32, r *coredecomp.Ranking, threads int) (*Layout, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defer obs.StartSpan("shellidx.build").End()
	n := g.NumVertices()
	l := &Layout{
		offsets: g.Offsets(),
		adj:     make([]int32, 2*g.NumEdges()),
		gt:      make([]int32, n),
		eq:      make([]int32, n),
	}
	if n == 0 {
		return l, ctx.Err()
	}
	if par.Threads(threads) == 1 {
		l.buildSerial(g, core, r)
		return l, ctx.Err()
	}
	if err := l.buildParallel(ctx, g, core, r, threads); err != nil {
		return nil, err
	}
	return l, nil
}

// buildSerial fills the layout with a single cache-friendly scatter over
// the k-shell index: walking sources in descending shell order (ascending
// id within a shell) and appending each source to its neighbors' cursors
// yields every destination list already in (descending coreness, ascending
// id) order — no per-vertex sorting at all. One pass, O(m).
func (l *Layout) buildSerial(g *graph.Graph, core []int32, r *coredecomp.Ranking) {
	n := g.NumVertices()
	cur := make([]int64, n)
	copy(cur, l.offsets[:n])
	for k := r.KMax; k >= 0; k-- {
		for _, v := range r.Shell(k) {
			for _, u := range g.Neighbors(v) {
				l.adj[cur[u]] = v
				cur[u]++
				if k > core[u] {
					l.gt[u]++
				} else if k == core[u] {
					l.eq[u]++
				}
			}
		}
	}
}

// buildParallel fills the layout vertex-by-vertex: each vertex's list is
// counting-sorted by neighbor coreness with per-chunk scratch (reset via a
// touched-coreness list, so cost is O(d(v) + distinct corenesses), not
// O(kmax)). Chunked dynamically because per-vertex work follows degree.
func (l *Layout) buildParallel(ctx context.Context, g *graph.Graph, core []int32, r *coredecomp.Ranking, threads int) error {
	n := g.NumVertices()
	return par.ForChunkedErr(ctx, n, threads, 512, func(lo, hi int) error {
		cnt := make([]int32, r.KMax+1)
		cur := make([]int32, r.KMax+1)
		var touched []int32
		for vi := lo; vi < hi; vi++ {
			v := int32(vi)
			nb := g.Neighbors(v)
			if len(nb) == 0 {
				continue
			}
			touched = touched[:0]
			for _, u := range nb {
				c := core[u]
				if cnt[c] == 0 {
					touched = append(touched, c)
				}
				cnt[c]++
			}
			// Insertion-sort the (few) distinct corenesses descending.
			for i := 1; i < len(touched); i++ {
				c := touched[i]
				j := i - 1
				for j >= 0 && touched[j] < c {
					touched[j+1] = touched[j]
					j--
				}
				touched[j+1] = c
			}
			kv := core[v]
			var run, gtc, eqc int32
			for _, c := range touched {
				cur[c] = run
				run += cnt[c]
				if c > kv {
					gtc += cnt[c]
				} else if c == kv {
					eqc = cnt[c]
				}
			}
			off := l.offsets[v]
			for _, u := range nb {
				c := core[u]
				l.adj[off+int64(cur[c])] = u
				cur[c]++
			}
			for _, c := range touched {
				cnt[c] = 0
			}
			l.gt[v] = gtc
			l.eq[v] = eqc
		}
		return nil
	})
}
