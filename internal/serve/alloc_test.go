package serve

import (
	"context"
	"testing"
	"time"
)

// TestAdmitFastPathAllocFree pins the uncontended admission path at
// zero allocations: with a free execution slot, admit is a channel
// send, two atomic bumps and a histogram observe — no closure, no
// timer, no span. This is the path every request takes on a healthy
// server, so one allocation here is one allocation per served request.
// Holds under both build flavours (the noobs metric stubs are inert).
func TestAdmitFastPathAllocFree(t *testing.T) {
	l := newLimiter(4, 4, time.Millisecond)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(500, func() {
		wait, v := l.admit(ctx)
		if v != admitOK || wait != 0 {
			t.Fatalf("fast path not taken: verdict %v wait %v", v, wait)
		}
		l.release()
	})
	if allocs != 0 {
		t.Fatalf("uncontended admit allocates %.1f objects per request, want 0", allocs)
	}
}

// BenchmarkAdmitFastPathAllocs reports the uncontended admission cost
// with allocation accounting, for the perf-smoke and race-matrix CI
// legs.
func BenchmarkAdmitFastPathAllocs(b *testing.B) {
	l := newLimiter(4, 4, time.Millisecond)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, v := l.admit(ctx); v == admitOK {
			l.release()
		}
	}
}
