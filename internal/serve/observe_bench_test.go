package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hcd"
)

// benchHandler builds a served snapshot once for the handler-path
// benchmarks. These measure the full per-request envelope (observability
// wrapper, admission, handler, JSON encoding) — the serving overhead the
// request-observability layer must keep inside its budget.
func benchHandler(b *testing.B) http.Handler {
	b.Helper()
	g := testGraph()
	s, err := New(Config{
		Load:           func() (*hcd.Graph, error) { return g, nil },
		Build:          hcd.Options{Threads: 2},
		MaxInflight:    8,
		QueueDepth:     8,
		RequestTimeout: time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Rebuild(context.Background()); err != nil {
		b.Fatal(err)
	}
	return s.Handler()
}

// BenchmarkReconstructRequest is the cheap-query path: core
// reconstruction on a small graph, dominated by per-request overhead
// rather than kernel work.
func BenchmarkReconstructRequest(b *testing.B) {
	h := benchHandler(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest(http.MethodGet, "/reconstruct?node=0", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatal(w.Code)
		}
	}
}

// BenchmarkHealthzRequest is the floor: the observability envelope plus
// a trivial handler.
func BenchmarkHealthzRequest(b *testing.B) {
	h := benchHandler(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
	}
}
