package serve

// Footprint is the deterministic resident-memory account of one
// published snapshot: bytes per component, computed from array lengths
// rather than heap sampling, so two servers holding the same snapshot
// report the same numbers and a rebuild's delta is attributable to the
// input — never to GC timing. Aliased storage is counted exactly once:
// the search index's layout shares the graph's CSR offsets (counted
// under Graph) and the gt/eq arrays (counted under Index), so Total is
// a true sum, not an over-estimate.
type Footprint struct {
	// GraphBytes is the CSR input (offsets + adjacency).
	GraphBytes int64 `json:"graph_bytes"`
	// CoreBytes is the coreness array (4 bytes per vertex).
	CoreBytes int64 `json:"core_bytes"`
	// HierarchyBytes is the HCD forest (per-node arrays, ragged
	// children/vertex lists, the per-vertex TID map).
	HierarchyBytes int64 `json:"hierarchy_bytes"`
	// IndexBytes is the searcher's exclusive index storage (the
	// coreness-ordered layout or the gt/eq preprocessing arrays).
	IndexBytes int64 `json:"index_bytes"`
	// LocalBytes is the local-query binary-lifting table.
	LocalBytes int64 `json:"local_bytes"`
	// TotalBytes is the sum of the components.
	TotalBytes int64 `json:"total_bytes"`
}

// Footprint computes the snapshot's resident-memory account. Pure
// arithmetic over array lengths — safe to call on every /stats request
// and every /metrics scrape.
func (snap *Snapshot) Footprint() Footprint {
	f := Footprint{
		GraphBytes: snap.Graph.Bytes(),
		CoreBytes:  int64(len(snap.Core)) * 4,
	}
	if snap.Searcher != nil {
		f.HierarchyBytes = snap.Searcher.Hierarchy().Bytes()
		f.IndexBytes = snap.Searcher.IndexBytes()
	}
	if snap.Local != nil {
		f.LocalBytes = snap.Local.Bytes()
	}
	f.TotalBytes = f.GraphBytes + f.CoreBytes + f.HierarchyBytes + f.IndexBytes + f.LocalBytes
	return f
}
