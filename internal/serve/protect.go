package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"hcd/internal/faultinject"
	"hcd/internal/par"
)

// errorResponse is the JSON body of every non-200 response. Chain is
// the unwrap chain of the underlying error, outermost first — for a
// contained panic that walks *par.PanicError down to the injected
// *faultinject.Fault, so a chaos run can assert which site fired from
// the response alone.
type errorResponse struct {
	Status int      `json:"status"`
	Error  string   `json:"error"`
	Chain  []string `json:"chain,omitempty"`
	Site   string   `json:"fault_site,omitempty"`
}

// Protect wraps h so a panic anywhere below it — an injected fault, a
// query-kernel *par.PanicError, a plain handler bug — is recovered into
// a buffered JSON 500 carrying the fault chain. This is the serve
// recovery wrapper the hcdlint http-safety check requires on every
// handler registration in module packages: net/http's built-in
// per-connection recover keeps the process alive but returns an empty
// reply; a resident query service owes its clients a diagnosable
// response instead.
//
// http.ErrAbortHandler re-panics: it is net/http's documented way to
// abort a response and suppress stack logging, not a failure to
// contain.
func Protect(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			mPanics.Inc()
			err := par.AsPanicError(rec)
			if reqRec := requestFrom(r.Context()); reqRec != nil {
				reqRec.panicked = true
				noteError(r, err)
			}
			writeError(w, http.StatusInternalServerError, err)
		}()
		h.ServeHTTP(w, r)
	})
}

// writeJSON marshals v fully before writing a byte, so an encoding
// failure or mid-marshal panic can never tear a partial JSON body onto
// the wire; the fallback is a complete plain-text 500.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, fmt.Sprintf("response encoding failed: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)+1))
	w.WriteHeader(status)
	// A failed write means the client went away; the response is
	// already fully formed so there is nothing to recover.
	_, _ = w.Write(body)
	_, _ = w.Write([]byte("\n"))
}

// writeError renders err as a JSON errorResponse. 429 and 503 carry
// Retry-After so well-behaved clients back off instead of hammering a
// saturated or draining server.
func writeError(w http.ResponseWriter, status int, err error) {
	resp := errorResponse{Status: status, Error: err.Error()}
	for e := errors.Unwrap(err); e != nil; e = errors.Unwrap(e) {
		resp.Chain = append(resp.Chain, e.Error())
	}
	var f *faultinject.Fault
	if errors.As(err, &f) {
		resp.Site = f.Site
	}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, resp)
}
