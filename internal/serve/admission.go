package serve

import (
	"context"
	"sync/atomic"
	"time"

	"hcd/internal/faultinject"
	"hcd/internal/obs"
)

// limiter is the admission controller: a semaphore of maxInflight
// execution slots fronted by a bounded wait queue. The two-stage shape
// gives load shedding a precise vocabulary — an arrival that cannot
// even queue is refused immediately (429, the client should back off
// hard), while a queued request that cannot reach a slot within
// queueWait is refused late (503, the server is saturated but moving).
type limiter struct {
	slots     chan struct{}
	queued    atomic.Int64
	maxQueue  int64
	queueWait time.Duration
}

// verdict is the outcome of one admission attempt.
type verdict int

const (
	admitOK         verdict = iota // slot acquired; caller must release
	shedQueueFull                  // wait queue full at arrival → 429
	shedWaitExpired                // queued but no slot within queueWait → 503
	shedCancelled                  // request context ended while queued → 503
)

func newLimiter(maxInflight, queueDepth int, queueWait time.Duration) *limiter {
	return &limiter{
		slots:     make(chan struct{}, maxInflight),
		maxQueue:  int64(queueDepth),
		queueWait: queueWait,
	}
}

// admit tries to claim an execution slot, queueing for at most
// queueWait. On admitOK the caller must call release exactly once when
// the request finishes; on every other verdict no slot is held. wait is
// the time the request spent queued (zero on the fast path; for a shed
// waiter, the time it burned before giving up). The serve.admit fault
// site fires inside admit, so an injected panic here surfaces through
// the handler's Protect wrapper as a contained 500 — admission is part
// of the request's blast radius, not the process's.
//
// The uncontended path — free slot, no queueing — is allocation-free
// (pinned by BenchmarkAdmitFastPathAllocs): a channel send, two atomic
// bumps and a histogram observe, no closures and no timer. The per-call
// release closure the slot claim used to return was the one allocation
// on that path.
func (l *limiter) admit(ctx context.Context) (wait time.Duration, v verdict) {
	faultinject.Maybe("serve.admit")

	// Fast path: a free slot with no queueing.
	select {
	case l.slots <- struct{}{}:
		mQueueWait.Observe(0)
		l.claim()
		return 0, admitOK
	default:
	}

	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		mShed.Inc()
		return 0, shedQueueFull
	}
	mQueue.Set(l.queued.Load())
	defer func() {
		l.queued.Add(-1)
		mQueue.Set(l.queued.Load())
	}()

	// Slow path: the queue wait gets its own span (on the request's lane
	// when the context is tagged), so a trace shows saturation as a
	// visible serve.request.wait bar rather than mystery latency.
	sp := obs.StartSpanCtx(ctx, "serve.request.wait")
	start := time.Now()
	t := time.NewTimer(l.queueWait)
	defer t.Stop()
	select {
	case l.slots <- struct{}{}:
		sp.End()
		wait = time.Since(start)
		mQueueWait.Observe(wait)
		l.claim()
		return wait, admitOK
	case <-t.C:
		sp.End()
		mShed.Inc()
		return time.Since(start), shedWaitExpired
	case <-ctx.Done():
		sp.End()
		mShed.Inc()
		return time.Since(start), shedCancelled
	}
}

// claim records a successful slot acquisition.
func (l *limiter) claim() {
	mInflight.Add(1)
	mAdmitted.Inc()
}

// release frees the execution slot claimed by an admitOK admit. Must be
// called exactly once per admitted request.
func (l *limiter) release() {
	<-l.slots
	mInflight.Add(-1)
}
