package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hcd"
	"hcd/internal/faultinject"
	"hcd/internal/gen"
	"hcd/internal/obs"
)

func testGraph() *hcd.Graph { return gen.ErdosRenyi(300, 1500, 7) }

// newTestServer builds a Server over the deterministic test graph with
// test-friendly timings; mut tweaks the config before New.
func newTestServer(t *testing.T, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Load:              func() (*hcd.Graph, error) { return testGraph(), nil },
		Build:             hcd.Options{Threads: 2},
		RebuildBackoff:    time.Millisecond,
		RebuildBackoffMax: 4 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func publish(t *testing.T, s *Server) {
	t.Helper()
	if err := s.Rebuild(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// get fetches path and decodes the JSON body, failing the test on any
// response that is not complete, valid JSON — the no-torn-responses
// invariant every endpoint must uphold.
func get(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	if !json.Valid(body) {
		t.Fatalf("GET %s: response is not valid JSON: %q", path, body)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, m
}

func TestSearchMatchesDirectQuery(t *testing.T) {
	s := newTestServer(t, nil)
	publish(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := testGraph()
	_, _, direct := hcd.BuildAndIndex(g, hcd.Options{Threads: 2})
	want := direct.Best(hcd.AverageDegree(), hcd.Options{Threads: 2})

	status, body := get(t, ts, "/search?metric=average-degree")
	if status != http.StatusOK {
		t.Fatalf("status %d, body %v", status, body)
	}
	if body["found"] != true {
		t.Fatalf("found=false: %v", body)
	}
	if got := int64(body["node"].(float64)); got != int64(want.Node) {
		t.Errorf("node %d, want %d", got, want.Node)
	}
	if got := int64(body["k"].(float64)); got != int64(want.K) {
		t.Errorf("k %d, want %d", got, want.K)
	}
	if got := body["score"].(string); got != fmt.Sprintf("%g", want.Score) {
		t.Errorf("score %s, want %g", got, want.Score)
	}
	if got := uint64(body["epoch"].(float64)); got != 1 {
		t.Errorf("epoch %d, want 1", got)
	}
}

func TestSearchConstrainedAndWeighted(t *testing.T) {
	s := newTestServer(t, nil)
	publish(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// An unsatisfiable size floor: every k-core is smaller than the graph
	// can't be, so the search must come back found=false, not error.
	status, body := get(t, ts, "/search?metric=average-degree&min_size=100000")
	if status != http.StatusOK || body["found"] != false {
		t.Fatalf("impossible min_size: status %d body %v", status, body)
	}

	status, body = get(t, ts, "/search?weighted=average-degree:1,cut-ratio:0.5&min_size=2")
	if status != http.StatusOK || body["found"] != true {
		t.Fatalf("weighted constrained: status %d body %v", status, body)
	}

	// POST body form of the same query.
	resp, err := ts.Client().Post(ts.URL+"/search", "application/json",
		strings.NewReader(`{"weighted":[{"metric":"average-degree","coeff":1}],"min_size":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST search: status %d body %s", resp.StatusCode, b)
	}
}

func TestBadRequestsYield400(t *testing.T) {
	s := newTestServer(t, nil)
	publish(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []string{
		"/search?metric=no-such-metric",
		"/search?min_size=-1",
		"/search?min_size=10&max_size=5",
		"/search?max_size=-3",
		"/search?timeout_ms=-5",
		"/search?timeout_ms=999999999999",
		"/search?min_size=99999999999999999999999999", // overflows int64
		"/search?weighted=average-degree:NaN",
		"/search?weighted=average-degree:+Inf",
		"/search?weighted=average-degree:-1",
		"/search?weighted=average-degree",                      // no coefficient
		"/search?weighted=nope:1",                              // unknown metric in term
		"/search?metric=conductance&weighted=average-degree:1", // mutually exclusive
		"/reconstruct",                                         // neither node nor v/k
		"/reconstruct?node=1&v=2&k=3",                          // both
		"/reconstruct?v=5",                                     // k missing
		"/reconstruct?v=-1&k=2",
		"/reconstruct?v=5&k=0",
		"/reconstruct?node=99999999999", // out of range
		"/reconstruct?v=4&k=3000000000", // k beyond int32
		"/reconstruct?node=1&limit=-2",
	}
	for _, path := range cases {
		status, body := get(t, ts, path)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400), body %v", path, status, body)
		}
	}

	// Bad JSON bodies and methods.
	resp, err := ts.Client().Post(ts.URL+"/search", "application/json", strings.NewReader(`{"metric":`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated JSON: status %d, want 400", resp.StatusCode)
	}
	resp, err = ts.Client().Post(ts.URL+"/search", "application/json", strings.NewReader(`{"surprise":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/search", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT /search: status %d, want 400", resp.StatusCode)
	}
}

func TestReconstructMatchesHierarchy(t *testing.T) {
	s := newTestServer(t, nil)
	publish(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	snap := s.cur.Load()

	status, body := get(t, ts, "/reconstruct?node=0")
	if status != http.StatusOK || body["found"] != true {
		t.Fatalf("node=0: status %d body %v", status, body)
	}
	want := snap.Searcher.CoreVertices(0)
	if got := int(body["count"].(float64)); got != len(want) {
		t.Errorf("node=0 count %d, want %d", got, len(want))
	}

	// The v/k path must agree with the LocalQuery index directly.
	core := snap.Core
	v := int32(0)
	k := core[v]
	status, body = get(t, ts, fmt.Sprintf("/reconstruct?v=%d&k=%d", v, k))
	if status != http.StatusOK || body["found"] != true {
		t.Fatalf("v/k: status %d body %v", status, body)
	}
	if got, want := int(body["count"].(float64)), len(snap.Local.KCore(v, k)); got != want {
		t.Errorf("v/k count %d, want %d", got, want)
	}

	// A k above the vertex's coreness has no containing core: found=false.
	status, body = get(t, ts, fmt.Sprintf("/reconstruct?v=%d&k=%d", v, k+100))
	if status != http.StatusOK || body["found"] != false {
		t.Fatalf("v with too-high k: status %d body %v", status, body)
	}

	// limit truncates but reports the full count.
	status, body = get(t, ts, "/reconstruct?node=0&limit=1")
	if status != http.StatusOK {
		t.Fatalf("limit: status %d", status)
	}
	if n := len(body["vertices"].([]any)); len(want) > 1 && (n != 1 || body["truncated"] != true) {
		t.Errorf("limit=1: got %d vertices, truncated=%v", n, body["truncated"])
	}
}

func TestLivenessVsReadiness(t *testing.T) {
	// Before any snapshot: live but not ready, and queries shed 503.
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if status, _ := get(t, ts, "/healthz"); status != http.StatusOK {
		t.Errorf("healthz before snapshot: %d, want 200", status)
	}
	if status, body := get(t, ts, "/readyz"); status != http.StatusServiceUnavailable || body["ready"] != false {
		t.Errorf("readyz before snapshot: %d %v", status, body)
	}
	resp, err := ts.Client().Get(ts.URL + "/search?metric=average-degree")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("search before snapshot: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	publish(t, s)
	if status, body := get(t, ts, "/readyz"); status != http.StatusOK || body["ready"] != true {
		t.Errorf("readyz after snapshot: %d %v", status, body)
	}
	if status, body := get(t, ts, "/stats"); status != http.StatusOK || body["epoch"].(float64) != 1 {
		t.Errorf("stats: %d %v", status, body)
	}
}

func TestRebuildRetryAndLastGoodSnapshot(t *testing.T) {
	var fail atomic.Bool
	var loads atomic.Int64
	s := newTestServer(t, func(c *Config) {
		good := c.Load
		c.Load = func() (*hcd.Graph, error) {
			loads.Add(1)
			if fail.Load() {
				return nil, errors.New("input store unavailable")
			}
			return good()
		}
		c.RebuildMaxAttempts = 3
	})
	publish(t, s)
	retriesBefore := mRebuildRetries.Value()
	abandonedBefore := mRebuildAbandoned.Value()

	// Every attempt of this round fails: the round must retry exactly
	// RebuildMaxAttempts times, then abandon, keeping epoch 1 serving.
	fail.Store(true)
	loadsBefore := loads.Load()
	if err := s.Rebuild(context.Background()); !errors.Is(err, errRebuildFailed) {
		t.Fatalf("Rebuild with failing load: err %v, want errRebuildFailed", err)
	}
	if got := loads.Load() - loadsBefore; got != 3 {
		t.Errorf("load attempts %d, want 3", got)
	}
	// Counter assertions only hold with live metrics (noobs stubs stay 0).
	if obs.Enabled() {
		if got := mRebuildRetries.Value() - retriesBefore; got != 3 {
			t.Errorf("retry counter advanced by %d, want 3", got)
		}
		if got := mRebuildAbandoned.Value() - abandonedBefore; got != 1 {
			t.Errorf("abandoned counter advanced by %d, want 1", got)
		}
	}
	if !s.Ready() || s.Epoch() != 1 {
		t.Fatalf("last-good snapshot lost: ready=%v epoch=%d", s.Ready(), s.Epoch())
	}

	// Recovery: the next round succeeds and bumps the epoch.
	fail.Store(false)
	publish(t, s)
	if s.Epoch() != 2 {
		t.Fatalf("epoch %d after recovery, want 2", s.Epoch())
	}
}

func TestRebuildContainsInjectedPanics(t *testing.T) {
	if !faultinject.Compiled() {
		t.Skip("built with nofaults")
	}
	for _, site := range []string{"serve.rebuild", "serve.swap"} {
		s := newTestServer(t, nil)
		if err := faultinject.Enable(site + ":panic:1"); err != nil {
			t.Fatal(err)
		}
		// First attempt panics at the site; the retry must publish.
		err := s.Rebuild(context.Background())
		faultinject.Disable()
		if err != nil {
			t.Fatalf("%s: Rebuild did not recover: %v", site, err)
		}
		if s.Epoch() != 1 {
			t.Fatalf("%s: epoch %d, want 1", site, s.Epoch())
		}
	}
}

func TestProtectContainsPanicsIntoJSON500(t *testing.T) {
	h := Protect(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(errors.New("handler exploded"))
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("500 body is not valid JSON: %q", rec.Body.String())
	}
	var resp errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Error, "handler exploded") {
		t.Errorf("error %q does not carry the panic value", resp.Error)
	}
	if len(resp.Chain) == 0 {
		t.Error("fault chain empty; want the unwrapped panic cause")
	}
}

func TestAdmissionVerdicts(t *testing.T) {
	l := newLimiter(1, 1, 50*time.Millisecond)
	_, v := l.admit(context.Background())
	if v != admitOK {
		t.Fatalf("first admit: %v", v)
	}

	// Occupy the single queue slot in the background.
	queuedDone := make(chan verdict, 1)
	go func() {
		_, v := l.admit(context.Background())
		if v == admitOK {
			l.release()
		}
		queuedDone <- v
	}()
	// Wait until the goroutine is actually queued.
	for i := 0; l.queued.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if l.queued.Load() == 0 {
		t.Fatal("second admit never queued")
	}

	// A third arrival overflows the queue and is shed immediately.
	if _, v := l.admit(context.Background()); v != shedQueueFull {
		t.Fatalf("overflow arrival: %v, want shedQueueFull", v)
	}

	// Releasing the slot admits the queued waiter.
	l.release()
	if v := <-queuedDone; v != admitOK {
		t.Fatalf("queued waiter: %v, want admitOK", v)
	}

	// With the slot held again and nothing releasing it, a queued
	// request times out into shedWaitExpired.
	if _, v := l.admit(context.Background()); v != admitOK {
		t.Fatalf("re-acquire: %v", v)
	}
	defer l.release()
	if wait, v := l.admit(context.Background()); v != shedWaitExpired {
		t.Fatalf("starved waiter: %v, want shedWaitExpired", v)
	} else if wait <= 0 {
		t.Errorf("starved waiter reported wait %v, want > 0", wait)
	}

	// A queued request whose client departs is shed as cancelled.
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	if _, v := l.admit(ctx); v != shedCancelled {
		t.Fatalf("cancelled waiter: %v, want shedCancelled", v)
	}
}

func TestRunLifecycleReloadAndDrain(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.DrainTimeout = 2 * time.Second
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, ln) }()

	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	if err := s.WaitReady(wctx); err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	resp, err := http.Post(base+"/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/reload: status %d, want 202", resp.StatusCode)
	}
	for i := 0; s.Epoch() < 2 && i < 1000; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if s.Epoch() < 2 {
		t.Fatal("reload never published a new snapshot")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v, want nil (the exit-0 path)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not drain")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}

func TestWatchedFileTriggersRebuild(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := testGraph().WriteBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, func(c *Config) {
		c.Load = func() (*hcd.Graph, error) { return hcd.ReadBinaryFile(path) }
		c.WatchPath = path
		c.WatchInterval = 5 * time.Millisecond
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, ln) }()

	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	if err := s.WaitReady(wctx); err != nil {
		t.Fatal(err)
	}

	// Replace the watched file with a different graph; the poll loop
	// must notice and publish a new epoch.
	if err := gen.ErdosRenyi(200, 800, 11).WriteBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, time.Now(), time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	for i := 0; s.Epoch() < 2 && i < 2000; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if s.Epoch() < 2 {
		t.Fatal("watched-file change never triggered a rebuild")
	}
	snap := s.cur.Load()
	if snap.Graph.NumVertices() != 200 {
		t.Errorf("new snapshot has n=%d, want the replaced graph's 200", snap.Graph.NumVertices())
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
}
