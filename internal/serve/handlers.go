package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hcd"
	"hcd/internal/faultinject"
	"hcd/internal/obs"
)

// gated wraps a query handler with the admission path: drain and
// readiness refusals first (cheapest, and drain must win over
// everything), then the limiter. The admitted request carries the
// snapshot it will serve against — loaded exactly once, so a swap
// mid-request is invisible to it.
func (s *Server) gated(h func(http.ResponseWriter, *http.Request, *Snapshot)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := requestFrom(r.Context()) // nil when driven outside observed (direct tests)
		if rec != nil {
			rec.gated = true
		}
		shed := func(status int, verdict string, err error) {
			if rec != nil {
				rec.Verdict = verdict
			}
			noteError(r, err)
			writeError(w, status, err)
		}
		if s.draining.Load() {
			mShed.Inc()
			w.Header().Set("Connection", "close")
			shed(http.StatusServiceUnavailable, verdictShedDrain, errors.New("serve: draining"))
			return
		}
		snap := s.cur.Load()
		if snap == nil {
			mShed.Inc()
			shed(http.StatusServiceUnavailable, verdictShedNoSnap, errors.New("serve: no snapshot published yet"))
			return
		}
		// No span around the uncontended admission fast path (one atomic
		// CAS); when the request actually queues for a slot, admit opens
		// the serve.request.wait span, so the trace shows the wait exactly
		// when there is one.
		wait, v := s.lim.admit(r.Context())
		if rec != nil {
			rec.QueueWaitNS = wait.Nanoseconds()
			rec.Epoch = snap.Epoch
		}
		switch v {
		case shedQueueFull:
			shed(http.StatusTooManyRequests, verdictShedQueue, errors.New("serve: admission queue full"))
			return
		case shedWaitExpired:
			shed(http.StatusServiceUnavailable, verdictShedWait, errors.New("serve: saturated, queue wait expired"))
			return
		case shedCancelled:
			shed(http.StatusServiceUnavailable, verdictShedCancel, errors.New("serve: request cancelled while queued"))
			return
		}
		defer s.lim.release()
		// The queue wait rides back as a header so load generators (and
		// the serve benchmark's queue-wait cells) can measure admission
		// pressure without parsing logs.
		w.Header()["X-Queue-Wait-Ns"] = []string{strconv.FormatInt(wait.Nanoseconds(), 10)}
		// The serve.query fault site panics *inside* the admitted request
		// — the exact blast radius a contained kernel panic has; Protect
		// turns either into a JSON 500 with the fault chain, and the
		// deferred release above still frees the slot during unwinding.
		faultinject.Maybe("serve.query")
		sp := obs.StartSpanCtx(r.Context(), "serve.request.exec")
		start := time.Now()
		defer func() {
			mLatency.Observe(time.Since(start))
			sp.End()
			if s.draining.Load() {
				mDrained.Inc()
			}
		}()
		h(w, r, snap)
	}
}

// queryErrorStatus maps a query error onto a status code: the client's
// deadline → 504, a cancelled context (drain escalation or a departed
// client) → 503, a contained kernel panic or anything else → 500.
func queryErrorStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// searchResponse is the JSON body of a successful /search.
type searchResponse struct {
	Epoch  uint64 `json:"epoch"`
	Metric string `json:"metric"`
	Found  bool   `json:"found"`
	Node   int32  `json:"node,omitempty"`
	K      int32  `json:"k,omitempty"`
	// Score is formatted as a string so non-finite values (a weighted
	// metric can legitimately produce -Inf on a filtered-out node set)
	// survive the trip through JSON, which has no encoding for them.
	Score     string         `json:"score,omitempty"`
	Values    *primaryValues `json:"values,omitempty"`
	ElapsedNS int64          `json:"elapsed_ns"`
}

// primaryValues mirrors hcd.PrimaryValues with stable JSON names.
type primaryValues struct {
	N         int64 `json:"n"`
	M         int64 `json:"m"`
	B         int64 `json:"b"`
	Triangles int64 `json:"triangles"`
	Triplets  int64 `json:"triplets"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	req, m, err := DecodeSearchRequest(r)
	if err != nil {
		noteError(r, err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if rec := requestFrom(r.Context()); rec != nil {
		rec.Metric = m.Name()
	}
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	var res hcd.SearchResult
	if req.MinSize > 0 || req.MaxSize > 0 {
		res, err = snap.Searcher.BestConstrainedCtx(ctx, m, req.MinSize, req.MaxSize, s.queryOpts())
	} else {
		res, _, err = snap.Searcher.BestCtx(ctx, m, s.queryOpts())
	}
	if err != nil {
		noteError(r, err)
		writeError(w, queryErrorStatus(err), err)
		return
	}
	resp := searchResponse{
		Epoch:     snap.Epoch,
		Metric:    m.Name(),
		ElapsedNS: time.Since(start).Nanoseconds(),
	}
	if res.Node != hcd.NilNode {
		resp.Found = true
		resp.Node = int32(res.Node)
		resp.K = res.K
		resp.Score = fmt.Sprintf("%g", res.Score)
		resp.Values = &primaryValues{
			N: res.Values.N, M: res.Values.M, B: res.Values.B,
			Triangles: res.Values.Triangles, Triplets: res.Values.Triplets,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// reconstructResponse is the JSON body of a successful /reconstruct.
type reconstructResponse struct {
	Epoch     uint64  `json:"epoch"`
	Found     bool    `json:"found"`
	Node      int32   `json:"node,omitempty"`
	K         int32   `json:"k,omitempty"`
	Count     int     `json:"count"`
	Truncated bool    `json:"truncated,omitempty"`
	Vertices  []int32 `json:"vertices"`
}

func (s *Server) handleReconstruct(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	req, err := DecodeReconstructRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	h := snap.Searcher.Hierarchy()
	resp := reconstructResponse{Epoch: snap.Epoch, Vertices: []int32{}}
	switch {
	case req.byNode:
		if req.Node >= int64(h.NumNodes()) {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("%w: node %d out of range [0, %d)", errBadRequest, req.Node, h.NumNodes()))
			return
		}
		resp.Found = true
		resp.Node = int32(req.Node)
		resp.K = h.K[req.Node]
		resp.Vertices = snap.Searcher.CoreVertices(hcd.NodeID(req.Node))
	default:
		if req.V >= int64(h.NumVertices()) {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("%w: vertex %d out of range [0, %d)", errBadRequest, req.V, h.NumVertices()))
			return
		}
		vs := snap.Local.KCore(int32(req.V), int32(req.K))
		if vs != nil {
			resp.Found = true
			resp.K = int32(req.K)
			resp.Vertices = vs
		}
	}
	resp.Count = len(resp.Vertices)
	if req.Limit > 0 && int64(len(resp.Vertices)) > req.Limit {
		resp.Vertices = resp.Vertices[:req.Limit]
		resp.Truncated = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse is the JSON body of /stats: service state plus the
// published snapshot's shape, when one exists.
type statsResponse struct {
	Ready      bool         `json:"ready"`
	Draining   bool         `json:"draining"`
	Rebuilding bool         `json:"rebuilding"`
	Epoch      uint64       `json:"epoch"`
	BuiltAt    string       `json:"built_at,omitempty"`
	Build      string       `json:"build,omitempty"`
	Graph      *graphStats  `json:"graph,omitempty"`
	Hierarchy  *forestStats `json:"hierarchy,omitempty"`
	// Footprint is the published snapshot's deterministic resident-memory
	// account (bytes per component, computed from array lengths).
	Footprint *Footprint    `json:"footprint,omitempty"`
	Serve     serveCounters `json:"serve"`
	// SLO reports query availability and latency-threshold attainment
	// over the sliding Config.SLOWindow. Under the noobs build the window
	// is a stub and both ratios read 1 on a zero total.
	SLO sloSnapshot `json:"slo"`
}

type graphStats struct {
	N int   `json:"n"`
	M int64 `json:"m"`
}

type forestStats struct {
	Nodes  int   `json:"nodes"`
	Roots  int   `json:"roots"`
	Height int32 `json:"height"`
	KMax   int32 `json:"kmax"`
}

type serveCounters struct {
	Inflight       int64 `json:"inflight"`
	Queue          int64 `json:"queue"`
	Admitted       int64 `json:"admitted"`
	Shed           int64 `json:"shed"`
	Drained        int64 `json:"drained"`
	Panics         int64 `json:"panics"`
	Slow           int64 `json:"slow"`
	RebuildRetries int64 `json:"rebuild_retries"`
	Swaps          int64 `json:"swaps"`
	// LatencyP50NS / LatencyP99NS are bucket-interpolated request-latency
	// quantiles (0 under the noobs build, where the histogram is a stub);
	// QueueWaitP99NS is the same for the admission queue wait.
	LatencyP50NS   int64 `json:"latency_p50_ns"`
	LatencyP99NS   int64 `json:"latency_p99_ns"`
	QueueWaitP99NS int64 `json:"queue_wait_p99_ns"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.refreshGauges()
	resp := statsResponse{
		Ready:      s.Ready(),
		Draining:   s.draining.Load(),
		Rebuilding: s.rebuilding.Load() > 0,
		Serve: serveCounters{
			Inflight:       mInflight.Value(),
			Queue:          mQueue.Value(),
			Admitted:       mAdmitted.Value(),
			Shed:           mShed.Value(),
			Drained:        mDrained.Value(),
			Panics:         mPanics.Value(),
			Slow:           mSlow.Value(),
			RebuildRetries: mRebuildRetries.Value(),
			Swaps:          mSwaps.Value(),
			LatencyP50NS:   mLatency.Quantile(0.50).Nanoseconds(),
			LatencyP99NS:   mLatency.Quantile(0.99).Nanoseconds(),
			QueueWaitP99NS: mQueueWait.Quantile(0.99).Nanoseconds(),
		},
		SLO: s.slo.snap(time.Now()),
	}
	if snap := s.cur.Load(); snap != nil {
		resp.Epoch = snap.Epoch
		resp.BuiltAt = snap.BuiltAt.UTC().Format(time.RFC3339Nano)
		resp.Build = snap.Report.Summary()
		resp.Graph = &graphStats{N: snap.Graph.NumVertices(), M: snap.Graph.NumEdges()}
		resp.Hierarchy = &forestStats{
			Nodes:  snap.Stats.Nodes,
			Roots:  snap.Stats.Roots,
			Height: snap.Stats.Height,
			KMax:   snap.Stats.KMax,
		}
		f := snap.Footprint()
		resp.Footprint = &f
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: /reload requires POST"))
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: draining"))
		return
	}
	triggered := s.triggerReload("reload")
	writeJSON(w, http.StatusAccepted, map[string]bool{"triggered": triggered, "pending": !triggered})
}

// handleHealthz is liveness: the process is up and the handler tree is
// responding. It stays 200 through drains and failed rebuilds — those
// are readiness conditions.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true, "draining": s.draining.Load()})
}

// handleReadyz is readiness: 200 only when a snapshot is published and
// the server is accepting queries, 503 (with the reason) otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"ready":      s.Ready(),
		"draining":   s.draining.Load(),
		"rebuilding": s.rebuilding.Load() > 0,
		"epoch":      s.Epoch(),
	}
	status := http.StatusOK
	if !s.Ready() {
		status = http.StatusServiceUnavailable
		// Not-ready carries Retry-After like every other 503 the service
		// emits, so a probe loop backs off instead of hammering.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, body)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no route %s", r.URL.Path))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"service": "hcdserve",
		"routes":  "/search /reconstruct /stats /reload /healthz /readyz /metrics /trace /debug/requests /debug/",
	})
}
