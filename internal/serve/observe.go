// Request-scoped observability: every request gets an ID (inbound
// X-Request-ID honoured, otherwise generated), a mutable RequestRecord
// travelling in its context for handlers to annotate, a root obs span on
// query routes tagged with the ID so the Chrome-trace export shows the
// request as its own lane, per-route RED metrics, a structured access
// log (plus a
// slow-query log above Config.SlowQuery), the /debug/requests ring and
// the SLO sliding window. The telemetry pieces (spans, metrics, ring,
// SLO window) compile out under the noobs tag via the obs stubs and
// reqobs_noobs.go; the logging and request-ID plumbing stay live in
// every build — an operator's log line is not telemetry.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hcd/internal/faultinject"
	"hcd/internal/obs"
)

// Verdicts classify how a request ended, for the access log, the
// /debug/requests ring and the error-class metric label. Shed verdicts
// are set by the admission pipeline; the rest are derived from the final
// status code (and the panic flag Protect sets).
const (
	verdictServed      = "served"            // 2xx
	verdictClientError = "client-error"      // 4xx other than shed refusals
	verdictShedQueue   = "shed-queue-full"   // 429 at arrival
	verdictShedWait    = "shed-wait-expired" // 503 after queueing
	verdictShedCancel  = "shed-cancelled"    // client left while queued
	verdictShedDrain   = "shed-draining"     // refused during drain
	verdictShedNoSnap  = "shed-not-ready"    // no snapshot published yet
	verdictTimeout     = "timeout"           // 504, query deadline exceeded
	verdictPanic       = "panic"             // contained handler panic
	verdictError       = "error"             // other 5xx
)

// RequestRecord is one completed request as exposed at /debug/requests
// and logged by the access log. Handlers annotate the in-flight record
// through the request context; the completed copy is immutable.
type RequestRecord struct {
	ID          string    `json:"id"`
	Route       string    `json:"route"`
	Method      string    `json:"method"`
	Path        string    `json:"path"`
	Start       time.Time `json:"start"`
	DurationNS  int64     `json:"duration_ns"`
	QueueWaitNS int64     `json:"queue_wait_ns,omitempty"`
	Status      int       `json:"status"`
	Verdict     string    `json:"verdict"`
	Epoch       uint64    `json:"epoch,omitempty"`
	Metric      string    `json:"metric,omitempty"`
	Error       string    `json:"error,omitempty"`
	FaultSite   string    `json:"fault_site,omitempty"`
	Slow        bool      `json:"slow,omitempty"`

	panicked bool
	gated    bool // admission-gated query route: counts toward the SLO window
}

// reqKey carries the in-flight *RequestRecord in the request context.
type reqKey struct{}

// requestFrom returns the in-flight record, nil outside a request.
func requestFrom(ctx context.Context) *RequestRecord {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(reqKey{}).(*RequestRecord)
	return rec
}

// noteError annotates the in-flight record with the error a handler is
// about to respond with, including the fault site of an injected panic,
// so /debug/requests diagnoses a failed request without its body.
func noteError(r *http.Request, err error) {
	rec := requestFrom(r.Context())
	if rec == nil || err == nil {
		return
	}
	rec.Error = err.Error()
	var f *faultinject.Fault
	if errors.As(err, &f) {
		rec.FaultSite = f.Site
	}
}

// Request-ID generation: a per-process base (start time in base 36) plus
// a sequence number. Unique within and across restarts, cheap, and
// trivially greppable.
var (
	ridSeq atomic.Uint64
	// Wall-clock read at init is deliberate: the base makes IDs from two
	// server incarnations distinguishable in aggregated logs.
	ridBase = strconv.FormatInt(time.Now().UnixNano(), 36)
)

// requestID returns the inbound X-Request-ID when it is usable (1-128
// printable non-space ASCII characters) or mints a fresh ID.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); validRequestID(id) {
		return id
	}
	return "r" + ridBase + "-" + strconv.FormatUint(ridSeq.Add(1), 10)
}

func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return false
		}
	}
	return true
}

// statusWriter captures the status code (and whether anything was
// written) so the observed wrapper can classify the response after the
// handler tree — including Protect's contained-panic 500s — has run.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// Flush keeps streaming endpoints (pprof profiles) working through the
// wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// routeStats is one route's RED instrumentation: request rate, errors by
// class, and a latency histogram. Registered once per route at mux
// assembly; all stubs under noobs.
type routeStats struct {
	requests *obs.Counter
	duration *obs.Histogram
	errors   map[string]*obs.Counter
}

// errorClasses are the hcd_serve_route_errors_total class label values.
var errorClasses = []string{"4xx", "5xx", "shed", "timeout", "panic"}

func newRouteStats(route string) *routeStats {
	rs := &routeStats{
		requests: obs.NewCounter(obs.Name("hcd_serve_route_requests_total", "route", route),
			"requests completed on this route"),
		duration: obs.NewHistogram(obs.Name("hcd_serve_route_ns", "route", route),
			"request latency on this route, shed and failed requests included"),
		errors: make(map[string]*obs.Counter, len(errorClasses)),
	}
	for _, class := range errorClasses {
		rs.errors[class] = obs.NewCounter(obs.Name("hcd_serve_route_errors_total", "route", route, "class", class),
			"requests that failed on this route, by failure class")
	}
	return rs
}

// errorClass maps a completed record onto its error-class label, "" for
// a success.
func errorClass(rec *RequestRecord) string {
	switch {
	case rec.Status < 400:
		return ""
	case rec.Verdict == verdictPanic:
		return "panic"
	case rec.Verdict == verdictTimeout:
		return "timeout"
	case rec.Verdict == verdictShedQueue, rec.Verdict == verdictShedWait,
		rec.Verdict == verdictShedCancel, rec.Verdict == verdictShedDrain,
		rec.Verdict == verdictShedNoSnap:
		return "shed"
	case rec.Status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// classify fills the verdict from the final status for records the
// admission pipeline did not already classify.
func classify(rec *RequestRecord) {
	if rec.Verdict != "" {
		return
	}
	switch {
	case rec.panicked:
		rec.Verdict = verdictPanic
	case rec.Status < 400:
		rec.Verdict = verdictServed
	case rec.Status == http.StatusGatewayTimeout:
		rec.Verdict = verdictTimeout
	case rec.Status < 500:
		rec.Verdict = verdictClientError
	default:
		rec.Verdict = verdictError
	}
}

var mSlow = obs.NewCounter("hcd_serve_slow_total",
	"served queries at or above the slow-query threshold")

// observed wraps one route with the request-observability envelope: ID
// assignment and echo, the tagged root span, status capture, verdict
// classification, RED metrics, access/slow logging, the /debug/requests
// ring and the SLO window. It sits outside Protect, so a contained panic
// is still one observed (and correctly classified) request.
func (s *Server) observed(route string, h http.Handler) http.Handler {
	rs := newRouteStats(route)
	opsRoute := route != "search" && route != "reconstruct"
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := requestID(r)
		rec := &RequestRecord{
			ID:     rid,
			Route:  route,
			Method: r.Method,
			Path:   r.URL.Path,
			Start:  start,
			Status: http.StatusOK,
		}
		// Query routes get the tagged root span — their own lane in the
		// trace export. Ops routes (probes, scrapes) are logged, ring'd
		// and counted but not traced per request: a 1 Hz health prober
		// would otherwise spawn a lane per poll and evict the query spans
		// the ring exists to keep. (*Span).End is nil-safe.
		ctx := r.Context()
		var sp *obs.Span
		if !opsRoute {
			ctx = obs.ContextWithTag(ctx, rid)
			sp = obs.StartSpanCtx(ctx, "serve.request")
		}
		ctx = context.WithValue(ctx, reqKey{}, rec)
		// Direct map assignment with the pre-canonicalized key: this is
		// the hottest line of the envelope, and Header().Set would
		// re-canonicalize on every request.
		w.Header()["X-Request-Id"] = []string{rid}
		sw := &statusWriter{ResponseWriter: w}

		defer func() {
			dur := time.Since(start)
			sp.End()
			if sw.wrote {
				rec.Status = sw.status
			}
			rec.DurationNS = dur.Nanoseconds()
			classify(rec)
			slow := rec.gated && rec.Verdict == verdictServed && dur >= s.cfg.SlowQuery
			rec.Slow = slow

			rs.requests.Inc()
			rs.duration.Observe(dur)
			class := errorClass(rec)
			if class != "" {
				rs.errors[class].Inc()
			}
			if slow {
				mSlow.Inc()
			}
			if rec.gated {
				errored := class == "5xx" || class == "panic" || class == "shed" || class == "timeout"
				s.slo.record(start.Add(dur), errored, slow)
			}
			s.ring.add(*rec)
			s.logRequest(rec, opsRoute)
		}()

		h.ServeHTTP(sw, r.WithContext(ctx))
	})
}

// logRequest emits the structured access-log line (and the slow-query
// warning). Query routes log at Info; operational routes (/healthz
// polls, /metrics scrapes) at Debug so a probed server stays quiet at
// the default level.
func (s *Server) logRequest(rec *RequestRecord, opsRoute bool) {
	level := slog.LevelInfo
	switch {
	case rec.Slow:
		level = slog.LevelWarn
	case opsRoute:
		level = slog.LevelDebug
	}
	// The early Enabled check keeps the per-request cost of a disabled
	// level (the common case: ops routes at the default Info floor, or a
	// discarding logger in benchmarks) to one branch — attribute boxing
	// below is the expensive part.
	if !s.slog.Enabled(context.Background(), level) {
		return
	}
	attrs := []any{
		"rid", rec.ID,
		"route", rec.Route,
		"method", rec.Method,
		"verdict", rec.Verdict,
		"status", rec.Status,
		"dur", time.Duration(rec.DurationNS),
	}
	if rec.QueueWaitNS > 0 {
		attrs = append(attrs, "queue_wait", time.Duration(rec.QueueWaitNS))
	}
	if rec.Epoch > 0 {
		attrs = append(attrs, "epoch", rec.Epoch)
	}
	if rec.Metric != "" {
		attrs = append(attrs, "metric", rec.Metric)
	}
	if rec.Error != "" {
		attrs = append(attrs, "error", rec.Error)
	}
	if rec.FaultSite != "" {
		attrs = append(attrs, "fault_site", rec.FaultSite)
	}
	msg := "request"
	if rec.Slow {
		msg = "slow query"
		attrs = append(attrs, "threshold", s.cfg.SlowQuery)
	}
	s.slog.Log(context.Background(), level, msg, attrs...)
}

// knownVerdicts enumerates every verdict the classifier can produce, for
// validating the /debug/requests?verdict= filter: an unknown value is a
// typo (or a stale runbook) and gets a 400 naming the valid set, never a
// silently empty result.
var knownVerdicts = map[string]bool{
	verdictServed:      true,
	verdictClientError: true,
	verdictShedQueue:   true,
	verdictShedWait:    true,
	verdictShedCancel:  true,
	verdictShedDrain:   true,
	verdictShedNoSnap:  true,
	verdictTimeout:     true,
	verdictPanic:       true,
	verdictError:       true,
}

// verdictNames returns the valid filter values, sorted, for error text.
func verdictNames() []string {
	names := make([]string, 0, len(knownVerdicts))
	for v := range knownVerdicts {
		names = append(names, v)
	}
	sort.Strings(names)
	return names
}

// handleDebugRequests serves the completed-request ring, newest first —
// the net/trace-style live view. ?limit=N truncates; ?verdict=panic (or
// any other classifier verdict) filters to matching requests, with
// unknown verdicts rejected as 400. The response is valid (and empty)
// under the noobs build, where the ring is a stub.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	limit, err := formInt(r.URL.Query().Get("limit"), "limit")
	if err != nil || limit < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: bad limit", errBadRequest))
		return
	}
	verdict := r.URL.Query().Get("verdict")
	if verdict != "" && !knownVerdicts[verdict] {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: unknown verdict %q (valid: %s)",
			errBadRequest, verdict, strings.Join(verdictNames(), ", ")))
		return
	}
	// Filter before truncating, so ?verdict=panic&limit=10 means "the 10
	// newest panics", not "panics among the 10 newest requests".
	recs := s.ring.snapshot(0)
	if verdict != "" {
		kept := recs[:0]
		for _, rec := range recs {
			if rec.Verdict == verdict {
				kept = append(kept, rec)
			}
		}
		recs = kept
	}
	if limit > 0 && int64(len(recs)) > limit {
		recs = recs[:limit]
	}
	if recs == nil {
		recs = []RequestRecord{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":  obs.Enabled(),
		"capacity": s.ring.cap(),
		"requests": recs,
	})
}
