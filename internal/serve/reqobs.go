//go:build !noobs

// Request-telemetry state that compiles out under the noobs tag: the
// /debug/requests completed-request ring and the SLO sliding window.
// reqobs_noobs.go mirrors the surface with inert stubs so the serve
// package builds identically either way — the endpoints stay up and
// answer well-formed empty payloads.
package serve

import (
	"sync"
	"time"
)

// reqRing is a fixed-capacity overwrite ring of the most recent
// completed requests, in the spirit of net/trace's request log.
type reqRing struct {
	mu   sync.Mutex
	recs []RequestRecord
	next int // slot the next record lands in
	n    int // records stored, ≤ len(recs)
}

func newReqRing(capacity int) *reqRing {
	if capacity <= 0 {
		capacity = 128
	}
	return &reqRing{recs: make([]RequestRecord, capacity)}
}

func (r *reqRing) add(rec RequestRecord) {
	r.mu.Lock()
	r.recs[r.next] = rec
	r.next = (r.next + 1) % len(r.recs)
	if r.n < len(r.recs) {
		r.n++
	}
	r.mu.Unlock()
}

// snapshot returns up to limit completed requests, newest first; limit
// 0 means all.
func (r *reqRing) snapshot(limit int) []RequestRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]RequestRecord, 0, n)
	for i := 1; i <= n; i++ {
		// Walk backwards from the most recently written slot.
		out = append(out, r.recs[(r.next-i+len(r.recs))%len(r.recs)])
	}
	return out
}

func (r *reqRing) cap() int { return len(r.recs) }

// sloWindow tracks query outcomes over a sliding window of per-second
// buckets. Recording touches exactly one bucket under a short mutex; a
// bucket is lazily reset when its second comes around again, so there is
// no ticker goroutine to manage.
type sloWindow struct {
	mu      sync.Mutex
	buckets []sloBucket // index = unix second mod len
}

type sloBucket struct {
	sec    int64 // unix second this bucket currently represents
	total  int64
	errors int64 // 5xx + sheds + timeouts + contained panics
	slow   int64 // served at or above the slow-query threshold
}

func newSLOWindow(window time.Duration) *sloWindow {
	secs := int(window / time.Second)
	if secs <= 0 {
		secs = 60
	}
	return &sloWindow{buckets: make([]sloBucket, secs)}
}

func (w *sloWindow) record(now time.Time, errored, slow bool) {
	sec := now.Unix()
	w.mu.Lock()
	b := &w.buckets[int(sec%int64(len(w.buckets)))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	b.total++
	if errored {
		b.errors++
	}
	if slow {
		b.slow++
	}
	w.mu.Unlock()
}

// sloSnapshot is the /stats "slo" section: availability is the served
// fraction (1 − errors/total), latencyAttainment the fraction of
// available responses under the slow-query threshold. Both report 1 on
// an idle window — no traffic is no violation.
type sloSnapshot struct {
	WindowSeconds     int     `json:"window_seconds"`
	Total             int64   `json:"total"`
	Errors            int64   `json:"errors"`
	Slow              int64   `json:"slow"`
	Availability      float64 `json:"availability"`
	LatencyAttainment float64 `json:"latency_attainment"`
}

func (w *sloWindow) snap(now time.Time) sloSnapshot {
	cutoff := now.Unix() - int64(len(w.buckets))
	out := sloSnapshot{WindowSeconds: len(w.buckets), Availability: 1, LatencyAttainment: 1}
	w.mu.Lock()
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.sec <= cutoff || b.total == 0 {
			continue
		}
		out.Total += b.total
		out.Errors += b.errors
		out.Slow += b.slow
	}
	w.mu.Unlock()
	if out.Total > 0 {
		out.Availability = 1 - float64(out.Errors)/float64(out.Total)
	}
	if ok := out.Total - out.Errors; ok > 0 {
		out.LatencyAttainment = 1 - float64(out.Slow)/float64(ok)
	}
	return out
}
