package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"hcd"
)

// Sentinel errors the handlers map onto status codes. errBadRequest
// wraps every client-input failure (400); the rest are server states.
var (
	errBadRequest    = errors.New("bad request")
	errRebuildFailed = errors.New("serve: rebuild failed; no snapshot published")
)

// maxBodyBytes bounds a POST body; a decoder fed unbounded input is a
// memory-exhaustion vector for a resident process.
const maxBodyBytes = 1 << 20

// maxWeightedTerms bounds an assembled metric; each term costs a full
// scoring pass worth of arithmetic per tree node.
const maxWeightedTerms = 16

// maxTimeoutMS bounds the client-requested deadline (the effective
// deadline is additionally capped by Config.RequestTimeout).
const maxTimeoutMS = 10 * 60 * 1000

// SearchRequest is the decoded form of a /search query, accepted as
// URL query parameters (GET) or a JSON body (POST):
//
//	GET  /search?metric=average-degree&min_size=10&timeout_ms=500
//	GET  /search?weighted=average-degree:1,cut-ratio:0.5
//	POST /search {"metric":"conductance","min_size":10,"max_size":500}
type SearchRequest struct {
	// Metric names a built-in metric; empty defaults to average-degree
	// unless Weighted is set.
	Metric string `json:"metric,omitempty"`
	// Weighted assembles a linear-combination metric; mutually
	// exclusive with Metric.
	Weighted []WeightedTerm `json:"weighted,omitempty"`
	// MinSize/MaxSize restrict the search to k-cores with vertex count
	// in [MinSize, MaxSize]; 0 means unconstrained on that side.
	MinSize int64 `json:"min_size,omitempty"`
	MaxSize int64 `json:"max_size,omitempty"`
	// TimeoutMS, when positive, lowers this query's deadline below the
	// server's RequestTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// WeightedTerm is one (metric, coefficient) component of an assembled
// metric. Coefficients must be finite and non-negative.
type WeightedTerm struct {
	Metric string  `json:"metric"`
	Coeff  float64 `json:"coeff"`
}

// DecodeSearchRequest parses and validates a /search request from
// either encoding. Every failure — unknown metric, non-finite or
// negative coefficient, inverted or overflowing size range, malformed
// JSON — wraps errBadRequest; the decoder must never panic (fuzzed by
// FuzzServeRequest).
func DecodeSearchRequest(r *http.Request) (SearchRequest, hcd.Metric, error) {
	var req SearchRequest
	var err error
	switch r.Method {
	case http.MethodGet:
		req, err = searchRequestFromQuery(r)
	case http.MethodPost:
		req, err = searchRequestFromJSON(r)
	default:
		return req, nil, fmt.Errorf("%w: method %s not allowed (use GET or POST)", errBadRequest, r.Method)
	}
	if err != nil {
		return req, nil, err
	}
	m, err := req.resolveMetric()
	if err != nil {
		return req, nil, err
	}
	if err := req.validateSizes(); err != nil {
		return req, nil, err
	}
	if req.TimeoutMS < 0 || req.TimeoutMS > maxTimeoutMS {
		return req, nil, fmt.Errorf("%w: timeout_ms %d out of range [0, %d]", errBadRequest, req.TimeoutMS, maxTimeoutMS)
	}
	return req, m, nil
}

func searchRequestFromQuery(r *http.Request) (SearchRequest, error) {
	var req SearchRequest
	q := r.URL.Query()
	req.Metric = q.Get("metric")
	var err error
	if req.MinSize, err = formInt(q.Get("min_size"), "min_size"); err != nil {
		return req, err
	}
	if req.MaxSize, err = formInt(q.Get("max_size"), "max_size"); err != nil {
		return req, err
	}
	if req.TimeoutMS, err = formInt(q.Get("timeout_ms"), "timeout_ms"); err != nil {
		return req, err
	}
	if w := q.Get("weighted"); w != "" {
		for _, pair := range strings.Split(w, ",") {
			name, coeff, ok := strings.Cut(pair, ":")
			if !ok {
				return req, fmt.Errorf("%w: weighted term %q is not metric:coeff", errBadRequest, pair)
			}
			c, err := strconv.ParseFloat(coeff, 64)
			if err != nil {
				return req, fmt.Errorf("%w: weighted coefficient %q: %v", errBadRequest, coeff, err)
			}
			req.Weighted = append(req.Weighted, WeightedTerm{Metric: name, Coeff: c})
		}
	}
	return req, nil
}

func searchRequestFromJSON(r *http.Request) (SearchRequest, error) {
	var req SearchRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("%w: decoding JSON body: %v", errBadRequest, err)
	}
	return req, nil
}

// formInt parses one optional non-negative integer parameter.
func formInt(s, name string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %s=%q: %v", errBadRequest, name, s, err)
	}
	return v, nil
}

// resolveMetric turns the request's metric spec into an hcd.Metric.
// strconv.ParseFloat happily parses "NaN" and "Inf", so finiteness is
// an explicit check here, not a parse-time freebie.
func (req *SearchRequest) resolveMetric() (hcd.Metric, error) {
	if len(req.Weighted) > 0 {
		if req.Metric != "" {
			return nil, fmt.Errorf("%w: metric and weighted are mutually exclusive", errBadRequest)
		}
		if len(req.Weighted) > maxWeightedTerms {
			return nil, fmt.Errorf("%w: %d weighted terms exceeds the limit of %d", errBadRequest, len(req.Weighted), maxWeightedTerms)
		}
		terms := make([]hcd.MetricTerm, 0, len(req.Weighted))
		for _, t := range req.Weighted {
			m, err := hcd.MetricByName(t.Metric)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", errBadRequest, err)
			}
			if math.IsNaN(t.Coeff) || math.IsInf(t.Coeff, 0) || t.Coeff < 0 {
				return nil, fmt.Errorf("%w: weighted coefficient for %s must be finite and non-negative, got %v", errBadRequest, t.Metric, t.Coeff)
			}
			terms = append(terms, hcd.MetricTerm{Metric: m, Coeff: t.Coeff})
		}
		return hcd.WeightedMetric("", terms...), nil
	}
	name := req.Metric
	if name == "" {
		name = "average-degree"
	}
	m, err := hcd.MetricByName(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return m, nil
}

// validateSizes rejects negative and inverted size constraints (the
// "bad k-ranges" class: min_size=-1, max_size < min_size, values that
// overflowed ParseInt are already rejected there).
func (req *SearchRequest) validateSizes() error {
	if req.MinSize < 0 {
		return fmt.Errorf("%w: min_size %d is negative", errBadRequest, req.MinSize)
	}
	if req.MaxSize < 0 {
		return fmt.Errorf("%w: max_size %d is negative", errBadRequest, req.MaxSize)
	}
	if req.MaxSize > 0 && req.MaxSize < req.MinSize {
		return fmt.Errorf("%w: max_size %d < min_size %d", errBadRequest, req.MaxSize, req.MinSize)
	}
	return nil
}

// ReconstructRequest is the decoded form of a /reconstruct query:
// either a tree node id (node=) or a vertex + coreness pair (v=, k=)
// naming "the k-core containing v". limit caps the returned vertex
// list; 0 means unlimited.
type ReconstructRequest struct {
	Node    int64 `json:"node"`
	V       int64 `json:"v"`
	K       int64 `json:"k"`
	Limit   int64 `json:"limit,omitempty"`
	byNode  bool
	byLocal bool
}

// DecodeReconstructRequest parses and validates a /reconstruct request
// (GET query parameters only — the request is four small integers).
func DecodeReconstructRequest(r *http.Request) (ReconstructRequest, error) {
	var req ReconstructRequest
	if r.Method != http.MethodGet {
		return req, fmt.Errorf("%w: method %s not allowed (use GET)", errBadRequest, r.Method)
	}
	q := r.URL.Query()
	var err error
	req.byNode = q.Get("node") != ""
	hasV, hasK := q.Get("v") != "", q.Get("k") != ""
	req.byLocal = hasV || hasK
	if req.byNode == req.byLocal {
		return req, fmt.Errorf("%w: pass exactly one of node= or v=&k=", errBadRequest)
	}
	if req.byLocal && (!hasV || !hasK) {
		return req, fmt.Errorf("%w: v= and k= are both required", errBadRequest)
	}
	if req.Node, err = formInt(q.Get("node"), "node"); err != nil {
		return req, err
	}
	if req.V, err = formInt(q.Get("v"), "v"); err != nil {
		return req, err
	}
	if req.K, err = formInt(q.Get("k"), "k"); err != nil {
		return req, err
	}
	if req.Limit, err = formInt(q.Get("limit"), "limit"); err != nil {
		return req, err
	}
	if req.Node < 0 || req.V < 0 || req.Limit < 0 {
		return req, fmt.Errorf("%w: node, v and limit must be non-negative", errBadRequest)
	}
	if req.byLocal && req.K < 1 {
		return req, fmt.Errorf("%w: k must be >= 1", errBadRequest)
	}
	if req.Node > math.MaxInt32 || req.V > math.MaxInt32 || req.K > math.MaxInt32 {
		return req, fmt.Errorf("%w: node, v and k must fit in int32", errBadRequest)
	}
	return req, nil
}
