package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestFootprintDeterministic pins the resident-footprint account: pure
// arithmetic over array lengths, so repeated calls agree exactly, every
// component of a published snapshot is populated, and the total is the
// sum of the parts (aliased storage counted once).
func TestFootprintDeterministic(t *testing.T) {
	s := newTestServer(t, nil)
	publish(t, s)
	snap := s.cur.Load()
	f1, f2 := snap.Footprint(), snap.Footprint()
	if f1 != f2 {
		t.Fatalf("footprint not deterministic: %+v vs %+v", f1, f2)
	}
	if f1.GraphBytes <= 0 || f1.CoreBytes <= 0 || f1.HierarchyBytes <= 0 ||
		f1.IndexBytes <= 0 || f1.LocalBytes <= 0 {
		t.Fatalf("zero component in a published snapshot: %+v", f1)
	}
	sum := f1.GraphBytes + f1.CoreBytes + f1.HierarchyBytes + f1.IndexBytes + f1.LocalBytes
	if f1.TotalBytes != sum {
		t.Fatalf("total %d != component sum %d", f1.TotalBytes, sum)
	}
	// The CSR arithmetic is exact: 8(n+1) offsets + 4·2m adjacency.
	g := snap.Graph
	wantGraph := int64(g.NumVertices()+1)*8 + g.NumEdges()*2*4
	if f1.GraphBytes != wantGraph {
		t.Fatalf("graph bytes = %d, want %d (8(n+1) + 8m)", f1.GraphBytes, wantGraph)
	}
}

// TestStatsReportsFootprint checks /stats surfaces the footprint block
// with the same numbers Snapshot.Footprint computes.
func TestStatsReportsFootprint(t *testing.T) {
	s := newTestServer(t, nil)
	publish(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, body := get(t, ts, "/stats")
	if status != http.StatusOK {
		t.Fatalf("/stats: status %d", status)
	}
	fp, ok := body["footprint"].(map[string]any)
	if !ok {
		t.Fatalf("/stats missing footprint block: %v", body)
	}
	want := s.cur.Load().Footprint()
	if got := int64(fp["total_bytes"].(float64)); got != want.TotalBytes {
		t.Errorf("/stats total_bytes = %d, want %d", got, want.TotalBytes)
	}
	if got := int64(fp["graph_bytes"].(float64)); got != want.GraphBytes {
		t.Errorf("/stats graph_bytes = %d, want %d", got, want.GraphBytes)
	}
}
