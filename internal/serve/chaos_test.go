package serve

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hcd/internal/faultinject"
)

// TestChaosDrainUnderLoad is the acceptance chaos test: with faults
// armed at all four serve.* sites (the CI chaos-smoke job overrides the
// spec via HCD_FAULTS) and concurrent clients hammering every endpoint,
// the server must shed with the documented status codes, contain every
// injected panic into a complete JSON 500, keep swapping snapshots
// under /reload pressure without ever serving a nil or partial index,
// and — with cancellation delivered mid-load, modelling SIGTERM — drain
// and return nil, the process's exit-0 path. Run it with -race.
func TestChaosDrainUnderLoad(t *testing.T) {
	defaultSpec := false
	if faultinject.Compiled() {
		spec := os.Getenv("HCD_FAULTS")
		if spec == "" {
			spec = "serve.admit:panic:13,serve.query:panic:7,serve.rebuild:panic:2,serve.swap:panic:3"
			defaultSpec = true
		}
		if err := faultinject.Enable(spec); err != nil {
			t.Fatal(err)
		}
		defer faultinject.Disable()
	}

	// Tight admission limits so the load loop provokes real shedding.
	s := newTestServer(t, func(c *Config) {
		c.MaxInflight = 2
		c.QueueDepth = 2
		c.QueueWait = 2 * time.Millisecond
		c.DrainTimeout = 5 * time.Second
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx, ln) }()

	wctx, wcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer wcancel()
	if err := s.WaitReady(wctx); err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	var (
		wg        sync.WaitGroup
		stop      = make(chan struct{})
		served    atomic.Int64 // 200s observed
		shed      atomic.Int64 // 429/503s observed
		contained atomic.Int64 // 500s observed (injected faults)
		badStatus atomic.Int64
		torn      atomic.Int64
	)
	allowed := map[int]bool{
		http.StatusOK: true, http.StatusAccepted: true,
		http.StatusBadRequest: true, http.StatusTooManyRequests: true,
		http.StatusInternalServerError: true, http.StatusServiceUnavailable: true,
		http.StatusGatewayTimeout: true,
	}
	paths := []string{
		"/search?metric=average-degree",
		"/search?weighted=average-degree:1,conductance:1&min_size=2",
		"/search?metric=clustering-coefficient",
		"/reconstruct?node=0",
		"/reconstruct?v=1&k=1",
		"/readyz",
		"/stats",
	}
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(base + paths[(id+j)%len(paths)])
				if err != nil {
					// Connection refused/reset once the drain closes the
					// listener; not a protocol violation.
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if !allowed[resp.StatusCode] {
					badStatus.Add(1)
					t.Errorf("unexpected status %d for %s: %s", resp.StatusCode, paths[(id+j)%len(paths)], body)
				}
				// Every response body, success or refusal, must be one
				// complete JSON document — never torn by a panic, a swap,
				// or the drain.
				if rerr != nil || !json.Valid(body) {
					torn.Add(1)
					t.Errorf("torn response (read err %v): %q", rerr, body)
				}
				switch resp.StatusCode {
				case http.StatusOK:
					served.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					shed.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("shed %d without Retry-After", resp.StatusCode)
					}
				case http.StatusInternalServerError:
					contained.Add(1)
				}
			}
		}(i)
	}
	// Reload pressure: keep the rebuild/swap path hot under load so the
	// serve.rebuild and serve.swap faults fire while queries fly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			resp, err := client.Post(base+"/reload", "application/json", nil)
			if err == nil {
				resp.Body.Close()
			}
		}
	}()

	// Let the storm run, then deliver the shutdown mid-load.
	time.Sleep(500 * time.Millisecond)
	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Errorf("Run returned %v mid-chaos, want nil (exit-0 drain)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain never completed")
	}
	close(stop)
	wg.Wait()

	if served.Load() == 0 {
		t.Error("no request was served during the chaos run")
	}
	if s.Epoch() == 0 || s.cur.Load() == nil {
		t.Errorf("no snapshot published (epoch %d)", s.Epoch())
	}
	t.Logf("chaos: served=%d shed=%d contained-500s=%d epochs=%d",
		served.Load(), shed.Load(), contained.Load(), s.Epoch())
	if defaultSpec {
		// With the default spec every serve.* site must have been
		// evaluated; the query/admit sites fire mid-load and surface as
		// contained 500s rather than a crash.
		for _, site := range []string{"serve.admit", "serve.query", "serve.rebuild", "serve.swap"} {
			if faultinject.Hits(site) == 0 {
				t.Errorf("site %s was never evaluated under chaos", site)
			}
		}
		if contained.Load() == 0 {
			t.Error("no injected fault surfaced as a contained 500")
		}
	}
}
