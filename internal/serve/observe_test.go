//go:build !noobs

package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hcd/internal/obs"
)

// logBuffer is a goroutine-safe sink for the structured log.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitFor polls cond for up to a second — the access log and ring are
// written in the observed wrapper's defer, which may still be running
// when the client has the response.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRequestIDCorrelation is the end-to-end slice of the request
// observability layer: one request ID, supplied by the client, must
// come back on the response header and correlate the structured access
// log, the /debug/requests ring, and the exported Chrome trace.
func TestRequestIDCorrelation(t *testing.T) {
	logs := &logBuffer{}
	s := newTestServer(t, func(c *Config) {
		c.Logger = slog.New(slog.NewJSONHandler(logs, nil))
	})
	publish(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const rid = "rid-e2e-correlate-42"
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/search?metric=average-degree", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", rid)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != rid {
		t.Errorf("response X-Request-ID = %q, want %q", got, rid)
	}
	if resp.Header.Get("X-Queue-Wait-Ns") == "" {
		t.Error("admitted response missing X-Queue-Wait-Ns")
	}

	// Correlation point 1: the access log line carries the rid plus the
	// serving context.
	waitFor(t, "access log line", func() bool { return strings.Contains(logs.String(), rid) })
	var line map[string]any
	for _, l := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("log line is not JSON: %q", l)
		}
		if m["rid"] == rid {
			line = m
		}
	}
	if line == nil {
		t.Fatalf("no log line with rid %q:\n%s", rid, logs.String())
	}
	for k, want := range map[string]any{
		"route": "search", "verdict": verdictServed, "status": float64(200),
		"epoch": float64(1), "metric": "average-degree",
	} {
		if line[k] != want {
			t.Errorf("log %s = %v, want %v", k, line[k], want)
		}
	}

	// Correlation point 2: /debug/requests holds the completed record
	// under the same ID.
	var rec map[string]any
	waitFor(t, "/debug/requests record", func() bool {
		_, body := get(t, ts, "/debug/requests")
		for _, r := range body["requests"].([]any) {
			m := r.(map[string]any)
			if m["id"] == rid {
				rec = m
				return true
			}
		}
		return false
	})
	if rec["route"] != "search" || rec["verdict"] != verdictServed {
		t.Errorf("ring record = %v, want served search", rec)
	}
	if rec["epoch"] != float64(1) {
		t.Errorf("ring epoch = %v, want 1", rec["epoch"])
	}

	// Correlation point 3: the exported Chrome trace tags the request's
	// span tree — the serve.request root and the nested search spans all
	// carry args.rid, so they share one per-request lane.
	var trace bytes.Buffer
	if err := obs.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	out := trace.String()
	if n := strings.Count(out, rid); n < 2 {
		t.Fatalf("trace mentions rid %d times, want the full span tree (>= 2):\n%s", n, out)
	}
	for _, span := range []string{`"serve.request"`, `"serve.request.exec"`, `"search"`} {
		if !strings.Contains(out, span) {
			t.Errorf("trace missing span %s", span)
		}
	}
}

// TestObservedShedAndGeneratedID checks a refused request is classified
// (not-ready shed before any snapshot exists), gets a generated ID when
// the inbound one is unusable, and lands in the ring with its error.
func TestObservedShedAndGeneratedID(t *testing.T) {
	s := newTestServer(t, nil) // no snapshot published
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/search?metric=average-degree", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "bad id with spaces") // must be replaced
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	rid := resp.Header.Get("X-Request-ID")
	if rid == "" || strings.Contains(rid, " ") {
		t.Fatalf("generated rid %q must be non-empty and space-free", rid)
	}

	waitFor(t, "shed record in ring", func() bool {
		_, body := get(t, ts, "/debug/requests")
		for _, r := range body["requests"].([]any) {
			m := r.(map[string]any)
			if m["id"] == rid {
				return m["verdict"] == verdictShedNoSnap &&
					m["status"] == float64(503) &&
					m["error"] != ""
			}
		}
		return false
	})
}

// TestPanicVerdict checks a contained handler panic is classified as
// one panicked request: 500 on the wire, verdict "panic" in the ring.
func TestPanicVerdict(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.observed("search", Protect(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	recs := s.ring.snapshot(1)
	if len(recs) != 1 {
		t.Fatalf("ring has %d records, want 1", len(recs))
	}
	if recs[0].Verdict != verdictPanic || recs[0].Status != 500 {
		t.Errorf("record = %+v, want panic/500", recs[0])
	}
	if !strings.Contains(recs[0].Error, "kaboom") {
		t.Errorf("record error %q does not carry the panic value", recs[0].Error)
	}
}

// TestSlowQueryLog checks a served query at or above the threshold is
// logged at Warn and marked slow in the ring.
func TestSlowQueryLog(t *testing.T) {
	logs := &logBuffer{}
	s := newTestServer(t, func(c *Config) {
		c.Logger = slog.New(slog.NewJSONHandler(logs, nil))
		c.SlowQuery = time.Nanosecond // everything is slow
	})
	publish(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if status, body := get(t, ts, "/search?metric=average-degree"); status != http.StatusOK {
		t.Fatalf("status %d body %v", status, body)
	}
	waitFor(t, "slow-query warning", func() bool {
		return strings.Contains(logs.String(), "slow query") &&
			strings.Contains(logs.String(), `"WARN"`)
	})
	waitFor(t, "slow record", func() bool {
		recs := s.ring.snapshot(0)
		for _, r := range recs {
			if r.Route == "search" && r.Slow {
				return true
			}
		}
		return false
	})
}

// TestDebugRequestsLimit checks ordering (newest first) and the limit
// parameter.
func TestDebugRequestsLimit(t *testing.T) {
	s := newTestServer(t, nil)
	publish(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		get(t, ts, "/healthz")
	}
	waitFor(t, "three ring records", func() bool { return len(s.ring.snapshot(0)) >= 3 })
	_, body := get(t, ts, "/debug/requests?limit=1")
	reqs := body["requests"].([]any)
	// The /debug/requests call itself may have landed in the ring before
	// this response was assembled; only the count is deterministic.
	if len(reqs) != 1 {
		t.Fatalf("limit=1 returned %d records", len(reqs))
	}
	if status, _ := get(t, ts, "/debug/requests?limit=bogus"); status != http.StatusBadRequest {
		t.Errorf("bad limit: status %d, want 400", status)
	}
}

// TestDebugRequestsVerdictFilter checks ?verdict= narrows the ring to
// matching records (filtering before the limit), and that an unknown
// verdict is rejected with 400 naming the valid set.
func TestDebugRequestsVerdictFilter(t *testing.T) {
	s := newTestServer(t, nil)
	publish(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get(t, ts, "/search?metric=average-degree") // served
	get(t, ts, "/search?metric=bogus")          // client-error
	waitFor(t, "both records in the ring", func() bool {
		var served, clientErr bool
		for _, r := range s.ring.snapshot(0) {
			switch r.Verdict {
			case verdictServed:
				served = true
			case verdictClientError:
				clientErr = true
			}
		}
		return served && clientErr
	})

	_, body := get(t, ts, "/debug/requests?verdict=client-error")
	reqs := body["requests"].([]any)
	if len(reqs) == 0 {
		t.Fatal("verdict=client-error matched nothing")
	}
	for _, raw := range reqs {
		rec := raw.(map[string]any)
		if rec["verdict"] != verdictClientError {
			t.Errorf("filtered result carries verdict %v, want %s", rec["verdict"], verdictClientError)
		}
	}

	// Filter applies before the limit: limit=1 on a filtered view still
	// returns a matching record, not "the newest request if it matches".
	_, body = get(t, ts, "/debug/requests?verdict=client-error&limit=1")
	reqs = body["requests"].([]any)
	if len(reqs) != 1 || reqs[0].(map[string]any)["verdict"] != verdictClientError {
		t.Errorf("verdict+limit returned %v", reqs)
	}

	status, body := get(t, ts, "/debug/requests?verdict=not-a-verdict")
	if status != http.StatusBadRequest {
		t.Fatalf("unknown verdict: status %d, want 400", status)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, verdictPanic) {
		t.Errorf("400 body should name the valid verdicts, got %q", msg)
	}
}

// TestSLOWindowMath pins the sliding-window arithmetic: availability
// excludes errors, attainment excludes slow responses, idle reports 1,
// and buckets age out of the window.
func TestSLOWindowMath(t *testing.T) {
	w := newSLOWindow(10 * time.Second)
	now := time.Unix(1000, 0)
	idle := w.snap(now)
	if idle.Availability != 1 || idle.LatencyAttainment != 1 || idle.Total != 0 {
		t.Fatalf("idle snapshot = %+v, want 1/1/0", idle)
	}
	for i := 0; i < 6; i++ {
		w.record(now, false, false)
	}
	w.record(now, true, false) // one error
	w.record(now, false, true) // one slow success
	got := w.snap(now)
	if got.Total != 8 || got.Errors != 1 || got.Slow != 1 {
		t.Fatalf("counts = %+v, want 8/1/1", got)
	}
	if want := 1 - 1.0/8; got.Availability != want {
		t.Errorf("availability = %v, want %v", got.Availability, want)
	}
	if want := 1 - float64(1)/float64(7); got.LatencyAttainment != want {
		t.Errorf("attainment = %v, want %v", got.LatencyAttainment, want)
	}
	// The whole window ages out.
	aged := w.snap(now.Add(30 * time.Second))
	if aged.Total != 0 || aged.Availability != 1 {
		t.Errorf("aged snapshot = %+v, want empty", aged)
	}
}

// TestStatsSLOSection checks /stats carries the SLO block and that a
// served query moves its totals.
func TestStatsSLOSection(t *testing.T) {
	s := newTestServer(t, nil)
	publish(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get(t, ts, "/search?metric=average-degree")
	waitFor(t, "slo total", func() bool {
		_, body := get(t, ts, "/stats")
		slo := body["slo"].(map[string]any)
		return slo["total"].(float64) >= 1
	})
	_, body := get(t, ts, "/stats")
	slo := body["slo"].(map[string]any)
	if slo["window_seconds"].(float64) != 60 {
		t.Errorf("window_seconds = %v, want default 60", slo["window_seconds"])
	}
	if slo["availability"].(float64) <= 0 {
		t.Errorf("availability = %v, want > 0", slo["availability"])
	}
}

// TestMetricsScrapeUnderStorm scrapes /metrics while a request storm is
// in flight and checks the exposition stays valid Prometheus text
// format carrying the serve metric families — the mid-storm scrape the
// CI chaos job performs.
func TestMetricsScrapeUnderStorm(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxInflight = 2
		c.QueueDepth = 64
		c.QueueWait = time.Minute
	})
	publish(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := ts.Client().Get(ts.URL + "/search?metric=average-degree")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	for scrape := 0; scrape < 3; scrape++ {
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var body bytes.Buffer
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %d: status %d", scrape, resp.StatusCode)
		}
		validatePrometheus(t, body.String())
	}
}

// validatePrometheus checks text-format shape line by line and the
// presence of the request-observability metric families.
func validatePrometheus(t *testing.T, out string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("metric line %q: want 'name value'", line)
		}
		name := fields[0]
		if strings.ContainsAny(name, " \t") || (strings.Contains(name, "{") && !strings.HasSuffix(name, "}")) {
			t.Fatalf("malformed metric name %q", name)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("metric line %q: bad value: %v", line, err)
		}
	}
	for _, fam := range []string{
		"hcd_serve_route_requests_total{route=\"search\"}",
		"hcd_serve_route_ns",
		"hcd_serve_queue_wait_ns",
		"hcd_serve_epoch",
		"hcd_serve_snapshot_age_ns",
		"hcd_serve_rebuild_lag_ns",
		"hcd_serve_slots_total",
		"hcd_serve_slot_utilization_pct",
		"hcd_serve_slow_total",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("exposition missing family %s", fam)
		}
	}
}
