//go:build noobs

package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestNoobsObservabilityEndpoints checks the observability surface stays
// up when telemetry is compiled out: /stats still carries a well-formed
// (idle-valued) SLO section, /metrics answers 200, and /debug/requests
// reports itself disabled with an empty — not missing, not panicking —
// request list.
func TestNoobsObservabilityEndpoints(t *testing.T) {
	s := newTestServer(t, nil)
	publish(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A query exercises the full observed path (ID assignment, verdicts,
	// stub ring/SLO writes) before the endpoints are read back.
	status, _ := get(t, ts, "/search?metric=average-degree")
	if status != http.StatusOK {
		t.Fatalf("search status %d, want 200", status)
	}

	status, body := get(t, ts, "/stats")
	if status != http.StatusOK {
		t.Fatalf("stats status %d, want 200", status)
	}
	slo, ok := body["slo"].(map[string]any)
	if !ok {
		t.Fatalf("stats body has no slo section: %v", body)
	}
	if slo["window_seconds"].(float64) <= 0 {
		t.Errorf("slo window_seconds = %v, want > 0", slo["window_seconds"])
	}
	// The stub window records nothing, so both objectives read as met.
	if slo["availability"].(float64) != 1 || slo["latency_attainment"].(float64) != 1 {
		t.Errorf("stub slo = %v, want availability/attainment 1", slo)
	}

	status, body = get(t, ts, "/debug/requests")
	if status != http.StatusOK {
		t.Fatalf("debug/requests status %d, want 200", status)
	}
	if enabled := body["enabled"].(bool); enabled {
		t.Error("debug/requests enabled = true under noobs")
	}
	reqs, ok := body["requests"].([]any)
	if !ok {
		t.Fatalf("debug/requests requests is %T, want empty array", body["requests"])
	}
	if len(reqs) != 0 {
		t.Errorf("stub ring returned %d requests, want 0", len(reqs))
	}

	// /metrics is served by the obs stub handler: 200 and non-empty, even
	// though there is nothing to report.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d, want 200", resp.StatusCode)
	}
	if out.Len() == 0 {
		t.Error("metrics body is empty, want a notice")
	}

	// Request IDs are operational plumbing, not telemetry: they must
	// survive the noobs build.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/search?metric=average-degree", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "noobs-rid-7")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "noobs-rid-7" {
		t.Errorf("X-Request-ID = %q, want echo under noobs", got)
	}
}
