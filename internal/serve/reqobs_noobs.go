//go:build noobs

// Inert mirrors of reqobs.go for the noobs build: the /debug/requests
// ring and the SLO window keep their surface but record nothing, so the
// endpoints stay up with well-formed empty payloads and the request hot
// path pays only an inline-able no-op call.
package serve

import "time"

type reqRing struct{}

func newReqRing(int) *reqRing { return &reqRing{} }

func (*reqRing) add(RequestRecord) {}

func (*reqRing) snapshot(int) []RequestRecord { return nil }

func (*reqRing) cap() int { return 0 }

type sloWindow struct{ secs int }

func newSLOWindow(window time.Duration) *sloWindow {
	secs := int(window / time.Second)
	if secs <= 0 {
		secs = 60
	}
	return &sloWindow{secs: secs}
}

func (*sloWindow) record(time.Time, bool, bool) {}

type sloSnapshot struct {
	WindowSeconds     int     `json:"window_seconds"`
	Total             int64   `json:"total"`
	Errors            int64   `json:"errors"`
	Slow              int64   `json:"slow"`
	Availability      float64 `json:"availability"`
	LatencyAttainment float64 `json:"latency_attainment"`
}

func (w *sloWindow) snap(time.Time) sloSnapshot {
	return sloSnapshot{WindowSeconds: w.secs, Availability: 1, LatencyAttainment: 1}
}
