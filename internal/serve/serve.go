// Package serve implements the resident HCD query service behind
// cmd/hcdserve: a long-running HTTP+JSON server that keeps one built
// index (a Snapshot) in memory and answers subgraph-search, core
// reconstruction, and stats queries against it.
//
// The package is organised around three robustness mechanisms, all
// exercised deterministically by the chaos tests via the faultinject
// sites serve.admit, serve.query, serve.rebuild and serve.swap:
//
//   - Admission control and load shedding: at most MaxInflight queries
//     execute concurrently; up to QueueDepth more wait at most QueueWait
//     for a slot. Arrivals beyond the queue are shed with 429, waiters
//     that time out with 503, both carrying Retry-After. See admission.go.
//   - Crash-free degradation: every handler runs under Protect, which
//     recovers panics (including injected faults and *par.PanicError
//     from the query kernels) into a buffered JSON 500 carrying the
//     fault chain — the process never dies to a bad query. Responses
//     are marshalled fully before the first byte is written, so a
//     failure never tears a partial JSON body onto the wire.
//   - Atomic snapshot swap: queries read one immutable *Snapshot via an
//     atomic pointer. A background rebuild (triggered by /reload or a
//     watched input file) builds the next snapshot off to the side and
//     publishes it with a single pointer swap, retrying with
//     exponential backoff + jitter on failure while the last-good
//     snapshot keeps serving. See snapshot.go.
//
// Graceful drain: cancelling the context passed to Run stops admission
// (503 + Retry-After), lets in-flight queries finish against
// DrainTimeout, then hard-cancels their contexts (the query kernels
// abort at chunk boundaries) before closing. /healthz reports process
// liveness always; /readyz reports snapshot readiness and flips to 503
// the moment the drain starts.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hcd"
	"hcd/internal/obs"
)

// Service counters and gauges, registered once at package init and
// exported at /metrics alongside the build/search instrumentation.
var (
	mInflight = obs.NewGauge("hcd_serve_inflight",
		"queries currently executing")
	mQueue = obs.NewGauge("hcd_serve_queue",
		"queries waiting for an execution slot")
	mAdmitted = obs.NewCounter("hcd_serve_admitted_total",
		"requests admitted for execution")
	mShed = obs.NewCounter("hcd_serve_shed_total",
		"requests refused by admission control (queue full, wait timeout, draining, not ready)")
	mDrained = obs.NewCounter("hcd_serve_drained_total",
		"admitted requests that completed during drain")
	mPanics = obs.NewCounter("hcd_serve_panics_total",
		"handler panics contained into 500 responses")
	mRebuildRetries = obs.NewCounter("hcd_serve_rebuild_retries_total",
		"snapshot rebuild attempts that failed and were retried")
	mRebuildAbandoned = obs.NewCounter("hcd_serve_rebuild_abandoned_total",
		"rebuild rounds abandoned after exhausting RebuildMaxAttempts")
	mSwaps = obs.NewCounter("hcd_serve_swaps_total",
		"snapshots published by pointer swap")
	mLatency = obs.NewHistogram("hcd_serve_request_ns",
		"admitted request latency")
	mQueueWait = obs.NewHistogram("hcd_serve_queue_wait_ns",
		"time admitted requests spent waiting for an execution slot")

	// Capacity and freshness gauges. The static pair is set once in New;
	// the rest are recomputed by refreshGauges at each /metrics scrape and
	// /stats call, so a scrape always sees current values without a
	// background ticker.
	gSlotsTotal = obs.NewGauge("hcd_serve_slots_total",
		"configured execution slots (MaxInflight)")
	gQueueCap = obs.NewGauge("hcd_serve_queue_capacity",
		"configured admission queue depth")
	gSlotUtil = obs.NewGauge("hcd_serve_slot_utilization_pct",
		"execution slots in use, percent of MaxInflight")
	gEpoch = obs.NewGauge("hcd_serve_epoch",
		"epoch of the published snapshot, 0 before the first publish")
	gSnapAge = obs.NewGauge("hcd_serve_snapshot_age_ns",
		"age of the published snapshot")
	gRebuildLag = obs.NewGauge("hcd_serve_rebuild_lag_ns",
		"elapsed time of the in-progress rebuild round, 0 when idle")

	// Resident-footprint gauges: the published snapshot's deterministic
	// per-component byte account (Snapshot.Footprint — array lengths, not
	// heap sampling), refreshed with the other gauges at each scrape.
	gFootTotal = obs.NewGauge("hcd_serve_footprint_bytes",
		"published snapshot resident footprint, all components")
	gFootGraph = obs.NewGauge("hcd_serve_footprint_graph_bytes",
		"published snapshot footprint: CSR graph (offsets + adjacency)")
	gFootCore = obs.NewGauge("hcd_serve_footprint_core_bytes",
		"published snapshot footprint: coreness array")
	gFootHier = obs.NewGauge("hcd_serve_footprint_hierarchy_bytes",
		"published snapshot footprint: HCD forest")
	gFootIndex = obs.NewGauge("hcd_serve_footprint_index_bytes",
		"published snapshot footprint: search index (layout or gt/eq arrays)")
	gFootLocal = obs.NewGauge("hcd_serve_footprint_local_bytes",
		"published snapshot footprint: local-query ancestor table")
)

// Config tunes a Server. The zero value of every field except Load is
// usable; defaults are resolved by New.
type Config struct {
	// Load produces the graph a snapshot is built from. It is called
	// once per rebuild attempt (so a changed input file is re-read on
	// /reload). Required.
	Load func() (*hcd.Graph, error)
	// Build tunes the index build (threads, kernel, self-verify,
	// deadline) and supplies the per-query thread count.
	Build hcd.Options
	// MaxInflight caps concurrently executing queries.
	// Default 2 × GOMAXPROCS.
	MaxInflight int
	// QueueDepth bounds the admission wait queue; an arrival beyond it
	// is shed immediately with 429. Default 4 × MaxInflight.
	QueueDepth int
	// QueueWait bounds how long a queued request waits for an execution
	// slot before being shed with 503. Default 250ms.
	QueueWait time.Duration
	// RequestTimeout caps each query's execution deadline; a request may
	// ask for less via timeout_ms but never more. Default 30s.
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful drain: in-flight queries get this
	// long to finish before their contexts are cancelled. Default 10s.
	DrainTimeout time.Duration
	// RebuildBackoff is the delay after the first failed rebuild
	// attempt; it doubles per failure up to RebuildBackoffMax, with up
	// to 50% additive jitter. Defaults 100ms / 5s.
	RebuildBackoff    time.Duration
	RebuildBackoffMax time.Duration
	// RebuildMaxAttempts bounds one rebuild round; when exhausted the
	// round is abandoned and the last-good snapshot keeps serving until
	// the next /reload or watch trigger. Default 5; negative means
	// retry until the server drains.
	RebuildMaxAttempts int
	// WatchPath, when set, is polled every WatchInterval (default 2s)
	// and a rebuild is triggered when its mtime or size changes.
	WatchPath     string
	WatchInterval time.Duration
	// Logger receives the structured operator and access logs. When nil,
	// one is derived from Log (text handler at Info), or logging is
	// disabled entirely when Log is also nil.
	Logger *slog.Logger
	// Log is the fallback plain-writer sink used when Logger is nil.
	Log io.Writer
	// SlowQuery is the served-query latency at which a query is logged at
	// Warn and counted against the latency SLO. Default 500ms.
	SlowQuery time.Duration
	// SLOWindow is the sliding window over which /stats reports
	// availability and latency attainment. Default 60s.
	SLOWindow time.Duration
	// RequestLogSize caps the /debug/requests completed-request ring.
	// Default 128.
	RequestLogSize int
}

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxInflight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 250 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.RebuildBackoff <= 0 {
		c.RebuildBackoff = 100 * time.Millisecond
	}
	if c.RebuildBackoffMax <= 0 {
		c.RebuildBackoffMax = 5 * time.Second
	}
	if c.RebuildMaxAttempts == 0 {
		c.RebuildMaxAttempts = 5
	}
	if c.WatchInterval <= 0 {
		c.WatchInterval = 2 * time.Second
	}
	if c.Logger == nil {
		if c.Log != nil {
			c.Logger = slog.New(slog.NewTextHandler(c.Log, nil))
		} else {
			c.Logger = slog.New(discardHandler{})
		}
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	if c.SlowQuery <= 0 {
		c.SlowQuery = 500 * time.Millisecond
	}
	if c.SLOWindow <= 0 {
		c.SLOWindow = 60 * time.Second
	}
	if c.RequestLogSize <= 0 {
		c.RequestLogSize = 128
	}
	return c
}

// discardHandler disables logging for servers configured without a sink.
// (Go 1.22 has no slog.DiscardHandler yet.) Enabled returning false
// makes slog skip record assembly, so the default server pays nothing
// per request.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Server is the resident query service: one atomic snapshot, one
// admission limiter, one background rebuilder.
type Server struct {
	cfg  Config
	lim  *limiter
	mux  http.Handler
	slog *slog.Logger
	ring *reqRing
	slo  *sloWindow

	cur      atomic.Pointer[Snapshot]
	epoch    atomic.Uint64
	reloadCh chan string // carries the rebuild cause

	draining   atomic.Bool
	rebuilding atomic.Int64
	// swappedAt / rebuildStart drive the freshness gauges: unix nanos of
	// the last snapshot publish, and of the running rebuild round's start
	// (0 when no round is running).
	swappedAt    atomic.Int64
	rebuildStart atomic.Int64
}

// New builds a Server from cfg (Load is required) without starting any
// background work; Run starts serving and the rebuild/watch loops, and
// Handler exposes the routes for in-process tests and benchmarks.
func New(cfg Config) (*Server, error) {
	if cfg.Load == nil {
		return nil, errors.New("serve: Config.Load is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		lim:      newLimiter(cfg.MaxInflight, cfg.QueueDepth, cfg.QueueWait),
		slog:     cfg.Logger,
		ring:     newReqRing(cfg.RequestLogSize),
		slo:      newSLOWindow(cfg.SLOWindow),
		reloadCh: make(chan string, 1),
	}
	gSlotsTotal.Set(int64(cfg.MaxInflight))
	gQueueCap.Set(int64(cfg.QueueDepth))
	s.mux = s.routes()
	return s, nil
}

// refreshGauges recomputes the snapshot-freshness and capacity gauges.
// Called at each /metrics scrape and /stats call rather than from a
// ticker, so an idle server does no background work and a scrape is
// never stale.
func (s *Server) refreshGauges() {
	gEpoch.Set(int64(s.Epoch()))
	if snap := s.cur.Load(); snap != nil {
		gSnapAge.Set(time.Since(snap.BuiltAt).Nanoseconds())
		f := snap.Footprint()
		gFootTotal.Set(f.TotalBytes)
		gFootGraph.Set(f.GraphBytes)
		gFootCore.Set(f.CoreBytes)
		gFootHier.Set(f.HierarchyBytes)
		gFootIndex.Set(f.IndexBytes)
		gFootLocal.Set(f.LocalBytes)
	} else {
		gSnapAge.Set(0)
	}
	if start := s.rebuildStart.Load(); start > 0 {
		gRebuildLag.Set(time.Now().UnixNano() - start)
	} else {
		gRebuildLag.Set(0)
	}
	if s.cfg.MaxInflight > 0 {
		gSlotUtil.Set(mInflight.Value() * 100 / int64(s.cfg.MaxInflight))
	}
}

// refreshed wraps the metrics exposition so every scrape sees freshly
// computed gauges.
func (s *Server) refreshed(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.refreshGauges()
		h.ServeHTTP(w, r)
	})
}

// routes assembles the endpoint mux. Every route — including the
// re-exported obs debug endpoints — runs under Protect, so a panic
// anywhere in the handler tree is contained into a JSON 500; the
// observed envelope sits outside Protect so a contained panic is still
// one fully classified request. The pprof tree under /debug/ is the one
// deliberate exception to observed: profile downloads run for seconds
// and would drown the access log and latency histograms.
func (s *Server) routes() http.Handler {
	obsH := obs.Handler()
	mux := http.NewServeMux()
	mux.Handle("/search", s.observed("search", Protect(s.gated(s.handleSearch))))
	mux.Handle("/reconstruct", s.observed("reconstruct", Protect(s.gated(s.handleReconstruct))))
	mux.Handle("/stats", s.observed("stats", Protect(http.HandlerFunc(s.handleStats))))
	mux.Handle("/reload", s.observed("reload", Protect(http.HandlerFunc(s.handleReload))))
	mux.Handle("/healthz", s.observed("healthz", Protect(http.HandlerFunc(s.handleHealthz))))
	mux.Handle("/readyz", s.observed("readyz", Protect(http.HandlerFunc(s.handleReadyz))))
	mux.Handle("/debug/requests", s.observed("debugreq", Protect(http.HandlerFunc(s.handleDebugRequests))))
	mux.Handle("/metrics", s.observed("metrics", Protect(s.refreshed(obsH))))
	mux.Handle("/trace", s.observed("trace", Protect(obsH)))
	mux.Handle("/debug/", Protect(obsH))
	mux.Handle("/", s.observed("index", Protect(http.HandlerFunc(s.handleIndex))))
	return mux
}

// Handler returns the server's HTTP handler. It is valid before Run:
// tests and the serve benchmark drive it through httptest with
// snapshots published via Rebuild.
func (s *Server) Handler() http.Handler { return s.mux }

// Ready reports whether a snapshot is published and the server is not
// draining — the /readyz condition.
func (s *Server) Ready() bool { return s.cur.Load() != nil && !s.draining.Load() }

// Epoch returns the published snapshot's epoch, 0 when none is
// published yet.
func (s *Server) Epoch() uint64 {
	if snap := s.cur.Load(); snap != nil {
		return snap.Epoch
	}
	return 0
}

// WaitReady blocks until a snapshot is published or ctx is done.
func (s *Server) WaitReady(ctx context.Context) error {
	for s.cur.Load() == nil {
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: waiting for first snapshot: %w", ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
	return nil
}

// Run serves on ln until ctx is cancelled, then drains gracefully:
// admission stops (new requests shed with 503, /readyz flips), in-flight
// queries get DrainTimeout to finish, then their contexts are cancelled
// (the kernels abort at chunk boundaries) and the listener closes. A
// completed drain returns nil — the process exit-0 path. If no snapshot
// is published yet an initial rebuild is triggered; until it lands the
// server is live but not ready.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	// baseCtx parents every request context; hardCancel is the
	// drain-deadline escalation that aborts still-running queries.
	baseCtx, hardCancel := context.WithCancel(context.Background())
	defer hardCancel()
	httpSrv := &http.Server{
		Handler:           s.mux,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
		ReadHeaderTimeout: 10 * time.Second,
	}

	bg, bgCancel := context.WithCancel(context.Background())
	defer bgCancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); s.rebuildLoop(bg) }()
	if s.cfg.WatchPath != "" {
		wg.Add(1)
		go func() { defer wg.Done(); s.watchLoop(bg) }()
	}
	if s.cur.Load() == nil {
		s.triggerReload("initial")
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	s.slog.Info("serving", "addr", ln.Addr().String())

	select {
	case err := <-errCh:
		// Listener failure before any shutdown was requested.
		bgCancel()
		wg.Wait()
		return err
	case <-ctx.Done():
	}

	s.slog.Info("drain: stopping admission", "timeout", s.cfg.DrainTimeout)
	s.draining.Store(true)
	bgCancel()
	dctx, dcancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer dcancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		// Drain deadline exceeded: cancel in-flight request contexts so
		// the query kernels abort, then give the unwound handlers a
		// short grace period to flush their (now error) responses.
		s.slog.Warn("drain: deadline exceeded, cancelling in-flight queries",
			"inflight", mInflight.Value())
		hardCancel()
		fctx, fcancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer fcancel()
		if err := httpSrv.Shutdown(fctx); err != nil {
			_ = httpSrv.Close() // final resort; Shutdown already reported the cause
		}
	}
	<-errCh // Serve has returned http.ErrServerClosed
	wg.Wait()
	s.slog.Info("drain: complete")
	return nil
}

// queryOpts is the per-query Options: the configured thread count with
// build-only knobs (deadline, self-verify) stripped.
func (s *Server) queryOpts() hcd.Options {
	return hcd.Options{Threads: s.cfg.Build.Threads, Kernel: s.cfg.Build.Kernel}
}
