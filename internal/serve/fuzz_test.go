package serve

import (
	"errors"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
)

// FuzzServeRequest fuzzes the /search and /reconstruct request decoders
// across both encodings. The contract under fuzz: never panic, and
// every rejection wraps errBadRequest (the handler's 400 path) — bad
// k-ranges, overflowing ints and NaN metric coefficients must all be
// 400s, never 500s and never crashes. Accepted requests must satisfy
// the invariants the handlers rely on without re-checking.
func FuzzServeRequest(f *testing.F) {
	f.Add("metric=average-degree&min_size=10&max_size=50&timeout_ms=100", "", false)
	f.Add("weighted=average-degree:1,cut-ratio:0.5", "", false)
	f.Add("weighted=average-degree:NaN", "", false)
	f.Add("weighted=conductance:+Inf", "", false)
	f.Add("weighted=conductance:-Inf,average-degree:1e308", "", false)
	f.Add("min_size=-1&max_size=-9223372036854775808", "", false)
	f.Add("min_size=99999999999999999999999999", "", false)
	f.Add("max_size=5&min_size=10", "", false)
	f.Add("timeout_ms=9223372036854775807", "", false)
	f.Add("node=0&v=1&k=2", "", false)
	f.Add("v=4294967296&k=0&limit=-1", "", false)
	f.Add("metric=%zz&weighted=:::", "", false)
	f.Add("", `{"metric":"average-degree","min_size":3}`, true)
	f.Add("", `{"weighted":[{"metric":"average-degree","coeff":1}]}`, true)
	f.Add("", `{"metric":`, true)
	f.Add("", `{"min_size":1e999}`, true)
	f.Add("", `{"unknown_field":1}`, true)
	f.Add("", strings.Repeat("[", 1000), true)

	f.Fuzz(func(t *testing.T, raw string, body string, post bool) {
		var r *http.Request
		if post {
			r = &http.Request{
				Method: http.MethodPost,
				URL:    &url.URL{Path: "/search"},
				Body:   io.NopCloser(strings.NewReader(body)),
			}
		} else {
			r = &http.Request{Method: http.MethodGet, URL: &url.URL{Path: "/search", RawQuery: raw}}
		}
		req, m, err := DecodeSearchRequest(r)
		if err != nil {
			if !errors.Is(err, errBadRequest) {
				t.Fatalf("search rejection does not wrap errBadRequest: %v", err)
			}
		} else {
			if m == nil {
				t.Fatal("accepted search request with nil metric")
			}
			if req.MinSize < 0 || req.MaxSize < 0 || (req.MaxSize > 0 && req.MaxSize < req.MinSize) {
				t.Fatalf("accepted invalid size range: %+v", req)
			}
			if req.TimeoutMS < 0 || req.TimeoutMS > maxTimeoutMS {
				t.Fatalf("accepted invalid timeout: %+v", req)
			}
		}

		rr := &http.Request{Method: http.MethodGet, URL: &url.URL{Path: "/reconstruct", RawQuery: raw}}
		rreq, err := DecodeReconstructRequest(rr)
		if err != nil {
			if !errors.Is(err, errBadRequest) {
				t.Fatalf("reconstruct rejection does not wrap errBadRequest: %v", err)
			}
		} else {
			if rreq.byNode == rreq.byLocal {
				t.Fatalf("accepted ambiguous reconstruct request: %+v", rreq)
			}
			if rreq.Node < 0 || rreq.V < 0 || rreq.Limit < 0 || (rreq.byLocal && rreq.K < 1) {
				t.Fatalf("accepted invalid reconstruct request: %+v", rreq)
			}
		}
	})
}
