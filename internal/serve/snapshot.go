package serve

import (
	"context"
	"math/rand"
	"os"
	"time"

	"hcd"
	"hcd/internal/faultinject"
	"hcd/internal/hierarchy"
	"hcd/internal/obs"
	"hcd/internal/par"
)

// Snapshot is one immutable generation of the served index: everything
// a query needs, built off to the side and published with a single
// atomic pointer swap. Queries load the pointer once and use only that
// generation for their whole lifetime, so a concurrent swap can never
// show them a torn or partial index.
type Snapshot struct {
	// Graph is the input the snapshot was built from.
	Graph *hcd.Graph
	// Searcher answers best-k-core queries (PBKS).
	Searcher *hcd.Searcher
	// Core is the coreness array.
	Core []int32
	// Local answers "the k-core containing v" reconstruction queries.
	Local *hcd.LocalQuery
	// Stats is the hierarchy's precomputed shape summary.
	Stats hierarchy.Stats
	// Epoch increments with every published snapshot (first is 1).
	Epoch uint64
	// BuiltAt is the publication time.
	BuiltAt time.Time
	// Report describes how the build ran (fallbacks, verification,
	// phase times).
	Report *hcd.BuildReport
}

// triggerReload requests a background rebuild attributed to cause
// ("initial", "reload", "watch", ...); a request that finds one already
// pending coalesces with it — keeping the pending cause — and reports
// false.
func (s *Server) triggerReload(cause string) bool {
	select {
	case s.reloadCh <- cause:
		return true
	default:
		return false
	}
}

// rebuildLoop services reload triggers until ctx is done (the server is
// draining). Each trigger runs one rebuild round with retry + backoff.
func (s *Server) rebuildLoop(ctx context.Context) {
	for {
		var cause string
		select {
		case <-ctx.Done():
			return
		case cause = <-s.reloadCh:
		}
		s.rebuildRound(ctx, cause)
	}
}

// rebuildRound attempts to build and publish one new snapshot,
// retrying with exponential backoff + jitter on failure. The last-good
// snapshot keeps serving throughout; an exhausted round abandons the
// rebuild (last-good stays) rather than wedging the loop. The cause
// rides through every retry's log line, so an operator can tell a
// flapping watch trigger from a failing manual reload.
func (s *Server) rebuildRound(ctx context.Context, cause string) {
	s.rebuilding.Add(1)
	s.rebuildStart.Store(time.Now().UnixNano())
	defer func() {
		s.rebuildStart.Store(0)
		s.rebuilding.Add(-1)
	}()
	backoff := s.cfg.RebuildBackoff
	for attempt := 1; ; attempt++ {
		err := s.buildAndSwap(ctx, cause)
		if err == nil {
			return
		}
		if ctx.Err() != nil {
			return // draining: stop retrying, keep last-good
		}
		mRebuildRetries.Inc()
		s.slog.Warn("rebuild attempt failed",
			"cause", cause, "attempt", attempt, "error", err)
		if s.cfg.RebuildMaxAttempts > 0 && attempt >= s.cfg.RebuildMaxAttempts {
			mRebuildAbandoned.Inc()
			s.slog.Error("rebuild abandoned; serving last-good snapshot",
				"cause", cause, "attempts", attempt, "epoch", s.Epoch())
			return
		}
		// Full backoff with up to 50% additive jitter, capped.
		d := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		select {
		case <-ctx.Done():
			return
		case <-time.After(d):
		}
		if backoff *= 2; backoff > s.cfg.RebuildBackoffMax {
			backoff = s.cfg.RebuildBackoffMax
		}
	}
}

// buildAndSwap is one contained rebuild attempt: load the input, build
// the index, publish the snapshot. A panic anywhere inside — including
// the serve.rebuild and serve.swap fault sites — is recovered into the
// returned error, so an injected or real crash costs one retry, never
// the process or the published snapshot.
func (s *Server) buildAndSwap(ctx context.Context, cause string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = par.AsPanicError(r)
		}
	}()
	sp := obs.StartSpan("serve.rebuild")
	defer sp.End()

	faultinject.Maybe("serve.rebuild")
	g, err := s.cfg.Load()
	if err != nil {
		return err
	}
	h, core, searcher, rep, err := hcd.BuildAndIndexCtx(ctx, g, s.cfg.Build)
	if err != nil {
		return err
	}
	snap := &Snapshot{
		Graph:    g,
		Searcher: searcher,
		Core:     core,
		Local:    hcd.NewLocalQuery(h),
		Stats:    h.ComputeStats(),
		BuiltAt:  time.Now(),
		Report:   rep,
	}

	// The swap itself: the fault site sits before the epoch claim so an
	// injected swap failure leaves the previous snapshot fully intact
	// (epochs may skip on retry, but they stay monotonic).
	faultinject.Maybe("serve.swap")
	snap.Epoch = s.epoch.Add(1)
	s.cur.Store(snap)
	s.swappedAt.Store(time.Now().UnixNano())
	mSwaps.Inc()
	s.slog.Info("snapshot published",
		"cause", cause, "epoch", snap.Epoch,
		"n", g.NumVertices(), "m", g.NumEdges(), "nodes", snap.Stats.Nodes,
		"footprint_bytes", snap.Footprint().TotalBytes,
		"build", rep.Summary())
	return nil
}

// Rebuild runs one synchronous rebuild round (same retry/backoff policy
// as the background loop) and reports whether a snapshot got published.
// cmd/hcdserve uses it to block start-up on the first snapshot; tests
// and the serve benchmark use it to publish deterministically.
func (s *Server) Rebuild(ctx context.Context) error {
	before := s.epoch.Load()
	s.rebuildRound(ctx, "sync")
	if s.epoch.Load() == before {
		if err := ctx.Err(); err != nil {
			return err
		}
		return errRebuildFailed
	}
	return nil
}

// watchLoop polls WatchPath and triggers a rebuild when its mtime or
// size changes — the "watched input file" reload path. Stat errors are
// ignored (the file may be mid-replace); the next tick re-checks.
func (s *Server) watchLoop(ctx context.Context) {
	var lastMod time.Time
	var lastSize int64
	if fi, err := os.Stat(s.cfg.WatchPath); err == nil {
		lastMod, lastSize = fi.ModTime(), fi.Size()
	}
	t := time.NewTicker(s.cfg.WatchInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		fi, err := os.Stat(s.cfg.WatchPath)
		if err != nil {
			continue
		}
		if !fi.ModTime().Equal(lastMod) || fi.Size() != lastSize {
			lastMod, lastSize = fi.ModTime(), fi.Size()
			s.slog.Info("watched input changed, triggering rebuild",
				"path", s.cfg.WatchPath, "size", fi.Size(), "mtime", fi.ModTime())
			s.triggerReload("watch")
		}
	}
}
