// Package om implements an order-maintenance structure over int32
// elements: a total order supporting O(1) comparison and amortised-O(1)
// insertion before/after an existing element, deletion, and head/tail
// insertion. It is the substrate of order-based core maintenance, which
// must compare two vertices' positions in the k-order in constant time
// while vertices move between positions.
//
// The implementation is the classical labelled doubly-linked list: each
// element carries a uint64 label; comparison compares labels; insertion
// bisects the neighbouring labels and triggers a full relabel of the list
// when a gap is exhausted (amortised rare with wide initial spacing).
// An element may be in at most one List at a time; the element id doubles
// as its handle, so moves between lists are cheap.
package om

import "fmt"

const spread = uint64(1) << 40

// List is one maintained total order. Create with New; elements are int32
// ids in [0, capacity).
type List struct {
	label []uint64
	next  []int32
	prev  []int32
	in    []bool
	head  int32 // first element, -1 if empty
	tail  int32 // last element, -1 if empty
	size  int
}

// New creates an empty order over ids [0, capacity).
func New(capacity int) *List {
	l := &List{
		label: make([]uint64, capacity),
		next:  make([]int32, capacity),
		prev:  make([]int32, capacity),
		in:    make([]bool, capacity),
		head:  -1,
		tail:  -1,
	}
	return l
}

// Len returns the number of elements currently in the order.
func (l *List) Len() int { return l.size }

// Contains reports whether v is currently in the order.
func (l *List) Contains(v int32) bool { return l.in[v] }

// First returns the first element, or -1 if empty.
func (l *List) First() int32 { return l.head }

// Last returns the last element, or -1 if empty.
func (l *List) Last() int32 { return l.tail }

// Next returns the element after v, or -1.
func (l *List) Next(v int32) int32 { return l.next[v] }

// Prev returns the element before v, or -1.
func (l *List) Prev(v int32) int32 { return l.prev[v] }

// InsertBefore places v immediately before ref (which must be present).
func (l *List) InsertBefore(v, ref int32) {
	if !l.in[ref] {
		panic(fmt.Sprintf("om: reference %d not in order", ref))
	}
	if p := l.prev[ref]; p >= 0 {
		l.InsertAfter(v, p)
	} else {
		l.PushFront(v)
	}
}

// Less reports whether a precedes b. Both must be in the order.
func (l *List) Less(a, b int32) bool { return l.label[a] < l.label[b] }

// PushBack appends v at the end of the order.
func (l *List) PushBack(v int32) {
	l.mustAbsent(v)
	if l.tail < 0 {
		l.insertOnly(v)
		return
	}
	l.linkAfter(v, l.tail)
	l.label[v] = l.label[l.prev[v]] + spread
	l.size++
}

// PushFront prepends v at the start of the order.
func (l *List) PushFront(v int32) {
	l.mustAbsent(v)
	if l.head < 0 {
		l.insertOnly(v)
		return
	}
	first := l.head
	l.next[v] = first
	l.prev[v] = -1
	l.prev[first] = v
	l.head = v
	l.in[v] = true
	l.size++
	if l.label[first] == 0 {
		l.relabel()
	} else {
		l.label[v] = l.label[first] / 2
	}
}

// InsertAfter places v immediately after ref (which must be present).
func (l *List) InsertAfter(v, ref int32) {
	l.mustAbsent(v)
	if !l.in[ref] {
		panic(fmt.Sprintf("om: reference %d not in order", ref))
	}
	if ref == l.tail {
		l.linkAfter(v, ref)
		l.label[v] = l.label[ref] + spread
		l.size++
		return
	}
	l.linkAfter(v, ref)
	l.size++
	lo, hi := l.label[ref], l.label[l.next[v]]
	if hi-lo < 2 {
		l.relabel()
	} else {
		l.label[v] = lo + (hi-lo)/2
	}
}

// Remove deletes v from the order.
func (l *List) Remove(v int32) {
	if !l.in[v] {
		panic(fmt.Sprintf("om: removing absent element %d", v))
	}
	p, n := l.prev[v], l.next[v]
	if p >= 0 {
		l.next[p] = n
	} else {
		l.head = n
	}
	if n >= 0 {
		l.prev[n] = p
	} else {
		l.tail = p
	}
	l.in[v] = false
	l.size--
}

func (l *List) insertOnly(v int32) {
	l.head, l.tail = v, v
	l.next[v], l.prev[v] = -1, -1
	l.label[v] = spread
	l.in[v] = true
	l.size++
}

// linkAfter splices v after ref without assigning a label.
func (l *List) linkAfter(v, ref int32) {
	n := l.next[ref]
	l.next[ref] = v
	l.prev[v] = ref
	l.next[v] = n
	if n >= 0 {
		l.prev[n] = v
	} else {
		l.tail = v
	}
	l.in[v] = true
}

// relabel reassigns evenly spaced labels to the whole list. O(size),
// amortised across the many insertions that exhausted the gaps.
func (l *List) relabel() {
	lab := spread
	for v := l.head; v >= 0; v = l.next[v] {
		l.label[v] = lab
		lab += spread
	}
}

func (l *List) mustAbsent(v int32) {
	if l.in[v] {
		panic(fmt.Sprintf("om: element %d already in order", v))
	}
}
