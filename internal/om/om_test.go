package om

import (
	"math/rand"
	"testing"
)

// collect returns the list contents in order.
func collect(l *List) []int32 {
	var out []int32
	for v := l.First(); v >= 0; v = l.Next(v) {
		out = append(out, v)
	}
	return out
}

func eq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBasicOps(t *testing.T) {
	l := New(10)
	if l.Len() != 0 || l.First() != -1 || l.Last() != -1 {
		t.Fatal("empty list wrong")
	}
	l.PushBack(3)
	l.PushBack(5)
	l.PushFront(1)
	l.InsertAfter(4, 3)
	if got := collect(l); !eq(got, []int32{1, 3, 4, 5}) {
		t.Fatalf("order = %v", got)
	}
	if !l.Less(1, 5) || l.Less(4, 3) || !l.Less(3, 4) {
		t.Error("comparisons wrong")
	}
	l.Remove(3)
	if got := collect(l); !eq(got, []int32{1, 4, 5}) {
		t.Fatalf("after removal = %v", got)
	}
	if l.Contains(3) || !l.Contains(4) {
		t.Error("Contains wrong")
	}
	l.Remove(1)
	l.Remove(4)
	l.Remove(5)
	if l.Len() != 0 || l.First() != -1 {
		t.Error("not empty after removing everything")
	}
}

func TestInsertAfterTail(t *testing.T) {
	l := New(4)
	l.PushBack(0)
	l.InsertAfter(1, 0)
	l.InsertAfter(2, 1)
	if got := collect(l); !eq(got, []int32{0, 1, 2}) {
		t.Fatalf("order = %v", got)
	}
	if l.Last() != 2 {
		t.Error("tail wrong")
	}
}

func TestRelabelUnderPressure(t *testing.T) {
	// Repeatedly insert at the front and right after the head to exhaust
	// label gaps and force relabels.
	n := 2000
	l := New(n)
	l.PushBack(0)
	for v := int32(1); v < int32(n); v++ {
		if v%2 == 0 {
			l.PushFront(v)
		} else {
			l.InsertAfter(v, l.First())
		}
	}
	got := collect(l)
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	// Labels must be strictly increasing along the list.
	for v := l.First(); l.Next(v) >= 0; v = l.Next(v) {
		if !l.Less(v, l.Next(v)) {
			t.Fatalf("labels not increasing at %d", v)
		}
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	l := New(3)
	l.PushBack(0)
	mustPanic(t, "double insert", func() { l.PushBack(0) })
	mustPanic(t, "absent remove", func() { l.Remove(2) })
	mustPanic(t, "absent reference", func() { l.InsertAfter(1, 2) })
}

func mustPanic(t *testing.T, label string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", label)
		}
	}()
	f()
}

// Property-style: random interleaving of operations matches a reference
// slice implementation.
func TestMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 200
	l := New(n)
	var ref []int32 // reference order
	inRef := make([]bool, n)
	refIndex := func(v int32) int {
		for i, x := range ref {
			if x == v {
				return i
			}
		}
		return -1
	}
	for step := 0; step < 5000; step++ {
		v := int32(rng.Intn(n))
		switch rng.Intn(4) {
		case 0: // push front
			if !inRef[v] {
				l.PushFront(v)
				ref = append([]int32{v}, ref...)
				inRef[v] = true
			}
		case 1: // push back
			if !inRef[v] {
				l.PushBack(v)
				ref = append(ref, v)
				inRef[v] = true
			}
		case 2: // insert after random present element
			if !inRef[v] && len(ref) > 0 {
				after := ref[rng.Intn(len(ref))]
				l.InsertAfter(v, after)
				i := refIndex(after)
				ref = append(ref[:i+1], append([]int32{v}, ref[i+1:]...)...)
				inRef[v] = true
			}
		case 3: // remove
			if inRef[v] {
				l.Remove(v)
				i := refIndex(v)
				ref = append(ref[:i], ref[i+1:]...)
				inRef[v] = false
			}
		}
		if step%500 == 0 {
			if got := collect(l); !eq(got, ref) {
				t.Fatalf("step %d: order %v != ref %v", step, got, ref)
			}
		}
	}
	if got := collect(l); !eq(got, ref) {
		t.Fatalf("final order differs")
	}
	// Spot-check comparisons against reference positions.
	for trial := 0; trial < 200 && len(ref) >= 2; trial++ {
		a, b := ref[rng.Intn(len(ref))], ref[rng.Intn(len(ref))]
		if a == b {
			continue
		}
		if l.Less(a, b) != (refIndex(a) < refIndex(b)) {
			t.Fatalf("Less(%d,%d) disagrees with reference", a, b)
		}
	}
}

func BenchmarkInsertRemoveChurn(b *testing.B) {
	n := 10000
	l := New(n)
	for v := int32(0); v < int32(n); v++ {
		l.PushBack(v)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := int32(rng.Intn(n))
		ref := int32(rng.Intn(n))
		if v == ref || !l.Contains(ref) {
			continue
		}
		if l.Contains(v) {
			l.Remove(v)
		}
		l.InsertAfter(v, ref)
	}
}

func TestPrevAndInsertBefore(t *testing.T) {
	l := New(6)
	l.PushBack(0)
	l.PushBack(2)
	l.InsertBefore(1, 2)
	if got := collect(l); !eq(got, []int32{0, 1, 2}) {
		t.Fatalf("order = %v", got)
	}
	l.InsertBefore(3, 0) // before the head
	if got := collect(l); !eq(got, []int32{3, 0, 1, 2}) {
		t.Fatalf("order = %v", got)
	}
	if l.Prev(0) != 3 || l.Prev(3) != -1 || l.Prev(2) != 1 {
		t.Errorf("Prev wrong: %d %d %d", l.Prev(0), l.Prev(3), l.Prev(2))
	}
	mustPanic(t, "InsertBefore absent ref", func() { l.InsertBefore(4, 5) })
}
