package dynamic

import (
	"math/rand"
	"testing"
	"time"

	"hcd/internal/gen"
)

// TestOpCostSmallShells documents the performance envelope of
// traversal-based maintenance: on graphs whose k-shells are small (the
// onion family), operations are microseconds; giant-shell graphs (dense
// ER) degrade toward shell-sized traversals, the known weakness the
// package comment calls out.
func TestOpCostSmallShells(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	m := New(gen.Onion(8, 300, 2, 3, 4, 5))
	n := int32(m.NumVertices())
	rng := rand.New(rand.NewSource(8))
	start := time.Now()
	ops := 0
	for i := 0; i < 4000; i++ {
		u, v := rng.Int31n(n), rng.Int31n(n)
		if u == v {
			continue
		}
		if m.HasEdge(u, v) {
			if err := m.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := m.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		ops++
	}
	el := time.Since(start)
	t.Logf("onion: %d ops in %v (%.1f µs/op)", ops, el, float64(el.Microseconds())/float64(ops))
	if el > 10*time.Second {
		t.Errorf("small-shell maintenance too slow: %v for %d ops", el, ops)
	}
}
