package dynamic

import (
	"container/heap"
	"fmt"

	"hcd/internal/coredecomp"
	"hcd/internal/graph"
	"hcd/internal/om"
)

// OrderMaintainer maintains a core decomposition under edge insertions and
// deletions with the order-based algorithm of Zhang, Yu, Zhang and Qin
// (ICDE 2017): instead of re-traversing the (possibly giant) subcore on
// every insertion like Maintainer, it maintains a *k-order* — a valid
// Batagelj–Zaversnik peeling order — plus every vertex's remaining degree
//
//	deg+(v) = |{u in N(v) : v precedes u in the k-order}|
//
// (neighbors of higher coreness, or equal coreness but later position).
// The order is a valid peeling order exactly when deg+(v) <= c(v) for all
// v. An inserted edge whose order-lower endpoint keeps deg+ <= c(v)
// changes nothing — the O(1) fast path that makes the approach fast on
// graphs whose shells are giant. Otherwise a propagation walks the
// affected suffix of the level's order, visiting only vertices whose
// potential actually changed, decides which vertices rise, and splices the
// order back into a valid state.
//
// Not safe for concurrent use.
type OrderMaintainer struct {
	adj   [][]int32
	core  []int32
	edges int64
	list  *om.List // global k-order with one sentinel before each level
	n     int32    // sentinel id for level k is n + k
	maxK  int32    // highest level with a sentinel
	degp  []int32  // deg+(v)

	// Epoch-stamped scratch.
	epoch   int64
	starEp  []int64 // deg* stamps (insert) / support stamps (remove)
	starVal []int32
	inCand  []int64 // candidate stamp (insert) / dropped stamp (remove)
	inHeap  []int64
}

// NewOrder creates an OrderMaintainer holding a copy of g, its core
// decomposition, and a valid initial k-order.
func NewOrder(g *graph.Graph) *OrderMaintainer {
	n := g.NumVertices()
	core, order := coredecomp.SerialOrder(g)
	m := &OrderMaintainer{
		adj:     make([][]int32, n),
		core:    core,
		edges:   g.NumEdges(),
		n:       int32(n),
		starEp:  make([]int64, n),
		starVal: make([]int32, n),
		inCand:  make([]int64, n),
		inHeap:  make([]int64, n),
	}
	for v := 0; v < n; v++ {
		m.adj[v] = append([]int32(nil), g.Neighbors(int32(v))...)
	}
	kmax := coredecomp.KMax(core)
	// Capacity: n vertex ids + sentinels for levels 0..n (a level can
	// never exceed n-1).
	m.list = om.New(n + n + 2)
	m.maxK = kmax
	for k := int32(0); k <= kmax; k++ {
		m.list.PushBack(m.sentinel(k))
	}
	// The BZ order is grouped by non-decreasing core; rebuild it with the
	// sentinels interleaved.
	// First remove the sentinels we just pushed and re-add interleaved.
	for k := int32(0); k <= kmax; k++ {
		m.list.Remove(m.sentinel(k))
	}
	prevK := int32(-1)
	for _, v := range order {
		for k := prevK + 1; k <= core[v]; k++ {
			m.list.PushBack(m.sentinel(k))
		}
		prevK = core[v]
		m.list.PushBack(v)
	}
	for k := prevK + 1; k <= kmax; k++ {
		m.list.PushBack(m.sentinel(k))
	}
	// deg+ from the definition.
	m.degp = make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		m.degp[v] = m.computeDegp(v)
	}
	return m
}

func (m *OrderMaintainer) sentinel(k int32) int32 { return m.n + k }

// after reports whether y comes after x in the global k-order.
func (m *OrderMaintainer) after(x, y int32) bool {
	if m.core[x] != m.core[y] {
		return m.core[y] > m.core[x]
	}
	return m.list.Less(x, y)
}

func (m *OrderMaintainer) computeDegp(v int32) int32 {
	var d int32
	for _, u := range m.adj[v] {
		if m.after(v, u) {
			d++
		}
	}
	return d
}

// NumVertices returns the number of vertices.
func (m *OrderMaintainer) NumVertices() int { return len(m.adj) }

// NumEdges returns the current number of undirected edges.
func (m *OrderMaintainer) NumEdges() int64 { return m.edges }

// Coreness returns the current coreness of v.
func (m *OrderMaintainer) Coreness(v int32) int32 { return m.core[v] }

// CorenessAll returns a copy of the full coreness array.
func (m *OrderMaintainer) CorenessAll() []int32 {
	out := make([]int32, len(m.core))
	copy(out, m.core)
	return out
}

// HasEdge reports whether (u, v) currently exists. O(min degree).
func (m *OrderMaintainer) HasEdge(u, v int32) bool {
	a := m.adj[u]
	if len(m.adj[v]) < len(a) {
		a, v = m.adj[v], u
	}
	for _, x := range a {
		if x == v {
			return true
		}
	}
	return false
}

// Degree returns v's current degree.
func (m *OrderMaintainer) Degree(v int32) int { return len(m.adj[v]) }

// Snapshot materialises the current graph as an immutable CSR graph.
func (m *OrderMaintainer) Snapshot() *graph.Graph {
	var edges []graph.Edge
	for v := range m.adj {
		for _, u := range m.adj[v] {
			if int32(v) < u {
				edges = append(edges, graph.Edge{U: int32(v), V: u})
			}
		}
	}
	return graph.MustFromEdges(len(m.adj), edges)
}

// labelHeap pops pending vertices in k-order position.
type labelHeap struct {
	items []int32
	list  *om.List
}

func (h *labelHeap) Len() int           { return len(h.items) }
func (h *labelHeap) Less(i, j int) bool { return h.list.Less(h.items[i], h.items[j]) }
func (h *labelHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *labelHeap) Push(x any)         { h.items = append(h.items, x.(int32)) }
func (h *labelHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// InsertEdge adds the undirected edge (u, v), maintaining coreness and the
// k-order. O(1) when the order-lower endpoint's remaining degree stays
// within its coreness — the overwhelmingly common case.
func (m *OrderMaintainer) InsertEdge(u, v int32) error {
	if err := m.checkEnds(u, v); err != nil {
		return err
	}
	if m.HasEdge(u, v) {
		return fmt.Errorf("dynamic: edge (%d,%d) already present", u, v)
	}
	m.adj[u] = append(m.adj[u], v)
	m.adj[v] = append(m.adj[v], u)
	m.edges++

	// Orient: u is the order-lower endpoint; only its deg+ grows.
	if m.after(v, u) {
		u, v = v, u
	}
	K := m.core[u]
	m.degp[u]++
	if m.degp[u] <= K {
		return nil // fast path: the order is still valid
	}

	// Propagation along O_K from u: visit, in order, exactly the vertices
	// whose potential deg+ changed. deg*(w) counts candidate neighbors
	// whose position moved from before w to after it (candidates are
	// pulled out of O_K and will land after every remaining member).
	m.epoch++
	ep := m.epoch
	h := &labelHeap{list: m.list}
	heap.Init(h)
	pushPending := func(w int32) {
		if m.inHeap[w] != ep {
			m.inHeap[w] = ep
			heap.Push(h, w)
		}
	}
	star := func(w int32) int32 {
		if m.starEp[w] == ep {
			return m.starVal[w]
		}
		return 0
	}
	var cand []int32
	pushPending(u)
	for h.Len() > 0 {
		w := heap.Pop(h).(int32)
		if m.inCand[w] == ep {
			continue
		}
		if m.degp[w]+star(w) > K {
			// w is a candidate: it leaves its position.
			m.inCand[w] = ep
			cand = append(cand, w)
			for _, x := range m.adj[w] {
				if m.core[x] == K && m.inCand[x] != ep && m.list.Less(w, x) {
					if m.starEp[x] != ep {
						m.starEp[x] = ep
						m.starVal[x] = 0
					}
					m.starVal[x]++
					pushPending(x)
				}
			}
		}
		// Otherwise w keeps its position; its deg+ gain (deg*) is folded
		// in by the final recompute.
	}

	// Eviction peeling over the candidates: cd upper-bounds a candidate's
	// degree in a hypothetical (K+1)-core.
	cd := make(map[int32]int32, len(cand))
	for _, c := range cand {
		var d int32
		for _, x := range m.adj[c] {
			if m.core[x] > K || m.inCand[x] == ep {
				d++
			}
		}
		cd[c] = d
	}
	var evictQ, evicted []int32
	for _, c := range cand {
		if cd[c] <= K {
			evictQ = append(evictQ, c)
			m.inCand[c] = 0
		}
	}
	for len(evictQ) > 0 {
		c := evictQ[len(evictQ)-1]
		evictQ = evictQ[:len(evictQ)-1]
		evicted = append(evicted, c)
		for _, x := range m.adj[c] {
			if m.inCand[x] == ep {
				cd[x]--
				if cd[x] <= K {
					m.inCand[x] = 0
					evictQ = append(evictQ, c)
					evictQ[len(evictQ)-1] = x
				}
			}
		}
	}
	var risers []int32
	for _, c := range cand {
		if m.inCand[c] == ep {
			risers = append(risers, c)
		}
	}

	// Splice the order. Everyone leaves O_K first.
	for _, c := range cand {
		m.list.Remove(c)
	}
	// Evicted candidates keep core K and return at the end of O_K in
	// eviction order (their support at eviction bounds their new deg+).
	m.ensureLevel(K + 1)
	for _, e := range evicted {
		m.list.InsertBefore(e, m.sentinel(K+1))
	}
	// Risers move to the head of O_{K+1}, ordered by a local peel so the
	// k-order invariant deg+ <= core holds inside the block.
	if len(risers) > 0 {
		for _, r := range risers {
			m.core[r] = K + 1
		}
		block := m.orderRiserBlock(risers, K+1)
		prev := m.sentinel(K + 1)
		for _, r := range block {
			m.list.InsertAfter(r, prev)
			prev = r
		}
	}
	// Refresh deg+ on everything whose neighborhood geometry changed.
	m.refreshDegp(cand)
	return nil
}

// orderRiserBlock orders the rising vertices so that, placed at the head
// of O_{K1} (K1 = their new core), every riser r satisfies deg+(r) <= K1:
// repeatedly emit a riser whose fixed demand (neighbors of core > K1, or
// core == K1 outside the block — all of which sit after the block) plus
// its remaining in-block neighbors fits within K1.
func (m *OrderMaintainer) orderRiserBlock(risers []int32, K1 int32) []int32 {
	remaining := make(map[int32]bool, len(risers))
	for _, r := range risers {
		remaining[r] = true
	}
	fixed := make(map[int32]int32, len(risers))
	inblockDeg := make(map[int32]int32, len(risers))
	for _, r := range risers {
		var f, b int32
		for _, x := range m.adj[r] {
			switch {
			case remaining[x]:
				b++
			case m.core[x] >= K1:
				f++
			}
		}
		fixed[r] = f
		inblockDeg[r] = b
	}
	block := make([]int32, 0, len(risers))
	for len(remaining) > 0 {
		picked := int32(-1)
		for _, r := range risers {
			if remaining[r] && fixed[r]+inblockDeg[r] <= K1 {
				picked = r
				break
			}
		}
		if picked < 0 {
			// Should be unreachable (a valid order exists); degrade
			// gracefully rather than corrupt the structure.
			for _, r := range risers {
				if remaining[r] {
					picked = r
					break
				}
			}
		}
		delete(remaining, picked)
		block = append(block, picked)
		for _, x := range m.adj[picked] {
			if remaining[x] {
				inblockDeg[x]--
			}
		}
	}
	return block
}

// RemoveEdge deletes the undirected edge (u, v), maintaining coreness and
// the k-order with a lazy dissolve cascade (identical core logic to
// Maintainer.RemoveEdge; dropped vertices additionally move to the end of
// the level below, in drop order, which preserves order validity).
func (m *OrderMaintainer) RemoveEdge(u, v int32) error {
	if err := m.checkEnds(u, v); err != nil {
		return err
	}
	if !m.deleteArcO(u, v) {
		return fmt.Errorf("dynamic: edge (%d,%d) not present", u, v)
	}
	m.deleteArcO(v, u)
	m.edges--

	r := min(m.core[u], m.core[v])
	m.epoch++
	ep := m.epoch
	supOf := func(w int32) int32 {
		if m.starEp[w] == ep {
			return m.starVal[w]
		}
		var d int32
		for _, x := range m.adj[w] {
			if m.core[x] >= r {
				d++
			}
		}
		m.starEp[w] = ep
		m.starVal[w] = d
		return d
	}
	var queue, order []int32
	for _, w := range []int32{u, v} {
		if m.core[w] == r && m.inCand[w] != ep && supOf(w) < r {
			m.inCand[w] = ep
			queue = append(queue, w)
		}
	}
	for len(queue) > 0 {
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, w)
		for _, x := range m.adj[w] {
			if m.core[x] == r && m.inCand[x] != ep {
				s := supOf(x) - 1
				m.starVal[x] = s
				if s < r {
					m.inCand[x] = ep
					queue = append(queue, x)
				}
			}
		}
	}
	if len(order) == 0 {
		// No core change; only the two endpoints' deg+ shrinks.
		m.degp[u] = m.computeDegp(u)
		m.degp[v] = m.computeDegp(v)
		return nil
	}
	for _, w := range order {
		m.core[w] = r - 1
		m.list.Remove(w)
	}
	// Dropped vertices land at the end of O_{r-1} in drop order: each had
	// support < r at drop time, which bounds its new deg+.
	for _, w := range order {
		m.list.InsertBefore(w, m.sentinel(r))
	}
	m.refreshDegp(order)
	m.degp[u] = m.computeDegp(u)
	m.degp[v] = m.computeDegp(v)
	return nil
}

// refreshDegp recomputes deg+ for the moved vertices and all their
// neighbors (the only vertices whose deg+ can have changed).
func (m *OrderMaintainer) refreshDegp(moved []int32) {
	m.epoch++
	ep := m.epoch
	recompute := func(x int32) {
		if m.inHeap[x] != ep { // reuse inHeap stamps as "already refreshed"
			m.inHeap[x] = ep
			m.degp[x] = m.computeDegp(x)
		}
	}
	for _, c := range moved {
		recompute(c)
		for _, x := range m.adj[c] {
			recompute(x)
		}
	}
}

// ensureLevel makes sure the sentinel for level k exists in the order.
func (m *OrderMaintainer) ensureLevel(k int32) {
	for m.maxK < k {
		m.maxK++
		m.list.PushBack(m.sentinel(m.maxK))
	}
}

func (m *OrderMaintainer) deleteArcO(u, v int32) bool {
	a := m.adj[u]
	for i, x := range a {
		if x == v {
			a[i] = a[len(a)-1]
			m.adj[u] = a[:len(a)-1]
			return true
		}
	}
	return false
}

func (m *OrderMaintainer) checkEnds(u, v int32) error {
	n := int32(len(m.adj))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("dynamic: endpoint out of range (%d,%d) with n=%d", u, v, n)
	}
	if u == v {
		return fmt.Errorf("dynamic: self-loop (%d,%d)", u, v)
	}
	return nil
}

// CheckInvariants verifies the k-order invariants, for tests: cores are
// non-decreasing along the order, sentinels delimit the levels, and
// deg+(v) <= c(v) with deg+ matching its definition.
func (m *OrderMaintainer) CheckInvariants() error {
	level := int32(-1)
	seen := 0
	for x := m.list.First(); x >= 0; x = m.list.Next(x) {
		if x >= m.n {
			k := x - m.n
			if k != level+1 {
				return fmt.Errorf("sentinel for level %d after level %d", k, level)
			}
			level = k
			continue
		}
		seen++
		if m.core[x] != level {
			return fmt.Errorf("vertex %d (core %d) sits in level-%d region", x, m.core[x], level)
		}
	}
	if seen != len(m.adj) {
		return fmt.Errorf("order holds %d vertices, graph has %d", seen, len(m.adj))
	}
	for v := int32(0); v < m.n; v++ {
		want := m.computeDegp(v)
		if m.degp[v] != want {
			return fmt.Errorf("deg+(%d) cached %d, actual %d", v, m.degp[v], want)
		}
		if want > m.core[v] {
			return fmt.Errorf("deg+(%d) = %d exceeds core %d: order invalid", v, want, m.core[v])
		}
	}
	return nil
}
