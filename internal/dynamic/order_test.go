package dynamic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
)

func checkOrderAgainstRecompute(t *testing.T, m *OrderMaintainer, label string) {
	t.Helper()
	want := coredecomp.Serial(m.Snapshot())
	got := m.CorenessAll()
	if !reflect.DeepEqual(got, want) {
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("%s: coreness[%d] = %d, recompute says %d", label, v, got[v], want[v])
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
}

func TestOrderInitialInvariants(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.MustFromEdges(1, nil),
		graph.MustFromEdges(5, nil),
		gen.ErdosRenyi(80, 250, 1),
		gen.Onion(4, 10, 2, 2, 2, 2),
		gen.BarabasiAlbert(60, 4, 3),
	} {
		m := NewOrder(g)
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("initial order invalid: %v", err)
		}
	}
}

func TestOrderInsertBasics(t *testing.T) {
	m := NewOrder(graph.MustFromEdges(6, nil))
	if err := m.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	checkOrderAgainstRecompute(t, m, "one edge")
	if m.Coreness(0) != 1 || m.Coreness(1) != 1 {
		t.Errorf("coreness after one edge: %v", m.CorenessAll())
	}
	if err := m.InsertEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.InsertEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	checkOrderAgainstRecompute(t, m, "triangle")
	if m.Coreness(2) != 2 {
		t.Errorf("triangle coreness: %v", m.CorenessAll())
	}
	// Errors.
	if err := m.InsertEdge(0, 1); err == nil {
		t.Error("duplicate insert accepted")
	}
	if err := m.InsertEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := m.RemoveEdge(3, 4); err == nil {
		t.Error("absent removal accepted")
	}
}

func TestOrderRemoveBasics(t *testing.T) {
	var edges []graph.Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	m := NewOrder(graph.MustFromEdges(4, edges))
	if err := m.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	checkOrderAgainstRecompute(t, m, "K4 minus edge")
	for v := int32(0); v < 4; v++ {
		if m.Coreness(v) != 2 {
			t.Errorf("coreness[%d] = %d, want 2", v, m.Coreness(v))
		}
	}
}

func TestOrderRandomMutationSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 50
	m := NewOrder(gen.ErdosRenyi(n, 120, 6))
	for step := 0; step < 500; step++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if m.HasEdge(u, v) {
			if err := m.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := m.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		if step%10 == 0 {
			checkOrderAgainstRecompute(t, m, "random sequence")
		}
	}
	checkOrderAgainstRecompute(t, m, "final")
}

func TestOrderMatchesTraversalMaintainer(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 70
	g := gen.PlantedPartition(3, 24, 0.25, 0.01, 7)
	n = g.NumVertices()
	a := New(g)
	b := NewOrder(g)
	for step := 0; step < 600; step++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if a.HasEdge(u, v) {
			if err := a.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
			if err := b.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := a.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
			if err := b.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !reflect.DeepEqual(a.CorenessAll(), b.CorenessAll()) {
		t.Error("traversal and order-based maintainers diverge")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestOrderMutationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, steps uint8) bool {
		n := int(nRaw%30) + 2
		rng := rand.New(rand.NewSource(seed))
		m := NewOrder(gen.ErdosRenyi(n, 2*n, seed))
		for s := 0; s < int(steps); s++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				continue
			}
			if m.HasEdge(u, v) {
				if m.RemoveEdge(u, v) != nil {
					return false
				}
			} else {
				if m.InsertEdge(u, v) != nil {
					return false
				}
			}
			if m.CheckInvariants() != nil {
				return false
			}
		}
		return reflect.DeepEqual(m.CorenessAll(), coredecomp.Serial(m.Snapshot()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOrderInsertER(b *testing.B) {
	// The giant-shell regime where the traversal maintainer degrades:
	// order-based insertion stays near O(1) on its fast path.
	g := gen.ErdosRenyi(20000, 120000, 5)
	m := NewOrder(g)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := int32(rng.Intn(20000))
		v := int32(rng.Intn(20000))
		if u == v || m.HasEdge(u, v) {
			continue
		}
		if err := m.InsertEdge(u, v); err != nil {
			b.Fatal(err)
		}
	}
}

// TestOrderWheelRise builds the hardest insertion pattern: a broken wheel
// whose repair makes hub and rim rise together (a large riser block whose
// internal order matters for validity).
func TestOrderWheelRise(t *testing.T) {
	// Hub 0, rim 1..10 in a cycle with one missing rim edge (1,10).
	var edges []graph.Edge
	for i := int32(1); i <= 10; i++ {
		edges = append(edges, graph.Edge{U: 0, V: i})
	}
	for i := int32(1); i < 10; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	g := graph.MustFromEdges(11, edges)
	m := NewOrder(g)
	for v := int32(0); v < 11; v++ {
		if m.Coreness(v) != 2 {
			t.Fatalf("broken wheel should be all coreness 2: %v", m.CorenessAll())
		}
	}
	if err := m.InsertEdge(1, 10); err != nil {
		t.Fatal(err)
	}
	checkOrderAgainstRecompute(t, m, "wheel closed")
	for v := int32(0); v < 11; v++ {
		if m.Coreness(v) != 3 {
			t.Fatalf("closed wheel should be all coreness 3: %v", m.CorenessAll())
		}
	}
	// And back.
	if err := m.RemoveEdge(1, 10); err != nil {
		t.Fatal(err)
	}
	checkOrderAgainstRecompute(t, m, "wheel reopened")
}

// TestOrderChainedRises stresses repeated rises through the same level:
// growing a clique edge by edge forces a coreness bump on many inserts.
func TestOrderChainedRises(t *testing.T) {
	n := 12
	m := NewOrder(graph.MustFromEdges(n, nil))
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			if err := m.InsertEdge(i, j); err != nil {
				t.Fatal(err)
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("after (%d,%d): %v", i, j, err)
			}
		}
	}
	checkOrderAgainstRecompute(t, m, "complete graph built")
	for v := int32(0); v < int32(n); v++ {
		if m.Coreness(v) != int32(n-1) {
			t.Fatalf("K%d coreness = %v", n, m.CorenessAll())
		}
	}
	// Tear it down edge by edge.
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			if err := m.RemoveEdge(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	checkOrderAgainstRecompute(t, m, "complete graph dismantled")
}

// TestOrderDenseStress drives a dense mutation mix on a graph with both a
// deep hierarchy and a giant flat shell, checking invariants throughout.
func TestOrderDenseStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := gen.Onion(4, 15, 2, 3, 2, 9)
	m := NewOrder(g)
	rng := rand.New(rand.NewSource(55))
	n := int32(g.NumVertices())
	for step := 0; step < 1500; step++ {
		u, v := rng.Int31n(n), rng.Int31n(n)
		if u == v {
			continue
		}
		if m.HasEdge(u, v) {
			if err := m.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := m.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		if step%50 == 0 {
			checkOrderAgainstRecompute(t, m, "dense stress")
		}
	}
	checkOrderAgainstRecompute(t, m, "dense stress final")
}
