package dynamic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

func checkAgainstRecompute(t *testing.T, m *Maintainer, label string) {
	t.Helper()
	want := coredecomp.Serial(m.Snapshot())
	got := m.CorenessAll()
	if !reflect.DeepEqual(got, want) {
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("%s: coreness[%d] = %d, recompute says %d", label, v, got[v], want[v])
			}
		}
	}
}

func TestInsertSingleEdges(t *testing.T) {
	g := graph.MustFromEdges(6, nil)
	m := New(g)
	if err := m.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if m.Coreness(0) != 1 || m.Coreness(1) != 1 {
		t.Errorf("single edge should make both endpoints coreness 1")
	}
	checkAgainstRecompute(t, m, "one edge")
	// Build a triangle.
	if err := m.InsertEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.InsertEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	if m.Coreness(0) != 2 || m.Coreness(1) != 2 || m.Coreness(2) != 2 {
		t.Errorf("triangle should be coreness 2: %v", m.CorenessAll())
	}
	checkAgainstRecompute(t, m, "triangle")
}

func TestInsertErrors(t *testing.T) {
	m := New(graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}}))
	if err := m.InsertEdge(0, 1); err == nil {
		t.Error("duplicate insert accepted")
	}
	if err := m.InsertEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := m.InsertEdge(0, 9); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := m.RemoveEdge(1, 2); err == nil {
		t.Error("absent removal accepted")
	}
}

func TestRemoveSingleEdges(t *testing.T) {
	// Triangle plus pendant.
	m := New(graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3},
	}))
	if err := m.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	checkAgainstRecompute(t, m, "after break triangle")
	if m.Coreness(0) != 1 || m.Coreness(1) != 1 {
		t.Errorf("breaking the triangle should drop coreness to 1: %v", m.CorenessAll())
	}
	if err := m.RemoveEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if m.Coreness(3) != 0 {
		t.Errorf("pendant removal should isolate vertex 3")
	}
	checkAgainstRecompute(t, m, "after pendant removal")
}

func TestCascadingRemoval(t *testing.T) {
	// K4: removing one edge drops all four vertices from 3 to 2.
	var edges []graph.Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	m := New(graph.MustFromEdges(4, edges))
	if err := m.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 4; v++ {
		if m.Coreness(v) != 2 {
			t.Errorf("coreness[%d] = %d, want 2", v, m.Coreness(v))
		}
	}
	checkAgainstRecompute(t, m, "K4 minus edge")
}

func TestRandomMutationSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 60
	m := New(gen.ErdosRenyi(n, 150, 5))
	for step := 0; step < 400; step++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if m.HasEdge(u, v) {
			if err := m.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := m.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		if step%20 == 0 {
			checkAgainstRecompute(t, m, "random sequence")
		}
	}
	checkAgainstRecompute(t, m, "final state")
}

func TestMutationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, steps uint8) bool {
		n := int(nRaw%40) + 2
		rng := rand.New(rand.NewSource(seed))
		m := New(gen.ErdosRenyi(n, 2*n, seed))
		for s := 0; s < int(steps); s++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				continue
			}
			if m.HasEdge(u, v) {
				if m.RemoveEdge(u, v) != nil {
					return false
				}
			} else {
				if m.InsertEdge(u, v) != nil {
					return false
				}
			}
		}
		return reflect.DeepEqual(m.CorenessAll(), coredecomp.Serial(m.Snapshot()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyRebuildLazily(t *testing.T) {
	m := New(gen.ErdosRenyi(80, 240, 9))
	h1 := m.Hierarchy(2)
	if h1 != m.Hierarchy(2) {
		t.Error("unchanged graph must not rebuild the hierarchy")
	}
	if err := m.InsertEdge(firstMissing(m)); err != nil {
		t.Fatal(err)
	}
	h2 := m.Hierarchy(2)
	if h2 == h1 {
		t.Error("mutation must invalidate the cached hierarchy")
	}
	g := m.Snapshot()
	core := coredecomp.Serial(g)
	if err := hierarchy.Validate(h2, g, core); err != nil {
		t.Errorf("rebuilt hierarchy invalid: %v", err)
	}
	if !hierarchy.Equal(h2, hierarchy.BruteForce(g, core)) {
		t.Error("rebuilt hierarchy differs from brute force")
	}
}

func TestSnapshotMatchesState(t *testing.T) {
	m := New(gen.BarabasiAlbert(50, 3, 2))
	before := m.NumEdges()
	u, v := firstMissing(m)
	if err := m.InsertEdge(u, v); err != nil {
		t.Fatal(err)
	}
	g := m.Snapshot()
	if g.NumEdges() != before+1 || m.NumEdges() != before+1 {
		t.Errorf("edge counts diverge: snapshot %d, maintainer %d, want %d",
			g.NumEdges(), m.NumEdges(), before+1)
	}
	if !g.HasEdge(u, v) {
		t.Error("snapshot missing inserted edge")
	}
	if m.Degree(u) != g.Degree(u) {
		t.Error("degree mismatch")
	}
}

func firstMissing(m *Maintainer) (int32, int32) {
	n := int32(m.NumVertices())
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !m.HasEdge(u, v) {
				return u, v
			}
		}
	}
	panic("complete graph")
}

func BenchmarkInsertEdge(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 6, 1)
	m := New(g)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := int32(rng.Intn(10000))
		v := int32(rng.Intn(10000))
		if u == v || m.HasEdge(u, v) {
			continue
		}
		if err := m.InsertEdge(u, v); err != nil {
			b.Fatal(err)
		}
	}
}
