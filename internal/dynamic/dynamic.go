// Package dynamic maintains a core decomposition — and, on demand, the
// HCD — under edge insertions and deletions, the setting of the paper's
// companion work on hierarchical core maintenance [15] (Lin et al.,
// PVLDB 2021) cited in §VII.
//
// Coreness is maintained incrementally with the classical subcore
// traversal algorithms (Sarıyüce et al., PVLDB 2013; Li, Yu, Mao, TKDE
// 2014): an inserted or deleted edge (u, v) can only change the coreness
// of vertices with coreness r = min(c(u), c(v)), by exactly one, and only
// inside a region reachable from the endpoints through coreness-r
// vertices.
//
//   - Insertion: the candidate region is the *purecore* — coreness-r
//     vertices whose upper-bound degree MCD = |{x : c(x) >= r}| exceeds r,
//     reachable through such vertices (every rising vertex qualifies and
//     the rising set is connected through rising vertices). Peeling
//     candidates whose bound falls to r leaves exactly the vertices whose
//     coreness becomes r+1.
//   - Deletion: a lazy dissolve cascade from the endpoints; supports are
//     computed on first touch, so work is proportional to the dropped
//     region plus its boundary.
//
// Traversal-based maintenance is simple and exact, but on graphs whose
// k-shells form giant components a single insertion can traverse a large
// purecore; the order-based algorithm of Zhang et al. (ICDE 2017) removes
// that weakness and is noted as future work in DESIGN.md.
//
// The hierarchy itself is rebuilt lazily with PHCD when requested after
// mutations; coreness maintenance is where the incremental asymptotics
// matter.
package dynamic

import (
	"fmt"
	"sort"

	core2 "hcd/internal/core"
	"hcd/internal/coredecomp"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

// Maintainer is a mutable graph with an incrementally-maintained core
// decomposition. Not safe for concurrent use.
type Maintainer struct {
	adj   [][]int32 // unsorted adjacency lists
	core  []int32
	edges int64

	h      *hierarchy.HCD
	hDirty bool

	// Epoch-stamped scratch state, reused across operations.
	mark    []int64 // traversal marks
	epoch   int64
	candVal []int32 // cd / support values, valid when stamp matches
	candEp  []int64
	mcdVal  []int32 // per-operation MCD memo
	mcdEp   []int64
}

// New creates a Maintainer holding a copy of g and its core decomposition.
func New(g *graph.Graph) *Maintainer {
	n := g.NumVertices()
	m := &Maintainer{
		adj:     make([][]int32, n),
		core:    coredecomp.Serial(g),
		edges:   g.NumEdges(),
		hDirty:  true,
		mark:    make([]int64, n),
		candVal: make([]int32, n),
		candEp:  make([]int64, n),
		mcdVal:  make([]int32, n),
		mcdEp:   make([]int64, n),
	}
	for v := 0; v < n; v++ {
		m.adj[v] = append([]int32(nil), g.Neighbors(int32(v))...)
	}
	return m
}

// NumVertices returns the number of vertices.
func (m *Maintainer) NumVertices() int { return len(m.adj) }

// NumEdges returns the current number of undirected edges.
func (m *Maintainer) NumEdges() int64 { return m.edges }

// Coreness returns the current coreness of v.
func (m *Maintainer) Coreness(v int32) int32 { return m.core[v] }

// CorenessAll returns a copy of the full coreness array.
func (m *Maintainer) CorenessAll() []int32 {
	out := make([]int32, len(m.core))
	copy(out, m.core)
	return out
}

// HasEdge reports whether (u, v) currently exists. O(min degree).
func (m *Maintainer) HasEdge(u, v int32) bool {
	a := m.adj[u]
	if len(m.adj[v]) < len(a) {
		a, u, v = m.adj[v], v, u
	}
	for _, x := range a {
		if x == v {
			return true
		}
	}
	return false
}

// Degree returns v's current degree.
func (m *Maintainer) Degree(v int32) int { return len(m.adj[v]) }

// Snapshot materialises the current graph as an immutable CSR graph.
func (m *Maintainer) Snapshot() *graph.Graph {
	var edges []graph.Edge
	for v := range m.adj {
		for _, u := range m.adj[v] {
			if int32(v) < u {
				edges = append(edges, graph.Edge{U: int32(v), V: u})
			}
		}
	}
	return graph.MustFromEdges(len(m.adj), edges)
}

// Hierarchy returns the HCD of the current graph, rebuilding it with PHCD
// if any mutation happened since the previous call.
func (m *Maintainer) Hierarchy(threads int) *hierarchy.HCD {
	if m.hDirty || m.h == nil {
		m.h = core2.PHCD(m.Snapshot(), m.CorenessAll(), threads)
		m.hDirty = false
	}
	return m.h
}

// mcd counts v's neighbors with coreness at least r.
func (m *Maintainer) mcd(v int32, r int32) int32 {
	var d int32
	for _, x := range m.adj[v] {
		if m.core[x] >= r {
			d++
		}
	}
	return d
}

// InsertEdge adds the undirected edge (u, v), updating coreness
// incrementally. Inserting an existing edge or a self-loop is an error.
func (m *Maintainer) InsertEdge(u, v int32) error {
	if err := m.checkEnds(u, v); err != nil {
		return err
	}
	if m.HasEdge(u, v) {
		return fmt.Errorf("dynamic: edge (%d,%d) already present", u, v)
	}
	m.adj[u] = append(m.adj[u], v)
	m.adj[v] = append(m.adj[v], u)
	m.edges++
	m.hDirty = true

	r := min(m.core[u], m.core[v])
	cand := m.purecore(u, v, r)
	if len(cand) == 0 {
		return nil
	}
	// inCand is encoded in candEp/candVal: stamp == epoch means candidate,
	// value is the cd upper bound (neighbors with coreness > r plus
	// candidate neighbors).
	m.epoch++
	ep := m.epoch
	for _, w := range cand {
		m.candEp[w] = ep
	}
	for _, w := range cand {
		var d int32
		for _, x := range m.adj[w] {
			if m.core[x] > r || m.candEp[x] == ep {
				d++
			}
		}
		m.candVal[w] = d
	}
	// Peel candidates that cannot reach degree r+1. Eviction clears the
	// stamp so evicted vertices stop counting for their neighbors.
	queue := make([]int32, 0, len(cand))
	for _, w := range cand {
		if m.candVal[w] <= r {
			queue = append(queue, w)
			m.candEp[w] = 0
		}
	}
	for len(queue) > 0 {
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, x := range m.adj[w] {
			if m.candEp[x] == ep {
				m.candVal[x]--
				if m.candVal[x] <= r {
					m.candEp[x] = 0
					queue = append(queue, x)
				}
			}
		}
	}
	for _, w := range cand {
		if m.candEp[w] == ep {
			m.core[w] = r + 1
			m.candEp[w] = 0
		}
	}
	return nil
}

// RemoveEdge deletes the undirected edge (u, v), updating coreness
// incrementally. Removing an absent edge is an error.
func (m *Maintainer) RemoveEdge(u, v int32) error {
	if err := m.checkEnds(u, v); err != nil {
		return err
	}
	if !m.deleteArc(u, v) {
		return fmt.Errorf("dynamic: edge (%d,%d) not present", u, v)
	}
	m.deleteArc(v, u)
	m.edges--
	m.hDirty = true

	r := min(m.core[u], m.core[v])
	// Lazy dissolve cascade: supports are computed on first touch
	// (candEp/candVal double as the support cache), and coreness writes
	// are deferred so each support decrements exactly once per dropped
	// neighbor. mark stamps record "already dropped".
	m.epoch++
	ep := m.epoch
	supOf := func(w int32) int32 {
		if m.candEp[w] == ep {
			return m.candVal[w]
		}
		d := m.mcd(w, r)
		m.candEp[w] = ep
		m.candVal[w] = d
		return d
	}
	var queue, order []int32
	for _, w := range []int32{u, v} {
		if m.core[w] == r && m.mark[w] != ep && supOf(w) < r {
			m.mark[w] = ep
			queue = append(queue, w)
		}
	}
	for len(queue) > 0 {
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, w)
		for _, x := range m.adj[w] {
			if m.core[x] == r && m.mark[x] != ep {
				s := supOf(x) - 1
				m.candVal[x] = s
				if s < r {
					m.mark[x] = ep
					queue = append(queue, x)
				}
			}
		}
	}
	for _, w := range order {
		m.core[w] = r - 1
	}
	return nil
}

// deleteArc removes v from u's list, reporting whether it was present.
func (m *Maintainer) deleteArc(u, v int32) bool {
	a := m.adj[u]
	for i, x := range a {
		if x == v {
			a[i] = a[len(a)-1]
			m.adj[u] = a[:len(a)-1]
			return true
		}
	}
	return false
}

// purecore returns the insertion candidate region: coreness-r vertices
// with PCD > r reachable from the endpoints through such vertices, where
// PCD(w) counts neighbors that could coexist with w in an (r+1)-core —
// coreness > r, or coreness r with MCD > r (Sarıyüce's second-order
// pruning; every rising vertex satisfies PCD > r and the rising set is
// connected through rising vertices). Sorted ascending.
func (m *Maintainer) purecore(u, v int32, r int32) []int32 {
	m.epoch++
	ep := m.epoch
	mcdOf := func(w int32) int32 {
		if m.mcdEp[w] == ep {
			return m.mcdVal[w]
		}
		d := m.mcd(w, r)
		m.mcdEp[w] = ep
		m.mcdVal[w] = d
		return d
	}
	pcd := func(w int32) int32 {
		var d int32
		for _, x := range m.adj[w] {
			if m.core[x] > r || (m.core[x] == r && mcdOf(x) > r) {
				d++
			}
		}
		return d
	}
	var out, queue []int32
	push := func(w int32) {
		if m.core[w] != r || m.mark[w] == ep {
			return
		}
		m.mark[w] = ep
		if pcd(w) > r {
			queue = append(queue, w)
		}
	}
	push(u)
	push(v)
	for len(queue) > 0 {
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		out = append(out, w)
		for _, x := range m.adj[w] {
			push(x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *Maintainer) checkEnds(u, v int32) error {
	n := int32(len(m.adj))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("dynamic: endpoint out of range (%d,%d) with n=%d", u, v, n)
	}
	if u == v {
		return fmt.Errorf("dynamic: self-loop (%d,%d)", u, v)
	}
	return nil
}
