// Package clique finds the maximum clique of a graph — the application of
// Table IV's right half, which shows that PBKS-D's output core contains
// the maximum clique with high probability and is thus a strong pruning
// space for clique search.
//
// The solver is a classical branch-and-bound in the style of Tomita's MCS
// with two k-core-based pruning rules the paper's setting makes natural:
//
//   - a clique of size q lies entirely inside the (q-1)-core, so vertices
//     with coreness < best are skipped as search roots;
//   - candidates are expanded in degeneracy order, bounding each root's
//     candidate set by its coreness + 1;
//   - within a branch, a greedy colouring of the candidate set upper-bounds
//     the residual clique size.
package clique

import (
	"sort"

	"hcd/internal/coredecomp"
	"hcd/internal/graph"
)

// Max returns one maximum clique of g (vertex ids, ascending) — empty for
// an empty graph, a single vertex for an edgeless one.
func Max(g *graph.Graph) []int32 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	core := coredecomp.Serial(g)
	// Degeneracy order: ascending coreness, ties by id (the vertex-rank
	// order). pos[v] = position of v in that order.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := order[a], order[b]
		if core[va] != core[vb] {
			return core[va] < core[vb]
		}
		return va < vb
	})
	pos := make([]int32, n)
	for i, v := range order {
		pos[v] = int32(i)
	}

	s := &solver{g: g, core: core, pos: pos, best: []int32{order[0]}}
	// Roots in reverse degeneracy order: dense vertices first, so the
	// coreness bound prunes aggressively.
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		if int(core[v])+1 <= len(s.best) {
			// Every remaining root has coreness <= core[v]; no larger
			// clique can start here or later.
			break
		}
		// Candidates: neighbors after v in degeneracy order.
		var cand []int32
		for _, u := range g.Neighbors(v) {
			if pos[u] > pos[v] {
				cand = append(cand, u)
			}
		}
		s.expand([]int32{v}, cand)
	}
	out := append([]int32(nil), s.best...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

type solver struct {
	g    *graph.Graph
	core []int32
	pos  []int32
	best []int32
}

// expand grows the current clique cur with vertices from cand (all
// adjacent to every member of cur).
func (s *solver) expand(cur, cand []int32) {
	if len(cur) > len(s.best) {
		s.best = append(s.best[:0], cur...)
	}
	if len(cand) == 0 || len(cur)+len(cand) <= len(s.best) {
		return
	}
	// Greedy colouring bound: order cand by colour so the last vertices
	// carry the highest bounds (Tomita's ordering).
	colours := colourBound(s.g, cand)
	for i := len(cand) - 1; i >= 0; i-- {
		if len(cur)+int(colours[i]) <= len(s.best) {
			return // colour bound: no extension from here can win
		}
		v := cand[i]
		var next []int32
		for j := 0; j < i; j++ {
			if s.g.HasEdge(v, cand[j]) {
				next = append(next, cand[j])
			}
		}
		s.expand(append(cur, v), next)
	}
}

// colourBound greedily colours cand's induced subgraph and returns, for
// each position i, the colour number of cand[i] after reordering cand so
// colour numbers are non-decreasing. cand is permuted in place.
func colourBound(g *graph.Graph, cand []int32) []int32 {
	n := len(cand)
	colours := make([]int32, n)
	var classes [][]int32
	for _, v := range cand {
		placed := false
		for ci, class := range classes {
			conflict := false
			for _, u := range class {
				if g.HasEdge(v, u) {
					conflict = true
					break
				}
			}
			if !conflict {
				classes[ci] = append(class, v)
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []int32{v})
		}
	}
	i := 0
	for ci, class := range classes {
		for _, v := range class {
			cand[i] = v
			colours[i] = int32(ci + 1)
			i++
		}
	}
	return colours
}

// Contains reports whether every vertex of clique lies in set.
func Contains(set []int32, clique []int32) bool {
	in := make(map[int32]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for _, v := range clique {
		if !in[v] {
			return false
		}
	}
	return true
}
