package clique

import (
	"math/rand"
	"reflect"
	"testing"

	"hcd/internal/gen"
	"hcd/internal/graph"
)

// bruteMaxCliqueSize enumerates all subsets (n <= 20).
func bruteMaxCliqueSize(g *graph.Graph) int {
	n := g.NumVertices()
	best := 0
	for mask := 1; mask < 1<<n; mask++ {
		var verts []int32
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				verts = append(verts, int32(v))
			}
		}
		if len(verts) <= best {
			continue
		}
		ok := true
		for i := 0; i < len(verts) && ok; i++ {
			for j := i + 1; j < len(verts); j++ {
				if !g.HasEdge(verts[i], verts[j]) {
					ok = false
					break
				}
			}
		}
		if ok {
			best = len(verts)
		}
	}
	return best
}

func isClique(g *graph.Graph, verts []int32) bool {
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if !g.HasEdge(verts[i], verts[j]) {
				return false
			}
		}
	}
	return true
}

func TestMaxKnownGraphs(t *testing.T) {
	if got := Max(graph.MustFromEdges(0, nil)); got != nil {
		t.Errorf("empty graph clique = %v", got)
	}
	if got := Max(graph.MustFromEdges(3, nil)); len(got) != 1 {
		t.Errorf("edgeless clique = %v, want single vertex", got)
	}
	// Triangle plus a tail.
	g := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}, {U: 3, V: 4},
	})
	if got := Max(g); !reflect.DeepEqual(got, []int32{0, 1, 2}) {
		t.Errorf("triangle clique = %v", got)
	}
	// K6.
	var edges []graph.Edge
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	k6 := graph.MustFromEdges(6, edges)
	if got := Max(k6); len(got) != 6 {
		t.Errorf("K6 clique size = %d", len(got))
	}
	// Bipartite K3,3 has max clique 2.
	bip := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 3}, {U: 0, V: 4}, {U: 0, V: 5},
		{U: 1, V: 3}, {U: 1, V: 4}, {U: 1, V: 5},
		{U: 2, V: 3}, {U: 2, V: 4}, {U: 2, V: 5},
	})
	if got := Max(bip); len(got) != 2 {
		t.Errorf("K3,3 clique size = %d, want 2", len(got))
	}
}

func TestMaxMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(12)
		m := rng.Intn(n * n / 2)
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		got := Max(g)
		if !isClique(g, got) {
			t.Fatalf("trial %d: output %v is not a clique", trial, got)
		}
		if want := bruteMaxCliqueSize(g); len(got) != want {
			t.Fatalf("trial %d: clique size %d, want %d", trial, len(got), want)
		}
	}
}

func TestMaxFindsPlantedClique(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 300
	var edges []graph.Edge
	for i := 0; i < 900; i++ {
		edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
	}
	// Plant a K10 on vertices 50..59.
	for i := 50; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	g := graph.MustFromEdges(n, edges)
	got := Max(g)
	if len(got) < 10 {
		t.Errorf("planted K10 missed: found size %d (%v)", len(got), got)
	}
	if !isClique(g, got) {
		t.Errorf("output is not a clique")
	}
}

func TestContains(t *testing.T) {
	if !Contains([]int32{1, 2, 3, 4}, []int32{2, 4}) {
		t.Error("subset not detected")
	}
	if Contains([]int32{1, 2}, []int32{2, 5}) {
		t.Error("non-subset accepted")
	}
	if !Contains(nil, nil) {
		t.Error("empty clique is always contained")
	}
}

func BenchmarkMaxClique(b *testing.B) {
	g := gen.BarabasiAlbert(2000, 10, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Max(g)
	}
}
