package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hcd/internal/par"
)

// identity rank: vertex id is its own rank.
func idRank(n int) []int32 {
	r := make([]int32, n)
	for i := range r {
		r[i] = int32(i)
	}
	return r
}

func TestSerialBasics(t *testing.T) {
	u := New(5, idRank(5))
	if !u.SameSet(2, 2) {
		t.Error("element not in its own set")
	}
	if u.SameSet(0, 1) {
		t.Error("singletons merged")
	}
	u.Union(0, 1)
	u.Union(3, 4)
	if !u.SameSet(0, 1) || !u.SameSet(3, 4) || u.SameSet(1, 3) {
		t.Error("union wiring wrong")
	}
	u.Union(1, 4)
	if !u.SameSet(0, 3) {
		t.Error("transitive union failed")
	}
	if got := u.Unions(); got != 3 {
		t.Errorf("Unions = %d, want 3", got)
	}
	u.Union(0, 4) // no-op
	if got := u.Unions(); got != 3 {
		t.Errorf("no-op union counted: %d", got)
	}
}

func TestSerialPivotFollowsLowestRank(t *testing.T) {
	// Reverse ranks: higher id = lower rank, so pivot should become the
	// highest id in each set.
	n := 6
	vrank := make([]int32, n)
	for i := 0; i < n; i++ {
		vrank[i] = int32(n - 1 - i)
	}
	u := New(n, vrank)
	u.Union(0, 1)
	if got := u.Pivot(0); got != 1 {
		t.Errorf("pivot = %d, want 1 (lowest rank)", got)
	}
	u.Union(1, 5)
	if got := u.Pivot(0); got != 5 {
		t.Errorf("pivot = %d, want 5", got)
	}
	// 2-3 merge: pivot 3; merging into big set keeps 5.
	u.Union(2, 3)
	u.Union(3, 0)
	if got := u.Pivot(2); got != 5 {
		t.Errorf("pivot after big merge = %d, want 5", got)
	}
}

func TestConcurrentMatchesSerialSequentially(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 300
	vrank := rng.Perm(n)
	vr := make([]int32, n)
	for i, r := range vrank {
		vr[i] = int32(r)
	}
	s := New(n, vr)
	c := NewConcurrent(n, vr)
	for i := 0; i < 500; i++ {
		x, y := int32(rng.Intn(n)), int32(rng.Intn(n))
		s.Union(x, y)
		c.Union(x, y)
	}
	for i := 0; i < 1000; i++ {
		x, y := int32(rng.Intn(n)), int32(rng.Intn(n))
		if s.SameSet(x, y) != c.SameSet(x, y) {
			t.Fatalf("SameSet(%d,%d) differs between serial and concurrent", x, y)
		}
		if s.Pivot(x) != c.Pivot(x) {
			t.Fatalf("Pivot(%d): serial %d, concurrent %d", x, s.Pivot(x), c.Pivot(x))
		}
	}
}

func TestConcurrentParallelStress(t *testing.T) {
	n := 2000
	vr := idRank(n)
	// Build a random union workload, apply it in parallel, then verify
	// against a serial replay.
	rng := rand.New(rand.NewSource(99))
	type pair struct{ x, y int32 }
	ops := make([]pair, 8000)
	for i := range ops {
		ops[i] = pair{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	c := NewConcurrent(n, vr)
	par.ForEach(len(ops), 8, func(i int) { c.Union(ops[i].x, ops[i].y) })
	s := New(n, vr)
	for _, op := range ops {
		s.Union(op.x, op.y)
	}
	for v := int32(0); v < int32(n); v++ {
		if s.Pivot(v) != c.Pivot(v) {
			t.Fatalf("vertex %d: serial pivot %d, concurrent pivot %d", v, s.Pivot(v), c.Pivot(v))
		}
	}
}

func TestConcurrentRootIsPivot(t *testing.T) {
	// With arbitrary rank permutations, the concurrent root must always be
	// the minimum-rank member of its component.
	f := func(seed int64, nRaw uint8, opsRaw uint16) bool {
		n := int(nRaw%100) + 2
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n)
		vr := make([]int32, n)
		for i, r := range perm {
			vr[i] = int32(r)
		}
		c := NewConcurrent(n, vr)
		members := make(map[int32][]int32) // via serial mirror
		s := New(n, vr)
		for i := 0; i < int(opsRaw%500); i++ {
			x, y := int32(rng.Intn(n)), int32(rng.Intn(n))
			c.Union(x, y)
			s.Union(x, y)
		}
		for v := int32(0); v < int32(n); v++ {
			members[s.Find(v)] = append(members[s.Find(v)], v)
		}
		for _, set := range members {
			var minV int32 = -1
			for _, v := range set {
				if minV < 0 || vr[v] < vr[minV] {
					minV = v
				}
			}
			for _, v := range set {
				if c.Find(v) != minV {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSerialUnionFind(b *testing.B) {
	n := 100000
	vr := idRank(n)
	rng := rand.New(rand.NewSource(1))
	xs := make([]int32, n)
	ys := make([]int32, n)
	for i := range xs {
		xs[i], ys[i] = int32(rng.Intn(n)), int32(rng.Intn(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := New(n, vr)
		for j := range xs {
			u.Union(xs[j], ys[j])
		}
	}
}

func BenchmarkConcurrentUnionFind(b *testing.B) {
	n := 100000
	vr := idRank(n)
	rng := rand.New(rand.NewSource(1))
	xs := make([]int32, n)
	ys := make([]int32, n)
	for i := range xs {
		xs[i], ys[i] = int32(rng.Intn(n)), int32(rng.Intn(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := NewConcurrent(n, vr)
		par.ForEach(len(xs), 0, func(j int) { u.Union(xs[j], ys[j]) })
	}
}

func TestRootAPIs(t *testing.T) {
	// UnionRoot / LinkRoots / PivotOfRoot must agree with plain Union.
	n := 8
	vrank := make([]int32, n)
	for i := 0; i < n; i++ {
		vrank[i] = int32(n - 1 - i) // reversed ranks
	}
	u := New(n, vrank)
	r := u.Find(0)
	r = u.UnionRoot(r, 1)
	r = u.UnionRoot(r, 2)
	if got := u.UnionRoot(r, 2); got != r {
		t.Error("same-set UnionRoot must return the root unchanged")
	}
	if u.PivotOfRoot(r) != 2 {
		t.Errorf("pivot = %d, want 2 (lowest rank)", u.PivotOfRoot(r))
	}
	// LinkRoots joins two resolved roots.
	r2 := u.Find(5)
	r2 = u.UnionRoot(r2, 6)
	merged := u.LinkRoots(r, r2)
	if u.LinkRoots(merged, merged) != merged {
		t.Error("self LinkRoots must be a no-op")
	}
	if !u.SameSet(0, 6) {
		t.Error("LinkRoots did not merge the sets")
	}
	if u.Pivot(0) != 6 {
		t.Errorf("merged pivot = %d, want 6", u.Pivot(0))
	}
	// Mirror with plain Union on a fresh structure: same components.
	w := New(n, vrank)
	for _, pair := range [][2]int32{{0, 1}, {0, 2}, {5, 6}, {0, 5}} {
		w.Union(pair[0], pair[1])
	}
	for v := int32(0); v < int32(n); v++ {
		if u.SameSet(0, v) != w.SameSet(0, v) {
			t.Fatalf("root-API and Union disagree at %d", v)
		}
		if u.SameSet(0, v) && u.Pivot(v) != w.Pivot(v) {
			t.Fatalf("pivots disagree at %d", v)
		}
	}
}
