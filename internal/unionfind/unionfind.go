// Package unionfind implements the disjoint-set structures behind PHCD
// (§III-B of the paper): a serial union-find with pivot tracking, exactly
// as the paper describes (pivot stored at the cardinal element, updated on
// union), and a concurrent lock-free variant for the parallel algorithm.
//
// A pivot (Definition 5) is the vertex with the lowest vertex rank in a
// connected component. Both implementations take the dense vertex-rank
// permutation computed by Algorithm 1; rank comparison is one integer
// compare.
//
// The concurrent variant departs from the paper's wait-free union-find
// [Anderson–Woll] in one engineering decision: roots are linked *by vertex
// rank* (the lower-rank root always wins), so the root of every set is by
// construction its pivot and GetPivot is simply Find. This removes the
// separate pivot field and every read-update race on it while preserving
// the abstraction the algorithm needs. Find uses path halving, whose
// concurrent writes are benign parent shortcuts (they only ever move a
// vertex's parent closer to its root).
package unionfind

import (
	"sync/atomic"
)

// UF is the serial union-find with pivot, mirroring §III-B: parent pointer,
// size-based union, and the pivot maintained at each cardinal element.
type UF struct {
	parent []int32
	size   []int32
	pivot  []int32 // valid at roots only
	vrank  []int32 // vrank[v] = dense vertex rank of v (lower = lower rank)
	unions int64   // number of successful (merging) unions
}

// New creates a serial union-find over n singleton elements. vrank must be
// a permutation of [0, n) giving each vertex's rank; it is retained, not
// copied.
func New(n int, vrank []int32) *UF {
	u := &UF{
		parent: make([]int32, n),
		size:   make([]int32, n),
		pivot:  make([]int32, n),
		vrank:  vrank,
	}
	for i := int32(0); i < int32(n); i++ {
		u.parent[i] = i
		u.size[i] = 1
		u.pivot[i] = i
	}
	return u
}

// Find returns the cardinal element of x's set, with path halving.
func (u *UF) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of x and y. The new cardinal element's pivot is
// the lower-vertex-rank pivot of the two sets, per the paper's rule.
func (u *UF) Union(x, y int32) {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return
	}
	if u.size[rx] < u.size[ry] {
		rx, ry = ry, rx
	}
	// rx survives as the cardinal element.
	u.parent[ry] = rx
	u.size[rx] += u.size[ry]
	if u.vrank[u.pivot[ry]] < u.vrank[u.pivot[rx]] {
		u.pivot[rx] = u.pivot[ry]
	}
	u.unions++
}

// UnionRoot merges y's set into the set whose cardinal element is root
// (callers pass a value previously returned by Find or UnionRoot) and
// returns the surviving cardinal element. It saves the redundant Find on
// the already-resolved side when one element is united with many others in
// a row — the access pattern of PHCD's Step 2.
func (u *UF) UnionRoot(root, y int32) int32 {
	ry := u.Find(y)
	if root == ry {
		return root
	}
	rx := root
	if u.size[rx] < u.size[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	u.size[rx] += u.size[ry]
	if u.vrank[u.pivot[ry]] < u.vrank[u.pivot[rx]] {
		u.pivot[rx] = u.pivot[ry]
	}
	u.unions++
	return rx
}

// PivotOfRoot returns the pivot stored at a cardinal element previously
// returned by Find/UnionRoot/LinkRoots. It skips the Find that Pivot pays.
func (u *UF) PivotOfRoot(root int32) int32 { return u.pivot[root] }

// LinkRoots merges the two sets whose cardinal elements are rx and ry
// (both must be current roots) and returns the surviving cardinal element.
// This is the zero-Find core of Union for callers that already resolved
// both sides.
func (u *UF) LinkRoots(rx, ry int32) int32 {
	if rx == ry {
		return rx
	}
	if u.size[rx] < u.size[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	u.size[rx] += u.size[ry]
	if u.vrank[u.pivot[ry]] < u.vrank[u.pivot[rx]] {
		u.pivot[rx] = u.pivot[ry]
	}
	u.unions++
	return rx
}

// SameSet reports whether x and y are in the same set.
func (u *UF) SameSet(x, y int32) bool { return u.Find(x) == u.Find(y) }

// Pivot returns the pivot (lowest-vertex-rank element) of x's set.
func (u *UF) Pivot(x int32) int32 { return u.pivot[u.Find(x)] }

// Unions returns the number of merging unions performed, the quantity the
// paper's LB baseline lower-bounds construction cost with.
func (u *UF) Unions() int64 { return u.unions }

// Concurrent is the lock-free union-find used by the parallel PHCD. All
// methods are safe for concurrent use. See the package comment for why the
// root is always the pivot.
type Concurrent struct {
	parent []atomic.Int32
	vrank  []int32
}

// NewConcurrent creates a concurrent union-find over n singletons with the
// given vertex-rank permutation (retained, not copied).
func NewConcurrent(n int, vrank []int32) *Concurrent {
	u := &Concurrent{
		parent: make([]atomic.Int32, n),
		vrank:  vrank,
	}
	for i := 0; i < n; i++ {
		u.parent[i].Store(int32(i))
	}
	return u
}

// Find returns the root (== pivot) of x's set. It walks to the root with
// plain loads and then installs the root as x's parent with a single
// store — a benign write even under races, since any value written is an
// ancestor of x at the time of the write (roots only ever get linked
// further up, never detached).
func (u *Concurrent) Find(x int32) int32 {
	r := x
	for {
		p := u.parent[r].Load()
		if p == r {
			break
		}
		r = p
	}
	// Full path compression: point every node on the walk at the root.
	for x != r {
		next := u.parent[x].Load()
		u.parent[x].Store(r)
		x = next
	}
	return r
}

// Union merges the sets of x and y; the root with the lower vertex rank
// wins, so set roots remain pivots. Lock-free: on CAS failure the whole
// operation retries from fresh roots.
func (u *Concurrent) Union(x, y int32) {
	for {
		rx, ry := u.Find(x), u.Find(y)
		if rx == ry {
			return
		}
		// Make ry the loser (higher vertex rank).
		if u.vrank[rx] > u.vrank[ry] {
			rx, ry = ry, rx
		}
		if u.parent[ry].CompareAndSwap(ry, rx) {
			return
		}
		// ry was linked elsewhere concurrently; retry.
	}
}

// SameSet reports whether x and y are in the same set at some point during
// the call. (Standard caveat: concurrent unions may merge them right
// after.) Loops until it observes two stable equal-or-distinct roots.
func (u *Concurrent) SameSet(x, y int32) bool {
	for {
		rx, ry := u.Find(x), u.Find(y)
		if rx == ry {
			return true
		}
		// If rx is still a root, the two were distinct at this instant.
		if u.parent[rx].Load() == rx {
			return false
		}
	}
}

// Pivot returns the pivot of x's set; identical to Find by construction.
func (u *Concurrent) Pivot(x int32) int32 { return u.Find(x) }
