// Call graph: the interprocedural backbone under the ctx-propagation,
// goroutine-lifetime and (indirectly) hot-loop-alloc checks. Built from
// the same go/types information the per-function checks already use —
// no SSA, no x/tools — it resolves three call shapes over every loaded
// package:
//
//	static     a call whose callee resolves to a declared function or
//	           method (generic instantiations collapse to their origin
//	           declaration, so one node covers every instantiation)
//	interface  a call through an interface-typed receiver resolves to
//	           every loaded concrete method with the same name and
//	           parameter signature whose receiver type implements the
//	           interface (class-hierarchy analysis — conservative
//	           over-approximation)
//	dynamic    a call through a func-typed value resolves to every
//	           loaded address-taken function with an identical
//	           signature (signature-match analysis — conservative)
//
// Calls made inside function literals are attributed to the enclosing
// declared function: for reachability questions ("can F's execution
// enter a cancellable region?") the literal runs under the declaration
// that created it. Soundness caveats (reflection, funcs stored in
// maps/fields then called in another package, methods called only from
// outside the loaded set) are documented in DESIGN.md "Static analysis
// & invariants".
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CGNode is one declared function or method in the loaded packages.
type CGNode struct {
	// Func is the canonical (origin, for generics) object.
	Func *types.Func
	// Pkg is the package the declaration was loaded from.
	Pkg *Package
	// Decl is the declaration, with body.
	Decl *ast.FuncDecl

	// Callees maps each resolved callee to the call positions.
	Callees map[*CGNode][]token.Pos
	// Callers is the reverse adjacency, filled after construction.
	Callers []*CGNode

	// ObservesCtx: the body calls Done/Err/Deadline on a
	// context.Context value — the function reacts to cancellation.
	ObservesCtx bool
	// ObservesDone: the body contains a select with a receive case on a
	// Done-like channel (ctx.Done(), a chan struct{}), a direct receive
	// from one, or a for-range over a channel — the shapes that bound a
	// goroutine's lifetime to an external signal.
	ObservesDone bool
	// FaultSite: the body calls faultinject.Maybe — a fault-injection
	// point that can panic or stall, so the surrounding machinery must
	// be containment-aware.
	FaultSite bool

	// witness is the next hop on one shortest path to a cancellable
	// sink, filled by Cancellable; nil on the sink itself.
	witness *CGNode
}

// CallGraph indexes every declared function of the loaded packages.
type CallGraph struct {
	module string
	// Nodes is keyed by the canonical *types.Func.
	Nodes map[*types.Func]*CGNode
	// Ordered lists the nodes in declaration-position order; traversals
	// use it so edge lists, witness chains and messages are stable
	// across runs (map iteration order is randomised).
	Ordered []*CGNode

	// byName indexes concrete methods by name for interface resolution.
	byName map[string][]*CGNode
	// bySig indexes address-taken functions by signature string for
	// dynamic (func-value) resolution.
	bySig map[string][]*CGNode
}

// NodeOf returns the node for fn (resolving generic instantiations to
// their origin), or nil when fn was not declared in the loaded set.
func (g *CallGraph) NodeOf(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.Nodes[fn.Origin()]
}

// BuildCallGraph constructs the module call graph over ctx.Pkgs.
func BuildCallGraph(ctx *Context) *CallGraph {
	g := &CallGraph{
		module: ctx.Loader.Module,
		Nodes:  map[*types.Func]*CGNode{},
		byName: map[string][]*CGNode{},
		bySig:  map[string][]*CGNode{},
	}
	// Pass 1: index declarations, address-taken functions.
	addrTaken := map[*types.Func]bool{}
	for _, pkg := range ctx.Pkgs {
		// A function identifier used anywhere but the operator position
		// of a call has its address taken (passed, stored, returned): it
		// becomes a dynamic-dispatch candidate. Mark callee idents first
		// so the package-wide Uses sweep can tell call uses from value
		// uses.
		callUses := map[*ast.Ident]bool{}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &CGNode{Func: fn, Pkg: pkg, Decl: fd, Callees: map[*CGNode][]token.Pos{}}
				g.Nodes[fn] = n
				g.Ordered = append(g.Ordered, n)
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					g.byName[fn.Name()] = append(g.byName[fn.Name()], n)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id := calleeIdent(call); id != nil {
						callUses[id] = true
					}
				}
				return true
			})
		}
		for id, obj := range pkg.Info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || callUses[id] {
				continue
			}
			addrTaken[fn.Origin()] = true
		}
	}
	for _, n := range g.Ordered {
		if addrTaken[n.Func] {
			g.bySig[sigKey(n.Func)] = append(g.bySig[sigKey(n.Func)], n)
		}
	}

	// Pass 2: resolve call sites and compute per-node facts.
	faultPath := g.module + "/internal/faultinject"
	for _, n := range g.Ordered {
		g.resolveBody(n, faultPath)
	}
	for _, n := range g.Ordered {
		callees := make([]*CGNode, 0, len(n.Callees))
		for callee := range n.Callees {
			callees = append(callees, callee)
		}
		sort.Slice(callees, func(i, j int) bool { return callees[i].Func.Pos() < callees[j].Func.Pos() })
		for _, callee := range callees {
			callee.Callers = append(callee.Callers, n)
		}
	}
	return g
}

// calleeIdent returns the identifier in the callee position of a call
// (the selector's Sel for method/package calls), or nil.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel
	case *ast.Ident:
		return fun
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return id
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return id
		}
	}
	return nil
}

// resolveBody walks one declaration's body, adding edges and facts.
func (g *CallGraph) resolveBody(n *CGNode, faultPath string) {
	pkg := n.Pkg
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			g.resolveCall(n, pkg, node, faultPath)
		case *ast.SelectStmt:
			if selectHasDoneCase(pkg, node) {
				n.ObservesDone = true
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && isDoneLikeChan(pkg, node.X) {
				n.ObservesDone = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					n.ObservesDone = true
				}
			}
		}
		return true
	})
}

// cgCalleeFunc resolves a call's callee to a *types.Func, including
// explicitly instantiated generic callees (IndexExpr/IndexListExpr),
// which the per-check calleeFunc helper does not need to handle.
func cgCalleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	if id := calleeIdent(call); id != nil {
		if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// resolveCall classifies one call site and records its edges and facts.
func (g *CallGraph) resolveCall(n *CGNode, pkg *Package, call *ast.CallExpr, faultPath string) {
	if fn := cgCalleeFunc(pkg, call); fn != nil {
		if fn.Pkg() != nil {
			switch {
			case fn.Pkg().Path() == faultPath && fn.Name() == "Maybe":
				n.FaultSite = true
			case isCtxObserver(fn):
				n.ObservesCtx = true
			}
		}
		// Interface dispatch resolves to implementations; everything
		// else is a static edge to the declaration (when loaded).
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s := pkg.Info.Selections[sel]; s != nil {
				if _, isIface := s.Recv().Underlying().(*types.Interface); isIface {
					iface := s.Recv().Underlying().(*types.Interface)
					for _, cand := range g.byName[fn.Name()] {
						if implementsWithMethod(cand, iface, fn) {
							n.addEdge(cand, call.Pos())
						}
					}
					return
				}
			}
		}
		if callee := g.NodeOf(fn); callee != nil {
			n.addEdge(callee, call.Pos())
		}
		return
	}
	// No *types.Func: a call through a func-typed value (parameter,
	// variable, field, or another call's result). Conservatively edge to
	// every address-taken function with an identical signature.
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for _, cand := range g.bySig[cgSigString(sig)] {
		n.addEdge(cand, call.Pos())
	}
}

func (n *CGNode) addEdge(callee *CGNode, pos token.Pos) {
	n.Callees[callee] = append(n.Callees[callee], pos)
}

// sigKey renders fn's signature without its receiver, so methods and
// functions with the same parameter/result shape share a key.
func sigKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	return cgSigString(sig)
}

// sigString canonicalises a signature to parameter and result types
// only (names and receiver dropped).
func cgSigString(sig *types.Signature) string {
	ps := make([]string, sig.Params().Len())
	for i := range ps {
		ps[i] = sig.Params().At(i).Type().String()
	}
	rs := make([]string, sig.Results().Len())
	for i := range rs {
		rs[i] = sig.Results().At(i).Type().String()
	}
	s := "(" + join(ps) + ")(" + join(rs) + ")"
	if sig.Variadic() {
		s += "..."
	}
	return s
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

// implementsWithMethod reports whether cand's receiver type satisfies
// iface and cand has the same name and parameter signature as the
// interface method m.
func implementsWithMethod(cand *CGNode, iface *types.Interface, m *types.Func) bool {
	sig, ok := cand.Func.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if !types.Implements(recv, iface) && !types.Implements(types.NewPointer(recv), iface) {
		// recv may itself be the pointer type already.
		return false
	}
	msig, ok := m.Type().(*types.Signature)
	if !ok {
		return false
	}
	return cgSigString(sig) == cgSigString(msig)
}

// isCtxObserver reports whether fn is one of the context.Context (or
// http.Request deadline) methods whose call means the function reacts
// to cancellation.
func isCtxObserver(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if !isContextType(sig.Recv().Type()) {
		return false
	}
	switch fn.Name() {
	case "Done", "Err", "Deadline":
		return true
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isHTTPRequestPtr reports whether t is *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// selectHasDoneCase reports whether a select statement has a receive
// case on a Done-like channel.
func selectHasDoneCase(pkg *Package, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = s.X
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				recv = s.Rhs[0]
			}
		}
		ue, ok := ast.Unparen(recv).(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			continue
		}
		if isDoneLikeChan(pkg, ue.X) {
			return true
		}
	}
	return false
}

// isDoneLikeChan reports whether e is a cancellation-signal channel: a
// ctx.Done() call, or any receive-capable channel of struct{} / empty
// element (the done/stop/quit idiom).
func isDoneLikeChan(pkg *Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if fn := calleeFunc(pkg, call); fn != nil && isCtxObserver(fn) && fn.Name() == "Done" {
			return true
		}
	}
	tv, ok := pkg.Info.Types[e]
	if !ok {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// Cancellable computes the cancellable-reaching set: every node from
// which execution can (per the conservative edges) enter a function
// that observes its context or contains a fault-injection site. Each
// member's witness chain records one path to a sink, for messages.
func (g *CallGraph) Cancellable() map[*CGNode]bool {
	set := map[*CGNode]bool{}
	var frontier []*CGNode
	for _, n := range g.Ordered {
		if n.ObservesCtx || n.FaultSite {
			set[n] = true
			n.witness = nil
			frontier = append(frontier, n)
		}
	}
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, n := range frontier {
			for _, caller := range n.Callers {
				if !set[caller] {
					set[caller] = true
					caller.witness = n
					next = append(next, caller)
				}
			}
		}
		frontier = next
	}
	return set
}

// SinkOf follows n's witness chain to the cancellable sink it reaches.
// Only meaningful for members of the Cancellable set.
func (g *CallGraph) SinkOf(n *CGNode) *CGNode {
	for n.witness != nil {
		n = n.witness
	}
	return n
}

// ReachesDone reports whether n (or anything it transitively calls)
// contains a select/receive on a Done-like signal — the interprocedural
// half of the goroutine-lifetime check.
func (g *CallGraph) ReachesDone(n *CGNode) bool {
	seen := map[*CGNode]bool{}
	var walk func(*CGNode) bool
	walk = func(m *CGNode) bool {
		if seen[m] {
			return false
		}
		seen[m] = true
		if m.ObservesDone {
			return true
		}
		for callee := range m.Callees {
			if walk(callee) {
				return true
			}
		}
		return false
	}
	return walk(n)
}
