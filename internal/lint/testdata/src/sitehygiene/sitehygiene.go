// Package sitehygiene is a hcdlint testdata fixture: fault sites and
// span/metric names that are dynamic, ungrammatical, or duplicated.
package sitehygiene

import (
	"context"

	"hcd/internal/faultinject"
	"hcd/internal/obs"
)

// Touch exercises every site-hygiene failure mode.
func Touch(name string) {
	faultinject.Maybe(name)           // dynamic site name
	faultinject.Maybe("Bad_Site")     // grammar violation
	faultinject.Maybe("fixture.site") // clean
	faultinject.Maybe("fixture.site") // duplicate

	obs.StartSpan("fixture.span").End()
	obs.StartSpan("fixture.span").End() // duplicate span
	obs.StartSpanArg("fixture.span.arg.deep", 1).End()

	// The ctx/tag constructors carry the span name at a different
	// argument index; the same grammar and uniqueness rules apply.
	ctx := context.Background()
	obs.StartSpanCtx(ctx, "fixture.ctxspan").End()
	obs.StartSpanCtx(ctx, "Bad.CtxSpan").End()       // grammar violation
	obs.StartSpanCtxArg(ctx, name, 1).End()          // dynamic span name
	obs.StartPhaseCtx(ctx, "fixture.ctxphase").End() // clean
	obs.StartSpanTag("fixture.ctxspan", name).End()  // duplicate of the ctx span

	c := obs.NewCounter("Bad-Metric", "fixture")
	c.Inc()
	g := obs.NewGauge(obs.Name("hcd_fixture_gauge", "thread", name), "fixture") // clean: literal base, hcd_ prefix
	g.Set(1)
	u := obs.NewCounter("fixture_unprefixed_total", "fixture") // grammar violation: missing hcd_ namespace
	u.Inc()

	_ = obs.NewPhaseStat("rank+layout", 0, obs.WorkerStats{})  // clean: '+' joins fused stages
	_ = obs.NewPhaseStat("fixture.span", 0, obs.WorkerStats{}) // clean: repeating a span name is the point of a phase stat
	_ = obs.NewPhaseStat("Bad+Phase", 0, obs.WorkerStats{})    // grammar violation
	_ = obs.NewPhaseStat(name, 0, obs.WorkerStats{})           // dynamic phase name
}
