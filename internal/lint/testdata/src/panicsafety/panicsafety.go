// Package panicsafety is a hcdlint testdata fixture: every re-panicking
// par wrapper, one waived call, and one clean *Err call.
package panicsafety

import (
	"context"

	"hcd/internal/par"
)

// Exercise calls each wrapper the panic-safety check steers away from.
func Exercise(n int) {
	par.For(n, 0, func(lo, hi int) {})
	par.ForEach(n, 0, func(i int) {})
	par.ForChunked(n, 0, 64, func(lo, hi int) {})
	par.Run(func() {})

	//hcdlint:allow panic-safety fixture: demonstrates a waived legacy site
	par.ForEach(n, 0, func(i int) {})

	_ = par.ForEachErr(context.Background(), n, 0, func(i int) error { return nil })
}
