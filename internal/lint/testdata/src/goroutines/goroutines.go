// Package goroutines is a hcdlint testdata fixture for the
// goroutine-lifetime check: the accepted bounding shapes (WaitGroup
// join, channel send, Done-like select, range-over-channel, an
// interprocedurally reachable signal), one deliberately detached
// goroutine carrying an allow, and the fire-and-forget true positives.
package goroutines

import (
	"context"
	"sync"
)

// spin loops with no join and no signal — the named-function true
// positive, flagged at its spawn site.
func spin() {
	for i := 0; ; i++ {
		_ = i
	}
}

// Leak spawns unbounded goroutines — findings.
func Leak(fn func()) {
	go spin()
	go func() {
		for {
			_ = len("")
		}
	}()
	// A dynamic callee can't be analysed: conservatively a finding.
	go fn()
}

// Bounded exercises every accepted shape — all clean.
func Bounded(ctx context.Context, jobs <-chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
	wg.Wait()

	errCh := make(chan error, 1)
	go func() { errCh <- nil }()
	<-errCh

	go func() {
		select {
		case <-ctx.Done():
			return
		case j := <-jobs:
			_ = j
		}
	}()

	go func() {
		for j := range jobs {
			_ = j
		}
	}()

	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done

	// The signal lives two calls down: the literal calls watcher, which
	// selects on ctx.Done — the interprocedural accept.
	go func() {
		watcher(ctx)
	}()
}

// watcher selects on its ctx; goroutines calling it are bounded.
func watcher(ctx context.Context) {
	select {
	case <-ctx.Done():
	}
}

// Detached is fire-and-forget on purpose; the allow carries the
// argument — waived.
func Detached() {
	//hcdlint:allow goroutine-lifetime fixture: one-shot best-effort cache warmup, bounded by the work itself
	go spin()
}
