// Package ctxprop is a hcdlint testdata fixture for the
// ctx-propagation check: laundering via context.Background/TODO,
// a dropped (never-used) ctx parameter above cancellable work, and
// the shapes that must stay clean (direct propagation, the
// nil-defaulting idiom, non-ctx wrappers, a justified allow).
package ctxprop

import (
	"context"
	"io"
	"net/http"
)

type ctxKey struct{}

// waiter observes its ctx: the fixture's cancellable sink.
func waiter(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// relay passes its ctx straight down — clean.
func relay(ctx context.Context) error { return waiter(ctx) }

// launder holds a live ctx but hands the sink a fresh root — finding.
func launder(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return waiter(context.Background())
}

// launderTODO: TODO() launders exactly like Background() — finding.
func launderTODO(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return waiter(context.TODO())
}

// dropped never mentions its ctx, yet reaches the sink through fire —
// the dropped-ctx rule's true positive.
func dropped(ctx context.Context) error { return fire() }

// fire is a non-ctx wrapper: holding no ctx, its Background is the
// documented defaulting idiom and stays clean.
func fire() error { return waiter(context.Background()) }

// defaulted shows the nil-defaulting idiom — assign, then pass the
// variable — which must stay clean.
func defaulted(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return waiter(ctx)
}

// handle holds a ctx through its *http.Request; minting a root instead
// of using r.Context() is laundering too — finding.
func handle(w io.Writer, r *http.Request) {
	_ = r.Host
	_ = waiter(context.Background())
}

// detached uses its ctx for values only and detaches the write on
// purpose, with the justification in the allow — waived.
func detached(ctx context.Context) error {
	_ = ctx.Value(ctxKey{})
	//hcdlint:allow ctx-propagation fixture: the audit write must complete even when the request is cancelled
	return waiter(context.Background())
}
