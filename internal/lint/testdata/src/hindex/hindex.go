// Package hindex is a hcdlint testdata fixture: an asynchronous local
// h-index convergence loop, the shape of coredecomp's hindex kernel.
// Its directory base name is on the determinism check's kernel-package
// list, so the seeded-rand trap below must be flagged — randomised
// worklist scheduling would make round counts (and any telemetry
// derived from them) vary per run even though the fixpoint is unique.
package hindex

import "math/rand"

// Converge iterates local h-index updates over a worklist until
// fixpoint. The shuffle draws from the global math/rand source: a
// determinism finding. The explicitly seeded generator below it is the
// sanctioned idiom and stays clean.
func Converge(adj [][]int32, h []int32) []int32 {
	work := make([]int32, len(h))
	for v := range work {
		work[v] = int32(v)
	}
	rng := rand.New(rand.NewSource(42))
	for len(work) > 0 {
		// "Randomising the scan order reduces contention" — but the
		// global source makes every run's round structure different.
		rand.Shuffle(len(work), func(i, j int) { work[i], work[j] = work[j], work[i] })
		_ = rng.Intn(len(work)) // seeded source: not flagged
		var next []int32
		for _, v := range work {
			old := h[v]
			nh := hIndex(adj[v], h, old)
			if nh < old {
				h[v] = nh
				next = append(next, adj[v]...)
			}
		}
		work = next
	}
	return h
}

// hIndex computes the largest j such that at least j values of hs
// (clamped to bound) reach j, by counting.
func hIndex(neigh []int32, hs []int32, bound int32) int32 {
	cnt := make([]int32, bound+1)
	for _, u := range neigh {
		x := hs[u]
		if x > bound {
			x = bound
		}
		cnt[x]++
	}
	var sum int32
	for j := bound; j >= 1; j-- {
		sum += cnt[j]
		if sum >= j {
			return j
		}
	}
	return 0
}
