// Package treeaccum is a hcdlint testdata fixture. Its directory base
// name matches a kernel package, so the hot-loop-alloc check applies to
// the loop bodies it hands to par: closures, fmt, string concatenation
// and growing appends inside the hot body are findings; preallocated
// buffers, hoisted state and a justified allow stay clean.
package treeaccum

import (
	"context"
	"fmt"
	"strconv"

	"hcd/internal/par"
)

// Accumulate walks into every hot-loop allocation trap the check knows.
func Accumulate(ctx context.Context, xs []int64, threads int) error {
	names := make([]string, len(xs))
	return par.ForErr(ctx, len(xs), threads, func(lo, hi int) error {
		var local []int64
		tag := ""
		for i := lo; i < hi; i++ {
			local = append(local, xs[i])
			names[i] = fmt.Sprintf("node-%d", i)
			tag += strconv.Itoa(i)
			f := func() int64 { return xs[i] }
			xs[i] = f()
		}
		_, _ = local, tag
		return nil
	})
}

// Gather appends to a slice captured from outside the body — the
// race-plus-allocation shape.
func Gather(ctx context.Context, xs []int64, threads int) error {
	var all []int64
	err := par.ForErr(ctx, len(xs), threads, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			all = append(all, xs[i])
		}
		return nil
	})
	_ = all
	return err
}

// Clean does the same work with the blessed shapes: per-worker buffers
// preallocated inside the body, indexed writes into hoisted slices, and
// strconv instead of fmt.
func Clean(ctx context.Context, xs []int64, out []string, threads int) error {
	return par.ForChunkedErr(ctx, len(xs), threads, 4096, func(lo, hi int) error {
		local := make([]int64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			local = append(local, xs[i])
			out[i] = strconv.FormatInt(xs[i], 10)
		}
		_ = local
		return nil
	})
}

// Recycle pins the two capacity-reuse idioms as clean: a body-local
// initialised from a reslice of a per-worker buffer, and a scratch
// slice recycled in place with s = s[:0].
func Recycle(ctx context.Context, xs []int64, bufs [][]int64, threads int) error {
	return par.ForErr(ctx, len(xs), threads, func(lo, hi int) error {
		local := bufs[0][:0]
		var scratch []int64
		for i := lo; i < hi; i++ {
			local = append(local, xs[i])
			scratch = scratch[:0]
			scratch = append(scratch, xs[i])
		}
		_, _ = local, scratch
		return nil
	})
}

// ColdPath formats inside the hot body but only on the error path that
// aborts the whole kernel — the justified allow.
func ColdPath(ctx context.Context, xs []int64, threads int) error {
	return par.ForErr(ctx, len(xs), threads, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if xs[i] < 0 {
				//hcdlint:allow hot-loop-alloc fixture: error path, runs at most once per kernel abort
				return fmt.Errorf("negative value at %d", i)
			}
		}
		return nil
	})
}
