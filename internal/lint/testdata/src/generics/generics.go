// Package generics is a hcdlint testdata fixture: type-parameterised
// code the loader must type-check and the call graph must resolve —
// implicit and explicit instantiations collapse to their origin
// declarations (asserted by TestCallGraphResolvesGenerics). One
// deliberate errcheck finding inside a generic body proves the checks
// traverse generic code like any other.
package generics

import "strconv"

// Number constrains Sum's element type.
type Number interface {
	~int | ~int64 | ~float64
}

// Map applies f over xs — the generic callee the graph must resolve.
func Map[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

// Sum folds xs — instantiated explicitly below.
func Sum[T Number](xs []T) T {
	var s T
	for _, x := range xs {
		s += x
	}
	return s
}

// Double is passed as a func value: an address-taken dynamic-dispatch
// candidate.
func Double(x int) int { return x * 2 }

// Use calls Map with an inferred instantiation: the graph must edge
// Use -> Map (the origin declaration).
func Use(xs []int) []int {
	return Map(xs, Double)
}

// UseExplicit instantiates Sum explicitly (an IndexExpr callee): the
// graph must edge UseExplicit -> Sum.
func UseExplicit(xs []float64) float64 {
	return Sum[float64](xs)
}

// Parse drops an error inside a generic body — the checks see through
// type parameters (errcheck finding).
func Parse[T any](raw string, out *T) {
	strconv.Atoi(raw)
	_ = out
}
