// Package allowdir is a hcdlint testdata fixture for the allow
// directive itself: malformed directives are findings, well-formed ones
// waive exactly one check on the next line.
package allowdir

import "errors"

func fail() error { return errors.New("no") }

// Use pairs directives with the calls they (try to) waive.
func Use() {
	//hcdlint:allow
	fail()
	//hcdlint:allow errcheck
	fail()
	//hcdlint:allow errcheck fixture: a justified waiver suppresses the finding
	fail()
	//hcdlint:allow determinism fixture: wrong check name, so the errcheck finding survives
	fail()
}
