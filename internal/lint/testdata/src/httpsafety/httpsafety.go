// Package httpsafety exercises the panic-safety check's HTTP arm:
// Handle/HandleFunc registrations must route through serve.Protect so a
// panicking handler produces a complete JSON 500 instead of a torn
// response.
package httpsafety

import (
	"net/http"

	"hcd/internal/serve"
)

func index(w http.ResponseWriter, r *http.Request) {
	_, _ = w.Write([]byte("ok"))
}

// logged stands in for an instrumentation middleware (request IDs,
// access logs) that wraps an already-protected handler.
func logged(route string, h http.Handler) http.Handler {
	_ = route
	return h
}

func routes() http.Handler {
	mux := http.NewServeMux()

	// Wrapped registrations are fine, with or without parentheses.
	mux.Handle("/good", serve.Protect(http.HandlerFunc(index)))
	mux.Handle("/paren", (serve.Protect(http.HandlerFunc(index))))

	// A middleware wrapper composes: recovery still sits inside it, so
	// the registration passes as long as Protect appears somewhere in
	// the wrapper's argument tree.
	mux.Handle("/observed", logged("observed", serve.Protect(http.HandlerFunc(index))))
	mux.Handle("/nested", logged("nested", logged("inner", serve.Protect(http.HandlerFunc(index)))))

	// A wrapper with no Protect anywhere inside is still bare.
	mux.Handle("/wrappedbare", logged("wrappedbare", http.HandlerFunc(index)))

	// A bare http.Handler misses the recovery wrapper.
	mux.Handle("/bare", http.HandlerFunc(index))

	// HandleFunc can never carry the wrapper: the func signature is fixed.
	mux.HandleFunc("/func", index)

	//hcdlint:allow panic-safety localhost-only debug mux, handler cannot panic
	mux.HandleFunc("/waived", index)

	return mux
}

func defaultMux() {
	// The package-level registrations hit the same rule.
	http.Handle("/pkg", http.HandlerFunc(index))
	http.HandleFunc("/pkgfunc", index)
	http.Handle("/pkggood", serve.Protect(http.HandlerFunc(index)))
}
