// Package httpsafety exercises the panic-safety check's HTTP arm:
// Handle/HandleFunc registrations must route through serve.Protect so a
// panicking handler produces a complete JSON 500 instead of a torn
// response.
package httpsafety

import (
	"net/http"

	"hcd/internal/serve"
)

func index(w http.ResponseWriter, r *http.Request) {
	_, _ = w.Write([]byte("ok"))
}

func routes() http.Handler {
	mux := http.NewServeMux()

	// Wrapped registrations are fine, with or without parentheses.
	mux.Handle("/good", serve.Protect(http.HandlerFunc(index)))
	mux.Handle("/paren", (serve.Protect(http.HandlerFunc(index))))

	// A bare http.Handler misses the recovery wrapper.
	mux.Handle("/bare", http.HandlerFunc(index))

	// HandleFunc can never carry the wrapper: the func signature is fixed.
	mux.HandleFunc("/func", index)

	//hcdlint:allow panic-safety localhost-only debug mux, handler cannot panic
	mux.HandleFunc("/waived", index)

	return mux
}

func defaultMux() {
	// The package-level registrations hit the same rule.
	http.Handle("/pkg", http.HandlerFunc(index))
	http.HandleFunc("/pkgfunc", index)
	http.Handle("/pkggood", serve.Protect(http.HandlerFunc(index)))
}
