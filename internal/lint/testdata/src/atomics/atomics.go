// Package atomics is a hcdlint testdata fixture for the
// atomic-discipline check: mixed plain/atomic field access, mixed
// plain/atomic slice-element access, a 64-bit field misaligned under
// 32-bit layout, and the clean shapes (all-atomic fields, composite
// literal initialisation, typed wrappers, a justified allow).
package atomics

import "sync/atomic"

// counters mixes a bool in front of a 64-bit atomic field: offset 4
// under GOARCH=386 layout — the alignment finding.
type counters struct {
	closed bool
	hits   int64 // accessed atomically below, misaligned on 32-bit
	misses int64
}

// aligned keeps its 64-bit atomic field first — clean layout.
type aligned struct {
	hits   int64
	closed bool
}

// wrapped uses the typed wrapper, which carries its own alignment
// guarantee and manages its own location — entirely exempt.
type wrapped struct {
	closed bool
	hits   atomic.Int64
}

// Bump updates hits atomically (and trips the 386 alignment rule).
func Bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
}

// BumpAligned is the clean layout's atomic update.
func BumpAligned(a *aligned) {
	atomic.AddInt64(&a.hits, 1)
}

// BumpWrapped goes through the typed wrapper — clean.
func BumpWrapped(w *wrapped) {
	w.hits.Add(1)
}

// Read reads the atomically-updated field plainly — finding.
func Read(c *counters) int64 {
	return c.hits
}

// ReadAllowed is the justified mixed access: construction-time, before
// the value is shared — waived.
func ReadAllowed(c *counters) int64 {
	//hcdlint:allow atomic-discipline fixture: called only before the counters struct is published to other goroutines
	return c.hits
}

// New initialises through a composite literal, which is exempt: the
// value is unpublished while it is being built.
func New() *counters {
	return &counters{hits: 0, misses: 0}
}

// Fold adds rows atomically but reads the source row plainly — the
// element-mix finding, on the same slice object.
func Fold(vals []int64, dst, src int) {
	atomic.AddInt64(&vals[dst], vals[src])
}

// Sum re-reads the elements outside the atomic epoch; element identity
// is per-variable, and sum's parameter is a different object than
// Fold's — clean (the race, if any, is Fold's).
func Sum(vals []int64) int64 {
	var s int64
	for i := range vals {
		s += vals[i]
	}
	return s
}
