// Package errcheck is a hcdlint testdata fixture: dropped and properly
// handled error returns side by side.
package errcheck

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
)

func fail() error { return errors.New("nope") }

// Use drops some errors and handles others.
func Use() {
	fail()
	_ = fail() // explicit discard: checked

	fmt.Println("conventionally ignored")
	var b bytes.Buffer
	fmt.Fprintf(&b, "in-memory writer: exempt")
	b.WriteString("exempt method")
	fmt.Fprintln(os.Stderr, "stderr: exempt")

	bw := bufio.NewWriter(os.Stdout)
	fmt.Fprint(bw, "sticky writer: exempt until Flush")
	bw.Flush() // the sticky error surfaces here: flagged

	defer fail() // deferred: not flagged by design

	if f, err := os.Open(os.DevNull); err == nil {
		f.Close()
	}
}
