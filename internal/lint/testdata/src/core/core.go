// Package core is a hcdlint testdata fixture. Its directory base name
// matches a kernel package, so the determinism check applies to it —
// exactly how a real package named core would be policed.
package core

import (
	"math/rand"
	"sort"
	"time"
)

// Decompose walks into every determinism trap the check knows.
func Decompose(weights map[int]int) []int {
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	_ = rng.Int() // explicit source: not flagged
	_ = rand.Intn(10)

	out := make([]int, len(weights))
	var order []int
	i := 0
	for k := range weights {
		order = append(order, k)
		out[i] = k
		i++
	}

	// The deterministic idiom: collect, sort, then emit — the emission
	// loop below ranges over a slice, not the map, so it is clean.
	keys := make([]int, 0, len(weights))
	for k := range weights {
		//hcdlint:allow determinism fixture: the keys are sorted immediately below, so emission order is independent of map iteration
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		out = append(out, weights[k])
	}
	_ = order
	return out
}
