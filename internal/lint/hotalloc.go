// hot-loop-alloc: the loop bodies handed to par.For*/For*Err are the
// kernels' inner loops — executed once per chunk, iterating millions of
// elements. An allocation inside one turns a memory-bandwidth-bound
// kernel into a GC-bound one, and the journal's scaling numbers quietly
// decay. Inside kernel packages (the determinism package list) this
// check flags the allocation-forcing constructs at their source:
//
//	closure        a func literal nested in the hot body allocates per
//	               invocation (and often captures loop state by
//	               reference)
//	fmt            any fmt.* call formats through interfaces — boxing
//	               allocations plus reflection
//	string concat  non-constant string + / += builds a new string per
//	               operation
//	append         growing a captured (loop-hoisted) slice races across
//	               workers; growing a body-local slice declared without
//	               capacity reallocates log(n) times per chunk —
//	               preallocate with make(len/cap) outside or size it.
//	               The capacity-reuse idioms are clean: initialising
//	               from a reslice of a per-worker buffer
//	               (local := bufs[t][:0]) or recycling in place
//	               (scratch = scratch[:0]) both amortise to zero
//	               steady-state allocation
//
// Sites that are provably cold (error paths, once-per-chunk setup) or
// deliberate carry an //hcdlint:allow with the argument.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotLoopEntry maps the par entry points to the index of their body
// argument (the hot loop). RunErr/Run are one-shot task launchers, not
// loops, and are exempt.
var hotLoopEntry = map[string]bool{
	"For": true, "ForEach": true, "ForChunked": true,
	"ForErr": true, "ForEachErr": true, "ForChunkedErr": true,
}

func hotLoopAllocCheck() *Check {
	return &Check{
		Name: "hot-loop-alloc",
		Doc:  "kernel loop bodies passed to par.For*/For*Err must avoid closures, fmt, string concatenation, and growing appends",
		Run: func(ctx *Context) ([]Diagnostic, error) {
			parPath := ctx.Loader.Module + "/internal/par"
			var diags []Diagnostic
			walkFiles(ctx, func(pkg *Package, f *ast.File) {
				if !IsKernelPackage(pkg.Path) {
					return
				}
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(pkg, call)
					if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != parPath ||
						!hotLoopEntry[fn.Name()] || len(call.Args) == 0 {
						return true
					}
					body, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
					if !ok {
						return true
					}
					diags = append(diags, hotBodyFindings(ctx, pkg, fn.Name(), body)...)
					return true
				})
			})
			return diags, nil
		},
	}
}

// hotBodyFindings scans one hot-loop body literal.
func hotBodyFindings(ctx *Context, pkg *Package, entry string, body *ast.FuncLit) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(body.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			diags = append(diags, ctx.diag("hot-loop-alloc", n.Pos(),
				"func literal inside a par.%s body allocates a closure per invocation; hoist it out of the hot loop", entry))
			return false // its innards are the closure's problem, reported once
		case *ast.CallExpr:
			if fn := calleeFunc(pkg, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				diags = append(diags, ctx.diag("hot-loop-alloc", n.Pos(),
					"fmt.%s inside a par.%s body allocates (interface boxing + reflection) per call; format outside the kernel or use strconv on a preallocated buffer", fn.Name(), entry))
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					diags = append(diags, appendFinding(ctx, pkg, entry, body, n)...)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(pkg, n) {
				diags = append(diags, ctx.diag("hot-loop-alloc", n.Pos(),
					"string concatenation inside a par.%s body allocates per operation; build strings outside the kernel", entry))
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isNonConstString(pkg, n.Lhs[0]) {
				diags = append(diags, ctx.diag("hot-loop-alloc", n.Pos(),
					"string += inside a par.%s body allocates per operation; build strings outside the kernel", entry))
			}
		}
		return true
	})
	return diags
}

// isNonConstString reports whether e has string type and is not a
// compile-time constant (constant folding costs nothing at runtime).
func isNonConstString(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// appendFinding classifies an append in a hot body: appending to a
// slice captured from outside the body is an allocation and a
// cross-worker race; appending to a body-local slice declared without
// capacity reallocates as it grows.
func appendFinding(ctx *Context, pkg *Package, entry string, body *ast.FuncLit, call *ast.CallExpr) []Diagnostic {
	id := rootIdent(call.Args[0])
	if id == nil {
		return nil
	}
	obj := pkg.Info.ObjectOf(id)
	if obj == nil || obj.Pos() == token.NoPos {
		return nil
	}
	if obj.Pos() < body.Pos() || obj.Pos() > body.End() {
		return []Diagnostic{ctx.diag("hot-loop-alloc", call.Pos(),
			"append to %q, captured from outside the par.%s body: reallocation plus a cross-worker data race; give each worker its own buffer or preallocate and index", id.Name, entry)}
	}
	if preallocated(pkg, body, obj) {
		return nil
	}
	return []Diagnostic{ctx.diag("hot-loop-alloc", call.Pos(),
		"append grows body-local %q, declared without capacity: it reallocates as it grows every invocation; preallocate with make(..., 0, cap)", id.Name)}
}

// preallocated reports whether obj provably carries capacity inside
// body: declared with a make carrying an explicit cap or a non-zero
// length, initialised from a reslice of an existing buffer
// (local := bufs[t][:0]), or recycled in place (obj = obj[:0]). Only
// `var s []T`, `s := []T{}` and `make([]T, 0)` grow from nothing.
func preallocated(pkg *Package, body *ast.FuncLit, obj types.Object) bool {
	prealloc := false
	ast.Inspect(body.Body, func(n ast.Node) bool {
		if prealloc {
			return false
		}
		var rhs ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				switch n.Tok {
				case token.DEFINE:
					if pkg.Info.Defs[lid] == obj {
						rhs = n.Rhs[i]
					}
				case token.ASSIGN:
					// obj = obj[:0] — the in-place recycle idiom.
					if pkg.Info.Uses[lid] != obj {
						continue
					}
					if se, ok := ast.Unparen(n.Rhs[i]).(*ast.SliceExpr); ok {
						if rid := rootIdent(se.X); rid != nil && pkg.Info.Uses[rid] == obj {
							prealloc = true
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pkg.Info.Defs[name] == obj && i < len(n.Values) {
					rhs = n.Values[i]
				}
			}
		default:
			return true
		}
		if rhs == nil {
			return true
		}
		// A reslice of an existing buffer inherits its capacity.
		if _, ok := ast.Unparen(rhs).(*ast.SliceExpr); ok {
			prealloc = true
			return true
		}
		mk, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return true
		}
		mid, ok := ast.Unparen(mk.Fun).(*ast.Ident)
		if !ok || mid.Name != "make" {
			return true
		}
		if _, isBuiltin := pkg.Info.Uses[mid].(*types.Builtin); !isBuiltin {
			return true
		}
		switch len(mk.Args) {
		case 3:
			prealloc = true
		case 2:
			if lit, ok := ast.Unparen(mk.Args[1]).(*ast.BasicLit); !ok || lit.Value != "0" {
				prealloc = true
			}
		}
		return true
	})
	return prealloc
}
