package lint

import (
	"path/filepath"
	"testing"
)

// fixtureGraph builds the call graph over one testdata/src package.
func fixtureGraph(t *testing.T, name string) *CallGraph {
	t.Helper()
	loader := newTestLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	ctx := &Context{Loader: loader, Pkgs: []*Package{pkg}}
	return ctx.CallGraph()
}

func nodeNamed(t *testing.T, g *CallGraph, name string) *CGNode {
	t.Helper()
	var found *CGNode
	for _, n := range g.Ordered {
		if n.Func.Name() == name {
			if found != nil {
				t.Fatalf("two nodes named %q: generic instantiations must collapse to one origin", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node named %q in graph (%d nodes)", name, len(g.Ordered))
	}
	return found
}

func hasEdge(from, to *CGNode) bool {
	_, ok := from.Callees[to]
	return ok
}

// TestCallGraphResolvesGenerics pins the generics satellite: calls to
// type-parameterised functions — inferred (Map(xs, Double)) and
// explicit (Sum[float64](xs), an IndexExpr callee) — resolve to the
// single origin declaration, and a func value passed at an
// instantiated call site still counts as address-taken.
func TestCallGraphResolvesGenerics(t *testing.T) {
	g := fixtureGraph(t, "generics")
	use := nodeNamed(t, g, "Use")
	useExplicit := nodeNamed(t, g, "UseExplicit")
	mapNode := nodeNamed(t, g, "Map")
	sum := nodeNamed(t, g, "Sum")
	if !hasEdge(use, mapNode) {
		t.Errorf("missing edge Use -> Map (inferred instantiation)")
	}
	if !hasEdge(useExplicit, sum) {
		t.Errorf("missing edge UseExplicit -> Sum (explicit IndexExpr instantiation)")
	}
	if hasEdge(use, sum) || hasEdge(useExplicit, mapNode) {
		t.Errorf("spurious cross edges between generic callees")
	}
	// Map's callers must include Use, via the reverse adjacency.
	callers := map[string]bool{}
	for _, c := range mapNode.Callers {
		callers[c.Func.Name()] = true
	}
	if !callers["Use"] {
		t.Errorf("Map.Callers = %v, want Use present", callers)
	}
}

// TestCallGraphCancellable pins the reachability facility on the
// ctxprop fixture: waiter observes its ctx; everything that can reach
// it is cancellable, and witness chains lead back to the sink.
func TestCallGraphCancellable(t *testing.T) {
	g := fixtureGraph(t, "ctxprop")
	waiter := nodeNamed(t, g, "waiter")
	relay := nodeNamed(t, g, "relay")
	if !waiter.ObservesCtx {
		t.Fatalf("waiter must observe its ctx (calls Done and Err)")
	}
	cancellable := g.Cancellable()
	for _, name := range []string{"waiter", "relay", "launder", "dropped", "fire"} {
		if !cancellable[nodeNamed(t, g, name)] {
			t.Errorf("%s must be in the cancellable-reaching set", name)
		}
	}
	if g.SinkOf(relay) != waiter {
		t.Errorf("SinkOf(relay) = %v, want waiter", g.SinkOf(relay).Func.Name())
	}
}

// TestCallGraphReachesDone pins the interprocedural half of
// goroutine-lifetime: watcher selects on ctx.Done, so a goroutine body
// calling it is bounded even though the select is one hop away.
func TestCallGraphReachesDone(t *testing.T) {
	g := fixtureGraph(t, "goroutines")
	watcher := nodeNamed(t, g, "watcher")
	if !watcher.ObservesDone {
		t.Fatalf("watcher must observe a Done-like signal")
	}
	if !g.ReachesDone(watcher) {
		t.Errorf("ReachesDone(watcher) = false, want true")
	}
	spin := nodeNamed(t, g, "spin")
	if g.ReachesDone(spin) {
		t.Errorf("ReachesDone(spin) = true, want false (infinite loop, no signal)")
	}
}
