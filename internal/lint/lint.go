// Package lint is hcdlint: a from-scratch static-analysis suite that
// machine-enforces the repository's determinism, panic-safety and
// build-tag invariants — the properties the paper's "parallel equals
// serial" correctness story (Theorems 1-3) rests on. Built entirely on
// the standard library's go/parser + go/ast + go/types + go/importer;
// no golang.org/x/tools.
//
// The check catalogue (see DESIGN.md "Static analysis & invariants"):
//
//	tag-parity    the noobs/nofaults noop mirrors expose byte-identical
//	              exported API surfaces to the live builds
//	determinism   kernel packages stay free of wall-clock reads, global
//	              math/rand, and map-iteration writes into ordered output
//	panic-safety  the re-panicking par.For/ForEach/ForChunked/Run
//	              wrappers stay out of library code (use the *Err
//	              ctx-aware variants)
//	site-hygiene  faultinject.Maybe sites and obs span/metric names are
//	              unique string literals matching the documented grammar
//	errcheck      unchecked error returns in non-test library code
//
// Four further checks ride the whole-module call graph (callgraph.go):
//
//	ctx-propagation    a function holding a ctx must pass it down to
//	                   cancellable work — no Background/TODO laundering,
//	                   no dropped ctx parameter
//	atomic-discipline  locations touched via sync/atomic are never read
//	                   or written plainly; 64-bit atomic fields stay
//	                   aligned on 32-bit layouts
//	goroutine-lifetime every go statement in library code is provably
//	                   bounded (WaitGroup/channel join, or a Done-like
//	                   signal in reach)
//	hot-loop-alloc     kernel inner loops stay free of allocation-forcing
//	                   constructs (closures, fmt, string concat,
//	                   unpreallocated append)
//
// A finding on a line can be waived with a directive comment on that
// line or the line above:
//
//	//hcdlint:allow <check> <reason>
//
// The reason is mandatory; an allow without one is itself a finding.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	// Check is the name of the check that produced the finding.
	Check string `json:"check"`
	// File is the path of the offending file (module-root-relative when
	// produced through Run).
	File string `json:"file"`
	// Line and Col are 1-based.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message describes the finding.
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Check is one analysis pass over the loaded packages.
type Check struct {
	// Name is the identifier used in output and allow directives.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run inspects ctx's packages and reports findings. Module-level:
	// a check sees every in-scope package at once, so cross-package
	// properties (duplicate site names, API parity) are one pass.
	Run func(ctx *Context) ([]Diagnostic, error)
}

// Context is what a check gets to work with.
type Context struct {
	// Loader built Pkgs and can build tag variants for parity checks.
	Loader *Loader
	// Pkgs are the in-scope packages, in import-path order.
	Pkgs []*Package

	cg *CallGraph // built on first CallGraph() call, shared by checks
}

// Fset returns the position table for Pkgs.
func (c *Context) Fset() *token.FileSet { return c.Loader.Fset }

// CallGraph returns the whole-module call graph over Pkgs, building it
// on first use (the interprocedural checks share one instance).
func (c *Context) CallGraph() *CallGraph {
	if c.cg == nil {
		c.cg = BuildCallGraph(c)
	}
	return c.cg
}

// relPos renders a position module-root-relative ("file.go:12") for use
// inside messages, keeping findings machine-independent.
func (c *Context) relPos(pos token.Pos) string {
	p := c.Fset().Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(c.Loader.Dir, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}

// diag builds a Diagnostic at pos.
func (c *Context) diag(check string, pos token.Pos, format string, args ...any) Diagnostic {
	p := c.Fset().Position(pos)
	return Diagnostic{
		Check:   check,
		File:    p.Filename,
		Line:    p.Line,
		Col:     p.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// AllChecks returns the full catalogue, in documentation order: the
// five per-function checks, then the four call-graph-backed ones.
func AllChecks() []*Check {
	return []*Check{
		tagParityCheck(),
		determinismCheck(),
		panicSafetyCheck(),
		siteHygieneCheck(),
		errcheckCheck(),
		ctxPropagationCheck(),
		atomicDisciplineCheck(),
		goroutineLifetimeCheck(),
		hotLoopAllocCheck(),
	}
}

// allowDirective is one parsed //hcdlint:allow comment.
type allowDirective struct {
	check  string
	reason string
	pos    token.Position
}

const allowPrefix = "//hcdlint:allow"

// collectAllows parses every //hcdlint:allow directive in the packages.
// Malformed directives (no check name, or no reason) are reported as
// findings of the pseudo-check "allow".
func collectAllows(ctx *Context) (map[string]map[int][]allowDirective, []Diagnostic) {
	allows := map[string]map[int][]allowDirective{} // file -> line -> directives
	var diags []Diagnostic
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					pos := ctx.Fset().Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						diags = append(diags, Diagnostic{
							Check: "allow", File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Message: "allow directive needs a check name and a reason: //hcdlint:allow <check> <reason>",
						})
						continue
					}
					if len(fields) == 1 {
						diags = append(diags, Diagnostic{
							Check: "allow", File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Message: fmt.Sprintf("allow directive for %q needs a reason", fields[0]),
						})
						continue
					}
					d := allowDirective{
						check:  fields[0],
						reason: strings.Join(fields[1:], " "),
						pos:    pos,
					}
					byLine := allows[pos.Filename]
					if byLine == nil {
						byLine = map[int][]allowDirective{}
						allows[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], d)
				}
			}
		}
	}
	return allows, diags
}

// allowed reports whether a directive for check exists on the
// diagnostic's line or the line directly above it.
func allowed(allows map[string]map[int][]allowDirective, d Diagnostic) bool {
	byLine := allows[d.File]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{d.Line, d.Line - 1} {
		for _, a := range byLine[line] {
			if a.check == d.Check {
				return true
			}
		}
	}
	return false
}

// Run executes the checks over ctx's packages, applies the allow
// directives, and returns the surviving findings sorted by position.
func Run(ctx *Context, checks []*Check) ([]Diagnostic, error) {
	allows, diags := collectAllows(ctx)
	for _, ch := range checks {
		ds, err := ch.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("lint: check %s: %w", ch.Name, err)
		}
		for _, d := range ds {
			if !allowed(allows, d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags, nil
}

// WriteJSON emits the machine-readable findings document.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	doc := struct {
		Version     int          `json:"version"`
		Count       int          `json:"count"`
		Diagnostics []Diagnostic `json:"diagnostics"`
	}{Version: 1, Count: len(diags), Diagnostics: diags}
	if doc.Diagnostics == nil {
		doc.Diagnostics = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// walkFiles applies fn to every non-test file of every package.
func walkFiles(ctx *Context, fn func(pkg *Package, f *ast.File)) {
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			fn(pkg, f)
		}
	}
}

// pkgBase returns the last path element of an import path.
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// hasPathSegment reports whether seg appears as a whole segment of the
// import path (e.g. "cmd" in "hcd/cmd/hcdtool").
func hasPathSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
