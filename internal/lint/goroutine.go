// goroutine-lifetime: a goroutine with no bound outlives its request,
// its build, or its test — the leak class the serve tier's drain
// machinery exists to prevent. Every `go` statement in non-test library
// code must be provably bounded by one of the accepted shapes:
//
//	join    the spawned body signals a sync.WaitGroup (Done, usually
//	        deferred) or sends on / closes a channel the spawner can
//	        drain — the par worker and serve rebuild idioms
//	signal  the body (or a function it transitively calls, per the call
//	        graph) selects on or receives from a Done-like signal —
//	        ctx.Done(), a chan struct{} — or ranges over a channel,
//	        so closing the signal ends it
//
// Anything else — a fire-and-forget `go f()` whose body neither joins
// nor watches a signal — is a finding. A deliberately detached
// goroutine carries an //hcdlint:allow with the argument for why its
// lifetime is acceptable. cmd/ and examples/ are exempt
// (process-lifetime goroutines in a main are bounded by the process).
//
// "Provably" is per-shape, not per-path: a wg.Done reachable on only
// some paths still counts (path-sensitive analysis is out of scope and
// the deferred form is the overwhelmingly dominant idiom).
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func goroutineLifetimeCheck() *Check {
	return &Check{
		Name: "goroutine-lifetime",
		Doc:  "go statements in library code must be joined (WaitGroup, channel) or watch a Done-like signal, directly or via their callees",
		Run: func(ctx *Context) ([]Diagnostic, error) {
			cg := ctx.CallGraph()
			var diags []Diagnostic
			walkFiles(ctx, func(pkg *Package, f *ast.File) {
				if hasPathSegment(pkg.Path, "cmd") || hasPathSegment(pkg.Path, "examples") {
					return
				}
				ast.Inspect(f, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if !goroutineBounded(cg, pkg, gs) {
						diags = append(diags, ctx.diag("goroutine-lifetime", gs.Pos(),
							"goroutine is not provably bounded: no WaitGroup.Done, no channel send/close, and no Done-like signal (ctx.Done, chan struct{}) in its body or its callees; join it or give it a cancellation signal"))
					}
					return true
				})
			})
			return diags, nil
		},
	}
}

// goroutineBounded applies the accepted shapes to one go statement.
func goroutineBounded(cg *CallGraph, pkg *Package, gs *ast.GoStmt) bool {
	// A func-literal body is analysed directly; a named function or
	// method defers to its call-graph node. Either way the spawned
	// call's arguments are part of the spawn expression, not the body.
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if bodyBounded(pkg, lit.Body) {
			return true
		}
		// Interprocedural half: anything the literal calls that reaches
		// a Done-like signal bounds it.
		return litReachesDone(cg, pkg, lit)
	}
	fn := calleeFunc(pkg, gs.Call)
	if node := cg.NodeOf(fn); node != nil {
		return bodyBounded(node.Pkg, node.Decl.Body) || cg.ReachesDone(node)
	}
	// A dynamic callee (func value) cannot be analysed: conservatively a
	// finding, waivable at the spawn site.
	return false
}

// bodyBounded scans one body for the joining shapes: WaitGroup.Done,
// channel send, channel close, Done-like select/receive, range over a
// channel.
func bodyBounded(pkg *Package, body ast.Node) bool {
	bounded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pkg, n); fn != nil {
				if fn.Name() == "Done" && recvIsWaitGroup(fn) {
					bounded = true
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					bounded = true
				}
			}
		case *ast.SendStmt:
			bounded = true
		case *ast.SelectStmt:
			if selectHasDoneCase(pkg, n) {
				bounded = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isDoneLikeChan(pkg, n.X) {
				bounded = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					bounded = true
				}
			}
		}
		return true
	})
	return bounded
}

// litReachesDone reports whether any function the literal statically
// calls reaches a Done-like signal.
func litReachesDone(cg *CallGraph, pkg *Package, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if node := cg.NodeOf(calleeFunc(pkg, call)); node != nil && cg.ReachesDone(node) {
			found = true
		}
		return true
	})
	return found
}

// recvIsWaitGroup reports whether fn is a method of sync.WaitGroup.
func recvIsWaitGroup(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
