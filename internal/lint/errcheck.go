// errcheck-lite: a call whose error result is silently dropped in
// library code is a containment leak — exactly the failure mode the
// BuildCtx/SearchCtx plumbing exists to prevent. The check flags
// expression-statement calls whose final result is the built-in error
// type inside non-test library packages (cmd/ and examples/ are
// operator- and documentation-facing and exempt). Deferred and go'd
// calls are not flagged (idiomatic defer f.Close() would drown the
// signal); explicit discards (`_ = f()`) are visible to reviewers and
// count as checked.
package lint

import (
	"go/ast"
	"go/types"
)

// errcheckExempt maps "pkgpath.Func" callees whose error results are
// conventionally ignored.
var errcheckExempt = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

// errcheckExemptRecv lists receiver/writer types whose Write-family
// errors are documented to always be nil (in-memory buffers) or sticky
// until Flush (bufio, tabwriter) — for the sticky writers the unchecked
// call that matters is Flush, which this check still flags.
var errcheckExemptRecv = map[string]bool{
	"*bytes.Buffer":          true,
	"*strings.Builder":       true,
	"*bufio.Writer":          true,
	"*text/tabwriter.Writer": true,
}

// stickyFlush names the methods that surface a sticky writer's deferred
// error; they are never exempt.
var stickyFlush = map[string]bool{"Flush": true}

func errcheckCheck() *Check {
	return &Check{
		Name: "errcheck",
		Doc:  "unchecked error returns in non-test library code",
		Run: func(ctx *Context) ([]Diagnostic, error) {
			errType := types.Universe.Lookup("error").Type()
			var diags []Diagnostic
			walkFiles(ctx, func(pkg *Package, f *ast.File) {
				// cmd/, examples/ and the benchmark report printers in
				// internal/bench are operator-facing terminal output, the
				// conventional scope errcheck tools leave alone.
				if hasPathSegment(pkg.Path, "cmd") || hasPathSegment(pkg.Path, "examples") ||
					hasPathSegment(pkg.Path, "bench") {
					return
				}
				ast.Inspect(f, func(n ast.Node) bool {
					stmt, ok := n.(*ast.ExprStmt)
					if !ok {
						return true
					}
					call, ok := stmt.X.(*ast.CallExpr)
					if !ok {
						return true
					}
					if !returnsError(pkg, call, errType) || exempt(pkg, call) {
						return true
					}
					diags = append(diags, ctx.diag("errcheck", call.Pos(),
						"%s's error result is dropped; handle it or discard explicitly with `_ =`", calleeName(pkg, call)))
					return true
				})
			})
			return diags, nil
		},
	}
}

// returnsError reports whether the call's final result is exactly the
// built-in error type.
func returnsError(pkg *Package, call *ast.CallExpr, errType types.Type) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && types.Identical(t.At(t.Len()-1).Type(), errType)
	default:
		return types.Identical(t, errType)
	}
}

// exempt applies the conventional-ignore lists.
func exempt(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && errcheckExempt[fn.Pkg().Path()+"."+fn.Name()] {
		return true
	}
	// Fprint-family writing to stderr/stdout, an in-memory buffer, or a
	// sticky-error writer whose Flush carries the failure.
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && len(call.Args) > 0 {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			if writerExempt(pkg, call.Args[0]) {
				return true
			}
		}
	}
	// Methods on in-memory / sticky-error writers — except the Flush
	// that reports the deferred error.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if errcheckExemptRecv[sig.Recv().Type().String()] && !stickyFlush[fn.Name()] {
			return true
		}
	}
	return false
}

// writerExempt reports whether a writer argument is os.Stdout/os.Stderr
// or an in-memory buffer type.
func writerExempt(pkg *Package, w ast.Expr) bool {
	if sel, ok := ast.Unparen(w).(*ast.SelectorExpr); ok {
		if obj, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && obj.Pkg() != nil &&
			obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
			return true
		}
	}
	if tv, ok := pkg.Info.Types[w]; ok && errcheckExemptRecv[tv.Type.String()] {
		return true
	}
	return false
}

// calleeName renders the callee for messages.
func calleeName(pkg *Package, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	default:
		return "call"
	}
}
