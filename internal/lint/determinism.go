// determinism: the paper's equivalence theorems promise that the
// parallel kernels produce byte-identical results to the serial
// baselines. Inside kernel packages this check forbids the three ways
// that promise quietly rots: wall-clock reads (time.Now), the globally
// seeded math/rand source, and ranging over a map while writing into an
// ordered output slice (map iteration order is randomised per run).
package lint

import (
	"go/ast"
	"go/types"
)

// kernelPackages are the directory base names of the packages whose
// outputs the determinism guarantee covers. Matching by base name keeps
// the rule honest for testdata fixtures too: any loaded package whose
// directory is named e.g. "core" is held to kernel standards.
var kernelPackages = map[string]bool{
	"core":       true,
	"coredecomp": true,
	"hindex":     true,
	"search":     true,
	"treeaccum":  true,
	"shellidx":   true,
	"unionfind":  true,
	"hierarchy":  true,
}

// IsKernelPackage reports whether an import path is held to the
// determinism rules.
func IsKernelPackage(path string) bool { return kernelPackages[pkgBase(path)] }

// globalRandExempt lists math/rand functions that do not touch the
// shared global source (constructing an explicitly seeded generator is
// the deterministic idiom the check steers toward).
var globalRandExempt = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func determinismCheck() *Check {
	return &Check{
		Name: "determinism",
		Doc:  "kernel packages must avoid time.Now, global math/rand, and map-iteration writes into ordered slices",
		Run: func(ctx *Context) ([]Diagnostic, error) {
			var diags []Diagnostic
			walkFiles(ctx, func(pkg *Package, f *ast.File) {
				if !IsKernelPackage(pkg.Path) {
					return
				}
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CallExpr:
						if fn := calleeFunc(pkg, n); fn != nil && fn.Pkg() != nil {
							switch fn.Pkg().Path() {
							case "time":
								if fn.Name() == "Now" {
									diags = append(diags, ctx.diag("determinism", n.Pos(),
										"time.Now in kernel package %s: kernel results must not depend on (or carry) wall-clock reads; measure in the caller or via obs spans", pkg.Path))
								}
							case "math/rand", "math/rand/v2":
								// Methods (on *rand.Rand etc.) draw from their
								// own explicitly seeded source; only the
								// package-level functions touch the global one.
								sig, _ := fn.Type().(*types.Signature)
								if sig != nil && sig.Recv() != nil {
									break
								}
								if !globalRandExempt[fn.Name()] {
									diags = append(diags, ctx.diag("determinism", n.Pos(),
										"%s.%s uses the shared global random source; construct an explicitly seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name()))
								}
							}
						}
					case *ast.RangeStmt:
						diags = append(diags, mapRangeWrites(ctx, pkg, n)...)
					}
					return true
				})
			})
			return diags, nil
		},
	}
}

// calleeFunc resolves a call's callee to its types.Func when the callee
// is a (possibly package-qualified) selector or plain identifier.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// mapRangeWrites flags statements inside a range-over-map body that
// write into a slice declared outside the body: the write order then
// follows the randomised map iteration order.
func mapRangeWrites(ctx *Context, pkg *Package, rs *ast.RangeStmt) []Diagnostic {
	tv, ok := pkg.Info.Types[rs.X]
	if !ok {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	var diags []Diagnostic
	body := rs.Body
	declaredOutside := func(e ast.Expr) (string, bool) {
		id := rootIdent(e)
		if id == nil {
			return "", false
		}
		obj := pkg.Info.ObjectOf(id)
		if obj == nil || obj.Pos() == 0 {
			return "", false
		}
		if obj.Pos() < body.Pos() || obj.Pos() > body.End() {
			return id.Name, true
		}
		return "", false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// s = append(s, ...) — appending inside a map range emits in
			// iteration order.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) > 0 {
					if name, out := declaredOutside(n.Args[0]); out {
						diags = append(diags, ctx.diag("determinism", n.Pos(),
							"append to %q inside range over map: map iteration order is non-deterministic, so the slice's element order varies per run; sort the keys first or restructure", name))
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				xt, ok := pkg.Info.Types[ix.X]
				if !ok {
					continue
				}
				if _, isSlice := xt.Type.Underlying().(*types.Slice); !isSlice {
					continue
				}
				if name, out := declaredOutside(ix.X); out {
					// Writing s[i] = v is order-independent only when i is
					// itself derived deterministically; a write under map
					// iteration usually pairs with a moving cursor, so flag
					// it and let provably-safe sites carry an allow.
					diags = append(diags, ctx.diag("determinism", n.Pos(),
						"indexed write into slice %q inside range over map: element placement follows the non-deterministic iteration order unless the index is iteration-order-independent", name))
				}
			}
		}
		return true
	})
	return diags
}

// rootIdent unwraps selectors, indexes and parens down to the base
// identifier of an expression (nil when the base is not an identifier).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
