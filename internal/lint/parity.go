// tag-parity: the noop stub builds selected by the `noobs` and
// `nofaults` tags must expose exactly the exported API of the live
// builds. A symbol added to the live side without its noop mirror (or
// vice versa) breaks one of the two build flavours CI ships — this check
// makes the drift a finding at the offending declaration instead of a
// build break discovered later.
package lint

import "go/token"

// ParityPair is one (package, tag) pairing whose two build variants must
// agree on their exported surface.
type ParityPair struct {
	// Path is the package's module-internal import path.
	Path string
	// Tag is the build tag selecting the noop variant.
	Tag string
}

// DefaultParityPairs returns the repository's mirrored packages.
func DefaultParityPairs(module string) []ParityPair {
	return []ParityPair{
		{Path: module + "/internal/obs", Tag: "noobs"},
		{Path: module + "/internal/faultinject", Tag: "nofaults"},
		// serve mirrors its request-telemetry internals (reqobs.go) under
		// noobs; the exported surface must stay identical so hcdserve
		// builds unchanged either way.
		{Path: module + "/internal/serve", Tag: "noobs"},
	}
}

func tagParityCheck() *Check {
	return &Check{
		Name: "tag-parity",
		Doc:  "noobs/nofaults noop mirrors must expose the live build's exported API surface",
		Run: func(ctx *Context) ([]Diagnostic, error) {
			var diags []Diagnostic
			inScope := map[string]bool{}
			for _, pkg := range ctx.Pkgs {
				inScope[pkg.Path] = true
			}
			for _, pair := range DefaultParityPairs(ctx.Loader.Module) {
				if !inScope[pair.Path] {
					continue
				}
				ds, err := checkParityPair(ctx, pair)
				if err != nil {
					return nil, err
				}
				diags = append(diags, ds...)
			}
			return diags, nil
		},
	}
}

// checkParityPair loads the two variants of one package in fresh
// loaders (each tag set is its own type universe) and diffs them.
func checkParityPair(ctx *Context, pair ParityPair) ([]Diagnostic, error) {
	live := ctx.Loader.Variant(nil)
	noop := ctx.Loader.Variant([]string{pair.Tag})
	livePkg, err := live.Load(pair.Path)
	if err != nil {
		return nil, err
	}
	noopPkg, err := noop.Load(pair.Path)
	if err != nil {
		return nil, err
	}
	diffs := DiffSurfaces(Surface(livePkg.Types), Surface(noopPkg.Types))
	diags := make([]Diagnostic, 0, len(diffs))
	for _, d := range diffs {
		// Point at the declaration in whichever build has the symbol,
		// preferring the noop side — that is the mirror being maintained
		// by hand.
		pos := symbolPos(noopPkg.Types, d.Symbol)
		fset := noop.Fset
		if pos == token.NoPos {
			pos = symbolPos(livePkg.Types, d.Symbol)
			fset = live.Fset
		}
		p := fset.Position(pos)
		diags = append(diags, Diagnostic{
			Check: "tag-parity",
			File:  p.Filename,
			Line:  p.Line,
			Col:   p.Column,
			Message: pair.Path + ": " +
				describeDiff(d, "default", pair.Tag),
		})
	}
	return diags, nil
}
