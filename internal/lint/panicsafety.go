// panic-safety: par.For / ForEach / ForChunked / Run are thin wrappers
// that re-raise contained worker panics on the calling goroutine — fine
// at a leaf that cannot fail, fatal anywhere a *par.PanicError should
// have been an error return. New code must use the ctx-aware *Err
// variants; surviving legacy call sites carry an //hcdlint:allow with
// the safety argument.
package lint

import "go/ast"

// repanickingPar lists the wrapper entry points the check steers away
// from, mapped to their containment-preserving replacements.
var repanickingPar = map[string]string{
	"For":        "ForErr",
	"ForEach":    "ForEachErr",
	"ForChunked": "ForChunkedErr",
	"Run":        "RunErr",
}

func panicSafetyCheck() *Check {
	return &Check{
		Name: "panic-safety",
		Doc:  "library code must use the ctx-aware par.*Err variants, not the re-panicking wrappers",
		Run: func(ctx *Context) ([]Diagnostic, error) {
			parPath := ctx.Loader.Module + "/internal/par"
			var diags []Diagnostic
			walkFiles(ctx, func(pkg *Package, f *ast.File) {
				if pkg.Path == parPath {
					return // the wrappers' own definitions live here
				}
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(pkg, call)
					if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != parPath {
						return true
					}
					if repl, bad := repanickingPar[fn.Name()]; bad {
						diags = append(diags, ctx.diag("panic-safety", call.Pos(),
							"par.%s re-raises worker panics on the caller; use par.%s (ctx-aware, returns *par.PanicError) so failures stay contained", fn.Name(), repl))
					}
					return true
				})
			})
			return diags, nil
		},
	}
}
